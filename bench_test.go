// Benchmarks regenerating the paper's evaluation, one per table/figure.
//
// Each BenchmarkFig* drives the corresponding experiment from
// internal/bench at a reduced scale so `go test -bench=.` terminates in
// minutes; run `go run ./cmd/geacc-bench -run all -scale 1` for the paper's
// full workload sizes. The BenchmarkAlgo* group measures a single solve at
// the default synthetic setting (TABLE III bold: |V|=100, |U|=1000, d=20,
// conflict density 0.25) — with -benchmem these are the time and memory
// panels of Figs. 3-4 at the default point. BenchmarkTable1 exercises the
// TABLE I toy instance.
package geacc

import (
	"fmt"
	"testing"

	"github.com/ebsnlab/geacc/internal/bench"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/dataset"
)

// benchScale keeps experiment sweeps tractable inside testing.B; the shape
// (who wins, how curves trend) is preserved, absolute numbers shrink.
const benchScale = 0.1

func runExperiment(b *testing.B, id string, opt bench.Options) {
	b.Helper()
	exp, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := exp.Run(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig3VaryV(b *testing.B) {
	runExperiment(b, "fig3v", bench.Options{Scale: benchScale, Seed: 1})
}

func BenchmarkFig3VaryU(b *testing.B) {
	runExperiment(b, "fig3u", bench.Options{Scale: benchScale, Seed: 1})
}

func BenchmarkFig3VaryD(b *testing.B) {
	runExperiment(b, "fig3d", bench.Options{Scale: benchScale, Seed: 1})
}

func BenchmarkFig3VaryCF(b *testing.B) {
	runExperiment(b, "fig3cf", bench.Options{Scale: benchScale, Seed: 1})
}

func BenchmarkFig4VaryCv(b *testing.B) {
	runExperiment(b, "fig4cv", bench.Options{Scale: benchScale, Seed: 1})
}

func BenchmarkFig4VaryCu(b *testing.B) {
	runExperiment(b, "fig4cu", bench.Options{Scale: benchScale, Seed: 1})
}

func BenchmarkFig4Distribution(b *testing.B) {
	runExperiment(b, "fig4dist", bench.Options{Scale: benchScale, Seed: 1})
}

func BenchmarkFig4Real(b *testing.B) {
	runExperiment(b, "fig4real", bench.Options{Scale: benchScale, Seed: 1})
}

func BenchmarkFig5Scalability(b *testing.B) {
	runExperiment(b, "fig5ab", bench.Options{Scale: 0.01, Seed: 1})
}

func BenchmarkFig5Effectiveness(b *testing.B) {
	runExperiment(b, "fig5cd", bench.Options{Scale: 0.5, Seed: 1}) // |U| = 7
}

func BenchmarkFig6PrunedDepth(b *testing.B) {
	runExperiment(b, "fig6a", bench.Options{Scale: 0.7, Seed: 1}) // |U| = 7, 10
}

func BenchmarkFig6VsExhaustive(b *testing.B) {
	runExperiment(b, "fig6bcd", bench.Options{Scale: 0.6, Seed: 1}) // |U| = 6
}

// defaultInstance is the TABLE III bold setting at benchmark scale.
func defaultInstance(b *testing.B, scale float64) *core.Instance {
	b.Helper()
	cfg := dataset.DefaultSynthetic()
	cfg.NumEvents = int(float64(cfg.NumEvents) * scale)
	cfg.NumUsers = int(float64(cfg.NumUsers) * scale)
	in, err := cfg.Generate()
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func benchmarkSolver(b *testing.B, name string, scale float64) {
	in := defaultInstance(b, scale)
	solve, err := core.LookupSolver(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := bench.Measure(in, solve, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgoGreedyDefault(b *testing.B) { benchmarkSolver(b, "greedy", 1) }
func BenchmarkAlgoGreedyLarge(b *testing.B)   { benchmarkSolver(b, "greedy", 4) }
func BenchmarkAlgoMinCostFlow(b *testing.B)   { benchmarkSolver(b, "mincostflow", 0.5) }
func BenchmarkAlgoRandomV(b *testing.B)       { benchmarkSolver(b, "random-v", 1) }
func BenchmarkAlgoRandomU(b *testing.B)       { benchmarkSolver(b, "random-u", 1) }

// BenchmarkTable1 solves the paper's toy instance with every algorithm.
func BenchmarkTable1(b *testing.B) {
	p, err := NewProblem(
		[]Event{{Cap: 5}, {Cap: 3}, {Cap: 2}},
		[]User{{Cap: 3}, {Cap: 1}, {Cap: 1}, {Cap: 2}, {Cap: 3}},
		WithSimilarityMatrix([][]float64{
			{0.93, 0.43, 0.84, 0.64, 0.65},
			{0, 0.35, 0.19, 0.21, 0.4},
			{0.86, 0.57, 0.78, 0.79, 0.68},
		}),
		WithConflictPairs([][2]int{{0, 2}}),
	)
	if err != nil {
		b.Fatal(err)
	}
	for _, algo := range []Algorithm{Greedy, MinCostFlow, Exact} {
		algo := algo
		b.Run(algo.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Solve(algo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFlowResolution is the conflict-resolution ablation: the paper's
// greedy per-user selection (Algorithm 1 lines 8-14) versus the exact
// per-user maximum-weight independent set extension.
func BenchmarkFlowResolution(b *testing.B) {
	in := defaultInstance(b, 0.5)
	for _, mode := range []struct {
		name string
		opt  core.FlowOptions
	}{
		{"greedy-resolution", core.FlowOptions{}},
		{"exact-resolution", core.FlowOptions{ExactResolution: true}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				res := core.MinCostFlowOpts(in, mode.opt)
				sum = res.Matching.MaxSum()
			}
			b.ReportMetric(sum, "MaxSum")
		})
	}
}

// BenchmarkPruneBounds is the bound-strength ablation for Prune-GEACC: the
// paper's s_v·c_v potential versus the tighter top-c_v-similarities sum,
// aggregated over several instances. The tight bound usually prunes far
// harder (up to ~100× fewer nodes) but, because it also reorders L, can
// occasionally explore more — both outcomes are visible in the per-seed
// node metric.
func BenchmarkPruneBounds(b *testing.B) {
	seeds := []int64{2, 5, 7, 12}
	var instances []*core.Instance
	for _, seed := range seeds {
		cfg := dataset.DefaultSynthetic()
		cfg.NumEvents, cfg.NumUsers = 5, 12
		cfg.EventCapMax = 10
		cfg.Seed = seed
		in, err := cfg.Generate()
		if err != nil {
			b.Fatal(err)
		}
		instances = append(instances, in)
	}
	for _, mode := range []struct {
		name string
		opt  core.ExactOptions
	}{
		{"paper-bound", core.ExactOptions{NodeLimit: 100_000_000}},
		{"tight-bound", core.ExactOptions{NodeLimit: 100_000_000, TightBound: true}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var nodes int64
			for i := 0; i < b.N; i++ {
				nodes = 0
				for _, in := range instances {
					_, stats, err := core.ExactOpts(in, mode.opt)
					if err != nil && err != core.ErrNodeLimit {
						b.Fatal(err)
					}
					nodes += stats.Invocations
				}
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkGreedyChunkSizes sweeps the Chunked index's first refill size.
func BenchmarkGreedyChunkSizes(b *testing.B) {
	in := defaultInstance(b, 1)
	for _, chunk := range []int{2, 8, 32, 128} {
		chunk := chunk
		b.Run(fmt.Sprintf("chunk-%d", chunk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := core.GreedyOpts(in, core.GreedyOptions{ChunkSize: chunk})
				if m.Size() == 0 {
					b.Fatal("empty matching")
				}
			}
		})
	}
}

// BenchmarkGreedyIndexes is the index ablation DESIGN.md calls out: the
// same greedy arrangement computed through each NN index implementation.
func BenchmarkGreedyIndexes(b *testing.B) {
	in := defaultInstance(b, 1)
	for _, kind := range []core.IndexKind{
		core.IndexChunked, core.IndexSorted, core.IndexKDTree,
		core.IndexIDistance, core.IndexVAFile, core.IndexParallel,
	} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := core.GreedyOpts(in, core.GreedyOptions{Index: kind})
				if m.Size() == 0 {
					b.Fatal("empty matching")
				}
			}
		})
	}
}
