package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig3v", "fig4real", "fig5ab", "fig6bcd"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestBenchRunOneExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "fig3cf", "-scale", "0.05"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 3 col 4", "MaxSum", "time (s)", "memory (MB)", "greedy", "mincostflow"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestBenchRunCommaSeparatedAndCSV(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "points.csv")
	var out bytes.Buffer
	if err := run([]string{"-run", "fig3v,fig3d", "-scale", "0.05", "-csv", csvPath}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.HasPrefix(text, "experiment,x,algo,") {
		t.Fatalf("bad CSV header: %q", text[:50])
	}
	if !strings.Contains(text, "fig3v") || !strings.Contains(text, "fig3d") {
		t.Error("CSV missing experiments")
	}
}

func TestBenchErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -run accepted")
	}
	if err := run([]string{"-run", "fig99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}
