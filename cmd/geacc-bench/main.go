// Command geacc-bench regenerates the tables and figures of the paper's
// evaluation (Section V). Each experiment prints one pivot table per metric
// (MaxSum, running time, memory) — the textual equivalent of the figure's
// curves — and can also dump the raw points as CSV.
//
// Usage:
//
//	geacc-bench -list
//	geacc-bench -run fig3v
//	geacc-bench -run all -scale 0.2 -reps 3 -csv out.csv
//
// Scale 1 reproduces the paper's workload sizes; smaller scales shrink
// cardinalities proportionally for quick looks. Shapes (who wins, how curves
// trend) are preserved at reduced scale; absolute numbers are not.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/ebsnlab/geacc/internal/bench"
	"github.com/ebsnlab/geacc/internal/obs"
	"github.com/ebsnlab/geacc/internal/partition"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		obs.MustLogger(os.Stderr).Error("geacc-bench failed", "error", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("geacc-bench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list available experiments and exit")
	runID := fs.String("run", "", "experiment id, comma-separated ids, or 'all'")
	scale := fs.Float64("scale", 1.0, "workload scale in (0, 1]; 1 = the paper's sizes")
	reps := fs.Int("reps", 1, "repetitions to average per point")
	seed := fs.Int64("seed", 1, "root random seed")
	csvPath := fs.String("csv", "", "also write raw points to this CSV file")
	jsonPath := fs.String("json", "", "also write raw points to this JSON file")
	decompose := fs.Bool("decompose", false,
		"route every experiment solve through the decomposition layer (internal/decomp)")
	approxShard := fs.Bool("approx-shard", false,
		"split oversized components via internal/partition's bounded-drift sharding (implies -decompose)")
	shardMaxArea := fs.Int64("shard-max-area", partition.DefaultMaxArea,
		"with -approx-shard, shard components whose |V|·|U| exceeds this area")
	shardStrategy := fs.String("shard-strategy", "",
		"with -approx-shard, split heuristic: modularity (default) or bfs")
	shardDriftBudget := fs.Float64("shard-drift-budget", partition.DefaultDriftBudget,
		"with -approx-shard, max tolerated drift estimate before monolithic fallback")
	solversJSON := fs.String("solvers-json", "",
		"run the pinned solver benchmark set and write the BENCH_solvers.json snapshot here (ignores -run)")
	comparePath := fs.String("compare", "",
		"run the pinned solver benchmark set and diff it against the snapshot at this path; exits non-zero on ns_per_op regressions beyond -compare-tol (ignores -run)")
	compareTol := fs.Float64("compare-tol", 0.20,
		"relative ns_per_op slowdown tolerated by -compare (0.20 = +20%)")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}

	if *comparePath != "" {
		old, err := bench.ReadSolverBenchFile(*comparePath)
		if err != nil {
			return err
		}
		logger.Info("running pinned solver benchmarks for comparison", "reps", *reps, "against", *comparePath)
		fresh, err := bench.RunSolverBench(bench.Options{Reps: *reps, Seed: *seed, LargeShapes: true})
		if err != nil {
			return err
		}
		deltas, onlyOld, onlyNew := bench.CompareSolverBench(old, fresh)
		report, regressed := bench.FormatBenchComparison(deltas, onlyOld, onlyNew, *compareTol)
		fmt.Fprint(stdout, report)
		if len(regressed) > 0 {
			return fmt.Errorf("%d point(s) regressed beyond %.0f%%: %s",
				len(regressed), *compareTol*100, strings.Join(regressed, ", "))
		}
		logger.Info("no regressions beyond tolerance", "points", len(deltas), "tolerance", *compareTol)
		return nil
	}

	if *solversJSON != "" {
		logger.Info("running pinned solver benchmarks", "reps", *reps)
		points, err := bench.RunSolverBench(bench.Options{Reps: *reps, Seed: *seed, LargeShapes: true})
		if err != nil {
			return err
		}
		f, err := os.Create(*solversJSON)
		if err != nil {
			return err
		}
		err = bench.WriteSolverBenchJSON(f, points)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		logger.Info("wrote solver benchmark snapshot", "points", len(points), "path", *solversJSON)
		return nil
	}

	if *list {
		for _, e := range bench.Registry() {
			fmt.Fprintf(stdout, "%-10s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *runID == "" {
		fs.Usage()
		return fmt.Errorf("missing -run (or -list)")
	}

	var experiments []bench.Experiment
	if *runID == "all" {
		experiments = bench.Registry()
	} else {
		for _, id := range strings.Split(*runID, ",") {
			e, err := bench.Lookup(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			experiments = append(experiments, e)
		}
	}

	opt := bench.Options{Scale: *scale, Reps: *reps, Seed: *seed, Decompose: *decompose}
	if *approxShard {
		strat, err := partition.ParseStrategy(*shardStrategy)
		if err != nil {
			return err
		}
		sh := partition.Options{
			MaxArea:     *shardMaxArea,
			Strategy:    strat,
			DriftBudget: *shardDriftBudget,
		}.Normalized()
		opt.Decompose = true
		opt.Shard = &sh
	}
	var allPoints []bench.Point
	for _, e := range experiments {
		logger.Info("running experiment", "id", e.ID, "scale", *scale, "reps", *reps)
		points, err := e.Run(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		metrics := bench.StandardMetrics()
		metrics = append(metrics, bench.ExtraMetrics(points)...)
		fmt.Fprintln(stdout, bench.RenderTables(e.Title, e.XLabel, points, metrics))
		if spark := bench.RenderSparklines(e.XLabel, points, bench.StandardMetrics()); spark != "" {
			fmt.Fprintln(stdout, spark)
		}
		allPoints = append(allPoints, points...)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.WriteCSV(f, allPoints); err != nil {
			return err
		}
		logger.Info("wrote raw points", "points", len(allPoints), "path", *csvPath)
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.WriteJSON(f, allPoints); err != nil {
			return err
		}
		logger.Info("wrote raw points", "points", len(allPoints), "path", *jsonPath)
	}
	return nil
}
