// Command geacc-solve reads a GEACC instance (JSON, see internal/encoding)
// and prints the arrangement computed by the chosen algorithm.
//
// Usage:
//
//	geacc-gen -kind synthetic -events 20 -users 100 -out instance.json
//	geacc-solve -in instance.json -algo greedy
//	geacc-solve -in instance.json -algo mincostflow -format csv -out matching.csv
//	geacc-solve -in instance.json -algo exact -diag -trace-out trace.json
//	geacc-solve -in clustered.json -algo greedy -decompose
//	geacc-solve -in bridged.json -algo mincostflow -approx-shard -shard-max-area 5000
//	geacc-solve -replay ./data/prod            # rebuild a server instance offline
//
// The output (JSON by default, CSV with -format csv) lists each assigned
// (event, user) pair with its interestingness value, plus the MaxSum.
// -diag prints the per-solve Diagnostics artifact (instance shape, phase
// timings, the Corollary 1 relaxation bound, and the optimality gap) as
// JSON on stderr (or to -diag-out); -trace-out writes the solver's spans
// as Chrome trace-event JSON loadable in Perfetto or chrome://tracing.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"time"

	"github.com/ebsnlab/geacc/internal/buildinfo"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/decomp"
	"github.com/ebsnlab/geacc/internal/encoding"
	"github.com/ebsnlab/geacc/internal/obs"
	"github.com/ebsnlab/geacc/internal/partition"
	"github.com/ebsnlab/geacc/internal/report"
	"github.com/ebsnlab/geacc/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		obs.MustLogger(os.Stderr).Error("geacc-solve failed", "error", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("geacc-solve", flag.ContinueOnError)
	inPath := fs.String("in", "", "instance JSON file (required unless -replay)")
	replayDir := fs.String("replay", "",
		"replay a geacc-server instance directory (meta.json + ops.jsonl + snapshot.json) offline and print its arrangement")
	algo := fs.String("algo", "greedy", fmt.Sprintf("algorithm: %v or portfolio", core.SolverNames()))
	format := fs.String("format", "json", "output format: json or csv")
	outPath := fs.String("out", "", "write the matching here instead of stdout")
	sessionPath := fs.String("session", "", "also archive instance+matching+metadata (JSON) here")
	seed := fs.Int64("seed", 1, "seed for the random baselines")
	index := fs.String("index", "", "greedy NN index: chunked (default), sorted, kdtree, idistance, vafile, parallel, lsh")
	decompose := fs.Bool("decompose", false, "shard along conflict/similarity components and solve them in parallel")
	decompWorkers := fs.Int("decompose-workers", 0, "with -decompose, component worker pool size (0 = GOMAXPROCS)")
	approxShard := fs.Bool("approx-shard", false,
		"split oversized components into balanced sub-shards with a bounded-drift merge (implies -decompose)")
	shardMaxArea := fs.Int64("shard-max-area", partition.DefaultMaxArea,
		"with -approx-shard, shard components whose |V|·|U| exceeds this area")
	shardStrategy := fs.String("shard-strategy", "",
		"with -approx-shard, split heuristic: modularity (default) or bfs")
	shardDriftBudget := fs.Float64("shard-drift-budget", partition.DefaultDriftBudget,
		"with -approx-shard, max tolerated MaxSum drift estimate before falling back to the monolithic solve")
	quiet := fs.Bool("quiet", false, "suppress the summary log line")
	showReport := fs.Bool("report", false, "print an arrangement quality report to stderr")
	skipBound := fs.Bool("no-bound", false, "with -report, skip the relaxation upper bound (faster)")
	diag := fs.Bool("diag", false, "print per-solve diagnostics (shape, phases, optimality gap) as JSON to stderr")
	diagOut := fs.String("diag-out", "", "with -diag, write the diagnostics JSON here instead of stderr")
	traceOut := fs.String("trace-out", "", "write solver spans as Chrome trace-event JSON (Perfetto-loadable) to this file")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	showVersion := fs.Bool("version", false, "print the build identity and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(stdout, buildinfo.Get())
		return nil
	}
	if *inPath == "" && *replayDir == "" {
		fs.Usage()
		return fmt.Errorf("missing -in (or -replay)")
	}
	if *inPath != "" && *replayDir != "" {
		return fmt.Errorf("-in and -replay are mutually exclusive")
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	if *replayDir != "" {
		return runReplay(*replayDir, *format, *outPath, *quiet, stdout, logger)
	}
	if *diagOut != "" {
		*diag = true
	}
	if *approxShard {
		*decompose = true // sharding rides on the decomposition worker pool
	}
	if *decompose && *algo == "portfolio" {
		return fmt.Errorf("-decompose does not compose with -algo portfolio (the portfolio already parallelizes)")
	}
	if *decompose && *index != "" {
		return fmt.Errorf("-decompose does not compose with -index (components use the default greedy index)")
	}

	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	in, simInfo, err := encoding.DecodeInstanceMeta(f)
	f.Close()
	if err != nil {
		return err
	}

	// Diagnosed or traced runs carry a span recorder on the context so the
	// solvers' phase spans are captured; plain runs skip the bookkeeping.
	ctx := context.Background()
	var rec *obs.Recorder
	var countersBefore map[string]int64
	if *diag || *traceOut != "" {
		rec = obs.NewRecorder()
		ctx = obs.ContextWithRecorder(ctx, rec)
		countersBefore = obs.Default().Counters()
	}

	var m *core.Matching
	var decompStats *core.DecompositionStats
	var partStats *core.PartitionStats
	start := time.Now()
	if *decompose {
		dopt := decomp.Options{Workers: *decompWorkers, Seed: *seed}
		if *approxShard {
			strat, err := partition.ParseStrategy(*shardStrategy)
			if err != nil {
				return err
			}
			sh := partition.Options{
				MaxArea:     *shardMaxArea,
				Strategy:    strat,
				DriftBudget: *shardDriftBudget,
			}.Normalized()
			dopt.Shard = &sh
		}
		d, derr := decomp.DecomposeContext(ctx, in)
		if derr != nil {
			return derr
		}
		if m, err = d.SolveContext(ctx, *algo, dopt); err != nil {
			return err
		}
		decompStats = d.Stats(dopt.Workers)
		partStats = d.PartitionStats()
	} else if *algo == "portfolio" {
		// Race the practical solvers concurrently and keep the best.
		best, _, err := core.PortfolioCtx(ctx, in,
			[]string{"greedy", "mincostflow", "random-v", "random-u"}, *seed)
		if err != nil {
			return err
		}
		m = best
	} else if *algo == "greedy" && *index != "" {
		kind, err := indexKindByName(*index)
		if err != nil {
			return err
		}
		m, err = core.GreedyCtx(ctx, in, core.GreedyOptions{Index: kind})
		if err != nil {
			return err
		}
	} else {
		if m, err = core.SolveContext(ctx, *algo, in, rand.New(rand.NewSource(*seed))); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	if err := core.Validate(in, m); err != nil {
		return fmt.Errorf("internal error: infeasible matching: %w", err)
	}

	var diagDoc *core.Diagnostics
	if *diag {
		diagDoc = core.BuildDiagnostics(*algo, in, m, elapsed, rec.Spans(),
			obs.DiffCounters(countersBefore, obs.Default().Counters()))
		diagDoc.Decomposition = decompStats
		if partStats != nil {
			// BoundLoss is the measured loss vs the unsharded Corollary 1
			// relaxation bound — exactly the diagnostics gap of this run.
			partStats.BoundLoss = diagDoc.Gap
			diagDoc.Partition = partStats
		}
	}
	if *sessionPath != "" {
		sf, err := os.Create(*sessionPath)
		if err != nil {
			return err
		}
		meta := encoding.SessionMeta{
			Algorithm: *algo,
			Seed:      *seed,
			Seconds:   elapsed.Seconds(),
			CreatedAt: time.Now().UTC(),
		}
		err = encoding.EncodeSession(sf, in, m, meta, simInfo.Kind, simInfo.Dim, simInfo.MaxT)
		if cerr := sf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}

	out := stdout
	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		out = of
	}
	switch *format {
	case "json":
		err = encoding.EncodeMatching(out, m)
	case "csv":
		err = encoding.WriteMatchingCSV(out, m)
	default:
		return fmt.Errorf("unknown format %q (json or csv)", *format)
	}
	if err != nil {
		return err
	}
	if !*quiet {
		attrs := []any{
			"algo", *algo, "events", in.NumEvents(), "users", in.NumUsers(),
			"conflicts", conflictCount(in), "pairs", m.Size(),
			"max_sum", m.MaxSum(), "seconds", elapsed.Seconds(),
		}
		if decompStats != nil {
			attrs = append(attrs, "components", decompStats.Components)
		}
		if partStats != nil {
			attrs = append(attrs, "shards", partStats.Shards,
				"shard_fallbacks", partStats.Fallbacks,
				"max_drift_estimate", partStats.MaxDriftEstimate)
		}
		if diagDoc != nil {
			attrs = append(attrs, "gap", diagDoc.Gap,
				"relaxed_upper_bound", diagDoc.RelaxedUpperBound)
		}
		logger.Info("solve", attrs...)
	}
	if diagDoc != nil {
		if err := writeDiagnostics(diagDoc, *diagOut, logger); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		if err := writeTrace(rec, *traceOut, logger); err != nil {
			return err
		}
	}
	if *showReport {
		rep, err := report.Build(in, m, *skipBound)
		if err != nil {
			return err
		}
		fmt.Fprint(os.Stderr, rep)
	}
	return nil
}

// runReplay rebuilds a geacc-server instance offline from its on-disk
// directory — snapshot plus op log, exactly the server's boot path but
// read-only (a torn final log line is skipped, never truncated) — and
// prints the recovered arrangement. This is the audit tool: it answers
// "what would the server serve for this instance?" without starting one.
func runReplay(dir, format, outPath string, quiet bool, stdout io.Writer, logger *slog.Logger) error {
	state, err := store.LoadDir(context.Background(), dir)
	if err != nil {
		return err
	}
	in, m, err := state.Arranger.Snapshot()
	if err != nil {
		return err
	}
	if err := core.Validate(in, m); err != nil {
		return fmt.Errorf("replayed arrangement is infeasible (corrupt log?): %w", err)
	}
	out := stdout
	if outPath != "" {
		of, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		out = of
	}
	switch format {
	case "json":
		err = encoding.EncodeMatching(out, m)
	case "csv":
		err = encoding.WriteMatchingCSV(out, m)
	default:
		return fmt.Errorf("unknown format %q (json or csv)", format)
	}
	if err != nil {
		return err
	}
	if !quiet {
		logger.Info("replay",
			"id", state.Meta.ID, "seq", state.Seq, "snapshot_seq", state.SnapshotSeq,
			"replayed_ops", state.ReplayedOps,
			"events", state.Arranger.NumEvents(), "users", state.Arranger.NumUsers(),
			"pairs", m.Size(), "max_sum", m.MaxSum(),
			"dirty_events", len(state.DirtyEvents), "dirty_users", len(state.DirtyUsers))
	}
	return nil
}

// writeDiagnostics emits the artifact as indented JSON, to stderr by
// default so it composes with -out/-format on stdout.
func writeDiagnostics(d *core.Diagnostics, path string, logger *slog.Logger) error {
	w := io.Writer(os.Stderr)
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := encodeIndentedJSON(w, d); err != nil {
		return err
	}
	if path != "" {
		logger.Debug("wrote diagnostics", "path", path)
	}
	return nil
}

func encodeIndentedJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// writeTrace exports the recorder's spans as Chrome trace-event JSON.
func writeTrace(rec *obs.Recorder, path string, logger *slog.Logger) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = rec.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	logger.Debug("wrote chrome trace", "path", path, "spans", len(rec.Spans()))
	return nil
}

// indexKindByName resolves the -index flag.
func indexKindByName(name string) (core.IndexKind, error) {
	kinds := []core.IndexKind{
		core.IndexChunked, core.IndexSorted, core.IndexKDTree,
		core.IndexIDistance, core.IndexVAFile, core.IndexParallel, core.IndexLSH,
	}
	for _, k := range kinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown index %q (chunked, sorted, kdtree, idistance, vafile, parallel, lsh)", name)
}

func conflictCount(in *core.Instance) int {
	if in.Conflicts == nil {
		return 0
	}
	return in.Conflicts.Edges()
}
