// Command geacc-solve reads a GEACC instance (JSON, see internal/encoding)
// and prints the arrangement computed by the chosen algorithm.
//
// Usage:
//
//	geacc-gen -kind synthetic -events 20 -users 100 -out instance.json
//	geacc-solve -in instance.json -algo greedy
//	geacc-solve -in instance.json -algo mincostflow -format csv -out matching.csv
//
// The output (JSON by default, CSV with -format csv) lists each assigned
// (event, user) pair with its interestingness value, plus the MaxSum.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/encoding"
	"github.com/ebsnlab/geacc/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "geacc-solve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("geacc-solve", flag.ContinueOnError)
	inPath := fs.String("in", "", "instance JSON file (required)")
	algo := fs.String("algo", "greedy", fmt.Sprintf("algorithm: %v or portfolio", core.SolverNames()))
	format := fs.String("format", "json", "output format: json or csv")
	outPath := fs.String("out", "", "write the matching here instead of stdout")
	sessionPath := fs.String("session", "", "also archive instance+matching+metadata (JSON) here")
	seed := fs.Int64("seed", 1, "seed for the random baselines")
	index := fs.String("index", "", "greedy NN index: chunked (default), sorted, kdtree, idistance, vafile, parallel, lsh")
	quiet := fs.Bool("quiet", false, "suppress the summary line on stderr")
	showReport := fs.Bool("report", false, "print an arrangement quality report to stderr")
	skipBound := fs.Bool("no-bound", false, "with -report, skip the relaxation upper bound (faster)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		fs.Usage()
		return fmt.Errorf("missing -in")
	}

	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	in, simInfo, err := encoding.DecodeInstanceMeta(f)
	f.Close()
	if err != nil {
		return err
	}

	var m *core.Matching
	start := time.Now()
	if *algo == "portfolio" {
		// Race the practical solvers concurrently and keep the best.
		best, _, err := core.Portfolio(in,
			[]string{"greedy", "mincostflow", "random-v", "random-u"}, *seed)
		if err != nil {
			return err
		}
		m = best
	} else if *algo == "greedy" && *index != "" {
		kind, err := indexKindByName(*index)
		if err != nil {
			return err
		}
		m = core.GreedyOpts(in, core.GreedyOptions{Index: kind})
	} else {
		solve, err := core.LookupSolver(*algo)
		if err != nil {
			return err
		}
		m = solve(in, rand.New(rand.NewSource(*seed)))
	}
	elapsed := time.Since(start)
	if err := core.Validate(in, m); err != nil {
		return fmt.Errorf("internal error: infeasible matching: %w", err)
	}
	if *sessionPath != "" {
		sf, err := os.Create(*sessionPath)
		if err != nil {
			return err
		}
		meta := encoding.SessionMeta{
			Algorithm: *algo,
			Seed:      *seed,
			Seconds:   elapsed.Seconds(),
			CreatedAt: time.Now().UTC(),
		}
		err = encoding.EncodeSession(sf, in, m, meta, simInfo.Kind, simInfo.Dim, simInfo.MaxT)
		if cerr := sf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}

	out := stdout
	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		out = of
	}
	switch *format {
	case "json":
		err = encoding.EncodeMatching(out, m)
	case "csv":
		err = encoding.WriteMatchingCSV(out, m)
	default:
		return fmt.Errorf("unknown format %q (json or csv)", *format)
	}
	if err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "%s: |V|=%d |U|=%d |CF|=%d -> %d pairs, MaxSum=%.4f in %v\n",
			*algo, in.NumEvents(), in.NumUsers(), conflictCount(in), m.Size(), m.MaxSum(), elapsed)
	}
	if *showReport {
		rep, err := report.Build(in, m, *skipBound)
		if err != nil {
			return err
		}
		fmt.Fprint(os.Stderr, rep)
	}
	return nil
}

// indexKindByName resolves the -index flag.
func indexKindByName(name string) (core.IndexKind, error) {
	kinds := []core.IndexKind{
		core.IndexChunked, core.IndexSorted, core.IndexKDTree,
		core.IndexIDistance, core.IndexVAFile, core.IndexParallel, core.IndexLSH,
	}
	for _, k := range kinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown index %q (chunked, sorted, kdtree, idistance, vafile, parallel, lsh)", name)
}

func conflictCount(in *core.Instance) int {
	if in.Conflicts == nil {
		return 0
	}
	return in.Conflicts.Edges()
}
