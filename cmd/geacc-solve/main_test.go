package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/encoding"
)

func writeInstance(t *testing.T) string {
	t.Helper()
	in, err := core.NewMatrixInstance(
		[]core.Event{{Cap: 2}, {Cap: 1}},
		[]core.User{{Cap: 1}, {Cap: 1}, {Cap: 2}},
		nil,
		[][]float64{{0.9, 0.1, 0.5}, {0.2, 0.8, 0.3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "inst.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := encoding.EncodeInstance(f, in, encoding.SimMatrix, 0, 0); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSolveJSONOutput(t *testing.T) {
	path := writeInstance(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "greedy", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	m, err := encoding.DecodeMatching(&out)
	if err != nil {
		t.Fatalf("output is not a matching: %v", err)
	}
	if m.Size() == 0 {
		t.Fatal("empty matching")
	}
}

func TestSolveCSVOutput(t *testing.T) {
	path := writeInstance(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "exact", "-format", "csv", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "v,u,sim\n") {
		t.Fatalf("not CSV: %q", out.String())
	}
}

func TestSolveToFile(t *testing.T) {
	path := writeInstance(t)
	outPath := filepath.Join(t.TempDir(), "matching.json")
	var stdout bytes.Buffer
	if err := run([]string{"-in", path, "-out", outPath, "-quiet"}, &stdout); err != nil {
		t.Fatal(err)
	}
	if stdout.Len() != 0 {
		t.Error("wrote to stdout despite -out")
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := encoding.DecodeMatching(f); err != nil {
		t.Fatal(err)
	}
}

func TestSolveErrors(t *testing.T) {
	path := writeInstance(t)
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent.json"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-in", path, "-algo", "quantum"}, &out); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-in", path, "-format", "xml"}, &out); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestSolveReportFlag(t *testing.T) {
	path := writeInstance(t)
	var out bytes.Buffer
	// -report writes to stderr; success of the run plus valid stdout output
	// is what we can assert portably, for both bound modes.
	if err := run([]string{"-in", path, "-report", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := encoding.DecodeMatching(&out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-in", path, "-report", "-no-bound", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestSolvePortfolioAndSession(t *testing.T) {
	path := writeInstance(t)
	sessionPath := filepath.Join(t.TempDir(), "session.json")
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "portfolio", "-session", sessionPath, "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	m, err := encoding.DecodeMatching(&out)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(sessionPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, archived, meta, err := encoding.DecodeSession(f)
	if err != nil {
		t.Fatal(err)
	}
	if archived.MaxSum() != m.MaxSum() {
		t.Fatalf("archived MaxSum %v != printed %v", archived.MaxSum(), m.MaxSum())
	}
	if meta.Algorithm != "portfolio" || meta.CreatedAt.IsZero() {
		t.Fatalf("meta = %+v", meta)
	}
}

func TestSolveRandomBaselineSeeded(t *testing.T) {
	path := writeInstance(t)
	var a, b bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "random-v", "-seed", "5", "-quiet"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path, "-algo", "random-v", "-seed", "5", "-quiet"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed, different output")
	}
}
