package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/encoding"
)

func TestSolveDiagOut(t *testing.T) {
	path := writeInstance(t)
	diagPath := filepath.Join(t.TempDir(), "diag.json")
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "mincostflow", "-diag-out", diagPath, "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	m, err := encoding.DecodeMatching(&out)
	if err != nil {
		t.Fatalf("stdout is not a matching: %v", err)
	}

	raw, err := os.ReadFile(diagPath)
	if err != nil {
		t.Fatal(err)
	}
	var d core.Diagnostics
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("diagnostics is not JSON: %v\n%s", err, raw)
	}
	if d.Algo != "mincostflow" {
		t.Errorf("algo = %q", d.Algo)
	}
	if d.Events != 2 || d.Users != 3 {
		t.Errorf("shape = (%d, %d), want (2, 3)", d.Events, d.Users)
	}
	if d.MaxSum != m.MaxSum() {
		t.Errorf("diag MaxSum %v != printed %v", d.MaxSum, m.MaxSum())
	}
	if d.RelaxedUpperBound <= 0 {
		t.Errorf("relaxed upper bound = %v", d.RelaxedUpperBound)
	}
	wantGap := (d.RelaxedUpperBound - d.MaxSum) / d.RelaxedUpperBound
	if wantGap < 0 {
		wantGap = 0
	}
	if math.Abs(d.Gap-wantGap) > 1e-12 {
		t.Errorf("gap = %v, want %v", d.Gap, wantGap)
	}
	if len(d.Phases) == 0 {
		t.Error("no phase timings recorded")
	}
}

func TestSolveDiagPortfolioAndGreedyIndex(t *testing.T) {
	path := writeInstance(t)
	for _, args := range [][]string{
		{"-in", path, "-algo", "portfolio"},
		{"-in", path, "-algo", "greedy", "-index", "kdtree"},
	} {
		diagPath := filepath.Join(t.TempDir(), "diag.json")
		var out bytes.Buffer
		if err := run(append(args, "-diag-out", diagPath, "-quiet"), &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		raw, err := os.ReadFile(diagPath)
		if err != nil {
			t.Fatal(err)
		}
		var d core.Diagnostics
		if err := json.Unmarshal(raw, &d); err != nil {
			t.Fatalf("%v: diagnostics is not JSON: %v", args, err)
		}
		if d.Algo != args[3] {
			t.Errorf("%v: algo = %q", args, d.Algo)
		}
		if d.Gap < 0 || d.RelaxedUpperBound <= 0 {
			t.Errorf("%v: gap = %v, ub = %v", args, d.Gap, d.RelaxedUpperBound)
		}
	}
}

func TestSolveTraceOut(t *testing.T) {
	path := writeInstance(t)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "exact", "-trace-out", tracePath, "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace is not JSON: %v\n%s", err, raw)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	names := make(map[string]bool)
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q: ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %q: negative ts/dur (%v, %v)", ev.Name, ev.Ts, ev.Dur)
		}
		names[ev.Name] = true
	}
	if !names["solve/exact"] {
		t.Errorf("missing solve/exact span; got %v", names)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", trace.DisplayTimeUnit)
	}
}

func TestSolveBadLoggingFlags(t *testing.T) {
	path := writeInstance(t)
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-log-level", "loud"}, &out); err == nil {
		t.Error("bad -log-level accepted")
	}
	if err := run([]string{"-in", path, "-log-format", "xml"}, &out); err == nil {
		t.Error("bad -log-format accepted")
	}
}
