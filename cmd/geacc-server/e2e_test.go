package main

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestServiceE2E is the crash-recovery end-to-end: build the real binary,
// feed >1000 mixed deltas across 4 named instances, kill -9 the process,
// restart it on the same data directory, and require byte-identical
// GET /instances/{id} responses. A second round kills the server while a
// delta stream is in flight and checks the recovered state is stable
// across further restarts. Gated behind GEACC_E2E=1 (make test-service) so
// the tier-1 suite stays fast.
func TestServiceE2E(t *testing.T) {
	if os.Getenv("GEACC_E2E") != "1" {
		t.Skip("set GEACC_E2E=1 (or run `make test-service`) for the kill -9 e2e")
	}

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "geacc-server")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building geacc-server: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "data")
	addr := freeAddr(t)
	base := "http://" + addr

	srv := startServer(t, bin, addr, dataDir)

	ids := []string{"alpha", "beta", "gamma", "delta"}
	for _, id := range ids {
		mustPost(t, base+"/instances",
			fmt.Sprintf(`{"id":%q,"sim":"euclidean","dim":2,"max_t":5}`, id), http.StatusCreated)
	}

	// >1000 mixed deltas, round-robin across the instances, with periodic
	// scoped and full rebalances, crossing many -snapshot-every boundaries.
	rng := rand.New(rand.NewSource(42))
	events := map[string]int{}
	users := map[string]int{}
	const deltas = 1200
	for i := 0; i < deltas; i++ {
		id := ids[i%len(ids)]
		url := base + "/instances/" + id
		switch r := rng.Intn(20); {
		case r < 6:
			mustPost(t, url+"/events",
				fmt.Sprintf(`{"attrs":[%.3f,%.3f],"cap":%d}`,
					rng.Float64()*40, rng.Float64()*40, rng.Intn(4)), http.StatusOK)
			events[id]++
		case r < 15:
			mustPost(t, url+"/users",
				fmt.Sprintf(`{"attrs":[%.3f,%.3f],"cap":%d}`,
					rng.Float64()*40, rng.Float64()*40, 1+rng.Intn(2)), http.StatusOK)
			users[id]++
		case r < 17 && events[id] > 0:
			mustPost(t, url+"/cancel",
				fmt.Sprintf(`{"event":%d}`, rng.Intn(events[id])), http.StatusOK)
		case r < 18 && users[id] > 0:
			mustPost(t, url+"/cancel",
				fmt.Sprintf(`{"user":%d}`, rng.Intn(users[id])), http.StatusOK)
		case r < 19:
			mustPost(t, url+"/rebalance?scope=dirty", "", http.StatusOK)
		default:
			mustPost(t, url+"/rebalance?scope=full", "", http.StatusOK)
		}
	}

	before := map[string][]byte{}
	for _, id := range ids {
		before[id] = mustGet(t, base+"/instances/"+id)
	}

	// kill -9: no flush, no shutdown hook, nothing graceful.
	if err := srv.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = srv.Wait()

	srv = startServer(t, bin, addr, dataDir)
	for _, id := range ids {
		after := mustGet(t, base+"/instances/"+id)
		if !bytes.Equal(before[id], after) {
			t.Fatalf("instance %s diverged across kill -9:\nbefore: %s\nafter:  %s",
				id, before[id], after)
		}
	}

	// Round two: kill while deltas are in flight. The exact tail is
	// undefined (a torn final op is legitimately dropped), but whatever
	// state the first replay serves must be exactly what every later
	// replay serves.
	done := make(chan struct{})
	go func() {
		defer close(done)
		cl := &http.Client{Timeout: 2 * time.Second}
		for i := 0; ; i++ {
			body := fmt.Sprintf(`{"attrs":[%d.5,1],"cap":1}`, i%40)
			resp, err := cl.Post(base+"/instances/alpha/users", "application/json",
				bytes.NewReader([]byte(body)))
			if err != nil {
				return // server died mid-stream: expected
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(300 * time.Millisecond)
	if err := srv.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = srv.Wait()
	<-done

	srv = startServer(t, bin, addr, dataDir)
	crash1 := map[string][]byte{}
	for _, id := range ids {
		crash1[id] = mustGet(t, base+"/instances/"+id)
	}
	if err := srv.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = srv.Wait()

	startServer(t, bin, addr, dataDir)
	for _, id := range ids {
		again := mustGet(t, base+"/instances/"+id)
		if !bytes.Equal(crash1[id], again) {
			t.Fatalf("instance %s not stable across repeated replays:\nfirst:  %s\nsecond: %s",
				id, crash1[id], again)
		}
	}
}

// freeAddr grabs an ephemeral localhost port and releases it for the
// server to claim.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startServer launches the built binary and waits for /healthz.
func startServer(t *testing.T, bin, addr, dataDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr, "-data-dir", dataDir, "-snapshot-every", "32", "-log-level", "warn")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("server did not become healthy in 15s")
	return nil
}

func mustPost(t *testing.T, url, body string, want int) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("POST %s: %d (want %d): %s", url, resp.StatusCode, want, b)
	}
}

func mustGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, b)
	}
	return b
}
