// Command geacc-server serves the GEACC solvers over JSON/HTTP.
//
// Usage:
//
//	geacc-server -addr :8080 [-debug-addr :6060] [-log-format json]
//
//	curl localhost:8080/algorithms
//	curl -XPOST --data-binary @instance.json 'localhost:8080/solve?algo=greedy'
//	curl -XPOST --data-binary @instance.json 'localhost:8080/solve?algo=greedy&diag=1'
//	curl -XPOST --data-binary @instance.json 'localhost:8080/trace?format=chrome'
//	curl -XPOST --data-binary @session.json localhost:8080/validate
//	curl localhost:8080/metrics                # Prometheus text exposition
//	curl localhost:8080/debug/vars             # metrics (expvar, always on)
//	curl localhost:6060/debug/pprof/           # profiles (only with -debug-addr)
//
// The main listener always serves the solver endpoints plus the metric
// surfaces: Prometheus text at /metrics and expvar JSON at /debug/vars.
// Requests are logged through log/slog (-log-level, -log-format; json
// emits one object per line for log pipelines). Passing -debug-addr
// starts a second, diagnostics-only listener with expvar and
// net/http/pprof — keep it bound to localhost or an internal interface;
// profiling endpoints are not meant for public traffic. See
// internal/server for the endpoint contract and docs/OBSERVABILITY.md for
// the metric catalog and example sessions.
package main

import (
	"flag"
	"net/http"
	"os"
	"time"

	"github.com/ebsnlab/geacc/internal/obs"
	"github.com/ebsnlab/geacc/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "",
		"optional diagnostics listen address (expvar + pprof); empty disables")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		obs.MustLogger(os.Stderr).Error("bad logging flags", "error", err)
		os.Exit(2)
	}

	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           server.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("debug listener starting (expvar + pprof)", "addr", *debugAddr)
			// A failed debug listener must not take the traffic port down
			// with it; log and keep serving.
			logger.Error("debug listener exited", "error", dbg.ListenAndServe())
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.NewWithLogger(logger),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      10 * time.Minute, // min-cost flow on large instances is slow
	}
	logger.Info("listening", "addr", *addr)
	logger.Error("server exited", "error", srv.ListenAndServe())
	os.Exit(1)
}
