// Command geacc-server serves the GEACC solvers over JSON/HTTP: stateless
// one-shot solves at /solve plus long-lived named arrangement instances at
// /instances (create once, stream arrival/cancellation deltas, rebalance
// incrementally).
//
// Usage:
//
//	geacc-server -addr :8080 [-data-dir ./data] [-snapshot-every 256]
//	             [-max-inflight 64] [-queue-depth 256] [-queue-timeout 2s]
//	             [-solve-cache-entries 512] [-debug-addr :6060] [-log-format json]
//
//	curl localhost:8080/algorithms
//	curl -XPOST --data-binary @instance.json 'localhost:8080/solve?algo=greedy'
//	curl -XPOST -d '{"id":"prod","sim":"euclidean","dim":2,"max_t":10}' localhost:8080/instances
//	curl -XPOST -d '{"attrs":[1,2],"cap":3}' localhost:8080/instances/prod/events
//	curl -XPOST -d '{"attrs":[1,1],"cap":1}' localhost:8080/instances/prod/users
//	curl -XPOST 'localhost:8080/instances/prod/rebalance?scope=dirty'
//	curl localhost:8080/instances/prod
//	curl localhost:8080/instances/prod/stats   # WAL drift, gap, op counts
//	curl localhost:8080/healthz                # liveness
//	curl localhost:8080/readyz                 # readiness (503 during replay)
//	curl localhost:8080/statusz                # build, uptime, SLO windows
//	curl localhost:8080/version                # build identity
//	curl localhost:8080/metrics                # Prometheus text exposition
//	curl localhost:8080/debug/vars             # metrics (expvar, always on)
//	curl localhost:6060/debug/pprof/           # profiles (only with -debug-addr)
//
// With -data-dir, every instance delta is write-ahead logged (and
// periodically snapshotted) under that directory, and a restarted server
// replays each instance to its exact pre-crash arrangement before
// listening. Without it, instances are ephemeral. See docs/SERVICE.md for
// the full API and file-format contract.
//
// The main listener always serves the solver endpoints plus the metric
// surfaces: Prometheus text at /metrics and expvar JSON at /debug/vars.
// Requests are logged through log/slog (-log-level, -log-format; json
// emits one object per line for log pipelines). Passing -debug-addr
// starts a second, diagnostics-only listener with expvar and
// net/http/pprof — keep it bound to localhost or an internal interface;
// profiling endpoints are not meant for public traffic. See
// internal/server for the endpoint contract and docs/OBSERVABILITY.md for
// the metric catalog and example sessions.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"github.com/ebsnlab/geacc/internal/buildinfo"
	"github.com/ebsnlab/geacc/internal/obs"
	"github.com/ebsnlab/geacc/internal/partition"
	"github.com/ebsnlab/geacc/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "",
		"optional diagnostics listen address (expvar + pprof); empty disables")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	dataDir := flag.String("data-dir", "",
		"persist named instances (op logs + snapshots) under this directory; empty keeps them in memory")
	snapshotEvery := flag.Int("snapshot-every", server.DefaultSnapshotEvery,
		"with -data-dir, fold an instance's op log into a snapshot every N ops")
	maxInflight := flag.Int("max-inflight", server.DefaultMaxInflight,
		"solver requests (/solve, /trace, /report, rebalances) running at once; excess queues, then sheds 429")
	queueDepth := flag.Int("queue-depth", server.DefaultQueueDepth,
		"solver requests allowed to wait for a slot; beyond this the server sheds 429 immediately (negative disables queueing)")
	queueTimeout := flag.Duration("queue-timeout", server.DefaultQueueTimeout,
		"longest a queued solver request waits before it is shed with 429")
	solveCacheEntries := flag.Int("solve-cache-entries", server.DefaultSolveCacheEntries,
		"entries in the content-addressed /solve memo cache (negative disables caching; per-request opt-out via ?cache=0)")
	approxShard := flag.Bool("approx-shard", false,
		"approximate-shard giant components by default on /solve and rebalances (per-request opt-out via ?approx_shard=0)")
	shardMaxArea := flag.Int64("shard-max-area", partition.DefaultMaxArea,
		"with -approx-shard, shard components whose |V|·|U| exceeds this area")
	shardStrategy := flag.String("shard-strategy", "",
		"with -approx-shard, split heuristic: modularity (default) or bfs")
	shardDriftBudget := flag.Float64("shard-drift-budget", partition.DefaultDriftBudget,
		"with -approx-shard, max tolerated drift estimate before monolithic fallback")
	showVersion := flag.Bool("version", false, "print the build identity and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(buildinfo.Get())
		return
	}

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		obs.MustLogger(os.Stderr).Error("bad logging flags", "error", err)
		os.Exit(2)
	}

	var shard *partition.Options
	if *approxShard {
		strat, err := partition.ParseStrategy(*shardStrategy)
		if err != nil {
			logger.Error("bad shard flags", "error", err)
			os.Exit(2)
		}
		sh := partition.Options{
			MaxArea:     *shardMaxArea,
			Strategy:    strat,
			DriftBudget: *shardDriftBudget,
		}.Normalized()
		shard = &sh
	}

	// Replay runs lazily: the listener comes up immediately and /readyz
	// answers 503 until every persisted instance is back, so a restart
	// behind a load balancer fails its readiness probe instead of its TCP
	// connects while a large op log replays.
	handler, err := server.NewWithConfig(server.Config{
		Logger:        logger,
		DataDir:       *dataDir,
		SnapshotEvery: *snapshotEvery,
		LazyReplay:    true,
		MaxInflight:   *maxInflight,
		QueueDepth:    *queueDepth,
		QueueTimeout:  *queueTimeout,

		SolveCacheEntries: *solveCacheEntries,
		Shard:             shard,
	})
	if err != nil {
		logger.Error("startup failed", "error", err)
		os.Exit(1)
	}
	logger.Info("starting", "version", buildinfo.Get().String())

	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           server.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("debug listener starting (expvar + pprof)", "addr", *debugAddr)
			// A failed debug listener must not take the traffic port down
			// with it; log and keep serving.
			logger.Error("debug listener exited", "error", dbg.ListenAndServe())
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      10 * time.Minute, // min-cost flow on large instances is slow
	}
	logger.Info("listening", "addr", *addr)
	logger.Error("server exited", "error", srv.ListenAndServe())
	os.Exit(1)
}
