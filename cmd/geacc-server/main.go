// Command geacc-server serves the GEACC solvers over JSON/HTTP.
//
// Usage:
//
//	geacc-server -addr :8080
//
//	curl localhost:8080/algorithms
//	curl -XPOST --data-binary @instance.json 'localhost:8080/solve?algo=greedy'
//	curl -XPOST --data-binary @session.json localhost:8080/validate
//
// See internal/server for the endpoint contract.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"github.com/ebsnlab/geacc/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      10 * time.Minute, // min-cost flow on large instances is slow
	}
	fmt.Printf("geacc-server listening on %s\n", *addr)
	log.Fatal(srv.ListenAndServe())
}
