// Command geacc-server serves the GEACC solvers over JSON/HTTP.
//
// Usage:
//
//	geacc-server -addr :8080 [-debug-addr :6060]
//
//	curl localhost:8080/algorithms
//	curl -XPOST --data-binary @instance.json 'localhost:8080/solve?algo=greedy'
//	curl -XPOST --data-binary @session.json localhost:8080/validate
//	curl localhost:8080/debug/vars          # metrics (expvar, always on)
//	curl localhost:6060/debug/pprof/        # profiles (only with -debug-addr)
//
// The main listener always serves the solver endpoints plus the expvar
// metrics page at /debug/vars. Passing -debug-addr starts a second,
// diagnostics-only listener with expvar and net/http/pprof — keep it bound
// to localhost or an internal interface; profiling endpoints are not meant
// for public traffic. See internal/server for the endpoint contract and
// docs/OBSERVABILITY.md for the metric catalog and example sessions.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"github.com/ebsnlab/geacc/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "",
		"optional diagnostics listen address (expvar + pprof); empty disables")
	flag.Parse()

	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           server.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			fmt.Printf("geacc-server debug listener (expvar + pprof) on %s\n", *debugAddr)
			// A failed debug listener must not take the traffic port down
			// with it; log and keep serving.
			log.Printf("debug listener exited: %v", dbg.ListenAndServe())
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      10 * time.Minute, // min-cost flow on large instances is slow
	}
	fmt.Printf("geacc-server listening on %s\n", *addr)
	log.Fatal(srv.ListenAndServe())
}
