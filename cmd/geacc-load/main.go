// Command geacc-load drives sustained HTTP load against a geacc-server and
// reports client-side latency quantiles, achieved throughput, and status
// accounting (shed 429s included). It is the measurement tool behind
// BENCH_server.json and make load-smoke / bench-server.
//
// Usage:
//
//	geacc-load -list
//	geacc-load -scenario solve-greedy -addr http://127.0.0.1:8080 \
//	           [-concurrency 8] [-warmup 2s] [-measure 10s] [-seed 1] [-out report.json]
//	geacc-load -scenario solve-greedy -open -rate 200        # open loop
//	geacc-load -pin BENCH_server.json                         # pin the standard suite
//	geacc-load -compare BENCH_server.json [-tol 0.20]         # gate against the pin
//
// With an empty -addr the tool self-hosts: it builds the full in-process
// server handler (ephemeral instances) on a loopback listener and loads
// that — the mode the repo's pinned snapshot and CI smoke use, so results
// do not depend on an externally managed process. The standard suite
// behind -pin/-compare runs the closed-loop lanes (solve-greedy,
// delta-mix, solve-repeat, solve-repeat-cold) plus an open-loop overload
// lane (overload-mincostflow) that self-hosts a deliberately tiny
// admission config and is gated on shed rate and accepted-request p99
// rather than raw throughput.
//
// Closed loop (default) runs -concurrency workers, each issuing its next
// request when the previous answer lands — throughput floats, latency is
// honest. Open loop (-open -rate R) fires on a fixed schedule regardless
// of completions — the shape that exposes queueing collapse and admission
// shedding. See docs/LOAD.md for the report schema.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"github.com/ebsnlab/geacc/internal/load"
	"github.com/ebsnlab/geacc/internal/server"
)

func main() {
	addr := flag.String("addr", "", "base URL of the server under test; empty self-hosts an in-process server")
	scenario := flag.String("scenario", "solve-greedy", "workload scenario (see -list)")
	list := flag.Bool("list", false, "list the builtin scenarios and exit")
	open := flag.Bool("open", false, "open loop: fire on the -rate schedule regardless of completions")
	rate := flag.Float64("rate", 100, "open-loop target request rate per second")
	concurrency := flag.Int("concurrency", 8, "closed-loop workers; open-loop outstanding-request cap")
	warmup := flag.Duration("warmup", 2*time.Second, "unrecorded warmup phase")
	measure := flag.Duration("measure", 10*time.Second, "recorded measure phase")
	seed := flag.Int64("seed", 1, "workload seed: same scenario+seed+concurrency issues the same requests")
	approxShard := flag.Bool("approx-shard", false,
		"append ?approx_shard=1 to every solve of a solve-kind scenario (bounded-drift sharding of giant components)")
	shardMaxArea := flag.Int64("shard-max-area", 0,
		"with -approx-shard, append shard_max_area=N to every solve (0 keeps the server default)")
	shardStrategy := flag.String("shard-strategy", "",
		"with -approx-shard, append shard_strategy= to every solve: modularity or bfs (empty keeps the server default)")
	out := flag.String("out", "", "write the JSON report here; empty prints only the summary")
	pin := flag.String("pin", "", "run the standard suite and write its snapshot to this path (BENCH_server.json)")
	compare := flag.String("compare", "", "run the standard suite and compare against this snapshot; exit 1 on regression")
	tol := flag.Float64("tol", 0.20, "with -compare, allowed relative regression in p99 and achieved throughput")
	flag.Parse()

	if *list {
		for _, sc := range load.Builtins() {
			fmt.Printf("%-20s %-6s %s\n", sc.Name, sc.Kind, sc.Description)
		}
		return
	}

	opt := load.Options{
		OpenLoop:    *open,
		RatePerSec:  *rate,
		Concurrency: *concurrency,
		Warmup:      *warmup,
		Measure:     *measure,
		Seed:        *seed,
	}

	if *pin != "" || *compare != "" {
		if err := runSuite(*addr, opt, *pin, *compare, *tol); err != nil {
			fatal(err)
		}
		return
	}

	base := *addr
	if base == "" {
		handler, err := server.NewWithConfig(server.Config{})
		if err != nil {
			fatal(err)
		}
		ts := httptest.NewServer(handler)
		defer ts.Close()
		base = ts.URL
		fmt.Fprintf(os.Stderr, "self-hosting in-process server at %s\n", base)
	}
	opt.BaseURL = base

	sc, err := load.Builtin(*scenario)
	if err != nil {
		fatal(err)
	}
	if *approxShard {
		sc.ApproxShard = true
		sc.ShardMaxArea = *shardMaxArea
		sc.ShardStrategy = *shardStrategy
	}
	opt.Scenario = sc
	rep, err := load.Run(context.Background(), opt)
	if err != nil {
		fatal(err)
	}
	fmt.Fprint(os.Stderr, rep.Format())
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	} else {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// suiteLane is one entry of the standard pinned suite: a builtin scenario
// plus the loop shape, gate, and (when self-hosting) the server config it
// runs against.
type suiteLane struct {
	scenario    string
	open        bool
	rate        float64 // open-loop offered rate
	concurrency int     // 0 keeps the -concurrency flag's value
	gate        string  // ServerBenchPoint.Gate; "" is the latency gate
	cfg         server.Config
}

// suite is the standard pinned set. The closed-loop lanes gate latency and
// throughput; solve-repeat vs solve-repeat-cold pins the memo-cache hit
// path against its cold baseline. The overload lane self-hosts a
// deliberately tiny admission config (2 inflight, no queue) and offers
// more load than that capacity, so its pinned numbers are the shed rate
// and the accepted-request p99 — the axes its "overload" gate compares.
var suite = []suiteLane{
	{scenario: "solve-greedy"},
	{scenario: "delta-mix"},
	{scenario: "solve-repeat"},
	{scenario: "solve-repeat-cold"},
	{
		scenario: "overload-mincostflow",
		open:     true, rate: 60, concurrency: 16,
		gate: "overload",
		cfg:  server.Config{MaxInflight: 2, QueueDepth: -1},
	},
}

// runSuite measures the standard suite and either pins the snapshot or
// gates against a committed one. With an empty addr every lane self-hosts
// its own in-process server (fresh state, per-lane admission config); with
// an explicit addr all lanes share it and the overload lane measures that
// server's admission config instead of the suite's tiny one.
func runSuite(addr string, opt load.Options, pinPath, comparePath string, tol float64) error {
	var points []load.ServerBenchPoint
	for _, lane := range suite {
		sc, err := load.Builtin(lane.scenario)
		if err != nil {
			return err
		}
		laneOpt := opt
		laneOpt.Scenario = sc
		laneOpt.OpenLoop = lane.open
		laneOpt.RatePerSec = lane.rate
		if lane.concurrency > 0 {
			laneOpt.Concurrency = lane.concurrency
		}
		laneOpt.BaseURL = addr
		var ts *httptest.Server
		if addr == "" {
			handler, err := server.NewWithConfig(lane.cfg)
			if err != nil {
				return err
			}
			ts = httptest.NewServer(handler)
			laneOpt.BaseURL = ts.URL
		}
		rep, err := load.Run(context.Background(), laneOpt)
		if ts != nil {
			ts.Close()
		}
		if err != nil {
			return err
		}
		fmt.Fprint(os.Stderr, rep.Format())
		point := rep.Point()
		point.Gate = lane.gate
		points = append(points, point)
	}
	if pinPath != "" {
		f, err := os.Create(pinPath)
		if err != nil {
			return err
		}
		if err := load.WriteServerBenchJSON(f, points); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pinned %d points to %s\n", len(points), pinPath)
		return nil
	}
	old, err := load.ReadServerBenchFile(comparePath)
	if err != nil {
		return err
	}
	deltas, onlyOld, onlyNew := load.CompareServerBench(old, points)
	report, regressed := load.FormatServerComparison(deltas, onlyOld, onlyNew, tol)
	fmt.Print(report)
	if len(regressed) > 0 {
		return fmt.Errorf("load: %d scenario(s) regressed beyond %.0f%%: %v", len(regressed), tol*100, regressed)
	}
	fmt.Printf("no scenario regressed beyond %.0f%%\n", tol*100)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geacc-load:", err)
	os.Exit(1)
}
