package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/ebsnlab/geacc/internal/encoding"
)

func TestGenSynthetic(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-kind", "synthetic", "-events", "8", "-users", "30", "-cf", "0.5", "-seed", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	in, err := encoding.DecodeInstance(&out)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumEvents() != 8 || in.NumUsers() != 30 {
		t.Fatalf("sizes %d/%d", in.NumEvents(), in.NumUsers())
	}
	if in.Conflicts.Edges() != 14 { // round(0.5 * 28)
		t.Errorf("|CF| = %d, want 14", in.Conflicts.Edges())
	}
}

func TestGenMeetup(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "meetup", "-city", "auckland"}, &out); err != nil {
		t.Fatal(err)
	}
	in, err := encoding.DecodeInstance(&out)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumEvents() != 37 || in.NumUsers() != 569 {
		t.Fatalf("auckland sizes %d/%d, TABLE II says 37/569", in.NumEvents(), in.NumUsers())
	}
}

func TestGenScheduled(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "scheduled", "-events", "10", "-users", "40"}, &out); err != nil {
		t.Fatal(err)
	}
	in, err := encoding.DecodeInstance(&out)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumEvents() != 10 {
		t.Fatalf("sizes %d", in.NumEvents())
	}
}

func TestGenToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.json")
	var out bytes.Buffer
	if err := run([]string{"-kind", "synthetic", "-events", "3", "-users", "5", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := encoding.DecodeInstance(f); err != nil {
		t.Fatal(err)
	}
}

func TestGenErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-kind", "bogus"},
		{"-kind", "synthetic", "-events", "0"},
		{"-kind", "synthetic", "-attrs", "pareto"},
		{"-kind", "meetup", "-city", "atlantis"},
		{"-kind", "scheduled", "-users", "-1"},
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestGenDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	args := []string{"-kind", "synthetic", "-events", "4", "-users", "6", "-seed", "9"}
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed, different instance")
	}
}
