// Command geacc-gen generates GEACC instances to JSON: the paper's
// synthetic workloads (TABLE III), the simulated Meetup cities (TABLE II),
// or schedule-driven instances whose conflicts come from timetables and
// travel times.
//
// Usage:
//
//	geacc-gen -kind synthetic -events 100 -users 1000 -cf 0.25 -out inst.json
//	geacc-gen -kind meetup -city auckland -out auckland.json
//	geacc-gen -kind scheduled -events 50 -users 500 -out day.json
//	geacc-gen -kind clustered -communities 8 -events 100 -users 1000 -out comm.json
//
// The clustered kind produces multi-community instances (cross-community
// similarity exactly 0, conflicts intra-community) — the workload shape for
// geacc-solve -decompose. With -bridge-frac > 0 a sparse set of bridge
// users ring-connects the communities into one giant component — the
// workload shape for geacc-solve -approx-shard.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/dataset"
	"github.com/ebsnlab/geacc/internal/encoding"
	"github.com/ebsnlab/geacc/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		obs.MustLogger(os.Stderr).Error("geacc-gen failed", "error", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("geacc-gen", flag.ContinueOnError)
	kind := fs.String("kind", "synthetic", "generator: synthetic, meetup, scheduled, or clustered")
	events := fs.Int("events", 100, "|V| (synthetic, scheduled)")
	users := fs.Int("users", 1000, "|U| (synthetic, scheduled)")
	dim := fs.Int("dim", 20, "attribute dimensionality d (synthetic, scheduled)")
	attrDist := fs.String("attrs", "uniform", "attribute distribution: uniform, normal, zipf (synthetic)")
	capDist := fs.String("caps", "uniform", "capacity distribution: uniform, normal")
	maxCv := fs.Int("max-cv", 50, "event capacity upper bound (synthetic, scheduled)")
	maxCu := fs.Int("max-cu", 4, "user capacity upper bound (synthetic, scheduled)")
	cf := fs.Float64("cf", 0.25, "conflict density |CF|/(|V|(|V|-1)/2) (synthetic, meetup)")
	city := fs.String("city", "auckland", "meetup city: vancouver, auckland, singapore")
	communities := fs.Int("communities", 8, "number of attribute clusters k (clustered)")
	blockDim := fs.Int("block-dim", 8, "per-cluster attribute block width (clustered)")
	bridgeFrac := fs.Float64("bridge-frac", 0,
		"fraction of users bridging to the next cluster; >0 ring-connects the clusters into one giant component (clustered)")
	seed := fs.Int64("seed", 1, "random seed")
	outPath := fs.String("out", "", "write the instance here instead of stdout")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}

	var (
		in   *core.Instance
		simK encoding.SimKind
		d    int
		maxT float64
	)
	switch *kind {
	case "synthetic":
		cfg := dataset.DefaultSynthetic()
		cfg.NumEvents = *events
		cfg.NumUsers = *users
		cfg.Dim = *dim
		cfg.AttrDist = dataset.Distribution(*attrDist)
		cfg.EventCapDist = dataset.Distribution(*capDist)
		cfg.UserCapDist = dataset.Distribution(*capDist)
		cfg.EventCapMax = *maxCv
		cfg.UserCapMax = *maxCu
		cfg.CFRatio = *cf
		cfg.Seed = *seed
		in, err = cfg.Generate()
		simK, d, maxT = encoding.SimEuclidean, cfg.Dim, cfg.MaxT
	case "meetup":
		cfg := dataset.MeetupConfig{
			City:    *city,
			CapDist: dataset.Distribution(*capDist),
			CFRatio: *cf,
			Seed:    *seed,
		}
		in, err = cfg.Generate()
		simK, d, maxT = encoding.SimEuclidean, dataset.MeetupTagCount, 1
	case "scheduled":
		cfg := dataset.DefaultScheduled()
		cfg.NumEvents = *events
		cfg.NumUsers = *users
		cfg.Dim = *dim
		cfg.EventCapMax = *maxCv
		cfg.UserCapMax = *maxCu
		cfg.Seed = *seed
		in, _, err = cfg.Generate()
		simK, d, maxT = encoding.SimEuclidean, cfg.Dim, cfg.MaxT
	case "clustered":
		cfg := dataset.DefaultClustered()
		cfg.NumEvents = *events
		cfg.NumUsers = *users
		cfg.Communities = *communities
		cfg.BlockDim = *blockDim
		cfg.BridgeFrac = *bridgeFrac
		cfg.EventCapMax = *maxCv
		cfg.UserCapMax = *maxCu
		cfg.CFRatio = *cf
		cfg.Seed = *seed
		in, err = cfg.Generate()
		simK, d, maxT = encoding.SimCosine, cfg.Dim(), 1
	default:
		return fmt.Errorf("unknown kind %q (synthetic, meetup, scheduled, clustered)", *kind)
	}
	if err != nil {
		return err
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := encoding.EncodeInstance(out, in, simK, d, maxT); err != nil {
		return err
	}
	logger.Info("generated instance", "kind", *kind,
		"events", in.NumEvents(), "users", in.NumUsers(), "conflicts", in.Conflicts.Edges())
	return nil
}
