package geacc

import (
	"errors"
	"math"
	"testing"
)

// table1Problem is the paper's TABLE I example through the public API.
func table1Problem(t *testing.T) *Problem {
	t.Helper()
	p, err := NewProblem(
		[]Event{{Cap: 5}, {Cap: 3}, {Cap: 2}},
		[]User{{Cap: 3}, {Cap: 1}, {Cap: 1}, {Cap: 2}, {Cap: 3}},
		WithSimilarityMatrix([][]float64{
			{0.93, 0.43, 0.84, 0.64, 0.65},
			{0, 0.35, 0.19, 0.21, 0.4},
			{0.86, 0.57, 0.78, 0.79, 0.68},
		}),
		WithConflictPairs([][2]int{{0, 2}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPublicAPITable1(t *testing.T) {
	p := table1Problem(t)
	want := map[Algorithm]float64{Exact: 4.39, Greedy: 4.28, MinCostFlow: 4.13}
	for algo, expected := range want {
		m, err := p.Solve(algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if err := p.Validate(m); err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if math.Abs(m.MaxSum()-expected) > 1e-9 {
			t.Errorf("%v MaxSum = %v, want %v", algo, m.MaxSum(), expected)
		}
	}
	if ub := p.UpperBound(); math.Abs(ub-5.64) > 1e-9 {
		t.Errorf("UpperBound = %v, want 5.64", ub)
	}
}

func TestPublicAPIRandomBaselines(t *testing.T) {
	p := table1Problem(t)
	for _, algo := range []Algorithm{RandomV, RandomU} {
		a, err := p.SolveOpts(algo, SolveOptions{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(a); err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		b, err := p.SolveOpts(algo, SolveOptions{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if a.MaxSum() != b.MaxSum() {
			t.Errorf("%v not deterministic for a fixed seed", algo)
		}
	}
}

func TestPublicAPIEuclideanProblem(t *testing.T) {
	p, err := NewProblem(
		[]Event{{Attrs: []float64{0, 0}, Cap: 2}, {Attrs: []float64{10, 10}, Cap: 1}},
		[]User{{Attrs: []float64{1, 1}, Cap: 1}, {Attrs: []float64{9, 9}, Cap: 1}},
		WithEuclideanSimilarity(2, 10),
	)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Solve(Greedy)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 2 {
		t.Fatalf("size = %d, want 2", m.Size())
	}
	if !m.Contains(0, 0) || !m.Contains(1, 1) {
		t.Errorf("pairs = %v", m.SortedPairs())
	}
	if p.Similarity(0, 0) <= p.Similarity(0, 1) {
		t.Error("similarity ordering wrong")
	}
}

func TestPublicAPIScheduleConflicts(t *testing.T) {
	// Bob's Sunday from the paper's introduction: hiking 8-12, badminton
	// 9-11, basketball 11:30-13:30 an hour away. All three conflict.
	schedules := []Schedule{
		{Start: 8, End: 12, X: 0, Y: 0},
		{Start: 9, End: 11, X: 5, Y: 0},
		{Start: 11.5, End: 13.5, X: 65, Y: 0},
	}
	p, err := NewProblem(
		[]Event{{Cap: 10}, {Cap: 10}, {Cap: 10}},
		[]User{{Cap: 3}}, // Bob would attend all three if he could
		WithSimilarityMatrix([][]float64{{0.9}, {0.8}, {0.7}}),
		WithSchedules(schedules, 60),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Conflicting(0, 1) || !p.Conflicting(1, 2) || !p.Conflicting(0, 2) {
		t.Fatal("schedule conflicts not derived")
	}
	m, err := p.Solve(Exact)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 1 || !m.Contains(0, 0) {
		t.Fatalf("Bob must attend exactly the hike: %v", m.SortedPairs())
	}
}

func TestPublicAPIConflictUnion(t *testing.T) {
	// Explicit pairs and schedule-derived conflicts combine.
	schedules := []Schedule{
		{Start: 0, End: 1}, {Start: 5, End: 6}, {Start: 5.5, End: 7},
	}
	p, err := NewProblem(
		[]Event{{Cap: 1}, {Cap: 1}, {Cap: 1}},
		[]User{{Cap: 3}},
		WithSimilarityMatrix([][]float64{{0.5}, {0.5}, {0.5}}),
		WithConflictPairs([][2]int{{0, 1}}),
		WithSchedules(schedules, 1000),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Conflicting(0, 1) {
		t.Error("explicit pair lost")
	}
	if !p.Conflicting(1, 2) {
		t.Error("derived overlap lost")
	}
	if p.Conflicting(0, 2) {
		t.Error("phantom conflict")
	}
}

func TestNewProblemErrors(t *testing.T) {
	events := []Event{{Cap: 1}}
	users := []User{{Cap: 1}}
	matrix := [][]float64{{0.5}}
	cases := map[string][]Option{
		"no similarity":   {},
		"two sims":        {WithSimilarityMatrix(matrix), WithEuclideanSimilarity(2, 1)},
		"bad euclid":      {WithEuclideanSimilarity(0, 1)},
		"nil func":        {WithSimilarityFunc(nil)},
		"conflict range":  {WithSimilarityMatrix(matrix), WithConflictPairs([][2]int{{0, 4}})},
		"schedule count":  {WithSimilarityMatrix(matrix), WithSchedules(nil, 10)},
		"schedule speed":  {WithSimilarityMatrix(matrix), WithSchedules([]Schedule{{Start: 0, End: 1}}, 0)},
		"bad matrix size": {WithSimilarityMatrix([][]float64{{0.5, 0.5}})},
	}
	for name, opts := range cases {
		if _, err := NewProblem(events, users, opts...); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestWithSchedulesNilIsCountError(t *testing.T) {
	// A nil schedule list with one event must fail the length check, not
	// silently mean "no conflicts".
	_, err := NewProblem(
		[]Event{{Cap: 1}}, []User{{Cap: 1}},
		WithSimilarityMatrix([][]float64{{0.5}}),
		WithSchedules(nil, 10),
	)
	if err == nil {
		t.Fatal("nil schedules accepted")
	}
}

func TestWithSimilarityFuncCustom(t *testing.T) {
	constHalf := func(a, b []float64) float64 { return 0.5 }
	p, err := NewProblem(
		[]Event{{Attrs: []float64{1}, Cap: 1}},
		[]User{{Attrs: []float64{2}, Cap: 1}},
		WithSimilarityFunc(constHalf),
	)
	if err != nil {
		t.Fatal(err)
	}
	if p.Similarity(0, 0) != 0.5 {
		t.Errorf("custom similarity = %v", p.Similarity(0, 0))
	}
}

func TestCosineSimilarityOption(t *testing.T) {
	p, err := NewProblem(
		[]Event{{Attrs: []float64{1, 0}, Cap: 1}},
		[]User{{Attrs: []float64{1, 0}, Cap: 1}, {Attrs: []float64{0, 1}, Cap: 1}},
		WithCosineSimilarity(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if p.Similarity(0, 0) != 1 || p.Similarity(0, 1) != 0 {
		t.Error("cosine similarity wrong")
	}
}

func TestExactNodeLimitSurfaced(t *testing.T) {
	// A larger random-ish problem with a tiny budget must return
	// ErrBudgetExceeded and still hand back a feasible matching.
	events := make([]Event, 6)
	for i := range events {
		events[i] = Event{Cap: 3}
	}
	users := make([]User, 10)
	for i := range users {
		users[i] = User{Cap: 2}
	}
	matrix := make([][]float64, len(events))
	for v := range matrix {
		matrix[v] = make([]float64, len(users))
		for u := range matrix[v] {
			matrix[v][u] = float64((v*7+u*3)%10+1) / 10
		}
	}
	p, err := NewProblem(events, users, WithSimilarityMatrix(matrix))
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.SolveOpts(Exact, SolveOptions{ExactNodeLimit: 50})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if m == nil {
		t.Fatal("no best-effort matching returned")
	}
	if err := p.Validate(m); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	p := table1Problem(t)
	if _, err := p.Solve(Algorithm(99)); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if Algorithm(99).String() != "unknown" {
		t.Error("String for unknown algorithm")
	}
	names := map[Algorithm]string{
		Greedy: "greedy", MinCostFlow: "mincostflow", Exact: "exact",
		RandomV: "random-v", RandomU: "random-u",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
}

func TestProblemAccessors(t *testing.T) {
	p := table1Problem(t)
	if p.NumEvents() != 3 || p.NumUsers() != 5 {
		t.Error("sizes wrong")
	}
	if p.Similarity(0, 0) != 0.93 {
		t.Error("similarity wrong")
	}
	if !p.Conflicting(0, 2) || p.Conflicting(0, 1) {
		t.Error("conflicts wrong")
	}
}

// TestSolveOptsDecompose: every public algorithm gives a feasible matching
// through the decomposed path, and the exact MaxSum matches the monolithic
// exact solve (the instance's zero-similarity column for user 0 of event 1
// and its conflict edge give a nontrivial union graph).
func TestSolveOptsDecompose(t *testing.T) {
	p := table1Problem(t)
	wholeExact, err := p.Solve(Exact)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{Greedy, MinCostFlow, Exact, RandomV, RandomU} {
		m, err := p.SolveOpts(algo, SolveOptions{Decompose: true, Seed: 11, DecomposeWorkers: 2})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if err := p.Validate(m); err != nil {
			t.Fatalf("%v: infeasible decomposed matching: %v", algo, err)
		}
		if algo == Exact && math.Abs(m.MaxSum()-wholeExact.MaxSum()) > 1e-9 {
			t.Errorf("decomposed exact MaxSum %v, want %v", m.MaxSum(), wholeExact.MaxSum())
		}
	}
	if _, err := p.SolveOpts(Algorithm(99), SolveOptions{Decompose: true}); err == nil {
		t.Error("unknown algorithm accepted under Decompose")
	}
}

// TestSolveOptsDecomposeNodeLimit: a tripped per-component exact budget
// surfaces ErrBudgetExceeded with a feasible best-so-far matching, matching
// the monolithic contract.
func TestSolveOptsDecomposeNodeLimit(t *testing.T) {
	p := table1Problem(t)
	m, err := p.SolveOpts(Exact, SolveOptions{Decompose: true, ExactNodeLimit: 1})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if m == nil {
		t.Fatal("no matching returned with the budget error")
	}
	if err := p.Validate(m); err != nil {
		t.Fatal(err)
	}
}
