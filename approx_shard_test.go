package geacc

import (
	"testing"

	"github.com/ebsnlab/geacc/internal/dataset"
)

// bridgedProblem lifts a bridged clustered instance (one giant similarity
// component) into the public API via its cosine attributes.
func bridgedProblem(t *testing.T, maxArea int64) (*Problem, SolveOptions) {
	t.Helper()
	cfg := dataset.ClusteredConfig{
		NumEvents: 24, NumUsers: 240, Communities: 6, BlockDim: 2,
		EventCapMax: 6, UserCapMax: 3, CFRatio: 0.25,
		BridgeFrac: 0.1, Seed: 5,
	}
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	events := make([]Event, in.NumEvents())
	for v := range events {
		events[v] = Event{Attrs: in.Events[v].Attrs, Cap: in.Events[v].Cap}
	}
	users := make([]User, in.NumUsers())
	for u := range users {
		users[u] = User{Attrs: in.Users[u].Attrs, Cap: in.Users[u].Cap}
	}
	var pairs [][2]int
	for v := 0; v < in.NumEvents(); v++ {
		for _, w := range in.Conflicts.Neighbors(v) {
			if v < w {
				pairs = append(pairs, [2]int{v, w})
			}
		}
	}
	p, err := NewProblem(events, users, WithCosineSimilarity(), WithConflictPairs(pairs))
	if err != nil {
		t.Fatal(err)
	}
	return p, SolveOptions{ApproxShard: &ApproxShardOptions{MaxArea: maxArea, DriftBudget: 0.9}}
}

// TestApproxShardFacade: SolveOpts with ApproxShard set returns a feasible
// matching; with a MaxArea nothing exceeds, the result is bit-identical to
// the plain decomposed solve (the flag-off contract, since under-threshold
// components never shard).
func TestApproxShardFacade(t *testing.T) {
	p, opt := bridgedProblem(t, 500)
	sharded, err := p.SolveOpts(MinCostFlow, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(sharded); err != nil {
		t.Fatalf("sharded solve infeasible: %v", err)
	}
	plain, err := p.SolveOpts(MinCostFlow, SolveOptions{Decompose: true})
	if err != nil {
		t.Fatal(err)
	}
	huge := SolveOptions{ApproxShard: &ApproxShardOptions{MaxArea: 1 << 40}}
	same, err := p.SolveOpts(MinCostFlow, huge)
	if err != nil {
		t.Fatal(err)
	}
	pp, sp := plain.SortedPairs(), same.SortedPairs()
	if len(pp) != len(sp) {
		t.Fatalf("under-threshold shard solve changed the pair count: %d vs %d", len(sp), len(pp))
	}
	for i := range pp {
		if pp[i] != sp[i] {
			t.Fatalf("under-threshold shard solve changed pair %d", i)
		}
	}
	// Distinct cache keys: the sharded result must not be served for the
	// plain request (its MaxSum differs on this instance) even though both
	// went through the facade memo cache.
	plainAgain, err := p.SolveOpts(MinCostFlow, SolveOptions{Decompose: true})
	if err != nil {
		t.Fatal(err)
	}
	if plainAgain.MaxSum() != plain.MaxSum() {
		t.Fatal("memo cache crossed between sharded and plain solves")
	}
}

func TestApproxShardFacadeBadStrategy(t *testing.T) {
	p, _ := bridgedProblem(t, 500)
	_, err := p.SolveOpts(MinCostFlow, SolveOptions{
		ApproxShard: &ApproxShardOptions{Strategy: "zigzag"},
	})
	if err == nil {
		t.Fatal("unknown shard strategy accepted")
	}
}
