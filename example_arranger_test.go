package geacc_test

import (
	"fmt"

	geacc "github.com/ebsnlab/geacc"
)

// ExampleNewArranger walks the online-arrangement lifecycle: arrivals are
// placed greedily the moment they land, a cancellation releases and
// re-places the affected users, and Rebalance adopts a batch re-solve when
// it improves the arrangement.
func ExampleNewArranger() {
	arr, err := geacc.NewArranger(geacc.EuclideanSimilarity(2, 10))
	if err != nil {
		panic(err) // only a nil similarity function fails
	}

	// Two events arrive; the second conflicts with the first (same venue,
	// overlapping time), so no user may attend both.
	jazz, err := arr.AddEvent(geacc.Event{Attrs: []float64{1, 2}, Cap: 2}, nil)
	if err != nil {
		panic(err)
	}
	salsa, err := arr.AddEvent(geacc.Event{Attrs: []float64{2, 1}, Cap: 1}, []int{jazz})
	if err != nil {
		panic(err)
	}

	// Users are placed on arrival against whatever is live right now.
	alice, err := arr.AddUser(geacc.User{Attrs: []float64{1, 1}, Cap: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("alice attends", len(arr.UserEvents(alice)), "event (conflict blocks the second)")

	// The jazz night is cancelled: alice is released and re-placed.
	if err := arr.CancelEvent(jazz); err != nil {
		panic(err)
	}
	fmt.Println("after cancellation, alice attends event", arr.UserEvents(alice)[0])

	// Rebalance re-solves the current snapshot and reports the improvement
	// (zero here: the incremental placement is already optimal).
	gain, err := arr.Rebalance()
	if err != nil {
		panic(err)
	}
	fmt.Printf("rebalance gain %.1f, maxsum %.1f\n", gain, arr.MaxSum())

	_ = salsa
	// Output:
	// alice attends 1 event (conflict blocks the second)
	// after cancellation, alice attends event 1
	// rebalance gain 0.0, maxsum 0.9
}
