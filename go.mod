module github.com/ebsnlab/geacc

go 1.22
