package geacc

import (
	"math"
	"testing"
)

func TestSolvePortfolioPicksBest(t *testing.T) {
	p := table1Problem(t)
	m, err := p.SolvePortfolio(1)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy's 4.28 is the best of the racers on TABLE I.
	if math.Abs(m.MaxSum()-4.28) > 1e-9 {
		t.Fatalf("portfolio = %v, want 4.28", m.MaxSum())
	}
	if err := p.Validate(m); err != nil {
		t.Fatal(err)
	}
}

func TestImproveNeverWorse(t *testing.T) {
	p := table1Problem(t)
	start, err := p.SolveOpts(RandomV, SolveOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	improved, err := p.Improve(start)
	if err != nil {
		t.Fatal(err)
	}
	if improved.MaxSum() < start.MaxSum() {
		t.Fatalf("improve regressed: %v -> %v", start.MaxSum(), improved.MaxSum())
	}
	if err := p.Validate(improved); err != nil {
		t.Fatal(err)
	}
}

func TestSolveBudgeted(t *testing.T) {
	p := table1Problem(t)
	prices := []float64{10, 10, 10}
	budgets := []float64{10, 10, 10, 10, 10}
	m, err := p.SolveBudgeted(prices, budgets)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < p.NumUsers(); u++ {
		var spend float64
		for _, pair := range m.Pairs() {
			if pair.U == u {
				spend += prices[pair.V]
			}
		}
		if spend > budgets[u]+1e-9 {
			t.Fatalf("user %d overspends: %v", u, spend)
		}
	}
	if _, err := p.SolveBudgeted([]float64{1}, budgets); err == nil {
		t.Fatal("mismatched prices accepted")
	}
}

func TestTraceWalkthrough(t *testing.T) {
	p := table1Problem(t)
	m, steps := p.Trace()
	if math.Abs(m.MaxSum()-4.28) > 1e-9 {
		t.Fatalf("traced solve = %v", m.MaxSum())
	}
	if len(steps) < 3 {
		t.Fatalf("only %d steps", len(steps))
	}
	if steps[0].V != 0 || steps[0].U != 0 || !steps[0].Accepted {
		t.Fatalf("step 1 = %+v", steps[0])
	}
	if steps[1].Reason != "conflict" {
		t.Fatalf("step 2 = %+v, want the Example 3 conflict rejection", steps[1])
	}
}
