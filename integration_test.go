package geacc

// End-to-end integration: world generation -> city extraction (the paper's
// preprocessing) -> solving (portfolio) -> local-search improvement ->
// quality report -> session archive -> HTTP service round trip. Exercises
// every layer of the repository against each other.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/ebsnlab/geacc/internal/bench"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/dataset"
	"github.com/ebsnlab/geacc/internal/encoding"
	"github.com/ebsnlab/geacc/internal/report"
	"github.com/ebsnlab/geacc/internal/server"
)

func TestEndToEndPipeline(t *testing.T) {
	// 1. Generate the global geo-tagged population and extract cities by
	// location clustering, as the paper's preprocessing does.
	world, err := dataset.DefaultWorld().Generate()
	if err != nil {
		t.Fatal(err)
	}
	cities, err := world.ExtractCities(3, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(cities) != 3 {
		t.Fatalf("extracted %d cities", len(cities))
	}
	in := cities[2].Instance // auckland: the smallest, fastest to solve

	// 2. Solve with the concurrent portfolio and post-optimize.
	best, results, err := core.Portfolio(in, []string{"greedy", "mincostflow", "random-u"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d portfolio results", len(results))
	}
	improved, lsStats, err := core.LocalSearch(in, best, core.LocalSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if improved.MaxSum() < best.MaxSum() {
		t.Fatal("local search regressed")
	}
	_ = lsStats

	// 3. Quality report with the relaxation bound: achieved fraction must
	// be high for greedy-family results (paper Fig. 5c shape).
	rep, err := report.Build(in, improved, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UpperBound < rep.MaxSum {
		t.Fatalf("bound %v below achieved %v", rep.UpperBound, rep.MaxSum)
	}
	if rep.MaxSum < 0.85*rep.UpperBound {
		t.Fatalf("achieved only %.1f%% of the relaxation bound", 100*rep.MaxSum/rep.UpperBound)
	}

	// 4. Archive the session and restore it.
	var archive bytes.Buffer
	meta := encoding.SessionMeta{Algorithm: "portfolio+localsearch", Seed: 3}
	if err := encoding.EncodeSession(&archive, in, improved, meta,
		encoding.SimEuclidean, dataset.MeetupTagCount, 1); err != nil {
		t.Fatal(err)
	}
	restoredIn, restoredM, restoredMeta, err := encoding.DecodeSession(&archive)
	if err != nil {
		t.Fatal(err)
	}
	// MaxSum is re-accumulated in sorted pair order, so compare within
	// floating-point summation tolerance.
	if d := restoredM.MaxSum() - improved.MaxSum(); d > 1e-9 || d < -1e-9 {
		t.Fatalf("session round trip changed MaxSum by %v", d)
	}
	if restoredM.Size() != improved.Size() || restoredMeta.Algorithm != meta.Algorithm {
		t.Fatal("session round trip lost data")
	}

	// 5. Serve the restored instance over HTTP and re-solve remotely.
	srv := httptest.NewServer(server.New())
	defer srv.Close()
	var instDoc bytes.Buffer
	if err := encoding.EncodeInstance(&instDoc, restoredIn,
		encoding.SimEuclidean, dataset.MeetupTagCount, 1); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/solve?algo=greedy", "application/json", &instDoc)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/solve status %d", resp.StatusCode)
	}
	var solved server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&solved); err != nil {
		t.Fatal(err)
	}
	// The HTTP greedy must agree with the in-process greedy on this
	// instance (both deterministic).
	local := core.Greedy(restoredIn)
	if diff := solved.Matching.MaxSum - local.MaxSum(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("HTTP greedy %v != local greedy %v", solved.Matching.MaxSum, local.MaxSum())
	}
}

func TestEndToEndExperimentToCSV(t *testing.T) {
	// A harness experiment runs and its points survive the CSV writer —
	// the path geacc-bench drives.
	exp, err := bench.Lookup("table1")
	if err != nil {
		t.Fatal(err)
	}
	points, err := exp.Run(bench.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := bench.WriteCSV(&csv, points); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(csv.Bytes(), []byte("greedy")) {
		t.Fatal("CSV lost algorithms")
	}
	tables := bench.RenderTables("t", "x", points, bench.StandardMetrics())
	if len(tables) == 0 {
		t.Fatal("empty tables")
	}
}

func TestEndToEndDynamicThenStatic(t *testing.T) {
	// Drive the dynamic Arranger, snapshot it, and check the static
	// algorithms agree about its state.
	arr, err := NewArranger(EuclideanSimilarity(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	vec := func(a, b, c, d float64) []float64 { return []float64{a, b, c, d} }
	arr.AddEvent(Event{Attrs: vec(1, 1, 1, 1), Cap: 2}, nil)
	v1, _ := arr.AddEvent(Event{Attrs: vec(9, 9, 9, 9), Cap: 1}, nil)
	arr.AddEvent(Event{Attrs: vec(5, 5, 5, 5), Cap: 1}, []int{v1})
	for i := 0; i < 6; i++ {
		arr.AddUser(User{Attrs: vec(float64(i), 2, 5, 7), Cap: 2})
	}
	arr.RemoveUser(0)
	arr.CancelEvent(v1)
	if _, err := arr.Rebalance(); err != nil {
		t.Fatal(err)
	}
	in, m, err := arr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(in, m); err != nil {
		t.Fatal(err)
	}
	// After a rebalance the arrangement equals batch greedy on the
	// snapshot.
	if got, want := m.MaxSum(), core.Greedy(in).MaxSum(); got < want-1e-9 {
		t.Fatalf("rebalanced %v below batch greedy %v", got, want)
	}
}
