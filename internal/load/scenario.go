// Package load drives sustained HTTP load against a running geacc-server
// and reports client-side latency quantiles, achieved throughput, and
// status accounting — the measurement half of the service's capacity story
// (the admission controller in internal/server is the enforcement half).
//
// A Scenario describes a reproducible workload: either stateless
// solve-per-request traffic (a pool of pre-encoded synthetic instances
// cycled by every lane) or a stateful instance-delta stream (each lane owns
// one named instance and feeds it a seeded mix of arrivals, cancellations,
// and rebalances). Run executes a scenario in closed loop (N workers, each
// issuing its next request when the previous answer lands) or open loop
// (requests fired on a fixed schedule regardless of completion — the shape
// that exposes queueing collapse). Latency quantiles come from the same
// obs.Window reservoir math the server's own SLO windows use, so client-
// and server-side percentiles are directly comparable.
//
// See docs/LOAD.md for the workflow and report schema.
package load

import "fmt"

// Kind separates the two workload shapes a scenario can have.
type Kind string

// Scenario kinds.
const (
	// KindSolve issues stateless POST /solve requests, one instance per
	// request, cycling a small pool of pre-encoded synthetic instances.
	KindSolve Kind = "solve"
	// KindDelta gives each lane its own named instance and streams
	// arrival/cancel/rebalance deltas at it. Lanes never share an
	// instance, so per-instance op order is sequential and every
	// generated id reference is valid regardless of worker interleaving.
	KindDelta Kind = "delta"
)

// Mix weights the op stream of a KindDelta scenario. Weights are relative;
// zero disables an op. Cancels fall back to arrivals while the lane has
// nothing to cancel yet.
type Mix struct {
	AddEvent    int `json:"add_event"`
	AddUser     int `json:"add_user"`
	CancelEvent int `json:"cancel_event"`
	CancelUser  int `json:"cancel_user"`
	Rebalance   int `json:"rebalance"`
}

func (m Mix) total() int {
	return m.AddEvent + m.AddUser + m.CancelEvent + m.CancelUser + m.Rebalance
}

// Scenario is one reproducible workload: everything the generator needs is
// here plus a seed, so two runs with the same (scenario, seed) issue
// byte-identical request streams.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Kind        Kind   `json:"kind"`

	// KindSolve fields: the solver, the synthetic instance shape, and how
	// many distinct pre-encoded instances each lane cycles through.
	Algo     string  `json:"algo,omitempty"`
	Events   int     `json:"events,omitempty"`
	Users    int     `json:"users,omitempty"`
	CFRatio  float64 `json:"cf_ratio,omitempty"`
	Variants int     `json:"variants,omitempty"`
	// NoCache appends ?cache=0 to every solve, bypassing the server's memo
	// cache — the knob that makes a cold-solve lane measure solver work
	// instead of cache lookups.
	NoCache bool `json:"no_cache,omitempty"`
	// ApproxShard appends ?approx_shard=1 to every solve, routing oversized
	// components through internal/partition's bounded-drift sharding;
	// ShardMaxArea and ShardStrategy tune it when non-zero (geacc-load
	// -approx-shard/-shard-max-area/-shard-strategy).
	ApproxShard   bool   `json:"approx_shard,omitempty"`
	ShardMaxArea  int64  `json:"shard_max_area,omitempty"`
	ShardStrategy string `json:"shard_strategy,omitempty"`

	// KindDelta fields: the instance's similarity space, the initial
	// population each lane sets up before measurement, and the op mix.
	Dim         int     `json:"dim,omitempty"`
	MaxT        float64 `json:"max_t,omitempty"`
	SetupEvents int     `json:"setup_events,omitempty"`
	SetupUsers  int     `json:"setup_users,omitempty"`
	Mix         Mix     `json:"mix,omitempty"`
}

// Validate checks the scenario is complete enough to generate from.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("load: scenario has no name")
	}
	switch sc.Kind {
	case KindSolve:
		if sc.Algo == "" {
			return fmt.Errorf("load: scenario %q: solve kind needs an algo", sc.Name)
		}
		if sc.Events <= 0 || sc.Users <= 0 {
			return fmt.Errorf("load: scenario %q: non-positive instance shape %dx%d", sc.Name, sc.Events, sc.Users)
		}
		if sc.Variants <= 0 {
			return fmt.Errorf("load: scenario %q: needs at least one instance variant", sc.Name)
		}
	case KindDelta:
		if sc.Dim <= 0 || sc.MaxT <= 0 {
			return fmt.Errorf("load: scenario %q: delta kind needs dim > 0 and max_t > 0", sc.Name)
		}
		if sc.Mix.total() <= 0 {
			return fmt.Errorf("load: scenario %q: empty op mix", sc.Name)
		}
	default:
		return fmt.Errorf("load: scenario %q: unknown kind %q", sc.Name, sc.Kind)
	}
	return nil
}

// builtins are the stock scenarios, ordered for display. solve-greedy and
// delta-mix are the pair the pinned BENCH_server.json snapshot tracks.
var builtins = []Scenario{
	{
		Name:        "solve-greedy",
		Description: "stateless greedy solves over 40x400 synthetic instances",
		Kind:        KindSolve,
		Algo:        "greedy",
		Events:      40, Users: 400, CFRatio: 0.25,
		Variants: 4,
	},
	{
		Name:        "solve-mincostflow",
		Description: "stateless min-cost-flow solves over 20x200 synthetic instances",
		Kind:        KindSolve,
		Algo:        "mincostflow",
		Events:      20, Users: 200, CFRatio: 0.25,
		Variants: 4,
	},
	{
		Name:        "delta-mix",
		Description: "per-lane instances fed arrivals, cancels, and dirty rebalances",
		Kind:        KindDelta,
		Dim:         4, MaxT: 100,
		SetupEvents: 20, SetupUsers: 100,
		Mix: Mix{AddEvent: 2, AddUser: 6, CancelEvent: 1, CancelUser: 1, Rebalance: 2},
	},
	{
		// 20x200 (not 40x400): the cold baseline below must complete enough
		// requests per measure phase for its p99 to be a quantile rather
		// than a max — the flow solver is quartic, so shape sets sample count.
		Name:        "solve-repeat",
		Description: "repeated identical min-cost-flow solves; measures the memo-cache hit path",
		Kind:        KindSolve,
		Algo:        "mincostflow",
		Events:      20, Users: 200, CFRatio: 0.25,
		Variants: 3,
	},
	{
		Name:        "solve-repeat-cold",
		Description: "the solve-repeat workload with ?cache=0; the cold baseline the hit path is gated against",
		Kind:        KindSolve,
		Algo:        "mincostflow",
		Events:      20, Users: 200, CFRatio: 0.25,
		Variants: 3,
		NoCache:  true,
	},
	{
		Name:        "overload-mincostflow",
		Description: "open-loop min-cost-flow solves past capacity; measures shed rate and accepted latency under 429-heavy load",
		Kind:        KindSolve,
		Algo:        "mincostflow",
		Events:      40, Users: 400, CFRatio: 0.25,
		Variants: 4,
		NoCache:  true, // cache hits would absorb the offered load; overload needs real solves
	},
}

// Builtin returns the named stock scenario.
func Builtin(name string) (Scenario, error) {
	for _, sc := range builtins {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("load: unknown scenario %q (have %s)", name, builtinNames())
}

// Builtins returns the stock scenarios in display order.
func Builtins() []Scenario {
	out := make([]Scenario, len(builtins))
	copy(out, builtins)
	return out
}

func builtinNames() string {
	s := ""
	for i, sc := range builtins {
		if i > 0 {
			s += ", "
		}
		s += sc.Name
	}
	return s
}
