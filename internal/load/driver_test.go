package load

import (
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/ebsnlab/geacc/internal/server"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	h, err := server.NewWithConfig(server.Config{
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// smallSolve and smallDelta are scaled-down scenarios so the driver tests
// finish in well under a second of measure time.
var smallSolve = Scenario{
	Name: "test-solve", Kind: KindSolve,
	Algo: "greedy", Events: 5, Users: 30, CFRatio: 0.2, Variants: 2,
}

var smallDelta = Scenario{
	Name: "test-delta", Kind: KindDelta,
	Dim: 3, MaxT: 50, SetupEvents: 4, SetupUsers: 10,
	Mix: Mix{AddEvent: 2, AddUser: 4, CancelEvent: 1, CancelUser: 1, Rebalance: 1},
}

func runScenario(t *testing.T, sc Scenario, openLoop bool) *Report {
	t.Helper()
	srv := testServer(t)
	rep, err := Run(context.Background(), Options{
		BaseURL:     srv.URL,
		Scenario:    sc,
		OpenLoop:    openLoop,
		RatePerSec:  200,
		Concurrency: 2,
		Warmup:      100 * time.Millisecond,
		Measure:     500 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunClosedSolve(t *testing.T) {
	rep := runScenario(t, smallSolve, false)
	if rep.Requests == 0 || rep.AchievedRPS <= 0 {
		t.Fatalf("no throughput: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors against a healthy server: %+v", rep)
	}
	if rep.Status["2xx"] != rep.Requests {
		t.Fatalf("non-2xx answers: %+v", rep.Status)
	}
	if rep.P99Seconds < rep.P50Seconds || rep.P50Seconds <= 0 {
		t.Fatalf("incoherent quantiles: %+v", rep)
	}
	if rep.Mode != "closed" {
		t.Fatalf("mode %q", rep.Mode)
	}
}

func TestRunClosedDelta(t *testing.T) {
	rep := runScenario(t, smallDelta, false)
	if rep.Requests == 0 || rep.Errors != 0 || rep.Status["2xx"] != rep.Requests {
		t.Fatalf("delta run unhealthy: %+v", rep)
	}
}

func TestRunOpenSolve(t *testing.T) {
	rep := runScenario(t, smallSolve, true)
	if rep.Requests == 0 || rep.Errors != 0 {
		t.Fatalf("open run unhealthy: %+v", rep)
	}
	if rep.Mode != "open" || rep.TargetRPS != 200 {
		t.Fatalf("open-loop report mislabeled: %+v", rep)
	}
}

// TestOpenLoopRejectsDelta: open loop cannot preserve per-instance op
// order, so delta scenarios must be refused up front.
func TestOpenLoopRejectsDelta(t *testing.T) {
	_, err := Run(context.Background(), Options{
		BaseURL: "http://127.0.0.1:1", Scenario: smallDelta,
		OpenLoop: true, RatePerSec: 10, Measure: time.Second,
	})
	if err == nil {
		t.Fatal("open-loop delta run was not rejected")
	}
}

// TestRunSetupFailureAborts: a dead server must fail the run during setup,
// not produce a report full of transport errors.
func TestRunSetupFailureAborts(t *testing.T) {
	_, err := Run(context.Background(), Options{
		BaseURL: "http://127.0.0.1:1", Scenario: smallDelta,
		Measure: time.Second, Concurrency: 1,
	})
	if err == nil {
		t.Fatal("setup against a dead server did not fail the run")
	}
}

func TestCompareServerBench(t *testing.T) {
	old := []ServerBenchPoint{
		{Scenario: "a", P99Seconds: 0.010, AchievedRPS: 1000},
		{Scenario: "b", P99Seconds: 0.020, AchievedRPS: 500},
		{Scenario: "gone", P99Seconds: 0.1, AchievedRPS: 10},
	}
	fresh := []ServerBenchPoint{
		{Scenario: "a", P99Seconds: 0.011, AchievedRPS: 990},  // within tolerance
		{Scenario: "b", P99Seconds: 0.030, AchievedRPS: 500},  // p99 +50%
		{Scenario: "new", P99Seconds: 0.005, AchievedRPS: 100},
	}
	deltas, onlyOld, onlyNew := CompareServerBench(old, fresh)
	if len(deltas) != 2 || len(onlyOld) != 1 || len(onlyNew) != 1 {
		t.Fatalf("deltas=%d onlyOld=%v onlyNew=%v", len(deltas), onlyOld, onlyNew)
	}
	if deltas[0].Scenario != "b" {
		t.Fatalf("worst slowdown first, got %q", deltas[0].Scenario)
	}
	report, regressed := FormatServerComparison(deltas, onlyOld, onlyNew, 0.20)
	if len(regressed) != 1 || regressed[0] != "b" {
		t.Fatalf("regressed = %v\n%s", regressed, report)
	}

	// Throughput loss alone regresses too.
	d := ServerDelta{Scenario: "c", OldP99: 0.01, NewP99: 0.01, OldRPS: 1000, NewRPS: 700}
	if !d.Regressed(0.20) {
		t.Fatal("25% throughput loss not flagged")
	}
	if d2 := (ServerDelta{Scenario: "d", OldP99: 0.01, NewP99: 0.011, OldRPS: 1000, NewRPS: 950}); d2.Regressed(0.20) {
		t.Fatal("in-tolerance point flagged")
	}
}
