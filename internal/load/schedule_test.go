package load

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func opsEqual(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Method != b[i].Method || a[i].Path != b[i].Path || !bytes.Equal(a[i].Body, b[i].Body) {
			return false
		}
	}
	return true
}

// TestOpsDeterministic is the seed-determinism property: for every builtin
// scenario, the same (scenario, seed, lane) produces a byte-identical op
// stream, a different seed diverges, and different lanes are decorrelated.
func TestOpsDeterministic(t *testing.T) {
	const n = 200
	for _, sc := range Builtins() {
		t.Run(sc.Name, func(t *testing.T) {
			a, err := Ops(sc, 7, 3, n)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Ops(sc, 7, 3, n)
			if err != nil {
				t.Fatal(err)
			}
			if !opsEqual(a, b) {
				t.Fatal("same (scenario, seed, lane) produced different streams")
			}
			c, err := Ops(sc, 8, 3, n)
			if err != nil {
				t.Fatal(err)
			}
			if opsEqual(a, c) {
				t.Fatal("different seeds produced identical streams")
			}
			d, err := Ops(sc, 7, 4, n)
			if err != nil {
				t.Fatal(err)
			}
			if sc.Kind == KindDelta && opsEqual(a, d) {
				t.Fatal("different lanes produced identical delta streams")
			}
		})
	}
}

// TestDeltaOpsValid replays a delta lane's stream against a model of the
// arranger's id space: every cancel must reference an id that was added
// earlier, and every conflict reference must name an earlier event —
// otherwise the server would 4xx mid-run.
func TestDeltaOpsValid(t *testing.T) {
	sc, err := Builtin("delta-mix")
	if err != nil {
		t.Fatal(err)
	}
	ops, err := Ops(sc, 42, 0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if ops[0].Method != "POST" || ops[0].Path != "/instances" {
		t.Fatalf("first setup op must create the instance, got %s %s", ops[0].Method, ops[0].Path)
	}
	var create createBody
	if err := json.Unmarshal(ops[0].Body, &create); err != nil {
		t.Fatal(err)
	}
	if create.ID != "load-delta-mix-0" {
		t.Fatalf("lane 0 instance id %q", create.ID)
	}

	nEvents, nUsers, rebalances := 0, 0, 0
	for i, op := range ops[1:] {
		switch {
		case strings.HasSuffix(op.Path, "/events"):
			var b addEventBody
			if err := json.Unmarshal(op.Body, &b); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			if len(b.Attrs) != sc.Dim || b.Cap < 1 {
				t.Fatalf("op %d: bad event body %+v", i, b)
			}
			for _, c := range b.Conflicts {
				if c < 0 || c >= nEvents {
					t.Fatalf("op %d: conflict %d out of range [0, %d)", i, c, nEvents)
				}
			}
			nEvents++
		case strings.HasSuffix(op.Path, "/users"):
			var b addUserBody
			if err := json.Unmarshal(op.Body, &b); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			if len(b.Attrs) != sc.Dim || b.Cap < 1 {
				t.Fatalf("op %d: bad user body %+v", i, b)
			}
			nUsers++
		case strings.HasSuffix(op.Path, "/cancel"):
			var b cancelBody
			if err := json.Unmarshal(op.Body, &b); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			switch {
			case b.Event != nil:
				if *b.Event < 0 || *b.Event >= nEvents {
					t.Fatalf("op %d: cancel event %d out of range [0, %d)", i, *b.Event, nEvents)
				}
			case b.User != nil:
				if *b.User < 0 || *b.User >= nUsers {
					t.Fatalf("op %d: cancel user %d out of range [0, %d)", i, *b.User, nUsers)
				}
			default:
				t.Fatalf("op %d: cancel names neither side", i)
			}
		case strings.Contains(op.Path, "/rebalance"):
			rebalances++
		default:
			t.Fatalf("op %d: unexpected path %s", i, op.Path)
		}
	}
	if rebalances == 0 {
		t.Fatal("2000 delta-mix ops produced no rebalance")
	}
}

// TestScenarioValidate covers the rejection paths.
func TestScenarioValidate(t *testing.T) {
	bad := []Scenario{
		{},
		{Name: "x", Kind: "wat"},
		{Name: "x", Kind: KindSolve, Algo: "greedy", Events: 0, Users: 5, Variants: 1},
		{Name: "x", Kind: KindSolve, Events: 5, Users: 5, Variants: 1},
		{Name: "x", Kind: KindSolve, Algo: "greedy", Events: 5, Users: 5},
		{Name: "x", Kind: KindDelta, Dim: 0, MaxT: 1, Mix: Mix{AddUser: 1}},
		{Name: "x", Kind: KindDelta, Dim: 2, MaxT: 1},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("bad scenario %d validated", i)
		}
	}
	for _, sc := range Builtins() {
		if err := sc.Validate(); err != nil {
			t.Errorf("builtin %s: %v", sc.Name, err)
		}
	}
	if _, err := Builtin("nope"); err == nil {
		t.Error("unknown builtin name resolved")
	}
}
