package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/url"

	"github.com/ebsnlab/geacc/internal/dataset"
	"github.com/ebsnlab/geacc/internal/encoding"
	"github.com/ebsnlab/geacc/internal/randx"
)

// Op is one scheduled HTTP request of a lane's stream: everything but the
// host. Bodies are pre-encoded so the measured loop spends nothing on
// generation.
type Op struct {
	Method string
	Path   string // path + query, e.g. "/solve?algo=greedy&seed=1"
	Body   []byte // nil for body-less requests
}

// laneSeed derives the per-lane RNG seed. The odd multiplier spreads lanes
// across the seed space so lane streams are decorrelated while staying a
// pure function of (seed, lane).
func laneSeed(seed int64, lane int) int64 {
	return seed + int64(lane)*0x9e3779b9
}

// laneStream is the deterministic request generator for one lane (one
// closed-loop worker, or the single open-loop scheduler). Setup ops run
// once before the clock starts; Next yields the measured-phase stream.
type laneStream struct {
	setup []Op
	next  func() Op
}

// newLaneStream builds lane's stream for sc. Everything is derived from
// (sc, seed, lane): same inputs, byte-identical ops.
func newLaneStream(sc Scenario, seed int64, lane int) (*laneStream, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	switch sc.Kind {
	case KindSolve:
		return newSolveStream(sc, seed, lane)
	default:
		return newDeltaStream(sc, seed, lane)
	}
}

// newSolveStream pre-encodes the lane's instance pool and cycles it. The
// pool is shared across lanes by construction (same seeds), but each lane
// starts at its own offset so concurrent workers don't hit the server with
// identical bodies in lockstep.
func newSolveStream(sc Scenario, seed int64, lane int) (*laneStream, error) {
	path := "/solve?algo=" + url.QueryEscape(sc.Algo) + "&seed=1"
	if sc.NoCache {
		path += "&cache=0"
	}
	if sc.ApproxShard {
		path += "&approx_shard=1"
		if sc.ShardMaxArea > 0 {
			path += fmt.Sprintf("&shard_max_area=%d", sc.ShardMaxArea)
		}
		if sc.ShardStrategy != "" {
			path += "&shard_strategy=" + url.QueryEscape(sc.ShardStrategy)
		}
	}
	bodies := make([][]byte, sc.Variants)
	for v := range bodies {
		cfg := dataset.DefaultSynthetic()
		cfg.NumEvents = sc.Events
		cfg.NumUsers = sc.Users
		cfg.CFRatio = sc.CFRatio
		cfg.Seed = seed + int64(v)
		in, err := cfg.Generate()
		if err != nil {
			return nil, fmt.Errorf("load: scenario %q: %w", sc.Name, err)
		}
		var buf bytes.Buffer
		if err := encoding.EncodeInstance(&buf, in, encoding.SimEuclidean, cfg.Dim, cfg.MaxT); err != nil {
			return nil, fmt.Errorf("load: scenario %q: %w", sc.Name, err)
		}
		bodies[v] = buf.Bytes()
	}
	i := lane % sc.Variants
	next := func() Op {
		op := Op{Method: "POST", Path: path, Body: bodies[i]}
		i = (i + 1) % sc.Variants
		return op
	}
	return &laneStream{next: next}, nil
}

// Delta request bodies, mirroring the server's instance API contract (see
// docs/SERVICE.md). Declared locally so the harness stays an honest
// external client of the wire format rather than sharing structs with the
// handler it is supposed to exercise.
type createBody struct {
	ID   string  `json:"id"`
	Sim  string  `json:"sim"`
	Dim  int     `json:"dim"`
	MaxT float64 `json:"max_t"`
}

type addEventBody struct {
	Attrs     []float64 `json:"attrs"`
	Cap       int       `json:"cap"`
	Conflicts []int     `json:"conflicts,omitempty"`
}

type addUserBody struct {
	Attrs []float64 `json:"attrs"`
	Cap   int       `json:"cap"`
}

type cancelBody struct {
	Event *int `json:"event,omitempty"`
	User  *int `json:"user,omitempty"`
}

// newDeltaStream builds lane's instance-delta stream. The lane owns the
// instance "load-<scenario>-<lane>" exclusively, so its op order is
// sequential no matter how workers interleave, and cancels may reference
// any previously added id: the arranger tombstones cancelled nodes (ids
// never shrink, repeated cancel is a no-op), so a cancel of an
// already-cancelled id is still a valid request.
func newDeltaStream(sc Scenario, seed int64, lane int) (*laneStream, error) {
	id := fmt.Sprintf("load-%s-%d", sc.Name, lane)
	base := "/instances/" + url.PathEscape(id)
	rng := randx.Source(laneSeed(seed, lane))

	nEvents, nUsers := 0, 0
	attrs := func() []float64 {
		a := make([]float64, sc.Dim)
		for i := range a {
			a[i] = randx.Uniform(rng, 0, sc.MaxT)
		}
		return a
	}
	addEvent := func() Op {
		b := addEventBody{Attrs: attrs(), Cap: randx.UniformInt(rng, 1, 8)}
		// A third of arrivals conflict with one earlier event, keeping the
		// rebalance decomposition non-trivial.
		if nEvents > 0 && rng.Intn(3) == 0 {
			b.Conflicts = []int{rng.Intn(nEvents)}
		}
		nEvents++
		return Op{Method: "POST", Path: base + "/events", Body: mustJSON(b)}
	}
	addUser := func() Op {
		nUsers++
		return Op{Method: "POST", Path: base + "/users", Body: mustJSON(addUserBody{Attrs: attrs(), Cap: randx.UniformInt(rng, 1, 3)})}
	}

	setup := make([]Op, 0, 1+sc.SetupEvents+sc.SetupUsers)
	setup = append(setup, Op{Method: "POST", Path: "/instances",
		Body: mustJSON(createBody{ID: id, Sim: string(encoding.SimEuclidean), Dim: sc.Dim, MaxT: sc.MaxT})})
	for i := 0; i < sc.SetupEvents; i++ {
		setup = append(setup, addEvent())
	}
	for i := 0; i < sc.SetupUsers; i++ {
		setup = append(setup, addUser())
	}

	next := func() Op {
		switch op := pickOp(rng, sc.Mix); op {
		case opAddEvent:
			return addEvent()
		case opAddUser:
			return addUser()
		case opCancelEvent:
			if nEvents == 0 {
				return addEvent()
			}
			v := rng.Intn(nEvents)
			return Op{Method: "POST", Path: base + "/cancel", Body: mustJSON(cancelBody{Event: &v})}
		case opCancelUser:
			if nUsers == 0 {
				return addUser()
			}
			u := rng.Intn(nUsers)
			return Op{Method: "POST", Path: base + "/cancel", Body: mustJSON(cancelBody{User: &u})}
		default:
			return Op{Method: "POST", Path: base + "/rebalance?scope=dirty&algo=greedy&seed=1"}
		}
	}
	return &laneStream{setup: setup, next: next}, nil
}

type deltaOp int

const (
	opAddEvent deltaOp = iota
	opAddUser
	opCancelEvent
	opCancelUser
	opRebalance
)

// pickOp draws one op kind from the mix's weights.
func pickOp(rng *rand.Rand, m Mix) deltaOp {
	n := rng.Intn(m.total())
	if n -= m.AddEvent; n < 0 {
		return opAddEvent
	}
	if n -= m.AddUser; n < 0 {
		return opAddUser
	}
	if n -= m.CancelEvent; n < 0 {
		return opCancelEvent
	}
	if n -= m.CancelUser; n < 0 {
		return opCancelUser
	}
	return opRebalance
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err) // statically shaped structs; cannot fail
	}
	return b
}

// Ops materializes one lane's stream — the setup ops followed by the first
// n measured-phase ops — as a pure function of (sc, seed, lane). The
// determinism property test pins Run's request sequence through this.
func Ops(sc Scenario, seed int64, lane, n int) ([]Op, error) {
	ls, err := newLaneStream(sc, seed, lane)
	if err != nil {
		return nil, err
	}
	out := make([]Op, 0, len(ls.setup)+n)
	out = append(out, ls.setup...)
	for i := 0; i < n; i++ {
		out = append(out, ls.next())
	}
	return out, nil
}
