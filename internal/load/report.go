package load

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Report is one load run's result — the JSON artifact geacc-load emits and
// BENCH_server.json points are distilled from. Latency quantiles cover only
// requests issued during the measure phase (warmup is discarded), and
// AchievedRPS counts completed requests over the measure wall-clock, so an
// open-loop run that collapses under queueing shows the gap between target
// and achieved rate directly.
type Report struct {
	Scenario    string  `json:"scenario"`
	Mode        string  `json:"mode"` // "closed" or "open"
	Concurrency int     `json:"concurrency"`
	TargetRPS   float64 `json:"target_rps,omitempty"` // open loop only
	Seed        int64   `json:"seed"`

	WarmupSeconds  float64 `json:"warmup_seconds"`
	MeasureSeconds float64 `json:"measure_seconds"`

	Requests    int64   `json:"requests"` // completed during measure
	AchievedRPS float64 `json:"achieved_rps"`

	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P90Seconds  float64 `json:"p90_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	// AcceptedP99Seconds is the p99 over 2xx answers only. Under overload
	// the all-request quantiles are dominated by near-instant 429s; this is
	// the latency the accepted work actually saw.
	AcceptedP99Seconds float64 `json:"accepted_p99_seconds"`

	// Status buckets completed requests: "2xx", "4xx" (excluding 429),
	// "429", "499", "5xx", and "transport" for requests that never got a
	// status line.
	Status map[string]int64 `json:"status"`
	// Shed = Status["429"]: requests the admission controller rejected.
	Shed int64 `json:"shed"`
	// ShedRate = Shed / Requests: the fraction of completed requests the
	// server deliberately refused.
	ShedRate float64 `json:"shed_rate"`
	// Errors = 5xx + transport failures: the run's hard-failure count.
	Errors int64 `json:"errors"`
	// Dropped counts open-loop ticks skipped because the outstanding-
	// request cap was reached — the client, not the server, fell behind.
	Dropped int64 `json:"dropped,omitempty"`
}

// statusClass buckets one HTTP status for Report.Status.
func statusClass(code int) string {
	switch {
	case code == 429:
		return "429"
	case code == 499:
		return "499"
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	default:
		return "2xx"
	}
}

// WriteJSON emits the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Format renders the report as a human-oriented summary block.
func (rep *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s  mode=%s  concurrency=%d  seed=%d\n",
		rep.Scenario, rep.Mode, rep.Concurrency, rep.Seed)
	if rep.TargetRPS > 0 {
		fmt.Fprintf(&b, "target %.1f req/s  ", rep.TargetRPS)
	}
	fmt.Fprintf(&b, "achieved %.1f req/s over %.1fs (%d requests)\n",
		rep.AchievedRPS, rep.MeasureSeconds, rep.Requests)
	fmt.Fprintf(&b, "latency p50=%.4fs p90=%.4fs p99=%.4fs mean=%.4fs accepted-p99=%.4fs\n",
		rep.P50Seconds, rep.P90Seconds, rep.P99Seconds, rep.MeanSeconds, rep.AcceptedP99Seconds)
	keys := make([]string, 0, len(rep.Status))
	for k := range rep.Status {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(&b, "status")
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, rep.Status[k])
	}
	fmt.Fprintf(&b, "  shed=%d (%.1f%%) errors=%d", rep.Shed, rep.ShedRate*100, rep.Errors)
	if rep.Dropped > 0 {
		fmt.Fprintf(&b, " dropped=%d", rep.Dropped)
	}
	b.WriteString("\n")
	return b.String()
}
