package load

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ebsnlab/geacc/internal/obs"
)

// Options configures one load run.
type Options struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Scenario is the workload; see Builtin / Builtins.
	Scenario Scenario
	// OpenLoop fires requests on a fixed schedule (RatePerSec) regardless
	// of completions, instead of the default closed loop (Concurrency
	// workers, each issuing its next request when the previous one
	// returns). Open loop is restricted to KindSolve scenarios: a delta
	// lane's ops are order-dependent, and an open scheduler cannot keep
	// per-instance order without becoming a closed loop.
	OpenLoop bool
	// Concurrency is the closed-loop worker (= lane) count; in open loop
	// it caps outstanding requests instead (ticks past the cap are counted
	// as Dropped, not silently skipped). <= 0 means 4.
	Concurrency int
	// RatePerSec is the open-loop request schedule; required (> 0) there,
	// ignored in closed loop.
	RatePerSec float64
	// Warmup runs the workload without recording; Measure is the recorded
	// phase. Warmup <= 0 skips straight to measuring; Measure must be > 0.
	Warmup, Measure time.Duration
	// Seed pins the request streams: same (Scenario, Seed, Concurrency) →
	// same requests, in the same per-lane order.
	Seed int64
	// Client overrides the HTTP client; nil builds one sized for
	// Concurrency with no overall timeout (cancellation comes from ctx).
	Client *http.Client
}

func (opt *Options) normalize() error {
	if opt.BaseURL == "" {
		return fmt.Errorf("load: no base URL")
	}
	if err := opt.Scenario.Validate(); err != nil {
		return err
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 4
	}
	if opt.Measure <= 0 {
		return fmt.Errorf("load: non-positive measure duration")
	}
	if opt.Warmup < 0 {
		opt.Warmup = 0
	}
	if opt.OpenLoop {
		if opt.Scenario.Kind != KindSolve {
			return fmt.Errorf("load: open loop supports only %s scenarios (%s lanes are order-dependent)",
				KindSolve, KindDelta)
		}
		if opt.RatePerSec <= 0 {
			return fmt.Errorf("load: open loop needs -rate > 0")
		}
	}
	if opt.Client == nil {
		tr := &http.Transport{MaxIdleConns: opt.Concurrency * 2, MaxIdleConnsPerHost: opt.Concurrency * 2}
		opt.Client = &http.Client{Transport: tr}
	}
	return nil
}

// collector accumulates the measured phase. The latency reservoir is an
// obs.Window — the same weighted-reservoir quantile math the server's SLO
// windows use — with one giant bucket so the whole measure phase merges
// into a single horizon. Counters are atomics; the window locks internally.
type collector struct {
	win      *obs.Window
	accepted *obs.Window // 2xx only: latency of the work the server accepted
	status   [6]atomic.Int64 // indexed by statusSlot
	requests atomic.Int64
	dropped  atomic.Int64
}

// collectorSpan is the window bucket size: comfortably longer than any
// sane measure phase, so every sample of a run lands in at most two
// buckets and Stats over twice the span merges them all.
const collectorSpan = time.Hour

func newCollector() *collector {
	return &collector{
		win:      obs.NewWindow(2*collectorSpan, collectorSpan, 1<<14),
		accepted: obs.NewWindow(2*collectorSpan, collectorSpan, 1<<14),
	}
}

var statusSlots = [...]string{"2xx", "4xx", "429", "499", "5xx", "transport"}

func statusSlot(class string) int {
	for i, s := range statusSlots {
		if s == class {
			return i
		}
	}
	return len(statusSlots) - 1
}

// record books one completed request. Latency lands in the reservoir with
// hard failures flagged as errors (429/499/4xx are accounted but are not
// failures: the server answered, by design).
func (c *collector) record(seconds float64, class string) {
	c.requests.Add(1)
	c.status[statusSlot(class)].Add(1)
	c.win.Observe(seconds, class == "5xx" || class == "transport")
	// The accepted-only reservoir keeps overload runs honest: under heavy
	// shedding the all-request p99 is dominated by near-instant 429s, which
	// would make collapse look like an improvement. Accepted latency is what
	// the surviving clients actually experienced.
	if class == "2xx" {
		c.accepted.Observe(seconds, false)
	}
}

func (c *collector) report(opt Options, measured time.Duration) *Report {
	st := c.win.Stats(2 * collectorSpan)
	rep := &Report{
		Scenario:       opt.Scenario.Name,
		Mode:           "closed",
		Concurrency:    opt.Concurrency,
		Seed:           opt.Seed,
		WarmupSeconds:  opt.Warmup.Seconds(),
		MeasureSeconds: measured.Seconds(),
		Requests:       c.requests.Load(),
		MeanSeconds:    st.MeanSeconds,
		P50Seconds:     st.P50,
		P90Seconds:     st.P90,
		P99Seconds:     st.P99,
		Status:         map[string]int64{},
		Dropped:        c.dropped.Load(),
	}
	if opt.OpenLoop {
		rep.Mode = "open"
		rep.TargetRPS = opt.RatePerSec
	}
	if s := measured.Seconds(); s > 0 {
		rep.AchievedRPS = float64(rep.Requests) / s
	}
	for i, name := range statusSlots {
		if n := c.status[i].Load(); n > 0 {
			rep.Status[name] = n
		}
	}
	rep.Shed = rep.Status["429"]
	rep.Errors = rep.Status["5xx"] + rep.Status["transport"]
	if rep.Requests > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
	}
	rep.AcceptedP99Seconds = c.accepted.Stats(2 * collectorSpan).P99
	return rep
}

// issue sends one op and returns its status class. The body is re-sliced
// per call, so pre-encoded bodies are reused without copying.
func issue(ctx context.Context, client *http.Client, base string, op Op) string {
	var body io.Reader
	if op.Body != nil {
		body = bytes.NewReader(op.Body)
	}
	req, err := http.NewRequestWithContext(ctx, op.Method, base+op.Path, body)
	if err != nil {
		return "transport"
	}
	if op.Body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return "transport"
	}
	// Drain so the connection is reusable; the payload itself is not the
	// harness's business.
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return statusClass(resp.StatusCode)
}

// Run executes the scenario and reports the measured phase. Setup (delta
// instance creation and initial population) happens before the clock
// starts; a setup failure aborts the run.
func Run(ctx context.Context, opt Options) (*Report, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	lanes := make([]*laneStream, opt.Concurrency)
	if opt.OpenLoop {
		// One stream feeds the scheduler; solve streams are stateless
		// cycles, so a single lane is the whole schedule.
		ls, err := newLaneStream(opt.Scenario, opt.Seed, 0)
		if err != nil {
			return nil, err
		}
		lanes = lanes[:1]
		lanes[0] = ls
	} else {
		for w := range lanes {
			ls, err := newLaneStream(opt.Scenario, opt.Seed, w)
			if err != nil {
				return nil, err
			}
			lanes[w] = ls
		}
	}

	// Setup phase: sequential per lane, lanes in parallel. Any non-2xx
	// answer is fatal — measuring against a half-built instance would
	// produce a report about the wrong workload.
	var setupErr error
	var setupMu sync.Mutex
	var wg sync.WaitGroup
	for w, ls := range lanes {
		wg.Add(1)
		go func(w int, ls *laneStream) {
			defer wg.Done()
			for i, op := range ls.setup {
				if ctx.Err() != nil {
					return
				}
				if class := issue(ctx, opt.Client, opt.BaseURL, op); class != "2xx" {
					setupMu.Lock()
					if setupErr == nil {
						setupErr = fmt.Errorf("load: lane %d setup op %d (%s %s) answered %s",
							w, i, op.Method, op.Path, class)
					}
					setupMu.Unlock()
					return
				}
			}
		}(w, ls)
	}
	wg.Wait()
	if setupErr != nil {
		return nil, setupErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	col := newCollector()
	start := time.Now()
	measureStart := start.Add(opt.Warmup)
	deadline := measureStart.Add(opt.Measure)
	runCtx, cancel := context.WithDeadline(ctx, deadline.Add(30*time.Second))
	defer cancel()

	if opt.OpenLoop {
		runOpen(runCtx, opt, lanes[0], col, measureStart, deadline)
	} else {
		runClosed(runCtx, opt, lanes, col, measureStart, deadline)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return col.report(opt, opt.Measure), nil
}

// runClosed drives Concurrency workers, each owning one lane: issue, wait,
// record, repeat until the deadline.
func runClosed(ctx context.Context, opt Options, lanes []*laneStream, col *collector, measureStart, deadline time.Time) {
	var wg sync.WaitGroup
	for _, ls := range lanes {
		wg.Add(1)
		go func(ls *laneStream) {
			defer wg.Done()
			for {
				issued := time.Now()
				if issued.After(deadline) || ctx.Err() != nil {
					return
				}
				op := ls.next()
				class := issue(ctx, opt.Client, opt.BaseURL, op)
				if !issued.Before(measureStart) {
					col.record(time.Since(issued).Seconds(), class)
				}
			}
		}(ls)
	}
	wg.Wait()
}

// runOpen fires requests on the RatePerSec schedule regardless of
// completions, up to the outstanding cap. Late completions still record
// (their latency is the point of an open-loop measurement); ticks at the
// cap count as dropped.
func runOpen(ctx context.Context, opt Options, ls *laneStream, col *collector, measureStart, deadline time.Time) {
	interval := time.Duration(float64(time.Second) / opt.RatePerSec)
	if interval <= 0 {
		interval = time.Microsecond
	}
	sem := make(chan struct{}, opt.Concurrency)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-ticker.C:
		}
		issued := time.Now()
		if issued.After(deadline) {
			wg.Wait()
			return
		}
		op := ls.next()
		select {
		case sem <- struct{}{}:
		default:
			if !issued.Before(measureStart) {
				col.dropped.Add(1)
			}
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			class := issue(ctx, opt.Client, opt.BaseURL, op)
			if !issued.Before(measureStart) {
				col.record(time.Since(issued).Seconds(), class)
			}
		}()
	}
}
