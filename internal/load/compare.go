package load

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// ServerBenchPoint is one pinned end-to-end measurement in
// BENCH_server.json: the scenario's accepted-request p99 and achieved
// throughput under the standard bench settings (make bench-server). Unlike
// the deterministic solver microbenchmarks, these carry wall-clock noise —
// the compare tolerance is the guard band.
type ServerBenchPoint struct {
	Scenario    string  `json:"scenario"`
	Mode        string  `json:"mode"`
	Concurrency int     `json:"concurrency"`
	P99Seconds  float64 `json:"p99_seconds"`
	AchievedRPS float64 `json:"achieved_rps"`
	// ShedRate and AcceptedP99Seconds carry the overload axes: the fraction
	// of requests the server refused with 429, and the p99 over accepted
	// (2xx) answers only.
	ShedRate           float64 `json:"shed_rate"`
	AcceptedP99Seconds float64 `json:"accepted_p99_seconds"`
	// Gate selects the regression criteria. "" (the latency gate) compares
	// all-request p99 and achieved throughput. "overload" compares shed
	// rate and accepted-request p99 instead: a deliberately saturated lane
	// has no meaningful raw-throughput number (it is pinned by the offered
	// rate), and its all-request p99 is dominated by near-instant 429s.
	Gate string `json:"gate,omitempty"`
}

// Point distills a run's report into its pinnable form (Gate is assigned
// by the suite runner, not the report).
func (rep *Report) Point() ServerBenchPoint {
	return ServerBenchPoint{
		Scenario:           rep.Scenario,
		Mode:               rep.Mode,
		Concurrency:        rep.Concurrency,
		P99Seconds:         rep.P99Seconds,
		AchievedRPS:        rep.AchievedRPS,
		ShedRate:           rep.ShedRate,
		AcceptedP99Seconds: rep.AcceptedP99Seconds,
	}
}

// ServerDelta compares one scenario across two snapshots.
type ServerDelta struct {
	Scenario string
	Gate     string // "" (latency) or "overload"
	OldP99   float64
	NewP99   float64
	P99Ratio float64 // NewP99 / OldP99; > 1 means slower
	OldRPS   float64
	NewRPS   float64
	RPSRatio float64 // NewRPS / OldRPS; < 1 means less throughput

	OldShedRate    float64
	NewShedRate    float64
	OldAcceptedP99 float64
	NewAcceptedP99 float64
}

// Regressed reports whether the point got worse beyond tol on the axes its
// gate watches. The latency gate (""): all-request p99 up by more than tol,
// or throughput down by more than tol. The "overload" gate: shed rate up by
// more than tol in absolute terms (shed rate is already a fraction, so a
// relative band around e.g. 0.6 would be far looser than intended), or
// accepted-request p99 up by more than tol — raw throughput is not gated,
// because a saturated lane's completion rate is pinned by the offered rate.
func (d ServerDelta) Regressed(tol float64) bool {
	if d.Gate == "overload" {
		moreShed := d.NewShedRate > d.OldShedRate+tol
		slowerAccepted := d.OldAcceptedP99 > 0 && d.NewAcceptedP99 > d.OldAcceptedP99*(1+tol)
		return moreShed || slowerAccepted
	}
	slower := d.OldP99 > 0 && d.NewP99 > d.OldP99*(1+tol)
	lessRPS := d.OldRPS > 0 && d.NewRPS < d.OldRPS*(1-tol)
	return slower || lessRPS
}

// CompareServerBench diffs a fresh run against a committed snapshot,
// matching points by scenario name, worst p99 slowdown first.
func CompareServerBench(old, fresh []ServerBenchPoint) (deltas []ServerDelta, onlyOld, onlyNew []string) {
	oldByName := make(map[string]ServerBenchPoint, len(old))
	for _, p := range old {
		oldByName[p.Scenario] = p
	}
	seen := make(map[string]bool, len(fresh))
	for _, p := range fresh {
		seen[p.Scenario] = true
		o, ok := oldByName[p.Scenario]
		if !ok {
			onlyNew = append(onlyNew, p.Scenario)
			continue
		}
		d := ServerDelta{
			Scenario: p.Scenario,
			Gate:     p.Gate, // the fresh point's gate wins if the snapshot predates gates
			OldP99:   o.P99Seconds, NewP99: p.P99Seconds,
			OldRPS: o.AchievedRPS, NewRPS: p.AchievedRPS,
			OldShedRate: o.ShedRate, NewShedRate: p.ShedRate,
			OldAcceptedP99: o.AcceptedP99Seconds, NewAcceptedP99: p.AcceptedP99Seconds,
		}
		if o.P99Seconds > 0 {
			d.P99Ratio = p.P99Seconds / o.P99Seconds
		}
		if o.AchievedRPS > 0 {
			d.RPSRatio = p.AchievedRPS / o.AchievedRPS
		}
		deltas = append(deltas, d)
	}
	for _, p := range old {
		if !seen[p.Scenario] {
			onlyOld = append(onlyOld, p.Scenario)
		}
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].P99Ratio != deltas[j].P99Ratio {
			return deltas[i].P99Ratio > deltas[j].P99Ratio
		}
		return deltas[i].Scenario < deltas[j].Scenario
	})
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}

// FormatServerComparison renders the comparison and returns the scenarios
// regressed beyond tol.
func FormatServerComparison(deltas []ServerDelta, onlyOld, onlyNew []string, tol float64) (report string, regressed []string) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %12s %12s %8s %12s %12s %8s\n",
		"scenario", "old p99 s", "new p99 s", "ratio", "old req/s", "new req/s", "ratio")
	for _, d := range deltas {
		flag := ""
		if d.Regressed(tol) {
			flag = "  << REGRESSION"
			regressed = append(regressed, d.Scenario)
		}
		fmt.Fprintf(&b, "%-22s %12.4f %12.4f %8.2f %12.1f %12.1f %8.2f%s\n",
			d.Scenario, d.OldP99, d.NewP99, d.P99Ratio, d.OldRPS, d.NewRPS, d.RPSRatio, flag)
		if d.Gate == "overload" {
			// The gated axes for an overload lane; the row above is context.
			fmt.Fprintf(&b, "%-22s %12s shed %.1f%% -> %.1f%%  accepted-p99 %.4fs -> %.4fs\n",
				"", "(overload)", d.OldShedRate*100, d.NewShedRate*100, d.OldAcceptedP99, d.NewAcceptedP99)
		}
	}
	for _, name := range onlyOld {
		fmt.Fprintf(&b, "%-22s only in committed snapshot\n", name)
	}
	for _, name := range onlyNew {
		fmt.Fprintf(&b, "%-22s only in fresh run (make bench-server to pin it)\n", name)
	}
	return b.String(), regressed
}

// ReadServerBenchJSON loads a BENCH_server.json snapshot.
func ReadServerBenchJSON(r io.Reader) ([]ServerBenchPoint, error) {
	var points []ServerBenchPoint
	if err := json.NewDecoder(r).Decode(&points); err != nil {
		return nil, fmt.Errorf("load: decode server snapshot: %w", err)
	}
	return points, nil
}

// ReadServerBenchFile loads a BENCH_server.json snapshot from disk.
func ReadServerBenchFile(path string) ([]ServerBenchPoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadServerBenchJSON(f)
}

// WriteServerBenchJSON writes a snapshot as indented JSON.
func WriteServerBenchJSON(w io.Writer, points []ServerBenchPoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(points)
}
