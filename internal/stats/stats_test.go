package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestStreamBasics(t *testing.T) {
	var s Stream
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	// Population stddev of this classic sample is 2; unbiased variance is
	// 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestStreamSingleValue(t *testing.T) {
	var s Stream
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Variance() != 0 || s.StdDev() != 0 {
		t.Fatal("single-value stats wrong")
	}
	if s.Min() != 3.5 || s.Max() != 3.5 {
		t.Fatal("single-value min/max wrong")
	}
}

func TestStreamMatchesNaiveProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var s Stream
		var sum float64
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			s.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Variance()-naiveVar) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct {
		p, want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {75, 32.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
	if Percentile([]float64{7}, 95) != 7 {
		t.Error("single-element percentile")
	}
	// Input must not be mutated.
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{-1, 101} {
		p := p
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("P%v did not panic", p)
				}
			}()
			Percentile([]float64{1}, p)
		}()
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	text := s.String()
	for _, want := range []string{"n=5", "mean=3", "p50=3"} {
		if !strings.Contains(text, want) {
			t.Errorf("String() missing %q: %s", want, text)
		}
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Error("empty summary wrong")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	if got := GeoMean([]float64{5}); got != 5 {
		t.Errorf("GeoMean single = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty GeoMean")
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive GeoMean did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestStreamLargeValuesStable(t *testing.T) {
	// Welford must survive a large offset that would destroy the naive
	// sum-of-squares formula in float64.
	var s Stream
	const offset = 1e9
	for _, x := range []float64{offset + 4, offset + 7, offset + 13, offset + 16} {
		s.Add(x)
	}
	if math.Abs(s.Mean()-(offset+10)) > 1e-3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if math.Abs(s.Variance()-30) > 1e-3 {
		t.Fatalf("Variance = %v, want 30", s.Variance())
	}
}
