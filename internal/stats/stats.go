// Package stats provides the small statistical toolkit the experiment
// harness uses for repeated measurements: streaming mean/variance
// (Welford's algorithm), order statistics, and geometric means for ratio
// metrics like approximation quality.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Stream accumulates a sample one value at a time with numerically stable
// mean and variance (Welford). The zero value is ready to use.
type Stream struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Stream) N() int { return s.n }

// Mean returns the sample mean (0 for an empty stream).
func (s *Stream) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 for an empty stream).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty stream).
func (s *Stream) Max() float64 { return s.max }

// Summary is a five-number-style digest of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P95    float64
	Max    float64
}

// Summarize digests a sample. It copies the input before sorting.
func Summarize(xs []float64) Summary {
	var st Stream
	for _, x := range xs {
		st.Add(x)
	}
	return Summary{
		N:      st.N(),
		Mean:   st.Mean(),
		StdDev: st.StdDev(),
		Min:    st.Min(),
		P50:    Percentile(xs, 50),
		P95:    Percentile(xs, 95),
		Max:    st.Max(),
	}
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g±%.2g [min=%.4g p50=%.4g p95=%.4g max=%.4g]",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.Max)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of the sample using
// linear interpolation between closest ranks. It returns 0 for an empty
// sample and panics on an out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v outside [0, 100]", p))
	}
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GeoMean returns the geometric mean of a sample of positive values —
// the right average for ratio metrics such as "fraction of the optimum".
// It returns 0 for an empty sample and panics on non-positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geometric mean of non-positive value %v", x))
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
