package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestSparklineBasics(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp = %q", got)
	}
	if got := Sparkline([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Errorf("constant = %q", got)
	}
	if got := Sparkline([]float64{1, math.NaN(), 3}); got != "▁ █" {
		t.Errorf("NaN gap = %q", got)
	}
	if got := Sparkline([]float64{math.NaN()}); got != " " {
		t.Errorf("all-NaN = %q", got)
	}
}

func TestSparklineMonotone(t *testing.T) {
	// Level must be non-decreasing for non-decreasing input.
	values := []float64{1, 2, 4, 8, 16, 32}
	s := []rune(Sparkline(values))
	for i := 1; i < len(s); i++ {
		if runeLevel(s[i]) < runeLevel(s[i-1]) {
			t.Fatalf("levels decreased: %q", string(s))
		}
	}
}

func runeLevel(r rune) int {
	for i, l := range sparkLevels {
		if l == r {
			return i
		}
	}
	return -1
}

func TestRenderSparklines(t *testing.T) {
	points := []Point{
		{Experiment: "e", X: 1, Algo: "greedy", MaxSum: 1, Seconds: 0.1},
		{Experiment: "e", X: 2, Algo: "greedy", MaxSum: 2, Seconds: 0.2},
		{Experiment: "e", X: 1, Algo: "random-v", MaxSum: 0.5, Seconds: 0.01},
		{Experiment: "e", X: 2, Algo: "random-v", MaxSum: 0.6, Seconds: 0.01},
	}
	out := RenderSparklines("|V|", points, StandardMetrics())
	for _, want := range []string{"curves over |V|", "{1, 2}", "greedy", "random-v", "MaxSum", "time (s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("sparklines missing %q:\n%s", want, out)
		}
	}
	// Single-x series render nothing (no curve to show).
	if got := RenderSparklines("|V|", points[:1], StandardMetrics()); got != "" {
		t.Errorf("single-point sparkline = %q", got)
	}
	if got := RenderSparklines("|V|", nil, StandardMetrics()); got != "" {
		t.Errorf("empty sparkline block = %q", got)
	}
}

func TestWriteJSON(t *testing.T) {
	points := []Point{
		{Experiment: "e", X: 1, Algo: "a", MaxSum: 2, Seconds: 0.5, Bytes: 100,
			Extra: map[string]float64{"prunes": 7}},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, points); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0]["algo"] != "a" || decoded[0]["max_sum"] != 2.0 {
		t.Fatalf("decoded = %+v", decoded)
	}
	extra := decoded[0]["extra"].(map[string]any)
	if extra["prunes"] != 7.0 {
		t.Fatalf("extra = %+v", extra)
	}
}
