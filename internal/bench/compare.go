package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// BenchDelta is the comparison of one solver bench point across two
// snapshots.
type BenchDelta struct {
	Name   string
	OldNs  float64
	NewNs  float64
	Ratio  float64 // NewNs / OldNs; > 1 means slower
	OldSum float64
	NewSum float64
}

// Regressed reports whether the point slowed down beyond tol (e.g. 0.20 for
// +20% ns_per_op).
func (d BenchDelta) Regressed(tol float64) bool {
	return d.OldNs > 0 && d.NewNs > d.OldNs*(1+tol)
}

// QualityChanged reports whether MaxSum moved at all. The pinned instances
// and solvers are deterministic, so any drift is a behavior change worth a
// look, not noise.
func (d BenchDelta) QualityChanged() bool { return d.OldSum != d.NewSum }

// CompareSolverBench diffs a fresh solver bench run against a committed
// snapshot, matching points by name. It returns all shared-point deltas
// (sorted by descending ratio: worst slowdown first) plus the names present
// in only one of the two sets.
func CompareSolverBench(old, fresh []SolverBenchPoint) (deltas []BenchDelta, onlyOld, onlyNew []string) {
	oldByName := make(map[string]SolverBenchPoint, len(old))
	for _, p := range old {
		oldByName[p.Name] = p
	}
	seen := make(map[string]bool, len(fresh))
	for _, p := range fresh {
		seen[p.Name] = true
		o, ok := oldByName[p.Name]
		if !ok {
			onlyNew = append(onlyNew, p.Name)
			continue
		}
		d := BenchDelta{
			Name: p.Name, OldNs: o.NsPerOp, NewNs: p.NsPerOp,
			OldSum: o.MaxSum, NewSum: p.MaxSum,
		}
		if o.NsPerOp > 0 {
			d.Ratio = p.NsPerOp / o.NsPerOp
		}
		deltas = append(deltas, d)
	}
	for _, p := range old {
		if !seen[p.Name] {
			onlyOld = append(onlyOld, p.Name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Ratio != deltas[j].Ratio {
			return deltas[i].Ratio > deltas[j].Ratio
		}
		return deltas[i].Name < deltas[j].Name
	})
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}

// FormatBenchComparison renders a comparison report and returns the names of
// points regressed beyond tol. Quality drifts are flagged in the report but
// do not count as perf regressions.
func FormatBenchComparison(deltas []BenchDelta, onlyOld, onlyNew []string, tol float64) (report string, regressed []string) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s %14s %8s\n", "name", "old ns/op", "new ns/op", "ratio")
	for _, d := range deltas {
		flag := ""
		if d.Regressed(tol) {
			flag = "  << REGRESSION"
			regressed = append(regressed, d.Name)
		}
		quality := ""
		if d.QualityChanged() {
			quality = fmt.Sprintf("  (maxsum %v -> %v)", d.OldSum, d.NewSum)
		}
		fmt.Fprintf(&b, "%-28s %14.0f %14.0f %8.2f%s%s\n", d.Name, d.OldNs, d.NewNs, d.Ratio, flag, quality)
	}
	for _, name := range onlyOld {
		fmt.Fprintf(&b, "%-28s only in committed snapshot\n", name)
	}
	for _, name := range onlyNew {
		fmt.Fprintf(&b, "%-28s only in fresh run (re-generate the snapshot to pin it)\n", name)
	}
	return b.String(), regressed
}

// ReadSolverBenchJSON loads a BENCH_solvers.json snapshot.
func ReadSolverBenchJSON(r io.Reader) ([]SolverBenchPoint, error) {
	var points []SolverBenchPoint
	if err := json.NewDecoder(r).Decode(&points); err != nil {
		return nil, fmt.Errorf("bench: decode solver snapshot: %w", err)
	}
	return points, nil
}

// ReadSolverBenchFile loads a BENCH_solvers.json snapshot from disk.
func ReadSolverBenchFile(path string) ([]SolverBenchPoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSolverBenchJSON(f)
}
