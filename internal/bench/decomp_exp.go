package bench

import (
	"fmt"
	"math"

	"github.com/ebsnlab/geacc/internal/dataset"
)

// runDecompSweep compares monolithic and decomposed solves on clustered
// instances while sweeping the community count: more communities means
// smaller independent shards, so the decomposed curves should fall while
// the monolithic ones stay flat — with identical MaxSum between the two
// (the compositionality property, certified per point).
func runDecompSweep(opt Options) ([]Point, error) {
	opt = opt.withDefaults()
	algos := []string{"greedy", "mincostflow"}
	var points []Point
	for xi, communities := range []int{2, 4, 8, 16, 32} {
		perSeries := make(map[string][]Point)
		for r := 0; r < opt.Reps; r++ {
			cfg := dataset.DefaultClustered()
			cfg.NumEvents = opt.scaleCard(cfg.NumEvents, 2*communities)
			cfg.NumUsers = opt.scaleCard(cfg.NumUsers, 4*communities)
			cfg.Communities = communities
			cfg.Seed = opt.Seed + int64(xi)*1031 + int64(r)*41
			in, err := cfg.Generate()
			if err != nil {
				return nil, fmt.Errorf("bench: decomp k=%d: %w", communities, err)
			}
			for _, algo := range algos {
				maxSums := make(map[bool]float64)
				for _, decompose := range []bool{false, true} {
					runOpt := opt
					runOpt.Decompose = decompose
					m, sec, bytes, err := MeasureAlgo(runOpt, in, algo, cfg.Seed+int64(len(algo)))
					if err != nil {
						return nil, fmt.Errorf("bench: decomp k=%d algo=%s decompose=%v: %w",
							communities, algo, decompose, err)
					}
					maxSums[decompose] = m.MaxSum()
					series := algo
					if decompose {
						series += "-decomp"
					}
					perSeries[series] = append(perSeries[series], Point{
						Experiment: "decomp", X: float64(communities), Algo: series,
						MaxSum: m.MaxSum(), Seconds: sec, Bytes: bytes,
					})
				}
				// The pair sets agree; only float summation order differs
				// between a monolithic solve and a component-ordered merge,
				// so anything beyond ulp-level disagreement is a real bug.
				if drift := math.Abs(maxSums[true] - maxSums[false]); drift > 1e-9*math.Max(1, maxSums[false]) {
					return nil, fmt.Errorf("bench: decomp k=%d algo=%s: decomposed MaxSum %v drifted from monolithic %v",
						communities, algo, maxSums[true], maxSums[false])
				}
			}
		}
		for _, algo := range algos {
			for _, suffix := range []string{"", "-decomp"} {
				points = append(points, average(perSeries[algo+suffix]))
			}
		}
	}
	return points, nil
}
