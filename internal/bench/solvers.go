package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/dataset"
	"github.com/ebsnlab/geacc/internal/decomp"
	"github.com/ebsnlab/geacc/internal/partition"
)

// SolverBenchPoint is one entry of BENCH_solvers.json, the repo's perf
// trajectory: the latency AND quality of one solver on one pinned
// instance, so a regression in either direction shows up as a diff of the
// committed snapshot. Gap is (RelaxedUpperBound - MaxSum) /
// RelaxedUpperBound — the Corollary 1 optimality gap, 0 when the solve
// meets the relaxation bound.
type SolverBenchPoint struct {
	Name    string  `json:"name"`
	NV      int     `json:"n_v"`
	NU      int     `json:"n_u"`
	NsPerOp float64 `json:"ns_per_op"`
	MaxSum  float64 `json:"maxsum"`
	Gap     float64 `json:"gap"`
	// Drift is the measured MaxSum loss of an approximately sharded solve
	// relative to its monolithic counterpart (partition_sharded points only).
	Drift float64 `json:"drift,omitempty"`
}

// solverBenchCase pins one benchmark instance: the generator seed and
// shape are fixed so snapshots diff meaningfully across commits.
type solverBenchCase struct {
	algo        string
	nv, nu      int
	eventCapMax int
	userCapMax  int
	communities int  // > 0: clustered multi-community instance
	decompose   bool // route the solve through internal/decomp
	large       bool // only run when Options.LargeShapes is set
}

// name encodes the case for the snapshot: `greedy-decomp/v100_u2000_c16`.
func (c solverBenchCase) name() string {
	algo := c.algo
	if c.decompose {
		algo += "-decomp"
	}
	shape := fmt.Sprintf("v%d_u%d", c.nv, c.nu)
	if c.communities > 0 {
		shape += fmt.Sprintf("_c%d", c.communities)
	}
	return algo + "/" + shape
}

// solverBenchCases is the pinned set: a size sweep for the two
// polynomial-time solvers and deliberately tiny instances for the exact
// search, whose branch-and-bound tree grows exponentially with |V|·|U|.
func solverBenchCases() []solverBenchCase {
	var cases []solverBenchCase
	for _, algo := range []string{"greedy", "mincostflow"} {
		for _, shape := range [][2]int{{10, 50}, {20, 100}, {40, 200}, {80, 400}} {
			cases = append(cases, solverBenchCase{
				algo: algo, nv: shape[0], nu: shape[1],
				eventCapMax: 10, userCapMax: 4,
			})
		}
	}
	// Large shapes: big enough that the batched-kernel scan path dominates
	// the profile (the small sweep above mostly measures per-solve setup).
	for _, algo := range []string{"greedy", "mincostflow"} {
		for _, shape := range [][2]int{{50, 500}, {100, 2000}} {
			cases = append(cases, solverBenchCase{
				algo: algo, nv: shape[0], nu: shape[1],
				eventCapMax: 10, userCapMax: 4, large: true,
			})
		}
	}
	for _, shape := range [][2]int{{3, 6}, {4, 8}, {5, 10}, {6, 12}} {
		cases = append(cases, solverBenchCase{
			algo: "exact", nv: shape[0], nu: shape[1],
			eventCapMax: 3, userCapMax: 2,
		})
	}
	// Decomposed vs monolithic on multi-community instances: the same
	// pinned clustered workload solved whole and sharded, so the snapshot
	// certifies both the speedup and zero MaxSum drift between the two.
	for _, algo := range []string{"greedy", "mincostflow"} {
		for _, dec := range []bool{false, true} {
			cases = append(cases, solverBenchCase{
				algo: algo, nv: 100, nu: 2000, communities: 16, decompose: dec,
				eventCapMax: 10, userCapMax: 4, large: true,
			})
		}
	}
	// Exact stays feasible whole-instance because zero-similarity pairs are
	// never branchable, but per-shard search is the shape users should run.
	for _, dec := range []bool{false, true} {
		cases = append(cases, solverBenchCase{
			algo: "exact", nv: 12, nu: 24, communities: 4, decompose: dec,
			eventCapMax: 3, userCapMax: 2,
		})
	}
	return cases
}

// RunSolverBench measures every pinned case: Reps runs each (default 3
// here, not Options' usual 1), keeping the fastest wall clock as ns_per_op
// (minimum is the stablest point estimate under scheduler noise) and the
// matching of the final run for quality. The root Seed perturbs only the
// measurement repetitions, never the instances — those stay pinned.
func RunSolverBench(opt Options) ([]SolverBenchPoint, error) {
	if opt.Reps < 1 {
		opt.Reps = 3
	}
	var points []SolverBenchPoint
	// The relaxed upper bound is a property of the instance, not the solver;
	// cache it per shape (communities included — the plain and clustered
	// v100_u2000 are different instances) so the sweep pays for each
	// relaxation once.
	ubCache := map[[3]int]float64{}
	for _, c := range solverBenchCases() {
		if c.large && !opt.LargeShapes {
			continue
		}
		// The instance seed derives from the shape, not from opt.Seed:
		// every run of `make bench-json` benchmarks the same instances.
		var in *core.Instance
		var err error
		if c.communities > 0 {
			cfg := dataset.DefaultClustered()
			cfg.NumEvents = c.nv
			cfg.NumUsers = c.nu
			cfg.Communities = c.communities
			cfg.EventCapMax = c.eventCapMax
			cfg.UserCapMax = c.userCapMax
			cfg.Seed = int64(1000*c.nv + c.nu)
			in, err = cfg.Generate()
		} else {
			cfg := dataset.DefaultSynthetic()
			cfg.NumEvents = c.nv
			cfg.NumUsers = c.nu
			cfg.EventCapMax = c.eventCapMax
			cfg.UserCapMax = c.userCapMax
			cfg.Seed = int64(1000*c.nv + c.nu)
			in, err = cfg.Generate()
		}
		if err != nil {
			return nil, fmt.Errorf("bench: generate %s: %w", c.name(), err)
		}
		var best float64
		var m *core.Matching
		for rep := 0; rep < opt.Reps; rep++ {
			// Microsecond-scale cases are timer-noise-dominated when
			// sampled once, so each rep re-runs until ~20ms of measured
			// work accumulates and keeps the fastest single run. Cases
			// slower than that break after one iteration, unchanged.
			var spent float64
			for iter := 0; ; iter++ {
				mm, seconds, _, err := MeasureAlgo(Options{Decompose: c.decompose}, in, c.algo, opt.Seed+int64(rep))
				if err != nil {
					return nil, fmt.Errorf("bench: %s: %w", c.name(), err)
				}
				if m == nil || seconds < best {
					best = seconds
				}
				m = mm
				spent += seconds
				if spent >= 0.02 || iter >= 49 {
					break
				}
			}
		}
		shapeKey := [3]int{c.nv, c.nu, c.communities}
		ub, ok := ubCache[shapeKey]
		if !ok {
			ub = core.RelaxedUpperBound(in)
			ubCache[shapeKey] = ub
		}
		gap := 0.0
		if ub > 0 {
			if gap = (ub - m.MaxSum()) / ub; gap < 0 {
				gap = 0
			}
		}
		points = append(points, SolverBenchPoint{
			Name:    c.name(),
			NV:      c.nv,
			NU:      c.nu,
			NsPerOp: best * 1e9,
			MaxSum:  m.MaxSum(),
			Gap:     gap,
		})
	}
	warmPoints, err := runWarmDeltaBench(opt)
	if err != nil {
		return nil, err
	}
	points = append(points, warmPoints...)
	partPoints, err := runPartitionBench(opt)
	if err != nil {
		return nil, err
	}
	points = append(points, partPoints...)
	sort.Slice(points, func(i, j int) bool { return points[i].Name < points[j].Name })
	return points, nil
}

// warmDeltaShapes pins the dirty-component delta re-solve benchmark. Each
// shape is one component (the whole instance) fed a forward arrival chain:
// every step appends one user, which is exactly what a dirty-scope
// rebalance re-solves after an arrival delta.
var warmDeltaShapes = [][2]int{{20, 200}, {30, 400}}

// warmDeltaSteps is the arrival chain's length: how many 1-user delta
// re-solves each timed repetition runs. Every step is a real delta against
// the cached state of the preceding step, never an identical repeat.
const warmDeltaSteps = 8

// runWarmDeltaBench pins `mcflow_warm_delta/<shape>` against its cold
// baseline `mcflow_cold_delta/<shape>`: the same pinned arrival chain
// solved through core.MinCostFlowWarmCtx with a warm cache (filled once,
// untimed, per repetition) and through the cold core.MinCostFlowCtx. It
// fails outright if any step's warm MaxSum drifts from the cold one or if
// the warm path loses its required speedup, so `make bench-compare` gates
// the optimization structurally, not just against last run's numbers.
func runWarmDeltaBench(opt Options) ([]SolverBenchPoint, error) {
	ctx := context.Background()
	var points []SolverBenchPoint
	for _, shape := range warmDeltaShapes {
		nv, nu := shape[0], shape[1]
		name := fmt.Sprintf("v%d_u%d", nv, nu)
		cfg := dataset.DefaultSynthetic()
		cfg.NumEvents = nv
		cfg.NumUsers = nu
		cfg.EventCapMax = 10
		cfg.UserCapMax = 4
		cfg.Seed = int64(1000*nv + nu)
		in0, err := cfg.Generate()
		if err != nil {
			return nil, fmt.Errorf("bench: generate mcflow_warm_delta/%s: %w", name, err)
		}
		chain, ids, err := warmDeltaChain(in0, nv, nu)
		if err != nil {
			return nil, fmt.Errorf("bench: mcflow_warm_delta/%s: %w", name, err)
		}
		events := idRange(nv)

		warmBest, coldBest := math.Inf(1), math.Inf(1)
		warmSums := make([]float64, warmDeltaSteps)
		coldSums := make([]float64, warmDeltaSteps)
		for rep := 0; rep < opt.Reps; rep++ {
			wc := core.NewWarmCache(4)
			if _, err := core.MinCostFlowWarmCtx(ctx, chain[0], events, ids[0], wc); err != nil {
				return nil, fmt.Errorf("bench: mcflow_warm_delta/%s warm fill: %w", name, err)
			}
			start := time.Now()
			for s := 1; s <= warmDeltaSteps; s++ {
				m, err := core.MinCostFlowWarmCtx(ctx, chain[s], events, ids[s], wc)
				if err != nil {
					return nil, fmt.Errorf("bench: mcflow_warm_delta/%s: %w", name, err)
				}
				warmSums[s-1] = m.MaxSum()
			}
			if sec := time.Since(start).Seconds() / warmDeltaSteps; sec < warmBest {
				warmBest = sec
			}

			start = time.Now()
			for s := 1; s <= warmDeltaSteps; s++ {
				res, err := core.MinCostFlowCtx(ctx, chain[s], core.FlowOptions{})
				if err != nil {
					return nil, fmt.Errorf("bench: mcflow_cold_delta/%s: %w", name, err)
				}
				coldSums[s-1] = res.Matching.MaxSum()
			}
			if sec := time.Since(start).Seconds() / warmDeltaSteps; sec < coldBest {
				coldBest = sec
			}
		}
		for s := range warmSums {
			if warmSums[s] != coldSums[s] {
				return nil, fmt.Errorf("bench: mcflow_warm_delta/%s step %d: warm MaxSum %v drifted from cold %v",
					name, s+1, warmSums[s], coldSums[s])
			}
		}
		if warmBest*1.5 > coldBest {
			return nil, fmt.Errorf("bench: mcflow_warm_delta/%s: warm %.0fns/op is not >= 1.5x faster than cold %.0fns/op",
				name, warmBest*1e9, coldBest*1e9)
		}
		final := chain[warmDeltaSteps]
		ub := core.RelaxedUpperBound(final)
		gap := 0.0
		if ub > 0 {
			if gap = (ub - warmSums[warmDeltaSteps-1]) / ub; gap < 0 {
				gap = 0
			}
		}
		points = append(points,
			SolverBenchPoint{
				Name: "mcflow_warm_delta/" + name,
				NV:   nv, NU: nu + warmDeltaSteps,
				NsPerOp: warmBest * 1e9, MaxSum: warmSums[warmDeltaSteps-1], Gap: gap,
			},
			SolverBenchPoint{
				Name: "mcflow_cold_delta/" + name,
				NV:   nv, NU: nu + warmDeltaSteps,
				NsPerOp: coldBest * 1e9, MaxSum: coldSums[warmDeltaSteps-1], Gap: gap,
			})
	}
	return points, nil
}

// partitionBench pins the approximate-sharding benchmark workload: the
// dense clustered v100_u2000_c16 shape with a 5% bridge-user fraction, so
// the sixteen communities chain into ONE giant similarity component and the
// decomposition layer alone cannot split it.
const (
	partitionBenchBridgeFrac = 0.05
	partitionBenchMaxArea    = 20000
	partitionBenchSpeedup    = 5.0
)

// runPartitionBench pins `partition_sharded/<shape>` against its monolithic
// baseline `partition_mono/<shape>`: the same bridged giant-component
// instance solved through internal/decomp whole (one component, one
// monolithic min-cost flow) and with Options.Shard routing it through
// internal/partition. It fails outright if the bridge workload does not
// actually form one giant component, if the measured MaxSum drift exceeds
// the default drift budget, or if sharding loses its required speedup — so
// `make bench-json` gates the optimization structurally, not just against
// last run's numbers.
func runPartitionBench(opt Options) ([]SolverBenchPoint, error) {
	if !opt.LargeShapes {
		return nil, nil
	}
	ctx := context.Background()
	nv, nu := 100, 2000
	name := fmt.Sprintf("v%d_u%d_c16", nv, nu)
	cfg := dataset.DefaultClustered()
	cfg.NumEvents = nv
	cfg.NumUsers = nu
	cfg.Communities = 16
	cfg.EventCapMax = 10
	cfg.UserCapMax = 4
	cfg.BridgeFrac = partitionBenchBridgeFrac
	cfg.Seed = int64(1000*nv + nu)
	in, err := cfg.Generate()
	if err != nil {
		return nil, fmt.Errorf("bench: generate partition/%s: %w", name, err)
	}
	d, err := decomp.DecomposeContext(ctx, in)
	if err != nil {
		return nil, fmt.Errorf("bench: partition/%s: %w", name, err)
	}
	if got := len(d.Components); got != 1 {
		return nil, fmt.Errorf("bench: partition/%s: bridged workload split into %d components, want one giant component",
			name, got)
	}

	shard := partition.Options{MaxArea: partitionBenchMaxArea}.Normalized()
	monoBest, shardBest := math.Inf(1), math.Inf(1)
	var monoSum, shardSum float64
	for rep := 0; rep < opt.Reps; rep++ {
		m, sec, _, err := MeasureAlgo(Options{Decompose: true}, in, "mincostflow", opt.Seed+int64(rep))
		if err != nil {
			return nil, fmt.Errorf("bench: partition_mono/%s: %w", name, err)
		}
		if sec < monoBest {
			monoBest = sec
		}
		monoSum = m.MaxSum()

		m, sec, _, err = MeasureAlgo(Options{Shard: &shard}, in, "mincostflow", opt.Seed+int64(rep))
		if err != nil {
			return nil, fmt.Errorf("bench: partition_sharded/%s: %w", name, err)
		}
		if sec < shardBest {
			shardBest = sec
		}
		shardSum = m.MaxSum()
	}
	drift := 0.0
	if monoSum > 0 {
		if drift = (monoSum - shardSum) / monoSum; drift < 0 {
			drift = 0
		}
	}
	if drift > shard.DriftBudget {
		return nil, fmt.Errorf("bench: partition_sharded/%s: measured drift %.4f exceeds the %.4f budget (mono %.3f vs sharded %.3f)",
			name, drift, shard.DriftBudget, monoSum, shardSum)
	}
	if shardBest*partitionBenchSpeedup > monoBest {
		return nil, fmt.Errorf("bench: partition_sharded/%s: sharded %.0fms/op is not >= %.0fx faster than monolithic %.0fms/op",
			name, shardBest*1e3, partitionBenchSpeedup, monoBest*1e3)
	}
	ub := core.RelaxedUpperBound(in)
	gapOf := func(sum float64) float64 {
		if ub <= 0 {
			return 0
		}
		if g := (ub - sum) / ub; g > 0 {
			return g
		}
		return 0
	}
	return []SolverBenchPoint{
		{
			Name: "partition_mono/" + name,
			NV:   nv, NU: nu,
			NsPerOp: monoBest * 1e9, MaxSum: monoSum, Gap: gapOf(monoSum),
		},
		{
			Name: "partition_sharded/" + name,
			NV:   nv, NU: nu,
			NsPerOp: shardBest * 1e9, MaxSum: shardSum, Gap: gapOf(shardSum), Drift: drift,
		},
	}, nil
}

// warmDeltaChain builds the pinned arrival chain: chain[s] is in0 with s
// extra users appended (seeded attrs, append-only ids — the discipline the
// arranger itself follows), ids[s] the matching parent-id list.
func warmDeltaChain(in0 *core.Instance, nv, nu int) ([]*core.Instance, [][]int, error) {
	rng := rand.New(rand.NewSource(int64(nv)))
	dim := len(in0.Users[0].Attrs)
	chain := make([]*core.Instance, warmDeltaSteps+1)
	ids := make([][]int, warmDeltaSteps+1)
	chain[0] = in0
	ids[0] = idRange(nu)
	users := append([]core.User(nil), in0.Users...)
	for s := 1; s <= warmDeltaSteps; s++ {
		attrs := make([]float64, dim)
		for i := range attrs {
			attrs[i] = rng.Float64() * 100
		}
		users = append(users, core.User{Attrs: attrs, Cap: 1 + rng.Intn(4)})
		in, err := core.NewInstance(in0.Events, append([]core.User(nil), users...), in0.Conflicts, in0.SimFunc)
		if err != nil {
			return nil, nil, err
		}
		chain[s] = in
		ids[s] = idRange(nu + s)
	}
	return chain, ids, nil
}

// idRange returns [0, n) — a whole-instance component's parent-id list.
func idRange(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// WriteSolverBenchJSON writes the trajectory snapshot with stable ordering
// and indentation, so successive runs produce reviewable diffs.
func WriteSolverBenchJSON(w io.Writer, points []SolverBenchPoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(points)
}
