package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/dataset"
)

// SolverBenchPoint is one entry of BENCH_solvers.json, the repo's perf
// trajectory: the latency AND quality of one solver on one pinned
// instance, so a regression in either direction shows up as a diff of the
// committed snapshot. Gap is (RelaxedUpperBound - MaxSum) /
// RelaxedUpperBound — the Corollary 1 optimality gap, 0 when the solve
// meets the relaxation bound.
type SolverBenchPoint struct {
	Name    string  `json:"name"`
	NV      int     `json:"n_v"`
	NU      int     `json:"n_u"`
	NsPerOp float64 `json:"ns_per_op"`
	MaxSum  float64 `json:"maxsum"`
	Gap     float64 `json:"gap"`
}

// solverBenchCase pins one benchmark instance: the generator seed and
// shape are fixed so snapshots diff meaningfully across commits.
type solverBenchCase struct {
	algo        string
	nv, nu      int
	eventCapMax int
	userCapMax  int
	communities int  // > 0: clustered multi-community instance
	decompose   bool // route the solve through internal/decomp
	large       bool // only run when Options.LargeShapes is set
}

// name encodes the case for the snapshot: `greedy-decomp/v100_u2000_c16`.
func (c solverBenchCase) name() string {
	algo := c.algo
	if c.decompose {
		algo += "-decomp"
	}
	shape := fmt.Sprintf("v%d_u%d", c.nv, c.nu)
	if c.communities > 0 {
		shape += fmt.Sprintf("_c%d", c.communities)
	}
	return algo + "/" + shape
}

// solverBenchCases is the pinned set: a size sweep for the two
// polynomial-time solvers and deliberately tiny instances for the exact
// search, whose branch-and-bound tree grows exponentially with |V|·|U|.
func solverBenchCases() []solverBenchCase {
	var cases []solverBenchCase
	for _, algo := range []string{"greedy", "mincostflow"} {
		for _, shape := range [][2]int{{10, 50}, {20, 100}, {40, 200}, {80, 400}} {
			cases = append(cases, solverBenchCase{
				algo: algo, nv: shape[0], nu: shape[1],
				eventCapMax: 10, userCapMax: 4,
			})
		}
	}
	// Large shapes: big enough that the batched-kernel scan path dominates
	// the profile (the small sweep above mostly measures per-solve setup).
	for _, algo := range []string{"greedy", "mincostflow"} {
		for _, shape := range [][2]int{{50, 500}, {100, 2000}} {
			cases = append(cases, solverBenchCase{
				algo: algo, nv: shape[0], nu: shape[1],
				eventCapMax: 10, userCapMax: 4, large: true,
			})
		}
	}
	for _, shape := range [][2]int{{3, 6}, {4, 8}, {5, 10}, {6, 12}} {
		cases = append(cases, solverBenchCase{
			algo: "exact", nv: shape[0], nu: shape[1],
			eventCapMax: 3, userCapMax: 2,
		})
	}
	// Decomposed vs monolithic on multi-community instances: the same
	// pinned clustered workload solved whole and sharded, so the snapshot
	// certifies both the speedup and zero MaxSum drift between the two.
	for _, algo := range []string{"greedy", "mincostflow"} {
		for _, dec := range []bool{false, true} {
			cases = append(cases, solverBenchCase{
				algo: algo, nv: 100, nu: 2000, communities: 16, decompose: dec,
				eventCapMax: 10, userCapMax: 4, large: true,
			})
		}
	}
	// Exact stays feasible whole-instance because zero-similarity pairs are
	// never branchable, but per-shard search is the shape users should run.
	for _, dec := range []bool{false, true} {
		cases = append(cases, solverBenchCase{
			algo: "exact", nv: 12, nu: 24, communities: 4, decompose: dec,
			eventCapMax: 3, userCapMax: 2,
		})
	}
	return cases
}

// RunSolverBench measures every pinned case: Reps runs each (default 3
// here, not Options' usual 1), keeping the fastest wall clock as ns_per_op
// (minimum is the stablest point estimate under scheduler noise) and the
// matching of the final run for quality. The root Seed perturbs only the
// measurement repetitions, never the instances — those stay pinned.
func RunSolverBench(opt Options) ([]SolverBenchPoint, error) {
	if opt.Reps < 1 {
		opt.Reps = 3
	}
	var points []SolverBenchPoint
	// The relaxed upper bound is a property of the instance, not the solver;
	// cache it per shape (communities included — the plain and clustered
	// v100_u2000 are different instances) so the sweep pays for each
	// relaxation once.
	ubCache := map[[3]int]float64{}
	for _, c := range solverBenchCases() {
		if c.large && !opt.LargeShapes {
			continue
		}
		// The instance seed derives from the shape, not from opt.Seed:
		// every run of `make bench-json` benchmarks the same instances.
		var in *core.Instance
		var err error
		if c.communities > 0 {
			cfg := dataset.DefaultClustered()
			cfg.NumEvents = c.nv
			cfg.NumUsers = c.nu
			cfg.Communities = c.communities
			cfg.EventCapMax = c.eventCapMax
			cfg.UserCapMax = c.userCapMax
			cfg.Seed = int64(1000*c.nv + c.nu)
			in, err = cfg.Generate()
		} else {
			cfg := dataset.DefaultSynthetic()
			cfg.NumEvents = c.nv
			cfg.NumUsers = c.nu
			cfg.EventCapMax = c.eventCapMax
			cfg.UserCapMax = c.userCapMax
			cfg.Seed = int64(1000*c.nv + c.nu)
			in, err = cfg.Generate()
		}
		if err != nil {
			return nil, fmt.Errorf("bench: generate %s: %w", c.name(), err)
		}
		var best float64
		var m *core.Matching
		for rep := 0; rep < opt.Reps; rep++ {
			mm, seconds, _, err := MeasureAlgo(Options{Decompose: c.decompose}, in, c.algo, opt.Seed+int64(rep))
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", c.name(), err)
			}
			if m == nil || seconds < best {
				best = seconds
			}
			m = mm
		}
		shapeKey := [3]int{c.nv, c.nu, c.communities}
		ub, ok := ubCache[shapeKey]
		if !ok {
			ub = core.RelaxedUpperBound(in)
			ubCache[shapeKey] = ub
		}
		gap := 0.0
		if ub > 0 {
			if gap = (ub - m.MaxSum()) / ub; gap < 0 {
				gap = 0
			}
		}
		points = append(points, SolverBenchPoint{
			Name:    c.name(),
			NV:      c.nv,
			NU:      c.nu,
			NsPerOp: best * 1e9,
			MaxSum:  m.MaxSum(),
			Gap:     gap,
		})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Name < points[j].Name })
	return points, nil
}

// WriteSolverBenchJSON writes the trajectory snapshot with stable ordering
// and indentation, so successive runs produce reviewable diffs.
func WriteSolverBenchJSON(w io.Writer, points []SolverBenchPoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(points)
}
