package bench

import (
	"context"
	"testing"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/dataset"
	"github.com/ebsnlab/geacc/internal/decomp"
)

// clusteredInstance builds the clustered counterpart of pinnedInstance: the
// multi-community workload the decomposition layer shards.
func clusteredInstance(tb testing.TB, nv, nu, communities int) *core.Instance {
	cfg := dataset.DefaultClustered()
	cfg.NumEvents = nv
	cfg.NumUsers = nu
	cfg.Communities = communities
	cfg.EventCapMax = 10
	cfg.UserCapMax = 4
	cfg.Seed = int64(1000*nv + nu)
	in, err := cfg.Generate()
	if err != nil {
		tb.Fatal(err)
	}
	return in
}

// The benchmarks below are the CI smoke surface for the decomposition path
// (run with -benchtime=10x): the same clustered instance solved whole and
// sharded, so a perf or correctness break in internal/decomp shows up in
// the smoke run, not only in the full snapshot job.

func BenchmarkGreedyMonolithicClusteredV40U400C8(b *testing.B) {
	in := clusteredInstance(b, 40, 400, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Greedy(in)
	}
}

func BenchmarkGreedyDecomposedClusteredV40U400C8(b *testing.B) {
	in := clusteredInstance(b, 40, 400, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := decomp.SolveContext(context.Background(), "greedy", in, decomp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecomposeBuildClusteredV40U400C8(b *testing.B) {
	in := clusteredInstance(b, 40, 400, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decomp.Decompose(in); err != nil {
			b.Fatal(err)
		}
	}
}
