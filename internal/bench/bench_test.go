package bench

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/dataset"
)

// tinyOpts shrinks every experiment far enough to run in a unit test.
func tinyOpts() Options {
	return Options{Scale: 0.05, Reps: 1, Seed: 7}
}

func TestRegistryCoversEveryFigure(t *testing.T) {
	want := []string{
		"table1", "table2",
		"fig3v", "fig3u", "fig3d", "fig3cf",
		"fig4cv", "fig4cu", "fig4dist", "fig4real",
		"fig5ab", "fig5cd", "fig6a", "fig6bcd",
		"ablation-index", "ablation-resolution",
		"decomp",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Title == "" || reg[i].XLabel == "" || reg[i].Run == nil {
			t.Errorf("experiment %s incompletely described", id)
		}
	}
	if _, err := Lookup("fig3v"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("fig9"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestMeasureValidatesAndTimes(t *testing.T) {
	cfg := dataset.DefaultSynthetic()
	cfg.NumEvents, cfg.NumUsers = 5, 20
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	m, sec, bytes, err := Measure(in, core.Solvers()["greedy"], 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() == 0 {
		t.Error("greedy matched nothing on a dense instance")
	}
	if sec < 0 || bytes < 0 {
		t.Error("negative measurements")
	}
}

func TestMeasureRejectsCheatingSolver(t *testing.T) {
	in, err := core.NewMatrixInstance(
		[]core.Event{{Cap: 1}}, []core.User{{Cap: 1}}, nil, [][]float64{{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	cheat := core.Solver(func(in *core.Instance, _ *rand.Rand) *core.Matching {
		m := core.NewMatching()
		m.Add(0, 0, 0.9) // inconsistent similarity: Validate must catch it
		return m
	})
	if _, _, _, err := Measure(in, cheat, 1); err == nil {
		t.Error("Measure accepted an infeasible matching")
	}
}

func TestOptionsDefaultsAndScaling(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1 || o.Reps != 1 || o.Seed != 1 {
		t.Fatalf("defaults = %+v", o)
	}
	o = Options{Scale: 0.1}.withDefaults()
	if got := o.scaleCard(100, 2); got != 10 {
		t.Errorf("scaleCard(100) = %d", got)
	}
	if got := o.scaleCard(5, 2); got != 2 {
		t.Errorf("scaleCard floor = %d", got)
	}
	if o = (Options{Scale: 3}).withDefaults(); o.Scale != 1 {
		t.Error("scale > 1 must clamp to 1")
	}
}

func TestAverage(t *testing.T) {
	pts := []Point{
		{Experiment: "e", X: 1, Algo: "a", MaxSum: 2, Seconds: 1, Bytes: 10,
			Extra: map[string]float64{"k": 4}},
		{Experiment: "e", X: 1, Algo: "a", MaxSum: 4, Seconds: 3, Bytes: 30,
			Extra: map[string]float64{"k": 8}},
	}
	avg := average(pts)
	if avg.MaxSum != 3 || avg.Seconds != 2 || avg.Bytes != 20 || avg.Extra["k"] != 6 {
		t.Fatalf("average = %+v", avg)
	}
	// Multi-rep averages expose their spread.
	if math.Abs(avg.Extra["maxsum_std"]-math.Sqrt2) > 1e-12 {
		t.Fatalf("maxsum_std = %v", avg.Extra["maxsum_std"])
	}
	if math.Abs(avg.Extra["seconds_std"]-math.Sqrt2) > 1e-12 {
		t.Fatalf("seconds_std = %v", avg.Extra["seconds_std"])
	}
	if avg.Experiment != "e" || avg.X != 1 || avg.Algo != "a" {
		t.Fatal("average lost identity fields")
	}
	if average(nil).MaxSum != 0 {
		t.Error("average of nothing")
	}
	single := average(pts[:1])
	if single.MaxSum != 2 {
		t.Error("single-point average changed the value")
	}
}

func TestFig3SweepsRunAtTinyScale(t *testing.T) {
	for _, id := range []string{"fig3v", "fig3u", "fig3d", "fig3cf"} {
		exp, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		points, err := exp.Run(tinyOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		wantXs := map[string]int{"fig3v": 5, "fig3u": 6, "fig3d": 5, "fig3cf": 5}[id]
		if len(points) != wantXs*len(compareAlgos) {
			t.Fatalf("%s: %d points, want %d", id, len(points), wantXs*len(compareAlgos))
		}
		for _, p := range points {
			if p.Experiment != id || p.Seconds < 0 || math.IsNaN(p.MaxSum) {
				t.Fatalf("%s: bad point %+v", id, p)
			}
		}
	}
}

func TestFig4SweepsRunAtTinyScale(t *testing.T) {
	for _, id := range []string{"fig4cv", "fig4cu", "fig4dist", "fig4real"} {
		exp, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		points, err := exp.Run(tinyOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(points) == 0 {
			t.Fatalf("%s: no points", id)
		}
	}
}

func TestFig5ScalabilityTinyScale(t *testing.T) {
	exp, err := Lookup("fig5ab")
	if err != nil {
		t.Fatal(err)
	}
	points, err := exp.Run(Options{Scale: 0.002, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4*5 {
		t.Fatalf("%d points, want 20", len(points))
	}
	series := map[string]bool{}
	for _, p := range points {
		series[p.Algo] = true
	}
	if len(series) != 4 {
		t.Fatalf("want 4 |V| series, got %v", series)
	}
}

func TestFig5EffectivenessOrderingHolds(t *testing.T) {
	exp, err := Lookup("fig5cd")
	if err != nil {
		t.Fatal(err)
	}
	// Scale 0.6 -> |U| = 9: the exact search at the paper's full |U| = 15
	// takes minutes (the paper's own Fig 5d reports ~10² s), so the
	// full-size run lives in the cmd harness, not in unit tests.
	points, err := exp.Run(Options{Scale: 0.6, Reps: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// At every conflict density the exact optimum dominates both
	// approximations (up to averaging noise: reps share seeds per algo).
	byX := map[float64]map[string]float64{}
	for _, p := range points {
		if byX[p.X] == nil {
			byX[p.X] = map[string]float64{}
		}
		byX[p.X][p.Algo] = p.MaxSum
	}
	for x, algos := range byX {
		if algos["exact"]+1e-9 < algos["greedy"] || algos["exact"]+1e-9 < algos["mincostflow"] {
			t.Errorf("x=%v: exact %v below greedy %v or mcf %v",
				x, algos["exact"], algos["greedy"], algos["mincostflow"])
		}
	}
	// With no conflicts, MinCostFlow-GEACC equals the optimum (Fig. 5c's
	// leftmost point).
	if a := byX[0]; math.Abs(a["exact"]-a["mincostflow"]) > 1e-9 {
		t.Errorf("CF=0: mincostflow %v != exact %v", a["mincostflow"], a["exact"])
	}
}

func TestFig6PrunedDepthWellBelowMax(t *testing.T) {
	exp, err := Lookup("fig6a")
	if err != nil {
		t.Fatal(err)
	}
	points, err := exp.Run(Options{Scale: 0.8, Seed: 13}) // |U| = 8 and 12
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points, want 2", len(points))
	}
	for _, p := range points {
		avg, max := p.Extra["avg_pruned_depth"], p.Extra["max_depth"]
		// The paper's observation (Fig. 6a): on average, pruning fires
		// strictly before the maximum recursion depth. (At the paper's full
		// |U| = 10/15 the gap is large; at this test's reduced sizes it is
		// smaller but must still exist.)
		if avg <= 0 || avg >= max {
			t.Errorf("|U|=%v: avg pruned depth %v not inside (0, %v)", p.X, avg, max)
		}
		if p.Extra["prunes"] <= 0 {
			t.Errorf("|U|=%v: no prunes recorded", p.X)
		}
	}
	// At full scale the maximum depths are the paper's dashed lines 50 and
	// 75 (|V|·|U| for |U| = 10, 15); here they scale with |U|.
	if points[0].Extra["max_depth"] != 5*points[0].X || points[1].Extra["max_depth"] != 5*points[1].X {
		t.Errorf("max depths = %v, %v for |U| = %v, %v",
			points[0].Extra["max_depth"], points[1].Extra["max_depth"], points[0].X, points[1].X)
	}
}

func TestFig6PruneBeatsExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search baseline is slow")
	}
	exp, err := Lookup("fig6bcd")
	if err != nil {
		t.Fatal(err)
	}
	points, err := exp.Run(Options{Scale: 0.6, Seed: 17}) // |U| = 6: exhaustive tractable
	if err != nil {
		t.Fatal(err)
	}
	byX := map[float64]map[string]Point{}
	for _, p := range points {
		if byX[p.X] == nil {
			byX[p.X] = map[string]Point{}
		}
		byX[p.X][p.Algo] = p
	}
	for x, algos := range byX {
		prune, exhaustive := algos["prune"], algos["exhaustive"]
		if prune.Extra["invocations"] >= exhaustive.Extra["invocations"] {
			t.Errorf("x=%v: pruning did not reduce invocations (%v vs %v)",
				x, prune.Extra["invocations"], exhaustive.Extra["invocations"])
		}
		if prune.Extra["complete_searches"] > exhaustive.Extra["complete_searches"] {
			t.Errorf("x=%v: pruning increased complete searches", x)
		}
		if math.Abs(prune.MaxSum-exhaustive.MaxSum) > 1e-9 {
			t.Errorf("x=%v: prune %v != exhaustive %v", x, prune.MaxSum, exhaustive.MaxSum)
		}
	}
}

func TestTable1Experiment(t *testing.T) {
	exp, err := Lookup("table1")
	if err != nil {
		t.Fatal(err)
	}
	points, err := exp.Run(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("%d points, want 5", len(points))
	}
	byAlgo := map[string]float64{}
	for _, p := range points {
		byAlgo[p.Algo] = p.MaxSum
	}
	for algo, want := range map[string]float64{"exact": 4.39, "greedy": 4.28, "mincostflow": 4.13} {
		if math.Abs(byAlgo[algo]-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", algo, byAlgo[algo], want)
		}
	}
}

func TestTable2Experiment(t *testing.T) {
	exp, err := Lookup("table2")
	if err != nil {
		t.Fatal(err)
	}
	points, err := exp.Run(Options{Scale: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points, want 3 cities", len(points))
	}
	for _, p := range points {
		if p.Extra["events"] <= 0 || p.Extra["users"] <= 0 {
			t.Fatalf("city %s has no stats: %+v", p.Algo, p.Extra)
		}
	}
}

func TestAblationExperiments(t *testing.T) {
	for _, id := range []string{"ablation-index", "ablation-resolution"} {
		exp, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		points, err := exp.Run(Options{Scale: 0.05, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(points) == 0 {
			t.Fatalf("%s: no points", id)
		}
	}
	// All exact NN indexes must agree on MaxSum.
	exp, _ := Lookup("ablation-index")
	points, err := exp.Run(Options{Scale: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if math.Abs(p.MaxSum-points[0].MaxSum) > 1e-9 {
			t.Fatalf("index %s disagrees: %v vs %v", p.Algo, p.MaxSum, points[0].MaxSum)
		}
	}
	// MWIS resolution never loses to greedy resolution.
	exp, _ = Lookup("ablation-resolution")
	points, err = exp.Run(Options{Scale: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	byX := map[float64]map[string]float64{}
	for _, p := range points {
		if byX[p.X] == nil {
			byX[p.X] = map[string]float64{}
		}
		byX[p.X][p.Algo] = p.MaxSum
	}
	for x, m := range byX {
		if m["mwis-resolution"] < m["greedy-resolution"]-1e-9 {
			t.Fatalf("x=%v: MWIS %v below greedy %v", x, m["mwis-resolution"], m["greedy-resolution"])
		}
	}
}

func TestRenderTables(t *testing.T) {
	points := []Point{
		{Experiment: "e", X: 10, Algo: "greedy", MaxSum: 1.5, Seconds: 0.1, Bytes: 1 << 20},
		{Experiment: "e", X: 10, Algo: "random-v", MaxSum: 0.5, Seconds: 0.05, Bytes: 1 << 19},
		{Experiment: "e", X: 20, Algo: "greedy", MaxSum: 2.5, Seconds: 0.2, Bytes: 1 << 21},
	}
	out := RenderTables("demo", "|V|", points, StandardMetrics())
	for _, want := range []string{"## demo", "MaxSum", "time (s)", "memory (MB)", "greedy", "random-v", "1.50", "2.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Missing (x, algo) combinations render as "-".
	if !strings.Contains(out, "-") {
		t.Error("missing combination not rendered as '-'")
	}
}

func TestWriteCSV(t *testing.T) {
	points := []Point{
		{Experiment: "e", X: 1, Algo: "a", MaxSum: 2, Seconds: 0.5, Bytes: 100,
			Extra: map[string]float64{"prunes": 7}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.HasPrefix(got, "experiment,x,algo,max_sum,seconds,bytes,prunes\n") {
		t.Fatalf("header wrong: %q", got)
	}
	if !strings.Contains(got, "e,1,a,2,0.5,100,7") {
		t.Fatalf("row wrong: %q", got)
	}
}

func TestExtraMetricsSortedUnion(t *testing.T) {
	points := []Point{
		{Extra: map[string]float64{"b": 1}},
		{Extra: map[string]float64{"a": 2}},
	}
	ms := ExtraMetrics(points)
	if len(ms) != 2 || ms[0].Name != "a" || ms[1].Name != "b" {
		t.Fatalf("ExtraMetrics = %v", ms)
	}
}

func TestTruncatePreservesDensityShape(t *testing.T) {
	cfg := dataset.DefaultSynthetic()
	cfg.NumEvents, cfg.NumUsers = 40, 100
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	small := truncate(in, Options{Scale: 0.5}.withDefaults())
	if small.NumEvents() != 20 || small.NumUsers() != 50 {
		t.Fatalf("truncated to %d/%d", small.NumEvents(), small.NumUsers())
	}
	// Surviving conflicts reference surviving events only.
	for _, p := range small.Conflicts.Pairs() {
		if p[0] >= 20 || p[1] >= 20 {
			t.Fatalf("dangling conflict %v", p)
		}
		if !in.Conflicting(p[0], p[1]) {
			t.Fatalf("phantom conflict %v", p)
		}
	}
	if full := truncate(in, Options{Scale: 1}.withDefaults()); full != in {
		t.Error("scale 1 must be a no-op")
	}
}
