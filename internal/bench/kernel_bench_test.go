package bench

import (
	"strings"
	"testing"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/dataset"
)

// pinnedInstance builds the same instance RunSolverBench uses for a shape.
func pinnedInstance(tb testing.TB, nv, nu int) *core.Instance {
	cfg := dataset.DefaultSynthetic()
	cfg.NumEvents = nv
	cfg.NumUsers = nu
	cfg.EventCapMax = 10
	cfg.UserCapMax = 4
	cfg.Seed = int64(1000*nv + nu)
	in, err := cfg.Generate()
	if err != nil {
		tb.Fatal(err)
	}
	return in
}

// TestSolverBenchLargeShapesGated: the large shapes run only when
// Options.LargeShapes is set, so plain `go test` stays fast while the CLI
// snapshot includes them.
func TestSolverBenchLargeShapesGated(t *testing.T) {
	var large, small int
	for _, c := range solverBenchCases() {
		if c.large {
			large++
			if c.nv*c.nu < 50*500 {
				t.Errorf("case v%d_u%d marked large", c.nv, c.nu)
			}
		} else {
			small++
		}
	}
	if large != 8 {
		t.Errorf("large cases = %d, want 8 (greedy+mincostflow at v50_u500, v100_u2000, and mono+decomp at clustered v100_u2000_c16)", large)
	}
	if small < 12 {
		t.Errorf("small cases = %d, want >= 12", small)
	}
	if testing.Short() {
		return
	}
	points, err := RunSolverBench(Options{Reps: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if strings.Contains(p.Name, "u500") || strings.Contains(p.Name, "u2000") {
			t.Errorf("large point %s ran without LargeShapes", p.Name)
		}
	}
}

// The benchmarks below are the CI smoke surface for the batched kernel path
// (run with -benchtime=10x): a greedy solve big enough that refills stream
// through SimBatch blocks, and a flow solve whose cost matrix is built from
// batched similarity rows.

func BenchmarkGreedyKernelV50U500(b *testing.B) {
	in := pinnedInstance(b, 50, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Greedy(in)
	}
}

func BenchmarkMinCostFlowKernelV20U100(b *testing.B) {
	in := pinnedInstance(b, 20, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MinCostFlow(in)
	}
}
