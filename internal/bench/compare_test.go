package bench

import (
	"strings"
	"testing"
)

func TestCompareSolverBench(t *testing.T) {
	old := []SolverBenchPoint{
		{Name: "greedy/v10_u50", NsPerOp: 1000, MaxSum: 30},
		{Name: "greedy/v20_u100", NsPerOp: 2000, MaxSum: 60},
		{Name: "exact/v3_u6", NsPerOp: 500, MaxSum: 5},
	}
	fresh := []SolverBenchPoint{
		{Name: "greedy/v10_u50", NsPerOp: 1300, MaxSum: 30},  // +30%: regression
		{Name: "greedy/v20_u100", NsPerOp: 1500, MaxSum: 61}, // faster, quality drift
		{Name: "greedy/v50_u500", NsPerOp: 9000, MaxSum: 200},
	}
	deltas, onlyOld, onlyNew := CompareSolverBench(old, fresh)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(deltas))
	}
	// Sorted worst ratio first.
	if deltas[0].Name != "greedy/v10_u50" || deltas[1].Name != "greedy/v20_u100" {
		t.Fatalf("delta order: %q, %q", deltas[0].Name, deltas[1].Name)
	}
	if !deltas[0].Regressed(0.20) {
		t.Error("+30% not flagged at 20% tolerance")
	}
	if deltas[0].Regressed(0.50) {
		t.Error("+30% flagged at 50% tolerance")
	}
	if deltas[1].Regressed(0.20) {
		t.Error("speedup flagged as regression")
	}
	if !deltas[1].QualityChanged() || deltas[0].QualityChanged() {
		t.Error("quality drift misreported")
	}
	if len(onlyOld) != 1 || onlyOld[0] != "exact/v3_u6" {
		t.Errorf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "greedy/v50_u500" {
		t.Errorf("onlyNew = %v", onlyNew)
	}

	report, regressed := FormatBenchComparison(deltas, onlyOld, onlyNew, 0.20)
	if len(regressed) != 1 || regressed[0] != "greedy/v10_u50" {
		t.Errorf("regressed = %v", regressed)
	}
	for _, want := range []string{"REGRESSION", "maxsum", "only in committed snapshot", "only in fresh run"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestReadSolverBenchJSONRoundTrip(t *testing.T) {
	points := []SolverBenchPoint{{Name: "greedy/v10_u50", NV: 10, NU: 50, NsPerOp: 1234.5, MaxSum: 30.25, Gap: 0.1}}
	var buf strings.Builder
	if err := WriteSolverBenchJSON(&buf, points); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSolverBenchJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != points[0] {
		t.Fatalf("round trip: %+v", got)
	}
}
