package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSolverBench(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every pinned solver case")
	}
	points, err := RunSolverBench(Options{Reps: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 12 {
		t.Fatalf("got %d points, want >= 12", len(points))
	}
	algos := make(map[string]int)
	for _, p := range points {
		algo, _, ok := strings.Cut(p.Name, "/")
		if !ok {
			t.Errorf("point name %q is not algo/shape", p.Name)
		}
		algos[algo]++
		if p.NV <= 0 || p.NU <= 0 {
			t.Errorf("%s: shape (%d, %d)", p.Name, p.NV, p.NU)
		}
		if p.NsPerOp <= 0 {
			t.Errorf("%s: ns_per_op = %v", p.Name, p.NsPerOp)
		}
		if p.MaxSum <= 0 {
			t.Errorf("%s: maxsum = %v", p.Name, p.MaxSum)
		}
		if p.Gap < 0 || p.Gap > 1 {
			t.Errorf("%s: gap = %v outside [0, 1]", p.Name, p.Gap)
		}
	}
	for _, algo := range []string{"greedy", "mincostflow", "exact"} {
		if algos[algo] == 0 {
			t.Errorf("no points for %s; got %v", algo, algos)
		}
	}
	// The snapshot must be deterministic modulo timing: same instances,
	// same matchings, same quality numbers on every run.
	again, err := RunSolverBench(Options{Reps: 1, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if points[i].Name != again[i].Name ||
			points[i].MaxSum != again[i].MaxSum ||
			points[i].Gap != again[i].Gap {
			t.Errorf("point %d not deterministic: %+v vs %+v", i, points[i], again[i])
		}
	}
}

func TestWriteSolverBenchJSON(t *testing.T) {
	in := []SolverBenchPoint{
		{Name: "greedy/v10_u50", NV: 10, NU: 50, NsPerOp: 1234.5, MaxSum: 42.25, Gap: 0.03},
	}
	var buf bytes.Buffer
	if err := WriteSolverBenchJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []SolverBenchPoint
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Fatalf("round trip: %+v", out)
	}
	for _, key := range []string{`"name"`, `"n_v"`, `"n_u"`, `"ns_per_op"`, `"maxsum"`, `"gap"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("missing %s in %s", key, buf.String())
		}
	}
}
