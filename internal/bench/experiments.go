package bench

import (
	"fmt"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/dataset"
)

// Experiment regenerates one figure (or figure column) of the paper.
type Experiment struct {
	ID     string // registry key, e.g. "fig3v"
	Title  string
	XLabel string
	Run    func(opt Options) ([]Point, error)
}

// compareAlgos are the four algorithms of Figs. 3 and 4.
var compareAlgos = []string{"greedy", "mincostflow", "random-v", "random-u"}

// Registry returns every experiment in presentation order: the paper's
// tables, the four figures, and this reproduction's ablations.
func Registry() []Experiment {
	return []Experiment{
		{
			ID:     "table1",
			Title:  "TABLE I: toy instance walkthroughs (exact 4.39, greedy 4.28, mincostflow 4.13)",
			XLabel: "instance",
			Run:    runTable1,
		},
		{
			ID:     "table2",
			Title:  "TABLE II: simulated Meetup cities (statistics + greedy solve)",
			XLabel: "city",
			Run:    runTable2,
		},
		{
			ID:     "fig3v",
			Title:  "Fig 3 col 1: effect of |V| (MaxSum, time, memory)",
			XLabel: "|V|",
			Run: func(opt Options) ([]Point, error) {
				return sweepSynthetic("fig3v", compareAlgos,
					[]float64{20, 50, 100, 200, 500},
					func(c *dataset.SyntheticConfig, x float64) { c.NumEvents = int(x) },
					opt, scaleEvents|scaleUsers)
			},
		},
		{
			ID:     "fig3u",
			Title:  "Fig 3 col 2: effect of |U|",
			XLabel: "|U|",
			Run: func(opt Options) ([]Point, error) {
				return sweepSynthetic("fig3u", compareAlgos,
					[]float64{100, 200, 500, 1000, 2000, 5000},
					func(c *dataset.SyntheticConfig, x float64) { c.NumUsers = int(x) },
					opt, scaleEvents|scaleUsers)
			},
		},
		{
			ID:     "fig3d",
			Title:  "Fig 3 col 3: effect of dimensionality d",
			XLabel: "d",
			Run: func(opt Options) ([]Point, error) {
				return sweepSynthetic("fig3d", compareAlgos,
					[]float64{2, 5, 10, 15, 20},
					func(c *dataset.SyntheticConfig, x float64) { c.Dim = int(x) },
					opt, scaleEvents|scaleUsers)
			},
		},
		{
			ID:     "fig3cf",
			Title:  "Fig 3 col 4: effect of conflict-set size |CF|",
			XLabel: "|CF| / (|V|(|V|-1)/2)",
			Run: func(opt Options) ([]Point, error) {
				return sweepSynthetic("fig3cf", compareAlgos,
					[]float64{0, 0.25, 0.5, 0.75, 1},
					func(c *dataset.SyntheticConfig, x float64) { c.CFRatio = x },
					opt, scaleEvents|scaleUsers)
			},
		},
		{
			ID:     "fig4cv",
			Title:  "Fig 4 col 1: effect of event capacity c_v ~ Uniform[1, max]",
			XLabel: "max c_v",
			Run: func(opt Options) ([]Point, error) {
				return sweepSynthetic("fig4cv", compareAlgos,
					[]float64{10, 20, 50, 100, 200},
					func(c *dataset.SyntheticConfig, x float64) { c.EventCapMax = int(x) },
					opt, scaleEvents|scaleUsers)
			},
		},
		{
			ID:     "fig4cu",
			Title:  "Fig 4 col 2: effect of user capacity c_u ~ Uniform[1, max]",
			XLabel: "max c_u",
			Run: func(opt Options) ([]Point, error) {
				return sweepSynthetic("fig4cu", compareAlgos,
					[]float64{2, 4, 6, 8, 10},
					func(c *dataset.SyntheticConfig, x float64) { c.UserCapMax = int(x) },
					opt, scaleEvents|scaleUsers)
			},
		},
		{
			ID:     "fig4dist",
			Title:  "Fig 4 col 3: Zipf attributes + Normal capacities (vary |V|)",
			XLabel: "|V|",
			Run: func(opt Options) ([]Point, error) {
				return sweepSynthetic("fig4dist", compareAlgos,
					[]float64{20, 50, 100, 200, 500},
					func(c *dataset.SyntheticConfig, x float64) {
						c.NumEvents = int(x)
						c.AttrDist = dataset.Zipf
						c.EventCapDist = dataset.Normal
						c.UserCapDist = dataset.Normal
					},
					opt, scaleEvents|scaleUsers)
			},
		},
		{
			ID:     "fig4real",
			Title:  "Fig 4 col 4: real dataset (Auckland), vary |CF|",
			XLabel: "|CF| / (|V|(|V|-1)/2)",
			Run:    runFig4Real,
		},
		{
			ID:     "fig5ab",
			Title:  "Fig 5a/5b: scalability of Greedy-GEACC",
			XLabel: "|U|",
			Run:    runFig5Scalability,
		},
		{
			ID:     "fig5cd",
			Title:  "Fig 5c/5d: approximate vs exact (MaxSum and time)",
			XLabel: "|CF| / (|V|(|V|-1)/2)",
			Run:    runFig5Effectiveness,
		},
		{
			ID:     "fig6a",
			Title:  "Fig 6a: averaged pruned depth of Prune-GEACC",
			XLabel: "|U|",
			Run:    runFig6PrunedDepth,
		},
		{
			ID:     "fig6bcd",
			Title:  "Fig 6b/6c/6d: Prune-GEACC vs exhaustive search",
			XLabel: "|CF| / (|V|(|V|-1)/2)",
			Run:    runFig6VsExhaustive,
		},
		{
			ID:     "ablation-index",
			Title:  "Ablation: Greedy-GEACC under each NN index (σ(S) choice)",
			XLabel: "index",
			Run:    runAblationIndex,
		},
		{
			ID:     "ablation-resolution",
			Title:  "Ablation: MinCostFlow-GEACC conflict resolution (greedy vs exact MWIS)",
			XLabel: "|CF| / (|V|(|V|-1)/2)",
			Run:    runAblationResolution,
		},
		{
			ID:     "decomp",
			Title:  "Decomposition: monolithic vs component-parallel solves on clustered instances",
			XLabel: "communities",
			Run:    runDecompSweep,
		},
	}
}

// Lookup resolves an experiment id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (valid: %v)", id, ids())
}

func ids() []string {
	out := make([]string, 0)
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

// scaleFlags say which cardinalities Options.Scale applies to.
type scaleFlags int

const (
	scaleEvents scaleFlags = 1 << iota
	scaleUsers
)

// sweepSynthetic runs the standard four-algorithm comparison over one swept
// parameter of the TABLE III generator.
func sweepSynthetic(id string, algos []string, xs []float64,
	mutate func(*dataset.SyntheticConfig, float64), opt Options, flags scaleFlags) ([]Point, error) {
	opt = opt.withDefaults()
	var points []Point
	for xi, x := range xs {
		perAlgo := make(map[string][]Point, len(algos))
		for r := 0; r < opt.Reps; r++ {
			cfg := dataset.DefaultSynthetic()
			mutate(&cfg, x)
			if flags&scaleEvents != 0 {
				cfg.NumEvents = opt.scaleCard(cfg.NumEvents, 2)
			}
			if flags&scaleUsers != 0 {
				cfg.NumUsers = opt.scaleCard(cfg.NumUsers, 2)
			}
			cfg.Seed = opt.Seed + int64(xi)*1009 + int64(r)*31
			in, err := cfg.Generate()
			if err != nil {
				return nil, fmt.Errorf("bench: %s x=%v: %w", id, x, err)
			}
			for _, algo := range algos {
				m, sec, bytes, err := MeasureAlgo(opt, in, algo, cfg.Seed+int64(len(algo)))
				if err != nil {
					return nil, fmt.Errorf("bench: %s x=%v algo=%s: %w", id, x, algo, err)
				}
				perAlgo[algo] = append(perAlgo[algo], Point{
					Experiment: id, X: x, Algo: algo,
					MaxSum: m.MaxSum(), Seconds: sec, Bytes: bytes,
				})
			}
		}
		for _, algo := range algos {
			points = append(points, average(perAlgo[algo]))
		}
	}
	return points, nil
}

// runFig4Real sweeps the conflict density on the simulated Auckland dataset
// with Uniform capacities, as in the last column of Fig. 4.
func runFig4Real(opt Options) ([]Point, error) {
	opt = opt.withDefaults()
	var points []Point
	for xi, ratio := range []float64{0, 0.25, 0.5, 0.75, 1} {
		perAlgo := make(map[string][]Point)
		for r := 0; r < opt.Reps; r++ {
			cfg := dataset.MeetupConfig{
				City:    "auckland",
				CapDist: dataset.Uniform,
				CFRatio: ratio,
				Seed:    opt.Seed + int64(xi)*1013 + int64(r)*37,
			}
			in, err := cfg.Generate()
			if err != nil {
				return nil, err
			}
			// Scale shrinks the city via truncation when requested.
			in = truncate(in, opt)
			for _, algo := range compareAlgos {
				m, sec, bytes, err := MeasureAlgo(opt, in, algo, cfg.Seed+int64(len(algo)))
				if err != nil {
					return nil, fmt.Errorf("bench: fig4real ratio=%v algo=%s: %w", ratio, algo, err)
				}
				perAlgo[algo] = append(perAlgo[algo], Point{
					Experiment: "fig4real", X: ratio, Algo: algo,
					MaxSum: m.MaxSum(), Seconds: sec, Bytes: bytes,
				})
			}
		}
		for _, algo := range compareAlgos {
			points = append(points, average(perAlgo[algo]))
		}
	}
	return points, nil
}

// truncate shrinks an instance to Scale of its events and users (used to
// run the fixed-size city datasets at reduced scale). The conflict graph is
// re-sampled over the surviving events at the original density.
func truncate(in *core.Instance, opt Options) *core.Instance {
	if opt.Scale >= 1 {
		return in
	}
	nv := opt.scaleCard(in.NumEvents(), 2)
	nu := opt.scaleCard(in.NumUsers(), 2)
	events := in.Events[:nv]
	users := in.Users[:nu]
	var pairs [][2]int
	if in.Conflicts != nil {
		for _, p := range in.Conflicts.Pairs() {
			if p[0] < nv && p[1] < nv {
				pairs = append(pairs, p)
			}
		}
	}
	conflicts := conflict.FromPairs(nv, pairs)
	if in.SimFunc != nil {
		// Rebuild through the constructor so the shrunk instance gets fresh
		// similarity kernels over the surviving vectors (a field copy would
		// carry the full-size kernels, which consumers would have to reject
		// as stale and fall back to the slow path).
		if rebuilt, err := core.NewInstance(events, users, conflicts, in.SimFunc); err == nil {
			return rebuilt
		}
	}
	shrunk := *in
	shrunk.Events = events
	shrunk.Users = users
	shrunk.Conflicts = conflicts
	return &shrunk
}
