package bench

import (
	"context"
	"testing"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/dataset"
	"github.com/ebsnlab/geacc/internal/decomp"
	"github.com/ebsnlab/geacc/internal/partition"
)

// bridgedInstance builds a small bridged-clustered instance: one giant
// similarity component, the approximate-sharding workload. The CI bench
// smoke (-benchtime=10x) runs these so a break in internal/partition shows
// up without waiting for the full snapshot job.
func bridgedInstance(tb testing.TB, nv, nu, communities int) *core.Instance {
	cfg := dataset.DefaultClustered()
	cfg.NumEvents = nv
	cfg.NumUsers = nu
	cfg.Communities = communities
	cfg.EventCapMax = 10
	cfg.UserCapMax = 4
	cfg.BridgeFrac = partitionBenchBridgeFrac
	cfg.Seed = int64(1000*nv + nu)
	in, err := cfg.Generate()
	if err != nil {
		tb.Fatal(err)
	}
	return in
}

func BenchmarkPartitionShardedClusteredV40U400C8(b *testing.B) {
	in := bridgedInstance(b, 40, 400, 8)
	sh := partition.Options{MaxArea: 2000, DriftBudget: 0.9}.Normalized()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _, err := decomp.SolveContext(context.Background(), "mincostflow", in, decomp.Options{Shard: &sh})
		if err != nil {
			b.Fatal(err)
		}
		if err := core.Validate(in, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionMonolithicClusteredV40U400C8(b *testing.B) {
	in := bridgedInstance(b, 40, 400, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := decomp.SolveContext(context.Background(), "mincostflow", in, decomp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionSplitBuildClusteredV40U400C8(b *testing.B) {
	in := bridgedInstance(b, 40, 400, 8)
	noop := func(ctx context.Context, sub *core.Instance, events, users []int, shard int) (*core.Matching, error) {
		return core.NewMatching(), nil
	}
	mono := func(ctx context.Context) (*core.Matching, error) {
		return core.NewMatching(), nil
	}
	// DriftBudget 1 never falls back, so this times split + merge + repair
	// bookkeeping with free shard solves.
	opt := partition.Options{MaxArea: 2000, DriftBudget: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := partition.SolveComponent(context.Background(), in, opt, noop, mono); err != nil {
			b.Fatal(err)
		}
	}
}
