package bench

import (
	"errors"
	"fmt"
	"time"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/dataset"
	"github.com/ebsnlab/geacc/internal/randx"
)

// runFig5Scalability reproduces Fig. 5a/5b: Greedy-GEACC only, |V| ∈
// {100, 200, 500, 1000} as separate series over |U| ∈ {10K..100K}, with
// max c_v raised to 200 as in the paper. Each point's Algo carries the
// series label ("greedy|V|=100").
func runFig5Scalability(opt Options) ([]Point, error) {
	opt = opt.withDefaults()
	var points []Point
	for vi, nv := range []int{100, 200, 500, 1000} {
		for ui, nu := range []int{10000, 25000, 50000, 75000, 100000} {
			var reps []Point
			for r := 0; r < opt.Reps; r++ {
				cfg := dataset.DefaultSynthetic()
				cfg.NumEvents = opt.scaleCard(nv, 2)
				cfg.NumUsers = opt.scaleCard(nu, 2)
				cfg.EventCapMax = 200
				cfg.Seed = opt.Seed + int64(vi)*101 + int64(ui)*1019 + int64(r)*41
				in, err := cfg.Generate()
				if err != nil {
					return nil, err
				}
				m, sec, bytes, err := Measure(in, core.Solvers()["greedy"], cfg.Seed+5)
				if err != nil {
					return nil, fmt.Errorf("bench: fig5ab |V|=%d |U|=%d: %w", nv, nu, err)
				}
				reps = append(reps, Point{
					Experiment: "fig5ab",
					X:          float64(cfg.NumUsers),
					Algo:       fmt.Sprintf("greedy|V|=%d", nv),
					MaxSum:     m.MaxSum(), Seconds: sec, Bytes: bytes,
				})
			}
			points = append(points, average(reps))
		}
	}
	return points, nil
}

// exactSearchBudget caps a single Prune-GEACC/exhaustive run inside the
// harness. The paper's exact algorithm is exponential and some sampled
// instances genuinely need >10⁹ recursion nodes (its own Fig. 5d reports
// ~10² s runs); a capped run returns the best matching found, and the point
// carries Extra["exact_capped"] = 1 so tables can flag it.
const exactSearchBudget = 200_000_000

// runFig5Effectiveness reproduces Fig. 5c/5d: MaxSum and running time of
// the approximations against Prune-GEACC's optimum on tiny instances
// (|V| = 5, |U| = 15, c_v ~ Uniform[1, 10]), sweeping the conflict density.
func runFig5Effectiveness(opt Options) ([]Point, error) {
	opt = opt.withDefaults()
	algos := []string{"greedy", "mincostflow", "exact"}
	var points []Point
	for xi, ratio := range []float64{0, 0.25, 0.5, 0.75, 1} {
		perAlgo := make(map[string][]Point)
		for r := 0; r < opt.Reps; r++ {
			cfg := dataset.DefaultSynthetic()
			cfg.NumEvents = 5
			cfg.NumUsers = opt.scaleCard(15, 5)
			cfg.EventCapMax = 10
			cfg.CFRatio = ratio
			cfg.Seed = opt.Seed + int64(xi)*1021 + int64(r)*43
			in, err := cfg.Generate()
			if err != nil {
				return nil, err
			}
			for _, algo := range algos {
				var p Point
				if algo == "exact" {
					p, err = measureExact(in, core.ExactOptions{NodeLimit: exactSearchBudget})
				} else {
					var m *core.Matching
					var sec, bytes float64
					m, sec, bytes, err = MeasureAlgo(opt, in, algo, cfg.Seed+int64(len(algo)))
					if err == nil {
						p = Point{MaxSum: m.MaxSum(), Seconds: sec, Bytes: bytes}
					}
				}
				if err != nil {
					return nil, fmt.Errorf("bench: fig5cd ratio=%v algo=%s: %w", ratio, algo, err)
				}
				p.Experiment, p.X, p.Algo = "fig5cd", ratio, algo
				perAlgo[algo] = append(perAlgo[algo], p)
			}
		}
		for _, algo := range algos {
			points = append(points, average(perAlgo[algo]))
		}
	}
	return points, nil
}

// measureExact times one exact run, surfacing search statistics and whether
// the node budget tripped.
func measureExact(in *core.Instance, exopt core.ExactOptions) (Point, error) {
	start := time.Now()
	m, stats, err := core.ExactOpts(in, exopt)
	sec := time.Since(start).Seconds()
	capped := 0.0
	if errors.Is(err, core.ErrNodeLimit) {
		capped = 1
	} else if err != nil {
		return Point{}, err
	}
	if err := core.Validate(in, m); err != nil {
		return Point{}, err
	}
	return Point{
		MaxSum: m.MaxSum(), Seconds: sec,
		Extra: map[string]float64{
			"invocations":       float64(stats.Invocations),
			"complete_searches": float64(stats.CompleteSearches),
			"exact_capped":      capped,
		},
	}, nil
}

// runFig6PrunedDepth reproduces Fig. 6a: the averaged recursion depth at
// which Prune-GEACC's bound fires, for |V| = 5 with |U| = 10 and |U| = 15
// (maximum depths 50 and 75, the paper's dashed lines).
func runFig6PrunedDepth(opt Options) ([]Point, error) {
	opt = opt.withDefaults()
	var points []Point
	for ui, nu := range []int{10, 15} {
		var reps []Point
		for r := 0; r < opt.Reps; r++ {
			in, err := fig6Instance(opt, nu, int64(ui)*1031+int64(r)*47)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			m, stats, err := core.ExactOpts(in, core.ExactOptions{NodeLimit: exactSearchBudget})
			if err != nil && !errors.Is(err, core.ErrNodeLimit) {
				return nil, err
			}
			sec := time.Since(start).Seconds()
			if err := core.Validate(in, m); err != nil {
				return nil, err
			}
			reps = append(reps, Point{
				Experiment: "fig6a",
				X:          float64(in.NumUsers()),
				Algo:       "prune",
				MaxSum:     m.MaxSum(),
				Seconds:    sec,
				Extra: map[string]float64{
					"avg_pruned_depth": stats.AvgPrunedDepth(),
					"max_depth":        float64(stats.MaxDepth),
					"prunes":           float64(stats.Prunes),
				},
			})
		}
		points = append(points, average(reps))
	}
	return points, nil
}

// runFig6VsExhaustive reproduces Fig. 6b/6c/6d: running time, number of
// complete searches, and number of Search invocations of Prune-GEACC versus
// exhaustive search without pruning (|V| = 5, |U| = 10, c_v ~ Uniform[1,10]),
// sweeping the conflict density.
func runFig6VsExhaustive(opt Options) ([]Point, error) {
	opt = opt.withDefaults()
	var points []Point
	for xi, ratio := range []float64{0, 0.25, 0.5, 0.75, 1} {
		perAlgo := make(map[string][]Point)
		for r := 0; r < opt.Reps; r++ {
			in, err := fig6Instance(opt, 10, int64(xi)*1033+int64(r)*53)
			if err != nil {
				return nil, err
			}
			in.Conflicts = resampleConflicts(in, ratio, opt.Seed+int64(xi)*59+int64(r))
			for algo, exopt := range map[string]core.ExactOptions{
				"prune":      {NodeLimit: exactSearchBudget},
				"exhaustive": {DisablePruning: true, DisableWarmStart: true, NodeLimit: exactSearchBudget},
			} {
				p, err := measureExact(in, exopt)
				if err != nil {
					return nil, fmt.Errorf("bench: fig6bcd ratio=%v algo=%s: %w", ratio, algo, err)
				}
				p.Experiment, p.X, p.Algo = "fig6bcd", ratio, algo
				perAlgo[algo] = append(perAlgo[algo], p)
			}
		}
		for _, algo := range []string{"prune", "exhaustive"} {
			points = append(points, average(perAlgo[algo]))
		}
	}
	return points, nil
}

// fig6Instance builds the small exact-search workload: |V| = 5, |U| = nu
// (scaled), c_v ~ Uniform[1, 10], other parameters at TABLE III defaults.
func fig6Instance(opt Options, nu int, seedOffset int64) (*core.Instance, error) {
	cfg := dataset.DefaultSynthetic()
	cfg.NumEvents = 5
	cfg.NumUsers = opt.scaleCard(nu, 4)
	cfg.EventCapMax = 10
	cfg.Seed = opt.Seed + seedOffset
	return cfg.Generate()
}

// resampleConflicts builds a fresh conflict graph of the requested density
// for the instance's events.
func resampleConflicts(in *core.Instance, ratio float64, seed int64) *conflict.Graph {
	return conflict.Random(randx.Source(seed), in.NumEvents(), ratio)
}
