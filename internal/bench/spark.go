package bench

import (
	"fmt"
	"math"
	"strings"
)

// sparkLevels are the eight block glyphs used for one-line charts.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line block chart, scaled to the series'
// own [min, max]. NaNs render as spaces; a constant series renders at the
// lowest level.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(values))
	}
	var b strings.Builder
	for _, v := range values {
		if math.IsNaN(v) {
			b.WriteByte(' ')
			continue
		}
		level := 0
		if hi > lo {
			level = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[level])
	}
	return b.String()
}

// RenderSparklines renders, for each metric, one sparkline per algorithm
// over the experiment's swept values — a compact textual rendition of the
// figure's curves, appended below the pivot tables by geacc-bench.
func RenderSparklines(xLabel string, points []Point, metrics []Metric) string {
	algos := algoOrder(points)
	xs := xOrder(points)
	if len(algos) == 0 || len(xs) < 2 {
		return ""
	}
	byKey := make(map[string]Point, len(points))
	for _, p := range points {
		byKey[key(p.X, p.Algo)] = p
	}
	width := 0
	for _, a := range algos {
		if len(a) > width {
			width = len(a)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "curves over %s ∈ %s\n", xLabel, formatXs(xs))
	for _, m := range metrics {
		fmt.Fprintf(&b, "  %s\n", m.Name)
		for _, a := range algos {
			series := make([]float64, len(xs))
			for i, x := range xs {
				if p, ok := byKey[key(x, a)]; ok {
					series[i] = m.Value(p)
				} else {
					series[i] = math.NaN()
				}
			}
			fmt.Fprintf(&b, "    %-*s  %s  (%.4g → %.4g)\n",
				width, a, Sparkline(series), first(series), last(series))
		}
	}
	return b.String()
}

func formatXs(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = formatX(x)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func first(xs []float64) float64 {
	for _, x := range xs {
		if !math.IsNaN(x) {
			return x
		}
	}
	return math.NaN()
}

func last(xs []float64) float64 {
	for i := len(xs) - 1; i >= 0; i-- {
		if !math.IsNaN(xs[i]) {
			return xs[i]
		}
	}
	return math.NaN()
}
