package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/dataset"
)

// runTable1 replays the paper's TABLE I walkthroughs: all algorithms on the
// toy instance. The expected MaxSums are 4.39 (exact), 4.28 (greedy), 4.13
// (min-cost flow); the harness errors if they drift, making the experiment
// double as an end-to-end acceptance check.
func runTable1(opt Options) ([]Point, error) {
	in, err := core.NewMatrixInstance(
		[]core.Event{{Cap: 5}, {Cap: 3}, {Cap: 2}},
		[]core.User{{Cap: 3}, {Cap: 1}, {Cap: 1}, {Cap: 2}, {Cap: 3}},
		conflict.FromPairs(3, [][2]int{{0, 2}}),
		[][]float64{
			{0.93, 0.43, 0.84, 0.64, 0.65},
			{0, 0.35, 0.19, 0.21, 0.4},
			{0.86, 0.57, 0.78, 0.79, 0.68},
		},
	)
	if err != nil {
		return nil, err
	}
	expect := map[string]float64{"exact": 4.39, "greedy": 4.28, "mincostflow": 4.13}
	var points []Point
	for _, algo := range []string{"exact", "greedy", "mincostflow", "random-v", "random-u"} {
		solve, err := core.LookupSolver(algo)
		if err != nil {
			return nil, err
		}
		m, sec, bytes, err := Measure(in, solve, opt.Seed)
		if err != nil {
			return nil, err
		}
		if want, fixed := expect[algo]; fixed && abs(m.MaxSum()-want) > 1e-9 {
			return nil, fmt.Errorf("bench: table1 %s MaxSum %v, paper says %v", algo, m.MaxSum(), want)
		}
		points = append(points, Point{
			Experiment: "table1", X: 1, Algo: algo,
			MaxSum: m.MaxSum(), Seconds: sec, Bytes: bytes,
		})
	}
	return points, nil
}

// runTable2 generates the three simulated Meetup cities and reports their
// statistics (the content of TABLE II) plus a greedy solve of each.
func runTable2(opt Options) ([]Point, error) {
	opt = opt.withDefaults()
	var points []Point
	for i, city := range dataset.Cities {
		cfg := dataset.MeetupConfig{
			City:    city.Name,
			CapDist: dataset.Uniform,
			CFRatio: 0.25,
			Seed:    opt.Seed,
		}
		in, err := cfg.Generate()
		if err != nil {
			return nil, err
		}
		in = truncate(in, opt)
		start := time.Now()
		m := core.Greedy(in)
		sec := time.Since(start).Seconds()
		if err := core.Validate(in, m); err != nil {
			return nil, err
		}
		points = append(points, Point{
			Experiment: "table2", X: float64(i), Algo: city.Name,
			MaxSum: m.MaxSum(), Seconds: sec,
			Extra: map[string]float64{
				"events":    float64(in.NumEvents()),
				"users":     float64(in.NumUsers()),
				"conflicts": float64(in.Conflicts.Edges()),
			},
		})
	}
	return points, nil
}

// runAblationIndex compares Greedy-GEACC under every NN index on the
// default synthetic instance — the σ(S) choice the paper leaves open.
func runAblationIndex(opt Options) ([]Point, error) {
	opt = opt.withDefaults()
	cfg := dataset.DefaultSynthetic()
	cfg.NumEvents = opt.scaleCard(cfg.NumEvents, 2)
	cfg.NumUsers = opt.scaleCard(cfg.NumUsers, 2)
	cfg.Seed = opt.Seed
	in, err := cfg.Generate()
	if err != nil {
		return nil, err
	}
	// Only the exact indexes run here (they must produce identical
	// matchings). IndexLSH is excluded: on TABLE III's 20-dimensional
	// uniform attributes, hash collisions are too rare for useful recall —
	// approximate NN is a low-dimensional tool (see TestGreedyWithLSH*).
	kinds := []core.IndexKind{
		core.IndexChunked, core.IndexSorted, core.IndexKDTree,
		core.IndexIDistance, core.IndexVAFile, core.IndexParallel,
	}
	var points []Point
	for _, kind := range kinds {
		kind := kind
		solve := core.Solver(func(in *core.Instance, _ *rand.Rand) *core.Matching {
			return core.GreedyOpts(in, core.GreedyOptions{Index: kind})
		})
		m, sec, bytes, err := Measure(in, solve, opt.Seed)
		if err != nil {
			return nil, err
		}
		points = append(points, Point{
			Experiment: "ablation-index", X: 1, Algo: kind.String(),
			MaxSum: m.MaxSum(), Seconds: sec, Bytes: bytes,
		})
	}
	return points, nil
}

// runAblationResolution compares MinCostFlow-GEACC's greedy conflict
// resolution (the paper's Algorithm 1) against the exact per-user MWIS
// extension, across conflict densities.
func runAblationResolution(opt Options) ([]Point, error) {
	opt = opt.withDefaults()
	var points []Point
	for xi, ratio := range []float64{0.25, 0.5, 0.75, 1} {
		cfg := dataset.DefaultSynthetic()
		cfg.NumEvents = opt.scaleCard(cfg.NumEvents, 2)
		cfg.NumUsers = opt.scaleCard(cfg.NumUsers, 2)
		cfg.CFRatio = ratio
		cfg.Seed = opt.Seed + int64(xi)*1051
		in, err := cfg.Generate()
		if err != nil {
			return nil, err
		}
		for _, mode := range []struct {
			name string
			opt  core.FlowOptions
		}{
			{"greedy-resolution", core.FlowOptions{}},
			{"mwis-resolution", core.FlowOptions{ExactResolution: true}},
		} {
			start := time.Now()
			res := core.MinCostFlowOpts(in, mode.opt)
			sec := time.Since(start).Seconds()
			if err := core.Validate(in, res.Matching); err != nil {
				return nil, err
			}
			points = append(points, Point{
				Experiment: "ablation-resolution", X: ratio, Algo: mode.name,
				MaxSum: res.Matching.MaxSum(), Seconds: sec,
				Extra: map[string]float64{"relaxed_bound": res.RelaxedMaxSum},
			})
		}
	}
	return points, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
