package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Metric names a Point column that RenderTables can pivot on.
type Metric struct {
	Name   string
	Value  func(Point) float64
	Format func(float64) string
}

// StandardMetrics are the three quantities every figure of the paper plots.
func StandardMetrics() []Metric {
	return []Metric{
		{Name: "MaxSum", Value: func(p Point) float64 { return p.MaxSum },
			Format: func(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }},
		{Name: "time (s)", Value: func(p Point) float64 { return p.Seconds },
			Format: func(v float64) string { return strconv.FormatFloat(v, 'g', 4, 64) }},
		{Name: "memory (MB)", Value: func(p Point) float64 { return p.Bytes / (1 << 20) },
			Format: func(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }},
	}
}

// ExtraMetrics builds metric columns from the Extra keys present in points.
func ExtraMetrics(points []Point) []Metric {
	keys := map[string]bool{}
	for _, p := range points {
		for k := range p.Extra {
			keys[k] = true
		}
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	metrics := make([]Metric, 0, len(names))
	for _, name := range names {
		name := name
		metrics = append(metrics, Metric{
			Name:   name,
			Value:  func(p Point) float64 { return p.Extra[name] },
			Format: func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) },
		})
	}
	return metrics
}

// RenderTables renders one pivot table (rows = x values, columns =
// algorithms) per metric — the textual equivalent of the figure's curves.
func RenderTables(title, xLabel string, points []Point, metrics []Metric) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", title)
	algos := algoOrder(points)
	xs := xOrder(points)
	byKey := make(map[string]Point, len(points))
	for _, p := range points {
		byKey[key(p.X, p.Algo)] = p
	}
	for _, m := range metrics {
		fmt.Fprintf(&b, "\n%s\n", m.Name)
		w := newTableWriter(&b)
		header := append([]string{xLabel}, algos...)
		w.row(header)
		for _, x := range xs {
			row := []string{formatX(x)}
			for _, a := range algos {
				p, ok := byKey[key(x, a)]
				if !ok {
					row = append(row, "-")
					continue
				}
				row = append(row, m.Format(m.Value(p)))
			}
			w.row(row)
		}
		w.flush()
	}
	return b.String()
}

// WriteCSV dumps points as one flat CSV: experiment, x, algo, the standard
// metrics, then any Extra keys (union over points, sorted).
func WriteCSV(w io.Writer, points []Point) error {
	extras := ExtraMetrics(points)
	cw := csv.NewWriter(w)
	header := []string{"experiment", "x", "algo", "max_sum", "seconds", "bytes"}
	for _, m := range extras {
		header = append(header, m.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			p.Experiment,
			strconv.FormatFloat(p.X, 'g', -1, 64),
			p.Algo,
			strconv.FormatFloat(p.MaxSum, 'g', -1, 64),
			strconv.FormatFloat(p.Seconds, 'g', -1, 64),
			strconv.FormatFloat(p.Bytes, 'g', -1, 64),
		}
		for _, m := range extras {
			rec = append(rec, strconv.FormatFloat(m.Value(p), 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// algoOrder returns the algorithms in first-appearance order.
func algoOrder(points []Point) []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range points {
		if !seen[p.Algo] {
			seen[p.Algo] = true
			out = append(out, p.Algo)
		}
	}
	return out
}

// xOrder returns the swept values in ascending order.
func xOrder(points []Point) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, p := range points {
		if !seen[p.X] {
			seen[p.X] = true
			out = append(out, p.X)
		}
	}
	sort.Float64s(out)
	return out
}

func key(x float64, algo string) string {
	return strconv.FormatFloat(x, 'g', -1, 64) + "|" + algo
}

func formatX(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// tableWriter renders aligned columns.
type tableWriter struct {
	out  *strings.Builder
	rows [][]string
}

func newTableWriter(out *strings.Builder) *tableWriter {
	return &tableWriter{out: out}
}

func (t *tableWriter) row(cells []string) {
	t.rows = append(t.rows, cells)
}

func (t *tableWriter) flush() {
	if len(t.rows) == 0 {
		return
	}
	widths := make([]int, 0)
	for _, r := range t.rows {
		for i, c := range r {
			if i == len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i > 0 {
				t.out.WriteString("  ")
			}
			fmt.Fprintf(t.out, "%-*s", widths[i], c)
		}
		t.out.WriteByte('\n')
	}
	t.rows = t.rows[:0]
}

// WriteJSON dumps points as a JSON array (one object per point, Extra keys
// inlined under "extra"), for downstream plotting tools.
func WriteJSON(w io.Writer, points []Point) error {
	type pointJSON struct {
		Experiment string             `json:"experiment"`
		X          float64            `json:"x"`
		Algo       string             `json:"algo"`
		MaxSum     float64            `json:"max_sum"`
		Seconds    float64            `json:"seconds"`
		Bytes      float64            `json:"bytes"`
		Extra      map[string]float64 `json:"extra,omitempty"`
	}
	docs := make([]pointJSON, len(points))
	for i, p := range points {
		docs[i] = pointJSON{
			Experiment: p.Experiment, X: p.X, Algo: p.Algo,
			MaxSum: p.MaxSum, Seconds: p.Seconds, Bytes: p.Bytes,
			Extra: p.Extra,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(docs)
}
