// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section V): parameter sweeps over the
// synthetic and simulated-Meetup workloads, metric collection (MaxSum,
// wall-clock time, allocated bytes), and text/CSV rendering of the series.
package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/decomp"
	"github.com/ebsnlab/geacc/internal/partition"
	"github.com/ebsnlab/geacc/internal/stats"
)

// Point is one measured sample: algorithm `Algo` at swept value `X` of an
// experiment.
type Point struct {
	Experiment string
	X          float64
	Algo       string
	MaxSum     float64
	Seconds    float64
	Bytes      float64 // allocated bytes during the solve
	// Extra carries experiment-specific metrics, e.g. Prune-GEACC's search
	// statistics for Fig. 6.
	Extra map[string]float64
}

// Options controls an experiment run.
type Options struct {
	// Scale shrinks workload cardinalities (0 < Scale <= 1; 1 = the paper's
	// sizes). Sweep values of non-cardinality parameters are unaffected.
	Scale float64
	// Reps averages each point over this many repetitions with derived
	// seeds (default 1).
	Reps int
	// Seed is the root seed; every instance and randomized solver derives
	// from it deterministically.
	Seed int64
	// LargeShapes includes the large pinned shapes (v50_u500, v100_u2000)
	// in RunSolverBench. Off by default so plain `go test` stays fast; the
	// geacc-bench CLI turns it on for snapshot generation, where the large
	// shapes are the ones that actually exercise the batched kernel path.
	LargeShapes bool
	// Decompose routes every experiment solve through internal/decomp:
	// shard along conflict/similarity components, solve in parallel, merge.
	// The pinned RunSolverBench set ignores this — it pins monolithic and
	// decomposed variants explicitly so the snapshot always compares both.
	Decompose bool
	// DecompWorkers bounds the component pool under Decompose; <= 0 means
	// GOMAXPROCS.
	DecompWorkers int
	// Shard, when non-nil, additionally routes oversized components through
	// internal/partition's approximate sharding (geacc-bench -approx-shard);
	// implies the decomposed path.
	Shard *partition.Options
}

// withDefaults normalizes an Options value.
func (o Options) withDefaults() Options {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	if o.Reps < 1 {
		o.Reps = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// scaleCard applies Scale to a cardinality, keeping at least min.
func (o Options) scaleCard(n, min int) int {
	s := int(float64(n) * o.Scale)
	if s < min {
		return min
	}
	return s
}

// Measure runs one solver on one instance, returning the matching together
// with its wall time and allocated bytes. The matching is validated; an
// infeasible result is a bug worth failing loudly over.
func Measure(in *core.Instance, solve core.Solver, seed int64) (*core.Matching, float64, float64, error) {
	return measureErr(in, func(in *core.Instance, rng *rand.Rand) (*core.Matching, error) {
		return solve(in, rng), nil
	}, seed)
}

// MeasureAlgo resolves a registry solver by name and measures it, routing
// the solve through the decomposition layer when opt.Decompose is set. The
// experiments call this so `geacc-bench -decompose` re-runs any sweep in
// decomposed form.
func MeasureAlgo(opt Options, in *core.Instance, algo string, seed int64) (*core.Matching, float64, float64, error) {
	if opt.Decompose || opt.Shard != nil {
		return measureErr(in, func(in *core.Instance, rng *rand.Rand) (*core.Matching, error) {
			m, _, err := decomp.SolveContext(context.Background(), algo, in,
				decomp.Options{Workers: opt.DecompWorkers, Seed: rng.Int63(), Shard: opt.Shard})
			return m, err
		}, seed)
	}
	solve, err := core.LookupSolver(algo)
	if err != nil {
		return nil, 0, 0, err
	}
	return Measure(in, solve, seed)
}

func measureErr(in *core.Instance, solve func(*core.Instance, *rand.Rand) (*core.Matching, error), seed int64) (*core.Matching, float64, float64, error) {
	rng := rand.New(rand.NewSource(seed))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	m, err := solve(in, rng)
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, 0, 0, err
	}
	if err := core.Validate(in, m); err != nil {
		return nil, 0, 0, fmt.Errorf("bench: infeasible matching: %w", err)
	}
	return m, elapsed, float64(after.TotalAlloc - before.TotalAlloc), nil
}

// average folds rep measurements into one Point. With more than one rep it
// also records the standard deviations of MaxSum and time as Extra columns,
// so multi-rep tables expose their spread.
func average(points []Point) Point {
	if len(points) == 0 {
		return Point{}
	}
	out := points[0]
	if len(points) == 1 {
		return out
	}
	var maxSum, seconds, bytes stats.Stream
	extras := map[string]*stats.Stream{}
	for _, p := range points {
		maxSum.Add(p.MaxSum)
		seconds.Add(p.Seconds)
		bytes.Add(p.Bytes)
		for k, v := range p.Extra {
			if extras[k] == nil {
				extras[k] = &stats.Stream{}
			}
			extras[k].Add(v)
		}
	}
	out.MaxSum = maxSum.Mean()
	out.Seconds = seconds.Mean()
	out.Bytes = bytes.Mean()
	out.Extra = map[string]float64{
		"maxsum_std":  maxSum.StdDev(),
		"seconds_std": seconds.StdDev(),
	}
	for k, s := range extras {
		out.Extra[k] = s.Mean()
	}
	return out
}
