package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// Request IDs correlate one HTTP request across every observability
// surface: the X-Request-ID response header, the slog request and domain
// log lines, the spans (and therefore Chrome trace events) the request
// emitted, and JSON error bodies. The server middleware assigns one per
// request (honoring a well-formed inbound X-Request-ID) and stores it on
// the context; everything downstream reads it with RequestIDFrom.

// reqidFallback numbers request IDs when the system entropy source fails —
// vanishingly rare, but an observability layer must not error out over it.
var reqidFallback atomic.Uint64

// NewRequestID returns a fresh 16-hex-character request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("fallback-%d", reqidFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether an inbound X-Request-ID is safe to adopt:
// 1–64 characters from [a-zA-Z0-9._-], so a hostile header cannot smuggle
// newlines into logs or unbounded values into response headers.
func ValidRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '.' || c == '_' || c == '-'
		if !ok {
			return false
		}
	}
	return true
}

type requestIDKey struct{}

// ContextWithRequestID attaches a request ID to ctx.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request ID attached to ctx, or "" when the
// work is not request-scoped (CLI runs, background snapshots).
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// StartSpan opens a span on the recorder attached to ctx (nil-safe, like
// Recorder.Start) and stamps it with the context's request ID when one is
// present — so any span started through this helper is correlatable with
// the request's log lines and response header, including after a Chrome
// trace export (the annotation becomes the trace event's args.request_id).
func StartSpan(ctx context.Context, name string) *Span {
	sp := RecorderFrom(ctx).Start(name)
	if id := RequestIDFrom(ctx); id != "" {
		sp.Annotate("request_id", id)
	}
	return sp
}
