package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock freezes a window at t; tests mutate the pointee to rotate.
func fixedClock(t *time.Time) func() time.Time {
	return func() time.Time { return *t }
}

// exactQuantile is the plain nearest-rank order statistic the window must
// reproduce while no bucket has overflowed.
func exactQuantile(sorted []float64, p float64) float64 {
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func TestWindowExactQuantilesUnderReservoir(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	w := NewWindow(15*time.Minute, 10*time.Second, 512)
	w.SetClock(fixedClock(&now))

	rng := rand.New(rand.NewSource(7))
	values := make([]float64, 400) // < reservoir: every value retained
	for i := range values {
		values[i] = rng.Float64() * 10
		w.Observe(values[i], i%10 == 0)
	}
	sort.Float64s(values)

	st := w.Stats(time.Minute)
	if st.Count != 400 || st.Errors != 40 {
		t.Fatalf("count/errors = %d/%d, want 400/40", st.Count, st.Errors)
	}
	if st.Sampled {
		t.Fatal("Sampled = true below the reservoir size")
	}
	for _, q := range []struct {
		p    float64
		got  float64
		name string
	}{{0.5, st.P50, "p50"}, {0.9, st.P90, "p90"}, {0.99, st.P99, "p99"}} {
		if want := exactQuantile(values, q.p); q.got != want {
			t.Errorf("%s = %v, want exact %v", q.name, q.got, want)
		}
	}
	if want := float64(400) / 60; math.Abs(st.RatePerSec-want) > 1e-12 {
		t.Errorf("rate = %v, want %v", st.RatePerSec, want)
	}
}

func TestWindowSampledQuantilesWithinError(t *testing.T) {
	now := time.Unix(2_000_000, 0)
	w := NewWindow(15*time.Minute, 10*time.Second, 512)
	w.SetClock(fixedClock(&now))

	rng := rand.New(rand.NewSource(11))
	const n = 20000
	values := make([]float64, n)
	for i := range values {
		values[i] = rng.Float64() // uniform [0,1): quantile value ≈ p
		w.Observe(values[i], false)
	}
	sort.Float64s(values)

	st := w.Stats(time.Minute)
	if !st.Sampled {
		t.Fatal("Sampled = false after overflowing the reservoir")
	}
	if st.Count != n {
		t.Fatalf("count = %d, want %d", st.Count, n)
	}
	// Documented bound: rank error ~sqrt(p(1-p)/m)·N. With m=512 that is
	// ≤ ~2.2% of N at p=0.5; allow 3 standard errors on the value scale
	// (values are uniform, so rank error ≈ value error).
	for _, q := range []struct {
		p    float64
		got  float64
		name string
	}{{0.5, st.P50, "p50"}, {0.9, st.P90, "p90"}, {0.99, st.P99, "p99"}} {
		want := exactQuantile(values, q.p)
		tol := 3 * math.Sqrt(q.p*(1-q.p)/512)
		if math.Abs(q.got-want) > tol {
			t.Errorf("%s = %v, want %v ± %v", q.name, q.got, want, tol)
		}
	}
}

func TestWindowBucketRotationMonotonicity(t *testing.T) {
	now := time.Unix(3_000_000, 0)
	w := NewWindow(15*time.Minute, 10*time.Second, 64)
	w.SetClock(fixedClock(&now))

	for i := 0; i < 30; i++ {
		w.Observe(1, false)
	}
	if got := w.Stats(time.Minute).Count; got != 30 {
		t.Fatalf("count = %d, want 30", got)
	}

	// As the clock advances bucket by bucket, the old observations age out
	// of the 1m horizon monotonically and are gone past 6 buckets.
	prev := int64(30)
	for step := 1; step <= 8; step++ {
		now = now.Add(10 * time.Second)
		got := w.Stats(time.Minute).Count
		if got > prev {
			t.Fatalf("step %d: count %d > previous %d (window grew while aging)", step, got, prev)
		}
		prev = got
	}
	if prev != 0 {
		t.Fatalf("count = %d after aging past the 1m horizon, want 0", prev)
	}
	// The 15m horizon still sees them.
	if got := w.Stats(15 * time.Minute).Count; got != 30 {
		t.Fatalf("15m count = %d, want 30", got)
	}
	// And once the ring wraps fully, the slots are reused clean.
	now = now.Add(20 * time.Minute)
	if got := w.Stats(15 * time.Minute).Count; got != 0 {
		t.Fatalf("15m count = %d after a full ring wrap, want 0", got)
	}
}

func TestWindowSpreadAcrossBuckets(t *testing.T) {
	now := time.Unix(4_000_000, 0)
	w := NewWindow(15*time.Minute, 10*time.Second, 512)
	w.SetClock(fixedClock(&now))

	// 5 observations in each of 6 consecutive buckets; the merged 1m view
	// must see all 30 and the exact quantiles of the union.
	var all []float64
	for b := 0; b < 6; b++ {
		for i := 0; i < 5; i++ {
			v := float64(b*5 + i)
			all = append(all, v)
			w.Observe(v, false)
		}
		if b < 5 {
			now = now.Add(10 * time.Second)
		}
	}
	sort.Float64s(all)
	st := w.Stats(time.Minute)
	if st.Count != 30 {
		t.Fatalf("count = %d, want 30", st.Count)
	}
	if want := exactQuantile(all, 0.9); st.P90 != want {
		t.Fatalf("p90 = %v, want %v", st.P90, want)
	}
}

func TestWindowEmptyStats(t *testing.T) {
	w := NewWindow(0, 0, 0) // defaults
	st := w.Stats(time.Minute)
	if st.Count != 0 || st.Samples != 0 || st.P99 != 0 || st.RatePerSec != 0 {
		t.Fatalf("empty window stats not zero: %+v", st)
	}
}

func TestWindowConcurrentObserve(t *testing.T) {
	w := NewWindow(time.Minute, time.Second, 128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				w.Observe(float64(i%100), i%7 == 0)
				if i%500 == 0 {
					_ = w.Stats(time.Minute)
				}
			}
		}(g)
	}
	wg.Wait()
	st := w.Stats(time.Minute)
	if st.Count != 8*2000 {
		t.Fatalf("count = %d, want %d", st.Count, 8*2000)
	}
}

func TestWritePrometheusWindows(t *testing.T) {
	now := time.Unix(5_000_000, 0)
	w := NewWindow(15*time.Minute, 10*time.Second, 512)
	w.SetClock(fixedClock(&now))
	for i := 1; i <= 100; i++ {
		w.Observe(float64(i)/100, i > 95) // p50=0.5, p90=0.9, p99=0.99; 5 errors
	}

	var b strings.Builder
	err := WritePrometheusWindows(&b, map[string]*Window{
		Label("geacc_http_window_seconds", "path", "/solve"): w,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE geacc_http_window_seconds gauge\n",
		`geacc_http_window_seconds{path="/solve",window="1m",quantile="0.5"} 0.5` + "\n",
		`geacc_http_window_seconds{path="/solve",window="1m",quantile="0.9"} 0.9` + "\n",
		`geacc_http_window_seconds{path="/solve",window="1m",quantile="0.99"} 0.99` + "\n",
		"# TYPE geacc_http_window_seconds_rate gauge\n",
		`geacc_http_window_seconds_rate{path="/solve",window="1m"} 1.6666666666666667` + "\n",
		"# TYPE geacc_http_window_seconds_error_rate gauge\n",
		`geacc_http_window_seconds_error_rate{path="/solve",window="15m"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	// Quantile lines must be omitted for horizons with no samples — here
	// every horizon has the same single bucket, so all three carry them;
	// an empty window renders rates only.
	var empty strings.Builder
	w2 := NewWindow(0, 0, 0)
	if err := WritePrometheusWindows(&empty, map[string]*Window{"geacc_empty_window": w2}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(empty.String(), "quantile") {
		t.Fatalf("empty window rendered quantile series:\n%s", empty.String())
	}
	if !strings.Contains(empty.String(), `geacc_empty_window_rate{window="1m"} 0`) {
		t.Fatalf("empty window missing rate series:\n%s", empty.String())
	}
}
