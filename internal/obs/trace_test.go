package obs

import (
	"context"
	"sync"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var rec *Recorder
	sp := rec.Start("anything")
	sp.Annotate("k", 1)
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
	if rec.Spans() != nil || rec.Dropped() != 0 {
		t.Fatal("nil recorder reported data")
	}
	rec.Reset()
}

func TestRecorderCollectsSpans(t *testing.T) {
	rec := NewRecorder()
	sp := rec.Start("solve/greedy").Annotate("events", 2).Annotate("users", 3)
	if d := sp.End(); d < 0 {
		t.Fatalf("duration = %v", d)
	}
	spans := rec.Spans()
	if len(spans) != 1 {
		t.Fatalf("%d spans", len(spans))
	}
	got := spans[0]
	if got.Name != "solve/greedy" || got.Start.IsZero() || got.Duration < 0 {
		t.Fatalf("span = %+v", got)
	}
	if len(got.Attrs) != 2 || got.Attrs[0].Key != "events" || got.Attrs[1].Value != 3 {
		t.Fatalf("attrs = %+v", got.Attrs)
	}
	// Double End is a no-op.
	if sp.End() != got.Duration {
		t.Fatal("second End changed the duration")
	}
	if len(rec.Spans()) != 1 {
		t.Fatal("second End recorded a second span")
	}
}

func TestRecorderLimit(t *testing.T) {
	rec := NewRecorderLimit(2)
	for i := 0; i < 5; i++ {
		rec.Start("s").End()
	}
	if got := len(rec.Spans()); got != 2 {
		t.Fatalf("%d spans retained, want 2", got)
	}
	if got := rec.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	rec.Reset()
	if len(rec.Spans()) != 0 || rec.Dropped() != 0 {
		t.Fatal("Reset did not clear the recorder")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorderLimit(100000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				rec.Start("s").Annotate("i", i).End()
			}
		}()
	}
	wg.Wait()
	if got := len(rec.Spans()); got != 4000 {
		t.Fatalf("%d spans, want 4000", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if RecorderFrom(context.Background()) != nil {
		t.Fatal("empty context returned a recorder")
	}
	rec := NewRecorder()
	ctx := ContextWithRecorder(context.Background(), rec)
	if RecorderFrom(ctx) != rec {
		t.Fatal("recorder did not round-trip through context")
	}
	RecorderFrom(context.Background()).Start("noop").End() // must not panic
}
