package obs

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultLatencyBuckets are the histogram bounds used for every latency
// metric in the repo: roughly logarithmic from 100µs to 60s, matching the
// spread between a greedy solve on a small instance and an exact search or
// large min-cost flow.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 30, 60,
}

// DefaultSizeBuckets are the histogram bounds for count-valued
// observations (decomposition component sizes, batch widths): roughly
// logarithmic from single nodes to the million-user instances the roadmap
// targets.
var DefaultSizeBuckets = []float64{
	1, 2, 5,
	10, 25, 50,
	100, 250, 500,
	1000, 2500, 5000,
	10000, 25000, 50000,
	100000, 250000, 1000000,
}

// Counter is a monotonically increasing metric. The zero value is ready to
// use; counters obtained from a Registry are shared by name.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must be non-negative (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("obs: negative counter increment %d", n))
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous int64 value that can move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative n decreases it).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an instantaneous float64 value. Unlike Gauge it can hold
// fractional quantities (ratios, gaps); the Prometheus renderer skips
// NaN/Inf values, so callers may Set whatever a computation produced.
type FloatGauge struct {
	v atomic.Uint64 // float64 bits
}

// Set replaces the value.
func (g *FloatGauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// Histogram buckets float64 observations under fixed upper bounds. An
// observation v lands in the first bucket whose bound satisfies v <= bound;
// values above every bound are counted only in the total. Construct through
// Registry.Histogram.
type Histogram struct {
	bounds  []float64      // sorted, strictly increasing upper bounds
	buckets []atomic.Int64 // len(bounds)+1; last = overflow
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, updated by CAS
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	b := append([]float64(nil), bounds...)
	for i := range b {
		if math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
			panic(fmt.Sprintf("obs: non-finite bucket bound %v", b[i]))
		}
		if i > 0 && b[i] <= b[i-1] {
			panic(fmt.Sprintf("obs: bucket bounds not strictly increasing at %v", b[i]))
		}
	}
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bucket is one cumulative histogram bucket: the number of observations
// less than or equal to the upper bound LE.
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a JSON-friendly point-in-time view of a Histogram.
// Buckets are cumulative over the finite bounds; observations above the
// last bound appear in Count but in no bucket (Count - Buckets[last].Count
// is the overflow).
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot returns the current cumulative view. Concurrent Observe calls
// may land between the per-bucket reads; each read is individually atomic.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{Buckets: make([]Bucket, len(h.bounds))}
	var cum int64
	for i, le := range h.bounds {
		cum += h.buckets[i].Load()
		snap.Buckets[i] = Bucket{LE: le, Count: cum}
	}
	snap.Count = h.count.Load()
	snap.Sum = h.Sum()
	return snap
}

// Registry is a named collection of instruments. Each kind lives in its own
// namespace: a counter and a gauge may share a name, though the repo's
// conventions (see docs/OBSERVABILITY.md) keep names globally unique.
type Registry struct {
	mu          sync.RWMutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	floatGauges map[string]*FloatGauge
	histograms  map[string]*Histogram
}

// NewRegistry returns an empty registry. Most callers want Default instead.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		floatGauges: make(map[string]*FloatGauge),
		histograms:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	r.mu.RLock()
	g, ok := r.floatGauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.floatGauges[name]; !ok {
		g = &FloatGauge{}
		r.floatGauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use. Later calls return the existing histogram regardless of
// bounds — the first registration wins.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot renders every instrument into plain JSON-marshalable maps, keyed
// by kind then name. This is what expvar serves for the "geacc" variable.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	floatGauges := make(map[string]float64, len(r.floatGauges))
	for name, g := range r.floatGauges {
		// NaN/Inf are not valid JSON; a float gauge holding one is omitted
		// here and by the Prometheus renderer alike.
		if v := g.Value(); !math.IsNaN(v) && !math.IsInf(v, 0) {
			floatGauges[name] = v
		}
	}
	histograms := make(map[string]HistogramSnapshot, len(r.histograms))
	for name, h := range r.histograms {
		histograms[name] = h.Snapshot()
	}
	return map[string]any{
		"counters":     counters,
		"gauges":       gauges,
		"float_gauges": floatGauges,
		"histograms":   histograms,
	}
}

// Counters returns a point-in-time copy of every counter value, keyed by
// the encoded series name. Diagnostics uses before/after copies to report
// how much solver work a single run performed.
func (r *Registry) Counters() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// DiffCounters returns after-before per series name, dropping zero deltas
// (and returning nil when nothing moved). Pair it with two Counters()
// calls to attribute work counts to one region of code.
func DiffCounters(before, after map[string]int64) map[string]int64 {
	deltas := make(map[string]int64)
	for name, v := range after {
		if d := v - before[name]; d != 0 {
			deltas[name] = d
		}
	}
	if len(deltas) == 0 {
		return nil
	}
	return deltas
}

// Label encodes label key/value pairs into a metric name,
// Prometheus-style: Label("m", "a", "x", "b", "y") -> `m{a=x,b=y}`. Pairs
// are kept in the given order; callers should always list labels in the
// same order so a series has exactly one name.
func Label(metric string, kv ...string) string {
	if len(kv) == 0 {
		return metric
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %v", kv))
	}
	var b strings.Builder
	b.WriteString(metric)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// std is the process-global registry, published as the expvar "geacc".
var std = NewRegistry()

// Default returns the process-global registry every geacc package records
// into. It is published under the expvar name "geacc" at package init, so
// any handler serving expvar (geacc-server's GET /debug/vars) exposes it.
func Default() *Registry { return std }

func init() {
	expvar.Publish("geacc", expvar.Func(func() any { return std.Snapshot() }))
}
