package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

func promLines(t *testing.T, r *Registry) []string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimRight(b.String(), "\n")
	if out == "" {
		return nil
	}
	return strings.Split(out, "\n")
}

func TestPrometheusCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(7)
	r.Counter(Label("solve_total", "algo", "greedy")).Add(2)
	r.Gauge("inflight").Set(3)
	r.FloatGauge(Label("gap", "algo", "greedy")).Set(0.125)

	got := strings.Join(promLines(t, r), "\n")
	for _, want := range []string{
		"# TYPE requests_total counter",
		"requests_total 7",
		"# TYPE solve_total counter",
		`solve_total{algo="greedy"} 2`,
		"# TYPE inflight gauge",
		"inflight 3",
		"# TYPE gap gauge",
		`gap{algo="greedy"} 0.125`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestPrometheusNameSanitization(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird-name.total").Inc()
	r.Counter("0leading").Inc()
	r.Counter(Label("m", "label-key", "v")).Inc()

	got := strings.Join(promLines(t, r), "\n")
	for _, want := range []string{
		"weird_name_total 1",
		"_leading 1",
		`m{label_key="v"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "weird-name") || strings.Contains(got, "label-key") {
		t.Errorf("unsanitized name survived:\n%s", got)
	}
}

func TestPrometheusLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("m", "path", `C:\dir`)).Inc()
	got := strings.Join(promLines(t, r), "\n")
	if !strings.Contains(got, `m{path="C:\\dir"} 1`) {
		t.Errorf("backslash not escaped:\n%s", got)
	}
}

func TestPrometheusNonFiniteFloatGaugesSkipped(t *testing.T) {
	r := NewRegistry()
	r.FloatGauge("bad_nan").Set(math.NaN())
	r.FloatGauge("bad_inf").Set(math.Inf(1))
	r.FloatGauge("good").Set(1.5)

	got := strings.Join(promLines(t, r), "\n")
	if strings.Contains(got, "bad_nan") || strings.Contains(got, "bad_inf") {
		t.Errorf("non-finite gauge rendered:\n%s", got)
	}
	if !strings.Contains(got, "good 1.5") {
		t.Errorf("finite gauge missing:\n%s", got)
	}

	// Snapshot (the expvar surface) must also drop them: NaN is not JSON.
	snap := r.Snapshot()["float_gauges"].(map[string]float64)
	if _, ok := snap["bad_nan"]; ok {
		t.Error("NaN gauge leaked into the expvar snapshot")
	}
	if snap["good"] != 1.5 {
		t.Errorf("snapshot good = %v", snap["good"])
	}
}

func TestPrometheusHistogramExpansion(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Label("latency_seconds", "algo", "greedy"), []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99) // above every finite bound: only +Inf sees it

	got := promLines(t, r)
	joined := strings.Join(got, "\n")
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{algo="greedy",le="0.1"} 1`,
		`latency_seconds_bucket{algo="greedy",le="1"} 2`,
		`latency_seconds_bucket{algo="greedy",le="+Inf"} 3`,
		`latency_seconds_sum{algo="greedy"} 99.55`,
		`latency_seconds_count{algo="greedy"} 3`,
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("output missing %q:\n%s", want, joined)
		}
	}

	// The +Inf bucket must equal _count even with overflow observations.
	var inf, count int64 = -1, -2
	for _, line := range got {
		if strings.HasPrefix(line, `latency_seconds_bucket{algo="greedy",le="+Inf"}`) {
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &inf)
		}
		if strings.HasPrefix(line, `latency_seconds_count{algo="greedy"}`) {
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &count)
		}
	}
	if inf != count {
		t.Errorf("+Inf bucket %d != count %d", inf, count)
	}
}

func TestPrometheusDeterministicOrdering(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Insert in scrambled order; map iteration would scramble further.
		r.Counter(Label("zzz_total", "algo", "b")).Inc()
		r.Counter(Label("zzz_total", "algo", "a")).Inc()
		r.Counter("aaa_total").Inc()
		r.Gauge("mmm").Set(1)
		r.Histogram("hhh", []float64{1}).Observe(0.5)
		return r
	}
	first := strings.Join(promLines(t, build()), "\n")
	for i := 0; i < 5; i++ {
		if again := strings.Join(promLines(t, build()), "\n"); again != first {
			t.Fatalf("output not deterministic:\n%s\n--- vs ---\n%s", first, again)
		}
	}
	// Families in sorted order, series sorted within a family.
	iA := strings.Index(first, "# TYPE aaa_total")
	iH := strings.Index(first, "# TYPE hhh")
	iM := strings.Index(first, "# TYPE mmm")
	iZ := strings.Index(first, "# TYPE zzz_total")
	if !(iA >= 0 && iA < iH && iH < iM && iM < iZ) {
		t.Errorf("families out of order:\n%s", first)
	}
	if a, b := strings.Index(first, `algo="a"`), strings.Index(first, `algo="b"`); a > b {
		t.Errorf("series out of order:\n%s", first)
	}
}

func TestPrometheusParseableValues(t *testing.T) {
	// Every sample line must end in a value strconv can parse back.
	r := NewRegistry()
	r.Counter(Label("geacc_solve_total", "algo", "greedy")).Add(3)
	r.FloatGauge("ratio").Set(0.625)
	r.Histogram("seconds", DefaultLatencyBuckets).Observe(0.2)
	for _, line := range promLines(t, r) {
		if strings.HasPrefix(line, "#") {
			continue
		}
		field := line[strings.LastIndexByte(line, ' ')+1:]
		if _, err := strconv.ParseFloat(field, 64); err != nil {
			t.Errorf("unparseable value %q in line %q", field, line)
		}
	}
}
