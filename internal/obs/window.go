package obs

import (
	"sort"
	"sync"
	"time"
)

// Rolling-window defaults: 10-second buckets spanning a touch over 15
// minutes, so the standard 1m/5m/15m SLO windows are always fully covered,
// with up to 512 retained samples per bucket. At those settings one window
// costs at most ~372 KiB of float64 samples, fully allocation-bounded.
const (
	DefaultWindowBucket    = 10 * time.Second
	DefaultWindowSpan      = 15 * time.Minute
	DefaultWindowReservoir = 512
)

// StandardWindows are the rolling horizons every SLO surface reports:
// /statusz, the Prometheus window rendering, and the docs all use exactly
// these three.
var StandardWindows = []struct {
	Name string
	Dur  time.Duration
}{
	{"1m", time.Minute},
	{"5m", 5 * time.Minute},
	{"15m", 15 * time.Minute},
}

// Window is a rolling latency/error recorder: a ring of fixed-duration
// buckets, each holding exact counts (requests, errors, sum) plus a
// fixed-size uniform reservoir of observed values. Stats merges the buckets
// inside a horizon into request/error rates and p50/p90/p99 latency
// quantiles, so a server can answer "what was p99 over the last minute?"
// without an external scraper doing histogram math.
//
// Accuracy: while every bucket has seen no more observations than its
// reservoir holds, all values are retained and quantiles are exact
// (nearest-rank over the merged window). Once a bucket overflows, new
// values replace retained ones uniformly at random (reservoir sampling);
// merged quantiles weight each bucket's samples by its true observation
// count, and the p-quantile's rank error is ~sqrt(p(1-p)/m)·N for m merged
// samples over N observations — under 2% of N at the default 512-sample
// reservoir. Memory never grows past buckets × reservoir values.
//
// All methods are safe for concurrent use.
type Window struct {
	mu        sync.Mutex
	bucket    time.Duration
	reservoir int
	slots     []windowSlot
	rng       uint64
	now       func() time.Time
}

// windowSlot is one time bucket of the ring. epoch is the absolute bucket
// index (unix nanos / bucket duration); a slot is reused in place once the
// ring wraps past its epoch.
type windowSlot struct {
	epoch   int64
	count   int64
	errors  int64
	sum     float64
	samples []float64
}

// NewWindow returns a rolling window covering span with buckets of the
// given duration, retaining up to reservoir samples per bucket. Zero (or
// negative) arguments take the package defaults; span is rounded up to a
// whole number of buckets, plus one so the oldest horizon stays fully
// covered while the current bucket is only partially filled.
func NewWindow(span, bucket time.Duration, reservoir int) *Window {
	if bucket <= 0 {
		bucket = DefaultWindowBucket
	}
	if span <= 0 {
		span = DefaultWindowSpan
	}
	if reservoir <= 0 {
		reservoir = DefaultWindowReservoir
	}
	n := int((span + bucket - 1) / bucket)
	if n < 1 {
		n = 1
	}
	return &Window{
		bucket:    bucket,
		reservoir: reservoir,
		slots:     make([]windowSlot, n+1),
		rng:       0x9e3779b97f4a7c15, // fixed xorshift seed: reproducible sampling
		now:       time.Now,
	}
}

// SetClock replaces the window's time source — a test hook for driving
// bucket rotation deterministically.
func (w *Window) SetClock(now func() time.Time) {
	w.mu.Lock()
	w.now = now
	w.mu.Unlock()
}

func (w *Window) epoch(t time.Time) int64 {
	return t.UnixNano() / int64(w.bucket)
}

// slot returns the ring slot for epoch e, resetting it in place when the
// ring has wrapped since e's bucket was last live. Callers hold w.mu.
func (w *Window) slot(e int64) *windowSlot {
	s := &w.slots[int(e%int64(len(w.slots)))]
	if s.epoch != e {
		s.epoch = e
		s.count = 0
		s.errors = 0
		s.sum = 0
		s.samples = s.samples[:0]
	}
	return s
}

// Observe records one observation (a latency in seconds, by convention)
// into the current bucket; isErr additionally counts it toward the error
// rate.
func (w *Window) Observe(v float64, isErr bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.slot(w.epoch(w.now()))
	s.count++
	if isErr {
		s.errors++
	}
	s.sum += v
	if len(s.samples) < w.reservoir {
		s.samples = append(s.samples, v)
		return
	}
	// Reservoir replacement: after this observation the bucket has seen
	// count values; keeping each with probability reservoir/count keeps the
	// retained set a uniform sample.
	w.rng ^= w.rng << 13
	w.rng ^= w.rng >> 7
	w.rng ^= w.rng << 17
	if j := w.rng % uint64(s.count); j < uint64(w.reservoir) {
		s.samples[j] = v
	}
}

// WindowStats is one horizon's merged view. Quantiles are zero when the
// window holds no samples (Samples == 0); Sampled reports whether any
// merged bucket overflowed its reservoir, i.e. whether the quantiles are
// estimates rather than exact order statistics.
type WindowStats struct {
	Window      string  `json:"window"`
	Count       int64   `json:"count"`
	Errors      int64   `json:"errors"`
	RatePerSec  float64 `json:"rate_per_sec"`
	ErrorPerSec float64 `json:"error_rate_per_sec"`
	MeanSeconds float64 `json:"mean_seconds"`
	P50         float64 `json:"p50_seconds"`
	P90         float64 `json:"p90_seconds"`
	P99         float64 `json:"p99_seconds"`
	Samples     int     `json:"samples"`
	Sampled     bool    `json:"sampled,omitempty"`
}

// weightedSample is one retained value standing for weight observations of
// its bucket.
type weightedSample struct {
	v      float64
	weight float64
}

// Stats merges every bucket inside the trailing horizon d (rounded down to
// whole buckets, minimum one — the current, possibly partial, bucket) into
// one summary. Rates divide by the full horizon, so a half-filled current
// bucket reads as a lower rate, never a spike.
func (w *Window) Stats(d time.Duration) WindowStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := int64(d / w.bucket)
	if n < 1 {
		n = 1
	}
	if n > int64(len(w.slots)) {
		n = int64(len(w.slots))
	}
	cur := w.epoch(w.now())
	st := WindowStats{Window: d.String()}
	var sum float64
	var merged []weightedSample
	for i := range w.slots {
		s := &w.slots[i]
		if s.epoch <= cur-n || s.epoch > cur || s.count == 0 {
			continue
		}
		st.Count += s.count
		st.Errors += s.errors
		sum += s.sum
		if int(s.count) > len(s.samples) {
			st.Sampled = true
		}
		// Each retained sample stands for count/len(samples) observations,
		// so low- and high-traffic buckets merge without bias.
		wt := float64(s.count) / float64(len(s.samples))
		for _, v := range s.samples {
			merged = append(merged, weightedSample{v, wt})
		}
	}
	st.Samples = len(merged)
	horizon := (time.Duration(n) * w.bucket).Seconds()
	if horizon > 0 {
		st.RatePerSec = float64(st.Count) / horizon
		st.ErrorPerSec = float64(st.Errors) / horizon
	}
	if st.Count > 0 {
		st.MeanSeconds = sum / float64(st.Count)
	}
	if len(merged) == 0 {
		return st
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].v < merged[j].v })
	var total float64
	for _, m := range merged {
		total += m.weight
	}
	st.P50 = weightedQuantile(merged, total, 0.50)
	st.P90 = weightedQuantile(merged, total, 0.90)
	st.P99 = weightedQuantile(merged, total, 0.99)
	return st
}

// weightedQuantile is nearest-rank over weighted, ascending samples: the
// smallest value whose cumulative weight reaches p of the total. With all
// weights 1 this is the classic nearest-rank order statistic.
func weightedQuantile(sorted []weightedSample, total, p float64) float64 {
	target := p * total
	var cum float64
	for _, m := range sorted {
		cum += m.weight
		if cum >= target {
			return m.v
		}
	}
	return sorted[len(sorted)-1].v
}
