// Package obs is the repo's zero-dependency observability layer: a
// process-global metrics registry published through the standard library's
// expvar, plus a lightweight Span/Recorder tracing API the solvers emit
// into. Everything here is built on the standard library only — no
// Prometheus client, no OpenTelemetry — so the solver packages stay
// dependency-free while still exposing a production telemetry surface.
//
// # Metrics
//
// Three instrument kinds cover the solver and server workloads:
//
//   - Counter: a monotonically increasing int64 (events, iterations, hits).
//   - Gauge: an int64 that can move both ways (in-flight requests).
//   - Histogram: observations bucketed under fixed upper bounds, plus the
//     total count and sum — enough to derive rates, averages, and
//     approximate quantiles. DefaultLatencyBuckets spans 100µs..60s, the
//     range solver latencies actually occupy (greedy in microseconds,
//     min-cost flow and exact search up to minutes).
//
// Instruments are get-or-create by name via a Registry: the first call
// registers, later calls return the same instrument, so packages can
// declare metrics as package-level vars without init-order coordination.
// Labels are encoded into the metric name with Label, Prometheus-style:
//
//	obs.Default().Counter(obs.Label("geacc_solve_total", "algo", "greedy"))
//	// -> geacc_solve_total{algo=greedy}
//
// The process-global registry (Default) is published once, at package
// init, as the expvar variable "geacc"; any server that installs
// expvar.Handler — geacc-server does, at GET /debug/vars — therefore
// serves every metric in this catalog as JSON with no further wiring.
// docs/OBSERVABILITY.md is the operator-facing catalog of every metric
// the repo exports.
//
// All instruments are safe for concurrent use: counters and gauges are
// single atomics, histograms use one atomic per bucket and a CAS loop for
// the float64 sum, and the registry itself takes an RWMutex only on the
// get-or-create path (callers are expected to look instruments up once
// and hold the pointer on hot paths).
//
// # Tracing
//
// Recorder collects Spans: named wall-clock intervals with optional
// key/value annotations. The API is nil-safe end to end —
//
//	sp := obs.RecorderFrom(ctx).Start("solve/greedy")
//	defer sp.End()
//	sp.Annotate("events", nv)
//
// costs nothing but a few nil checks when no recorder is attached, so
// instrumentation points never need to guard themselves. Attach a
// recorder to a context with ContextWithRecorder; core.SolveContext picks
// it up and emits one span per solve with the instance shape and outcome
// annotated. Recorders cap retained spans (DefaultSpanLimit) and count
// what they drop, so a long-lived recorder cannot grow without bound.
package obs
