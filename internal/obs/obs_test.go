package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	new(Counter).Add(-1)
}

func TestGauge(t *testing.T) {
	g := NewRegistry().Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewRegistry().Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	if got := snap.Sum; math.Abs(got-106) > 1e-9 {
		t.Fatalf("sum = %v, want 106", got)
	}
	// Cumulative: <=1 holds {0.5, 1}, <=2 adds {1.5}, <=4 adds {3};
	// 100 overflows every bound.
	want := []int64{2, 3, 4}
	for i, b := range snap.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket le=%v count = %d, want %d", b.LE, b.Count, want[i])
		}
	}
	if overflow := snap.Count - snap.Buckets[len(snap.Buckets)-1].Count; overflow != 1 {
		t.Fatalf("overflow = %d, want 1", overflow)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewRegistry().Histogram("h", DefaultLatencyBuckets)
	const workers, per = 16, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w%4) * 0.001)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	// 16 workers: 4 observe each of 0, 0.001, 0.002, 0.003.
	wantSum := float64(4*per) * (0 + 0.001 + 0.002 + 0.003)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {1, 1}, {2, 1}, {math.Inf(1)}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bounds %v did not panic", bounds)
				}
			}()
			NewRegistry().Histogram("h", bounds)
		}()
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("x") != reg.Counter("x") {
		t.Fatal("same name returned distinct counters")
	}
	if reg.Gauge("x") != reg.Gauge("x") {
		t.Fatal("same name returned distinct gauges")
	}
	h := reg.Histogram("x", []float64{1})
	if reg.Histogram("x", []float64{9, 10}) != h {
		t.Fatal("second registration replaced the histogram")
	}
}

func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				reg.Counter("shared").Inc()
				reg.Histogram("lat", DefaultLatencyBuckets).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != 16000 {
		t.Fatalf("counter = %d, want 16000", got)
	}
	if got := reg.Histogram("lat", DefaultLatencyBuckets).Count(); got != 16000 {
		t.Fatalf("histogram count = %d, want 16000", got)
	}
}

func TestSnapshotMarshalsToJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Label("solve_total", "algo", "greedy")).Add(3)
	reg.Gauge("inflight").Set(2)
	reg.Histogram("lat", []float64{0.1, 1}).Observe(0.05)
	raw, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64             `json:"counters"`
		Gauges     map[string]int64             `json:"gauges"`
		Histograms map[string]HistogramSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("snapshot is not round-trippable JSON: %v", err)
	}
	if doc.Counters["solve_total{algo=greedy}"] != 3 {
		t.Fatalf("counters = %v", doc.Counters)
	}
	if doc.Gauges["inflight"] != 2 {
		t.Fatalf("gauges = %v", doc.Gauges)
	}
	if h := doc.Histograms["lat"]; h.Count != 1 || len(h.Buckets) != 2 {
		t.Fatalf("histograms = %v", doc.Histograms)
	}
}

func TestLabel(t *testing.T) {
	if got := Label("m"); got != "m" {
		t.Fatalf("Label(m) = %q", got)
	}
	if got := Label("m", "a", "x", "b", "y"); got != "m{a=x,b=y}" {
		t.Fatalf("Label = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list did not panic")
		}
	}()
	Label("m", "a")
}

func TestDefaultRegistryIsShared(t *testing.T) {
	Default().Counter("obs_test_shared").Inc()
	if Default().Counter("obs_test_shared").Value() < 1 {
		t.Fatal("default registry did not retain the counter")
	}
}
