package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4) — the wire format every Prometheus-compatible
// scraper understands — without importing any client library.
//
// Series names produced by Label ("m{a=x,b=y}") are decoded back into a
// metric family plus label pairs. Family and label names are sanitized to
// the Prometheus grammar (invalid runes become '_'), label values are
// escaped per the spec, float gauges holding NaN/±Inf are skipped, and
// histograms are expanded into `_bucket` (cumulative, ending in the
// mandatory `le="+Inf"` bucket equal to `_count`), `_sum`, and `_count`.
// Output is deterministic: families sort by name, series by label string.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	type series struct {
		labels string // rendered {k="v",...} or ""
		lines  []string
	}
	type family struct {
		typ    string // counter | gauge | histogram
		series []series
	}
	families := make(map[string]*family)
	add := func(name, typ string, render func(fam, labels string) []string) {
		base, labels := splitSeries(name)
		fam := families[base]
		if fam == nil {
			fam = &family{typ: typ}
			families[base] = fam
		}
		fam.series = append(fam.series, series{labels: labels, lines: render(base, labels)})
	}

	for name, c := range r.counters {
		v := c.Value()
		add(name, "counter", func(fam, labels string) []string {
			return []string{fmt.Sprintf("%s%s %d", fam, labels, v)}
		})
	}
	for name, g := range r.gauges {
		v := g.Value()
		add(name, "gauge", func(fam, labels string) []string {
			return []string{fmt.Sprintf("%s%s %d", fam, labels, v)}
		})
	}
	for name, g := range r.floatGauges {
		v := g.Value()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		add(name, "gauge", func(fam, labels string) []string {
			return []string{fmt.Sprintf("%s%s %s", fam, labels, formatFloat(v))}
		})
	}
	for name, h := range r.histograms {
		snap := h.Snapshot()
		add(name, "histogram", func(fam, labels string) []string {
			lines := make([]string, 0, len(snap.Buckets)+3)
			for _, b := range snap.Buckets {
				lines = append(lines, fmt.Sprintf("%s_bucket%s %d",
					fam, withLabel(labels, "le", formatFloat(b.LE)), b.Count))
			}
			// The +Inf bucket is cumulative over everything, including
			// observations above the last finite bound: always == _count.
			lines = append(lines,
				fmt.Sprintf("%s_bucket%s %d", fam, withLabel(labels, "le", "+Inf"), snap.Count),
				fmt.Sprintf("%s_sum%s %s", fam, labels, formatFloat(snap.Sum)),
				fmt.Sprintf("%s_count%s %d", fam, labels, snap.Count))
			return lines
		})
	}
	r.mu.RUnlock()

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fam := families[name]
		sort.Slice(fam.series, func(i, j int) bool {
			return fam.series[i].labels < fam.series[j].labels
		})
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, fam.typ); err != nil {
			return err
		}
		for _, s := range fam.series {
			for _, line := range s.lines {
				if _, err := fmt.Fprintln(w, line); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// splitSeries decodes a Label-encoded series name into the sanitized family
// name and a rendered, escaped label block ("" when unlabeled).
func splitSeries(name string) (base, labels string) {
	open := strings.IndexByte(name, '{')
	if open < 0 || !strings.HasSuffix(name, "}") {
		return sanitizeMetricName(name), ""
	}
	base = sanitizeMetricName(name[:open])
	body := name[open+1 : len(name)-1]
	if body == "" {
		return base, ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, pair := range strings.Split(body, ",") {
		if i > 0 {
			b.WriteByte(',')
		}
		k, v, found := strings.Cut(pair, "=")
		if !found {
			v = ""
		}
		b.WriteString(sanitizeLabelName(k))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return base, b.String()
}

// withLabel appends one more label pair to an already-rendered label block.
func withLabel(labels, key, value string) string {
	extra := sanitizeLabelName(key) + `="` + escapeLabelValue(value) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// sanitizeMetricName maps a string onto the metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*; invalid runes become '_'.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if ok {
			if b != nil {
				b = append(b, c)
			}
			continue
		}
		if b == nil {
			b = append([]byte(nil), name[:i]...)
		}
		b = append(b, '_')
	}
	if b == nil {
		return name
	}
	return string(b)
}

// sanitizeLabelName maps a string onto the label-name grammar
// [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelName(name string) string {
	s := sanitizeMetricName(name)
	return strings.ReplaceAll(s, ":", "_")
}

// escapeLabelValue escapes backslash, double quote, and newline as the
// exposition format requires.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// WritePrometheusWindows renders rolling windows (see Window) into the
// Prometheus text exposition format. Keys are Label-encoded series names
// exactly as Registry instruments use them; every window is expanded over
// the StandardWindows horizons into three gauge families:
//
//	<name>{<labels>,window="1m",quantile="0.5"} p50   (also 0.9, 0.99)
//	<name>_rate{<labels>,window="1m"} requests/sec
//	<name>_error_rate{<labels>,window="1m"} errors/sec
//
// Quantile series are omitted while a horizon holds no samples (a gauge
// reporting "no data" as 0 would read as a zero-latency SLO); rate series
// are always present. Output is deterministic: families sort by name,
// series by label string, matching WritePrometheus.
func WritePrometheusWindows(w io.Writer, windows map[string]*Window) error {
	type family struct {
		lines []string
	}
	families := make(map[string]*family)
	add := func(fam, line string) {
		f := families[fam]
		if f == nil {
			f = &family{}
			families[fam] = f
		}
		f.lines = append(f.lines, line)
	}
	names := make([]string, 0, len(windows))
	for name := range windows {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, labels := splitSeries(name)
		for _, horizon := range StandardWindows {
			st := windows[name].Stats(horizon.Dur)
			wl := withLabel(labels, "window", horizon.Name)
			if st.Samples > 0 {
				for _, q := range []struct {
					label string
					v     float64
				}{{"0.5", st.P50}, {"0.9", st.P90}, {"0.99", st.P99}} {
					add(base, fmt.Sprintf("%s%s %s",
						base, withLabel(wl, "quantile", q.label), formatFloat(q.v)))
				}
			}
			add(base+"_rate", fmt.Sprintf("%s_rate%s %s", base, wl, formatFloat(st.RatePerSec)))
			add(base+"_error_rate", fmt.Sprintf("%s_error_rate%s %s", base, wl, formatFloat(st.ErrorPerSec)))
		}
	}
	fams := make([]string, 0, len(families))
	for name := range families {
		fams = append(fams, name)
	}
	sort.Strings(fams)
	for _, name := range fams {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
			return err
		}
		sort.Strings(families[name].lines)
		for _, line := range families[name].lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
