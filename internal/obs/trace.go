package obs

import (
	"context"
	"sync"
	"time"
)

// DefaultSpanLimit bounds the spans a Recorder retains; once reached,
// further Start calls return nil spans and are counted as dropped.
const DefaultSpanLimit = 4096

// Attr is one span annotation.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanData is a finished span: a named wall-clock interval plus its
// annotations, in the order they were added.
type SpanData struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Recorder collects spans emitted by instrumented code. The zero value is
// not usable; construct with NewRecorder. All methods are safe for
// concurrent use and nil-safe: a nil *Recorder accepts Start calls and
// returns nil spans, so instrumentation points never need a guard.
type Recorder struct {
	mu      sync.Mutex
	spans   []SpanData
	limit   int
	dropped int64
}

// NewRecorder returns an empty recorder retaining up to DefaultSpanLimit
// spans.
func NewRecorder() *Recorder { return NewRecorderLimit(DefaultSpanLimit) }

// NewRecorderLimit returns an empty recorder retaining up to limit spans;
// limit <= 0 means DefaultSpanLimit.
func NewRecorderLimit(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &Recorder{limit: limit}
}

// Start opens a span. End on the returned span records it. On a nil
// recorder, or once the span limit is reached, Start returns nil — which
// every Span method tolerates.
func (r *Recorder) Start(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	full := len(r.spans) >= r.limit
	if full {
		r.dropped++
	}
	r.mu.Unlock()
	if full {
		return nil
	}
	return &Span{r: r, data: SpanData{Name: name, Start: time.Now()}}
}

// Spans returns a copy of the finished spans in completion order.
func (r *Recorder) Spans() []SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanData(nil), r.spans...)
}

// Dropped returns how many spans were discarded at the limit.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset discards all recorded spans and the dropped count.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = r.spans[:0]
	r.dropped = 0
	r.mu.Unlock()
}

// Span is an in-flight trace interval. A Span is owned by the goroutine
// that started it; Annotate and End are not synchronized against each
// other. All methods are nil-safe no-ops.
type Span struct {
	r     *Recorder
	data  SpanData
	ended bool
}

// Annotate attaches a key/value pair and returns the span for chaining.
func (s *Span) Annotate(key string, value any) *Span {
	if s == nil || s.ended {
		return s
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Value: value})
	return s
}

// End closes the span, records it, and returns its duration. Calling End
// again (or on a nil span) is a no-op returning the recorded duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	if s.ended {
		return s.data.Duration
	}
	s.ended = true
	s.data.Duration = time.Since(s.data.Start)
	s.r.mu.Lock()
	if len(s.r.spans) < s.r.limit {
		s.r.spans = append(s.r.spans, s.data)
	} else {
		s.r.dropped++
	}
	s.r.mu.Unlock()
	return s.data.Duration
}

type recorderKey struct{}

// ContextWithRecorder attaches rec to ctx; instrumented code downstream
// (core.SolveContext and friends) retrieves it with RecorderFrom and emits
// spans into it.
func ContextWithRecorder(ctx context.Context, rec *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey{}, rec)
}

// RecorderFrom returns the recorder attached to ctx, or nil — which is
// safe to Start spans on — when none is attached.
func RecorderFrom(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	rec, _ := ctx.Value(recorderKey{}).(*Recorder)
	return rec
}
