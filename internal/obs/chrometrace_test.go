package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// decodeTrace round-trips the export through encoding/json, which is the
// validity bar Perfetto's loader applies before interpreting events.
func decodeTrace(t *testing.T, buf *bytes.Buffer) (events []map[string]any, doc map[string]any) {
	t.Helper()
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	raw, ok := doc["traceEvents"].([]any)
	if !ok {
		t.Fatalf("traceEvents missing or wrong type: %v", doc["traceEvents"])
	}
	for _, e := range raw {
		events = append(events, e.(map[string]any))
	}
	return events, doc
}

func TestChromeTraceExport(t *testing.T) {
	rec := NewRecorder()
	outer := rec.Start("solve/greedy").Annotate("events", 2).Annotate("users", 3)
	inner := rec.Start("greedy/scan")
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events, doc := decodeTrace(t, &buf)
	if doc["displayTimeUnit"] != "ms" {
		t.Errorf("displayTimeUnit = %v", doc["displayTimeUnit"])
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	byName := map[string]map[string]any{}
	for _, e := range events {
		byName[e["name"].(string)] = e
		if e["ph"] != "X" {
			t.Errorf("event %v phase = %v, want X", e["name"], e["ph"])
		}
		for _, k := range []string{"ts", "dur", "pid", "tid"} {
			if _, ok := e[k].(float64); !ok {
				t.Errorf("event %v field %s missing or non-numeric: %v", e["name"], k, e[k])
			}
		}
		if e["ts"].(float64) < 0 {
			t.Errorf("negative ts %v", e["ts"])
		}
	}
	solve, scan := byName["solve/greedy"], byName["greedy/scan"]
	if solve == nil || scan == nil {
		t.Fatalf("missing spans: %v", byName)
	}
	// The outer span started first: after rebasing its ts is the origin.
	if solve["ts"].(float64) != 0 {
		t.Errorf("outer span ts = %v, want 0", solve["ts"])
	}
	if scan["dur"].(float64) < 1000 { // slept 1ms = 1000µs
		t.Errorf("inner span dur = %vµs, want >= 1000", scan["dur"])
	}
	args := solve["args"].(map[string]any)
	if args["events"].(float64) != 2 || args["users"].(float64) != 3 {
		t.Errorf("args = %v", args)
	}
}

func TestChromeTraceEmptyAndNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	events, _ := decodeTrace(t, &buf)
	if len(events) != 0 {
		t.Fatalf("events = %v, want empty", events)
	}

	buf.Reset()
	var rec *Recorder // nil recorder must still export a valid empty trace
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	decodeTrace(t, &buf)
}

func TestLoggerConstruction(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hello", "k", 1)
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("log line not JSON: %v (%q)", err, buf.String())
	}
	if doc["msg"] != "hello" || doc["k"].(float64) != 1 {
		t.Errorf("log line = %v", doc)
	}

	buf.Reset()
	log, err = NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("dropped")
	log.Warn("kept")
	if s := buf.String(); !bytes.Contains([]byte(s), []byte("kept")) || bytes.Contains([]byte(s), []byte("dropped")) {
		t.Errorf("level filter broken: %q", s)
	}

	if _, err := NewLogger(&buf, "nope", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "yaml"); err == nil {
		t.Error("bad format accepted")
	}
}
