package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// chromeEvent is one entry of the Trace Event Format's traceEvents array —
// the JSON schema chrome://tracing and Perfetto load natively. Only the
// "X" (complete) phase is emitted: one event per finished span, with
// timestamps and durations in microseconds as the format requires.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // µs since the trace origin
	Dur  float64        `json:"dur"` // µs
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object flavor of the format (the array flavor is
// also legal, but the object one carries metadata like displayTimeUnit).
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace renders finished spans as Chrome trace-event JSON, ready
// for Perfetto (ui.perfetto.dev) or chrome://tracing. Timestamps are
// rebased onto the earliest span start so traces start at t=0; span
// annotations become the event's args. A nil/empty span list yields a
// valid trace with an empty traceEvents array.
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	return WriteChromeTraceMeta(w, spans, nil)
}

// WriteChromeTraceMeta is WriteChromeTrace with trace-level metadata: the
// given pairs land in the document's otherData block (Perfetto shows them
// in the trace info panel). The server uses it to stamp an exported trace
// with the request ID that produced it.
func WriteChromeTraceMeta(w io.Writer, spans []SpanData, other map[string]string) error {
	doc := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(spans)),
		DisplayTimeUnit: "ms",
		OtherData:       other,
	}
	var origin time.Time
	for _, sp := range spans {
		if origin.IsZero() || sp.Start.Before(origin) {
			origin = sp.Start
		}
	}
	for _, sp := range spans {
		ev := chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Ts:   float64(sp.Start.Sub(origin)) / float64(time.Microsecond),
			Dur:  float64(sp.Duration) / float64(time.Microsecond),
			Pid:  1,
			Tid:  1,
		}
		if len(sp.Attrs) > 0 {
			ev.Args = make(map[string]any, len(sp.Attrs))
			for _, a := range sp.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteChromeTrace exports the recorder's finished spans; see the package
// function. A nil recorder writes an empty (still valid) trace.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if err := WriteChromeTrace(w, r.Spans()); err != nil {
		return fmt.Errorf("obs: chrome trace export: %w", err)
	}
	return nil
}
