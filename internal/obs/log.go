package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the structured logger every geacc binary shares, from
// the two flag values the CLIs expose: -log-level (debug, info, warn,
// error) and -log-format (text or json; json is one object per line,
// ingestible by any log pipeline). Unknown values are an error so a typo'd
// flag fails fast instead of silently logging at the wrong level.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text or json)", format)
	}
}

// MustLogger returns a plain text/Info logger. It cannot fail, so the
// CLIs use it to report errors building the flag-configured logger itself.
func MustLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, nil))
}

// ParseLevel maps a -log-level flag value onto a slog level.
func ParseLevel(level string) (slog.Level, error) {
	switch strings.ToLower(level) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", level)
	}
}
