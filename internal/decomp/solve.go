package decomp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/obs"
	"github.com/ebsnlab/geacc/internal/partition"
	"github.com/ebsnlab/geacc/internal/solvecache"
)

// Decomposition-layer observability. decomp_components_total counts
// components actually dispatched to a solver (stranded singletons never
// reach the pool); the size histogram observes |V|+|U| per component. The
// catalog entry lives in docs/OBSERVABILITY.md.
var (
	decompRuns          = obs.Default().Counter("geacc_decomp_runs_total")
	decompComponents    = obs.Default().Counter("geacc_decomp_components_total")
	decompComponentSize = obs.Default().Histogram("geacc_decomp_component_size", obs.DefaultSizeBuckets)
	decompBuildSeconds  = obs.Default().Histogram("geacc_decomp_build_seconds", obs.DefaultLatencyBuckets)
)

// Options tunes a decomposed solve.
type Options struct {
	// Workers bounds the component worker pool; <= 0 means GOMAXPROCS(0).
	// The pool never exceeds the component count. The merged matching is
	// invariant to this value.
	Workers int
	// Seed drives the random baselines. Each component derives its own
	// deterministic seed from Seed and its component index, so results do
	// not depend on scheduling.
	Seed int64
	// ExactNodeLimit bounds Prune-GEACC's search per component; 0 means
	// unlimited. When any component trips the limit, the merged matching is
	// still feasible (each tripped component contributes its best-so-far)
	// and core.ErrNodeLimit is returned alongside it.
	ExactNodeLimit int64
	// SolveCache, when non-nil, memoizes per-component matchings keyed by
	// sub-instance content (see internal/solvecache). A hit skips the
	// component solve entirely and returns a clone of the cached matching —
	// bit-identical to a fresh solve by the cache's key contract.
	SolveCache *solvecache.Cache
	// SimID is the canonical similarity identity of the parent instance
	// (e.g. "euclidean/4/100"), required for SolveCache keying of
	// non-matrix instances; "" makes those components uncacheable.
	SimID string
	// WarmCache, when non-nil, enables warm-started min-cost flow for
	// mincostflow components: the previous solve of the same component
	// (keyed by its smallest parent event id) seeds flow and potentials so
	// a small delta re-solve skips most augmentations. Results stay
	// bit-exact vs the cold path.
	WarmCache *core.WarmCache
	// Shard, when non-nil, routes components whose |V|·|U| exceeds
	// Shard.MaxArea through internal/partition: the component is split
	// into balanced sub-shards, each solved through the ordinary
	// per-component machinery above (cache, warm flow, node limits), then
	// merged with a bounded-drift boundary repair. Components at or below
	// the threshold — and every component when Shard is nil — solve
	// exactly as before, bit-identically.
	Shard *partition.Options
}

// solveComponentFn is the per-component dispatch; tests swap it to inject
// faults and observe scheduling.
var solveComponentFn = solveComponent

// deterministicAlgos ignore their seed entirely, so their cache keys can
// drop it: an unchanged component then hits even when a delta elsewhere
// shifted its component index (and thus its derived seed).
var deterministicAlgos = map[string]bool{"greedy": true, "mincostflow": true, "exact": true}

// solveComponent runs one registry solver on one shard, consulting the
// optional per-instance solve cache and warm-flow cache from opt.
// Everything except cache hits, the warm mincostflow path, and the
// node-limited exact path goes through core.SolveContext, so the usual
// per-algorithm solve metrics and solve/<algo> spans fire once per
// component.
func solveComponent(ctx context.Context, algo string, c Component, compIdx int, opt Options) (*core.Matching, error) {
	var key solvecache.Key
	cacheable := false
	if opt.SolveCache != nil {
		keySeed := int64(0)
		if !deterministicAlgos[algo] {
			keySeed = componentSeed(opt.Seed, compIdx)
		}
		key, cacheable = solvecache.InstanceKey(c.Sub, solvecache.KeySpec{
			Algo:      algo,
			Seed:      keySeed,
			SimID:     opt.SimID,
			NodeLimit: opt.ExactNodeLimit,
		})
		if cacheable {
			if v, ok := opt.SolveCache.Get(key); ok {
				return v.(*core.Matching).Clone(), nil
			}
		}
	}
	var m *core.Matching
	var err error
	switch {
	case algo == "exact" && opt.ExactNodeLimit > 0:
		m, _, err = core.ExactOpts(c.Sub, core.ExactOptions{Ctx: ctx, NodeLimit: opt.ExactNodeLimit})
	case algo == "mincostflow" && opt.WarmCache != nil:
		m, err = core.MinCostFlowWarmCtx(ctx, c.Sub, c.Events, c.Users, opt.WarmCache)
	default:
		m, err = core.SolveContext(ctx, algo, c.Sub, componentRNG(opt.Seed, compIdx))
	}
	if err == nil && cacheable && m != nil {
		opt.SolveCache.Put(key, m.Clone())
	}
	return m, err
}

// shardSolve routes one oversized component through internal/partition.
// Each sub-shard becomes an ordinary Component (events/users mapped back to
// parent indices) solved by solveComponentFn, so the solve cache, the
// warm-started min-cost flow (keyed by the shard's smallest parent event
// id), and the node-limited exact path all compose inside shards. The
// monolithic fallback is the exact call the unsharded path would have made.
func (d *Decomposition) shardSolve(ctx context.Context, algo string, c Component, compIdx int, opt Options) (*core.Matching, error) {
	popt := opt.Shard.Normalized()
	if popt.Workers == 0 {
		popt.Workers = opt.Workers
	}
	solve := func(ctx context.Context, sub *core.Instance, events, users []int, shard int) (*core.Matching, error) {
		sc := Component{
			Events: mapParent(c.Events, events),
			Users:  mapParent(c.Users, users),
			Sub:    sub,
		}
		// Synthetic per-shard index: gives each shard of each component a
		// distinct deterministic seed stream for the random baselines
		// (deterministic solvers ignore it, and cache keys hash the shard
		// content, so rare index collisions across components are benign).
		return solveComponentFn(ctx, algo, sc, compIdx*4096+shard+1, opt)
	}
	mono := func(ctx context.Context) (*core.Matching, error) {
		return solveComponentFn(ctx, algo, c, compIdx, opt)
	}
	m, pst, err := partition.SolveComponent(ctx, c.Sub, popt, solve, mono)
	if pst != nil && pst.Shards > 1 {
		d.recordPartition(pst, popt)
	}
	return m, err
}

// mapParent lifts component-local shard indices to parent indices.
func mapParent(parent, local []int) []int {
	out := make([]int, len(local))
	for i, x := range local {
		out[i] = parent[x]
	}
	return out
}

func (d *Decomposition) recordPartition(st *partition.Stats, popt partition.Options) {
	d.partMu.Lock()
	defer d.partMu.Unlock()
	if d.partStats == nil {
		d.partStats = &core.PartitionStats{
			DriftBudget: popt.DriftBudget,
			MaxArea:     popt.MaxArea,
			Strategy:    string(popt.Strategy),
		}
	}
	agg := d.partStats
	agg.Runs++
	agg.Shards += st.Shards
	if st.FellBack {
		agg.Fallbacks++
	}
	agg.CutPairs += st.CutPairs
	agg.CutConflicts += st.CutConflicts
	agg.RepairMoves += st.RepairMoves
	agg.RepairGain += st.RepairGain
	if !st.FellBack && st.DriftEstimate > agg.MaxDriftEstimate {
		agg.MaxDriftEstimate = st.DriftEstimate
	}
}

// componentSeed derives the deterministic per-component seed: a fixed odd
// multiplier spreads consecutive root seeds apart so component streams from
// different runs do not overlap trivially.
func componentSeed(seed int64, i int) int64 {
	return seed*0x9E3779B1 + int64(i)
}

func componentRNG(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(componentSeed(seed, i)))
}

func normalizeWorkers(workers, components int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if components > 0 && workers > components {
		workers = components
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// SolveContext decomposes in and solves it with the named registry solver:
// the one-call form of DecomposeContext + Decomposition.SolveContext,
// returning the component stats alongside the merged matching.
func SolveContext(ctx context.Context, algo string, in *core.Instance, opt Options) (*core.Matching, *core.DecompositionStats, error) {
	d, err := DecomposeContext(ctx, in)
	if err != nil {
		return nil, nil, err
	}
	m, err := d.SolveContext(ctx, algo, opt)
	if err != nil && !errors.Is(err, core.ErrNodeLimit) {
		return nil, nil, err
	}
	return m, d.Stats(opt.Workers), err
}

// SolveContext runs the named registry solver over every component in a
// bounded worker pool and merges the per-component matchings into one
// parent-indexed matching.
//
// Determinism: components are numbered by first appearance, per-component
// seeds derive from that number, and results are merged in component order
// after all workers finish — so the matching (including its pair order and
// float-summed MaxSum) is identical for any worker count.
//
// Cancellation: ctx is polled before each dispatch and inside every solver
// (each component solve runs under ctx); the first cancellation or solver
// error aborts the run and returns that error with a nil matching.
// core.ErrNodeLimit is the one non-fatal error: tripped components keep
// their best-so-far matching and the error is returned with the merge.
func (d *Decomposition) SolveContext(ctx context.Context, algo string, opt Options) (*core.Matching, error) {
	n := len(d.Components)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	results, budgetErr, err := d.solveSet(ctx, algo, ids, opt)
	if err != nil {
		return nil, err
	}
	// Merge in component order: sub indices map back through the
	// component's parent-index slices. Similarities are bit-identical to
	// the parent's, so the merged matching validates against it.
	merged := core.NewMatching()
	for i, c := range d.Components {
		if results[i] == nil {
			continue
		}
		for _, p := range results[i].Pairs() {
			merged.Add(c.Events[p.V], c.Users[p.U], p.Sim)
		}
	}
	return merged, budgetErr
}

// SolveSubset runs the named registry solver over just the components named
// by ids (global component indices, as returned by DirtyComponents) and
// returns one sub-instance matching per solved component, keyed by
// component id. Seeds derive from the global component index, so a subset
// solve of component i is bit-identical to that component's share of a full
// SolveContext run. This is the incremental path: a delta that touched one
// component re-solves one component, not the instance.
func (d *Decomposition) SolveSubset(ctx context.Context, algo string, ids []int, opt Options) (map[int]*core.Matching, error) {
	for _, id := range ids {
		if id < 0 || id >= len(d.Components) {
			return nil, fmt.Errorf("decomp: component id %d out of range [0, %d)", id, len(d.Components))
		}
	}
	results, budgetErr, err := d.solveSet(ctx, algo, ids, opt)
	if err != nil {
		return nil, err
	}
	out := make(map[int]*core.Matching, len(ids))
	for id, m := range results {
		if m != nil {
			out[id] = m
		}
	}
	return out, budgetErr
}

// solveSet is the shared worker pool under SolveContext and SolveSubset: it
// dispatches the components named by ids and returns their matchings keyed
// by component id. Fatal errors return a nil map; core.ErrNodeLimit is
// non-fatal and returned alongside the results.
func (d *Decomposition) solveSet(ctx context.Context, algo string, ids []int, opt Options) (map[int]*core.Matching, error, error) {
	if _, err := core.LookupSolver(algo); err != nil {
		return nil, nil, err
	}
	decompRuns.Inc()
	d.partMu.Lock()
	d.partStats = nil // fresh aggregate per solve run
	d.partMu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	n := len(ids)
	if n == 0 {
		return map[int]*core.Matching{}, nil, nil
	}
	workers := normalizeWorkers(opt.Workers, n)
	rec := obs.RecorderFrom(ctx)
	sp := rec.Start("decomp/solve").
		Annotate("algo", algo).
		Annotate("components", n).
		Annotate("workers", workers)

	results := make([]*core.Matching, n)
	errs := make([]error, n)
	var failed atomic.Bool
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				// After a fatal error (or cancellation) the remaining
				// components drain without solving; their errs stay nil and
				// the first fatal error, by dispatch order, is reported.
				if failed.Load() {
					continue
				}
				if err := ctx.Err(); err != nil {
					errs[j] = err
					failed.Store(true)
					continue
				}
				i := ids[j]
				c := d.Components[i]
				csp := rec.Start("decomp/component").
					Annotate("component", i).
					Annotate("events", len(c.Events)).
					Annotate("users", len(c.Users))
				var m *core.Matching
				var err error
				if sh := opt.Shard; sh != nil &&
					int64(len(c.Events))*int64(len(c.Users)) > sh.Normalized().MaxArea {
					m, err = d.shardSolve(ctx, algo, c, i, opt)
				} else {
					m, err = solveComponentFn(ctx, algo, c, i, opt)
				}
				decompComponents.Inc()
				decompComponentSize.Observe(float64(len(c.Events) + len(c.Users)))
				results[j], errs[j] = m, err
				if err != nil && !errors.Is(err, core.ErrNodeLimit) {
					failed.Store(true)
					csp.Annotate("error", err.Error()).End()
					continue
				}
				csp.Annotate("pairs", m.Size()).End()
			}
		}()
	}
	for j := 0; j < n; j++ {
		jobs <- j
	}
	close(jobs)
	wg.Wait()

	var budgetErr error
	for j, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, core.ErrNodeLimit):
			budgetErr = err
		default:
			sp.Annotate("error", err.Error()).End()
			return nil, nil, errs[j]
		}
	}
	byID := make(map[int]*core.Matching, n)
	var pairs int
	for j, id := range ids {
		if results[j] != nil {
			byID[id] = results[j]
			pairs += results[j].Size()
		}
	}
	sp.Annotate("pairs", pairs).End()
	return byID, budgetErr, nil
}
