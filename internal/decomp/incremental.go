package decomp

import (
	"context"
	"sort"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/obs"
)

// Incremental-rebalance observability: the dirty-component histogram feeds
// the "how local are deltas really?" dashboard panel the service docs
// describe. Catalog entries live in docs/OBSERVABILITY.md.
var (
	rebalanceDirtyComponents = obs.Default().Histogram("geacc_rebalance_dirty_components", obs.DefaultSizeBuckets)
	rebalanceGain            = obs.Default().FloatGauge("geacc_rebalance_last_gain")
)

// DirtyComponents maps parent node ids back to the components containing
// them: the ids of every component holding any of the given parent event or
// user indices, ascending and deduplicated. Nodes outside every component
// (stranded events/users, out-of-range ids) are ignored — they cannot
// appear in any feasible matching, so no component needs re-solving on
// their account.
func (d *Decomposition) DirtyComponents(events, users []int) []int {
	nv, nu := d.Parent.NumEvents(), d.Parent.NumUsers()
	compOfEvent := make(map[int]int)
	compOfUser := make(map[int]int)
	for i, c := range d.Components {
		for _, v := range c.Events {
			compOfEvent[v] = i
		}
		for _, u := range c.Users {
			compOfUser[u] = i
		}
	}
	dirty := make(map[int]bool)
	for _, v := range events {
		if v < 0 || v >= nv {
			continue
		}
		if i, ok := compOfEvent[v]; ok {
			dirty[i] = true
		}
	}
	for _, u := range users {
		if u < 0 || u >= nu {
			continue
		}
		if i, ok := compOfUser[u]; ok {
			dirty[i] = true
		}
	}
	ids := make([]int, 0, len(dirty))
	for i := range dirty {
		ids = append(ids, i)
	}
	sort.Ints(ids)
	return ids
}

// RebalanceResult reports one scoped arranger rebalance.
type RebalanceResult struct {
	// Gain is the MaxSum improvement actually adopted (0 when every
	// re-solved component was already at least as good incrementally).
	Gain float64 `json:"gain"`
	// ComponentsSolved is how many decomposition components were
	// re-solved; ComponentsTotal is how many the snapshot decomposes into.
	ComponentsSolved int `json:"components_solved"`
	ComponentsTotal  int `json:"components_total"`
	// Adopted reports whether the arranger's matching was replaced.
	Adopted bool `json:"adopted"`
	// Partition aggregates the approximate-sharding activity of this
	// rebalance (nil unless Options.Shard routed a dirty giant component
	// through internal/partition).
	Partition *core.PartitionStats `json:"partition,omitempty"`
}

// RebalanceScoped re-solves only the decomposition components touched by
// the given dirty parent node ids and adopts each component's fresh
// matching when it beats the component's share of the current arrangement.
// Passing full re-solves every component (the classic Rebalance, but
// through the parallel decomposition pool).
//
// This is the service's incremental path: a delta stream marks the nodes
// it touched, and the periodic rebalance pays for exactly the components
// those deltas live in. Clean components keep their current pairs
// untouched — bit-for-bit, in the current matching's order — so a
// rebalance whose deltas are local to one community never perturbs the
// others.
//
// The decomposition is rebuilt from the arranger's current snapshot (cheap
// next to solving: one kernel row scan per event plus a union-find), so
// structural changes — a new user bridging two previously independent
// components — are always seen.
func RebalanceScoped(ctx context.Context, arr *core.Arranger, algo string,
	dirtyEvents, dirtyUsers []int, full bool, opt Options) (RebalanceResult, error) {
	res := RebalanceResult{}
	sp := obs.StartSpan(ctx, "instance/rebalance").Annotate("algo", algo)
	defer sp.End()

	in, cur, err := arr.Snapshot()
	if err != nil {
		return res, err
	}
	d, err := DecomposeContext(ctx, in)
	if err != nil {
		return res, err
	}
	res.ComponentsTotal = len(d.Components)

	var ids []int
	if full {
		ids = make([]int, len(d.Components))
		for i := range ids {
			ids[i] = i
		}
	} else {
		ids = d.DirtyComponents(dirtyEvents, dirtyUsers)
	}
	rebalanceDirtyComponents.Observe(float64(len(ids)))
	sp.Annotate("components_total", res.ComponentsTotal).
		Annotate("components_dirty", len(ids)).
		Annotate("full", full)
	if len(ids) == 0 {
		return res, nil
	}

	fresh, err := d.SolveSubset(ctx, algo, ids, opt)
	if err != nil {
		return res, err
	}
	res.ComponentsSolved = len(ids)
	res.Partition = d.PartitionStats()

	// Current per-component MaxSum: every matched pair has sim > 0, so its
	// event and user share a component and the pair belongs to exactly one.
	compOfEvent := make(map[int]int)
	for i, c := range d.Components {
		for _, v := range c.Events {
			compOfEvent[v] = i
		}
	}
	curSum := make([]float64, len(d.Components))
	for _, p := range cur.Pairs() {
		curSum[compOfEvent[p.V]] += p.Sim
	}

	// Decide per dirty component whether the fresh solve wins.
	adopt := make(map[int]bool, len(ids))
	for _, id := range ids {
		m := fresh[id]
		if m == nil {
			continue
		}
		if g := m.MaxSum() - curSum[id]; g > 0 {
			adopt[id] = true
			res.Gain += g
		}
	}
	rebalanceGain.Set(res.Gain)
	sp.Annotate("gain", res.Gain)
	if len(adopt) == 0 {
		return res, nil
	}

	// Build the candidate deterministically: retained pairs first, in the
	// current matching's insertion order, then adopted components ascending
	// with their sub-matchings' own pair order mapped to parent indices.
	candidate := core.NewMatching()
	for _, p := range cur.Pairs() {
		if !adopt[compOfEvent[p.V]] {
			candidate.Add(p.V, p.U, p.Sim)
		}
	}
	adoptedIDs := make([]int, 0, len(adopt))
	for id := range adopt {
		adoptedIDs = append(adoptedIDs, id)
	}
	sort.Ints(adoptedIDs)
	for _, id := range adoptedIDs {
		c := d.Components[id]
		for _, p := range fresh[id].Pairs() {
			candidate.Add(c.Events[p.V], c.Users[p.U], p.Sim)
		}
	}
	if err := arr.SetMatching(candidate); err != nil {
		return res, err
	}
	res.Adopted = true
	return res, nil
}
