// Package decomp shards a GEACC instance along the connected components of
// its conflict/similarity union graph and solves the shards in parallel.
//
// Production-scale instances are sparse: most (event, user) pairs have
// sim = 0 and conflicts cluster into small groups, so the undirected union
// graph over V ∪ U — an edge v–u whenever sim(v, u) > 0, an edge v–v'
// whenever (v, v') ∈ CF — splits into many independent components. No
// matching may use a zero-similarity pair (Definition 5) and no constraint
// couples events of different components, so GEACC decomposes exactly:
//
//   - Prune-GEACC per component, merged, is globally optimal (the whole
//     instance's optimum is the sum of the component optima).
//   - Greedy-GEACC and MinCostFlow-GEACC keep their paper approximation
//     ratios: the ratios hold per component and both the achieved MaxSum
//     and the optimum are sums over components.
//
// Decompose builds the components once (one kernel-batched similarity row
// scan per event plus a union-find); Decomposition.SolveContext then runs
// any registered solver over the components in a bounded worker pool with
// context cancellation and merges the per-component matchings
// deterministically — the result is independent of the worker count.
package decomp

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/obs"
)

// Component is one shard: a sub-instance over a connected component of the
// union graph, plus the mapping back to the parent's indices.
type Component struct {
	// Events and Users hold the parent indices of the component's nodes in
	// ascending order; sub-instance index i corresponds to Events[i]
	// (resp. Users[i]).
	Events []int
	Users  []int
	// Sub is the materialized sub-instance. Its similarity values are
	// bit-identical to the parent's (the kernels reproduce the similarity
	// closures exactly, and matrix entries are copied), so merged matchings
	// validate against the parent.
	Sub *core.Instance
}

// Decomposition is the sharding of one instance. Components with no
// possible pair — an isolated event, or a user with zero similarity to
// every event — are not materialized; they are counted as stranded.
type Decomposition struct {
	Parent     *core.Instance
	Components []Component

	// StrandedEvents / StrandedUsers count the nodes whose component has
	// no counterpart side: they cannot appear in any feasible matching.
	StrandedEvents int
	StrandedUsers  int

	// BuildSeconds is the wall-clock cost of the union-graph scan,
	// union-find, and sub-instance materialization.
	BuildSeconds float64

	// partMu guards partStats, accumulated by the solve pool when
	// Options.Shard routes oversized components through internal/partition.
	partMu    sync.Mutex
	partStats *core.PartitionStats
}

// PartitionStats reports the approximate-sharding aggregate of the most
// recent SolveContext/SolveSubset run, or nil when no component sharded.
// Call it after the solve returns; each solve resets the aggregate.
func (d *Decomposition) PartitionStats() *core.PartitionStats {
	d.partMu.Lock()
	defer d.partMu.Unlock()
	return d.partStats
}

// Decompose shards in along the connected components of its union graph.
func Decompose(in *core.Instance) (*Decomposition, error) {
	return DecomposeContext(context.Background(), in)
}

// DecomposeContext is Decompose with a context: a recorder traveling on ctx
// receives one decomp/build span, and ctx is checked between event rows so
// a canceled caller does not pay for a full |V|·|U| scan.
func DecomposeContext(ctx context.Context, in *core.Instance) (*Decomposition, error) {
	start := time.Now()
	sp := obs.RecorderFrom(ctx).Start("decomp/build")
	nv, nu := in.NumEvents(), in.NumUsers()

	// Union-find over V ∪ U: node v in [0, nv), node nv+u for user u.
	uf := newUnionFind(nv + nu)
	row := acquireRow(nu)
	defer releaseRow(row)
	for v := 0; v < nv; v++ {
		if v%64 == 0 && ctx.Err() != nil {
			sp.Annotate("error", ctx.Err().Error()).End()
			return nil, ctx.Err()
		}
		in.SimilarityRow(v, row)
		for u, s := range row {
			if s > 0 {
				uf.union(v, nv+u)
			}
		}
	}
	if in.Conflicts != nil {
		// CF edges keep conflicting events in one shard. (Events in
		// different positive-similarity components share no assignable
		// user, so their conflicts could never bind — but folding CF into
		// the union graph makes the independence argument unconditional.)
		for v := 0; v < nv; v++ {
			for _, w := range in.Conflicts.Neighbors(v) {
				if v < w {
					uf.union(v, w)
				}
			}
		}
	}

	// Group nodes by root, numbering components in first-appearance order
	// over node ids — deterministic, so downstream seeds and merge order
	// are stable across runs and worker counts.
	compOf := make(map[int]int)
	type group struct {
		events, users []int
	}
	var groups []*group
	for n := 0; n < nv+nu; n++ {
		root := uf.find(n)
		id, ok := compOf[root]
		if !ok {
			id = len(groups)
			compOf[root] = id
			groups = append(groups, &group{})
		}
		if n < nv {
			groups[id].events = append(groups[id].events, n)
		} else {
			groups[id].users = append(groups[id].users, n-nv)
		}
	}

	d := &Decomposition{Parent: in}
	// Parent-to-sub index maps, reused across components.
	evSub := make([]int, nv)
	usSub := make([]int, nu)
	for _, g := range groups {
		if len(g.events) == 0 || len(g.users) == 0 {
			// No pair can form here: skip materialization, count the nodes.
			d.StrandedEvents += len(g.events)
			d.StrandedUsers += len(g.users)
			continue
		}
		c, err := materialize(in, g.events, g.users, evSub, usSub)
		if err != nil {
			sp.Annotate("error", err.Error()).End()
			return nil, err
		}
		d.Components = append(d.Components, c)
	}
	d.BuildSeconds = time.Since(start).Seconds()
	sp.Annotate("components", len(d.Components)).
		Annotate("stranded_events", d.StrandedEvents).
		Annotate("stranded_users", d.StrandedUsers).End()
	decompBuildSeconds.Observe(d.BuildSeconds)
	return d, nil
}

// materialize builds the sub-instance for one component. evSub/usSub are
// scratch parent→sub index maps (only the component's entries are written,
// so they can be reused without clearing).
func materialize(in *core.Instance, events, users []int, evSub, usSub []int) (Component, error) {
	for i, v := range events {
		evSub[v] = i
	}
	for i, u := range users {
		usSub[u] = i
	}
	subEvents := make([]core.Event, len(events))
	for i, v := range events {
		subEvents[i] = in.Events[v]
	}
	subUsers := make([]core.User, len(users))
	for i, u := range users {
		subUsers[i] = in.Users[u]
	}
	// Conflict edges always join events of the same component (they are
	// union-graph edges), so remapping never leaves the sub index space.
	var cf *conflict.Graph
	if in.Conflicts != nil {
		cf = conflict.New(len(events))
		for _, v := range events {
			for _, w := range in.Conflicts.Neighbors(v) {
				if v < w {
					cf.Add(evSub[v], evSub[w])
				}
			}
		}
	}
	var sub *core.Instance
	var err error
	if in.Matrix != nil {
		matrix := make([][]float64, len(events))
		for i, v := range events {
			mrow := make([]float64, len(users))
			for j, u := range users {
				mrow[j] = in.Matrix[v][u]
			}
			matrix[i] = mrow
		}
		sub, err = core.NewMatrixInstance(subEvents, subUsers, cf, matrix)
	} else {
		sub, err = core.NewInstance(subEvents, subUsers, cf, in.SimFunc)
	}
	if err != nil {
		return Component{}, fmt.Errorf("decomp: materialize component: %w", err)
	}
	return Component{Events: events, Users: users, Sub: sub}, nil
}

// MaxComponentArea returns the largest |V|·|U| over the components — the
// budget driver for exact solves (the server uses it to gate decomposed
// exact requests the way it gates monolithic ones).
func (d *Decomposition) MaxComponentArea() int64 {
	var max int64
	for _, c := range d.Components {
		if a := int64(len(c.Events)) * int64(len(c.Users)); a > max {
			max = a
		}
	}
	return max
}

// Stats converts the decomposition into the Diagnostics artifact form.
// workers is normalized the same way SolveContext normalizes Options.Workers.
func (d *Decomposition) Stats(workers int) *core.DecompositionStats {
	st := &core.DecompositionStats{
		Components:     len(d.Components),
		StrandedEvents: d.StrandedEvents,
		StrandedUsers:  d.StrandedUsers,
		Workers:        normalizeWorkers(workers, len(d.Components)),
		BuildSeconds:   d.BuildSeconds,
	}
	for _, c := range d.Components {
		if len(c.Events)*len(c.Users) > st.LargestEvents*st.LargestUsers {
			st.LargestEvents = len(c.Events)
			st.LargestUsers = len(c.Users)
		}
	}
	return st
}

// unionFind is a classic disjoint-set forest with union by size and path
// halving: effectively O(1) amortized per operation over the |V|·|U| unions
// the graph scan can issue.
type unionFind struct {
	parent []int
	size   []int
}

// rowPool recycles the |U|-wide similarity-row scratch of the union-graph
// scan — the decomposition layer's per-build hot allocation under a
// sustained delta/rebalance stream. Rows are fully overwritten by
// SimilarityRow before every read.
var rowPool = sync.Pool{New: func() any { return []float64(nil) }}

func acquireRow(n int) []float64 {
	s := rowPool.Get().([]float64)
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func releaseRow(s []float64) {
	if s != nil {
		rowPool.Put(s) //nolint:staticcheck // slice header allocation is amortized by the saved buffer
	}
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}
