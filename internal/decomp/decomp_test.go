package decomp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/dataset"
)

// matrixInstance builds a 3×4 instance with two similarity components, one
// stranded event (e2: zero row) and one stranded user (u3: zero column).
func matrixInstance(t *testing.T, pairs [][2]int) *core.Instance {
	t.Helper()
	events := []core.Event{{Cap: 2}, {Cap: 1}, {Cap: 1}}
	users := []core.User{{Cap: 1}, {Cap: 1}, {Cap: 1}, {Cap: 1}}
	matrix := [][]float64{
		{0.9, 0.5, 0, 0},
		{0, 0, 0.8, 0},
		{0, 0, 0, 0},
	}
	in, err := core.NewMatrixInstance(events, users, conflict.FromPairs(3, pairs), matrix)
	if err != nil {
		t.Fatalf("NewMatrixInstance: %v", err)
	}
	return in
}

func TestDecomposeMatrixComponents(t *testing.T) {
	in := matrixInstance(t, nil)
	d, err := Decompose(in)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if len(d.Components) != 2 {
		t.Fatalf("got %d components, want 2", len(d.Components))
	}
	c0, c1 := d.Components[0], d.Components[1]
	if !reflect.DeepEqual(c0.Events, []int{0}) || !reflect.DeepEqual(c0.Users, []int{0, 1}) {
		t.Fatalf("component 0 = (%v, %v), want ([0], [0 1])", c0.Events, c0.Users)
	}
	if !reflect.DeepEqual(c1.Events, []int{1}) || !reflect.DeepEqual(c1.Users, []int{2}) {
		t.Fatalf("component 1 = (%v, %v), want ([1], [2])", c1.Events, c1.Users)
	}
	if d.StrandedEvents != 1 || d.StrandedUsers != 1 {
		t.Fatalf("stranded = (%d, %d), want (1, 1)", d.StrandedEvents, d.StrandedUsers)
	}
	// Sub-instance similarities must agree with the parent's bitwise.
	if got := c0.Sub.Similarity(0, 1); got != in.Similarity(0, 1) {
		t.Fatalf("sub similarity %v != parent %v", got, in.Similarity(0, 1))
	}
	if area := d.MaxComponentArea(); area != 2 {
		t.Fatalf("MaxComponentArea = %d, want 2", area)
	}
	st := d.Stats(0)
	if st.Components != 2 || st.LargestEvents != 1 || st.LargestUsers != 2 {
		t.Fatalf("unexpected stats %+v", st)
	}
	if st.Workers < 1 {
		t.Fatalf("stats workers %d not normalized", st.Workers)
	}
}

func TestDecomposeConflictEdgeMergesComponents(t *testing.T) {
	// A CF edge between e0 and e1 belongs to the union graph, so the two
	// similarity components collapse into one shard.
	in := matrixInstance(t, [][2]int{{0, 1}})
	d, err := Decompose(in)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if len(d.Components) != 1 {
		t.Fatalf("got %d components, want 1", len(d.Components))
	}
	c := d.Components[0]
	if !reflect.DeepEqual(c.Events, []int{0, 1}) || !reflect.DeepEqual(c.Users, []int{0, 1, 2}) {
		t.Fatalf("component = (%v, %v), want ([0 1], [0 1 2])", c.Events, c.Users)
	}
	// The conflict edge must survive remapping into the sub index space.
	if !c.Sub.Conflicting(0, 1) {
		t.Fatal("sub-instance lost the (e0, e1) conflict")
	}
}

// clustered returns a deterministic multi-community instance.
func clustered(t *testing.T, nv, nu, k int, seed int64, evCap, usCap int) *core.Instance {
	t.Helper()
	cfg := dataset.ClusteredConfig{
		NumEvents: nv, NumUsers: nu, Communities: k, BlockDim: 2,
		EventCapMax: evCap, UserCapMax: usCap, CFRatio: 0.4, Seed: seed,
	}
	in, err := cfg.Generate()
	if err != nil {
		t.Fatalf("clustered generate: %v", err)
	}
	return in
}

func TestClusteredInstanceDecomposesIntoCommunities(t *testing.T) {
	in := clustered(t, 20, 60, 4, 7, 5, 2)
	d, err := Decompose(in)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if len(d.Components) != 4 {
		t.Fatalf("got %d components, want 4 (one per community)", len(d.Components))
	}
	if d.StrandedEvents != 0 || d.StrandedUsers != 0 {
		t.Fatalf("unexpected stranded nodes: %d events, %d users", d.StrandedEvents, d.StrandedUsers)
	}
}

// TestDecomposedExactMatchesWholeExact is the compositional-optimality
// property: merge(exact(components)) has the same MaxSum as exact(whole),
// on clustered instances and on random sparse matrix instances whose
// components emerge by chance.
func TestDecomposedExactMatchesWholeExact(t *testing.T) {
	check := func(name string, in *core.Instance) {
		t.Helper()
		whole, _, err := core.Exact(in)
		if err != nil {
			t.Fatalf("%s: whole exact: %v", name, err)
		}
		merged, _, err := SolveContext(context.Background(), "exact", in, Options{})
		if err != nil {
			t.Fatalf("%s: decomposed exact: %v", name, err)
		}
		if err := core.Validate(in, merged); err != nil {
			t.Fatalf("%s: merged exact matching infeasible: %v", name, err)
		}
		if diff := math.Abs(whole.MaxSum() - merged.MaxSum()); diff > 1e-9 {
			t.Fatalf("%s: decomposed exact MaxSum %v != whole %v (diff %v)",
				name, merged.MaxSum(), whole.MaxSum(), diff)
		}
	}

	for seed := int64(1); seed <= 4; seed++ {
		check("clustered", clustered(t, 6, 12, 3, seed, 3, 2))
	}

	// Random sparse matrices: ~60% zero entries plus random conflicts, so
	// component structure (including stranded nodes) varies per seed.
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nv, nu := 5, 8
		events := make([]core.Event, nv)
		for i := range events {
			events[i] = core.Event{Cap: 1 + rng.Intn(3)}
		}
		users := make([]core.User, nu)
		for i := range users {
			users[i] = core.User{Cap: 1 + rng.Intn(2)}
		}
		matrix := make([][]float64, nv)
		for v := range matrix {
			matrix[v] = make([]float64, nu)
			for u := range matrix[v] {
				if rng.Float64() > 0.6 {
					matrix[v][u] = rng.Float64()
				}
			}
		}
		cf := conflict.Random(rng, nv, 0.3)
		in, err := core.NewMatrixInstance(events, users, cf, matrix)
		if err != nil {
			t.Fatalf("matrix instance: %v", err)
		}
		check("matrix", in)
	}
}

// TestDecomposedSolversFeasible merges every registry solver's component
// matchings and validates the result against the parent instance.
func TestDecomposedSolversFeasible(t *testing.T) {
	in := clustered(t, 16, 48, 4, 11, 3, 2)
	for _, algo := range core.SolverNames() {
		m, st, err := SolveContext(context.Background(), algo, in, Options{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := core.Validate(in, m); err != nil {
			t.Fatalf("%s: merged matching infeasible: %v", algo, err)
		}
		if st.Components != 4 {
			t.Fatalf("%s: stats report %d components, want 4", algo, st.Components)
		}
	}
}

// TestDecomposedGreedyMatchesMonolithicGreedy: with no positive-similarity
// or conflict edges across components, the global greedy's decisions
// restrict exactly to per-component greedy runs, so the merged pair set is
// identical to the monolithic one.
func TestDecomposedGreedyMatchesMonolithicGreedy(t *testing.T) {
	in := clustered(t, 20, 100, 5, 13, 5, 2)
	mono := core.Greedy(in)
	merged, _, err := SolveContext(context.Background(), "greedy", in, Options{})
	if err != nil {
		t.Fatalf("decomposed greedy: %v", err)
	}
	if !reflect.DeepEqual(mono.SortedPairs(), merged.SortedPairs()) {
		t.Fatalf("decomposed greedy pairs differ from monolithic:\nmono   %v\nmerged %v",
			mono.SortedPairs(), merged.SortedPairs())
	}
}

// TestSolveDeterministicAcrossWorkerCounts: the merged matching (pair order
// and float-summed MaxSum included) must not depend on pool size.
func TestSolveDeterministicAcrossWorkerCounts(t *testing.T) {
	in := clustered(t, 24, 96, 6, 17, 4, 2)
	for _, algo := range []string{"greedy", "mincostflow", "random-v"} {
		var want *core.Matching
		for _, workers := range []int{1, 3, 8} {
			m, _, err := SolveContext(context.Background(), algo, in, Options{Workers: workers, Seed: 5})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", algo, workers, err)
			}
			if want == nil {
				want = m
				continue
			}
			if m.MaxSum() != want.MaxSum() {
				t.Fatalf("%s workers=%d: MaxSum %v != workers=1 %v", algo, workers, m.MaxSum(), want.MaxSum())
			}
			if !reflect.DeepEqual(m.Pairs(), want.Pairs()) {
				t.Fatalf("%s workers=%d: pair sequence differs from workers=1", algo, workers)
			}
		}
	}
}

// TestSolveContextCancelMidShard cancels the context from inside the first
// component's solve: the remaining shards must be skipped and the
// cancellation surfaced as the run's error.
func TestSolveContextCancelMidShard(t *testing.T) {
	in := clustered(t, 16, 32, 4, 19, 3, 2)
	d, err := Decompose(in)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if len(d.Components) != 4 {
		t.Fatalf("got %d components, want 4", len(d.Components))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int32
	orig := solveComponentFn
	solveComponentFn = func(ctx context.Context, algo string, c Component, compIdx int, opt Options) (*core.Matching, error) {
		if calls.Add(1) == 1 {
			cancel() // the client goes away while shard 0 is in flight
		}
		return orig(ctx, algo, c, compIdx, opt)
	}
	defer func() { solveComponentFn = orig }()

	m, err := d.SolveContext(ctx, "greedy", Options{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m != nil {
		t.Fatalf("canceled solve returned a matching with %d pairs", m.Size())
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d component solves dispatched after cancellation, want 1", got)
	}
}

// TestSolvePreCanceledContext: cancellation before the run starts is
// reported without dispatching any component.
func TestSolvePreCanceledContext(t *testing.T) {
	in := clustered(t, 8, 16, 2, 23, 3, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := SolveContext(ctx, "greedy", in, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExactNodeLimitPerComponent: a tripped per-component budget keeps the
// best-so-far shard matchings, merges them feasibly, and surfaces
// core.ErrNodeLimit.
func TestExactNodeLimitPerComponent(t *testing.T) {
	in := clustered(t, 12, 24, 3, 29, 3, 2)
	m, _, err := SolveContext(context.Background(), "exact", in, Options{ExactNodeLimit: 1})
	if !errors.Is(err, core.ErrNodeLimit) {
		t.Fatalf("err = %v, want core.ErrNodeLimit", err)
	}
	if m == nil {
		t.Fatal("budget-tripped solve returned no matching")
	}
	if err := core.Validate(in, m); err != nil {
		t.Fatalf("budget-tripped matching infeasible: %v", err)
	}
}

func TestSolveUnknownAlgorithm(t *testing.T) {
	in := clustered(t, 4, 8, 2, 31, 2, 2)
	if _, _, err := SolveContext(context.Background(), "no-such-solver", in, Options{}); err == nil {
		t.Fatal("unknown solver accepted")
	}
}

func TestEmptyInstance(t *testing.T) {
	in, err := core.NewMatrixInstance(nil, nil, nil, [][]float64{})
	if err != nil {
		t.Fatalf("empty instance: %v", err)
	}
	m, st, err := SolveContext(context.Background(), "greedy", in, Options{})
	if err != nil {
		t.Fatalf("empty solve: %v", err)
	}
	if m.Size() != 0 || st.Components != 0 {
		t.Fatalf("empty instance produced %d pairs over %d components", m.Size(), st.Components)
	}
}
