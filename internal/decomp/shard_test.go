package decomp

import (
	"context"
	"testing"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/dataset"
	"github.com/ebsnlab/geacc/internal/partition"
	"github.com/ebsnlab/geacc/internal/solvecache"
)

// bridgedClustered generates a clustered instance chained into one giant
// component by bridge users — the shape Options.Shard exists for.
func bridgedClustered(t *testing.T, nv, nu, k int, seed int64) *core.Instance {
	t.Helper()
	cfg := dataset.ClusteredConfig{
		NumEvents: nv, NumUsers: nu, Communities: k, BlockDim: 2,
		EventCapMax: 6, UserCapMax: 3, CFRatio: 0.25,
		BridgeFrac: 0.1, Seed: seed,
	}
	in, err := cfg.Generate()
	if err != nil {
		t.Fatalf("bridged generate: %v", err)
	}
	return in
}

func solvePairs(t *testing.T, in *core.Instance, opt Options) ([]core.Assignment, *core.PartitionStats) {
	t.Helper()
	d, err := Decompose(in)
	if err != nil {
		t.Fatal(err)
	}
	m, err := d.SolveContext(context.Background(), "mincostflow", opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(in, m); err != nil {
		t.Fatalf("merged matching infeasible: %v", err)
	}
	return m.SortedPairs(), d.PartitionStats()
}

// TestShardNilAndOversizeThresholdBitIdentical: with Shard nil, or with a
// MaxArea no component exceeds, the solve is bit-identical to the plain
// decomposed path and reports no partition activity.
func TestShardNilAndOversizeThresholdBitIdentical(t *testing.T) {
	in := bridgedClustered(t, 24, 240, 6, 5)
	base, pst := solvePairs(t, in, Options{})
	if pst != nil {
		t.Fatal("plain solve reported partition stats")
	}
	huge := partition.Options{MaxArea: 1 << 40}
	got, pst := solvePairs(t, in, Options{Shard: &huge})
	if pst != nil {
		t.Fatal("under-threshold shard solve reported partition stats")
	}
	if len(got) != len(base) {
		t.Fatalf("pair counts differ: %d vs %d", len(got), len(base))
	}
	for i := range base {
		if got[i] != base[i] {
			t.Fatalf("pair %d differs: %+v vs %+v", i, got[i], base[i])
		}
	}
}

// TestShardGiantComponent: the one giant bridged component routes through
// internal/partition, producing a feasible merged matching, populated
// aggregate stats, and a worker-count-invariant result.
func TestShardGiantComponent(t *testing.T) {
	in := bridgedClustered(t, 24, 240, 6, 5)
	d, err := Decompose(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Components) != 1 {
		t.Fatalf("bridged instance split into %d components, want 1", len(d.Components))
	}
	sh := partition.Options{MaxArea: 500, DriftBudget: 0.9}
	base, pst := solvePairs(t, in, Options{Shard: &sh, Workers: 1})
	if pst == nil {
		t.Fatal("giant component produced no partition stats")
	}
	if pst.Runs != 1 || pst.Shards < 2 || pst.Fallbacks != 0 {
		t.Fatalf("unexpected aggregate stats %+v", pst)
	}
	if pst.MaxDriftEstimate <= 0 || pst.MaxDriftEstimate > sh.DriftBudget {
		t.Fatalf("drift estimate %v outside (0, %v]", pst.MaxDriftEstimate, sh.DriftBudget)
	}
	if pst.MaxArea != sh.MaxArea || pst.DriftBudget != sh.DriftBudget || pst.Strategy != string(partition.StrategyModularity) {
		t.Fatalf("options not echoed in stats %+v", pst)
	}
	for _, workers := range []int{2, 4} {
		got, _ := solvePairs(t, in, Options{Shard: &sh, Workers: workers})
		if len(got) != len(base) {
			t.Fatalf("workers=%d: pair counts differ", workers)
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: pair %d differs", workers, i)
			}
		}
	}
}

// TestShardStatsResetPerRun: partition stats describe the latest solve run
// only — a following solve that shards nothing reports nil again.
func TestShardStatsResetPerRun(t *testing.T) {
	in := bridgedClustered(t, 24, 240, 6, 5)
	d, err := Decompose(in)
	if err != nil {
		t.Fatal(err)
	}
	sh := partition.Options{MaxArea: 500, DriftBudget: 0.9}
	if _, err := d.SolveContext(context.Background(), "mincostflow", Options{Shard: &sh}); err != nil {
		t.Fatal(err)
	}
	if d.PartitionStats() == nil {
		t.Fatal("sharded run reported no stats")
	}
	if _, err := d.SolveContext(context.Background(), "mincostflow", Options{}); err != nil {
		t.Fatal(err)
	}
	if d.PartitionStats() != nil {
		t.Fatal("stats from the previous run leaked into an unsharded solve")
	}
}

// TestShardComposesWithSolveCache: shard sub-solves go through the ordinary
// per-component machinery, so a second identical run is served from the
// solve cache bit-identically.
func TestShardComposesWithSolveCache(t *testing.T) {
	in := bridgedClustered(t, 24, 240, 6, 5)
	cache := solvecache.New(64)
	sh := partition.Options{MaxArea: 500, DriftBudget: 0.9}
	opt := Options{Shard: &sh, SolveCache: cache, SimID: "cosine/12/1"}
	base, _ := solvePairs(t, in, opt)
	if cache.Len() == 0 {
		t.Fatal("sharded solve populated no cache entries")
	}
	before := cache.Stats()
	got, _ := solvePairs(t, in, opt)
	if after := cache.Stats(); after.Hits <= before.Hits {
		t.Fatalf("re-run produced no cache hits (before %+v, after %+v)", before, after)
	}
	if len(got) != len(base) {
		t.Fatal("cached re-run differs")
	}
	for i := range base {
		if got[i] != base[i] {
			t.Fatalf("cached re-run pair %d differs", i)
		}
	}
}
