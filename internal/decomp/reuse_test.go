package decomp

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/sim"
	"github.com/ebsnlab/geacc/internal/solvecache"
)

// driveDelta applies the same random delta to both arrangers.
func driveDelta(t *testing.T, rng *rand.Rand, arrs []*core.Arranger, d int, maxT float64) {
	t.Helper()
	switch rng.Intn(4) {
	case 0:
		e := core.Event{Attrs: randAttrs(rng, d, maxT), Cap: 1 + rng.Intn(3)}
		var cf []int
		if n := arrs[0].NumEvents(); n > 0 && rng.Intn(2) == 0 {
			cf = []int{rng.Intn(n)}
		}
		for _, a := range arrs {
			if _, err := a.AddEvent(e, cf); err != nil {
				t.Fatal(err)
			}
		}
	case 1:
		u := core.User{Attrs: randAttrs(rng, d, maxT), Cap: 1 + rng.Intn(2)}
		for _, a := range arrs {
			if _, err := a.AddUser(u); err != nil {
				t.Fatal(err)
			}
		}
	case 2:
		if n := arrs[0].NumEvents(); n > 0 {
			v := rng.Intn(n)
			for _, a := range arrs {
				if err := a.CancelEvent(v); err != nil {
					t.Fatal(err)
				}
			}
		}
	case 3:
		if n := arrs[0].NumUsers(); n > 0 {
			u := rng.Intn(n)
			for _, a := range arrs {
				if err := a.RemoveUser(u); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func randAttrs(rng *rand.Rand, d int, maxT float64) sim.Vector {
	v := make(sim.Vector, d)
	for i := range v {
		v[i] = rng.Float64() * maxT
	}
	return v
}

// TestRebalanceWithReuseCachesMatchesPlain drives identical delta streams
// into two arrangers and rebalances one with the solve cache + warm flow
// cache and the other without: every adopted arrangement must be
// bit-identical — the caches are pure accelerators.
func TestRebalanceWithReuseCachesMatchesPlain(t *testing.T) {
	const d, maxT = 4, 100.0
	for _, algo := range []string{"greedy", "mincostflow"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			f := sim.Euclidean(d, maxT)
			plain, err := core.NewArranger(f)
			if err != nil {
				t.Fatal(err)
			}
			cached, err := core.NewArranger(f)
			if err != nil {
				t.Fatal(err)
			}
			arrs := []*core.Arranger{plain, cached}
			plainOpt := Options{Seed: 1}
			cachedOpt := Options{
				Seed:       1,
				SolveCache: solvecache.New(64),
				SimID:      fmt.Sprintf("euclidean/%d/%v", d, maxT),
				WarmCache:  core.NewWarmCache(32),
			}
			// Seed population.
			for i := 0; i < 30; i++ {
				driveDelta(t, rng, arrs, d, maxT)
			}
			for step := 0; step < 20; step++ {
				for i := 0; i < 1+rng.Intn(3); i++ {
					driveDelta(t, rng, arrs, d, maxT)
				}
				full := rng.Intn(4) == 0
				// Scope "everything recently touched" conservatively: all ids.
				allE := make([]int, plain.NumEvents())
				for i := range allE {
					allE[i] = i
				}
				allU := make([]int, plain.NumUsers())
				for i := range allU {
					allU[i] = i
				}
				rp, err := RebalanceScoped(context.Background(), plain, algo, allE, allU, full, plainOpt)
				if err != nil {
					t.Fatal(err)
				}
				rc, err := RebalanceScoped(context.Background(), cached, algo, allE, allU, full, cachedOpt)
				if err != nil {
					t.Fatal(err)
				}
				if rp.Gain != rc.Gain || rp.Adopted != rc.Adopted || rp.ComponentsSolved != rc.ComponentsSolved {
					t.Fatalf("step %d: results diverge: plain %+v cached %+v", step, rp, rc)
				}
				mp, mc := plain.Matching().SortedPairs(), cached.Matching().SortedPairs()
				if len(mp) != len(mc) {
					t.Fatalf("step %d: %d pairs vs %d", step, len(mp), len(mc))
				}
				for i := range mp {
					if mp[i] != mc[i] {
						t.Fatalf("step %d: pair %d: plain %+v cached %+v", step, i, mp[i], mc[i])
					}
				}
				if plain.MaxSum() != cached.MaxSum() {
					t.Fatalf("step %d: MaxSum %v vs %v", step, plain.MaxSum(), cached.MaxSum())
				}
			}
			st := cachedOpt.SolveCache.Stats()
			if st.Hits+st.Misses == 0 {
				t.Fatal("solve cache was never consulted")
			}
			if algo == "mincostflow" && cachedOpt.WarmCache.Len() == 0 {
				t.Fatal("warm cache never captured a component state")
			}
		})
	}
}

// TestRepeatedRebalanceHitsSolveCache pins the reuse scenario the cache
// exists for: re-solving unchanged components (scope=full, no deltas in
// between) must be served from the cache.
func TestRepeatedRebalanceHitsSolveCache(t *testing.T) {
	const d, maxT = 4, 100.0
	rng := rand.New(rand.NewSource(3))
	arr, err := core.NewArranger(sim.Euclidean(d, maxT))
	if err != nil {
		t.Fatal(err)
	}
	arrs := []*core.Arranger{arr}
	for i := 0; i < 40; i++ {
		driveDelta(t, rng, arrs, d, maxT)
	}
	opt := Options{Seed: 1, SolveCache: solvecache.New(64), SimID: "euclidean/4/100"}
	if _, err := RebalanceScoped(context.Background(), arr, "greedy", nil, nil, true, opt); err != nil {
		t.Fatal(err)
	}
	before := opt.SolveCache.Stats()
	if before.Misses == 0 {
		t.Fatal("first full rebalance should have missed into the cache")
	}
	if _, err := RebalanceScoped(context.Background(), arr, "greedy", nil, nil, true, opt); err != nil {
		t.Fatal(err)
	}
	after := opt.SolveCache.Stats()
	if after.Hits == before.Hits {
		t.Fatal("second identical full rebalance produced no cache hits")
	}
	if after.Misses != before.Misses {
		t.Fatalf("second identical full rebalance missed (%d -> %d misses)", before.Misses, after.Misses)
	}
}
