// Package report summarizes the quality of an event-participant
// arrangement: objective value and optimality gap, capacity utilization on
// both sides, satisfaction distribution across users, and a fairness
// measure. The geacc-solve command renders it with -report.
package report

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/stats"
)

// Report digests one matching against its instance.
type Report struct {
	// Objective.
	MaxSum     float64
	Pairs      int
	UpperBound float64 // conflict-free relaxation optimum (Corollary 1)

	// Events.
	EventsTotal   int
	EventsFull    int   // at capacity
	EventsEmpty   int   // no attendees
	EventCapacity int64 // Σ c_v
	EventLoad     int64 // matched attendees

	// Users.
	UsersTotal    int
	UsersArranged int // at least one event
	UserCapacity  int64
	UserLoad      int64
	Satisfaction  stats.Summary // per arranged user: Σ sim over their events
	FairnessGini  float64       // Gini over arranged users' satisfaction
	TopEvents     []EventFill   // best-filled events, up to 5
	WorstUtilized []EventFill   // emptiest non-full events, up to 5
}

// EventFill is one event's recruitment outcome.
type EventFill struct {
	Event     int
	Attendees int
	Capacity  int
}

// Build validates the matching and computes the report. The relaxation
// upper bound is computed unless skipBound is set (it costs a min-cost-flow
// solve, noticeable on large instances).
func Build(in *core.Instance, m *core.Matching, skipBound bool) (*Report, error) {
	if err := core.Validate(in, m); err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	r := &Report{
		MaxSum:      m.MaxSum(),
		Pairs:       m.Size(),
		EventsTotal: in.NumEvents(),
		UsersTotal:  in.NumUsers(),
	}
	if !skipBound {
		r.UpperBound = core.RelaxedUpperBound(in)
	}

	fills := make([]EventFill, in.NumEvents())
	for v := 0; v < in.NumEvents(); v++ {
		fills[v] = EventFill{Event: v, Attendees: len(m.EventUsers(v)), Capacity: in.Events[v].Cap}
		r.EventCapacity += int64(in.Events[v].Cap)
		r.EventLoad += int64(fills[v].Attendees)
		switch {
		case fills[v].Attendees == 0:
			r.EventsEmpty++
		case fills[v].Attendees == in.Events[v].Cap:
			r.EventsFull++
		}
	}

	var satisfaction []float64
	for u := 0; u < in.NumUsers(); u++ {
		r.UserCapacity += int64(in.Users[u].Cap)
		events := m.UserEvents(u)
		r.UserLoad += int64(len(events))
		if len(events) == 0 {
			continue
		}
		r.UsersArranged++
		var s float64
		for _, v := range events {
			s += in.Similarity(v, u)
		}
		satisfaction = append(satisfaction, s)
	}
	r.Satisfaction = stats.Summarize(satisfaction)
	r.FairnessGini = gini(satisfaction)

	sort.Slice(fills, func(i, j int) bool {
		if fills[i].Attendees != fills[j].Attendees {
			return fills[i].Attendees > fills[j].Attendees
		}
		return fills[i].Event < fills[j].Event
	})
	r.TopEvents = clip(fills, 5)
	// Emptiest events (ascending attendees).
	rev := append([]EventFill(nil), fills...)
	sort.Slice(rev, func(i, j int) bool {
		if rev[i].Attendees != rev[j].Attendees {
			return rev[i].Attendees < rev[j].Attendees
		}
		return rev[i].Event < rev[j].Event
	})
	r.WorstUtilized = clip(rev, 5)
	return r, nil
}

func clip(fills []EventFill, n int) []EventFill {
	if len(fills) < n {
		n = len(fills)
	}
	return append([]EventFill(nil), fills[:n]...)
}

// gini computes the Gini coefficient of a non-negative sample in [0, 1]:
// 0 = perfectly equal satisfaction, →1 = concentrated on few users.
func gini(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, x := range sorted {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	n := float64(len(sorted))
	return (2*cum)/(n*total) - (n+1)/n
}

// String renders the report as a human-readable block.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "arrangement report\n")
	fmt.Fprintf(&b, "  MaxSum        %.4f over %d pairs\n", r.MaxSum, r.Pairs)
	if r.UpperBound > 0 {
		fmt.Fprintf(&b, "  upper bound   %.4f (achieved %.1f%%)\n",
			r.UpperBound, 100*r.MaxSum/r.UpperBound)
	}
	fmt.Fprintf(&b, "  events        %d total, %d full, %d empty; load %d/%d seats (%.1f%%)\n",
		r.EventsTotal, r.EventsFull, r.EventsEmpty, r.EventLoad, r.EventCapacity,
		percent(r.EventLoad, r.EventCapacity))
	fmt.Fprintf(&b, "  users         %d total, %d arranged; load %d/%d slots (%.1f%%)\n",
		r.UsersTotal, r.UsersArranged, r.UserLoad, r.UserCapacity,
		percent(r.UserLoad, r.UserCapacity))
	fmt.Fprintf(&b, "  satisfaction  %s\n", r.Satisfaction)
	fmt.Fprintf(&b, "  fairness      gini %.3f\n", r.FairnessGini)
	if len(r.TopEvents) > 0 {
		fmt.Fprintf(&b, "  best-filled  ")
		for _, f := range r.TopEvents {
			fmt.Fprintf(&b, " v%d:%d/%d", f.Event, f.Attendees, f.Capacity)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

func percent(load, capacity int64) float64 {
	if capacity == 0 {
		return 0
	}
	return 100 * float64(load) / float64(capacity)
}
