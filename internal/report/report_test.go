package report

import (
	"math"
	"strings"
	"testing"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/core"
)

func reportInstance(t *testing.T) (*core.Instance, *core.Matching) {
	t.Helper()
	in, err := core.NewMatrixInstance(
		[]core.Event{{Cap: 2}, {Cap: 1}, {Cap: 3}},
		[]core.User{{Cap: 2}, {Cap: 1}, {Cap: 1}},
		conflict.FromPairs(3, [][2]int{{0, 1}}),
		[][]float64{
			{0.9, 0.8, 0.1},
			{0.7, 0.2, 0.3},
			{0.4, 0.5, 0.6},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewMatching()
	m.Add(0, 0, 0.9) // user 0 in event 0
	m.Add(2, 0, 0.4) // user 0 also in event 2
	m.Add(0, 1, 0.8) // user 1 fills event 0
	return in, m
}

func TestBuildBasics(t *testing.T) {
	in, m := reportInstance(t)
	r, err := Build(in, m, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.MaxSum-2.1) > 1e-12 || r.Pairs != 3 {
		t.Fatalf("MaxSum/Pairs = %v/%d", r.MaxSum, r.Pairs)
	}
	if r.UpperBound < r.MaxSum {
		t.Fatalf("upper bound %v below achieved %v", r.UpperBound, r.MaxSum)
	}
	if r.EventsTotal != 3 || r.EventsFull != 1 || r.EventsEmpty != 1 {
		t.Fatalf("event stats %+v", r)
	}
	if r.EventCapacity != 6 || r.EventLoad != 3 {
		t.Fatalf("event load %d/%d", r.EventLoad, r.EventCapacity)
	}
	if r.UsersTotal != 3 || r.UsersArranged != 2 {
		t.Fatalf("user stats %+v", r)
	}
	if r.UserCapacity != 4 || r.UserLoad != 3 {
		t.Fatalf("user load %d/%d", r.UserLoad, r.UserCapacity)
	}
	if r.Satisfaction.N != 2 {
		t.Fatalf("satisfaction over %d users", r.Satisfaction.N)
	}
	// User 0: 1.3, user 1: 0.8 -> mean 1.05.
	if math.Abs(r.Satisfaction.Mean-1.05) > 1e-12 {
		t.Fatalf("mean satisfaction %v", r.Satisfaction.Mean)
	}
	if r.FairnessGini < 0 || r.FairnessGini > 1 {
		t.Fatalf("gini %v", r.FairnessGini)
	}
	// Event 0 (2 attendees) leads the fill ranking.
	if len(r.TopEvents) == 0 || r.TopEvents[0].Event != 0 || r.TopEvents[0].Attendees != 2 {
		t.Fatalf("top events %+v", r.TopEvents)
	}
	// Event 1 (0 attendees) is the emptiest.
	if len(r.WorstUtilized) == 0 || r.WorstUtilized[0].Event != 1 {
		t.Fatalf("worst utilized %+v", r.WorstUtilized)
	}
}

func TestBuildSkipBound(t *testing.T) {
	in, m := reportInstance(t)
	r, err := Build(in, m, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.UpperBound != 0 {
		t.Fatalf("bound computed despite skip: %v", r.UpperBound)
	}
	if strings.Contains(r.String(), "upper bound") {
		t.Error("String mentions a bound that was skipped")
	}
}

func TestBuildRejectsInfeasible(t *testing.T) {
	in, _ := reportInstance(t)
	bad := core.NewMatching()
	bad.Add(0, 0, 0.5) // wrong similarity
	if _, err := Build(in, bad, true); err == nil {
		t.Fatal("infeasible matching accepted")
	}
}

func TestBuildEmptyMatching(t *testing.T) {
	in, _ := reportInstance(t)
	r, err := Build(in, core.NewMatching(), true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pairs != 0 || r.UsersArranged != 0 || r.EventsEmpty != 3 {
		t.Fatalf("empty report %+v", r)
	}
	if r.Satisfaction.N != 0 || r.FairnessGini != 0 {
		t.Fatal("empty satisfaction stats")
	}
}

func TestReportString(t *testing.T) {
	in, m := reportInstance(t)
	r, err := Build(in, m, false)
	if err != nil {
		t.Fatal(err)
	}
	text := r.String()
	for _, want := range []string{
		"MaxSum", "2.1000", "upper bound", "events", "3 total",
		"users", "satisfaction", "gini", "best-filled", "v0:2/2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestGini(t *testing.T) {
	if g := gini(nil); g != 0 {
		t.Error("empty gini")
	}
	if g := gini([]float64{5}); g != 0 {
		t.Error("singleton gini")
	}
	if g := gini([]float64{1, 1, 1, 1}); math.Abs(g) > 1e-12 {
		t.Errorf("equal sample gini = %v, want 0", g)
	}
	// One user holds everything: gini -> (n-1)/n.
	if g := gini([]float64{0, 0, 0, 10}); math.Abs(g-0.75) > 1e-12 {
		t.Errorf("concentrated gini = %v, want 0.75", g)
	}
	if g := gini([]float64{0, 0}); g != 0 {
		t.Error("all-zero gini should be 0")
	}
	// More unequal samples score higher.
	if gini([]float64{1, 9}) <= gini([]float64{4, 6}) {
		t.Error("gini not monotone in inequality")
	}
}
