// Package cluster provides seeded k-means clustering. The paper's
// preprocessing clusters events and users by location to extract per-city
// subpopulations ("we cluster events and users based on their locations and
// focus on the events/users located in the same city"); the dataset
// package's world generator uses this to reproduce that step.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a d-dimensional coordinate.
type Point []float64

// Result is a clustering outcome.
type Result struct {
	Centers []Point
	// Assign[i] is the cluster index of input point i.
	Assign []int
	// Sizes[c] counts points in cluster c.
	Sizes []int
	// Inertia is the total squared distance of points to their centers.
	Inertia float64
}

// KMeans clusters points into k groups with Lloyd's algorithm and
// k-means++ seeding, deterministic for a given seed. It runs at most
// maxIter iterations (≤ 0 means 100). k is clamped to [1, len(points)].
func KMeans(points []Point, k int, seed int64, maxIter int) (*Result, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), d)
		}
	}
	if k < 1 {
		k = 1
	}
	if k > len(points) {
		k = len(points)
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	rng := rand.New(rand.NewSource(seed))

	centers := seedPlusPlus(rng, points, k)
	assign := make([]int, len(points))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, center := range centers {
				if dd := sqDist(p, center); dd < bestD {
					best, bestD = c, dd
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centers; empty clusters are re-seeded with the point
		// farthest from its center, the standard fix.
		sums := make([]Point, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make(Point, d)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, x := range p {
				sums[c][j] += x
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				centers[c] = farthestPoint(points, centers, assign)
				continue
			}
			for j := range sums[c] {
				sums[c][j] /= float64(counts[c])
			}
			centers[c] = sums[c]
		}
	}

	res := &Result{Centers: centers, Assign: assign, Sizes: make([]int, k)}
	for i, p := range points {
		res.Sizes[assign[i]]++
		res.Inertia += sqDist(p, centers[assign[i]])
	}
	return res, nil
}

// seedPlusPlus picks k initial centers: the first uniformly, the rest
// proportional to squared distance from the nearest chosen center.
func seedPlusPlus(rng *rand.Rand, points []Point, k int) []Point {
	centers := make([]Point, 0, k)
	centers = append(centers, clone(points[rng.Intn(len(points))]))
	minD := make([]float64, len(points))
	for i, p := range points {
		minD[i] = sqDist(p, centers[0])
	}
	for len(centers) < k {
		var total float64
		for _, dd := range minD {
			total += dd
		}
		var next int
		if total == 0 {
			next = rng.Intn(len(points)) // all points coincide with centers
		} else {
			x := rng.Float64() * total
			for i, dd := range minD {
				x -= dd
				if x < 0 {
					next = i
					break
				}
			}
		}
		centers = append(centers, clone(points[next]))
		for i, p := range points {
			if dd := sqDist(p, centers[len(centers)-1]); dd < minD[i] {
				minD[i] = dd
			}
		}
	}
	return centers
}

func farthestPoint(points []Point, centers []Point, assign []int) Point {
	far, farD := 0, -1.0
	for i, p := range points {
		if dd := sqDist(p, centers[assign[i]]); dd > farD {
			far, farD = i, dd
		}
	}
	return clone(points[far])
}

func sqDist(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func clone(p Point) Point {
	out := make(Point, len(p))
	copy(out, p)
	return out
}
