package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates n points around each of the given centers with the given
// spread.
func blobs(rng *rand.Rand, centers []Point, n int, spread float64) ([]Point, []int) {
	var points []Point
	var truth []int
	for c, center := range centers {
		for i := 0; i < n; i++ {
			p := make(Point, len(center))
			for j := range p {
				p[j] = center[j] + rng.NormFloat64()*spread
			}
			points = append(points, p)
			truth = append(truth, c)
		}
	}
	return points, truth
}

func TestKMeansRecoversWellSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers := []Point{{0, 0}, {100, 0}, {0, 100}}
	points, truth := blobs(rng, centers, 50, 2)
	res, err := KMeans(points, 3, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every ground-truth blob must map to exactly one cluster (purity 1 for
	// separation ≫ spread).
	mapping := map[int]int{}
	for i, c := range res.Assign {
		if prev, ok := mapping[truth[i]]; ok && prev != c {
			t.Fatalf("blob %d split across clusters %d and %d", truth[i], prev, c)
		}
		mapping[truth[i]] = c
	}
	if len(mapping) != 3 {
		t.Fatalf("blobs merged: %v", mapping)
	}
	for c, size := range res.Sizes {
		if size != 50 {
			t.Fatalf("cluster %d has %d points, want 50", c, size)
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	points, _ := blobs(rng, []Point{{0, 0}, {50, 50}}, 30, 5)
	a, err := KMeans(points, 2, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, 2, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed, different clustering")
		}
	}
}

func TestKMeansClampsAndErrors(t *testing.T) {
	if _, err := KMeans(nil, 2, 1, 0); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := KMeans([]Point{{1, 2}, {1}}, 2, 1, 0); err == nil {
		t.Error("ragged input accepted")
	}
	// k > n clamps to n.
	res, err := KMeans([]Point{{1}, {2}}, 5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 2 {
		t.Fatalf("k not clamped: %d centers", len(res.Centers))
	}
	// k < 1 clamps to 1.
	res, err = KMeans([]Point{{1}, {2}, {3}}, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 1 || res.Sizes[0] != 3 {
		t.Fatalf("k=1 clustering wrong: %+v", res)
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	points := []Point{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	res, err := KMeans(points, 2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Fatalf("inertia %v on identical points", res.Inertia)
	}
}

func TestKMeansInvariantsProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		d := 1 + rng.Intn(3)
		points := make([]Point, n)
		for i := range points {
			p := make(Point, d)
			for j := range p {
				p[j] = rng.Float64() * 100
			}
			points[i] = p
		}
		k := 1 + rng.Intn(5)
		res, err := KMeans(points, k, seed, 0)
		if err != nil {
			return false
		}
		// Assignments in range, sizes add up, every point is assigned to
		// its (weakly) nearest center, inertia non-negative.
		total := 0
		for _, s := range res.Sizes {
			total += s
		}
		if total != n {
			return false
		}
		for i, p := range points {
			c := res.Assign[i]
			if c < 0 || c >= len(res.Centers) {
				return false
			}
			own := sqDist(p, res.Centers[c])
			for _, center := range res.Centers {
				if sqDist(p, center) < own-1e-9 {
					return false
				}
			}
		}
		return res.Inertia >= 0 && !math.IsNaN(res.Inertia)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
