package core

import (
	"context"
	"errors"
	"sort"

	"github.com/ebsnlab/geacc/internal/obs"
)

// ErrNodeLimit is returned when an exact search exceeds its node budget.
var ErrNodeLimit = errors.New("core: exact search exceeded node limit")

// SearchStats instruments an exact search run; Figure 6 of the paper plots
// exactly these quantities for Prune-GEACC versus unpruned exhaustive search.
type SearchStats struct {
	// Invocations counts calls of the Search recursion (Fig. 6d).
	Invocations int64
	// CompleteSearches counts recursions that reached the maximum depth and
	// produced a complete matching (Fig. 6c).
	CompleteSearches int64
	// Prunes counts bound-based cutoffs (zero for exhaustive search).
	Prunes int64
	// PrunedDepthSum accumulates the depth at which each prune fired;
	// PrunedDepthSum/Prunes is the averaged pruned depth of Fig. 6a.
	PrunedDepthSum int64
	// MaxDepth is the deepest possible recursion, |V|·|U| (the dashed lines
	// of Fig. 6a).
	MaxDepth int
}

// AvgPrunedDepth returns the mean recursion depth at which pruning fired,
// or 0 if no prune happened.
func (s SearchStats) AvgPrunedDepth() float64 {
	if s.Prunes == 0 {
		return 0
	}
	return float64(s.PrunedDepthSum) / float64(s.Prunes)
}

// ExactOptions configures the exact search.
type ExactOptions struct {
	// DisablePruning turns off the Lemma 6 bound, yielding the paper's
	// "exhaustive search without pruning" baseline (capacity and conflict
	// feasibility checks remain — they define the search tree itself).
	DisablePruning bool
	// DisableWarmStart skips seeding the best matching with Greedy-GEACC
	// (Algorithm 3 line 1 runs Greedy first; disable to measure its effect).
	DisableWarmStart bool
	// NodeLimit bounds Search invocations; 0 means unlimited. When the
	// limit trips, ErrNodeLimit is returned along with the best matching
	// found so far (no longer guaranteed optimal).
	NodeLimit int64
	// Ctx, when non-nil, cancels the search: it is checked on entry and
	// then every exactCtxStride node expansions. A canceled search returns
	// ctx's error (and, like every non-ErrNodeLimit error, a nil matching).
	Ctx context.Context
	// TightBound replaces the paper's per-event potential s_v·c_v (the 1-NN
	// similarity times the full capacity) with the sum of the event's c_v
	// largest similarities — still an upper bound on the event's possible
	// contribution (it ignores user capacities and conflicts, exactly like
	// the paper's bound), but never larger than s_v·c_v. The optimum is
	// unchanged. Because L is ordered by the potential, the flag also
	// changes the enumeration order: node counts usually drop sharply
	// (BenchmarkPruneBounds measures ~2× on aggregate, up to ~100× on
	// single instances) but can occasionally rise on unlucky orders.
	TightBound bool
}

// exactCtxStride is how many Search invocations run between cancellation
// polls of ExactOptions.Ctx.
const exactCtxStride = 4096

// Exact runs Prune-GEACC (Algorithms 3 and 4 of the paper): branch-and-bound
// over the match/unmatch state of every pair, in the order of events sorted
// by s_v·c_v and, within an event, users by non-increasing similarity. The
// bound of Lemma 6 prunes subtrees that cannot beat the best matching found
// so far, which is seeded by Greedy-GEACC. The returned matching is optimal.
func Exact(in *Instance) (*Matching, SearchStats, error) {
	return ExactOpts(in, ExactOptions{})
}

// ExactOpts runs the exact search with explicit options.
func ExactOpts(in *Instance, opt ExactOptions) (*Matching, SearchStats, error) {
	exactRuns.Inc()
	nv, nu := in.NumEvents(), in.NumUsers()
	if opt.Ctx != nil {
		if err := opt.Ctx.Err(); err != nil {
			return nil, SearchStats{MaxDepth: nv * nu}, err
		}
	}
	st := &searchState{
		in:    in,
		opt:   opt,
		stats: SearchStats{MaxDepth: nv * nu},
	}
	if nv == 0 || nu == 0 {
		return NewMatching(), st.stats, nil
	}
	rec := obs.RecorderFrom(opt.Ctx)
	sp := rec.Start("exact/prep")

	// Precompute the similarity matrix and, per event, users in
	// non-increasing similarity order (the event's NN list). The matrix is
	// carved out of one pooled flat buffer: every cell is written by the
	// row scans below, and the search never hands simMat rows to the
	// returned Matching, so the buffer can go back to the pool on return.
	simFlat := acquireFloats(nv * nu)
	defer releaseFloats(simFlat)
	st.simMat = make([][]float64, nv)
	st.nn = make([][]int, nv)
	for v := 0; v < nv; v++ {
		st.simMat[v] = simFlat[v*nu : (v+1)*nu : (v+1)*nu]
		in.similarityRow(v, st.simMat[v])
		order := make([]int, nu)
		for u := range order {
			order[u] = u
		}
		row := st.simMat[v]
		sort.Slice(order, func(i, j int) bool {
			if row[order[i]] != row[order[j]] {
				return row[order[i]] > row[order[j]]
			}
			return order[i] < order[j]
		})
		st.nn[v] = order
	}

	// L: events in non-increasing s_v·c_v order (Algorithm 3 line 5),
	// where s_v is the similarity to the event's first NN. With TightBound,
	// the per-event potential is the sum of its c_v best similarities
	// instead (≤ s_v·c_v, still an upper bound on its contribution).
	st.weight = make([]float64, nv)
	for v := 0; v < nv; v++ {
		if opt.TightBound {
			top := in.Events[v].Cap
			if top > nu {
				top = nu
			}
			for j := 0; j < top; j++ {
				st.weight[v] += st.simMat[v][st.nn[v][j]]
			}
		} else {
			st.weight[v] = st.simMat[v][st.nn[v][0]] * float64(in.Events[v].Cap)
		}
	}
	st.order = make([]int, nv)
	for v := range st.order {
		st.order[v] = v
	}
	sort.Slice(st.order, func(i, j int) bool {
		if st.weight[st.order[i]] != st.weight[st.order[j]] {
			return st.weight[st.order[i]] > st.weight[st.order[j]]
		}
		return st.order[i] < st.order[j]
	})

	// Algorithm 3 line 6: sum_remain over L[1:].
	for i := 1; i < nv; i++ {
		st.sumRemain += st.weight[st.order[i]]
	}

	st.capV = make([]int, nv)
	st.capU = make([]int, nu)
	for v, e := range in.Events {
		st.capV[v] = e.Cap
	}
	for u, usr := range in.Users {
		st.capU[u] = usr.Cap
	}
	st.userEvents = make([][]int, nu)
	sp.End()

	// Algorithm 3 line 1: seed the best matching with Greedy-GEACC so the
	// bound prunes from the very beginning.
	if opt.DisableWarmStart {
		st.best = NewMatching()
		st.bestSum = -1 // any matching (even empty) improves on this
	} else {
		sp = rec.Start("exact/warmstart")
		st.best = Greedy(in)
		st.bestSum = st.best.MaxSum()
		sp.Annotate("seed_max_sum", st.bestSum).End()
	}

	sp = rec.Start("exact/search")
	err := st.search(0, 1)
	sp.Annotate("nodes", st.stats.Invocations).
		Annotate("prunes", st.stats.Prunes).
		Annotate("complete", st.stats.CompleteSearches).End()
	exactNodes.Add(st.stats.Invocations)
	exactPrunes.Add(st.stats.Prunes)
	exactComplete.Add(st.stats.CompleteSearches)
	if err != nil && !errors.Is(err, ErrNodeLimit) {
		return nil, st.stats, err
	}
	return st.best, st.stats, err
}

type searchState struct {
	in    *Instance
	opt   ExactOptions
	stats SearchStats

	simMat [][]float64
	nn     [][]int   // nn[v][j] = the (j+1)-th NN of event v
	weight []float64 // s_v · c_v
	order  []int     // L: event ids in non-increasing weight order

	capV, capU []int
	userEvents [][]int // current partial matching, per user
	current    []Assignment
	currentSum float64
	sumRemain  float64

	best    *Matching
	bestSum float64
}

// depth is the enumeration position of pair (vIdx, uRank): the paper's
// recursion depth, in [1, |V|·|U|].
func (st *searchState) depth(vIdx, uRank int) int64 {
	return int64(vIdx)*int64(st.in.NumUsers()) + int64(uRank)
}

// search enumerates the matched and unmatched states of the pair formed by
// the vIdx-th event of L and its uRank-th NN (Algorithm 4; vIdx is 0-based
// here, uRank 1-based as in the paper).
func (st *searchState) search(vIdx, uRank int) error {
	st.stats.Invocations++
	if st.opt.NodeLimit > 0 && st.stats.Invocations > st.opt.NodeLimit {
		return ErrNodeLimit
	}
	if st.opt.Ctx != nil && st.stats.Invocations%exactCtxStride == 0 {
		if err := st.opt.Ctx.Err(); err != nil {
			return err
		}
	}
	v := st.order[vIdx]
	u := st.nn[v][uRank-1]
	s := st.simMat[v][u]

	// Matched state (lines 3-19). A pair is assignable when both sides have
	// remaining capacity, the similarity is positive (Definition 5), and v
	// does not conflict with u's currently matched events.
	if st.capV[v] > 0 && st.capU[u] > 0 && s > 0 && !st.conflicts(v, u) {
		st.capV[v]--
		st.capU[u]--
		st.userEvents[u] = append(st.userEvents[u], v)
		st.current = append(st.current, Assignment{V: v, U: u, Sim: s})
		st.currentSum += s

		if err := st.continueFrom(vIdx, uRank); err != nil {
			return err
		}

		st.currentSum -= s
		st.current = st.current[:len(st.current)-1]
		st.userEvents[u] = st.userEvents[u][:len(st.userEvents[u])-1]
		st.capU[u]++
		st.capV[v]++
	}

	// Unmatched state (line 20).
	return st.continueFrom(vIdx, uRank)
}

// continueFrom advances the enumeration past pair (vIdx, uRank), applying
// the Lemma 6 bound before each descent (Algorithm 4 lines 6-17).
func (st *searchState) continueFrom(vIdx, uRank int) error {
	nv, nu := st.in.NumEvents(), st.in.NumUsers()
	v := st.order[vIdx]
	if uRank == nu || st.capV[v] == 0 {
		// Move to the next event in L.
		if vIdx == nv-1 {
			st.stats.CompleteSearches++
			if st.currentSum > st.bestSum {
				st.snapshotBest()
			}
			return nil
		}
		if !st.opt.DisablePruning && st.currentSum+st.sumRemain <= st.bestSum {
			st.stats.Prunes++
			st.stats.PrunedDepthSum += st.depth(vIdx+1, 1)
			return nil
		}
		next := st.order[vIdx+1]
		st.sumRemain -= st.weight[next]
		err := st.search(vIdx+1, 1)
		st.sumRemain += st.weight[next]
		return err
	}
	// Move to the event's next NN.
	uNext := st.nn[v][uRank]
	bound := st.currentSum + st.sumRemain + st.simMat[v][uNext]*float64(st.capV[v])
	if !st.opt.DisablePruning && bound <= st.bestSum {
		st.stats.Prunes++
		st.stats.PrunedDepthSum += st.depth(vIdx, uRank+1)
		return nil
	}
	return st.search(vIdx, uRank+1)
}

func (st *searchState) conflicts(v, u int) bool {
	if st.in.Conflicts == nil {
		return false
	}
	return st.in.Conflicts.ConflictsWithAny(v, st.userEvents[u])
}

func (st *searchState) snapshotBest() {
	best := NewMatching()
	for _, p := range st.current {
		best.Add(p.V, p.U, p.Sim)
	}
	st.best = best
	st.bestSum = best.MaxSum()
}
