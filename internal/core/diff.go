package core

import "sort"

// MatchingDiff describes how arrangement b differs from arrangement a.
// Platforms use it to notify users after a rebalance: who gained an event,
// who lost one.
type MatchingDiff struct {
	// Added pairs appear in b but not a; Removed pairs appear in a but not
	// b. Both are sorted by (V, U).
	Added   []Assignment
	Removed []Assignment
	// Gain = MaxSum(b) − MaxSum(a).
	Gain float64
}

// Empty reports whether the two arrangements are identical.
func (d MatchingDiff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0
}

// AffectedUsers returns the users whose itinerary changed, ascending.
func (d MatchingDiff) AffectedUsers() []int {
	seen := map[int]bool{}
	for _, p := range d.Added {
		seen[p.U] = true
	}
	for _, p := range d.Removed {
		seen[p.U] = true
	}
	users := make([]int, 0, len(seen))
	for u := range seen {
		users = append(users, u)
	}
	sort.Ints(users)
	return users
}

// Diff computes the change set from a to b.
func Diff(a, b *Matching) MatchingDiff {
	d := MatchingDiff{Gain: b.MaxSum() - a.MaxSum()}
	for _, p := range b.SortedPairs() {
		if !a.Contains(p.V, p.U) {
			d.Added = append(d.Added, p)
		}
	}
	for _, p := range a.SortedPairs() {
		if !b.Contains(p.V, p.U) {
			d.Removed = append(d.Removed, p)
		}
	}
	return d
}
