package core

import (
	"context"
	"math"
	"sync"
	"time"

	"github.com/ebsnlab/geacc/internal/mincostflow"
	"github.com/ebsnlab/geacc/internal/obs"
)

// Warm-started MinCostFlow-GEACC. A dirty-component rebalance re-solves a
// sub-instance that differs from the last solve of the same component by a
// handful of entities. The cold path rebuilds every arc from fresh
// similarity rows and re-pushes the whole flow from zero; the warm path
// keeps a FlowState per component — similarity rows, node potentials, and
// the flow support, all in parent-id space — and on the next solve
//
//   - reuses rows for surviving events (only arcs whose endpoints the delta
//     touched are re-derived; attrs are immutable and the kernels are
//     deterministic, so reused entries are bit-identical to recomputation),
//   - force-restores the surviving flow units onto the new network, and
//   - repairs optimality with mincostflow.WarmStart + RetreatAbove instead
//     of re-running the full augmentation sweep.
//
// Every reuse step is guarded by id-membership and residual-capacity
// checks, so a stale or partial state degrades performance, never
// correctness; anything the warm repair cannot handle falls back cold
// (ClearFlow + Reset) on the same network. Row reuse additionally relies on
// one system invariant: an entity id is never rebound to different attrs
// (the arranger tombstones on remove/cancel and appends on add), so a
// stored (event id, user id) similarity is a permanent fact. The stopping rule is the cold
// one — keep a unit iff its marginal cost is < 1 — so Delta, the relaxed
// matching, MaxSum, and the final matching are bit-exact vs the cold path.

// FlowState is the reusable snapshot of one component's relaxed-optimum
// solve, keyed entirely by parent-instance entity ids so it survives
// component renumbering across decompositions.
type FlowState struct {
	events []int       // parent event ids, in sub-instance order
	users  []int       // parent user ids, in sub-instance order
	rows   [][]float64 // rows[i][j] = sim(events[i], users[j])
	pot    []float64   // node potentials in the solve's node layout
	pairs  [][2]int    // (event, user) parent-id pairs carrying flow, sim-0 included
}

// WarmCache holds FlowStates for a long-lived instance's components, keyed
// by the component's anchor (its smallest parent event id — stable across
// renumbering; after a merge the anchor component's state still restores
// partially). Bounded, least-recently-used eviction.
type WarmCache struct {
	mu      sync.Mutex
	max     int
	entries map[int]*FlowState
	order   []int // LRU order, least recent first
}

// DefaultWarmCacheEntries bounds a WarmCache when the caller passes <= 0.
const DefaultWarmCacheEntries = 256

// NewWarmCache returns a WarmCache holding at most max states (<= 0 means
// DefaultWarmCacheEntries).
func NewWarmCache(max int) *WarmCache {
	if max <= 0 {
		max = DefaultWarmCacheEntries
	}
	return &WarmCache{max: max, entries: make(map[int]*FlowState)}
}

func (wc *WarmCache) get(anchor int) *FlowState {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	st := wc.entries[anchor]
	if st != nil {
		wc.touch(anchor)
	}
	return st
}

func (wc *WarmCache) put(anchor int, st *FlowState) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if _, ok := wc.entries[anchor]; ok {
		wc.entries[anchor] = st
		wc.touch(anchor)
		return
	}
	for len(wc.entries) >= wc.max && len(wc.order) > 0 {
		delete(wc.entries, wc.order[0])
		wc.order = wc.order[1:]
	}
	wc.entries[anchor] = st
	wc.order = append(wc.order, anchor)
}

// touch moves anchor to the most-recent end; wc.mu must be held.
func (wc *WarmCache) touch(anchor int) {
	for i, a := range wc.order {
		if a == anchor {
			wc.order = append(append(wc.order[:i:i], wc.order[i+1:]...), anchor)
			return
		}
	}
}

// Len returns the number of cached component states.
func (wc *WarmCache) Len() int {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return len(wc.entries)
}

// MinCostFlowWarmCtx runs MinCostFlow-GEACC on a component sub-instance,
// consulting and refreshing wc. events and users are the component's parent
// ids in sub-instance order (decomp.Component's Events/Users). A nil cache
// or an id-length mismatch degrades to the cold path. Results are bit-exact
// vs MinCostFlowCtx.
func MinCostFlowWarmCtx(ctx context.Context, in *Instance, events, users []int, wc *WarmCache) (*Matching, error) {
	start := time.Now()
	sp := obs.RecorderFrom(ctx).Start("solve/mincostflow-warm")
	sp.Annotate("events", int64(in.NumEvents()))
	sp.Annotate("users", int64(in.NumUsers()))
	res, err := minCostFlowWarmCtx(ctx, in, events, users, wc)
	sp.End()
	observeSolve("mincostflow", time.Since(start), err)
	if err != nil {
		return nil, err
	}
	return res.Matching, nil
}

func minCostFlowWarmCtx(ctx context.Context, in *Instance, events, users []int, wc *WarmCache) (*FlowResult, error) {
	warmable := wc != nil && len(events) == in.NumEvents() && len(users) == in.NumUsers() && len(events) > 0
	var prev *FlowState
	if warmable {
		mcflowWarmAttempts.Inc()
		prev = wc.get(componentAnchor(events))
	}
	sp := obs.RecorderFrom(ctx).Start("mincostflow/relax")
	res, st, err := relaxedOptimumWarm(ctx, in, events, users, prev, warmable)
	sp.End()
	if err != nil {
		return nil, err
	}
	if warmable && st != nil {
		wc.put(componentAnchor(events), st)
	}
	sp = obs.RecorderFrom(ctx).Start("mincostflow/resolve")
	res.Matching = resolveConflicts(in, res.Relaxed)
	sp.End()
	return res, nil
}

// componentAnchor is the smallest parent event id of a component.
func componentAnchor(events []int) int {
	anchor := events[0]
	for _, e := range events[1:] {
		if e < anchor {
			anchor = e
		}
	}
	return anchor
}

// relaxedOptimumWarm is relaxedOptimumCtx with state capture and optional
// warm start from a previous FlowState. It mirrors the cold function's
// network layout, augmentation rule, and readback order exactly.
func relaxedOptimumWarm(ctx context.Context, in *Instance, events, users []int, prev *FlowState, capture bool) (*FlowResult, *FlowState, error) {
	mcflowRuns.Inc()
	nv, nu := in.NumEvents(), in.NumUsers()
	res := &FlowResult{Relaxed: NewMatching()}
	if nv == 0 || nu == 0 {
		return res, nil, nil
	}

	s := 0
	eventNode := func(v int) int { return 1 + v }
	userNode := func(u int) int { return 1 + nv + u }
	t := 1 + nv + nu

	g := mincostflow.AcquireGraph(nv + nu + 2)
	defer mincostflow.ReleaseGraph(g)
	g.Grow(nv + nu + nv*nu)
	for v, e := range in.Events {
		g.AddArc(s, eventNode(v), int64(e.Cap), 0)
	}
	for u, usr := range in.Users {
		g.AddArc(userNode(u), t, int64(usr.Cap), 0)
	}

	// Similarity rows, gathered from the previous state where the event
	// survived (bit-identical: attrs are immutable, kernels deterministic)
	// and batch-computed otherwise. Rows are owned by the new FlowState, so
	// they are allocated fresh, not pooled.
	var oldEventRow, oldUserCol map[int]int
	if prev != nil {
		oldEventRow = make(map[int]int, len(prev.events))
		for i, e := range prev.events {
			oldEventRow[e] = i
		}
		oldUserCol = make(map[int]int, len(prev.users))
		for j, u := range prev.users {
			oldUserCol[u] = j
		}
	}
	rows := make([][]float64, nv)
	for v := 0; v < nv; v++ {
		row := make([]float64, nu)
		reused := false
		if prev != nil && capture {
			if ov, ok := oldEventRow[events[v]]; ok {
				oldRow := prev.rows[ov]
				for u := 0; u < nu; u++ {
					if oc, ok := oldUserCol[users[u]]; ok {
						row[u] = oldRow[oc]
					} else {
						row[u] = in.Similarity(v, u)
					}
				}
				reused = true
			}
		}
		if !reused {
			in.similarityRow(v, row)
		}
		rows[v] = row
	}
	scratch := acquireMcflowScratch(nv, nu)
	defer releaseMcflowScratch(scratch)
	pairArc := scratch.pairArc
	for v := 0; v < nv; v++ {
		for u := 0; u < nu; u++ {
			pairArc[v*nu+u] = g.AddArc(eventNode(v), userNode(u), 1, 1-rows[v][u])
		}
	}

	// Restore the previous flow support where both endpoints survived and
	// residual capacity allows (a delta may have shrunk caps).
	warm := false
	var potInit []float64
	if prev != nil && capture {
		newEventIdx := make(map[int]int, nv)
		for v, e := range events {
			newEventIdx[e] = v
		}
		newUserIdx := make(map[int]int, nu)
		for u, id := range users {
			newUserIdx[id] = u
		}
		var restored int64
		for _, p := range prev.pairs {
			v, okv := newEventIdx[p[0]]
			u, oku := newUserIdx[p[1]]
			if !okv || !oku {
				continue
			}
			srcA := mincostflow.ArcID(2 * v)
			sinkA := mincostflow.ArcID(2 * (nv + u))
			pa := pairArc[v*nu+u]
			if g.Residual(srcA) > 0 && g.Residual(pa) > 0 && g.Residual(sinkA) > 0 {
				g.PushFlow(srcA, 1)
				g.PushFlow(pa, 1)
				g.PushFlow(sinkA, 1)
				restored++
			}
		}
		if restored > 0 {
			warm = true
			potInit = make([]float64, nv+nu+2)
			onv, onu := len(prev.events), len(prev.users)
			potInit[s] = prev.pot[0]
			potInit[t] = prev.pot[onv+onu+1]
			for v, e := range events {
				if ov, ok := oldEventRow[e]; ok {
					potInit[eventNode(v)] = prev.pot[1+ov]
				}
			}
			for u, id := range users {
				if oc, ok := oldUserCol[id]; ok {
					potInit[userNode(u)] = prev.pot[1+onv+oc]
				}
			}
		}
	}

	sv := mincostflow.AcquireSolver(g, s, t)
	defer mincostflow.ReleaseSolver(sv)
	if warm {
		ws := sv.WarmStart(g, s, t, potInit)
		if !ws.OK {
			mcflowWarmColdFallbacks.Inc()
			g.ClearFlow()
			sv.Reset(g, s, t)
			warm = false
		} else {
			mcflowWarmHits.Inc()
			mcflowWarmRestoredUnits.Add(ws.RestoredFlow)
			// Retreat: drop restored units whose marginal cost reached 1 —
			// units the cold sweep would never have pushed.
			for {
				if err := ctx.Err(); err != nil {
					return nil, nil, err
				}
				if _, ok := sv.RetreatAbove(1); !ok {
					break
				}
			}
		}
	}

	var augmentations int64
	for {
		if err := ctx.Err(); err != nil {
			mcflowAugmentations.Add(augmentations)
			return nil, nil, err
		}
		if _, _, ok := sv.AugmentBelow(math.MaxInt64, 1); !ok {
			break
		}
		augmentations++
	}
	mcflowAugmentations.Add(augmentations)
	res.Delta = sv.TotalFlow()
	mcflowDeltaUnits.Add(res.Delta)

	var st *FlowState
	if capture {
		st = &FlowState{
			events: append([]int(nil), events...),
			users:  append([]int(nil), users...),
			rows:   rows,
			pot:    sv.Potentials(nil),
		}
	}
	for v := 0; v < nv; v++ {
		row := rows[v]
		for u := 0; u < nu; u++ {
			if g.Flow(pairArc[v*nu+u]) != 1 {
				continue
			}
			if sim := row[u]; sim > 0 {
				res.Relaxed.Add(v, u, sim)
			}
			if st != nil {
				// The state keeps sim-0 flow pairs too: they carry real
				// flow units the restore phase must reproduce.
				st.pairs = append(st.pairs, [2]int{events[v], users[u]})
			}
		}
	}
	res.RelaxedMaxSum = res.Relaxed.MaxSum()
	return res, st, nil
}
