package core

import (
	"fmt"
	"sort"
)

// Assignment is one matched (event, user) pair together with its
// interestingness value.
type Assignment struct {
	V   int
	U   int
	Sim float64
}

// Matching is an event-participant arrangement M. It accumulates MaxSum(M)
// incrementally and maintains per-user and per-event views used by the
// algorithms and the validator.
type Matching struct {
	pairs      []Assignment
	maxSum     float64
	userEvents map[int][]int // u -> matched events, in insertion order
	eventUsers map[int][]int // v -> matched users, in insertion order
}

// NewMatching returns an empty arrangement.
func NewMatching() *Matching {
	return &Matching{
		userEvents: make(map[int][]int),
		eventUsers: make(map[int][]int),
	}
}

// Add records m(v, u) = 1 with the given similarity. It panics on duplicate
// pairs: every algorithm in this package must add a pair at most once.
func (m *Matching) Add(v, u int, s float64) {
	if m.Contains(v, u) {
		panic(fmt.Sprintf("core: pair (%d, %d) added twice", v, u))
	}
	m.pairs = append(m.pairs, Assignment{V: v, U: u, Sim: s})
	m.maxSum += s
	m.userEvents[u] = append(m.userEvents[u], v)
	m.eventUsers[v] = append(m.eventUsers[v], u)
}

// Contains reports whether m(v, u) = 1.
func (m *Matching) Contains(v, u int) bool {
	for _, w := range m.userEvents[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Size returns |M|, the number of matched pairs.
func (m *Matching) Size() int { return len(m.pairs) }

// MaxSum returns MaxSum(M) = Σ m(v,u)·sim(l_v, l_u), the objective of
// Definition 5.
func (m *Matching) MaxSum() float64 { return m.maxSum }

// Pairs returns the assignments in insertion order. The slice is owned by
// the matching; callers must not modify it.
func (m *Matching) Pairs() []Assignment { return m.pairs }

// SortedPairs returns the assignments sorted by (V, U), independent of
// insertion order — convenient for comparisons and stable output.
func (m *Matching) SortedPairs() []Assignment {
	out := append([]Assignment(nil), m.pairs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].V != out[j].V {
			return out[i].V < out[j].V
		}
		return out[i].U < out[j].U
	})
	return out
}

// UserEvents returns the events user u is arranged to, in insertion order.
// The slice is owned by the matching.
func (m *Matching) UserEvents(u int) []int { return m.userEvents[u] }

// EventUsers returns the users arranged to event v, in insertion order.
// The slice is owned by the matching.
func (m *Matching) EventUsers(v int) []int { return m.eventUsers[v] }

// Clone returns an independent copy of the matching.
func (m *Matching) Clone() *Matching {
	c := NewMatching()
	for _, p := range m.pairs {
		c.Add(p.V, p.U, p.Sim)
	}
	return c
}

// Validate checks that m is a feasible arrangement for in per Definition 5:
// indices in range, similarities positive and consistent with the instance,
// no pair assigned twice, event and user capacities respected, and no user
// assigned to two conflicting events.
func Validate(in *Instance, m *Matching) error {
	eventLoad := make([]int, in.NumEvents())
	userLoad := make([]int, in.NumUsers())
	for _, p := range m.pairs {
		if p.V < 0 || p.V >= in.NumEvents() || p.U < 0 || p.U >= in.NumUsers() {
			return fmt.Errorf("core: pair (%d, %d) out of range", p.V, p.U)
		}
		want := in.Similarity(p.V, p.U)
		if p.Sim != want {
			return fmt.Errorf("core: pair (%d, %d) stores sim %v, instance says %v", p.V, p.U, p.Sim, want)
		}
		if p.Sim <= 0 {
			return fmt.Errorf("core: pair (%d, %d) has non-positive similarity %v", p.V, p.U, p.Sim)
		}
		eventLoad[p.V]++
		userLoad[p.U]++
	}
	for v, load := range eventLoad {
		if load > in.Events[v].Cap {
			return fmt.Errorf("core: event %d over capacity: %d > %d", v, load, in.Events[v].Cap)
		}
	}
	for u, load := range userLoad {
		if load > in.Users[u].Cap {
			return fmt.Errorf("core: user %d over capacity: %d > %d", u, load, in.Users[u].Cap)
		}
	}
	for u, events := range m.userEvents {
		seen := make(map[int]bool, len(events))
		for _, v := range events {
			if seen[v] {
				return fmt.Errorf("core: pair (%d, %d) assigned twice", v, u)
			}
			seen[v] = true
		}
		for i := 0; i < len(events); i++ {
			for j := i + 1; j < len(events); j++ {
				if in.Conflicting(events[i], events[j]) {
					return fmt.Errorf("core: user %d assigned to conflicting events %d and %d",
						u, events[i], events[j])
				}
			}
		}
	}
	return nil
}
