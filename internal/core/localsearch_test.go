package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ebsnlab/geacc/internal/conflict"
)

func TestLocalSearchNeverWorseAndFeasible(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randMatrixInstance(rng, 2+rng.Intn(4), 2+rng.Intn(8), 3, 3, rng.Float64())
		for _, start := range []*Matching{
			RandomV(in, rand.New(rand.NewSource(seed+1))),
			Greedy(in),
			NewMatching(),
		} {
			improved, stats, err := LocalSearch(in, start, LocalSearchOptions{})
			if err != nil {
				return false
			}
			if improved.MaxSum() < start.MaxSum()-1e-9 {
				return false
			}
			if stats.Gain < -1e-9 {
				return false
			}
			if Validate(in, improved) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestLocalSearchRejectsInfeasibleStart(t *testing.T) {
	in := table1Instance(t)
	bad := NewMatching()
	bad.Add(0, 0, 0.5) // wrong similarity
	if _, _, err := LocalSearch(in, bad, LocalSearchOptions{}); err == nil {
		t.Fatal("infeasible start accepted")
	}
}

func TestLocalSearchFillsEmptyStart(t *testing.T) {
	in := table1Instance(t)
	improved, stats, err := LocalSearch(in, NewMatching(), LocalSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if improved.Size() == 0 || stats.Additions == 0 {
		t.Fatal("local search added nothing from an empty start")
	}
	// From empty, additions + exchanges should reach a decent fraction of
	// the known optimum 4.39.
	if improved.MaxSum() < 3.5 {
		t.Fatalf("local optimum %v surprisingly weak", improved.MaxSum())
	}
}

func TestLocalSearchImprovesRandomBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	in := randMatrixInstance(rng, 6, 20, 4, 3, 0.3)
	start := RandomV(in, rand.New(rand.NewSource(5)))
	improved, _, err := LocalSearch(in, start, LocalSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if improved.MaxSum() <= start.MaxSum() {
		t.Fatalf("no improvement over random start: %v vs %v", improved.MaxSum(), start.MaxSum())
	}
}

func TestLocalSearchConvergesToLocalOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	in := randMatrixInstance(rng, 4, 10, 3, 3, 0.4)
	first, _, err := LocalSearch(in, Greedy(in), LocalSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Running local search on its own output must be a fixed point.
	second, stats, err := LocalSearch(in, first, LocalSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Gain != 0 || second.MaxSum() != first.MaxSum() {
		t.Fatalf("not a fixed point: gain %v", stats.Gain)
	}
}

func TestLocalSearchRoundCap(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	in := randMatrixInstance(rng, 5, 15, 4, 3, 0.3)
	_, stats, err := LocalSearch(in, NewMatching(), LocalSearchOptions{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds > 1 {
		t.Fatalf("round cap ignored: %d rounds", stats.Rounds)
	}
}

func TestLocalSearchTwoSwapEscapesOneExchangeOptimum(t *testing.T) {
	// All capacities saturated so no add/replace move exists; only the
	// 2-swap can fix the crossed assignment. Start: (v0,u1)=0.5,
	// (v1,u0)=0.5. Optimal: (v0,u0)=0.9, (v1,u1)=0.9.
	in, err := NewMatrixInstance(
		[]Event{{Cap: 1}, {Cap: 1}},
		[]User{{Cap: 1}, {Cap: 1}},
		nil,
		[][]float64{{0.9, 0.5}, {0.5, 0.9}},
	)
	if err != nil {
		t.Fatal(err)
	}
	start := NewMatching()
	start.Add(0, 1, 0.5)
	start.Add(1, 0, 0.5)
	improved, stats, err := LocalSearch(in, start, LocalSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Swaps == 0 {
		t.Fatal("2-swap did not fire")
	}
	if abs(improved.MaxSum()-1.8) > 1e-9 {
		t.Fatalf("MaxSum = %v, want 1.8", improved.MaxSum())
	}
	if !improved.Contains(0, 0) || !improved.Contains(1, 1) {
		t.Fatalf("wrong pairs: %v", improved.SortedPairs())
	}
}

func TestLocalSearchTwoSwapRespectsConflicts(t *testing.T) {
	// The beneficial swap is forbidden: u0 already attends v2, which
	// conflicts with v1, so u0 cannot move onto v1.
	in, err := NewMatrixInstance(
		[]Event{{Cap: 1}, {Cap: 1}, {Cap: 1}},
		[]User{{Cap: 2}, {Cap: 1}},
		conflict.FromPairs(3, [][2]int{{0, 2}}),
		[][]float64{{0.9, 0.5}, {0.5, 0.9}, {0.6, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	start := NewMatching()
	start.Add(0, 1, 0.5) // v0-u1
	start.Add(1, 0, 0.5) // v1-u0
	start.Add(2, 0, 0.6) // v2-u0 (v2 conflicts v0)
	improved, _, err := LocalSearch(in, start, LocalSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(in, improved); err != nil {
		t.Fatal(err)
	}
	// The swap would need u0 on v0, conflicting with u0's v2.
	if improved.Contains(0, 0) {
		t.Fatal("conflicting swap applied")
	}
}

func TestLocalSearchBoundedByExactOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 20; trial++ {
		in := randMatrixInstance(rng, 1+rng.Intn(3), 1+rng.Intn(5), 3, 3, rng.Float64())
		improved, _, err := LocalSearch(in, Greedy(in), LocalSearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		opt := bruteForceOpt(in)
		if improved.MaxSum() > opt+1e-9 {
			t.Fatalf("local search exceeded the optimum: %v > %v", improved.MaxSum(), opt)
		}
	}
}
