package core

import (
	"fmt"
	"math"
)

// Budget extends GEACC with paid arrangements — the paper's introduction
// motivates global arrangement "especially when arrangements are paid".
// Each event charges an attendance price; each user has a spending budget
// across all their arranged events. The budget constraint is monotone
// (spending only grows), so Greedy-GEACC extends naturally through its
// Feasible hook; the approximation guarantee of Theorem 3 does not carry
// over (budgets add a knapsack flavor), but feasibility and termination do.
type Budget struct {
	// Prices[v] is the attendance price of event v (>= 0).
	Prices []float64
	// Budgets[u] is user u's total spending limit (>= 0).
	Budgets []float64
}

// Validate checks the budget's shape against an instance.
func (b *Budget) Validate(in *Instance) error {
	if len(b.Prices) != in.NumEvents() {
		return fmt.Errorf("core: %d prices for %d events", len(b.Prices), in.NumEvents())
	}
	if len(b.Budgets) != in.NumUsers() {
		return fmt.Errorf("core: %d budgets for %d users", len(b.Budgets), in.NumUsers())
	}
	for v, p := range b.Prices {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("core: event %d has invalid price %v", v, p)
		}
	}
	for u, l := range b.Budgets {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return fmt.Errorf("core: user %d has invalid budget %v", u, l)
		}
	}
	return nil
}

// Spend returns user u's total spending under matching m.
func (b *Budget) Spend(m *Matching, u int) float64 {
	var total float64
	for _, v := range m.UserEvents(u) {
		total += b.Prices[v]
	}
	return total
}

// ValidateBudgeted checks full feasibility: the GEACC constraints plus
// every user's spending within budget.
func ValidateBudgeted(in *Instance, b *Budget, m *Matching) error {
	if err := b.Validate(in); err != nil {
		return err
	}
	if err := Validate(in, m); err != nil {
		return err
	}
	for u := 0; u < in.NumUsers(); u++ {
		if spend := b.Spend(m, u); spend > b.Budgets[u]+1e-9 {
			return fmt.Errorf("core: user %d spends %v over budget %v", u, spend, b.Budgets[u])
		}
	}
	return nil
}

// BudgetedGreedy runs Greedy-GEACC with the additional budget constraint:
// a pair (v, u) is assignable only while u's remaining budget covers v's
// price. The result satisfies ValidateBudgeted.
func BudgetedGreedy(in *Instance, b *Budget) (*Matching, error) {
	return BudgetedGreedyOpts(in, b, GreedyOptions{})
}

// BudgetedGreedyOpts is BudgetedGreedy with explicit greedy options (the
// Feasible and Trace hooks are composed with the budget bookkeeping).
func BudgetedGreedyOpts(in *Instance, b *Budget, opt GreedyOptions) (*Matching, error) {
	if err := b.Validate(in); err != nil {
		return nil, err
	}
	remaining := append([]float64(nil), b.Budgets...)
	userFeasible := opt.Feasible
	opt.Feasible = func(v, u int) bool {
		if b.Prices[v] > remaining[u]+1e-12 {
			return false
		}
		return userFeasible == nil || userFeasible(v, u)
	}
	userTrace := opt.Trace
	opt.Trace = func(s TraceStep) {
		if s.Accepted {
			remaining[s.U] -= b.Prices[s.V]
		}
		if userTrace != nil {
			userTrace(s)
		}
	}
	m := GreedyOpts(in, opt)
	if err := ValidateBudgeted(in, b, m); err != nil {
		return nil, fmt.Errorf("core: budgeted greedy broke feasibility: %w", err)
	}
	return m, nil
}

// FreeBudget returns a budget that never binds (zero prices), for treating
// unpaid arrangements uniformly.
func FreeBudget(in *Instance) *Budget {
	return &Budget{
		Prices:  make([]float64, in.NumEvents()),
		Budgets: make([]float64, in.NumUsers()),
	}
}
