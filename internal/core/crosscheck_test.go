package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ebsnlab/geacc/internal/assignment"
)

// TestUnitCapacityNoConflictsEqualsHungarian cross-validates the min-cost
// flow reduction against an independently implemented Hungarian algorithm:
// with all capacities one and CF = ∅, GEACC *is* maximum-weight bipartite
// matching (Section II of the paper), so MinCostFlow-GEACC (exact on that
// special case by Lemma 1) must equal the Hungarian optimum.
func TestUnitCapacityNoConflictsEqualsHungarian(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv, nu := 1+rng.Intn(8), 1+rng.Intn(8)
		events := make([]Event, nv)
		for i := range events {
			events[i] = Event{Cap: 1}
		}
		users := make([]User, nu)
		for i := range users {
			users[i] = User{Cap: 1}
		}
		matrix := make([][]float64, nv)
		for v := range matrix {
			matrix[v] = make([]float64, nu)
			for u := range matrix[v] {
				if rng.Float64() < 0.2 {
					continue
				}
				matrix[v][u] = float64(1+rng.Intn(999)) / 1000
			}
		}
		in, err := NewMatrixInstance(events, users, nil, matrix)
		if err != nil {
			return false
		}
		geaccOpt := MinCostFlow(in).Matching.MaxSum()
		_, hungarianOpt, err := assignment.Solve(matrix)
		if err != nil {
			return false
		}
		return abs(geaccOpt-hungarianOpt) <= 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestUnitCapacityExactEqualsHungarian runs the same cross-check against
// Prune-GEACC.
func TestUnitCapacityExactEqualsHungarian(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		nv, nu := 1+rng.Intn(4), 1+rng.Intn(5)
		events := make([]Event, nv)
		for i := range events {
			events[i] = Event{Cap: 1}
		}
		users := make([]User, nu)
		for i := range users {
			users[i] = User{Cap: 1}
		}
		matrix := make([][]float64, nv)
		for v := range matrix {
			matrix[v] = make([]float64, nu)
			for u := range matrix[v] {
				matrix[v][u] = float64(rng.Intn(1000)) / 1000
			}
		}
		in, err := NewMatrixInstance(events, users, nil, matrix)
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := Exact(in)
		if err != nil {
			t.Fatal(err)
		}
		_, hungarianOpt, err := assignment.Solve(matrix)
		if err != nil {
			t.Fatal(err)
		}
		if abs(m.MaxSum()-hungarianOpt) > 1e-9 {
			t.Fatalf("trial %d: exact %v != hungarian %v", trial, m.MaxSum(), hungarianOpt)
		}
	}
}
