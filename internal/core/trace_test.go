package core

import (
	"math/rand"
	"testing"
)

// TestTable1TraceMatchesExample3 replays the paper's Example 3 walkthrough
// step by step from the trace hook.
func TestTable1TraceMatchesExample3(t *testing.T) {
	in := table1Instance(t)
	var steps []TraceStep
	m := GreedyOpts(in, GreedyOptions{Trace: func(s TraceStep) { steps = append(steps, s) }})
	if len(steps) == 0 {
		t.Fatal("no trace recorded")
	}
	// "In the first iteration, {v1, u1} is popped from H and added to the
	// matching."
	if s := steps[0]; s.V != 0 || s.U != 0 || !s.Accepted {
		t.Fatalf("step 1 = %+v, want accept (v1, u1)", s)
	}
	// "Then in the second iteration, we pop {v3, u1}. Note that v3
	// conflicts with v1, which is already matched to u1."
	if s := steps[1]; s.V != 2 || s.U != 0 || s.Accepted || s.Reason != "conflict" {
		t.Fatalf("step 2 = %+v, want conflict-reject (v3, u1)", s)
	}
	// "Then during the third iteration, {v1, u3} is popped from H, which
	// can be added to the matching."
	if s := steps[2]; s.V != 0 || s.U != 2 || !s.Accepted {
		t.Fatalf("step 3 = %+v, want accept (v1, u3)", s)
	}
	// The accepted steps must reconstruct the final matching exactly.
	rebuilt := NewMatching()
	for _, s := range steps {
		if s.Accepted {
			rebuilt.Add(s.V, s.U, s.Sim)
		}
	}
	if !matchingsEqual(rebuilt, m) {
		t.Fatal("trace does not reconstruct the matching")
	}
	// Pops arrive in non-increasing similarity (Corollary 2).
	for i := 1; i < len(steps); i++ {
		if steps[i].Sim > steps[i-1].Sim+1e-12 {
			t.Fatalf("pop order violated Corollary 2 at step %d", i)
		}
	}
}

func TestTraceReasonsAreClassified(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	in := randMatrixInstance(rng, 5, 12, 3, 2, 0.5)
	valid := map[string]bool{"": true, "event-full": true, "user-full": true, "conflict": true}
	GreedyOpts(in, GreedyOptions{Trace: func(s TraceStep) {
		if !valid[s.Reason] {
			t.Fatalf("unknown reason %q", s.Reason)
		}
		if s.Accepted != (s.Reason == "") {
			t.Fatalf("inconsistent step %+v", s)
		}
	}})
}

func TestTraceDoesNotChangeResult(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	in := randVectorInstance(rng, 5, 15, 3, 4, 3, 0.3)
	plain := Greedy(in)
	traced := GreedyOpts(in, GreedyOptions{Trace: func(TraceStep) {}})
	if !matchingsEqual(plain, traced) {
		t.Fatal("tracing changed the matching")
	}
}
