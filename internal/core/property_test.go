package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTheorem2MinCostFlowRatio checks MaxSum(M) ≥ MaxSum(M_OPT)/max c_u on
// random small instances, with the optimum from an independent brute force.
func TestTheorem2MinCostFlowRatio(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randMatrixInstance(rng, 1+rng.Intn(4), 1+rng.Intn(5), 3, 3, rng.Float64())
		opt := bruteForceOpt(in)
		got := MinCostFlow(in).Matching.MaxSum()
		alpha := float64(in.MaxUserCap())
		return got >= opt/alpha-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestTheorem3GreedyRatio checks MaxSum(M) ≥ MaxSum(M_OPT)/(1 + max c_u).
func TestTheorem3GreedyRatio(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randMatrixInstance(rng, 1+rng.Intn(4), 1+rng.Intn(5), 3, 3, rng.Float64())
		opt := bruteForceOpt(in)
		got := Greedy(in).MaxSum()
		alpha := float64(in.MaxUserCap())
		return got >= opt/(1+alpha)-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestCorollary1RelaxationUpperBounds checks MaxSum(M_OPT) ≤ MaxSum(M∅).
func TestCorollary1RelaxationUpperBounds(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randMatrixInstance(rng, 1+rng.Intn(4), 1+rng.Intn(4), 3, 3, rng.Float64())
		return RelaxedUpperBound(in) >= bruteForceOpt(in)-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestExactMatchesBruteForce cross-checks Prune-GEACC against the
// independent per-user-subset brute force.
func TestExactMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randMatrixInstance(rng, 1+rng.Intn(4), 1+rng.Intn(5), 3, 3, rng.Float64())
		m, _, err := Exact(in)
		if err != nil {
			return false
		}
		if Validate(in, m) != nil {
			return false
		}
		opt := bruteForceOpt(in)
		return abs(m.MaxSum()-opt) <= 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestAllSolversProduceFeasibleMatchings is the master feasibility property:
// every algorithm's output passes Validate on random vector instances.
func TestAllSolversProduceFeasibleMatchings(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randVectorInstance(rng, 2+rng.Intn(5), 2+rng.Intn(8), 1+rng.Intn(4), 3, 3, rng.Float64())
		for name, solve := range Solvers() {
			m := solve(in, rng)
			if err := Validate(in, m); err != nil {
				t.Logf("solver %s: %v", name, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestNoConflictsMinCostFlowIsOptimal: with CF = ∅, MinCostFlow-GEACC is
// exact (Lemma 1), so it must equal brute force and dominate Greedy.
func TestNoConflictsMinCostFlowIsOptimal(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randMatrixInstance(rng, 1+rng.Intn(4), 1+rng.Intn(5), 3, 3, 0)
		opt := bruteForceOpt(in)
		res := MinCostFlow(in)
		if abs(res.Matching.MaxSum()-opt) > 1e-9 {
			return false
		}
		return Greedy(in).MaxSum() <= opt+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestGreedyIndexAblation: every NN index yields the same greedy MaxSum on
// vector instances (the matching is determined by the similarity order, not
// by the index implementation).
func TestGreedyIndexAblation(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randVectorInstance(rng, 2+rng.Intn(6), 2+rng.Intn(10), 1+rng.Intn(3), 4, 3, rng.Float64())
		base := GreedyOpts(in, GreedyOptions{Index: IndexSorted}).MaxSum()
		for _, kind := range []IndexKind{IndexChunked, IndexKDTree, IndexIDistance, IndexVAFile, IndexParallel} {
			got := GreedyOpts(in, GreedyOptions{Index: kind}).MaxSum()
			if abs(got-base) > 1e-9 {
				t.Logf("index %v: MaxSum %v, sorted %v", kind, got, base)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
