package core

import (
	"math/rand"
	"testing"
)

// TestGreedyWithLSHFeasibleAndClose: the approximate index must still yield
// feasible matchings, and on dense instances the quality loss versus the
// exact indexes stays modest.
func TestGreedyWithLSHFeasibleAndClose(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 10; trial++ {
		in := randVectorInstance(rng, 5, 60, 2, 8, 3, 0.3) // low-dim: LSH territory
		approx := GreedyOpts(in, GreedyOptions{Index: IndexLSH})
		mustValidate(t, in, approx, "greedy-lsh")
		// Greedy is itself a heuristic, so a scrambled candidate order can
		// land above OR below the exact-index result; only a collapse in
		// quality indicates a broken index.
		exact := Greedy(in)
		if approx.MaxSum() < 0.5*exact.MaxSum() {
			t.Fatalf("trial %d: LSH quality collapsed: %v vs %v",
				trial, approx.MaxSum(), exact.MaxSum())
		}
	}
}
