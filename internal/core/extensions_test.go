package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestExactResolutionNeverWorse: the MWIS-exact conflict resolution must
// dominate the paper's greedy resolution on the same relaxation, and both
// must stay feasible.
func TestExactResolutionNeverWorse(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randMatrixInstance(rng, 2+rng.Intn(4), 2+rng.Intn(6), 3, 4, rng.Float64())
		greedyRes := MinCostFlow(in)
		exactRes := MinCostFlowOpts(in, FlowOptions{ExactResolution: true})
		if Validate(in, greedyRes.Matching) != nil || Validate(in, exactRes.Matching) != nil {
			return false
		}
		// Same relaxation feeds both resolutions.
		if abs(greedyRes.RelaxedMaxSum-exactRes.RelaxedMaxSum) > 1e-9 {
			return false
		}
		return exactRes.Matching.MaxSum() >= greedyRes.Matching.MaxSum()-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestExactResolutionIsOptimalPerUser: on instances where each user's
// relaxed assignment is small, the bitmask MWIS must match a brute force
// over that user's subsets — covered transitively by comparing the full
// matching to per-user brute force.
func TestExactResolutionPerUserOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		in := randMatrixInstance(rng, 4, 5, 3, 4, 0.5)
		res := MinCostFlowOpts(in, FlowOptions{ExactResolution: true})
		for u := 0; u < in.NumUsers(); u++ {
			events := res.Relaxed.UserEvents(u)
			if len(events) == 0 {
				continue
			}
			want := bruteMWIS(in, u, events)
			var got float64
			for _, v := range res.Matching.UserEvents(u) {
				got += in.Similarity(v, u)
			}
			if abs(got-want) > 1e-9 {
				t.Fatalf("trial %d user %d: MWIS %v, brute force %v", trial, u, got, want)
			}
		}
	}
}

// bruteMWIS enumerates all subsets of events recursively (a code path
// independent of the bitmask DP).
func bruteMWIS(in *Instance, u int, events []int) float64 {
	var rec func(i int, chosen []int, sum float64) float64
	rec = func(i int, chosen []int, sum float64) float64 {
		if i == len(events) {
			return sum
		}
		best := rec(i+1, chosen, sum)
		v := events[i]
		ok := true
		for _, w := range chosen {
			if in.Conflicting(v, w) {
				ok = false
				break
			}
		}
		if ok {
			if withV := rec(i+1, append(chosen, v), sum+in.Similarity(v, u)); withV > best {
				best = withV
			}
		}
		return best
	}
	return rec(0, nil, 0)
}

// TestTightBoundSameOptimum: the tightened bound is admissible — Prune-GEACC
// returns the same optimum with and without it.
func TestTightBoundSameOptimum(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randMatrixInstance(rng, 1+rng.Intn(4), 1+rng.Intn(5), 3, 3, rng.Float64())
		loose, _, err := Exact(in)
		if err != nil {
			return false
		}
		tight, _, err := ExactOpts(in, ExactOptions{TightBound: true})
		if err != nil {
			return false
		}
		if Validate(in, tight) != nil {
			return false
		}
		return abs(loose.MaxSum()-tight.MaxSum()) <= 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestTightBoundReducesSearchMostly: the tightened potential should prune at
// least as hard as the paper's on a clear majority of instances.
func TestTightBoundReducesSearchMostly(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	wins, trials := 0, 30
	for trial := 0; trial < trials; trial++ {
		in := randMatrixInstance(rng, 4, 7, 4, 3, 0.4)
		_, loose, err := Exact(in)
		if err != nil {
			t.Fatal(err)
		}
		_, tight, err := ExactOpts(in, ExactOptions{TightBound: true})
		if err != nil {
			t.Fatal(err)
		}
		if tight.Invocations <= loose.Invocations {
			wins++
		}
	}
	if wins < trials*2/3 {
		t.Errorf("tight bound reduced search on only %d/%d instances", wins, trials)
	}
}

// TestExactResolutionFallbackPath exercises the >20-events fallback by
// constructing a user relaxed onto many events.
func TestExactResolutionFallback(t *testing.T) {
	const nv = 25
	events := make([]Event, nv)
	matrix := make([][]float64, nv)
	for v := range events {
		events[v] = Event{Cap: 1}
		matrix[v] = []float64{float64(v+1) / float64(nv+1)}
	}
	in, err := NewMatrixInstance(events, []User{{Cap: nv}}, nil, matrix)
	if err != nil {
		t.Fatal(err)
	}
	res := MinCostFlowOpts(in, FlowOptions{ExactResolution: true})
	if err := Validate(in, res.Matching); err != nil {
		t.Fatal(err)
	}
	// No conflicts: everything survives resolution in both modes.
	if res.Matching.Size() != nv {
		t.Fatalf("size = %d, want %d", res.Matching.Size(), nv)
	}
}
