package core

import (
	"fmt"
	"math/rand"
	"sort"
)

// Solver is the uniform signature the experiment harness drives: solve the
// instance, using rng for any internal randomness (deterministic algorithms
// ignore it).
type Solver func(in *Instance, rng *rand.Rand) *Matching

// Solvers returns the algorithm registry keyed by the names used throughout
// the paper's plots: greedy, mincostflow, random-v, random-u, and exact
// (Prune-GEACC).
func Solvers() map[string]Solver {
	return map[string]Solver{
		"greedy": func(in *Instance, _ *rand.Rand) *Matching {
			return Greedy(in)
		},
		"mincostflow": func(in *Instance, _ *rand.Rand) *Matching {
			return MinCostFlow(in).Matching
		},
		"random-v": RandomV,
		"random-u": RandomU,
		"exact": func(in *Instance, _ *rand.Rand) *Matching {
			m, _, err := Exact(in)
			if err != nil {
				panic(fmt.Sprintf("core: exact solver failed: %v", err))
			}
			return m
		},
	}
}

// SolverNames returns the registry keys in stable order.
func SolverNames() []string {
	names := make([]string, 0)
	for name := range Solvers() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LookupSolver resolves one registry entry, with a helpful error listing the
// valid names.
func LookupSolver(name string) (Solver, error) {
	s, ok := Solvers()[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown solver %q (valid: %v)", name, SolverNames())
	}
	return s, nil
}
