package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/ebsnlab/geacc/internal/obs"
)

// Solver is the uniform signature the experiment harness drives: solve the
// instance, using rng for any internal randomness (deterministic algorithms
// ignore it).
type Solver func(in *Instance, rng *rand.Rand) *Matching

// Solvers returns the algorithm registry keyed by the names used throughout
// the paper's plots: greedy, mincostflow, random-v, random-u, and exact
// (Prune-GEACC).
func Solvers() map[string]Solver {
	return map[string]Solver{
		"greedy": func(in *Instance, _ *rand.Rand) *Matching {
			return Greedy(in)
		},
		"mincostflow": func(in *Instance, _ *rand.Rand) *Matching {
			return MinCostFlow(in).Matching
		},
		"random-v": RandomV,
		"random-u": RandomU,
		"exact": func(in *Instance, _ *rand.Rand) *Matching {
			m, _, err := Exact(in)
			if err != nil {
				panic(fmt.Sprintf("core: exact solver failed: %v", err))
			}
			return m
		},
	}
}

// SolverNames returns the registry keys in stable order.
func SolverNames() []string {
	names := make([]string, 0)
	for name := range Solvers() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LookupSolver resolves one registry entry, with a helpful error listing the
// valid names.
func LookupSolver(name string) (Solver, error) {
	s, ok := Solvers()[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown solver %q (valid: %v)", name, SolverNames())
	}
	return s, nil
}

// SolveContext runs the named registry solver under ctx, recording the
// per-algorithm solve metrics (geacc_solve_total, geacc_solve_seconds,
// geacc_solve_errors_total) and — when a recorder travels on ctx via
// obs.ContextWithRecorder — one trace span per solve.
//
// Cancellation is honored by the solvers that can actually run long:
// mincostflow aborts between augmenting paths, exact between search-node
// expansions, and greedy between heap pops. The random baselines check ctx
// only once, before starting (they are linear-time shuffles). A canceled
// run returns ctx's error and a nil matching.
func SolveContext(ctx context.Context, name string, in *Instance, rng *rand.Rand) (*Matching, error) {
	solve, err := LookupSolver(name)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		// Canceled before starting still counts as an errored solve, so
		// dashboards see load shed under cancellation storms.
		observeSolve(name, 0, err)
		return nil, err
	}
	sp := obs.RecorderFrom(ctx).Start("solve/"+name).
		Annotate("events", in.NumEvents()).
		Annotate("users", in.NumUsers())
	start := time.Now()
	var m *Matching
	switch name {
	case "greedy":
		m, err = GreedyCtx(ctx, in, GreedyOptions{})
	case "mincostflow":
		var fr *FlowResult
		fr, err = MinCostFlowCtx(ctx, in, FlowOptions{})
		if err == nil {
			m = fr.Matching
		}
	case "exact":
		m, _, err = ExactOpts(in, ExactOptions{Ctx: ctx})
	default:
		m = solve(in, rng)
	}
	observeSolve(name, time.Since(start), err)
	if err != nil {
		sp.Annotate("error", err.Error()).End()
		return nil, err
	}
	sp.Annotate("pairs", m.Size()).Annotate("max_sum", m.MaxSum()).End()
	return m, nil
}
