package core

import (
	"sort"

	"github.com/ebsnlab/geacc/internal/knn"
	"github.com/ebsnlab/geacc/internal/sim"
)

// IndexKind selects the nearest-neighbor index Greedy-GEACC uses for its
// "next feasible unvisited NN" queries. The paper leaves the index open
// (σ(S) in its complexity analysis, citing iDistance and the VA-File);
// these options enable the corresponding ablation benchmarks.
type IndexKind int

const (
	// IndexChunked is the default: lazy top-k linear selection with
	// geometric refill. Robust in any dimension and for any similarity.
	IndexChunked IndexKind = iota
	// IndexSorted fully sorts each node's candidate list on first use.
	IndexSorted
	// IndexKDTree uses best-first kd-tree traversal (Euclidean-style
	// similarities only).
	IndexKDTree
	// IndexIDistance uses the iDistance-style one-dimensional mapping
	// (Euclidean-style similarities only).
	IndexIDistance
	// IndexVAFile uses the vector-approximation file (Euclidean-style
	// similarities only).
	IndexVAFile
	// IndexParallel is the Chunked strategy with parallel refills:
	// bit-identical matchings, faster on multi-core machines at the
	// scalability regime of Fig. 5a/5b.
	IndexParallel
	// IndexLSH is APPROXIMATE (p-stable locality-sensitive hashing): the
	// NN streams may miss true neighbors, so the greedy matching can be
	// worse than with the exact indexes — the one index kind that trades
	// arrangement quality for query speed. Effective in low-dimensional
	// attribute spaces; on high-dimensional near-uniform data (e.g.
	// TABLE III's d = 20) recall degenerates and the exact indexes should
	// be preferred. Euclidean-style similarities only.
	IndexLSH
)

// String returns the benchmark-friendly name of the index kind.
func (k IndexKind) String() string {
	switch k {
	case IndexChunked:
		return "chunked"
	case IndexSorted:
		return "sorted"
	case IndexKDTree:
		return "kdtree"
	case IndexIDistance:
		return "idistance"
	case IndexVAFile:
		return "vafile"
	case IndexParallel:
		return "parallel"
	case IndexLSH:
		return "lsh"
	default:
		return "unknown"
	}
}

// neighborSource hands out per-node similarity-descending neighbor streams:
// event v streams over users, user u streams over events.
type neighborSource interface {
	eventStream(v int) knn.Stream
	userStream(u int) knn.Stream
}

// newNeighborSource picks the stream implementation for the instance:
// explicit-matrix instances sort matrix rows/columns; vector instances build
// the requested knn index over each side.
func newNeighborSource(in *Instance, kind IndexKind, chunkSize int) neighborSource {
	if in.Matrix != nil {
		return &matrixSource{in: in}
	}
	// Reuse the instance's flat kernels when they are fresh; stale or absent
	// kernels (Instance literals, truncated bench copies) get a fresh kernel
	// built from the current attribute slices.
	build := func(k *sim.Kernel, data func() []sim.Vector) knn.Index {
		if k == nil {
			k = sim.NewKernel(data(), in.SimFunc)
		}
		switch kind {
		case IndexSorted:
			return knn.NewSortedKernel(k)
		case IndexKDTree:
			return knn.NewKDTree(k.Vectors(), in.SimFunc)
		case IndexIDistance:
			m := k.Len() / 64
			if m < 4 {
				m = 4
			}
			return knn.NewIDistance(k.Vectors(), in.SimFunc, m)
		case IndexVAFile:
			return knn.NewVAFileKernel(k, 6)
		case IndexParallel:
			return knn.NewParallelKernel(k, chunkSize, 0)
		case IndexLSH:
			return knn.NewLSHKernel(k, 8, 4, 1)
		default:
			return knn.NewChunkedKernel(k, chunkSize)
		}
	}
	return &vectorSource{
		in:     in,
		users:  build(in.kernelOverUsers(), in.UserAttrs),
		events: build(in.kernelOverEvents(), in.EventAttrs),
	}
}

type vectorSource struct {
	in     *Instance
	users  knn.Index // queried with event attributes
	events knn.Index // queried with user attributes
}

func (s *vectorSource) eventStream(v int) knn.Stream {
	return s.users.Stream(s.in.Events[v].Attrs)
}

func (s *vectorSource) userStream(u int) knn.Stream {
	return s.events.Stream(s.in.Users[u].Attrs)
}

type matrixSource struct {
	in *Instance
}

func (s *matrixSource) eventStream(v int) knn.Stream {
	row := s.in.Matrix[v]
	pairs := make([]knn.Pair, 0, len(row))
	for u, sv := range row {
		if sv > 0 {
			pairs = append(pairs, knn.Pair{ID: u, S: sv})
		}
	}
	return sortedPairStream(pairs)
}

func (s *matrixSource) userStream(u int) knn.Stream {
	pairs := make([]knn.Pair, 0, len(s.in.Matrix))
	for v := range s.in.Matrix {
		if sv := s.in.Matrix[v][u]; sv > 0 {
			pairs = append(pairs, knn.Pair{ID: v, S: sv})
		}
	}
	return sortedPairStream(pairs)
}

func sortedPairStream(pairs []knn.Pair) knn.Stream {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].S != pairs[j].S {
			return pairs[i].S > pairs[j].S
		}
		return pairs[i].ID < pairs[j].ID
	})
	return &pairSliceStream{pairs: pairs}
}

type pairSliceStream struct {
	pairs []knn.Pair
	pos   int
}

func (s *pairSliceStream) Next() (int, float64, bool) {
	if s.pos >= len(s.pairs) {
		return 0, 0, false
	}
	p := s.pairs[s.pos]
	s.pos++
	return p.ID, p.S, true
}
