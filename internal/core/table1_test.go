package core

import (
	"math"
	"testing"

	"github.com/ebsnlab/geacc/internal/conflict"
)

// table1Instance reproduces TABLE I of the paper: three events (capacities
// 5, 3, 2), five users (capacities 3, 1, 1, 2, 3), explicit interestingness
// values, and conflicting pair {v1, v3}.
func table1Instance(t *testing.T) *Instance {
	t.Helper()
	events := []Event{{Cap: 5}, {Cap: 3}, {Cap: 2}}
	users := []User{{Cap: 3}, {Cap: 1}, {Cap: 1}, {Cap: 2}, {Cap: 3}}
	matrix := [][]float64{
		{0.93, 0.43, 0.84, 0.64, 0.65},
		{0, 0.35, 0.19, 0.21, 0.4},
		{0.86, 0.57, 0.78, 0.79, 0.68},
	}
	cf := conflict.FromPairs(3, [][2]int{{0, 2}})
	in, err := NewMatrixInstance(events, users, cf, matrix)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestTable1OptimalIs439(t *testing.T) {
	in := table1Instance(t)
	m, stats, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(in, m); err != nil {
		t.Fatalf("exact matching infeasible: %v", err)
	}
	if got := m.MaxSum(); math.Abs(got-4.39) > 1e-9 {
		t.Fatalf("optimal MaxSum = %v, paper says 4.39", got)
	}
	if stats.MaxDepth != 15 {
		t.Errorf("MaxDepth = %d, want 15", stats.MaxDepth)
	}
	// The optimal arrangement of Example 1: u1->v1, u2->v3, u3->v1,
	// u4->{v2,v3}, u5->{v1,v2}.
	want := map[[2]int]bool{
		{0, 0}: true, {2, 1}: true, {0, 2}: true,
		{1, 3}: true, {2, 3}: true, {0, 4}: true, {1, 4}: true,
	}
	if m.Size() != len(want) {
		t.Fatalf("optimal matching has %d pairs, want %d: %+v", m.Size(), len(want), m.SortedPairs())
	}
	for _, p := range m.Pairs() {
		if !want[[2]int{p.V, p.U}] {
			t.Errorf("unexpected optimal pair (v%d, u%d)", p.V+1, p.U+1)
		}
	}
}

func TestTable1GreedyIs428(t *testing.T) {
	in := table1Instance(t)
	m := Greedy(in)
	if err := Validate(in, m); err != nil {
		t.Fatalf("greedy matching infeasible: %v", err)
	}
	if got := m.MaxSum(); math.Abs(got-4.28) > 1e-9 {
		t.Fatalf("Greedy MaxSum = %v, Example 3 says 4.28", got)
	}
	// Example 3's walkthrough adds v1u1 first and rejects v3u1 for conflict.
	if !m.Contains(0, 0) {
		t.Error("greedy must match v1 with u1")
	}
	if m.Contains(2, 0) {
		t.Error("v3-u1 conflicts with v1-u1 and must be rejected")
	}
}

func TestTable1MinCostFlowIs413(t *testing.T) {
	in := table1Instance(t)
	res := MinCostFlow(in)
	if err := Validate(in, res.Matching); err != nil {
		t.Fatalf("mincostflow matching infeasible: %v", err)
	}
	if got := res.Matching.MaxSum(); math.Abs(got-4.13) > 1e-9 {
		t.Fatalf("MinCostFlow MaxSum = %v, Example 2 says 4.13", got)
	}
	// The relaxation M∅ of Fig. 1b assigns u1 to both v1 and v3; its MaxSum
	// is 5.64 and upper-bounds the conflict-constrained optimum 4.39.
	if got := res.RelaxedMaxSum; math.Abs(got-5.64) > 1e-9 {
		t.Fatalf("MaxSum(M∅) = %v, want 5.64", got)
	}
	if res.RelaxedMaxSum < 4.39-1e-9 {
		t.Fatal("Corollary 1 violated: relaxation below optimum")
	}
	// Example 2: u1 keeps v1 (0.93 > 0.86); u5 keeps v3 (0.68 > 0.65).
	if !res.Matching.Contains(0, 0) || res.Matching.Contains(2, 0) {
		t.Error("conflict resolution for u1 must keep v1, drop v3")
	}
	if !res.Matching.Contains(2, 4) || res.Matching.Contains(0, 4) {
		t.Error("conflict resolution for u5 must keep v3, drop v1")
	}
}

func TestTable1ApproximationRatiosHold(t *testing.T) {
	in := table1Instance(t)
	opt := 4.39
	alpha := float64(in.MaxUserCap()) // 3
	if g := Greedy(in).MaxSum(); g < opt/(1+alpha)-1e-9 {
		t.Errorf("Greedy %v below 1/(1+α) bound %v", g, opt/(1+alpha))
	}
	if f := MinCostFlow(in).Matching.MaxSum(); f < opt/alpha-1e-9 {
		t.Errorf("MinCostFlow %v below 1/α bound %v", f, opt/alpha)
	}
}

func TestTable1AlgorithmOrdering(t *testing.T) {
	// On the toy instance the paper's walkthroughs give
	// exact (4.39) > greedy (4.28) > mincostflow (4.13).
	in := table1Instance(t)
	exact, _, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	g := Greedy(in)
	f := MinCostFlow(in).Matching
	if !(exact.MaxSum() > g.MaxSum() && g.MaxSum() > f.MaxSum()) {
		t.Errorf("ordering violated: exact=%v greedy=%v mcf=%v",
			exact.MaxSum(), g.MaxSum(), f.MaxSum())
	}
}
