package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
)

// PortfolioResult reports one solver's outcome inside a portfolio run.
type PortfolioResult struct {
	Name     string
	Matching *Matching
	Err      error
}

// Portfolio runs several solvers concurrently on the same instance and
// returns the best feasible matching plus every individual outcome (sorted
// by solver name). GEACC's approximations have incomparable strengths —
// greedy usually wins but MinCostFlow is optimal when conflicts are absent
// or sparse per user — so racing them and keeping the best is a practical
// meta-solver. Solvers must not mutate the instance (none in this package
// do); each receives an independent PRNG derived from seed.
func Portfolio(in *Instance, names []string, seed int64) (*Matching, []PortfolioResult, error) {
	return PortfolioCtx(context.Background(), in, names, seed)
}

// PortfolioCtx is Portfolio under a context: every member runs through
// SolveContext, so cancellation stops the long solvers (see SolveContext)
// and each member's run lands in the per-algorithm solve metrics. The
// portfolio itself records geacc_portfolio_runs_total, the winner under
// geacc_portfolio_wins_total, and all-members-failed outcomes under
// geacc_portfolio_failures_total.
func PortfolioCtx(ctx context.Context, in *Instance, names []string, seed int64) (*Matching, []PortfolioResult, error) {
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("core: empty portfolio")
	}
	for _, name := range names {
		if _, err := LookupSolver(name); err != nil {
			return nil, nil, err
		}
	}
	portfolioRuns.Inc()

	results := make([]PortfolioResult, len(names))
	var wg sync.WaitGroup
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					results[i].Err = fmt.Errorf("core: solver %s panicked: %v", names[i], r)
				}
			}()
			results[i].Name = names[i]
			rng := rand.New(rand.NewSource(seed + int64(i)*7919))
			m, err := SolveContext(ctx, names[i], in, rng)
			if err != nil {
				results[i].Err = err
				return
			}
			if err := Validate(in, m); err != nil {
				results[i].Err = err
				return
			}
			results[i].Matching = m
		}(i)
	}
	wg.Wait()

	var best *Matching
	var bestName string
	for _, r := range results {
		if r.Err != nil || r.Matching == nil {
			continue
		}
		if best == nil || r.Matching.MaxSum() > best.MaxSum() {
			best, bestName = r.Matching, r.Name
		}
	}
	if best == nil {
		portfolioFailures.Inc()
		if err := ctx.Err(); err != nil {
			return nil, results, err
		}
		return nil, results, fmt.Errorf("core: every portfolio solver failed")
	}
	observePortfolioWin(bestName)
	return best, results, nil
}
