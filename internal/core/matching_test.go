package core

import (
	"testing"

	"github.com/ebsnlab/geacc/internal/conflict"
)

func TestMatchingBasics(t *testing.T) {
	m := NewMatching()
	if m.Size() != 0 || m.MaxSum() != 0 {
		t.Fatal("new matching not empty")
	}
	m.Add(0, 1, 0.5)
	m.Add(2, 1, 0.25)
	m.Add(0, 3, 0.75)
	if m.Size() != 3 {
		t.Fatalf("Size = %d", m.Size())
	}
	if got := m.MaxSum(); got != 1.5 {
		t.Fatalf("MaxSum = %v", got)
	}
	if !m.Contains(0, 1) || m.Contains(1, 0) {
		t.Error("Contains wrong")
	}
	if got := m.UserEvents(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("UserEvents(1) = %v", got)
	}
	if got := m.EventUsers(0); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("EventUsers(0) = %v", got)
	}
	if got := m.UserEvents(99); got != nil {
		t.Errorf("unmatched user has events: %v", got)
	}
}

func TestMatchingDuplicateAddPanics(t *testing.T) {
	m := NewMatching()
	m.Add(1, 1, 0.5)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Add did not panic")
		}
	}()
	m.Add(1, 1, 0.5)
}

func TestMatchingSortedPairs(t *testing.T) {
	m := NewMatching()
	m.Add(2, 0, 0.1)
	m.Add(0, 1, 0.2)
	m.Add(0, 0, 0.3)
	got := m.SortedPairs()
	want := []Assignment{{0, 0, 0.3}, {0, 1, 0.2}, {2, 0, 0.1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedPairs = %v", got)
		}
	}
	// Insertion order must be preserved by Pairs.
	if m.Pairs()[0] != (Assignment{2, 0, 0.1}) {
		t.Error("Pairs lost insertion order")
	}
}

func TestMatchingClone(t *testing.T) {
	m := NewMatching()
	m.Add(0, 0, 0.9)
	c := m.Clone()
	c.Add(1, 1, 0.1)
	if m.Size() != 1 || c.Size() != 2 {
		t.Error("Clone shares state")
	}
	if c.MaxSum() != 1.0 {
		t.Errorf("clone MaxSum = %v", c.MaxSum())
	}
}

func validationInstance(t *testing.T) *Instance {
	t.Helper()
	in, err := NewMatrixInstance(
		[]Event{{Cap: 1}, {Cap: 2}, {Cap: 1}},
		[]User{{Cap: 2}, {Cap: 1}},
		conflict.FromPairs(3, [][2]int{{0, 1}}),
		[][]float64{{0.5, 0.0}, {0.6, 0.7}, {0.8, 0.9}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestValidateAcceptsFeasible(t *testing.T) {
	in := validationInstance(t)
	m := NewMatching()
	m.Add(0, 0, 0.5)
	m.Add(2, 0, 0.8)
	m.Add(1, 1, 0.7)
	if err := Validate(in, m); err != nil {
		t.Errorf("feasible matching rejected: %v", err)
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	in := validationInstance(t)
	m := NewMatching()
	m.Add(5, 0, 0.5)
	if Validate(in, m) == nil {
		t.Error("out-of-range pair accepted")
	}
}

func TestValidateRejectsWrongSim(t *testing.T) {
	in := validationInstance(t)
	m := NewMatching()
	m.Add(0, 0, 0.9) // instance says 0.5
	if Validate(in, m) == nil {
		t.Error("inconsistent similarity accepted")
	}
}

func TestValidateRejectsZeroSim(t *testing.T) {
	in := validationInstance(t)
	m := NewMatching()
	m.Add(0, 1, 0.0)
	if Validate(in, m) == nil {
		t.Error("zero-similarity pair accepted")
	}
}

func TestValidateRejectsEventOverCapacity(t *testing.T) {
	in := validationInstance(t)
	m := NewMatching()
	m.Add(0, 0, 0.5)
	// Event 0 has capacity 1; a second user would overflow. User 1 has
	// sim 0 with event 0, so craft via event 2 instead: user capacity test.
	m.Add(2, 0, 0.8)
	m.Add(1, 0, 0.6) // user 0 has cap 2 -> now 3 events
	if Validate(in, m) == nil {
		t.Error("user over capacity accepted")
	}
}

func TestValidateRejectsConflict(t *testing.T) {
	in := validationInstance(t)
	m := NewMatching()
	m.Add(0, 0, 0.5)
	m.Add(1, 0, 0.6) // events 0 and 1 conflict
	if Validate(in, m) == nil {
		t.Error("conflicting assignment accepted")
	}
}

func TestValidateEmptyMatching(t *testing.T) {
	in := validationInstance(t)
	if err := Validate(in, NewMatching()); err != nil {
		t.Errorf("empty matching rejected: %v", err)
	}
}
