package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// referenceGreedy is the declarative specification Greedy-GEACC realizes:
// scan every (event, user) pair in non-increasing similarity order (ties by
// event id then user id) and add each pair that is feasible at that moment.
// Algorithm 2's heap-and-NN-stream machinery exists to avoid materializing
// the full pair list; the outcomes must be identical.
func referenceGreedy(in *Instance) *Matching {
	type pair struct {
		v, u int
		s    float64
	}
	var pairs []pair
	for v := 0; v < in.NumEvents(); v++ {
		for u := 0; u < in.NumUsers(); u++ {
			if s := in.Similarity(v, u); s > 0 {
				pairs = append(pairs, pair{v, u, s})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].s != pairs[j].s {
			return pairs[i].s > pairs[j].s
		}
		if pairs[i].v != pairs[j].v {
			return pairs[i].v < pairs[j].v
		}
		return pairs[i].u < pairs[j].u
	})
	m := NewMatching()
	capV := remainingEventCaps(in)
	capU := remainingUserCaps(in)
	for _, p := range pairs {
		if capV[p.v] == 0 || capU[p.u] == 0 {
			continue
		}
		if in.Conflicts != nil && in.Conflicts.ConflictsWithAny(p.v, m.UserEvents(p.u)) {
			continue
		}
		m.Add(p.v, p.u, p.s)
		capV[p.v]--
		capU[p.u]--
	}
	return m
}

func matchingsEqual(a, b *Matching) bool {
	if a.Size() != b.Size() {
		return false
	}
	as, bs := a.SortedPairs(), b.SortedPairs()
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestGreedyEqualsReferenceOnMatrices compares the heap implementation to
// the specification pair-for-pair on explicit-matrix instances (whose
// streams share the same deterministic tie order).
func TestGreedyEqualsReferenceOnMatrices(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randMatrixInstance(rng, 1+rng.Intn(6), 1+rng.Intn(10), 4, 4, rng.Float64())
		got := Greedy(in)
		want := referenceGreedy(in)
		if !matchingsEqual(got, want) {
			t.Logf("greedy:    %+v", got.SortedPairs())
			t.Logf("reference: %+v", want.SortedPairs())
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestGreedyEqualsReferenceOnVectors runs the same comparison on vector
// instances with every index implementation. Vector similarities almost
// never tie, so the pair-for-pair match must hold for all indexes.
func TestGreedyEqualsReferenceOnVectors(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randVectorInstance(rng, 1+rng.Intn(6), 1+rng.Intn(12), 1+rng.Intn(4), 4, 3, rng.Float64())
		want := referenceGreedy(in)
		for _, kind := range []IndexKind{
			IndexChunked, IndexSorted, IndexKDTree, IndexIDistance, IndexVAFile, IndexParallel,
		} {
			got := GreedyOpts(in, GreedyOptions{Index: kind})
			if !matchingsEqual(got, want) {
				t.Logf("index %v diverged from the specification", kind)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestTable1GreedyEqualsReference pins the specification equivalence on the
// paper's own example.
func TestTable1GreedyEqualsReference(t *testing.T) {
	in := table1Instance(t)
	if !matchingsEqual(Greedy(in), referenceGreedy(in)) {
		t.Fatal("heap greedy diverged from the specification on TABLE I")
	}
}
