package core

import (
	"math/rand"
	"testing"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/sim"
)

// randVectorInstance builds a random vector-based instance.
func randVectorInstance(rng *rand.Rand, nv, nu, d int, maxCapV, maxCapU int, cfRatio float64) *Instance {
	const maxT = 100.0
	events := make([]Event, nv)
	for i := range events {
		events[i] = Event{Attrs: randVec(rng, d, maxT), Cap: 1 + rng.Intn(maxCapV)}
	}
	users := make([]User, nu)
	for i := range users {
		users[i] = User{Attrs: randVec(rng, d, maxT), Cap: 1 + rng.Intn(maxCapU)}
	}
	cf := conflict.Random(rng, nv, cfRatio)
	in, err := NewInstance(events, users, cf, sim.Euclidean(d, maxT))
	if err != nil {
		panic(err)
	}
	return in
}

// randMatrixInstance builds a random explicit-matrix instance; a fraction of
// entries are exactly zero to exercise the sim > 0 constraint.
func randMatrixInstance(rng *rand.Rand, nv, nu int, maxCapV, maxCapU int, cfRatio float64) *Instance {
	events := make([]Event, nv)
	for i := range events {
		events[i] = Event{Cap: 1 + rng.Intn(maxCapV)}
	}
	users := make([]User, nu)
	for i := range users {
		users[i] = User{Cap: 1 + rng.Intn(maxCapU)}
	}
	matrix := make([][]float64, nv)
	for v := range matrix {
		matrix[v] = make([]float64, nu)
		for u := range matrix[v] {
			if rng.Float64() < 0.15 {
				continue // zero similarity
			}
			matrix[v][u] = float64(1+rng.Intn(1000)) / 1000
		}
	}
	cf := conflict.Random(rng, nv, cfRatio)
	in, err := NewMatrixInstance(events, users, cf, matrix)
	if err != nil {
		panic(err)
	}
	return in
}

func randVec(rng *rand.Rand, d int, maxT float64) sim.Vector {
	v := make(sim.Vector, d)
	for i := range v {
		v[i] = rng.Float64() * maxT
	}
	return v
}

// bruteForceOpt computes the optimal MaxSum by a recursion independent of
// the Prune-GEACC code path: it walks users left to right and, for each
// user, enumerates every feasible subset of events (capacity, conflicts,
// sim > 0), tracking remaining event capacities. Exponential — tiny
// instances only.
func bruteForceOpt(in *Instance) float64 {
	nv, nu := in.NumEvents(), in.NumUsers()
	capV := make([]int, nv)
	for v, e := range in.Events {
		capV[v] = e.Cap
	}
	best := 0.0
	var perUser func(u int, total float64)
	var subsets func(u, fromV, budget int, chosen []int, total float64)
	perUser = func(u int, total float64) {
		if u == nu {
			if total > best {
				best = total
			}
			return
		}
		subsets(u, 0, in.Users[u].Cap, nil, total)
	}
	subsets = func(u, fromV, budget int, chosen []int, total float64) {
		perUserDone := func() {
			perUser(u+1, total)
		}
		if budget == 0 || fromV == nv {
			perUserDone()
			return
		}
		// Skip event fromV.
		subsets(u, fromV+1, budget, chosen, total)
		// Take event fromV when feasible.
		s := in.Similarity(fromV, u)
		if s <= 0 || capV[fromV] == 0 {
			return
		}
		for _, w := range chosen {
			if in.Conflicting(fromV, w) {
				return
			}
		}
		capV[fromV]--
		subsets(u, fromV+1, budget-1, append(chosen, fromV), total+s)
		capV[fromV]++
	}
	perUser(0, 0)
	return best
}

func mustValidate(t *testing.T, in *Instance, m *Matching, algo string) {
	t.Helper()
	if err := Validate(in, m); err != nil {
		t.Fatalf("%s produced infeasible matching: %v", algo, err)
	}
}
