package core

import (
	"context"

	"github.com/ebsnlab/geacc/internal/obs"
	"github.com/ebsnlab/geacc/internal/pqueue"
)

// GreedyOptions tunes Greedy-GEACC. The zero value selects the defaults
// (Chunked index with its default chunk size).
type GreedyOptions struct {
	// Index selects the nearest-neighbor index serving the "next feasible
	// unvisited NN" queries.
	Index IndexKind
	// ChunkSize sets the first refill size of the Chunked index; <= 0 means
	// knn.DefaultChunkSize. Ignored by the other indexes.
	ChunkSize int
	// Trace, when non-nil, receives every heap pop in order — the decision
	// log of the run, exactly the narrative of the paper's Example 3.
	Trace func(TraceStep)
	// Feasible, when non-nil, adds a side constraint: a pair is only
	// assignable while Feasible(v, u) holds. The predicate MUST be monotone
	// non-increasing over the run (once false for a pair, false forever),
	// because the algorithm prunes failing pairs permanently. Budgeted
	// arrangements (BudgetedGreedy) are built on this hook.
	Feasible func(v, u int) bool
	// Ctx, when non-nil, is polled every greedyCtxStride heap pops; on
	// cancellation the run stops early and returns the partial matching
	// built so far. Callers that need cancellation surfaced as an error
	// should use GreedyCtx, which discards the partial result.
	Ctx context.Context
}

// greedyCtxStride is how many heap pops Greedy processes between
// cancellation polls — frequent enough to abandon a multi-second run
// promptly, rare enough to keep the poll off the per-pop profile.
const greedyCtxStride = 1024

// TraceStep records one popped pair and the algorithm's decision on it.
type TraceStep struct {
	V, U     int
	Sim      float64
	Accepted bool
	// Reason explains a rejection: "event-full", "user-full", or
	// "conflict". Empty for accepted pairs. When several reasons apply
	// simultaneously they are reported in that priority order.
	Reason string
}

// Greedy runs Greedy-GEACC (Algorithm 2 of the paper) with default options:
// it repeatedly adds the most similar feasible unvisited pair to the
// matching, maintaining a heap H of per-node nearest-neighbor candidates.
// The result is feasible and within 1/(1+max c_u) of the optimum (Theorem 3).
func Greedy(in *Instance) *Matching {
	return GreedyOpts(in, GreedyOptions{})
}

// GreedyCtx runs Greedy-GEACC under a context: on cancellation the run
// aborts at the next poll (every greedyCtxStride heap pops) and returns
// ctx's error with a nil matching.
func GreedyCtx(ctx context.Context, in *Instance, opt GreedyOptions) (*Matching, error) {
	opt.Ctx = ctx
	m := GreedyOpts(in, opt)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// GreedyOpts runs Greedy-GEACC with explicit options.
func GreedyOpts(in *Instance, opt GreedyOptions) *Matching {
	greedyRuns.Inc()
	nv, nu := in.NumEvents(), in.NumUsers()
	m := NewMatching()
	if nv == 0 || nu == 0 {
		return m
	}
	// Phase spans land in the recorder traveling on opt.Ctx, if any; the
	// nil path costs one pointer check.
	rec := obs.RecorderFrom(opt.Ctx)
	sp := rec.Start("greedy/init")
	src := newNeighborSource(in, opt.Index, opt.ChunkSize)

	// The capacity arrays, lazy stream tables, and candidate heap are
	// pooled per solve; every entry is rewritten (or nil, for the lazily
	// created streams) before use.
	scratch := acquireGreedyScratch(nv, nu)
	defer releaseGreedyScratch(scratch)
	capV, capU := scratch.capV, scratch.capU
	for v, e := range in.Events {
		capV[v] = e.Cap
	}
	for u, usr := range in.Users {
		capU[u] = usr.Cap
	}

	// Per-node neighbor streams, created lazily: a node whose pairs are all
	// pushed from the other side never materializes its own stream.
	vStreams, uStreams := scratch.vStreams, scratch.uStreams
	h := scratch.heap

	// conflictsWithMatched reports whether assigning v to u would put u in
	// two conflicting events. Monotone: once true it stays true, so pairs
	// filtered here can be skipped permanently.
	conflictsWithMatched := func(v, u int) bool {
		return in.Conflicts != nil && in.Conflicts.ConflictsWithAny(v, m.UserEvents(u))
	}

	// blocked folds in the optional monotone side constraint.
	blocked := func(v, u int) bool {
		if conflictsWithMatched(v, u) {
			return true
		}
		return opt.Feasible != nil && !opt.Feasible(v, u)
	}

	// advanceEvent pushes event v's next feasible unvisited NN into H
	// (Algorithm 2 lines 16-19). Skipped candidates are infeasible forever
	// (their capacity or conflict state never recovers) or already in H.
	advanceEvent := func(v int) {
		if capV[v] == 0 {
			return
		}
		if vStreams[v] == nil {
			vStreams[v] = src.eventStream(v)
		}
		for {
			u, s, ok := vStreams[v].Next()
			if !ok {
				return // v is a finished node
			}
			if h.Contains(v, u) || capU[u] == 0 || blocked(v, u) {
				continue
			}
			h.Push(pqueue.Pair{V: v, U: u, Sim: s})
			return
		}
	}

	// advanceUser is the symmetric step for user u (lines 20-23).
	advanceUser := func(u int) {
		if capU[u] == 0 {
			return
		}
		if uStreams[u] == nil {
			uStreams[u] = src.userStream(u)
		}
		for {
			v, s, ok := uStreams[u].Next()
			if !ok {
				return // u is a finished node
			}
			if h.Contains(v, u) || capV[v] == 0 || blocked(v, u) {
				continue
			}
			h.Push(pqueue.Pair{V: v, U: u, Sim: s})
			return
		}
	}

	// Initialization (lines 1-9): each node contributes its first NN.
	for v := 0; v < nv; v++ {
		advanceEvent(v)
	}
	for u := 0; u < nu; u++ {
		advanceUser(u)
	}
	sp.End()

	// Iteration (lines 11-23): pop the most similar pair, add it when
	// feasible, then let both endpoints contribute their next candidates.
	sp = rec.Start("greedy/scan")
	var pops, accepted int64
	for h.Len() > 0 {
		if opt.Ctx != nil && pops%greedyCtxStride == 0 && opt.Ctx.Err() != nil {
			break
		}
		pops++
		p := h.Pop()
		ok := capV[p.V] > 0 && capU[p.U] > 0 && !blocked(p.V, p.U)
		if ok {
			m.Add(p.V, p.U, p.Sim)
			capV[p.V]--
			capU[p.U]--
			accepted++
		}
		if opt.Trace != nil {
			step := TraceStep{V: p.V, U: p.U, Sim: p.Sim, Accepted: ok}
			if !ok {
				switch {
				case capV[p.V] == 0:
					step.Reason = "event-full"
				case capU[p.U] == 0:
					step.Reason = "user-full"
				default:
					step.Reason = "conflict"
				}
			}
			opt.Trace(step)
		}
		advanceEvent(p.V)
		advanceUser(p.U)
	}
	sp.Annotate("pops", pops).Annotate("accepted", accepted).End()
	greedyPops.Add(pops)
	greedyAccepted.Add(accepted)
	greedyRejected.Add(pops - accepted)
	return m
}
