// Package core implements the Global Event-participant Arrangement with
// Conflict and Capacity (GEACC) problem of She, Tong, Chen and Cao,
// "Conflict-Aware Event-Participant Arrangement" (ICDE 2015).
//
// # Problem
//
// Given a set of events V (each v with attendee capacity c_v and attribute
// vector l_v), a set of users U (each u with arrangement capacity c_u and
// attribute vector l_u), a set CF of conflicting event pairs, and a
// similarity function sim(l_v, l_u) ∈ [0, 1], find an arrangement
// M ⊆ V × U maximizing
//
//	MaxSum(M) = Σ_{(v,u) ∈ M} sim(l_v, l_u)
//
// subject to: sim > 0 for every assigned pair; each event v appears in at
// most c_v pairs; each user u appears in at most c_u pairs; and no user is
// assigned to two conflicting events. GEACC is NP-hard (reduction from
// max-flow with conflict graphs; Theorem 1 of the paper).
//
// # Algorithms
//
// The paper's algorithms, with their guarantees (α = max c_u):
//
//	Greedy       Greedy-GEACC, Algorithm 2:   1/(1+α)-approx, near-linear
//	MinCostFlow  MinCostFlow-GEACC, Alg. 1:   1/α-approx, quartic
//	Exact        Prune-GEACC, Algorithms 3-4: optimal, exponential
//	RandomV/U    the evaluation's baselines
//
// Greedy maintains a heap of per-node nearest-neighbor candidate pairs and
// repeatedly commits the most similar feasible one; its NN queries run
// against a pluggable index (IndexKind). MinCostFlow solves the CF = ∅
// relaxation exactly as a minimum-cost flow (optimal by the paper's
// Lemma 1; also exposed as RelaxedUpperBound, an upper bound on the
// constrained optimum by Corollary 1) and then resolves each user's
// conflicts. Exact enumerates pair states in s_v·c_v order, pruning with
// the Lemma 6 bound, warm-started by Greedy.
//
// # Beyond the paper
//
// The package also provides a concurrent solver Portfolio, a 1-exchange +
// 2-swap LocalSearch post-optimizer, a dynamic Arranger for online
// arrival/cancellation workloads, budget-constrained arrangements
// (BudgetedGreedy), per-decision Greedy traces, matching Diffs, an exact
// per-user MWIS conflict resolution for MinCostFlow (FlowOptions), and a
// tightened admissible pruning bound for Exact (ExactOptions). Every
// matching any of these produce passes Validate.
//
// # Cancellation and observability
//
// SolveContext is the context-aware entry point over the registry: it
// honors cancellation in the solvers that can run long (mincostflow
// between augmenting paths, exact between node expansions, greedy between
// heap pops — see also GreedyCtx, MinCostFlowCtx, ExactOptions.Ctx, and
// PortfolioCtx), records the per-algorithm solve metrics, and emits trace
// spans into a recorder attached to the context with
// obs.ContextWithRecorder. The algorithms additionally publish their
// internal work counts (greedy heap pops, flow augmentations, search-node
// expansions and prunes, local-search moves, arranger operation
// latencies) into the global internal/obs registry regardless of entry
// point; docs/OBSERVABILITY.md is the full metric catalog.
package core
