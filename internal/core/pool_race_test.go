package core

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/ebsnlab/geacc/internal/conflict"
)

// poolRaceInstance builds one deterministic matrix instance for the race
// test — small enough that the exact solver finishes instantly, big enough
// that every pooled scratch structure (heaps, flow network, simMat rows)
// is genuinely exercised.
func poolRaceInstance(t *testing.T, seed int64, nv, nu int) *Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	events := make([]Event, nv)
	for v := range events {
		events[v] = Event{Cap: 1 + rng.Intn(3)}
	}
	users := make([]User, nu)
	for u := range users {
		users[u] = User{Cap: 1 + rng.Intn(2)}
	}
	matrix := make([][]float64, nv)
	for v := range matrix {
		matrix[v] = make([]float64, nu)
		for u := range matrix[v] {
			matrix[v][u] = rng.Float64()
		}
	}
	cf := conflict.Random(rng, nv, 0.3)
	in, err := NewMatrixInstance(events, users, cf, matrix)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestPooledSolveRace hammers the pooled per-solve scratch (greedy heaps
// and stream tables, the min-cost-flow network + solver, exact's flat
// simMat) from many goroutines at once and checks every result against the
// sequential reference. Run under -race (make race covers this package) it
// is the safety proof for the sync.Pool reuse: a reset that misses one byte
// of a previous solve shows up either as a data race or as MaxSum drift.
func TestPooledSolveRace(t *testing.T) {
	type solver struct {
		name string
		run  func(in *Instance) float64
	}
	solvers := []solver{
		{"greedy", func(in *Instance) float64 { return Greedy(in).MaxSum() }},
		{"mincostflow", func(in *Instance) float64 { return MinCostFlow(in).Matching.MaxSum() }},
		{"exact", func(in *Instance) float64 {
			m, _, err := Exact(in)
			if err != nil {
				t.Errorf("exact: %v", err)
				return -1
			}
			return m.MaxSum()
		}},
	}

	instances := []*Instance{
		poolRaceInstance(t, 1, 4, 8),
		poolRaceInstance(t, 2, 5, 6),
		poolRaceInstance(t, 3, 3, 10),
		poolRaceInstance(t, 4, 6, 5),
	}
	// Sequential reference, computed before any concurrency: the pooled
	// path must reproduce these sums bit-exactly under contention.
	want := make([][]float64, len(solvers))
	for si, sv := range solvers {
		want[si] = make([]float64, len(instances))
		for ii, in := range instances {
			want[si][ii] = sv.run(in)
		}
	}

	const goroutines = 8
	const iters = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				si := (g + i) % len(solvers)
				ii := (g * 7 / 3 * i) % len(instances)
				if ii < 0 {
					ii = -ii
				}
				got := solvers[si].run(instances[ii])
				if got != want[si][ii] {
					t.Errorf("goroutine %d iter %d: %s on instance %d: MaxSum %v, want %v (pooled scratch leaked state)",
						g, i, solvers[si].name, ii, got, want[si][ii])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
