package core

import (
	"math/rand"
	"testing"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/mincostflow"
)

func TestGreedyEmptyAndDegenerate(t *testing.T) {
	empty, err := NewMatrixInstance(nil, nil, nil, [][]float64{})
	if err != nil {
		t.Fatal(err)
	}
	if m := Greedy(empty); m.Size() != 0 {
		t.Error("greedy on empty instance")
	}
	zeroCaps, err := NewMatrixInstance(
		[]Event{{Cap: 0}}, []User{{Cap: 0}}, nil, [][]float64{{0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if m := Greedy(zeroCaps); m.Size() != 0 {
		t.Error("greedy matched despite zero capacities")
	}
	allZeroSim, err := NewMatrixInstance(
		[]Event{{Cap: 2}}, []User{{Cap: 2}}, nil, [][]float64{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if m := Greedy(allZeroSim); m.Size() != 0 {
		t.Error("greedy matched a zero-similarity pair")
	}
}

func TestGreedyPicksGloballyBestFirst(t *testing.T) {
	// With all capacities 1 and no conflicts, greedy must take pairs in
	// global similarity order: (v0,u1)=0.9 then (v1,u0)=0.6 — not
	// (v0,u0)=0.8 which would block the 0.9.
	in, err := NewMatrixInstance(
		[]Event{{Cap: 1}, {Cap: 1}},
		[]User{{Cap: 1}, {Cap: 1}},
		nil,
		[][]float64{{0.8, 0.9}, {0.6, 0.5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	m := Greedy(in)
	if !m.Contains(0, 1) || !m.Contains(1, 0) {
		t.Fatalf("greedy order wrong: %v", m.SortedPairs())
	}
	if got := m.MaxSum(); abs(got-1.5) > 1e-12 {
		t.Fatalf("MaxSum = %v", got)
	}
}

func TestGreedyHonorsConflictsAcrossHeapPushes(t *testing.T) {
	// u0 takes v0 (0.9); v1 conflicts with v0, so u0 must skip v1 (0.8)
	// and u1 picks it up instead.
	in, err := NewMatrixInstance(
		[]Event{{Cap: 1}, {Cap: 1}},
		[]User{{Cap: 2}, {Cap: 1}},
		conflict.FromPairs(2, [][2]int{{0, 1}}),
		[][]float64{{0.9, 0.1}, {0.8, 0.7}},
	)
	if err != nil {
		t.Fatal(err)
	}
	m := Greedy(in)
	mustValidate(t, in, m, "greedy")
	if !m.Contains(0, 0) || !m.Contains(1, 1) || m.Size() != 2 {
		t.Fatalf("greedy result %v", m.SortedPairs())
	}
}

func TestGreedyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	in := randVectorInstance(rng, 5, 12, 3, 4, 3, 0.4)
	a := Greedy(in).SortedPairs()
	b := Greedy(in).SortedPairs()
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic matching")
		}
	}
}

func TestMinCostFlowEmptyAndZeroCap(t *testing.T) {
	empty, err := NewMatrixInstance(nil, nil, nil, [][]float64{})
	if err != nil {
		t.Fatal(err)
	}
	res := MinCostFlow(empty)
	if res.Matching.Size() != 0 || res.Delta != 0 {
		t.Error("mincostflow on empty instance")
	}
	zeroCap, err := NewMatrixInstance(
		[]Event{{Cap: 0}}, []User{{Cap: 3}}, nil, [][]float64{{0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if m := MinCostFlow(zeroCap).Matching; m.Size() != 0 {
		t.Error("flow through zero-capacity event")
	}
}

func TestMinCostFlowDeltaWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		in := randMatrixInstance(rng, 1+rng.Intn(4), 1+rng.Intn(6), 3, 3, rng.Float64())
		res := MinCostFlow(in)
		sv, su := in.CapSums()
		deltaMax := sv
		if su < deltaMax {
			deltaMax = su
		}
		if res.Delta < 0 || res.Delta > deltaMax {
			t.Fatalf("Delta = %d outside [0, %d]", res.Delta, deltaMax)
		}
		if int64(res.Relaxed.Size()) > res.Delta {
			t.Fatalf("relaxed matching larger than flow amount")
		}
	}
}

func TestMinCostFlowRelaxedMatchesFullSweep(t *testing.T) {
	// The incremental early-stop must find the same MaxSum(M∅) as the
	// paper's literal sweep over all Δ (reconstructed here by solving a
	// fresh min-cost flow of every amount).
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		in := randMatrixInstance(rng, 1+rng.Intn(3), 1+rng.Intn(4), 2, 2, 0)
		got := RelaxedUpperBound(in)
		want := sweepRelaxedMaxSum(in)
		if abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: incremental %v != full sweep %v", trial, got, want)
		}
	}
}

// sweepRelaxedMaxSum reproduces lines 3-7 of Algorithm 1 literally: for each
// Δ in [1, Δmax], compute a fresh min-cost flow of amount Δ and take the best
// Δ − cost(Δ). Used only as a test oracle.
func sweepRelaxedMaxSum(in *Instance) float64 {
	sv, su := in.CapSums()
	deltaMax := sv
	if su < deltaMax {
		deltaMax = su
	}
	best := 0.0
	for delta := int64(1); delta <= deltaMax; delta++ {
		maxSum, ok := relaxedAtDelta(in, delta)
		if !ok {
			break
		}
		if maxSum > best {
			best = maxSum
		}
	}
	return best
}

// relaxedAtDelta computes, from scratch, a minimum-cost flow of exactly
// delta units on the Algorithm 1 network and returns Δ − cost(Δ). ok is
// false when delta units are infeasible.
func relaxedAtDelta(in *Instance, delta int64) (float64, bool) {
	nv, nu := in.NumEvents(), in.NumUsers()
	s, t := 0, 1+nv+nu
	g := mincostflow.NewGraph(nv + nu + 2)
	for v, e := range in.Events {
		g.AddArc(s, 1+v, int64(e.Cap), 0)
	}
	for u, usr := range in.Users {
		g.AddArc(1+nv+u, t, int64(usr.Cap), 0)
	}
	for v := 0; v < nv; v++ {
		for u := 0; u < nu; u++ {
			g.AddArc(1+v, 1+nv+u, 1, 1-in.Similarity(v, u))
		}
	}
	sv := mincostflow.NewSolver(g, s, t)
	flow, cost := sv.MinCostFlow(delta)
	if flow != delta {
		return 0, false
	}
	return float64(delta) - cost, true
}

func TestRandomBaselinesFeasibleAndSeeded(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	in := randMatrixInstance(rng, 4, 10, 4, 3, 0.5)
	for name, solve := range map[string]func(*Instance, *rand.Rand) *Matching{
		"random-v": RandomV,
		"random-u": RandomU,
	} {
		a := solve(in, rand.New(rand.NewSource(7)))
		mustValidate(t, in, a, name)
		b := solve(in, rand.New(rand.NewSource(7)))
		if a.MaxSum() != b.MaxSum() || a.Size() != b.Size() {
			t.Errorf("%s not deterministic under a fixed seed", name)
		}
		c := solve(in, rand.New(rand.NewSource(8)))
		_ = c // different seed may differ; only feasibility matters
		mustValidate(t, in, c, name)
	}
}

func TestRandomBaselinesEmptyInstance(t *testing.T) {
	in, err := NewMatrixInstance(nil, nil, nil, [][]float64{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if RandomV(in, rng).Size() != 0 || RandomU(in, rng).Size() != 0 {
		t.Error("baselines on empty instance")
	}
}

func TestSolverRegistry(t *testing.T) {
	names := SolverNames()
	want := []string{"exact", "greedy", "mincostflow", "random-u", "random-v"}
	if len(names) != len(want) {
		t.Fatalf("SolverNames = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("SolverNames = %v, want %v", names, want)
		}
	}
	if _, err := LookupSolver("greedy"); err != nil {
		t.Errorf("LookupSolver(greedy): %v", err)
	}
	if _, err := LookupSolver("nope"); err == nil {
		t.Error("unknown solver accepted")
	}
	rng := rand.New(rand.NewSource(25))
	in := randMatrixInstance(rng, 2, 3, 2, 2, 0.3)
	for name, solve := range Solvers() {
		m := solve(in, rng)
		mustValidate(t, in, m, name)
	}
}

func TestGreedyMatrixAndEquivalentVectorAgree(t *testing.T) {
	// Build a vector instance, export its similarity matrix, and check that
	// greedy on both representations yields the same MaxSum.
	rng := rand.New(rand.NewSource(26))
	vin := randVectorInstance(rng, 4, 7, 3, 3, 2, 0.3)
	matrix := make([][]float64, vin.NumEvents())
	for v := range matrix {
		matrix[v] = make([]float64, vin.NumUsers())
		for u := range matrix[v] {
			matrix[v][u] = vin.Similarity(v, u)
		}
	}
	min, err := NewMatrixInstance(vin.Events, vin.Users, vin.Conflicts, matrix)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := Greedy(vin).MaxSum(), Greedy(min).MaxSum(); abs(a-b) > 1e-9 {
		t.Fatalf("vector greedy %v != matrix greedy %v", a, b)
	}
}

func TestIndexKindString(t *testing.T) {
	cases := map[IndexKind]string{
		IndexChunked:   "chunked",
		IndexSorted:    "sorted",
		IndexKDTree:    "kdtree",
		IndexIDistance: "idistance",
		IndexVAFile:    "vafile",
		IndexParallel:  "parallel",
		IndexLSH:       "lsh",
		IndexKind(99):  "unknown",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("IndexKind(%d).String() = %q", int(k), k.String())
		}
	}
}
