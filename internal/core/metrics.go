package core

import (
	"time"

	"github.com/ebsnlab/geacc/internal/obs"
)

// The package's metric instruments, registered once against the global
// obs registry. Per-run work counts are accumulated locally inside each
// algorithm and flushed with a single Add at the end of the run, so the
// hot loops never touch an atomic per iteration. The full catalog, with
// semantics, lives in docs/OBSERVABILITY.md.
var (
	greedyRuns     = obs.Default().Counter("geacc_greedy_runs_total")
	greedyPops     = obs.Default().Counter("geacc_greedy_pops_total")
	greedyAccepted = obs.Default().Counter("geacc_greedy_accepted_total")
	greedyRejected = obs.Default().Counter("geacc_greedy_rejected_total")

	mcflowRuns          = obs.Default().Counter("geacc_mcflow_runs_total")
	mcflowAugmentations = obs.Default().Counter("geacc_mcflow_augmentations_total")
	mcflowDeltaUnits    = obs.Default().Counter("geacc_mcflow_delta_units_total")

	mcflowWarmAttempts      = obs.Default().Counter("geacc_mcflow_warm_attempts_total")
	mcflowWarmHits          = obs.Default().Counter("geacc_mcflow_warm_hits_total")
	mcflowWarmRestoredUnits = obs.Default().Counter("geacc_mcflow_warm_restored_units_total")
	mcflowWarmColdFallbacks = obs.Default().Counter("geacc_mcflow_warm_cold_fallbacks_total")

	exactRuns     = obs.Default().Counter("geacc_exact_runs_total")
	exactNodes    = obs.Default().Counter("geacc_exact_nodes_total")
	exactPrunes   = obs.Default().Counter("geacc_exact_prunes_total")
	exactComplete = obs.Default().Counter("geacc_exact_complete_total")

	localSearchRuns   = obs.Default().Counter("geacc_localsearch_runs_total")
	localSearchRounds = obs.Default().Counter("geacc_localsearch_rounds_total")

	portfolioRuns     = obs.Default().Counter("geacc_portfolio_runs_total")
	portfolioFailures = obs.Default().Counter("geacc_portfolio_failures_total")
)

// gapBuckets are the histogram bounds for the optimality gap
// (RelaxedUpperBound - MaxSum) / RelaxedUpperBound: a ratio in [0, 1],
// bucketed finely near 0 where the approximation algorithms actually land
// (Theorems 2 and 3 put greedy/mincostflow within constant factors, and in
// practice well under 10% of the Corollary 1 bound).
var gapBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1,
}

// observeGap records one diagnosed solve's optimality gap: the
// per-algorithm distribution (geacc_solve_gap) and the most recent value
// (geacc_solve_last_gap), both keyed by algo.
func observeGap(algo string, gap float64) {
	reg := obs.Default()
	reg.Histogram(obs.Label("geacc_solve_gap", "algo", algo), gapBuckets).Observe(gap)
	reg.FloatGauge(obs.Label("geacc_solve_last_gap", "algo", algo)).Set(gap)
}

// observeSolve records one SolveContext outcome under the per-algorithm
// solve metrics.
func observeSolve(algo string, elapsed time.Duration, err error) {
	reg := obs.Default()
	reg.Counter(obs.Label("geacc_solve_total", "algo", algo)).Inc()
	if err != nil {
		reg.Counter(obs.Label("geacc_solve_errors_total", "algo", algo)).Inc()
		return
	}
	reg.Histogram(obs.Label("geacc_solve_seconds", "algo", algo),
		obs.DefaultLatencyBuckets).Observe(elapsed.Seconds())
}

// observeLocalSearchMoves flushes one LocalSearch run's move counts.
func observeLocalSearchMoves(stats LocalSearchStats) {
	reg := obs.Default()
	reg.Counter(obs.Label("geacc_localsearch_moves_total", "kind", "add")).Add(int64(stats.Additions))
	reg.Counter(obs.Label("geacc_localsearch_moves_total", "kind", "replace")).Add(int64(stats.Replacements))
	reg.Counter(obs.Label("geacc_localsearch_moves_total", "kind", "swap")).Add(int64(stats.Swaps))
}

// observePortfolioWin credits the solver whose matching won a portfolio run.
func observePortfolioWin(algo string) {
	obs.Default().Counter(obs.Label("geacc_portfolio_wins_total", "algo", algo)).Inc()
}

// observeArrangerOp records one dynamic-arranger operation and its latency;
// used as `defer observeArrangerOp("add_event", time.Now())`.
func observeArrangerOp(op string, start time.Time) {
	reg := obs.Default()
	reg.Counter(obs.Label("geacc_arranger_ops_total", "op", op)).Inc()
	reg.Histogram(obs.Label("geacc_arranger_op_seconds", "op", op),
		obs.DefaultLatencyBuckets).Observe(time.Since(start).Seconds())
}
