package core

import (
	"fmt"
	"sort"
	"time"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/sim"
)

// Arranger maintains an event-participant arrangement under *online*
// arrival of events and users — the situation a live EBSN actually faces
// (the paper solves the static snapshot; this is the natural operational
// extension). Arrivals are matched greedily against the current state;
// event cancellations release and re-place the affected users; Rebalance
// recomputes the arrangement with the batch Greedy-GEACC when drift
// accumulates.
//
// All operations preserve feasibility (capacities, conflicts, positive
// similarity), which is re-checkable at any time via Snapshot + Validate.
type Arranger struct {
	simFn sim.Func

	events    []Event
	users     []User
	remCapV   []int
	remCapU   []int
	conflicts map[int]map[int]bool // symmetric adjacency over event ids

	matching *Matching
}

// NewArranger returns an empty dynamic arrangement using similarity f.
func NewArranger(f sim.Func) (*Arranger, error) {
	if f == nil {
		return nil, fmt.Errorf("core: nil similarity function")
	}
	return &Arranger{
		simFn:     f,
		conflicts: make(map[int]map[int]bool),
		matching:  NewMatching(),
	}, nil
}

// RestoreArranger rebuilds an arranger from a Snapshot pair: the inverse
// used by the persistent instance store (internal/store) to resume a
// long-lived arrangement after a restart. The instance must be a vector
// instance (SimFunc != nil) — matrix instances cannot grow online — and m
// must be feasible for it. The restored arranger reproduces the donor's
// behavior exactly: events, users, conflicts, the matching (in m's
// insertion order, so MaxSum keeps its accumulation order), and the
// remaining capacities derived from caps minus matched load.
func RestoreArranger(in *Instance, m *Matching) (*Arranger, error) {
	if in.SimFunc == nil {
		return nil, fmt.Errorf("core: restore needs a vector instance (matrix instances cannot grow online)")
	}
	if err := Validate(in, m); err != nil {
		return nil, fmt.Errorf("core: restore snapshot is infeasible: %w", err)
	}
	a := &Arranger{
		simFn:     in.SimFunc,
		events:    append([]Event(nil), in.Events...),
		users:     append([]User(nil), in.Users...),
		conflicts: make(map[int]map[int]bool),
		matching:  m.Clone(),
	}
	if in.Conflicts != nil {
		for _, p := range in.Conflicts.Pairs() {
			i, j := p[0], p[1]
			if a.conflicts[i] == nil {
				a.conflicts[i] = make(map[int]bool)
			}
			if a.conflicts[j] == nil {
				a.conflicts[j] = make(map[int]bool)
			}
			a.conflicts[i][j] = true
			a.conflicts[j][i] = true
		}
	}
	a.recomputeRemaining()
	return a, nil
}

// recomputeRemaining rederives the remaining capacities from the declared
// caps minus the current matching's load.
func (a *Arranger) recomputeRemaining() {
	a.remCapV = make([]int, len(a.events))
	for v := range a.events {
		a.remCapV[v] = a.events[v].Cap - len(a.matching.EventUsers(v))
	}
	a.remCapU = make([]int, len(a.users))
	for u := range a.users {
		a.remCapU[u] = a.users[u].Cap - len(a.matching.UserEvents(u))
	}
}

// SetMatching replaces the current arrangement with m — the adoption hook
// for externally computed re-solves (the service's component-scoped
// rebalance). m is validated against the current snapshot before anything
// changes; on success the arranger keeps a clone (preserving m's insertion
// order) and rederives the remaining capacities.
func (a *Arranger) SetMatching(m *Matching) error {
	in, _, err := a.Snapshot()
	if err != nil {
		return err
	}
	if err := Validate(in, m); err != nil {
		return fmt.Errorf("core: refusing infeasible matching: %w", err)
	}
	a.matching = m.Clone()
	a.recomputeRemaining()
	return nil
}

// NumEvents returns the number of events ever added (including cancelled
// ones, whose capacity is zeroed).
func (a *Arranger) NumEvents() int { return len(a.events) }

// NumUsers returns the number of users added.
func (a *Arranger) NumUsers() int { return len(a.users) }

// MaxSum returns the current arrangement's objective.
func (a *Arranger) MaxSum() float64 { return a.matching.MaxSum() }

// Matching returns a copy of the current arrangement.
func (a *Arranger) Matching() *Matching { return a.matching.Clone() }

// UserEvents returns the events user u currently attends.
func (a *Arranger) UserEvents(u int) []int { return a.matching.UserEvents(u) }

// EventUsers returns the users currently arranged to event v.
func (a *Arranger) EventUsers(v int) []int { return a.matching.EventUsers(v) }

// sim returns the similarity between event v and user u.
func (a *Arranger) sim(v, u int) float64 {
	return a.simFn(a.events[v].Attrs, a.users[u].Attrs)
}

func (a *Arranger) conflicting(i, j int) bool {
	return a.conflicts[i][j]
}

func (a *Arranger) conflictsWithMatched(v, u int) bool {
	for _, w := range a.matching.UserEvents(u) {
		if a.conflicting(v, w) {
			return true
		}
	}
	return false
}

// AddEvent registers a new event, declares its conflicts with existing
// events, and greedily recruits the most interested users with spare
// capacity. It returns the event's id.
func (a *Arranger) AddEvent(e Event, conflictsWith []int) (int, error) {
	defer observeArrangerOp("add_event", time.Now())
	if e.Cap < 0 {
		return 0, fmt.Errorf("core: negative event capacity %d", e.Cap)
	}
	v := len(a.events)
	for _, w := range conflictsWith {
		if w < 0 || w >= v {
			return 0, fmt.Errorf("core: conflict with unknown event %d", w)
		}
	}
	a.events = append(a.events, e)
	a.remCapV = append(a.remCapV, e.Cap)
	for _, w := range conflictsWith {
		if a.conflicts[v] == nil {
			a.conflicts[v] = make(map[int]bool)
		}
		if a.conflicts[w] == nil {
			a.conflicts[w] = make(map[int]bool)
		}
		a.conflicts[v][w] = true
		a.conflicts[w][v] = true
	}
	a.recruitForEvent(v)
	return v, nil
}

// AddUser registers a new user and greedily arranges them into their most
// interesting feasible events. It returns the user's id.
func (a *Arranger) AddUser(u User) (int, error) {
	defer observeArrangerOp("add_user", time.Now())
	if u.Cap < 0 {
		return 0, fmt.Errorf("core: negative user capacity %d", u.Cap)
	}
	id := len(a.users)
	a.users = append(a.users, u)
	a.remCapU = append(a.remCapU, u.Cap)
	a.placeUser(id)
	return id, nil
}

// RemoveUser withdraws a user from the platform: their assignments are
// released (freeing event seats) and the affected events greedily recruit
// replacements. Removing twice is a no-op.
func (a *Arranger) RemoveUser(u int) error {
	defer observeArrangerOp("remove_user", time.Now())
	if u < 0 || u >= len(a.users) {
		return fmt.Errorf("core: unknown user %d", u)
	}
	affected := append([]int(nil), a.matching.UserEvents(u)...)
	rebuilt := NewMatching()
	for _, p := range a.matching.Pairs() {
		if p.U == u {
			a.remCapV[p.V]++
			continue
		}
		rebuilt.Add(p.V, p.U, p.Sim)
	}
	a.matching = rebuilt
	a.users[u].Cap = 0
	a.remCapU[u] = 0
	for _, v := range affected {
		a.recruitForEvent(v)
	}
	return nil
}

// CancelEvent removes an event: its assignments are released and every
// affected user is greedily re-placed. Cancelling twice is a no-op.
func (a *Arranger) CancelEvent(v int) error {
	defer observeArrangerOp("cancel_event", time.Now())
	if v < 0 || v >= len(a.events) {
		return fmt.Errorf("core: unknown event %d", v)
	}
	affected := append([]int(nil), a.matching.EventUsers(v)...)
	// Rebuild the matching without event v.
	rebuilt := NewMatching()
	for _, p := range a.matching.Pairs() {
		if p.V == v {
			a.remCapU[p.U]++
			continue
		}
		rebuilt.Add(p.V, p.U, p.Sim)
	}
	a.matching = rebuilt
	a.events[v].Cap = 0
	a.remCapV[v] = 0
	for _, u := range affected {
		a.placeUser(u)
	}
	return nil
}

// recruitForEvent fills event v with the most interested feasible users.
func (a *Arranger) recruitForEvent(v int) {
	type cand struct {
		u int
		s float64
	}
	var cands []cand
	for u := range a.users {
		if a.remCapU[u] == 0 || a.matching.Contains(v, u) {
			continue
		}
		if s := a.sim(v, u); s > 0 {
			cands = append(cands, cand{u, s})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].s != cands[j].s {
			return cands[i].s > cands[j].s
		}
		return cands[i].u < cands[j].u
	})
	for _, c := range cands {
		if a.remCapV[v] == 0 {
			return
		}
		if a.remCapU[c.u] == 0 || a.conflictsWithMatched(v, c.u) {
			continue
		}
		a.matching.Add(v, c.u, c.s)
		a.remCapV[v]--
		a.remCapU[c.u]--
	}
}

// placeUser arranges user u into their most interesting feasible events.
func (a *Arranger) placeUser(u int) {
	type cand struct {
		v int
		s float64
	}
	var cands []cand
	for v := range a.events {
		if a.remCapV[v] == 0 || a.matching.Contains(v, u) {
			continue
		}
		if s := a.sim(v, u); s > 0 {
			cands = append(cands, cand{v, s})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].s != cands[j].s {
			return cands[i].s > cands[j].s
		}
		return cands[i].v < cands[j].v
	})
	for _, c := range cands {
		if a.remCapU[u] == 0 {
			return
		}
		if a.remCapV[c.v] == 0 || a.conflictsWithMatched(c.v, u) {
			continue
		}
		a.matching.Add(c.v, u, c.s)
		a.remCapV[c.v]--
		a.remCapU[u]--
	}
}

// Snapshot freezes the current state into a static Instance (cancelled
// events keep capacity zero) paired with the current matching, so callers
// can Validate, serialize, or solve it from scratch.
func (a *Arranger) Snapshot() (*Instance, *Matching, error) {
	pairs := make([][2]int, 0)
	for i, adj := range a.conflicts {
		for j := range adj {
			if i < j {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	in, err := NewInstance(
		append([]Event(nil), a.events...),
		append([]User(nil), a.users...),
		conflict.FromPairs(len(a.events), pairs),
		a.simFn,
	)
	if err != nil {
		return nil, nil, err
	}
	return in, a.matching.Clone(), nil
}

// Rebalance re-solves the current snapshot with batch Greedy-GEACC and
// adopts the result if it improves MaxSum. It returns the improvement
// (0 when the incremental arrangement was already at least as good).
func (a *Arranger) Rebalance() (float64, error) {
	defer observeArrangerOp("rebalance", time.Now())
	in, _, err := a.Snapshot()
	if err != nil {
		return 0, err
	}
	fresh := Greedy(in)
	gain := fresh.MaxSum() - a.matching.MaxSum()
	if gain <= 0 {
		return 0, nil
	}
	a.matching = fresh
	a.recomputeRemaining()
	return gain, nil
}
