package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ebsnlab/geacc/internal/sim"
)

func newTestArranger(t *testing.T) *Arranger {
	t.Helper()
	a, err := NewArranger(sim.Euclidean(2, 10))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestArrangerBasicFlow(t *testing.T) {
	a := newTestArranger(t)
	v0, err := a.AddEvent(Event{Attrs: sim.Vector{1, 1}, Cap: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	u0, err := a.AddUser(User{Attrs: sim.Vector{1, 2}, Cap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.UserEvents(u0); len(got) != 1 || got[0] != v0 {
		t.Fatalf("user not placed: %v", got)
	}
	if a.MaxSum() <= 0 {
		t.Fatal("MaxSum not positive")
	}
	in, m, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(in, m); err != nil {
		t.Fatal(err)
	}
}

func TestArrangerEventRecruitsExistingUsers(t *testing.T) {
	a := newTestArranger(t)
	// Two users waiting, then an event arrives with capacity 1: the closer
	// user must win.
	a.AddUser(User{Attrs: sim.Vector{5, 5}, Cap: 1})
	a.AddUser(User{Attrs: sim.Vector{2, 2}, Cap: 1})
	v, err := a.AddEvent(Event{Attrs: sim.Vector{2, 2}, Cap: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.UserEvents(1); len(got) != 1 || got[0] != v {
		t.Fatalf("nearest user not recruited: %v", got)
	}
	if got := a.UserEvents(0); len(got) != 0 {
		t.Fatalf("capacity exceeded: %v", got)
	}
}

func TestArrangerRespectsConflicts(t *testing.T) {
	a := newTestArranger(t)
	u, _ := a.AddUser(User{Attrs: sim.Vector{0, 0}, Cap: 5})
	v0, _ := a.AddEvent(Event{Attrs: sim.Vector{0, 1}, Cap: 1}, nil)
	// Second event conflicts with the first: the user is already in v0 and
	// must not join v1.
	v1, err := a.AddEvent(Event{Attrs: sim.Vector{1, 0}, Cap: 1}, []int{v0})
	if err != nil {
		t.Fatal(err)
	}
	events := a.UserEvents(u)
	if len(events) != 1 || events[0] != v0 {
		t.Fatalf("conflict violated: %v", events)
	}
	_ = v1
	in, m, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(in, m); err != nil {
		t.Fatal(err)
	}
}

func TestArrangerCancelEventReplacesUsers(t *testing.T) {
	a := newTestArranger(t)
	v0, _ := a.AddEvent(Event{Attrs: sim.Vector{1, 1}, Cap: 1}, nil)
	v1, _ := a.AddEvent(Event{Attrs: sim.Vector{1, 2}, Cap: 1}, nil)
	u, _ := a.AddUser(User{Attrs: sim.Vector{1, 1}, Cap: 1})
	if got := a.UserEvents(u); len(got) != 1 || got[0] != v0 {
		t.Fatalf("expected placement in v0: %v", got)
	}
	if err := a.CancelEvent(v0); err != nil {
		t.Fatal(err)
	}
	// The user must migrate to the surviving event.
	if got := a.UserEvents(u); len(got) != 1 || got[0] != v1 {
		t.Fatalf("user not re-placed after cancellation: %v", got)
	}
	// Cancelling again is harmless; unknown ids error.
	if err := a.CancelEvent(v0); err != nil {
		t.Fatal(err)
	}
	if err := a.CancelEvent(99); err == nil {
		t.Fatal("unknown event accepted")
	}
}

func TestArrangerRemoveUserRecruitsReplacement(t *testing.T) {
	a := newTestArranger(t)
	v, _ := a.AddEvent(Event{Attrs: sim.Vector{5, 5}, Cap: 1}, nil)
	// Closest user wins the single seat; a second user waits.
	u0, _ := a.AddUser(User{Attrs: sim.Vector{5, 5}, Cap: 1})
	u1, _ := a.AddUser(User{Attrs: sim.Vector{5, 6}, Cap: 1})
	if got := a.UserEvents(u0); len(got) != 1 {
		t.Fatalf("closest user not placed: %v", got)
	}
	if err := a.RemoveUser(u0); err != nil {
		t.Fatal(err)
	}
	// The freed seat goes to the waiting user.
	if got := a.UserEvents(u1); len(got) != 1 || got[0] != v {
		t.Fatalf("seat not re-filled: %v", got)
	}
	if len(a.UserEvents(u0)) != 0 {
		t.Fatal("removed user still arranged")
	}
	// Removing again is a no-op; unknown ids error.
	if err := a.RemoveUser(u0); err != nil {
		t.Fatal(err)
	}
	if err := a.RemoveUser(42); err == nil {
		t.Fatal("unknown user accepted")
	}
	in, m, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(in, m); err != nil {
		t.Fatal(err)
	}
}

func TestArrangerErrors(t *testing.T) {
	if _, err := NewArranger(nil); err == nil {
		t.Fatal("nil similarity accepted")
	}
	a := newTestArranger(t)
	if _, err := a.AddEvent(Event{Cap: -1}, nil); err == nil {
		t.Fatal("negative event capacity accepted")
	}
	if _, err := a.AddEvent(Event{Attrs: sim.Vector{0, 0}, Cap: 1}, []int{7}); err == nil {
		t.Fatal("conflict with unknown event accepted")
	}
	if _, err := a.AddUser(User{Cap: -1}); err == nil {
		t.Fatal("negative user capacity accepted")
	}
}

func TestArrangerAlwaysFeasibleProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, err := NewArranger(sim.Euclidean(2, 10))
		if err != nil {
			return false
		}
		vec := func() sim.Vector {
			return sim.Vector{rng.Float64() * 10, rng.Float64() * 10}
		}
		ops := 5 + rng.Intn(30)
		for i := 0; i < ops; i++ {
			switch rng.Intn(4) {
			case 0, 1:
				_, err = a.AddUser(User{Attrs: vec(), Cap: 1 + rng.Intn(3)})
			case 2:
				var cf []int
				for v := 0; v < a.NumEvents(); v++ {
					if rng.Float64() < 0.3 {
						cf = append(cf, v)
					}
				}
				_, err = a.AddEvent(Event{Attrs: vec(), Cap: 1 + rng.Intn(4)}, cf)
			case 3:
				if a.NumEvents() > 0 {
					err = a.CancelEvent(rng.Intn(a.NumEvents()))
				}
			}
			if err != nil {
				return false
			}
			in, m, err := a.Snapshot()
			if err != nil || Validate(in, m) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestArrangerRebalanceNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	a, err := NewArranger(sim.Euclidean(2, 10))
	if err != nil {
		t.Fatal(err)
	}
	vec := func() sim.Vector {
		return sim.Vector{rng.Float64() * 10, rng.Float64() * 10}
	}
	// Adversarial arrival order: users first (matched to nothing), then
	// events with conflicts — incremental placement drifts from optimal.
	for i := 0; i < 30; i++ {
		a.AddUser(User{Attrs: vec(), Cap: 1 + rng.Intn(2)})
	}
	for i := 0; i < 8; i++ {
		var cf []int
		for v := 0; v < a.NumEvents(); v++ {
			if rng.Float64() < 0.4 {
				cf = append(cf, v)
			}
		}
		a.AddEvent(Event{Attrs: vec(), Cap: 1 + rng.Intn(5)}, cf)
	}
	before := a.MaxSum()
	gain, err := a.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if gain < 0 {
		t.Fatalf("negative gain %v", gain)
	}
	if a.MaxSum() < before-1e-9 {
		t.Fatalf("rebalance regressed: %v -> %v", before, a.MaxSum())
	}
	in, m, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(in, m); err != nil {
		t.Fatal(err)
	}
	// A second rebalance finds nothing new.
	gain2, err := a.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if gain2 != 0 {
		t.Fatalf("second rebalance gained %v", gain2)
	}
}

func TestArrangerTracksBatchGreedyClosely(t *testing.T) {
	// Online arrival should land near the batch greedy on friendly orders
	// (events first, then users — matching the greedy's own perspective).
	rng := rand.New(rand.NewSource(82))
	a, err := NewArranger(sim.Euclidean(3, 10))
	if err != nil {
		t.Fatal(err)
	}
	vec := func() sim.Vector {
		return sim.Vector{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
	}
	for i := 0; i < 10; i++ {
		var cf []int
		for v := 0; v < a.NumEvents(); v++ {
			if rng.Float64() < 0.25 {
				cf = append(cf, v)
			}
		}
		a.AddEvent(Event{Attrs: vec(), Cap: 1 + rng.Intn(5)}, cf)
	}
	for i := 0; i < 50; i++ {
		a.AddUser(User{Attrs: vec(), Cap: 1 + rng.Intn(3)})
	}
	in, _, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	batch := Greedy(in).MaxSum()
	// Online arrival processes pairs in user order, not global similarity
	// order, so it loses ground — but it must stay in the same ballpark...
	if a.MaxSum() < 0.6*batch {
		t.Fatalf("online %v far below batch greedy %v", a.MaxSum(), batch)
	}
	// ...and a Rebalance must recover the full batch-greedy quality.
	if _, err := a.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if a.MaxSum() < batch-1e-9 {
		t.Fatalf("rebalance did not reach batch greedy: %v < %v", a.MaxSum(), batch)
	}
}
