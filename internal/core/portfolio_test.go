package core

import (
	"math/rand"
	"testing"
)

func TestPortfolioBestOfAll(t *testing.T) {
	in := table1Instance(t)
	best, results, err := Portfolio(in, []string{"greedy", "mincostflow", "random-v"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	// Greedy's 4.28 beats mincostflow's 4.13 on TABLE I.
	if abs(best.MaxSum()-4.28) > 1e-9 {
		t.Fatalf("best = %v, want 4.28", best.MaxSum())
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		if r.Matching.MaxSum() > best.MaxSum()+1e-12 {
			t.Fatalf("best is not best: %s has %v", r.Name, r.Matching.MaxSum())
		}
	}
}

func TestPortfolioErrors(t *testing.T) {
	in := table1Instance(t)
	if _, _, err := Portfolio(in, nil, 1); err == nil {
		t.Error("empty portfolio accepted")
	}
	if _, _, err := Portfolio(in, []string{"greedy", "nope"}, 1); err == nil {
		t.Error("unknown solver accepted")
	}
}

func TestPortfolioDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	in := randMatrixInstance(rng, 4, 8, 3, 3, 0.4)
	a, _, err := Portfolio(in, []string{"random-v", "random-u"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Portfolio(in, []string{"random-v", "random-u"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxSum() != b.MaxSum() {
		t.Error("portfolio not deterministic for a fixed seed")
	}
}

func TestPortfolioConcurrentSafety(t *testing.T) {
	// Many solvers racing on a shared instance; run with -race to verify
	// freedom from data races.
	rng := rand.New(rand.NewSource(92))
	in := randVectorInstance(rng, 6, 20, 3, 4, 3, 0.3)
	names := []string{"greedy", "mincostflow", "random-v", "random-u", "exact"}
	best, results, err := Portfolio(in, names, 2)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, in, best, "portfolio")
	// Exact participates, so the best must equal the optimum.
	var exactSum float64
	for _, r := range results {
		if r.Name == "exact" {
			exactSum = r.Matching.MaxSum()
		}
	}
	if best.MaxSum() < exactSum-1e-9 {
		t.Fatalf("best %v below exact %v", best.MaxSum(), exactSum)
	}
}
