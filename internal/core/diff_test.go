package core

import (
	"math/rand"
	"testing"
)

func TestDiffBasics(t *testing.T) {
	a := NewMatching()
	a.Add(0, 0, 0.5)
	a.Add(1, 1, 0.4)
	b := NewMatching()
	b.Add(0, 0, 0.5)
	b.Add(2, 1, 0.9)

	d := Diff(a, b)
	if d.Empty() {
		t.Fatal("diff claims identical")
	}
	if len(d.Added) != 1 || d.Added[0] != (Assignment{2, 1, 0.9}) {
		t.Fatalf("Added = %v", d.Added)
	}
	if len(d.Removed) != 1 || d.Removed[0] != (Assignment{1, 1, 0.4}) {
		t.Fatalf("Removed = %v", d.Removed)
	}
	if got := d.Gain; abs(got-0.5) > 1e-12 {
		t.Fatalf("Gain = %v", got)
	}
	if users := d.AffectedUsers(); len(users) != 1 || users[0] != 1 {
		t.Fatalf("AffectedUsers = %v", users)
	}
}

func TestDiffIdentical(t *testing.T) {
	a := NewMatching()
	a.Add(0, 0, 0.5)
	d := Diff(a, a.Clone())
	if !d.Empty() || d.Gain != 0 || len(d.AffectedUsers()) != 0 {
		t.Fatalf("diff of identical = %+v", d)
	}
}

func TestDiffEmptySides(t *testing.T) {
	a := NewMatching()
	b := NewMatching()
	b.Add(0, 0, 0.3)
	d := Diff(a, b)
	if len(d.Added) != 1 || len(d.Removed) != 0 {
		t.Fatalf("diff = %+v", d)
	}
	d = Diff(b, a)
	if len(d.Added) != 0 || len(d.Removed) != 1 || d.Gain != -0.3 {
		t.Fatalf("reverse diff = %+v", d)
	}
}

func TestDiffRebalanceScenario(t *testing.T) {
	// Diff of an arrangement before/after rebalance accounts for the gain
	// exactly.
	rng := rand.New(rand.NewSource(121))
	in := randMatrixInstance(rng, 4, 10, 3, 3, 0.4)
	before := RandomV(in, rand.New(rand.NewSource(2)))
	after := Greedy(in)
	d := Diff(before, after)
	if abs(d.Gain-(after.MaxSum()-before.MaxSum())) > 1e-9 {
		t.Fatalf("gain accounting wrong: %v", d.Gain)
	}
	var addSum, removeSum float64
	for _, p := range d.Added {
		addSum += p.Sim
	}
	for _, p := range d.Removed {
		removeSum += p.Sim
	}
	if abs((addSum-removeSum)-d.Gain) > 1e-9 {
		t.Fatalf("added-removed sums disagree with gain")
	}
}
