package core

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"github.com/ebsnlab/geacc/internal/obs"
)

func TestSolveDiagnosticsGapDefinition(t *testing.T) {
	in := table1Instance(t)
	ub := RelaxedUpperBound(in)
	for _, algo := range []string{"greedy", "mincostflow", "exact"} {
		m, d, err := SolveDiagnostics(context.Background(), algo, in, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if d.Algo != algo {
			t.Errorf("%s: Algo = %q", algo, d.Algo)
		}
		if d.Events != in.NumEvents() || d.Users != in.NumUsers() {
			t.Errorf("%s: shape %d×%d, want %d×%d", algo, d.Events, d.Users, in.NumEvents(), in.NumUsers())
		}
		if d.Conflicts != in.Conflicts.Edges() {
			t.Errorf("%s: Conflicts = %d, want %d", algo, d.Conflicts, in.Conflicts.Edges())
		}
		if d.MaxSum != m.MaxSum() || d.Pairs != m.Size() {
			t.Errorf("%s: outcome %v/%d vs matching %v/%d", algo, d.MaxSum, d.Pairs, m.MaxSum(), m.Size())
		}
		if math.Abs(d.RelaxedUpperBound-ub) > 1e-9 {
			t.Errorf("%s: RelaxedUpperBound = %v, want %v", algo, d.RelaxedUpperBound, ub)
		}
		want := (ub - m.MaxSum()) / ub
		if want < 0 {
			want = 0
		}
		if math.Abs(d.Gap-want) > 1e-12 {
			t.Errorf("%s: Gap = %v, want (ub-maxsum)/ub = %v", algo, d.Gap, want)
		}
		if d.Gap < 0 || d.Gap > 1 {
			t.Errorf("%s: gap %v outside [0, 1]", algo, d.Gap)
		}
		if d.Seconds <= 0 {
			t.Errorf("%s: Seconds = %v", algo, d.Seconds)
		}
		if len(d.Phases) == 0 {
			t.Errorf("%s: no phases recorded", algo)
		}
		if len(d.MetricDeltas) == 0 {
			t.Errorf("%s: no metric deltas recorded", algo)
		}
	}
}

func TestSolveDiagnosticsOptimalSolveHasZeroGap(t *testing.T) {
	// Without conflicts MinCostFlow solves the instance exactly, so the
	// achieved MaxSum meets the Corollary 1 bound and the gap must be 0.
	in, err := NewMatrixInstance(
		[]Event{{Cap: 2}, {Cap: 1}},
		[]User{{Cap: 1}, {Cap: 1}, {Cap: 2}},
		nil,
		[][]float64{{0.9, 0.1, 0.5}, {0.2, 0.8, 0.3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	_, d, err := SolveDiagnostics(context.Background(), "mincostflow", in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Gap != 0 {
		t.Errorf("gap = %v on a conflict-free mincostflow solve, want 0", d.Gap)
	}
	if d.EventCapacity != 3 || d.UserCapacity != 4 {
		t.Errorf("capacities %d/%d, want 3/4", d.EventCapacity, d.UserCapacity)
	}
}

func TestSolveDiagnosticsReusesContextRecorder(t *testing.T) {
	in := table1Instance(t)
	rec := obs.NewRecorder()
	ctx := obs.ContextWithRecorder(context.Background(), rec)
	_, d, err := SolveDiagnostics(ctx, "mincostflow", in, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The caller's recorder sees the same spans the artifact lists.
	spans := rec.Spans()
	if len(spans) != len(d.Phases) {
		t.Fatalf("recorder has %d spans, diagnostics %d phases", len(spans), len(d.Phases))
	}
	names := map[string]bool{}
	for _, sp := range spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"solve/mincostflow", "mincostflow/relax", "mincostflow/resolve"} {
		if !names[want] {
			t.Errorf("span %q missing (have %v)", want, names)
		}
	}
}

func TestSolveDiagnosticsPublishesGapMetrics(t *testing.T) {
	in := table1Instance(t)
	reg := obs.Default()
	before := reg.Histogram(obs.Label("geacc_solve_gap", "algo", "greedy"), gapBuckets).Count()
	_, d, err := SolveDiagnostics(context.Background(), "greedy", in, nil)
	if err != nil {
		t.Fatal(err)
	}
	after := reg.Histogram(obs.Label("geacc_solve_gap", "algo", "greedy"), gapBuckets).Count()
	if after != before+1 {
		t.Errorf("gap histogram count %d -> %d, want +1", before, after)
	}
	if got := reg.FloatGauge(obs.Label("geacc_solve_last_gap", "algo", "greedy")).Value(); got != d.Gap {
		t.Errorf("last-gap gauge = %v, want %v", got, d.Gap)
	}
}

func TestDiagnosticsJSONRoundTrip(t *testing.T) {
	in := table1Instance(t)
	_, d, err := SolveDiagnostics(context.Background(), "exact", in, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Diagnostics
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Gap != d.Gap || back.Algo != d.Algo || back.RelaxedUpperBound != d.RelaxedUpperBound {
		t.Errorf("round trip mismatch: %+v vs %+v", back, d)
	}
}
