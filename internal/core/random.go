package core

import "math/rand"

// RandomV is the paper's first baseline: iterate over each event v and add
// each pair {v, u} with probability c_v/|U|, provided the pair satisfies all
// constraints (positive similarity, capacities, conflicts).
func RandomV(in *Instance, rng *rand.Rand) *Matching {
	m := NewMatching()
	nv, nu := in.NumEvents(), in.NumUsers()
	if nv == 0 || nu == 0 {
		return m
	}
	capV := remainingEventCaps(in)
	capU := remainingUserCaps(in)
	for v := 0; v < nv; v++ {
		p := float64(in.Events[v].Cap) / float64(nu)
		for u := 0; u < nu; u++ {
			if rng.Float64() >= p {
				continue
			}
			tryAdd(in, m, capV, capU, v, u)
		}
	}
	return m
}

// RandomU is the paper's second baseline: iterate over each user u and add
// each pair {v, u} with probability c_u/|V| when feasible.
func RandomU(in *Instance, rng *rand.Rand) *Matching {
	m := NewMatching()
	nv, nu := in.NumEvents(), in.NumUsers()
	if nv == 0 || nu == 0 {
		return m
	}
	capV := remainingEventCaps(in)
	capU := remainingUserCaps(in)
	for u := 0; u < nu; u++ {
		p := float64(in.Users[u].Cap) / float64(nv)
		for v := 0; v < nv; v++ {
			if rng.Float64() >= p {
				continue
			}
			tryAdd(in, m, capV, capU, v, u)
		}
	}
	return m
}

// tryAdd assigns v to u when the pair satisfies every GEACC constraint,
// updating the remaining capacities.
func tryAdd(in *Instance, m *Matching, capV, capU []int, v, u int) {
	if capV[v] == 0 || capU[u] == 0 {
		return
	}
	s := in.Similarity(v, u)
	if s <= 0 {
		return
	}
	if in.Conflicts != nil && in.Conflicts.ConflictsWithAny(v, m.UserEvents(u)) {
		return
	}
	m.Add(v, u, s)
	capV[v]--
	capU[u]--
}

func remainingEventCaps(in *Instance) []int {
	caps := make([]int, in.NumEvents())
	for v, e := range in.Events {
		caps[v] = e.Cap
	}
	return caps
}

func remainingUserCaps(in *Instance) []int {
	caps := make([]int, in.NumUsers())
	for u, usr := range in.Users {
		caps[u] = usr.Cap
	}
	return caps
}
