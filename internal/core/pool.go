package core

import (
	"sync"

	"github.com/ebsnlab/geacc/internal/knn"
	"github.com/ebsnlab/geacc/internal/mincostflow"
	"github.com/ebsnlab/geacc/internal/pqueue"
)

// Per-solve scratch pooling. A server solving per request allocates the
// same transient buffers on every call: Greedy's capacity arrays, stream
// tables and candidate heap; MinCostFlow's similarity row and pair-arc
// index; the exact search's similarity matrix. All of them are dead when
// the solve returns and none leak into the returned Matching, so each gets
// a sync.Pool with a reset that rewrites every byte the next solve reads.
// TestPooledSolveRace exercises concurrent reuse under the race detector;
// the solver property tests pin that pooled and fresh runs are
// bit-identical.

// greedyScratch is the per-run working set of GreedyOpts.
type greedyScratch struct {
	capV, capU []int
	vStreams   []knn.Stream
	uStreams   []knn.Stream
	heap       *pqueue.PairHeap
}

var greedyScratchPool = sync.Pool{New: func() any { return new(greedyScratch) }}

// acquireGreedyScratch returns a scratch sized for an nv × nu instance.
// Stream tables come back all-nil (GreedyOpts creates streams lazily and
// tests entries against nil); capacity arrays are uninitialized — the
// caller overwrites every entry.
func acquireGreedyScratch(nv, nu int) *greedyScratch {
	g := greedyScratchPool.Get().(*greedyScratch)
	g.capV = resizeInts(g.capV, nv)
	g.capU = resizeInts(g.capU, nu)
	g.vStreams = resizeStreams(g.vStreams, nv)
	g.uStreams = resizeStreams(g.uStreams, nu)
	if g.heap == nil {
		g.heap = pqueue.NewPairHeap(nu)
	} else {
		g.heap.Reset(nu)
	}
	return g
}

// releaseGreedyScratch clears the stream tables (so a pooled scratch never
// pins a finished instance's kernels alive) and returns the scratch.
func releaseGreedyScratch(g *greedyScratch) {
	clear(g.vStreams)
	clear(g.uStreams)
	greedyScratchPool.Put(g)
}

// mcflowScratch is the per-run working set of relaxedOptimumCtx: one
// similarity row and the pair-arc index mapping (v, u) to its arc.
type mcflowScratch struct {
	simRow  []float64
	pairArc []mincostflow.ArcID
}

var mcflowScratchPool = sync.Pool{New: func() any { return new(mcflowScratch) }}

func acquireMcflowScratch(nv, nu int) *mcflowScratch {
	m := mcflowScratchPool.Get().(*mcflowScratch)
	if cap(m.simRow) < nu {
		m.simRow = make([]float64, nu)
	} else {
		m.simRow = m.simRow[:nu]
	}
	if cap(m.pairArc) < nv*nu {
		m.pairArc = make([]mincostflow.ArcID, nv*nu)
	} else {
		m.pairArc = m.pairArc[:nv*nu]
	}
	return m
}

func releaseMcflowScratch(m *mcflowScratch) { mcflowScratchPool.Put(m) }

// floatsPool recycles flat float64 buffers; the exact search carves its
// |V|×|U| similarity matrix out of one.
var floatsPool = sync.Pool{New: func() any { return []float64(nil) }}

// acquireFloats returns an n-element buffer with unspecified contents.
func acquireFloats(n int) []float64 {
	s := floatsPool.Get().([]float64)
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func releaseFloats(s []float64) {
	if s != nil {
		floatsPool.Put(s) //nolint:staticcheck // slice header allocation is amortized by the saved buffer
	}
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func resizeStreams(s []knn.Stream, n int) []knn.Stream {
	if cap(s) < n {
		s = make([]knn.Stream, n)
	} else {
		s = s[:n]
	}
	return s
}
