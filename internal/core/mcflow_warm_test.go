package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/sim"
)

// deltaUniverse is a pool of entities with immutable attrs (like a
// long-lived arranger instance) from which component sub-instances are
// drawn; tests mutate membership and capacities to simulate delta streams.
type deltaUniverse struct {
	d          int
	eventAttrs []sim.Vector
	userAttrs  []sim.Vector
	eventCaps  []int
	userCaps   []int
	cf         *conflict.Graph // over the full event pool
	simFunc    sim.Func
}

func newDeltaUniverse(rng *rand.Rand, ne, nuPool, d int) *deltaUniverse {
	const maxT = 100.0
	u := &deltaUniverse{d: d, simFunc: sim.Euclidean(d, maxT)}
	for i := 0; i < ne; i++ {
		u.eventAttrs = append(u.eventAttrs, randVec(rng, d, maxT))
		u.eventCaps = append(u.eventCaps, 1+rng.Intn(3))
	}
	for i := 0; i < nuPool; i++ {
		u.userAttrs = append(u.userAttrs, randVec(rng, d, maxT))
		u.userCaps = append(u.userCaps, 1+rng.Intn(3))
	}
	u.cf = conflict.Random(rng, ne, 0.2)
	return u
}

// sub materializes the component sub-instance for the given member ids.
func (uni *deltaUniverse) sub(events, users []int) *Instance {
	evs := make([]Event, len(events))
	for i, e := range events {
		evs[i] = Event{Attrs: uni.eventAttrs[e], Cap: uni.eventCaps[e]}
	}
	usrs := make([]User, len(users))
	for i, id := range users {
		usrs[i] = User{Attrs: uni.userAttrs[id], Cap: uni.userCaps[id]}
	}
	var pairs [][2]int
	for i, a := range events {
		for j, b := range events[i+1:] {
			if uni.cf.Conflicting(a, b) {
				pairs = append(pairs, [2]int{i, i + 1 + j})
			}
		}
	}
	in, err := NewInstance(evs, usrs, conflict.FromPairs(len(events), pairs), uni.simFunc)
	if err != nil {
		panic(err)
	}
	return in
}

// TestWarmFlowMatchesColdAcrossDeltaStreams is the tentpole property: a
// warm-started dirty-component solve must be bit-exact vs the cold path —
// same Delta, same RelaxedMaxSum, same final matching — across long random
// delta streams (entity joins, leaves, and capacity changes).
func TestWarmFlowMatchesColdAcrossDeltaStreams(t *testing.T) {
	const streams, steps = 10, 25 // 250 delta solves total
	for s := 0; s < streams; s++ {
		s := s
		t.Run(fmt.Sprintf("stream%d", s), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + s)))
			uni := newDeltaUniverse(rng, 16, 40, 4)
			wc := NewWarmCache(8)
			events := []int{0, 1, 2, 3}
			users := []int{0, 1, 2, 3, 4, 5, 6, 7}
			for step := 0; step < steps; step++ {
				in := uni.sub(events, users)
				cold, err := minCostFlowCtx(context.Background(), in, FlowOptions{})
				if err != nil {
					t.Fatal(err)
				}
				warm, err := minCostFlowWarmCtx(context.Background(), in, events, users, wc)
				if err != nil {
					t.Fatal(err)
				}
				if warm.Delta != cold.Delta {
					t.Fatalf("step %d: warm Delta %d != cold %d", step, warm.Delta, cold.Delta)
				}
				if warm.RelaxedMaxSum != cold.RelaxedMaxSum {
					t.Fatalf("step %d: warm RelaxedMaxSum %v != cold %v", step, warm.RelaxedMaxSum, cold.RelaxedMaxSum)
				}
				if warm.Matching.MaxSum() != cold.Matching.MaxSum() {
					t.Fatalf("step %d: warm MaxSum %v != cold %v", step, warm.Matching.MaxSum(), cold.Matching.MaxSum())
				}
				wp, cp := warm.Matching.SortedPairs(), cold.Matching.SortedPairs()
				if len(wp) != len(cp) {
					t.Fatalf("step %d: warm %d pairs != cold %d", step, len(wp), len(cp))
				}
				for i := range wp {
					if wp[i] != cp[i] {
						t.Fatalf("step %d: pair %d differs: warm %+v cold %+v", step, i, wp[i], cp[i])
					}
				}
				mustValidate(t, in, warm.Matching, "mincostflow-warm")

				// Mutate the component for the next step.
				switch rng.Intn(5) {
				case 0: // event joins
					if next := pick(rng, len(uni.eventAttrs), events); next >= 0 {
						events = insertSorted(events, next)
					}
				case 1: // event leaves (tombstone-style: also exercised by cap 0 below)
					if len(events) > 2 {
						events = removeAt(events, rng.Intn(len(events)))
					}
				case 2: // user joins
					if next := pick(rng, len(uni.userAttrs), users); next >= 0 {
						users = insertSorted(users, next)
					}
				case 3: // user leaves
					if len(users) > 2 {
						users = removeAt(users, rng.Intn(len(users)))
					}
				case 4: // capacity change (0 simulates a canceled event kept as a tombstone)
					if rng.Intn(2) == 0 {
						uni.eventCaps[events[rng.Intn(len(events))]] = rng.Intn(4)
					} else {
						uni.userCaps[users[rng.Intn(len(users))]] = 1 + rng.Intn(3)
					}
				}
			}
		})
	}
}

// pick returns a pool id not already in members, or -1.
func pick(rng *rand.Rand, poolSize int, members []int) int {
	in := make(map[int]bool, len(members))
	for _, m := range members {
		in[m] = true
	}
	var free []int
	for i := 0; i < poolSize; i++ {
		if !in[i] {
			free = append(free, i)
		}
	}
	if len(free) == 0 {
		return -1
	}
	return free[rng.Intn(len(free))]
}

func insertSorted(s []int, x int) []int {
	s = append(s, x)
	for i := len(s) - 1; i > 0 && s[i] < s[i-1]; i-- {
		s[i], s[i-1] = s[i-1], s[i]
	}
	return s
}

func removeAt(s []int, i int) []int { return append(s[:i:i], s[i+1:]...) }

// TestWarmFlowSurvivesGarbageState pins the safety property: a stale or
// corrupt cached FlowState must never change the result, only (at worst)
// the speed. We plant states with wrong pairs and wild potentials and check
// warm output still equals cold.
func TestWarmFlowSurvivesGarbageState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	uni := newDeltaUniverse(rng, 8, 16, 4)
	events := []int{0, 1, 2, 3, 4}
	users := []int{0, 1, 2, 3, 4, 5, 6, 7}
	in := uni.sub(events, users)
	cold, err := minCostFlowCtx(context.Background(), in, FlowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Garbage within the state contract (rows keyed by ids are always
	// correct because the arranger never rebinds an id to new attrs — so
	// the state's event/user id lists point at unrelated pool ids here):
	// pairs referencing arbitrary live and dead entities, potentials far
	// from valid.
	rows := make([][]float64, 3)
	for i := range rows {
		rows[i] = make([]float64, 4)
		for j := range rows[i] {
			rows[i][j] = rng.Float64()
		}
	}
	garbage := &FlowState{
		events: []int{99, 100, 101}, // none present in the component: no row reuse
		users:  []int{97, 98, 103, 104},
		rows:   rows,
		pot:    []float64{1000, -1000, 3, 0, 42, -7, 9, 9, 9},
		pairs:  [][2]int{{0, 1}, {2, 3}, {99, 98}, {0, 5}, {2, 1}, {4, 0}, {1, 1}},
	}
	wc := NewWarmCache(4)
	wc.put(componentAnchor(events), garbage)
	warm, err := minCostFlowWarmCtx(context.Background(), in, events, users, wc)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Matching.MaxSum() != cold.Matching.MaxSum() || warm.Delta != cold.Delta {
		t.Fatalf("garbage state changed result: warm (%v, %d) cold (%v, %d)",
			warm.Matching.MaxSum(), warm.Delta, cold.Matching.MaxSum(), cold.Delta)
	}
}

func TestWarmCacheEviction(t *testing.T) {
	wc := NewWarmCache(3)
	for i := 0; i < 10; i++ {
		wc.put(i, &FlowState{})
	}
	if wc.Len() != 3 {
		t.Fatalf("cache holds %d states, want 3", wc.Len())
	}
	// 7, 8, 9 are the survivors; touching 7 then inserting evicts 8 next.
	if wc.get(7) == nil {
		t.Fatal("expected anchor 7 resident")
	}
	wc.put(10, &FlowState{})
	if wc.get(8) != nil {
		t.Fatal("anchor 8 should have been evicted (LRU)")
	}
	if wc.get(7) == nil || wc.get(9) == nil || wc.get(10) == nil {
		t.Fatal("LRU kept the wrong anchors")
	}
}

// BenchmarkMcflowWarmDelta measures a 1-entity-delta re-solve with a warm
// cache vs the cold path on the same component shape; CI runs it as the
// warm-start smoke benchmark.
func BenchmarkMcflowWarmDelta(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	uni := newDeltaUniverse(rng, 30, 400, 8)
	events := make([]int, 30)
	for i := range events {
		events[i] = i
	}
	usersA := make([]int, 399)
	for i := range usersA {
		usersA[i] = i
	}
	usersB := append(append([]int(nil), usersA...), 399)
	inA, inB := uni.sub(events, usersA), uni.sub(events, usersB)

	b.Run("warm", func(b *testing.B) {
		wc := NewWarmCache(4)
		if _, err := MinCostFlowWarmCtx(context.Background(), inA, events, usersA, wc); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			in, us := inB, usersB
			if i%2 == 1 {
				in, us = inA, usersA
			}
			if _, err := MinCostFlowWarmCtx(context.Background(), in, events, us, wc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in := inB
			if i%2 == 1 {
				in = inA
			}
			if _, err := MinCostFlowCtx(context.Background(), in, FlowOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
