package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"github.com/ebsnlab/geacc/internal/obs"
)

func ctxTestInstance(t *testing.T) *Instance {
	t.Helper()
	in, err := NewMatrixInstance(
		[]Event{{Cap: 2}, {Cap: 1}},
		[]User{{Cap: 1}, {Cap: 1}, {Cap: 2}},
		nil,
		[][]float64{{0.9, 0.1, 0.5}, {0.2, 0.8, 0.3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSolveContextMatchesPlainSolvers(t *testing.T) {
	in := ctxTestInstance(t)
	for _, name := range SolverNames() {
		plain, err := LookupSolver(name)
		if err != nil {
			t.Fatal(err)
		}
		want := plain(in, rand.New(rand.NewSource(1)))
		got, err := SolveContext(context.Background(), name, in, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.MaxSum() != want.MaxSum() || got.Size() != want.Size() {
			t.Fatalf("%s: ctx result (%v, %d) != plain result (%v, %d)",
				name, got.MaxSum(), got.Size(), want.MaxSum(), want.Size())
		}
		if err := Validate(in, got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestSolveContextUnknownSolver(t *testing.T) {
	if _, err := SolveContext(context.Background(), "quantum", ctxTestInstance(t), nil); err == nil {
		t.Fatal("unknown solver did not error")
	}
}

func TestSolveContextCanceled(t *testing.T) {
	in := ctxTestInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range SolverNames() {
		m, err := SolveContext(ctx, name, in, rand.New(rand.NewSource(1)))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", name, err)
		}
		if m != nil {
			t.Fatalf("%s: returned a matching despite cancellation", name)
		}
	}
}

func TestGreedyCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := GreedyCtx(ctx, ctxTestInstance(t), GreedyOptions{})
	if !errors.Is(err, context.Canceled) || m != nil {
		t.Fatalf("m=%v err=%v", m, err)
	}
}

func TestMinCostFlowCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MinCostFlowCtx(ctx, ctxTestInstance(t), FlowOptions{})
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestExactCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, _, err := ExactOpts(ctxTestInstance(t), ExactOptions{Ctx: ctx})
	if !errors.Is(err, context.Canceled) || m != nil {
		t.Fatalf("m=%v err=%v", m, err)
	}
}

func TestExactCtxCancelMidSearch(t *testing.T) {
	// A 7x7 all-positive instance without pruning expands well past one
	// exactCtxStride of nodes, so a context canceled after the entry check
	// must abort the recursion via the periodic poll.
	n := 7
	events := make([]Event, n)
	users := make([]User, n)
	matrix := make([][]float64, n)
	for i := 0; i < n; i++ {
		events[i] = Event{Cap: 2}
		users[i] = User{Cap: 2}
		matrix[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			matrix[i][j] = 0.1 + 0.8*float64((i*n+j)%17)/17
		}
	}
	in, err := NewMatrixInstance(events, users, nil, matrix)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var searchErr error
	go func() {
		_, _, searchErr = ExactOpts(in, ExactOptions{Ctx: ctx, DisablePruning: true})
		close(done)
	}()
	cancel()
	<-done
	// Either the search finished before the first poll (tiny machines) or
	// it observed the cancellation; both must terminate, and an error must
	// be the context's.
	if searchErr != nil && !errors.Is(searchErr, context.Canceled) {
		t.Fatalf("err = %v", searchErr)
	}
}

func TestPortfolioCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, _, err := PortfolioCtx(ctx, ctxTestInstance(t), []string{"greedy", "mincostflow"}, 1)
	if !errors.Is(err, context.Canceled) || m != nil {
		t.Fatalf("m=%v err=%v", m, err)
	}
}

func TestSolveContextRecordsMetrics(t *testing.T) {
	reg := obs.Default()
	total := reg.Counter(obs.Label("geacc_solve_total", "algo", "greedy"))
	hist := reg.Histogram(obs.Label("geacc_solve_seconds", "algo", "greedy"), obs.DefaultLatencyBuckets)
	beforeTotal, beforeCount := total.Value(), hist.Count()
	if _, err := SolveContext(context.Background(), "greedy", ctxTestInstance(t), nil); err != nil {
		t.Fatal(err)
	}
	if total.Value() != beforeTotal+1 {
		t.Fatalf("solve_total did not increment: %d -> %d", beforeTotal, total.Value())
	}
	if hist.Count() != beforeCount+1 {
		t.Fatalf("solve_seconds did not record: %d -> %d", beforeCount, hist.Count())
	}
}

func TestSolveContextRecordsErrorMetric(t *testing.T) {
	reg := obs.Default()
	errs := reg.Counter(obs.Label("geacc_solve_errors_total", "algo", "mincostflow"))
	before := errs.Value()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveContext(ctx, "mincostflow", ctxTestInstance(t), nil); err == nil {
		t.Fatal("expected error")
	}
	if errs.Value() != before+1 {
		t.Fatalf("solve_errors_total did not increment: %d -> %d", before, errs.Value())
	}
}

func TestSolveContextEmitsSpans(t *testing.T) {
	rec := obs.NewRecorder()
	ctx := obs.ContextWithRecorder(context.Background(), rec)
	if _, err := SolveContext(ctx, "mincostflow", ctxTestInstance(t), nil); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, sp := range rec.Spans() {
		names[sp.Name] = true
	}
	for _, want := range []string{"solve/mincostflow", "mincostflow/relax", "mincostflow/resolve"} {
		if !names[want] {
			t.Fatalf("missing span %q in %v", want, names)
		}
	}
}

func TestPortfolioRecordsWin(t *testing.T) {
	runs := obs.Default().Counter("geacc_portfolio_runs_total")
	before := runs.Value()
	if _, _, err := Portfolio(ctxTestInstance(t), []string{"greedy", "mincostflow"}, 1); err != nil {
		t.Fatal(err)
	}
	if runs.Value() != before+1 {
		t.Fatal("portfolio run not counted")
	}
}
