package core

import (
	"errors"
	"math/rand"
	"testing"
)

func TestExactEmptyInstance(t *testing.T) {
	in, err := NewMatrixInstance(nil, nil, nil, [][]float64{})
	if err != nil {
		t.Fatal(err)
	}
	m, stats, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 0 || stats.Invocations != 0 {
		t.Errorf("empty instance: size=%d invocations=%d", m.Size(), stats.Invocations)
	}
}

func TestExactSinglePair(t *testing.T) {
	in, err := NewMatrixInstance(
		[]Event{{Cap: 1}}, []User{{Cap: 1}}, nil, [][]float64{{0.7}})
	if err != nil {
		t.Fatal(err)
	}
	m, stats, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 1 || m.MaxSum() != 0.7 {
		t.Fatalf("got %v", m.SortedPairs())
	}
	if stats.MaxDepth != 1 {
		t.Errorf("MaxDepth = %d", stats.MaxDepth)
	}
}

func TestExhaustiveEqualsPruned(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		in := randMatrixInstance(rng, 1+rng.Intn(3), 1+rng.Intn(4), 3, 3, rng.Float64())
		pruned, pstats, err := Exact(in)
		if err != nil {
			t.Fatal(err)
		}
		exhaustive, estats, err := ExactOpts(in, ExactOptions{DisablePruning: true, DisableWarmStart: true})
		if err != nil {
			t.Fatal(err)
		}
		if abs(pruned.MaxSum()-exhaustive.MaxSum()) > 1e-9 {
			t.Fatalf("trial %d: pruned %v != exhaustive %v", trial, pruned.MaxSum(), exhaustive.MaxSum())
		}
		if estats.Prunes != 0 {
			t.Fatalf("exhaustive search pruned %d times", estats.Prunes)
		}
		if pstats.Invocations > estats.Invocations {
			t.Fatalf("trial %d: pruning increased invocations: %d > %d",
				trial, pstats.Invocations, estats.Invocations)
		}
		if pstats.CompleteSearches > estats.CompleteSearches {
			t.Fatalf("trial %d: pruning increased complete searches", trial)
		}
	}
}

func TestPruningActuallyFires(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	in := randMatrixInstance(rng, 4, 6, 3, 2, 0.25)
	_, stats, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Prunes == 0 {
		t.Error("no prune fired on a non-trivial instance")
	}
	if stats.AvgPrunedDepth() <= 0 || stats.AvgPrunedDepth() > float64(stats.MaxDepth) {
		t.Errorf("AvgPrunedDepth = %v outside (0, %d]", stats.AvgPrunedDepth(), stats.MaxDepth)
	}
}

func TestAvgPrunedDepthZeroWhenNoPrunes(t *testing.T) {
	var s SearchStats
	if s.AvgPrunedDepth() != 0 {
		t.Error("AvgPrunedDepth on zero prunes")
	}
}

func TestExactNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := randMatrixInstance(rng, 4, 8, 4, 3, 0.25)
	m, stats, err := ExactOpts(in, ExactOptions{NodeLimit: 10, DisableWarmStart: true})
	if !errors.Is(err, ErrNodeLimit) {
		t.Fatalf("err = %v, want ErrNodeLimit", err)
	}
	if stats.Invocations > 11 {
		t.Errorf("limit not enforced: %d invocations", stats.Invocations)
	}
	if m == nil {
		t.Error("best-so-far matching not returned on limit")
	}
}

func TestWarmStartNeverWorseAndFewerNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	betterOrEqualNodes := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		in := randMatrixInstance(rng, 3, 5, 3, 2, 0.5)
		warm, wstats, err := Exact(in)
		if err != nil {
			t.Fatal(err)
		}
		cold, cstats, err := ExactOpts(in, ExactOptions{DisableWarmStart: true})
		if err != nil {
			t.Fatal(err)
		}
		if abs(warm.MaxSum()-cold.MaxSum()) > 1e-9 {
			t.Fatalf("warm start changed the optimum: %v vs %v", warm.MaxSum(), cold.MaxSum())
		}
		if wstats.Invocations <= cstats.Invocations {
			betterOrEqualNodes++
		}
	}
	// The Greedy seed should reduce (or match) search effort on most
	// instances; the paper adds it for exactly this reason.
	if betterOrEqualNodes < trials/2 {
		t.Errorf("warm start helped on only %d/%d instances", betterOrEqualNodes, trials)
	}
}

func TestExactRespectsConflictsDensely(t *testing.T) {
	// Complete conflict graph: every user attends at most one event.
	rng := rand.New(rand.NewSource(15))
	in := randMatrixInstance(rng, 3, 4, 3, 3, 1.0)
	m, _, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, in, m, "exact")
	for u := 0; u < in.NumUsers(); u++ {
		if len(m.UserEvents(u)) > 1 {
			t.Fatalf("user %d attends %d mutually conflicting events", u, len(m.UserEvents(u)))
		}
	}
}

func TestExactVectorInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	in := randVectorInstance(rng, 3, 5, 2, 2, 2, 0.3)
	m, _, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, in, m, "exact")
	if got, want := m.MaxSum(), bruteForceOpt(in); abs(got-want) > 1e-9 {
		t.Fatalf("exact %v != brute force %v on vector instance", got, want)
	}
}
