package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBudgetValidate(t *testing.T) {
	in := table1Instance(t)
	good := &Budget{Prices: make([]float64, 3), Budgets: make([]float64, 5)}
	if err := good.Validate(in); err != nil {
		t.Fatal(err)
	}
	bad := []*Budget{
		{Prices: make([]float64, 2), Budgets: make([]float64, 5)},
		{Prices: make([]float64, 3), Budgets: make([]float64, 4)},
		{Prices: []float64{-1, 0, 0}, Budgets: make([]float64, 5)},
		{Prices: []float64{math.NaN(), 0, 0}, Budgets: make([]float64, 5)},
		{Prices: make([]float64, 3), Budgets: []float64{0, 0, 0, 0, math.Inf(1)}},
	}
	for i, b := range bad {
		if err := b.Validate(in); err == nil {
			t.Errorf("bad budget %d accepted", i)
		}
	}
}

func TestBudgetedGreedyZeroPricesEqualsPlain(t *testing.T) {
	in := table1Instance(t)
	m, err := BudgetedGreedy(in, FreeBudget(in))
	if err != nil {
		t.Fatal(err)
	}
	if !matchingsEqual(m, Greedy(in)) {
		t.Fatal("free budget changed the greedy matching")
	}
}

func TestBudgetedGreedyBindingBudget(t *testing.T) {
	in := table1Instance(t)
	// Every event costs 10; u1 (capacity 3) can only afford one event.
	b := &Budget{
		Prices:  []float64{10, 10, 10},
		Budgets: []float64{10, 10, 10, 10, 10},
	}
	m, err := BudgetedGreedy(in, b)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < in.NumUsers(); u++ {
		if len(m.UserEvents(u)) > 1 {
			t.Fatalf("user %d attends %d events on a one-event budget", u, len(m.UserEvents(u)))
		}
	}
	if err := ValidateBudgeted(in, b, m); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetedGreedyZeroBudgetNoPaidEvents(t *testing.T) {
	in := table1Instance(t)
	// Only v2 is free; broke users can attend v2 alone.
	b := &Budget{
		Prices:  []float64{5, 0, 5},
		Budgets: make([]float64, 5),
	}
	m, err := BudgetedGreedy(in, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Pairs() {
		if p.V != 1 {
			t.Fatalf("paid event %d assigned to a zero-budget user", p.V)
		}
	}
	if m.Size() == 0 {
		t.Fatal("free event not used at all")
	}
}

func TestValidateBudgetedCatchesOverspend(t *testing.T) {
	in := table1Instance(t)
	b := &Budget{
		Prices:  []float64{10, 10, 10},
		Budgets: []float64{5, 5, 5, 5, 5},
	}
	m := NewMatching()
	m.Add(0, 0, 0.93) // costs 10 > budget 5
	if err := ValidateBudgeted(in, b, m); err == nil {
		t.Fatal("overspend accepted")
	}
}

func TestBudgetedGreedyAlwaysFeasibleProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randMatrixInstance(rng, 2+rng.Intn(4), 2+rng.Intn(8), 3, 3, rng.Float64())
		b := &Budget{
			Prices:  make([]float64, in.NumEvents()),
			Budgets: make([]float64, in.NumUsers()),
		}
		for v := range b.Prices {
			b.Prices[v] = rng.Float64() * 20
		}
		for u := range b.Budgets {
			b.Budgets[u] = rng.Float64() * 30
		}
		m, err := BudgetedGreedy(in, b)
		if err != nil {
			return false
		}
		return ValidateBudgeted(in, b, m) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBudgetedGreedyLooseBudgetsMatchPlainProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randMatrixInstance(rng, 2+rng.Intn(4), 2+rng.Intn(6), 3, 3, rng.Float64())
		b := &Budget{
			Prices:  make([]float64, in.NumEvents()),
			Budgets: make([]float64, in.NumUsers()),
		}
		for v := range b.Prices {
			b.Prices[v] = 1
		}
		for u := range b.Budgets {
			b.Budgets[u] = float64(in.NumEvents()) // can afford everything
		}
		m, err := BudgetedGreedy(in, b)
		if err != nil {
			return false
		}
		return matchingsEqual(m, Greedy(in))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBudgetedGreedyComposesHooks(t *testing.T) {
	in := table1Instance(t)
	var steps int
	banned := func(v, u int) bool { return !(v == 0 && u == 0) } // forbid (v1, u1)
	m, err := BudgetedGreedyOpts(in, FreeBudget(in), GreedyOptions{
		Feasible: banned,
		Trace:    func(TraceStep) { steps++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Contains(0, 0) {
		t.Fatal("user Feasible hook ignored")
	}
	if steps == 0 {
		t.Fatal("user Trace hook ignored")
	}
}
