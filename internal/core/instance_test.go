package core

import (
	"testing"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/sim"
)

func TestNewInstanceValidation(t *testing.T) {
	f := sim.Euclidean(2, 10)
	ok := func(events []Event, users []User, cf *conflict.Graph) error {
		_, err := NewInstance(events, users, cf, f)
		return err
	}
	if err := ok([]Event{{Attrs: sim.Vector{1, 2}, Cap: 1}}, []User{{Attrs: sim.Vector{3, 4}, Cap: 1}}, nil); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	if err := ok([]Event{{Attrs: sim.Vector{1}, Cap: 1}}, []User{{Attrs: sim.Vector{3, 4}, Cap: 1}}, nil); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if err := ok([]Event{{Attrs: sim.Vector{1, 2}, Cap: -1}}, nil, nil); err == nil {
		t.Error("negative event capacity accepted")
	}
	if err := ok(nil, []User{{Attrs: sim.Vector{1, 2}, Cap: -3}}, nil); err == nil {
		t.Error("negative user capacity accepted")
	}
	if err := ok([]Event{{Attrs: sim.Vector{1, 2}, Cap: 1}}, nil, conflict.New(5)); err == nil {
		t.Error("conflict graph size mismatch accepted")
	}
	if _, err := NewInstance(nil, nil, nil, nil); err == nil {
		t.Error("nil similarity function accepted")
	}
}

func TestNewMatrixInstanceValidation(t *testing.T) {
	events := []Event{{Cap: 1}, {Cap: 2}}
	users := []User{{Cap: 1}}
	if _, err := NewMatrixInstance(events, users, nil, [][]float64{{0.5}, {0.7}}); err != nil {
		t.Errorf("valid matrix instance rejected: %v", err)
	}
	if _, err := NewMatrixInstance(events, users, nil, [][]float64{{0.5}}); err == nil {
		t.Error("wrong row count accepted")
	}
	if _, err := NewMatrixInstance(events, users, nil, [][]float64{{0.5, 0.6}, {0.7, 0.8}}); err == nil {
		t.Error("wrong column count accepted")
	}
	if _, err := NewMatrixInstance(events, users, nil, [][]float64{{1.5}, {0.7}}); err == nil {
		t.Error("similarity > 1 accepted")
	}
	if _, err := NewMatrixInstance(events, users, nil, [][]float64{{-0.1}, {0.7}}); err == nil {
		t.Error("negative similarity accepted")
	}
}

func TestInstanceAccessors(t *testing.T) {
	f := sim.Euclidean(1, 10)
	in, err := NewInstance(
		[]Event{{Attrs: sim.Vector{0}, Cap: 5}, {Attrs: sim.Vector{10}, Cap: 2}},
		[]User{{Attrs: sim.Vector{0}, Cap: 3}, {Attrs: sim.Vector{5}, Cap: 4}, {Attrs: sim.Vector{10}, Cap: 1}},
		conflict.FromPairs(2, [][2]int{{0, 1}}),
		f,
	)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumEvents() != 2 || in.NumUsers() != 3 {
		t.Fatal("wrong sizes")
	}
	if in.Similarity(0, 0) != 1 {
		t.Errorf("Similarity(0,0) = %v", in.Similarity(0, 0))
	}
	if in.Similarity(0, 2) != 0 {
		t.Errorf("Similarity(0,2) = %v", in.Similarity(0, 2))
	}
	if !in.Conflicting(0, 1) || in.Conflicting(1, 1) {
		t.Error("Conflicting wrong")
	}
	if in.MaxUserCap() != 4 || in.MaxEventCap() != 5 {
		t.Error("capacity maxima wrong")
	}
	sv, su := in.CapSums()
	if sv != 7 || su != 8 {
		t.Errorf("CapSums = %d, %d", sv, su)
	}
	if len(in.EventAttrs()) != 2 || len(in.UserAttrs()) != 3 {
		t.Error("attribute views wrong")
	}
}

func TestConflictingWithNilGraph(t *testing.T) {
	in, err := NewMatrixInstance([]Event{{Cap: 1}}, []User{{Cap: 1}}, nil, [][]float64{{0.4}})
	if err != nil {
		t.Fatal(err)
	}
	if in.Conflicting(0, 0) {
		t.Error("nil conflict graph must mean no conflicts")
	}
}

func TestMatrixInstanceSimilarityLookup(t *testing.T) {
	in, err := NewMatrixInstance(
		[]Event{{Cap: 1}, {Cap: 1}},
		[]User{{Cap: 1}, {Cap: 1}},
		nil,
		[][]float64{{0.1, 0.2}, {0.3, 0.4}},
	)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 2; v++ {
		for u := 0; u < 2; u++ {
			want := [][]float64{{0.1, 0.2}, {0.3, 0.4}}[v][u]
			if got := in.Similarity(v, u); got != want {
				t.Errorf("Similarity(%d,%d) = %v, want %v", v, u, got, want)
			}
		}
	}
}
