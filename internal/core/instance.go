package core

import (
	"fmt"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/sim"
)

// Event is an event v = <l_v, c_v> (Definition 1): attribute vector plus the
// maximum number of attendees.
type Event struct {
	Attrs sim.Vector
	Cap   int
}

// User is a user u = <l_u, c_u> (Definition 2): attribute vector plus the
// maximum number of events the user may be arranged to.
type User struct {
	Attrs sim.Vector
	Cap   int
}

// Instance is a GEACC problem instance (Definition 5). Similarities come
// either from a similarity function over the attribute vectors (the paper's
// Equation 1 setup) or from an explicit |V|×|U| matrix (as in the TABLE I
// walkthrough, where interestingness values are given directly).
type Instance struct {
	Events    []Event
	Users     []User
	Conflicts *conflict.Graph

	// SimFunc computes similarities from attribute vectors. Ignored when
	// Matrix is non-nil.
	SimFunc sim.Func
	// Matrix optionally fixes similarity values explicitly: Matrix[v][u].
	Matrix [][]float64

	// Batched similarity kernels over each side's attribute vectors, built
	// once by NewInstance (nil on matrix instances and on Instance literals
	// assembled without the constructor). They are a pure fast path: every
	// consumer falls back to SimFunc when they are absent or stale.
	usersKernel  *sim.Kernel // evaluates sim(query, Users[u].Attrs)
	eventsKernel *sim.Kernel // evaluates sim(query, Events[v].Attrs)
}

// NewInstance builds a vector-based instance and validates its shape.
// conflicts may be nil for a conflict-free instance.
func NewInstance(events []Event, users []User, conflicts *conflict.Graph, f sim.Func) (*Instance, error) {
	in := &Instance{Events: events, Users: users, Conflicts: conflicts, SimFunc: f}
	if f == nil {
		return nil, fmt.Errorf("core: nil similarity function")
	}
	if err := in.check(); err != nil {
		return nil, err
	}
	d := -1
	for i, e := range events {
		if d == -1 {
			d = len(e.Attrs)
		}
		if len(e.Attrs) != d {
			return nil, fmt.Errorf("core: event %d has %d attributes, want %d", i, len(e.Attrs), d)
		}
	}
	for i, u := range users {
		if d == -1 {
			d = len(u.Attrs)
		}
		if len(u.Attrs) != d {
			return nil, fmt.Errorf("core: user %d has %d attributes, want %d", i, len(u.Attrs), d)
		}
	}
	in.usersKernel = sim.NewKernel(in.UserAttrs(), f)
	in.eventsKernel = sim.NewKernel(in.EventAttrs(), f)
	return in, nil
}

// NewMatrixInstance builds an instance with explicit similarity values.
// matrix must be |events| × |users| with entries in [0, 1].
func NewMatrixInstance(events []Event, users []User, conflicts *conflict.Graph, matrix [][]float64) (*Instance, error) {
	in := &Instance{Events: events, Users: users, Conflicts: conflicts, Matrix: matrix}
	if err := in.check(); err != nil {
		return nil, err
	}
	if len(matrix) != len(events) {
		return nil, fmt.Errorf("core: matrix has %d rows, want %d", len(matrix), len(events))
	}
	for v, row := range matrix {
		if len(row) != len(users) {
			return nil, fmt.Errorf("core: matrix row %d has %d columns, want %d", v, len(row), len(users))
		}
		for u, s := range row {
			if s < 0 || s > 1 {
				return nil, fmt.Errorf("core: similarity (%d, %d) = %v outside [0, 1]", v, u, s)
			}
		}
	}
	return in, nil
}

// check validates the pieces common to both constructors.
func (in *Instance) check() error {
	for i, e := range in.Events {
		if e.Cap < 0 {
			return fmt.Errorf("core: event %d has negative capacity %d", i, e.Cap)
		}
	}
	for i, u := range in.Users {
		if u.Cap < 0 {
			return fmt.Errorf("core: user %d has negative capacity %d", i, u.Cap)
		}
	}
	if in.Conflicts != nil && in.Conflicts.N() != len(in.Events) {
		return fmt.Errorf("core: conflict graph covers %d events, instance has %d", in.Conflicts.N(), len(in.Events))
	}
	return nil
}

// NumEvents returns |V|.
func (in *Instance) NumEvents() int { return len(in.Events) }

// NumUsers returns |U|.
func (in *Instance) NumUsers() int { return len(in.Users) }

// Similarity returns sim(l_v, l_u) for event v and user u.
func (in *Instance) Similarity(v, u int) float64 {
	if in.Matrix != nil {
		return in.Matrix[v][u]
	}
	if k := in.kernelOverUsers(); k != nil {
		return k.Sim(in.Events[v].Attrs, u)
	}
	return in.SimFunc(in.Events[v].Attrs, in.Users[u].Attrs)
}

// kernelOverUsers returns the batched kernel over user attribute vectors, or
// nil when it is unavailable or stale. Staleness happens when Users was
// replaced after construction (e.g. the bench harness truncates a copied
// instance without re-running NewInstance); the length check keeps such
// copies on the always-correct SimFunc path.
func (in *Instance) kernelOverUsers() *sim.Kernel {
	if in.usersKernel != nil && in.usersKernel.Len() == len(in.Users) {
		return in.usersKernel
	}
	return nil
}

// kernelOverEvents is kernelOverUsers for the event side.
func (in *Instance) kernelOverEvents() *sim.Kernel {
	if in.eventsKernel != nil && in.eventsKernel.Len() == len(in.Events) {
		return in.eventsKernel
	}
	return nil
}

// SimilarityRow fills out[u] = Similarity(v, u) for every user, batching
// through the kernel when available. len(out) must be NumUsers(). The
// decomposition layer (internal/decomp) scans these rows to build the
// positive-similarity union graph; values are bit-identical to per-pair
// Similarity calls, so sub-instance matchings validate against the parent.
func (in *Instance) SimilarityRow(v int, out []float64) {
	in.similarityRow(v, out)
}

// similarityRow fills out[u] = Similarity(v, u) for every user, batching
// through the kernel when available. len(out) must be NumUsers().
func (in *Instance) similarityRow(v int, out []float64) {
	if in.Matrix != nil {
		copy(out, in.Matrix[v])
		return
	}
	if k := in.kernelOverUsers(); k != nil {
		k.SimBatch(in.Events[v].Attrs, 0, len(in.Users), out)
		return
	}
	for u := range in.Users {
		out[u] = in.SimFunc(in.Events[v].Attrs, in.Users[u].Attrs)
	}
}

// similarityColumn fills out[v] = Similarity(v, u) for every event, batching
// through the kernel when available. len(out) must be NumEvents().
func (in *Instance) similarityColumn(u int, out []float64) {
	if in.Matrix != nil {
		for v := range in.Events {
			out[v] = in.Matrix[v][u]
		}
		return
	}
	// Columns evaluate f(user, event); the recognized built-ins are bitwise
	// symmetric so the swap is invisible, but a custom Func only promises
	// semantic symmetry — keep it on the original f(event, user) orientation.
	if k := in.kernelOverEvents(); k != nil && k.Batched() {
		k.SimBatch(in.Users[u].Attrs, 0, len(in.Events), out)
		return
	}
	for v := range in.Events {
		out[v] = in.SimFunc(in.Events[v].Attrs, in.Users[u].Attrs)
	}
}

// Conflicting reports whether events i and j conflict. A nil conflict graph
// means CF = ∅.
func (in *Instance) Conflicting(i, j int) bool {
	return in.Conflicts != nil && in.Conflicts.Conflicting(i, j)
}

// MaxUserCap returns max c_u, the α in both approximation ratios.
func (in *Instance) MaxUserCap() int {
	m := 0
	for _, u := range in.Users {
		if u.Cap > m {
			m = u.Cap
		}
	}
	return m
}

// MaxEventCap returns max c_v.
func (in *Instance) MaxEventCap() int {
	m := 0
	for _, e := range in.Events {
		if e.Cap > m {
			m = e.Cap
		}
	}
	return m
}

// CapSums returns (Σ c_v, Σ c_u). Δmax of Algorithm 1 is their minimum.
func (in *Instance) CapSums() (sumV, sumU int64) {
	for _, e := range in.Events {
		sumV += int64(e.Cap)
	}
	for _, u := range in.Users {
		sumU += int64(u.Cap)
	}
	return sumV, sumU
}

// EventAttrs returns the event attribute vectors (nil entries for matrix
// instances).
func (in *Instance) EventAttrs() []sim.Vector {
	out := make([]sim.Vector, len(in.Events))
	for i, e := range in.Events {
		out[i] = e.Attrs
	}
	return out
}

// UserAttrs returns the user attribute vectors.
func (in *Instance) UserAttrs() []sim.Vector {
	out := make([]sim.Vector, len(in.Users))
	for i, u := range in.Users {
		out[i] = u.Attrs
	}
	return out
}
