package core

import (
	"context"
	"math/rand"
	"time"

	"github.com/ebsnlab/geacc/internal/obs"
)

// Diagnostics is the per-solve quality/latency artifact: the instance
// shape, the achieved MaxSum against the Corollary 1 relaxation bound, the
// resulting optimality gap, where the wall-clock time went (one entry per
// recorded span), and how much solver work the run performed (deltas of
// the process-global obs counters). It is what `geacc-solve -diag` prints
// and what `POST /solve?diag=1` embeds in its response.
type Diagnostics struct {
	Algo string `json:"algo"`

	// Instance shape.
	Events        int `json:"events"`         // |V|
	Users         int `json:"users"`          // |U|
	Conflicts     int `json:"conflicts"`      // |CF|
	EventCapacity int `json:"event_capacity"` // Σ c_v
	UserCapacity  int `json:"user_capacity"`  // Σ c_u

	// Outcome.
	Pairs  int     `json:"pairs"`
	MaxSum float64 `json:"max_sum"`

	// Quality: RelaxedUpperBound is MaxSum(M∅), the conflict-free
	// relaxation optimum of Corollary 1, and Gap is
	// (RelaxedUpperBound - MaxSum) / RelaxedUpperBound — 0 means the solve
	// met the bound (provably optimal), clamped to 0 when the bound itself
	// is 0 (empty instances have nothing to lose).
	RelaxedUpperBound float64 `json:"relaxed_upper_bound"`
	Gap               float64 `json:"gap"`

	// Timing: total wall clock plus one entry per span the solve emitted
	// (solve/<algo> and the per-phase spans underneath it).
	Seconds float64       `json:"seconds"`
	Phases  []PhaseTiming `json:"phases,omitempty"`

	// MetricDeltas holds the obs counters the run moved (heap pops,
	// augmenting paths, search nodes, …), by encoded series name. Deltas
	// are read from the process-global registry, so concurrent solves in
	// other goroutines bleed into each other's counts; on a busy server
	// treat them as indicative, in a CLI run they are exact.
	MetricDeltas map[string]int64 `json:"metric_deltas,omitempty"`

	// Decomposition is present only when the solve ran through the
	// connected-component decomposition layer (internal/decomp): how the
	// instance sharded and how the component pool was sized.
	Decomposition *DecompositionStats `json:"decomposition,omitempty"`

	// Partition is present only when approximate sharding ran
	// (internal/partition): how oversized components split, what the cut
	// cost was, and the measured loss vs the unsharded Corollary 1 bound.
	Partition *PartitionStats `json:"partition,omitempty"`

	// ExactGate is present for exact solves that passed through an area
	// gate (the server's HTTP budget): the area the decision saw and
	// whether the request was refused.
	ExactGate *ExactGateStats `json:"exact_gate,omitempty"`
}

// PartitionStats aggregates the approximate-sharding layer across the
// components of one solve. Filled by internal/decomp when Options.Shard is
// set and at least one component exceeded the area threshold.
type PartitionStats struct {
	// Runs counts components routed through partitioning; Shards is the
	// total sub-shard count across them.
	Runs   int `json:"runs"`
	Shards int `json:"shards"`
	// Fallbacks counts components whose drift estimate breached the hard
	// budget and were re-solved monolithically (their drift is zero).
	Fallbacks int `json:"fallbacks,omitempty"`
	// CutPairs / CutConflicts count positive-similarity pairs and CF edges
	// crossing shard boundaries (the latter can never bind in the merge).
	CutPairs     int `json:"cut_pairs"`
	CutConflicts int `json:"cut_conflicts,omitempty"`
	// RepairMoves / RepairGain summarize the boundary repair pass.
	RepairMoves int     `json:"repair_moves"`
	RepairGain  float64 `json:"repair_gain"`
	// MaxDriftEstimate is the largest per-component bounded relative loss
	// (LostCutBound / merged MaxSum); always <= DriftBudget unless the
	// component fell back.
	MaxDriftEstimate float64 `json:"max_drift_estimate"`
	DriftBudget      float64 `json:"drift_budget"`
	MaxArea          int64   `json:"max_area"`
	Strategy         string  `json:"strategy"`
	// BoundLoss is the measured relative MaxSum loss of the whole solve vs
	// the unsharded Corollary 1 relaxation bound — identical to
	// Diagnostics.Gap, restated here so the sharding artifact is
	// self-contained. Filled by diagnostics assemblers.
	BoundLoss float64 `json:"bound_loss"`
}

// ExactGateStats records an exact-solve area-gate decision: ComponentArea
// is the largest |V|·|U| the gate saw (the whole instance when not
// decomposed), Limit the configured ceiling, Gated whether the request was
// refused because of it.
type ExactGateStats struct {
	ComponentArea int64 `json:"component_area"`
	Limit         int64 `json:"limit"`
	Gated         bool  `json:"gated"`
}

// DecompositionStats summarizes one decomposed solve: the component count
// and the largest shard (the wall-clock floor of the parallel phase), the
// stranded nodes that cannot appear in any matching (events with no
// positive-similarity user in their component, and vice versa), the worker
// pool size, and the union-graph construction time. Filled by
// internal/decomp; zero-valued fields are meaningful (a fully connected
// instance has Components == 1 and no stranded nodes).
type DecompositionStats struct {
	Components     int     `json:"components"`
	LargestEvents  int     `json:"largest_events"`
	LargestUsers   int     `json:"largest_users"`
	StrandedEvents int     `json:"stranded_events,omitempty"`
	StrandedUsers  int     `json:"stranded_users,omitempty"`
	Workers        int     `json:"workers"`
	BuildSeconds   float64 `json:"build_seconds"`
}

// PhaseTiming is one named wall-clock interval inside a solve.
type PhaseTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// SolveDiagnostics runs the named registry solver like SolveContext and
// additionally assembles the Diagnostics artifact. A recorder already on
// ctx is reused (the solve's spans land in it as usual); otherwise a
// private one is attached so phase timings are always captured. The gap is
// also published to the obs registry (geacc_solve_gap{algo=…} histogram,
// geacc_solve_last_gap{algo=…} gauge).
//
// Computing RelaxedUpperBound costs one extra min-cost-flow solve of the
// relaxation; callers on a latency budget should stick to SolveContext.
func SolveDiagnostics(ctx context.Context, name string, in *Instance, rng *rand.Rand) (*Matching, *Diagnostics, error) {
	rec := obs.RecorderFrom(ctx)
	if rec == nil {
		rec = obs.NewRecorder()
		ctx = obs.ContextWithRecorder(ctx, rec)
	}
	spansBefore := len(rec.Spans())
	before := obs.Default().Counters()
	start := time.Now()
	m, err := SolveContext(ctx, name, in, rng)
	elapsed := time.Since(start)
	if err != nil {
		return nil, nil, err
	}
	deltas := obs.DiffCounters(before, obs.Default().Counters())
	spans := rec.Spans()[spansBefore:]
	return m, BuildDiagnostics(name, in, m, elapsed, spans, deltas), nil
}

// BuildDiagnostics assembles the artifact from an already-completed solve:
// the server uses it directly for the portfolio path, SolveDiagnostics for
// everything else. It computes the Corollary 1 bound (one relaxation
// solve) and publishes the gap metrics as a side effect.
func BuildDiagnostics(algo string, in *Instance, m *Matching, elapsed time.Duration,
	spans []obs.SpanData, deltas map[string]int64) *Diagnostics {
	d := &Diagnostics{
		Algo:         algo,
		Events:       in.NumEvents(),
		Users:        in.NumUsers(),
		Pairs:        m.Size(),
		MaxSum:       m.MaxSum(),
		Seconds:      elapsed.Seconds(),
		MetricDeltas: deltas,
	}
	if in.Conflicts != nil {
		d.Conflicts = in.Conflicts.Edges()
	}
	for _, e := range in.Events {
		d.EventCapacity += e.Cap
	}
	for _, u := range in.Users {
		d.UserCapacity += u.Cap
	}
	for _, sp := range spans {
		d.Phases = append(d.Phases, PhaseTiming{Name: sp.Name, Seconds: sp.Duration.Seconds()})
	}
	d.RelaxedUpperBound = RelaxedUpperBound(in)
	if d.RelaxedUpperBound > 0 {
		d.Gap = (d.RelaxedUpperBound - d.MaxSum) / d.RelaxedUpperBound
		// MaxSum can exceed the bound only by float rounding; a negative
		// gap would just confuse dashboards.
		if d.Gap < 0 {
			d.Gap = 0
		}
	}
	observeGap(algo, d.Gap)
	return d
}
