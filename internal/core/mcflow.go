package core

import (
	"context"
	"math"
	"sort"

	"github.com/ebsnlab/geacc/internal/mincostflow"
	"github.com/ebsnlab/geacc/internal/obs"
)

// FlowResult carries the output of MinCostFlow-GEACC plus diagnostics used
// by the experiments and tests.
type FlowResult struct {
	// Matching is the final feasible arrangement M (after conflict
	// resolution).
	Matching *Matching
	// Relaxed is M∅, the optimal arrangement of the conflict-free
	// relaxation. It may assign users to conflicting events.
	Relaxed *Matching
	// RelaxedMaxSum = MaxSum(M∅). By Corollary 1 it upper-bounds
	// MaxSum(M_OPT) of the conflict-constrained instance.
	RelaxedMaxSum float64
	// Delta is the flow amount Δ whose minimum-cost flow produced M∅.
	Delta int64
}

// FlowOptions tunes MinCostFlow-GEACC beyond the paper's defaults.
type FlowOptions struct {
	// ExactResolution replaces the paper's greedy per-user conflict
	// resolution (lines 8-14) with an exact maximum-weight-independent-set
	// computation per user. MWIS is NP-hard in general, but each user's
	// candidate set in M∅ has at most c_u ≤ |V| events, and a bitmask
	// dynamic program over those few events is cheap. An extension/ablation
	// knob: it can only improve MaxSum, and Theorem 2's ratio still holds.
	ExactResolution bool
}

// MinCostFlow runs MinCostFlow-GEACC (Algorithm 1 of the paper): solve the
// conflict-free relaxation exactly via minimum-cost flow over all flow
// amounts Δ ∈ [Δmin, Δmax], keep the best arrangement M∅, then resolve each
// user's conflicts greedily (a maximum-weight-independent-set heuristic).
// The result is feasible and within 1/max c_u of the optimum (Theorem 2).
//
// The Δ-sweep is computed incrementally: the successive-shortest-path solver
// yields, after the k-th augmentation, a minimum-cost flow of amount k, and
// augmenting-path costs never decrease, so MaxSum(M∅^Δ) = Δ − cost(Δ) is
// concave in Δ. Augmentation therefore stops at the first shortest path with
// per-unit cost ≥ 1 — exactly the Δ maximizing the sweep of lines 3-7.
func MinCostFlow(in *Instance) *FlowResult {
	return MinCostFlowOpts(in, FlowOptions{})
}

// MinCostFlowOpts runs MinCostFlow-GEACC with explicit options.
func MinCostFlowOpts(in *Instance, opt FlowOptions) *FlowResult {
	res, _ := minCostFlowCtx(context.Background(), in, opt)
	return res
}

// MinCostFlowCtx runs MinCostFlow-GEACC under a context. Cancellation is
// polled between successive augmenting paths — the unit of work of the
// Δ-sweep, and the only place the algorithm spends superlinear time — so a
// disconnected client stops a long run within one Dijkstra pass. A
// canceled run returns ctx's error and a nil result.
func MinCostFlowCtx(ctx context.Context, in *Instance, opt FlowOptions) (*FlowResult, error) {
	res, err := minCostFlowCtx(ctx, in, opt)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func minCostFlowCtx(ctx context.Context, in *Instance, opt FlowOptions) (*FlowResult, error) {
	sp := obs.RecorderFrom(ctx).Start("mincostflow/relax")
	res, err := relaxedOptimumCtx(ctx, in)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = obs.RecorderFrom(ctx).Start("mincostflow/resolve")
	if opt.ExactResolution {
		res.Matching = resolveConflictsExact(in, res.Relaxed)
	} else {
		res.Matching = resolveConflicts(in, res.Relaxed)
	}
	sp.End()
	return res, nil
}

// RelaxedUpperBound returns MaxSum(M∅), the optimum of the conflict-free
// relaxation, which upper-bounds the conflict-constrained optimum
// (Corollary 1). Tests use it to sandwich algorithm results.
func RelaxedUpperBound(in *Instance) float64 {
	res, _ := relaxedOptimumCtx(context.Background(), in)
	return res.RelaxedMaxSum
}

// relaxedOptimumCtx solves the GEACC instance with CF = ∅ exactly
// (Lemma 1) via the minimum-cost-flow reduction of Section III.A, polling
// ctx between augmentations.
func relaxedOptimumCtx(ctx context.Context, in *Instance) (*FlowResult, error) {
	mcflowRuns.Inc()
	nv, nu := in.NumEvents(), in.NumUsers()
	res := &FlowResult{Relaxed: NewMatching()}
	if nv == 0 || nu == 0 {
		return res, nil
	}

	// Node layout: source, events, users, sink.
	s := 0
	eventNode := func(v int) int { return 1 + v }
	userNode := func(u int) int { return 1 + nv + u }
	t := 1 + nv + nu

	// The network, solver, and index scratch are pooled: every byte read by
	// this solve is rewritten below, and nothing pooled escapes into the
	// returned FlowResult.
	g := mincostflow.AcquireGraph(nv + nu + 2)
	defer mincostflow.ReleaseGraph(g)
	g.Grow(nv + nu + nv*nu)
	for v, e := range in.Events {
		g.AddArc(s, eventNode(v), int64(e.Cap), 0)
	}
	for u, usr := range in.Users {
		g.AddArc(userNode(u), t, int64(usr.Cap), 0)
	}
	// Pair arcs — including zero-similarity pairs, exactly as the paper's
	// construction demands (they make every Δ up to Δmax feasible; Lemma 1
	// relies on that). Arc ids are recorded to read flows back. Costs come
	// from one batched similarity row per event.
	scratch := acquireMcflowScratch(nv, nu)
	defer releaseMcflowScratch(scratch)
	pairArc, simRow := scratch.pairArc, scratch.simRow
	for v := 0; v < nv; v++ {
		in.similarityRow(v, simRow)
		for u := 0; u < nu; u++ {
			pairArc[v*nu+u] = g.AddArc(eventNode(v), userNode(u), 1, 1-simRow[u])
		}
	}

	sv := mincostflow.AcquireSolver(g, s, t)
	defer mincostflow.ReleaseSolver(sv)
	// Augment while a unit of flow still increases MaxSum = Δ − cost, i.e.
	// while the next path's per-unit cost is below 1. Each iteration is one
	// Dijkstra pass, so polling ctx here bounds the cancellation latency by
	// a single shortest-path computation.
	var augmentations int64
	for {
		if err := ctx.Err(); err != nil {
			mcflowAugmentations.Add(augmentations)
			return nil, err
		}
		if _, _, ok := sv.AugmentBelow(math.MaxInt64, 1); !ok {
			break
		}
		augmentations++
	}
	mcflowAugmentations.Add(augmentations)
	res.Delta = sv.TotalFlow()
	mcflowDeltaUnits.Add(res.Delta)

	for v := 0; v < nv; v++ {
		in.similarityRow(v, simRow)
		for u := 0; u < nu; u++ {
			if g.Flow(pairArc[v*nu+u]) != 1 {
				continue
			}
			if s := simRow[u]; s > 0 {
				res.Relaxed.Add(v, u, s)
			}
		}
	}
	res.RelaxedMaxSum = res.Relaxed.MaxSum()
	return res, nil
}

// resolveConflictsExact replaces the greedy selection with an exact
// per-user maximum-weight independent set, computed by enumerating subsets
// of the user's M∅ events (at most c_u of them, so 2^c_u states). Falls
// back to the greedy heuristic for pathological users with > 20 events.
func resolveConflictsExact(in *Instance, relaxed *Matching) *Matching {
	m := NewMatching()
	for u := 0; u < in.NumUsers(); u++ {
		events := relaxed.UserEvents(u)
		if len(events) == 0 {
			continue
		}
		if len(events) > 20 {
			for _, v := range greedyIndependent(in, u, events) {
				m.Add(v, u, in.Similarity(v, u))
			}
			continue
		}
		bestMask, bestSum := 0, -1.0
		for mask := 0; mask < 1<<len(events); mask++ {
			sum := 0.0
			ok := true
			for i := 0; ok && i < len(events); i++ {
				if mask&(1<<i) == 0 {
					continue
				}
				for j := i + 1; j < len(events); j++ {
					if mask&(1<<j) != 0 && in.Conflicting(events[i], events[j]) {
						ok = false
						break
					}
				}
				sum += in.Similarity(events[i], u)
			}
			if ok && sum > bestSum {
				bestMask, bestSum = mask, sum
			}
		}
		for i, v := range events {
			if bestMask&(1<<i) != 0 {
				m.Add(v, u, in.Similarity(v, u))
			}
		}
	}
	return m
}

// greedyIndependent is the paper's per-user greedy selection, returning the
// kept events.
func greedyIndependent(in *Instance, u int, events []int) []int {
	sorted := append([]int(nil), events...)
	sort.Slice(sorted, func(i, j int) bool {
		si, sj := in.Similarity(sorted[i], u), in.Similarity(sorted[j], u)
		if si != sj {
			return si > sj
		}
		return sorted[i] < sorted[j]
	})
	var kept []int
	for _, v := range sorted {
		if in.Conflicts != nil && in.Conflicts.ConflictsWithAny(v, kept) {
			continue
		}
		kept = append(kept, v)
	}
	return kept
}

// resolveConflicts implements lines 8-14 of Algorithm 1: for each user,
// greedily keep the most interesting pairwise-non-conflicting subset of the
// events M∅ assigned to that user.
func resolveConflicts(in *Instance, relaxed *Matching) *Matching {
	m := NewMatching()
	// Process users in ascending order for deterministic output.
	for u := 0; u < in.NumUsers(); u++ {
		events := relaxed.UserEvents(u)
		if len(events) == 0 {
			continue
		}
		for _, v := range greedyIndependent(in, u, events) {
			m.Add(v, u, in.Similarity(v, u))
		}
	}
	return m
}
