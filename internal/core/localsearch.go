package core

import "fmt"

// LocalSearchOptions tunes LocalSearch. The zero value uses sane defaults.
type LocalSearchOptions struct {
	// MaxRounds caps improvement sweeps; <= 0 means 100. Each round scans
	// every (event, user) pair once, so the worst case is
	// O(MaxRounds · |V| · |U| · c) where c is the per-move feasibility
	// check.
	MaxRounds int
}

// LocalSearchStats reports what LocalSearch did.
type LocalSearchStats struct {
	Rounds       int
	Additions    int
	Replacements int
	Swaps        int
	Gain         float64
}

// LocalSearch improves a feasible matching by first-improvement moves until
// a local optimum (or the round cap):
//
//   - add: insert an unmatched feasible pair (positive gain by definition);
//   - replace-user: swap (v, u) for (v, u') when u' values v strictly more
//     and can take it;
//   - replace-event: swap (v, u) for (v', u) when u values v' strictly more
//     and v' has room;
//   - 2-swap: exchange the users of two pairs, (v₁,u₁),(v₂,u₂) →
//     (v₁,u₂),(v₂,u₁), when the total similarity strictly rises and both
//     new pairs are feasible — the move that escapes local optima the
//     1-exchanges cannot (no free capacity needed anywhere).
//
// It never returns a matching worse than its input, preserves feasibility,
// and is a post-processing extension to the paper's algorithms: the greedy
// result is maximal but 1-exchange moves can still reshuffle capacity to
// higher-value pairs (see BenchmarkLocalSearch for measured gains).
func LocalSearch(in *Instance, start *Matching, opt LocalSearchOptions) (*Matching, LocalSearchStats, error) {
	localSearchRuns.Inc()
	if err := Validate(in, start); err != nil {
		return nil, LocalSearchStats{}, fmt.Errorf("core: local search needs a feasible start: %w", err)
	}
	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 100
	}
	m := start.Clone()
	capV := make([]int, in.NumEvents())
	capU := make([]int, in.NumUsers())
	for v, e := range in.Events {
		capV[v] = e.Cap - len(m.EventUsers(v))
	}
	for u, usr := range in.Users {
		capU[u] = usr.Cap - len(m.UserEvents(u))
	}
	var stats LocalSearchStats
	before := m.MaxSum()
	// Scratch for batched similarity scans: phases 1 and 2 consume whole
	// rows (an event against every user) and columns (a user against every
	// event), which the instance kernel fills in one pass.
	rowBuf := make([]float64, in.NumUsers())
	colBuf := make([]float64, in.NumEvents())

	conflictsFor := func(v, u int, ignoring int) bool {
		for _, w := range m.UserEvents(u) {
			if w == ignoring {
				continue
			}
			if in.Conflicting(v, w) {
				return true
			}
		}
		return false
	}

	for stats.Rounds = 0; stats.Rounds < maxRounds; stats.Rounds++ {
		improved := false
		// Phase 1: additions.
		for v := 0; v < in.NumEvents(); v++ {
			if capV[v] == 0 {
				continue
			}
			in.similarityRow(v, rowBuf)
			for u := 0; u < in.NumUsers(); u++ {
				if capU[u] == 0 || m.Contains(v, u) {
					continue
				}
				s := rowBuf[u]
				if s <= 0 || conflictsFor(v, u, -1) {
					continue
				}
				m.Add(v, u, s)
				capV[v]--
				capU[u]--
				stats.Additions++
				improved = true
				if capV[v] == 0 {
					break
				}
			}
		}
		// Phase 2: 1-exchange replacements. Work over a snapshot of the
		// current pairs; the matching is rebuilt per applied move.
		for _, p := range append([]Assignment(nil), m.Pairs()...) {
			if !m.Contains(p.V, p.U) {
				continue // removed by an earlier move this round
			}
			// replace-user: give v's seat to a better-matching user.
			in.similarityRow(p.V, rowBuf)
			bestU, bestUS := -1, p.Sim
			for u := 0; u < in.NumUsers(); u++ {
				if capU[u] == 0 || m.Contains(p.V, u) {
					continue
				}
				s := rowBuf[u]
				if s > bestUS && !conflictsFor(p.V, u, -1) {
					bestU, bestUS = u, s
				}
			}
			// replace-event: move u's slot to a better event.
			in.similarityColumn(p.U, colBuf)
			bestV, bestVS := -1, p.Sim
			for v := 0; v < in.NumEvents(); v++ {
				if capV[v] == 0 || m.Contains(v, p.U) {
					continue
				}
				s := colBuf[v]
				if s > bestVS && !conflictsFor(v, p.U, p.V) {
					bestV, bestVS = v, s
				}
			}
			if bestU == -1 && bestV == -1 {
				continue
			}
			// Apply the better of the two exchanges.
			removePair(m, p)
			if bestUS >= bestVS && bestU != -1 {
				m.Add(p.V, bestU, bestUS)
				capU[bestU]--
				capU[p.U]++
			} else {
				m.Add(bestV, p.U, bestVS)
				capV[bestV]--
				capV[p.V]++
			}
			stats.Replacements++
			improved = true
		}
		// Phase 3: 2-swaps over the current pair snapshot.
		pairs := append([]Assignment(nil), m.Pairs()...)
		for i := 0; i < len(pairs); i++ {
			p1 := pairs[i]
			if !m.Contains(p1.V, p1.U) {
				continue
			}
			for j := i + 1; j < len(pairs); j++ {
				p2 := pairs[j]
				if !m.Contains(p1.V, p1.U) {
					break // p1 was swapped away by an earlier j
				}
				if !m.Contains(p2.V, p2.U) || p1.V == p2.V || p1.U == p2.U {
					continue
				}
				s12 := in.Similarity(p1.V, p2.U)
				s21 := in.Similarity(p2.V, p1.U)
				if s12 <= 0 || s21 <= 0 {
					continue
				}
				if s12+s21 <= p1.Sim+p2.Sim+1e-12 {
					continue
				}
				if m.Contains(p1.V, p2.U) || m.Contains(p2.V, p1.U) {
					continue
				}
				// Feasibility after removing both old pairs: u2 joins v1,
				// u1 joins v2; each must clear conflicts against the user's
				// other events.
				if conflictsFor(p1.V, p2.U, p2.V) || conflictsFor(p2.V, p1.U, p1.V) {
					continue
				}
				removePair(m, p1)
				removePair(m, p2)
				m.Add(p1.V, p2.U, s12)
				m.Add(p2.V, p1.U, s21)
				stats.Swaps++
				improved = true
				p1 = Assignment{V: p1.V, U: p2.U, Sim: s12} // continue from the new pair
			}
		}
		if !improved {
			break
		}
	}
	stats.Gain = m.MaxSum() - before
	localSearchRounds.Add(int64(stats.Rounds))
	observeLocalSearchMoves(stats)
	if err := Validate(in, m); err != nil {
		return nil, stats, fmt.Errorf("core: local search broke feasibility: %w", err)
	}
	return m, stats, nil
}

// removePair rebuilds m without the given pair (Matching has no delete by
// design — algorithms in this package only add — so the local search pays
// the rebuild; acceptable at the move rate it applies).
func removePair(m *Matching, p Assignment) {
	old := m.Pairs()
	rebuilt := NewMatching()
	for _, q := range old {
		if q.V == p.V && q.U == p.U {
			continue
		}
		rebuilt.Add(q.V, q.U, q.Sim)
	}
	*m = *rebuilt
}
