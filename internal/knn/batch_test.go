package knn

import (
	"math/rand"
	"testing"

	"github.com/ebsnlab/geacc/internal/sim"
)

// TestChunkedBlockBoundary exercises refills over data sets whose size
// straddles the simBatchBlock granularity, so the batched scan's last
// partial block and the block seams are all hit, and compares the full
// stream against the Sorted oracle pair for pair.
func TestChunkedBlockBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := sim.Euclidean(testDim, testMaxT)
	for _, n := range []int{simBatchBlock - 1, simBatchBlock, simBatchBlock + 1, 2*simBatchBlock + 37} {
		data := testData(rng, n)
		want := drain(NewSorted(data, f).Stream(data[0]), n)
		for _, chunk := range []int{1, 3, DefaultChunkSize, 100} {
			got := drain(NewChunked(data, f, chunk).Stream(data[0]), n)
			if len(got) != len(want) {
				t.Fatalf("n=%d chunk=%d: %d pairs, oracle %d", n, chunk, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d chunk=%d pair %d: %+v, oracle %+v", n, chunk, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParallelMatchesChunkedAcrossBlocks is the determinism property for the
// batched refill: Parallel must return the identical stream — same ids, same
// bit-level similarities, same order — as Chunked for every worker count and
// chunk size, including shard boundaries that do not align with
// simBatchBlock.
func TestParallelMatchesChunkedAcrossBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := sim.Euclidean(testDim, testMaxT)
	n := 2*simBatchBlock + 101
	data := testData(rng, n)
	queries := testData(rng, 4)
	for _, q := range queries {
		want := drain(NewChunked(data, f, DefaultChunkSize).Stream(q), n)
		for _, workers := range []int{1, 2, 3, 5, 16} {
			for _, chunk := range []int{1, DefaultChunkSize, 50} {
				got := drain(NewParallel(data, f, chunk, workers).Stream(q), n)
				ref := drain(NewChunked(data, f, chunk).Stream(q), n)
				if len(got) != len(ref) {
					t.Fatalf("workers=%d chunk=%d: %d pairs, chunked %d", workers, chunk, len(got), len(ref))
				}
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("workers=%d chunk=%d pair %d: parallel %+v, chunked %+v", workers, chunk, i, got[i], ref[i])
					}
				}
				// Chunk size must not change the yielded sequence either.
				if len(ref) != len(want) {
					t.Fatalf("chunk=%d changed stream length: %d vs %d", chunk, len(ref), len(want))
				}
				for i := range ref {
					if ref[i] != want[i] {
						t.Fatalf("chunk=%d pair %d: %+v vs %+v", chunk, i, ref[i], want[i])
					}
				}
			}
		}
	}
}

// TestKernelConstructorsShareStore: the *Kernel constructors must index the
// kernel's vectors, not a copy, and behave exactly like their (data, f)
// counterparts.
func TestKernelConstructorsShareStore(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := sim.Euclidean(testDim, testMaxT)
	data := testData(rng, 120)
	k := sim.NewKernel(data, f)
	q := data[7]
	want := drain(NewSorted(data, f).Stream(q), 120)
	for name, ix := range map[string]Index{
		"sorted":   NewSortedKernel(k),
		"chunked":  NewChunkedKernel(k, 0),
		"parallel": NewParallelKernel(k, 0, 0),
	} {
		if ix.Len() != len(data) {
			t.Fatalf("%s: Len %d, want %d", name, ix.Len(), len(data))
		}
		got := drain(ix.Stream(q), 120)
		if len(got) != len(want) {
			t.Fatalf("%s: %d pairs, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s pair %d: %+v, want %+v", name, i, got[i], want[i])
			}
		}
	}
	// VA-file and LSH keep their own contracts; just check they run over a
	// shared kernel and yield self as the first neighbor.
	for name, ix := range map[string]Index{
		"vafile": NewVAFileKernel(k, 6),
		"lsh":    NewLSHKernel(k, 8, 4, 1),
	} {
		id, sv, ok := ix.Stream(q).Next()
		if !ok || id != 7 || sv != 1 {
			t.Fatalf("%s: first neighbor (%d, %v, %v), want (7, 1, true)", name, id, sv, ok)
		}
	}
}
