package knn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ebsnlab/geacc/internal/sim"
)

func TestVAFileMatchesOracle(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		data := testData(rng, 50+rng.Intn(100))
		va := NewVAFile(data, f, 4)
		oracle := NewSorted(data, f)
		query := testData(rng, 1)[0]
		want := normalizeTies(drain(oracle.Stream(query), len(data)))
		got := normalizeTies(drain(va.Stream(query), len(data)))
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d neighbors, oracle %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d neighbor %d = %+v, oracle %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestVAFileMatchesOracleWithTies(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		data := gridData(rng, 80)
		va := NewVAFile(data, f, 3)
		query := gridData(rng, 1)[0]
		want := normalizeTies(drain(NewSorted(data, f).Stream(query), len(data)))
		got := normalizeTies(drain(va.Stream(query), len(data)))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d neighbor %d = %+v, oracle %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestVAFileBitWidths(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	rng := rand.New(rand.NewSource(43))
	data := testData(rng, 120)
	query := testData(rng, 1)[0]
	want := normalizeTies(drain(NewSorted(data, f).Stream(query), len(data)))
	// Every quantization granularity must stay exact (bounds are
	// conservative); only the candidate-scan efficiency varies. Also covers
	// the clamping of out-of-range widths.
	for _, bits := range []uint{0, 1, 2, 6, 8, 12} {
		va := NewVAFile(data, f, bits)
		got := normalizeTies(drain(va.Stream(query), len(data)))
		if len(got) != len(want) {
			t.Fatalf("bits=%d: %d neighbors, oracle %d", bits, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("bits=%d neighbor %d mismatch", bits, i)
			}
		}
	}
}

func TestVAFileEmptyAndDegenerate(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	va := NewVAFile(nil, f, 4)
	if va.Len() != 0 {
		t.Error("empty Len")
	}
	if _, _, ok := va.Stream(make(sim.Vector, testDim)).Next(); ok {
		t.Error("empty index yielded")
	}
	// All-identical points (degenerate range).
	data := []sim.Vector{{5, 5, 5}, {5, 5, 5}, {5, 5, 5}}
	va = NewVAFile(data, f, 4)
	got := drain(va.Stream(sim.Vector{5, 5, 4}), 10)
	if len(got) != 3 || got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("degenerate data: %+v", got)
	}
}

func TestVAFileZeroSimilarityOmitted(t *testing.T) {
	f := sim.Euclidean(1, 10)
	data := []sim.Vector{{10}, {5}, {0}}
	va := NewVAFile(data, f, 4)
	got := drain(va.Stream(sim.Vector{0}), 10)
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestVAFileQueryOutsideDataRange(t *testing.T) {
	// Queries far outside the quantization range exercise the edge clamps.
	f := sim.Euclidean(1, 1000)
	data := []sim.Vector{{100}, {110}, {120}}
	va := NewVAFile(data, f, 4)
	got := drain(va.Stream(sim.Vector{500}), 10)
	if len(got) != 3 || got[0].ID != 2 || got[2].ID != 0 {
		t.Fatalf("high-side query: %+v", got)
	}
	got = drain(va.Stream(sim.Vector{0}), 10)
	if len(got) != 3 || got[0].ID != 0 || got[2].ID != 2 {
		t.Fatalf("low-side query: %+v", got)
	}
}

func TestVAFileEquivalenceProperty(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := testData(rng, 20+rng.Intn(60))
		query := testData(rng, 1)[0]
		oracle := normalizeTies(drain(NewSorted(data, f).Stream(query), len(data)))
		got := normalizeTies(drain(NewVAFile(data, f, uint(1+rng.Intn(8))).Stream(query), len(data)))
		if len(got) != len(oracle) {
			return false
		}
		for i := range got {
			if got[i] != oracle[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkVAFileFirstNeighbor(b *testing.B) {
	f := sim.Euclidean(testDim, testMaxT)
	rng := rand.New(rand.NewSource(44))
	data := testData(rng, 10000)
	va := NewVAFile(data, f, 6)
	query := testData(rng, 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := va.Stream(query)
		if _, _, ok := s.Next(); !ok {
			b.Fatal("no neighbor")
		}
	}
}
