package knn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ebsnlab/geacc/internal/sim"
)

func TestParallelMatchesChunkedExactly(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 15; trial++ {
		data := testData(rng, 100+rng.Intn(200))
		query := testData(rng, 1)[0]
		chunkSize := 1 + rng.Intn(10)
		want := drain(NewChunked(data, f, chunkSize).Stream(query), len(data))
		for _, workers := range []int{1, 2, 4, 7} {
			got := drain(NewParallel(data, f, chunkSize, workers).Stream(query), len(data))
			if len(got) != len(want) {
				t.Fatalf("trial %d workers=%d: %d vs %d neighbors", trial, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d workers=%d neighbor %d: %+v vs %+v",
						trial, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestParallelMatchesOracleWithTies(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	rng := rand.New(rand.NewSource(52))
	data := gridData(rng, 120)
	query := gridData(rng, 1)[0]
	want := drain(NewSorted(data, f).Stream(query), len(data))
	got := drain(NewParallel(data, f, 4, 4).Stream(query), len(data))
	if len(got) != len(want) {
		t.Fatalf("%d vs %d neighbors", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("neighbor %d: %+v vs oracle %+v", i, got[i], want[i])
		}
	}
}

func TestParallelEmptyAndDefaults(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	ix := NewParallel(nil, f, 0, 0)
	if ix.Len() != 0 {
		t.Error("Len on empty")
	}
	if _, _, ok := ix.Stream(make(sim.Vector, testDim)).Next(); ok {
		t.Error("empty index yielded")
	}
	// Single item with more workers than items.
	data := []sim.Vector{{1, 2, 3}}
	got := drain(NewParallel(data, f, 0, 16).Stream(sim.Vector{1, 2, 3}), 5)
	if len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestParallelEquivalenceProperty(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := testData(rng, 10+rng.Intn(100))
		query := testData(rng, 1)[0]
		want := drain(NewSorted(data, f).Stream(query), len(data))
		got := drain(NewParallel(data, f, 1+rng.Intn(8), 1+rng.Intn(8)).Stream(query), len(data))
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParallelVsChunkedRefill(b *testing.B) {
	// The paper's d = 20 at the Fig. 5a/5b user scale: enough similarity
	// arithmetic per refill for the parallel shards to pay off.
	const d = 20
	f := sim.Euclidean(d, testMaxT)
	rng := rand.New(rand.NewSource(53))
	data := make([]sim.Vector, 200000)
	for i := range data {
		v := make(sim.Vector, d)
		for j := range v {
			v[j] = rng.Float64() * testMaxT
		}
		data[i] = v
	}
	query := data[len(data)-1]
	b.Run("chunked", func(b *testing.B) {
		ix := NewChunked(data, f, 16)
		for i := 0; i < b.N; i++ {
			if _, _, ok := ix.Stream(query).Next(); !ok {
				b.Fatal("no neighbor")
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		ix := NewParallel(data, f, 16, 0)
		for i := 0; i < b.N; i++ {
			if _, _, ok := ix.Stream(query).Next(); !ok {
				b.Fatal("no neighbor")
			}
		}
	})
}
