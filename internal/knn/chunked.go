package knn

import (
	"sort"

	"github.com/ebsnlab/geacc/internal/sim"
)

// Chunked is the default Index for Greedy-GEACC. A stream materializes only
// the next chunk of nearest neighbors (top-k selection over one linear scan)
// and refills with geometrically growing chunks when exhausted. Nodes that
// consume only a handful of neighbors — the overwhelmingly common case once
// capacities saturate — therefore cost one O(n) scan instead of an
// O(n log n) full sort, which is what keeps Greedy-GEACC near-linear in the
// scalability experiment (Fig. 5a/5b).
type Chunked struct {
	data      []sim.Vector
	f         sim.Func
	firstSize int
}

// DefaultChunkSize is the number of neighbors materialized by a stream's
// first scan. Subsequent refills double the chunk size.
const DefaultChunkSize = 8

// NewChunked builds a Chunked index over data using similarity f. chunkSize
// controls the first refill; values < 1 select DefaultChunkSize.
func NewChunked(data []sim.Vector, f sim.Func, chunkSize int) *Chunked {
	if chunkSize < 1 {
		chunkSize = DefaultChunkSize
	}
	return &Chunked{data: data, f: f, firstSize: chunkSize}
}

// Len returns the number of indexed items.
func (ix *Chunked) Len() int { return len(ix.data) }

// Stream returns a lazily-refilled neighbor cursor for query.
func (ix *Chunked) Stream(query sim.Vector) Stream {
	return &chunkedStream{ix: ix, query: query, chunk: ix.firstSize}
}

type chunkedStream struct {
	ix    *Chunked
	query sim.Vector
	chunk int // size of the next refill

	buf    []Pair // current chunk, sorted (sim desc, id asc)
	pos    int    // cursor within buf
	lastS  float64
	lastID int
	primed bool // false until the first refill
	done   bool // no more neighbors beyond the cursor
}

// Pair is an (id, similarity) candidate used internally by index
// implementations and their tests.
type Pair struct {
	ID int
	S  float64
}

func (s *chunkedStream) Next() (int, float64, bool) {
	for s.pos >= len(s.buf) {
		if s.done {
			return 0, 0, false
		}
		s.refill()
	}
	p := s.buf[s.pos]
	s.pos++
	s.lastS, s.lastID = p.S, p.ID
	return p.ID, p.S, true
}

// refill scans all items strictly after the cursor position in the global
// order and keeps the best s.chunk of them using a bounded min-heap.
func (s *chunkedStream) refill() {
	k := s.chunk
	s.chunk *= 2
	heap := make([]Pair, 0, k)      // min-heap on the (sim desc, id asc) order
	worse := func(a, b Pair) bool { // a strictly after b in global order
		return after(a.S, a.ID, b.S, b.ID)
	}
	siftDown := func(i int) {
		n := len(heap)
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < n && worse(heap[l], heap[m]) {
				m = l
			}
			if r < n && worse(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for id, v := range s.ix.data {
		sv := s.ix.f(s.query, v)
		if sv <= 0 {
			continue
		}
		if s.primed && !after(sv, id, s.lastS, s.lastID) {
			continue // already yielded or currently buffered region
		}
		c := Pair{ID: id, S: sv}
		if len(heap) < k {
			heap = append(heap, c)
			if len(heap) == k {
				for i := k/2 - 1; i >= 0; i-- {
					siftDown(i)
				}
			}
			continue
		}
		// heap[0] is the worst retained candidate; replace it if c is better.
		if worse(heap[0], c) {
			heap[0] = c
			siftDown(0)
		}
	}
	if len(heap) < k {
		for i := len(heap)/2 - 1; i >= 0; i-- {
			siftDown(i)
		}
		s.done = true // the scan found fewer than k remaining items
	}
	sort.Slice(heap, func(i, j int) bool { return worse(heap[j], heap[i]) })
	s.buf = heap
	s.pos = 0
	if len(heap) > 0 {
		s.primed = true
		// Advance the cursor bound to the last buffered element so the next
		// refill resumes after everything currently buffered.
		lastBuffered := heap[len(heap)-1]
		s.lastS, s.lastID = lastBuffered.S, lastBuffered.ID
	}
}
