package knn

import (
	"github.com/ebsnlab/geacc/internal/sim"
)

// Chunked is the default Index for Greedy-GEACC. A stream materializes only
// the next chunk of nearest neighbors (top-k selection over one linear scan)
// and refills with geometrically growing chunks when exhausted. Nodes that
// consume only a handful of neighbors — the overwhelmingly common case once
// capacities saturate — therefore cost one O(n) scan instead of an
// O(n log n) full sort, which is what keeps Greedy-GEACC near-linear in the
// scalability experiment (Fig. 5a/5b). Scans run through the batched
// similarity kernel: sims are computed simBatchBlock rows at a time into a
// per-stream buffer, then a closure-free bounded heap keeps the best k.
type Chunked struct {
	kernel    *sim.Kernel
	firstSize int
	auto      bool // firstSize was defaulted: scale it with the data size
}

// DefaultChunkSize is the number of neighbors materialized by a stream's
// first scan. Subsequent refills double the chunk size.
const DefaultChunkSize = 8

// NewChunked builds a Chunked index over data using similarity f. chunkSize
// controls the first refill; values < 1 select DefaultChunkSize.
func NewChunked(data []sim.Vector, f sim.Func, chunkSize int) *Chunked {
	return NewChunkedKernel(sim.NewKernel(data, f), chunkSize)
}

// NewChunkedKernel builds a Chunked index over an existing kernel, sharing
// its flat store instead of rebuilding one. chunkSize < 1 selects
// DefaultChunkSize.
func NewChunkedKernel(k *sim.Kernel, chunkSize int) *Chunked {
	if chunkSize < 1 {
		// Auto mode: every refill is a full O(n·d) rescan, so on large data
		// a slightly bigger first chunk (amortized top-k selection stays
		// cheap) saves whole extra scans for streams that consume more than
		// a handful of neighbors. The yielded sequence is identical for any
		// chunk size — chunking only changes materialization granularity.
		return &Chunked{kernel: k, firstSize: DefaultChunkSize, auto: true}
	}
	return &Chunked{kernel: k, firstSize: chunkSize}
}

// Len returns the number of indexed items.
func (ix *Chunked) Len() int { return ix.kernel.Len() }

// Stream returns a lazily-refilled neighbor cursor for query.
func (ix *Chunked) Stream(query sim.Vector) Stream {
	first := ix.firstSize
	if ix.auto {
		// n/16 makes the common stream (a node consuming a few dozen
		// neighbors) complete in one scan on large data; the chunk-size
		// sweep in the solver benches bottoms out around this ratio.
		if byN := ix.kernel.Len() / 16; byN > first {
			first = byN
		}
	}
	return &chunkedStream{ix: ix, query: query, chunk: first}
}

type chunkedStream struct {
	ix    *Chunked
	query sim.Vector
	chunk int // size of the next refill

	buf    []Pair    // current chunk, sorted (sim desc, id asc); reused across refills
	simBuf []float64 // batch output buffer, one block long; reused across refills
	pos    int       // cursor within buf
	lastS  float64
	lastID int
	primed bool // false until the first refill
	done   bool // no more neighbors beyond the cursor
}

// Pair is an (id, similarity) candidate used internally by index
// implementations and their tests.
type Pair struct {
	ID int
	S  float64
}

func (s *chunkedStream) Next() (int, float64, bool) {
	for s.pos >= len(s.buf) {
		if s.done {
			return 0, 0, false
		}
		s.refill()
	}
	p := s.buf[s.pos]
	s.pos++
	s.lastS, s.lastID = p.S, p.ID
	return p.ID, p.S, true
}

// refill scans all items strictly after the cursor position in the global
// order and keeps the best s.chunk of them using a bounded min-heap. The
// scan consumes batched similarities block by block; buf is reused as the
// heap storage (it is fully consumed whenever refill runs).
func (s *chunkedStream) refill() {
	k := s.chunk
	s.chunk *= 2
	n := s.ix.kernel.Len()
	if s.simBuf == nil {
		bl := simBatchBlock
		if n < bl {
			bl = n
		}
		s.simBuf = make([]float64, bl)
	}
	heap := s.buf[:0]
	for lo := 0; lo < n; lo += simBatchBlock {
		hi := lo + simBatchBlock
		if hi > n {
			hi = n
		}
		s.ix.kernel.SimBatch(s.query, lo, hi, s.simBuf)
		for j, sv := range s.simBuf[:hi-lo] {
			if sv <= 0 {
				continue
			}
			id := lo + j
			if s.primed && !after(sv, id, s.lastS, s.lastID) {
				continue // already yielded or currently buffered region
			}
			if len(heap) < k {
				heap = append(heap, Pair{ID: id, S: sv})
				if len(heap) == k {
					heapifyPairs(heap)
				}
				continue
			}
			// heap[0] is the worst retained candidate; replace it if better.
			if after(heap[0].S, heap[0].ID, sv, id) {
				heap[0] = Pair{ID: id, S: sv}
				siftPairs(heap, 0, k)
			}
		}
	}
	if len(heap) < k {
		s.done = true // the scan found fewer than k remaining items
	}
	sortBestFirst(heap)
	s.buf = heap
	s.pos = 0
	if len(heap) > 0 {
		s.primed = true
		// Advance the cursor bound to the last buffered element so the next
		// refill resumes after everything currently buffered.
		lastBuffered := heap[len(heap)-1]
		s.lastS, s.lastID = lastBuffered.S, lastBuffered.ID
	}
}
