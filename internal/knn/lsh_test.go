package knn

import (
	"math/rand"
	"testing"

	"github.com/ebsnlab/geacc/internal/sim"
)

func TestLSHStreamSortedAndValid(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	rng := rand.New(rand.NewSource(61))
	data := testData(rng, 500)
	ix := NewLSH(data, f, 6, 4, 1)
	if ix.Len() != 500 {
		t.Fatalf("Len = %d", ix.Len())
	}
	query := testData(rng, 1)[0]
	prev := 2.0
	seen := map[int]bool{}
	s := ix.Stream(query)
	for {
		id, sv, ok := s.Next()
		if !ok {
			break
		}
		if sv > prev {
			t.Fatal("LSH stream not sorted")
		}
		prev = sv
		if sv <= 0 {
			t.Fatal("non-positive similarity yielded")
		}
		if seen[id] {
			t.Fatal("duplicate candidate across tables")
		}
		seen[id] = true
		// Every yielded similarity must be the true one.
		if want := f(query, data[id]); sv != want {
			t.Fatalf("similarity %v != exact %v", sv, want)
		}
	}
}

func TestLSHRecallOnSelfQueries(t *testing.T) {
	// Querying with an indexed point must surface the point itself (it
	// shares all its own buckets) — a basic sanity floor for recall.
	f := sim.Euclidean(testDim, testMaxT)
	rng := rand.New(rand.NewSource(62))
	data := testData(rng, 300)
	ix := NewLSH(data, f, 6, 4, 2)
	hits := 0
	for id := 0; id < 50; id++ {
		s := ix.Stream(data[id])
		firstID, firstSim, ok := s.Next()
		if ok && firstID == id && firstSim == 1 {
			hits++
		}
	}
	if hits != 50 {
		t.Fatalf("self-recall %d/50", hits)
	}
}

func TestLSHTopNeighborRecall(t *testing.T) {
	// The true nearest neighbor should be retrieved for a large majority of
	// queries at these parameters.
	f := sim.Euclidean(testDim, testMaxT)
	rng := rand.New(rand.NewSource(63))
	data := testData(rng, 1000)
	ix := NewLSH(data, f, 8, 4, 3)
	oracle := NewSorted(data, f)
	hits, queries := 0, 50
	for q := 0; q < queries; q++ {
		query := testData(rng, 1)[0]
		trueID, _, ok := oracle.Stream(query).Next()
		if !ok {
			continue
		}
		gotID, _, ok := ix.Stream(query).Next()
		if ok && gotID == trueID {
			hits++
		}
	}
	if hits < queries*6/10 {
		t.Fatalf("top-1 recall %d/%d too low", hits, queries)
	}
}

func TestLSHEmptyAndDegenerate(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	ix := NewLSH(nil, f, 0, 0, 1)
	if ix.Len() != 0 {
		t.Error("Len on empty")
	}
	if _, _, ok := ix.Stream(make(sim.Vector, testDim)).Next(); ok {
		t.Error("empty index yielded")
	}
	// Identical points all land in one bucket.
	data := []sim.Vector{{5, 5, 5}, {5, 5, 5}, {5, 5, 5}}
	ix = NewLSH(data, f, 2, 2, 1)
	got := drain(ix.Stream(sim.Vector{5, 5, 5}), 10)
	if len(got) != 3 {
		t.Fatalf("got %d of 3 identical points", len(got))
	}
}

func TestLSHDeterministicPerSeed(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	rng := rand.New(rand.NewSource(64))
	data := testData(rng, 200)
	query := testData(rng, 1)[0]
	a := drain(NewLSH(data, f, 4, 3, 9).Stream(query), 50)
	b := drain(NewLSH(data, f, 4, 3, 9).Stream(query), 50)
	if len(a) != len(b) {
		t.Fatal("nondeterministic candidate count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic stream")
		}
	}
}
