package knn

import (
	"math"
	"sort"

	"github.com/ebsnlab/geacc/internal/sim"
)

// VAFile is a vector-approximation file (Weber et al., VLDB'98 — the second
// index the paper cites for Greedy-GEACC's NN queries). Every vector is
// quantized to a few bits per dimension; a query first scans the compact
// approximations, using per-cell lower bounds on the true distance to skip
// reading most exact vectors.
//
// This in-memory reproduction keeps the two-phase structure: phase one scans
// the approximation array (cache-friendly, bitsPerDim·d bits per item) and
// computes each item's lower-bound distance; phase two verifies candidates
// in lower-bound order in batches — squared distances come from the kernel's
// dot-product identity over the flat store — maintaining the exact-distance
// result heap. The stream is exact: an item is yielded only once no
// unverified candidate's lower bound precedes it.
type VAFile struct {
	kernel *sim.Kernel

	bitsPerDim uint
	cells      int       // 1 << bitsPerDim
	bounds     []float64 // cells+1 partition boundaries, shared by all dims
	approx     []uint8   // len(data)*dims cell indices (one byte each)
	dims       int
}

// vaVerifyBlock is how many candidates one verification step resolves in a
// single batched distance gather. Verifying a few candidates beyond the
// strictly necessary one is harmless — yields are still gated on exact
// distances against the remaining lower bounds — and the batching repays
// the extra work many times over.
const vaVerifyBlock = 64

// NewVAFile builds a VA-File with 2^bitsPerDim quantization cells per
// dimension (bitsPerDim is clamped to [1, 8]). f must be a similarity that
// strictly decreases with Euclidean distance.
func NewVAFile(data []sim.Vector, f sim.Func, bitsPerDim uint) *VAFile {
	return NewVAFileKernel(sim.NewKernel(data, f), bitsPerDim)
}

// NewVAFileKernel builds a VA-File over an existing kernel, sharing its flat
// store instead of rebuilding one.
func NewVAFileKernel(k *sim.Kernel, bitsPerDim uint) *VAFile {
	if bitsPerDim < 1 {
		bitsPerDim = 1
	}
	if bitsPerDim > 8 {
		bitsPerDim = 8
	}
	va := &VAFile{kernel: k, bitsPerDim: bitsPerDim, cells: 1 << bitsPerDim}
	n := k.Len()
	if n == 0 {
		return va
	}
	va.dims = k.Dim()
	// Equi-width partition over the observed range (the classic VA-File
	// uses equi-populated slices per dimension; equi-width over the global
	// range keeps one boundary array and is just as valid an approximation
	// — bounds only need to be conservative).
	lo, hi := math.Inf(1), math.Inf(-1)
	for id := 0; id < n; id++ {
		for _, x := range k.Row(id) {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	va.bounds = make([]float64, va.cells+1)
	for i := range va.bounds {
		va.bounds[i] = lo + (hi-lo)*float64(i)/float64(va.cells)
	}
	va.approx = make([]uint8, n*va.dims)
	for id := 0; id < n; id++ {
		for dim, x := range k.Row(id) {
			va.approx[id*va.dims+dim] = uint8(va.cell(x))
		}
	}
	return va
}

// cell returns the quantization cell of coordinate x.
func (va *VAFile) cell(x float64) int {
	// bounds[c] <= x < bounds[c+1]; clamp edges.
	c := sort.SearchFloat64s(va.bounds, x) - 1
	if c < 0 {
		c = 0
	}
	if c >= va.cells {
		c = va.cells - 1
	}
	return c
}

// Len returns the number of indexed items.
func (va *VAFile) Len() int { return va.kernel.Len() }

// Stream returns an exact neighbor cursor backed by the approximation scan.
func (va *VAFile) Stream(query sim.Vector) Stream {
	s := &vaStream{va: va, query: query}
	n := va.kernel.Len()
	if n == 0 {
		return s
	}
	// Phase one: lower-bound distance for every item from its approximation.
	// For each dimension, the squared distance from the query coordinate to
	// the item's cell is at least the distance to the cell's nearest edge.
	qCell := make([]int, va.dims)
	for dim, x := range query {
		qCell[dim] = va.cell(x)
	}
	s.cands = make([]Pair, n)
	for id := 0; id < n; id++ {
		var lb float64
		base := id * va.dims
		for dim := 0; dim < va.dims; dim++ {
			c := int(va.approx[base+dim])
			if c == qCell[dim] {
				continue // query may be inside the cell: bound 0
			}
			var d float64
			if c > qCell[dim] {
				d = va.bounds[c] - query[dim]
			} else {
				d = query[dim] - va.bounds[c+1]
			}
			if d > 0 {
				lb += d * d
			}
		}
		s.cands[id] = Pair{ID: id, S: lb} // S holds the squared lower bound
	}
	sort.Slice(s.cands, func(i, j int) bool {
		if s.cands[i].S != s.cands[j].S {
			return s.cands[i].S < s.cands[j].S
		}
		return s.cands[i].ID < s.cands[j].ID
	})
	return s
}

type vaStream struct {
	va    *VAFile
	query sim.Vector

	cands []Pair // unverified items in ascending lower-bound order
	next  int    // cursor into cands

	// verified is a min-heap of exact candidates on (sqDist, id).
	verified []vaCand

	// Reusable batched-verification buffers, vaVerifyBlock long.
	idBuf []int
	sqBuf []float64
}

type vaCand struct {
	sqDist float64
	id     int
}

func (s *vaStream) Next() (int, float64, bool) {
	for {
		// Verify items while an unverified lower bound could still precede
		// the best verified candidate.
		for s.next < len(s.cands) &&
			(len(s.verified) == 0 || s.cands[s.next].S <= s.verified[0].sqDist) {
			s.verifyBlock()
		}
		if len(s.verified) == 0 {
			return 0, 0, false
		}
		best := s.pop()
		sv := s.va.kernel.Sim(s.query, best.id)
		if sv <= 0 {
			// Exact distance order: everything later is also non-positive.
			s.verified = nil
			s.next = len(s.cands)
			return 0, 0, false
		}
		return best.id, sv, true
	}
}

// verifyBlock resolves the next block of candidates with one batched
// squared-distance gather over the flat store.
func (s *vaStream) verifyBlock() {
	m := len(s.cands) - s.next
	if m > vaVerifyBlock {
		m = vaVerifyBlock
	}
	if s.idBuf == nil {
		s.idBuf = make([]int, vaVerifyBlock)
		s.sqBuf = make([]float64, vaVerifyBlock)
	}
	ids := s.idBuf[:m]
	for j, c := range s.cands[s.next : s.next+m] {
		ids[j] = c.ID
	}
	s.va.kernel.SqDistGather(s.query, ids, s.sqBuf[:m])
	for j, id := range ids {
		s.push(vaCand{sqDist: s.sqBuf[j], id: id})
	}
	s.next += m
}

func (s *vaStream) less(a, b vaCand) bool {
	if a.sqDist != b.sqDist {
		return a.sqDist < b.sqDist
	}
	return a.id < b.id
}

func (s *vaStream) push(c vaCand) {
	s.verified = append(s.verified, c)
	i := len(s.verified) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(s.verified[i], s.verified[p]) {
			break
		}
		s.verified[i], s.verified[p] = s.verified[p], s.verified[i]
		i = p
	}
}

func (s *vaStream) pop() vaCand {
	top := s.verified[0]
	last := len(s.verified) - 1
	s.verified[0] = s.verified[last]
	s.verified = s.verified[:last]
	i, n := 0, len(s.verified)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s.less(s.verified[l], s.verified[m]) {
			m = l
		}
		if r < n && s.less(s.verified[r], s.verified[m]) {
			m = r
		}
		if m == i {
			break
		}
		s.verified[i], s.verified[m] = s.verified[m], s.verified[i]
		i = m
	}
	return top
}
