package knn

import (
	"runtime"
	"sort"
	"sync"

	"github.com/ebsnlab/geacc/internal/sim"
)

// Parallel wraps the Chunked strategy with a parallel refill: the linear
// top-k scan is split across workers and the per-worker champions are
// merged. Results are bit-identical to Chunked (selection happens after a
// deterministic merge), so Greedy-GEACC's matching is unchanged; only the
// wall-clock of the Fig. 5a/5b scalability regime (10⁵ users) improves on
// multi-core machines.
type Parallel struct {
	data      []sim.Vector
	f         sim.Func
	firstSize int
	workers   int
}

// NewParallel builds a parallel index over data. workers <= 0 selects
// GOMAXPROCS; chunkSize <= 0 selects DefaultChunkSize.
func NewParallel(data []sim.Vector, f sim.Func, chunkSize, workers int) *Parallel {
	if chunkSize < 1 {
		chunkSize = DefaultChunkSize
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Parallel{data: data, f: f, firstSize: chunkSize, workers: workers}
}

// Len returns the number of indexed items.
func (ix *Parallel) Len() int { return len(ix.data) }

// Stream returns a lazily-refilled neighbor cursor for query.
func (ix *Parallel) Stream(query sim.Vector) Stream {
	return &parallelStream{ix: ix, query: query, chunk: ix.firstSize}
}

type parallelStream struct {
	ix    *Parallel
	query sim.Vector
	chunk int

	buf    []Pair
	pos    int
	lastS  float64
	lastID int
	primed bool
	done   bool
}

func (s *parallelStream) Next() (int, float64, bool) {
	for s.pos >= len(s.buf) {
		if s.done {
			return 0, 0, false
		}
		s.refill()
	}
	p := s.buf[s.pos]
	s.pos++
	s.lastS, s.lastID = p.S, p.ID
	return p.ID, p.S, true
}

// refill scans the data in parallel shards, keeps each shard's best k
// candidates after the cursor, merges, and retains the global best k.
func (s *parallelStream) refill() {
	k := s.chunk
	s.chunk *= 2
	n := len(s.ix.data)
	workers := s.ix.workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	shards := make([][]Pair, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := n * w / workers
			hi := n * (w + 1) / workers
			// Bounded top-k selection over the shard (a min-heap on the
			// global order), exactly like the sequential Chunked scan —
			// never materializing more than k candidates.
			heap := make([]Pair, 0, k)
			siftDown := func(i int) {
				hn := len(heap)
				for {
					l, r := 2*i+1, 2*i+2
					m := i
					if l < hn && after(heap[l].S, heap[l].ID, heap[m].S, heap[m].ID) {
						m = l
					}
					if r < hn && after(heap[r].S, heap[r].ID, heap[m].S, heap[m].ID) {
						m = r
					}
					if m == i {
						return
					}
					heap[i], heap[m] = heap[m], heap[i]
					i = m
				}
			}
			for id := lo; id < hi; id++ {
				sv := s.ix.f(s.query, s.ix.data[id])
				if sv <= 0 {
					continue
				}
				if s.primed && !after(sv, id, s.lastS, s.lastID) {
					continue
				}
				c := Pair{ID: id, S: sv}
				if len(heap) < k {
					heap = append(heap, c)
					if len(heap) == k {
						for i := k/2 - 1; i >= 0; i-- {
							siftDown(i)
						}
					}
					continue
				}
				if after(heap[0].S, heap[0].ID, c.S, c.ID) {
					heap[0] = c
					siftDown(0)
				}
			}
			sort.Slice(heap, func(i, j int) bool {
				return after(heap[j].S, heap[j].ID, heap[i].S, heap[i].ID)
			})
			shards[w] = heap
		}(w)
	}
	wg.Wait()

	var merged []Pair
	for _, shard := range shards {
		merged = append(merged, shard...)
	}
	sort.Slice(merged, func(i, j int) bool {
		return after(merged[j].S, merged[j].ID, merged[i].S, merged[i].ID)
	})
	if len(merged) < k {
		s.done = true
	} else {
		merged = merged[:k]
	}
	s.buf = merged
	s.pos = 0
	if len(merged) > 0 {
		s.primed = true
		last := merged[len(merged)-1]
		s.lastS, s.lastID = last.S, last.ID
	}
}
