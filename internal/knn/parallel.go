package knn

import (
	"runtime"
	"sync"

	"github.com/ebsnlab/geacc/internal/sim"
)

// Parallel wraps the Chunked strategy with a parallel refill: the linear
// top-k scan is split across workers, each worker consuming batched
// similarities block by block over its contiguous shard, and the per-worker
// champions are merged. Results are bit-identical to Chunked (selection
// happens after a deterministic merge over a strict total order), so
// Greedy-GEACC's matching is unchanged; only the wall-clock of the
// Fig. 5a/5b scalability regime (10⁵ users) improves on multi-core machines.
type Parallel struct {
	kernel    *sim.Kernel
	firstSize int
	workers   int
	auto      bool // firstSize was defaulted: scale it with the data size
}

// NewParallel builds a parallel index over data. workers <= 0 (the zero
// value) selects runtime.GOMAXPROCS(0) at construction time, i.e. one
// worker per schedulable CPU; chunkSize <= 0 selects DefaultChunkSize.
func NewParallel(data []sim.Vector, f sim.Func, chunkSize, workers int) *Parallel {
	return NewParallelKernel(sim.NewKernel(data, f), chunkSize, workers)
}

// NewParallelKernel builds a parallel index over an existing kernel, sharing
// its flat store instead of rebuilding one. The chunkSize and workers zero
// values behave as on NewParallel.
func NewParallelKernel(k *sim.Kernel, chunkSize, workers int) *Parallel {
	auto := false
	if chunkSize < 1 {
		chunkSize = DefaultChunkSize
		auto = true
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Parallel{kernel: k, firstSize: chunkSize, workers: workers, auto: auto}
}

// Len returns the number of indexed items.
func (ix *Parallel) Len() int { return ix.kernel.Len() }

// Stream returns a lazily-refilled neighbor cursor for query.
func (ix *Parallel) Stream(query sim.Vector) Stream {
	first := ix.firstSize
	if ix.auto {
		// Same auto-scaling as Chunked so the two stay bit-identical twins.
		if byN := ix.kernel.Len() / 16; byN > first {
			first = byN
		}
	}
	return &parallelStream{ix: ix, query: query, chunk: first}
}

type parallelStream struct {
	ix    *Parallel
	query sim.Vector
	chunk int

	buf    []Pair
	pos    int
	lastS  float64
	lastID int
	primed bool
	done   bool
}

func (s *parallelStream) Next() (int, float64, bool) {
	for s.pos >= len(s.buf) {
		if s.done {
			return 0, 0, false
		}
		s.refill()
	}
	p := s.buf[s.pos]
	s.pos++
	s.lastS, s.lastID = p.S, p.ID
	return p.ID, p.S, true
}

// refill scans the data in parallel shards, keeps each shard's best k
// candidates after the cursor, merges, and retains the global best k.
func (s *parallelStream) refill() {
	k := s.chunk
	s.chunk *= 2
	n := s.ix.kernel.Len()
	workers := s.ix.workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	shards := make([][]Pair, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := n * w / workers
			hi := n * (w + 1) / workers
			// Bounded top-k selection over the shard (a min-heap on the
			// global order), exactly like the sequential Chunked scan —
			// never materializing more than k candidates. Sims arrive
			// through the batched kernel, one block at a time.
			bl := simBatchBlock
			if hi-lo < bl {
				bl = hi - lo
			}
			simBuf := make([]float64, bl)
			heap := make([]Pair, 0, k)
			for blo := lo; blo < hi; blo += simBatchBlock {
				bhi := blo + simBatchBlock
				if bhi > hi {
					bhi = hi
				}
				s.ix.kernel.SimBatch(s.query, blo, bhi, simBuf)
				for j, sv := range simBuf[:bhi-blo] {
					if sv <= 0 {
						continue
					}
					id := blo + j
					if s.primed && !after(sv, id, s.lastS, s.lastID) {
						continue
					}
					if len(heap) < k {
						heap = append(heap, Pair{ID: id, S: sv})
						if len(heap) == k {
							heapifyPairs(heap)
						}
						continue
					}
					if after(heap[0].S, heap[0].ID, sv, id) {
						heap[0] = Pair{ID: id, S: sv}
						siftPairs(heap, 0, k)
					}
				}
			}
			sortBestFirst(heap)
			shards[w] = heap
		}(w)
	}
	wg.Wait()

	merged := s.buf[:0]
	for _, shard := range shards {
		merged = append(merged, shard...)
	}
	sortBestFirst(merged)
	if len(merged) < k {
		s.done = true
	} else {
		merged = merged[:k]
	}
	s.buf = merged
	s.pos = 0
	if len(merged) > 0 {
		s.primed = true
		last := merged[len(merged)-1]
		s.lastS, s.lastID = last.S, last.ID
	}
}
