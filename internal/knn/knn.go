// Package knn provides incremental nearest-neighbor streams over a fixed set
// of attribute vectors.
//
// Greedy-GEACC (Algorithm 2 of the paper) repeatedly asks each event/user
// node for its "next feasible unvisited nearest neighbor". The paper notes
// that any k-NN index can serve these queries and cites iDistance and the
// VA-File. This package offers several interchangeable implementations
// behind one interface:
//
//   - Sorted: sorts all candidates up front; the exactness oracle.
//   - Chunked: lazy top-k selection with geometric refill; near-linear total
//     work when only a few neighbors are consumed (the common case), and the
//     default for Greedy-GEACC.
//   - KDTree: best-first traversal of a kd-tree; exact, fast in low
//     dimensions.
//   - IDistance: an iDistance-style one-dimensional mapping (reference
//     points + sorted projection; the paper's B+-tree is substituted by a
//     binary-searched sorted array) with incremental radius expansion.
//
// All streams yield items in non-increasing similarity order and stop before
// items whose similarity is zero, because GEACC never assigns
// zero-similarity pairs. Sorted and Chunked break similarity ties by
// ascending id. KDTree and IDistance traverse in exact distance order, which
// agrees with similarity order except when two distinct distances round to
// the same similarity value; within such floating-point collisions their
// yield order follows distance, not id.
package knn

import (
	"github.com/ebsnlab/geacc/internal/sim"
)

// Index answers incremental nearest-neighbor queries over a fixed data set.
type Index interface {
	// Stream returns a cursor yielding item ids in non-increasing similarity
	// to query (ties broken by ascending id), omitting zero-similarity items.
	Stream(query sim.Vector) Stream
	// Len returns the number of indexed items.
	Len() int
}

// Stream is a cursor over neighbors of one query, most similar first.
type Stream interface {
	// Next returns the next neighbor and its similarity. ok is false when
	// the stream is exhausted (all remaining items have zero similarity).
	Next() (id int, s float64, ok bool)
}

// after reports whether candidate (cs, cid) comes strictly after the cursor
// position (ps, pid) in the global (similarity desc, id asc) order.
func after(cs float64, cid int, ps float64, pid int) bool {
	if cs != ps {
		return cs < ps
	}
	return cid > pid
}

// simBatchBlock is the scan granularity of the kernel-backed indexes: sims
// are computed simBatchBlock rows at a time into a reusable buffer, keeping
// the buffer hot in L1 while amortizing the batch call.
const simBatchBlock = 512

// siftPairs sifts ps[i] down within ps[:n] under the min-heap-on-"worse"
// invariant: ps[0] is the pair that comes last in (sim desc, id asc) order.
func siftPairs(ps []Pair, i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && after(ps[l].S, ps[l].ID, ps[m].S, ps[m].ID) {
			m = l
		}
		if r < n && after(ps[r].S, ps[r].ID, ps[m].S, ps[m].ID) {
			m = r
		}
		if m == i {
			return
		}
		ps[i], ps[m] = ps[m], ps[i]
		i = m
	}
}

// heapifyPairs establishes the siftPairs invariant over all of ps.
func heapifyPairs(ps []Pair) {
	for i := len(ps)/2 - 1; i >= 0; i-- {
		siftPairs(ps, i, len(ps))
	}
}

// sortBestFirst sorts ps into (sim desc, id asc) order in place with an
// in-place heapsort over the after() order. Ids are distinct, so the order
// is a strict total order and the result is the unique sorted sequence —
// identical to what sort.Slice on the same comparator produced, but without
// the comparator-closure and reflection overhead that dominated refill
// profiles.
func sortBestFirst(ps []Pair) {
	heapifyPairs(ps)
	for end := len(ps) - 1; end > 0; end-- {
		// ps[0] is the worst remaining pair; retire it to the end.
		ps[0], ps[end] = ps[end], ps[0]
		siftPairs(ps, 0, end)
	}
}

// Sorted is the reference Index: each Stream call computes and sorts all
// similarities. O(n log n) per stream; exact and simple. Use it as the
// testing oracle and for small instances.
type Sorted struct {
	kernel *sim.Kernel
}

// NewSorted builds a Sorted index over data using similarity f.
func NewSorted(data []sim.Vector, f sim.Func) *Sorted {
	return NewSortedKernel(sim.NewKernel(data, f))
}

// NewSortedKernel builds a Sorted index over an existing kernel, sharing its
// flat store instead of rebuilding one.
func NewSortedKernel(k *sim.Kernel) *Sorted {
	return &Sorted{kernel: k}
}

// Len returns the number of indexed items.
func (ix *Sorted) Len() int { return ix.kernel.Len() }

// Stream returns a fully-sorted neighbor cursor for query.
func (ix *Sorted) Stream(query sim.Vector) Stream {
	n := ix.kernel.Len()
	sims := make([]float64, n)
	ix.kernel.SimBatch(query, 0, n, sims)
	cands := make([]Pair, 0, n)
	for id, sv := range sims {
		if sv > 0 {
			cands = append(cands, Pair{ID: id, S: sv})
		}
	}
	sortBestFirst(cands)
	ids := make([]int, len(cands))
	ss := make([]float64, len(cands))
	for i, c := range cands {
		ids[i] = c.ID
		ss[i] = c.S
	}
	return &sliceStream{ids: ids, sims: ss}
}

type sliceStream struct {
	ids  []int
	sims []float64
	pos  int
}

func (s *sliceStream) Next() (int, float64, bool) {
	if s.pos >= len(s.ids) {
		return 0, 0, false
	}
	id, sv := s.ids[s.pos], s.sims[s.pos]
	s.pos++
	return id, sv, true
}
