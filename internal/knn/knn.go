// Package knn provides incremental nearest-neighbor streams over a fixed set
// of attribute vectors.
//
// Greedy-GEACC (Algorithm 2 of the paper) repeatedly asks each event/user
// node for its "next feasible unvisited nearest neighbor". The paper notes
// that any k-NN index can serve these queries and cites iDistance and the
// VA-File. This package offers several interchangeable implementations
// behind one interface:
//
//   - Sorted: sorts all candidates up front; the exactness oracle.
//   - Chunked: lazy top-k selection with geometric refill; near-linear total
//     work when only a few neighbors are consumed (the common case), and the
//     default for Greedy-GEACC.
//   - KDTree: best-first traversal of a kd-tree; exact, fast in low
//     dimensions.
//   - IDistance: an iDistance-style one-dimensional mapping (reference
//     points + sorted projection; the paper's B+-tree is substituted by a
//     binary-searched sorted array) with incremental radius expansion.
//
// All streams yield items in non-increasing similarity order and stop before
// items whose similarity is zero, because GEACC never assigns
// zero-similarity pairs. Sorted and Chunked break similarity ties by
// ascending id. KDTree and IDistance traverse in exact distance order, which
// agrees with similarity order except when two distinct distances round to
// the same similarity value; within such floating-point collisions their
// yield order follows distance, not id.
package knn

import (
	"sort"

	"github.com/ebsnlab/geacc/internal/sim"
)

// Index answers incremental nearest-neighbor queries over a fixed data set.
type Index interface {
	// Stream returns a cursor yielding item ids in non-increasing similarity
	// to query (ties broken by ascending id), omitting zero-similarity items.
	Stream(query sim.Vector) Stream
	// Len returns the number of indexed items.
	Len() int
}

// Stream is a cursor over neighbors of one query, most similar first.
type Stream interface {
	// Next returns the next neighbor and its similarity. ok is false when
	// the stream is exhausted (all remaining items have zero similarity).
	Next() (id int, s float64, ok bool)
}

// after reports whether candidate (cs, cid) comes strictly after the cursor
// position (ps, pid) in the global (similarity desc, id asc) order.
func after(cs float64, cid int, ps float64, pid int) bool {
	if cs != ps {
		return cs < ps
	}
	return cid > pid
}

// Sorted is the reference Index: each Stream call computes and sorts all
// similarities. O(n log n) per stream; exact and simple. Use it as the
// testing oracle and for small instances.
type Sorted struct {
	data []sim.Vector
	f    sim.Func
}

// NewSorted builds a Sorted index over data using similarity f.
func NewSorted(data []sim.Vector, f sim.Func) *Sorted {
	return &Sorted{data: data, f: f}
}

// Len returns the number of indexed items.
func (ix *Sorted) Len() int { return len(ix.data) }

// Stream returns a fully-sorted neighbor cursor for query.
func (ix *Sorted) Stream(query sim.Vector) Stream {
	type cand struct {
		id int
		s  float64
	}
	cands := make([]cand, 0, len(ix.data))
	for id, v := range ix.data {
		if s := ix.f(query, v); s > 0 {
			cands = append(cands, cand{id, s})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].s != cands[j].s {
			return cands[i].s > cands[j].s
		}
		return cands[i].id < cands[j].id
	})
	ids := make([]int, len(cands))
	ss := make([]float64, len(cands))
	for i, c := range cands {
		ids[i] = c.id
		ss[i] = c.s
	}
	return &sliceStream{ids: ids, sims: ss}
}

type sliceStream struct {
	ids  []int
	sims []float64
	pos  int
}

func (s *sliceStream) Next() (int, float64, bool) {
	if s.pos >= len(s.ids) {
		return 0, 0, false
	}
	id, sv := s.ids[s.pos], s.sims[s.pos]
	s.pos++
	return id, sv, true
}
