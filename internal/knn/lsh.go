package knn

import (
	"math"
	"math/rand"

	"github.com/ebsnlab/geacc/internal/sim"
)

// LSH is an approximate Euclidean index using p-stable (Gaussian)
// locality-sensitive hashing: L tables of k concatenated projections
// h(x) = ⌊(a·x + b)/w⌋. A query's stream is the exact-similarity-sorted
// union of its buckets across tables.
//
// Unlike every other index in this package, LSH is APPROXIMATE: a stream
// may omit true neighbors whose buckets differ from the query's, so
// Greedy-GEACC run on it can return a different (typically slightly worse)
// matching. It trades arrangement quality for query time on very large user
// sets; the ablation benchmarks quantify the trade.
type LSH struct {
	kernel *sim.Kernel

	tables []lshTable
	w      float64
}

type lshTable struct {
	projs   [][]float64 // k projection vectors
	offsets []float64   // k offsets in [0, w)
	buckets map[uint64][]int
}

// NewLSH builds an index with numTables tables of numHashes concatenated
// projections each, seeded deterministically. Bucket width is derived from
// the data's coordinate spread.
func NewLSH(data []sim.Vector, f sim.Func, numTables, numHashes int, seed int64) *LSH {
	return NewLSHKernel(sim.NewKernel(data, f), numTables, numHashes, seed)
}

// NewLSHKernel builds an LSH index over an existing kernel, sharing its flat
// store instead of rebuilding one. Parameters behave as on NewLSH.
func NewLSHKernel(k *sim.Kernel, numTables, numHashes int, seed int64) *LSH {
	if numTables < 1 {
		numTables = 4
	}
	if numHashes < 1 {
		numHashes = 4
	}
	ix := &LSH{kernel: k}
	n := k.Len()
	if n == 0 {
		return ix
	}
	d := k.Dim()
	rng := rand.New(rand.NewSource(seed))

	// Width heuristic: a fraction of the average coordinate spread scaled
	// by √d, so buckets hold a workable number of near points.
	lo, hi := math.Inf(1), math.Inf(-1)
	for id := 0; id < n; id++ {
		for _, x := range k.Row(id) {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
	}
	spread := hi - lo
	if spread == 0 {
		spread = 1
	}
	ix.w = spread * math.Sqrt(float64(d)) / 4

	ix.tables = make([]lshTable, numTables)
	for t := range ix.tables {
		tab := lshTable{buckets: make(map[uint64][]int)}
		for h := 0; h < numHashes; h++ {
			proj := make([]float64, d)
			for i := range proj {
				proj[i] = rng.NormFloat64()
			}
			tab.projs = append(tab.projs, proj)
			tab.offsets = append(tab.offsets, rng.Float64()*ix.w)
		}
		for id := 0; id < n; id++ {
			key := tab.key(k.Row(id), ix.w)
			tab.buckets[key] = append(tab.buckets[key], id)
		}
		ix.tables[t] = tab
	}
	return ix
}

// key computes the bucket signature of one vector.
func (t *lshTable) key(v sim.Vector, w float64) uint64 {
	// FNV-style mix of the k quantized projections.
	var h uint64 = 14695981039346656037
	for i, proj := range t.projs {
		var dot float64
		for j, x := range v {
			dot += proj[j] * x
		}
		q := int64(math.Floor((dot + t.offsets[i]) / w))
		h ^= uint64(q)
		h *= 1099511628211
	}
	return h
}

// Len returns the number of indexed items.
func (ix *LSH) Len() int { return ix.kernel.Len() }

// Stream returns the query's candidate set (union of its buckets), sorted
// by exact similarity descending with ascending-id ties. Items outside the
// buckets are not yielded — the approximation. Bucket members are collected
// first and their exact similarities computed in one batched gather.
func (ix *LSH) Stream(query sim.Vector) Stream {
	seen := map[int]bool{}
	var ids []int
	for t := range ix.tables {
		key := ix.tables[t].key(query, ix.w)
		for _, id := range ix.tables[t].buckets[key] {
			if seen[id] {
				continue
			}
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sims := make([]float64, len(ids))
	ix.kernel.SimGather(query, ids, sims)
	cands := make([]Pair, 0, len(ids))
	for j, id := range ids {
		if sims[j] > 0 {
			cands = append(cands, Pair{ID: id, S: sims[j]})
		}
	}
	sortBestFirst(cands)
	return &lshStream{cands: cands}
}

type lshStream struct {
	cands []Pair
	pos   int
}

func (s *lshStream) Next() (int, float64, bool) {
	if s.pos >= len(s.cands) {
		return 0, 0, false
	}
	p := s.cands[s.pos]
	s.pos++
	return p.ID, p.S, true
}
