package knn

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/ebsnlab/geacc/internal/sim"
)

const (
	testDim  = 3
	testMaxT = 100.0
)

func testData(rng *rand.Rand, n int) []sim.Vector {
	data := make([]sim.Vector, n)
	for i := range data {
		v := make(sim.Vector, testDim)
		for j := range v {
			v[j] = rng.Float64() * testMaxT
		}
		data[i] = v
	}
	return data
}

// gridData produces data with many duplicate coordinates (and therefore
// similarity ties) to exercise tie-breaking.
func gridData(rng *rand.Rand, n int) []sim.Vector {
	data := make([]sim.Vector, n)
	for i := range data {
		v := make(sim.Vector, testDim)
		for j := range v {
			v[j] = float64(rng.Intn(4)) * (testMaxT / 3)
		}
		data[i] = v
	}
	return data
}

func drain(s Stream, max int) []Pair {
	var out []Pair
	for len(out) < max {
		id, sv, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, Pair{ID: id, S: sv})
	}
	return out
}

// normalizeTies re-sorts runs of equal similarity by ascending id. The
// distance-ordered indexes (kdtree, idistance) may legally permute items
// whose distinct distances collide to one similarity value in floating
// point; normalizing both sides makes the comparison exact again.
func normalizeTies(ps []Pair) []Pair {
	out := append([]Pair(nil), ps...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].S != out[j].S {
			return out[i].S > out[j].S
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func buildAll(data []sim.Vector, f sim.Func) map[string]Index {
	return map[string]Index{
		"sorted":    NewSorted(data, f),
		"chunked":   NewChunked(data, f, 4),
		"kdtree":    NewKDTree(data, f),
		"idistance": NewIDistance(data, f, 4),
	}
}

func TestAllIndexesMatchOracle(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		data := testData(rng, 50+rng.Intn(100))
		indexes := buildAll(data, f)
		oracle := indexes["sorted"]
		for q := 0; q < 5; q++ {
			query := testData(rng, 1)[0]
			want := normalizeTies(drain(oracle.Stream(query), len(data)))
			for name, ix := range indexes {
				got := normalizeTies(drain(ix.Stream(query), len(data)))
				if len(got) != len(want) {
					t.Fatalf("trial %d %s: %d neighbors, oracle %d", trial, name, len(got), len(want))
				}
				for i := range want {
					if got[i].ID != want[i].ID {
						t.Fatalf("trial %d %s neighbor %d: id %d, oracle %d", trial, name, i, got[i].ID, want[i].ID)
					}
					if got[i].S != want[i].S {
						t.Fatalf("trial %d %s neighbor %d: sim %v, oracle %v", trial, name, i, got[i].S, want[i].S)
					}
				}
			}
		}
	}
}

func TestAllIndexesMatchOracleWithTies(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		data := gridData(rng, 80)
		indexes := buildAll(data, f)
		query := gridData(rng, 1)[0]
		want := normalizeTies(drain(indexes["sorted"].Stream(query), len(data)))
		for name, ix := range indexes {
			got := normalizeTies(drain(ix.Stream(query), len(data)))
			if len(got) != len(want) {
				t.Fatalf("%s: %d neighbors, oracle %d", name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s neighbor %d = %+v, oracle %+v", name, i, got[i], want[i])
				}
			}
		}
	}
}

func TestStreamsAreNonIncreasing(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	rng := rand.New(rand.NewSource(3))
	data := testData(rng, 200)
	for name, ix := range buildAll(data, f) {
		query := testData(rng, 1)[0]
		s := ix.Stream(query)
		prev := 2.0
		for {
			_, sv, ok := s.Next()
			if !ok {
				break
			}
			if sv > prev {
				t.Fatalf("%s: similarity increased: %v after %v", name, sv, prev)
			}
			if sv <= 0 {
				t.Fatalf("%s: yielded non-positive similarity %v", name, sv)
			}
			prev = sv
		}
	}
}

func TestZeroSimilarityOmitted(t *testing.T) {
	// With d=1 and maxT=10, the point at 10 has similarity 0 to a query at 0
	// and must be omitted by every index.
	f := sim.Euclidean(1, 10)
	data := []sim.Vector{{10}, {5}, {0}}
	for name, ix := range map[string]Index{
		"sorted":    NewSorted(data, f),
		"chunked":   NewChunked(data, f, 2),
		"kdtree":    NewKDTree(data, f),
		"idistance": NewIDistance(data, f, 2),
	} {
		got := drain(ix.Stream(sim.Vector{0}), 10)
		if len(got) != 2 {
			t.Fatalf("%s: got %d neighbors, want 2 (zero-sim point must be dropped): %+v", name, len(got), got)
		}
		if got[0].ID != 2 || got[1].ID != 1 {
			t.Fatalf("%s: wrong order %+v", name, got)
		}
	}
}

func TestEmptyIndex(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	var data []sim.Vector
	for name, ix := range map[string]Index{
		"sorted":    NewSorted(data, f),
		"chunked":   NewChunked(data, f, 0),
		"kdtree":    NewKDTree(data, f),
		"idistance": NewIDistance(data, f, 3),
	} {
		if ix.Len() != 0 {
			t.Errorf("%s: Len = %d", name, ix.Len())
		}
		if _, _, ok := ix.Stream(make(sim.Vector, testDim)).Next(); ok {
			t.Errorf("%s: empty index yielded a neighbor", name)
		}
	}
}

func TestSingleItemIndex(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	data := []sim.Vector{{1, 2, 3}}
	for name, ix := range buildAll(data, f) {
		got := drain(ix.Stream(sim.Vector{1, 2, 3}), 5)
		if len(got) != 1 || got[0].ID != 0 || got[0].S != 1 {
			t.Errorf("%s: got %+v", name, got)
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	// All points identical: every index must yield them in id order.
	data := []sim.Vector{{5, 5, 5}, {5, 5, 5}, {5, 5, 5}, {5, 5, 5}}
	for name, ix := range buildAll(data, f) {
		got := drain(ix.Stream(sim.Vector{5, 5, 4}), 10)
		if len(got) != 4 {
			t.Fatalf("%s: got %d neighbors", name, len(got))
		}
		for i, p := range got {
			if p.ID != i {
				t.Fatalf("%s: ties not in id order: %+v", name, got)
			}
		}
	}
}

func TestChunkedRefillBoundary(t *testing.T) {
	// Exactly chunk-size items, then repeated draining across refills.
	f := sim.Euclidean(1, 100)
	var data []sim.Vector
	for i := 0; i < 16; i++ {
		data = append(data, sim.Vector{float64(i)})
	}
	ix := NewChunked(data, f, 4)
	got := drain(ix.Stream(sim.Vector{0}), 100)
	if len(got) != 16 {
		t.Fatalf("got %d, want 16", len(got))
	}
	for i, p := range got {
		if p.ID != i {
			t.Fatalf("wrong order at %d: %+v", i, got)
		}
	}
}

func TestLargeRandomEquivalenceProperty(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := testData(rng, 30+rng.Intn(50))
		query := testData(rng, 1)[0]
		oracle := normalizeTies(drain(NewSorted(data, f).Stream(query), len(data)))
		for _, ix := range []Index{
			NewChunked(data, f, 1+rng.Intn(8)),
			NewKDTree(data, f),
			NewIDistance(data, f, 1+rng.Intn(6)),
		} {
			got := normalizeTies(drain(ix.Stream(query), len(data)))
			if len(got) != len(oracle) {
				return false
			}
			for i := range got {
				if got[i] != oracle[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKDTreeLenAndDeepBuild(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	rng := rand.New(rand.NewSource(7))
	data := testData(rng, 1000)
	ix := NewKDTree(data, f)
	if ix.Len() != 1000 {
		t.Fatalf("Len = %d", ix.Len())
	}
	query := testData(rng, 1)[0]
	oracle := normalizeTies(drain(NewSorted(data, f).Stream(query), len(data)))[:20]
	got := normalizeTies(drain(ix.Stream(query), len(data)))[:20]
	for i := range oracle {
		if got[i] != oracle[i] {
			t.Fatalf("deep tree neighbor %d = %+v, oracle %+v", i, got[i], oracle[i])
		}
	}
}

func TestIDistanceManyRefsFewPoints(t *testing.T) {
	f := sim.Euclidean(testDim, testMaxT)
	data := []sim.Vector{{1, 1, 1}, {2, 2, 2}}
	ix := NewIDistance(data, f, 10) // m > n must clamp
	got := drain(ix.Stream(sim.Vector{0, 0, 0}), 5)
	if len(got) != 2 || got[0].ID != 0 {
		t.Fatalf("got %+v", got)
	}
}

func BenchmarkChunkedFirstNeighbor(b *testing.B) {
	f := sim.Euclidean(testDim, testMaxT)
	rng := rand.New(rand.NewSource(9))
	data := testData(rng, 10000)
	ix := NewChunked(data, f, DefaultChunkSize)
	query := testData(rng, 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := ix.Stream(query)
		if _, _, ok := s.Next(); !ok {
			b.Fatal("no neighbor")
		}
	}
}

func BenchmarkKDTreeFirstNeighbor(b *testing.B) {
	f := sim.Euclidean(testDim, testMaxT)
	rng := rand.New(rand.NewSource(10))
	data := testData(rng, 10000)
	ix := NewKDTree(data, f)
	query := testData(rng, 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := ix.Stream(query)
		if _, _, ok := s.Next(); !ok {
			b.Fatal("no neighbor")
		}
	}
}
