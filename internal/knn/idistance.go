package knn

import (
	"math"
	"sort"

	"github.com/ebsnlab/geacc/internal/sim"
)

// IDistance is an iDistance-style index (Jagadish et al., TODS'05 — cited by
// the paper as a suitable index for Greedy-GEACC's NN queries). Points are
// partitioned around m reference points; each point is mapped to the single
// dimension key = partition·C + dist(point, ref). The original system stores
// the keys in a B+-tree; this in-memory reproduction substitutes a sorted
// array per partition with binary search, which supports the same range
// expansions with identical asymptotics for static data.
//
// A stream performs incremental radius expansion: all points within radius r
// of the query are located through the one-dimensional mapping (for
// partition i, candidate keys lie in [d(q,refᵢ)−r, d(q,refᵢ)+r] by the
// triangle inequality), verified by true distance, and yielded in exact
// order once r confirms them.
type IDistance struct {
	data []sim.Vector
	f    sim.Func
	refs []sim.Vector
	// Per partition: points sorted by distance to the partition's reference.
	parts [][]refEntry
	// Upper bound on the distance between any two indexed points, used to
	// size the initial radius-expansion step.
	maxDist float64
}

type refEntry struct {
	id   int
	dist float64 // distance to the partition's reference point
}

// NewIDistance builds an iDistance index with m reference points chosen by a
// lightweight k-means-style refinement (m is clamped to [1, len(data)]).
// f must be a similarity that strictly decreases with Euclidean distance.
func NewIDistance(data []sim.Vector, f sim.Func, m int) *IDistance {
	ix := &IDistance{data: data, f: f}
	if len(data) == 0 {
		return ix
	}
	if m < 1 {
		m = 1
	}
	if m > len(data) {
		m = len(data)
	}
	ix.refs = chooseReferences(data, m)
	ix.parts = make([][]refEntry, len(ix.refs))
	for id, v := range data {
		best, bestD := 0, math.Inf(1)
		for ri, ref := range ix.refs {
			if d := sim.Distance(v, ref); d < bestD {
				best, bestD = ri, d
			}
		}
		ix.parts[best] = append(ix.parts[best], refEntry{id: id, dist: bestD})
		if bestD > ix.maxDist {
			ix.maxDist = bestD
		}
	}
	for _, p := range ix.parts {
		sort.Slice(p, func(i, j int) bool {
			if p[i].dist != p[j].dist {
				return p[i].dist < p[j].dist
			}
			return p[i].id < p[j].id
		})
	}
	// A query can be far from every reference; bound the search radius by
	// the space diameter estimate: max in-partition radius plus the largest
	// reference-to-reference distance.
	var refSpread float64
	for i := range ix.refs {
		for j := i + 1; j < len(ix.refs); j++ {
			if d := sim.Distance(ix.refs[i], ix.refs[j]); d > refSpread {
				refSpread = d
			}
		}
	}
	ix.maxDist = 2*ix.maxDist + refSpread
	if ix.maxDist == 0 {
		ix.maxDist = 1
	}
	return ix
}

// chooseReferences spreads m references over the data with a farthest-point
// sweep (deterministic: starts from the point with the smallest id).
func chooseReferences(data []sim.Vector, m int) []sim.Vector {
	refs := []sim.Vector{data[0]}
	minDist := make([]float64, len(data))
	for i, v := range data {
		minDist[i] = sim.Distance(v, refs[0])
	}
	for len(refs) < m {
		far, farD := -1, -1.0
		for i, d := range minDist {
			if d > farD {
				far, farD = i, d
			}
		}
		if farD == 0 {
			break // fewer than m distinct points
		}
		refs = append(refs, data[far])
		for i, v := range data {
			if d := sim.Distance(v, refs[len(refs)-1]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return refs
}

// Len returns the number of indexed items.
func (ix *IDistance) Len() int { return len(ix.data) }

// Stream returns an incremental radius-expansion cursor for query.
func (ix *IDistance) Stream(query sim.Vector) Stream {
	s := &idStream{ix: ix, query: query}
	if len(ix.data) > 0 {
		s.qDist = make([]float64, len(ix.refs))
		s.lo = make([]int, len(ix.refs))
		s.hi = make([]int, len(ix.refs))
		for i, ref := range ix.refs {
			s.qDist[i] = sim.Distance(query, ref)
			// Start both cursors at the key nearest to d(q, ref): lo walks
			// toward smaller keys, hi toward larger ones.
			part := ix.parts[i]
			at := sort.Search(len(part), func(k int) bool { return part[k].dist >= s.qDist[i] })
			s.lo[i], s.hi[i] = at-1, at
		}
		s.step = ix.maxDist / 16
		if s.step == 0 {
			s.step = 1
		}
	}
	return s
}

type idStream struct {
	ix    *IDistance
	query sim.Vector

	qDist  []float64 // distance from query to each reference
	lo, hi []int     // per-partition unexplored key window edges
	r      float64   // confirmed radius: all points with dist <= r are found
	step   float64

	found []Pair // verified candidates, kept as a min-heap on (dist, id)
	done  bool
}

func (s *idStream) Next() (int, float64, bool) {
	for {
		// Yield a found candidate once the confirmed radius covers it.
		if len(s.found) > 0 {
			bestDist := -s.found[0].S // stored negated; see push
			if bestDist <= s.r || s.done {
				p := s.popFound()
				sv := s.ix.f(s.query, s.ix.data[p.ID])
				if sv <= 0 {
					s.found = nil
					s.done = true
					return 0, 0, false
				}
				return p.ID, sv, true
			}
		} else if s.done {
			return 0, 0, false
		}
		s.expand()
	}
}

// expand grows the confirmed radius by one step and pulls every point whose
// key window intersects the new annulus into the candidate heap.
func (s *idStream) expand() {
	if s.done {
		return
	}
	s.r += s.step
	s.step *= 2
	exhausted := true
	for pi, part := range s.ix.parts {
		// Extend the low edge: keys >= qDist - r.
		for s.lo[pi] >= 0 && part[s.lo[pi]].dist >= s.qDist[pi]-s.r {
			s.verify(part[s.lo[pi]].id)
			s.lo[pi]--
		}
		// Extend the high edge: keys <= qDist + r.
		for s.hi[pi] < len(part) && part[s.hi[pi]].dist <= s.qDist[pi]+s.r {
			s.verify(part[s.hi[pi]].id)
			s.hi[pi]++
		}
		if s.lo[pi] >= 0 || s.hi[pi] < len(part) {
			exhausted = false
		}
	}
	if exhausted {
		// Every key window is fully scanned: all candidates are in found.
		// (The radius alone is never a termination proof — the query need
		// not lie inside the indexed space, so only window exhaustion
		// guarantees no unseen point can precede a found one.)
		s.done = true
	}
}

func (s *idStream) verify(id int) {
	d := sim.Distance(s.query, s.ix.data[id])
	s.pushFound(Pair{ID: id, S: -d}) // negate so smaller distance = larger S
}

// The candidate heap orders by distance ascending, id ascending. Distances
// are stored negated in Pair.S so the comparisons below read naturally.
func (s *idStream) foundLess(a, b Pair) bool {
	if a.S != b.S {
		return a.S > b.S // larger S = smaller distance
	}
	return a.ID < b.ID
}

func (s *idStream) pushFound(p Pair) {
	s.found = append(s.found, p)
	i := len(s.found) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.foundLess(s.found[i], s.found[parent]) {
			break
		}
		s.found[i], s.found[parent] = s.found[parent], s.found[i]
		i = parent
	}
}

func (s *idStream) popFound() Pair {
	top := s.found[0]
	last := len(s.found) - 1
	s.found[0] = s.found[last]
	s.found = s.found[:last]
	i, n := 0, len(s.found)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s.foundLess(s.found[l], s.found[m]) {
			m = l
		}
		if r < n && s.foundLess(s.found[r], s.found[m]) {
			m = r
		}
		if m == i {
			break
		}
		s.found[i], s.found[m] = s.found[m], s.found[i]
		i = m
	}
	return top
}
