package knn

import (
	"math"
	"sort"

	"github.com/ebsnlab/geacc/internal/sim"
)

// KDTree is an exact Euclidean nearest-neighbor index with best-first
// incremental traversal. It orders neighbors by Euclidean distance, which for
// the paper's similarity (Equation 1) is exactly non-increasing similarity
// order. The similarity reported to callers is computed with the same
// normalization, so KDTree is only valid for Euclidean-style similarities;
// construct it with the instance's dimensionality and attribute bound.
type KDTree struct {
	data   []sim.Vector
	f      sim.Func
	root   *kdNode
	leafSz int
}

type kdNode struct {
	// Bounding box of every point beneath this node.
	lo, hi sim.Vector
	// Internal node: children; leaf: point ids.
	left, right *kdNode
	points      []int
}

// NewKDTree builds a kd-tree over data. f must be a similarity that is a
// strictly decreasing function of Euclidean distance (e.g. sim.Euclidean);
// the tree uses distance for traversal and f only to report similarities.
func NewKDTree(data []sim.Vector, f sim.Func) *KDTree {
	t := &KDTree{data: data, f: f, leafSz: 16}
	if len(data) > 0 {
		ids := make([]int, len(data))
		for i := range ids {
			ids[i] = i
		}
		t.root = t.build(ids, 0)
	}
	return t
}

// Len returns the number of indexed items.
func (t *KDTree) Len() int { return len(t.data) }

func (t *KDTree) build(ids []int, depth int) *kdNode {
	n := &kdNode{}
	d := len(t.data[ids[0]])
	n.lo = make(sim.Vector, d)
	n.hi = make(sim.Vector, d)
	for i := range n.lo {
		n.lo[i] = math.Inf(1)
		n.hi[i] = math.Inf(-1)
	}
	for _, id := range ids {
		for i, x := range t.data[id] {
			if x < n.lo[i] {
				n.lo[i] = x
			}
			if x > n.hi[i] {
				n.hi[i] = x
			}
		}
	}
	if len(ids) <= t.leafSz {
		n.points = ids
		return n
	}
	// Split on the widest dimension at the median.
	axis, width := 0, -1.0
	for i := range n.lo {
		if w := n.hi[i] - n.lo[i]; w > width {
			axis, width = i, w
		}
	}
	if width == 0 {
		// All points identical: keep as a (possibly oversized) leaf.
		n.points = ids
		return n
	}
	sort.Slice(ids, func(a, b int) bool {
		va, vb := t.data[ids[a]][axis], t.data[ids[b]][axis]
		if va != vb {
			return va < vb
		}
		return ids[a] < ids[b]
	})
	mid := len(ids) / 2
	// Keep equal coordinates on one side so both halves are non-empty.
	for mid < len(ids)-1 && t.data[ids[mid]][axis] == t.data[ids[mid-1]][axis] {
		mid++
	}
	if mid == len(ids) {
		n.points = ids
		return n
	}
	n.left = t.build(ids[:mid], depth+1)
	n.right = t.build(ids[mid:], depth+1)
	return n
}

// minSqDist returns the squared distance from q to the node's bounding box.
func (n *kdNode) minSqDist(q sim.Vector) float64 {
	var s float64
	for i, x := range q {
		if x < n.lo[i] {
			d := n.lo[i] - x
			s += d * d
		} else if x > n.hi[i] {
			d := x - n.hi[i]
			s += d * d
		}
	}
	return s
}

// kdEntry is a best-first frontier element: either a tree node or a point.
type kdEntry struct {
	sqDist float64
	node   *kdNode // nil for point entries
	id     int
}

// kdStream yields points in ascending distance order via best-first search.
type kdStream struct {
	t     *KDTree
	query sim.Vector
	pq    []kdEntry // binary min-heap
}

// Stream returns a best-first neighbor cursor for query.
func (t *KDTree) Stream(query sim.Vector) Stream {
	s := &kdStream{t: t, query: query}
	if t.root != nil {
		s.push(kdEntry{sqDist: t.root.minSqDist(query), node: t.root})
	}
	return s
}

// less orders the frontier: nearer first; at equal distance boxes before
// points (a box may still contain equally-near points that must be surfaced
// before any point at that distance is yielded, to honor the id tie-break);
// equal-distance points by ascending id.
func (s *kdStream) less(a, b kdEntry) bool {
	if a.sqDist != b.sqDist {
		return a.sqDist < b.sqDist
	}
	aBox, bBox := a.node != nil, b.node != nil
	if aBox != bBox {
		return aBox
	}
	if !aBox {
		return a.id < b.id
	}
	return false
}

func (s *kdStream) push(e kdEntry) {
	s.pq = append(s.pq, e)
	i := len(s.pq) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(s.pq[i], s.pq[p]) {
			break
		}
		s.pq[i], s.pq[p] = s.pq[p], s.pq[i]
		i = p
	}
}

func (s *kdStream) pop() kdEntry {
	top := s.pq[0]
	last := len(s.pq) - 1
	s.pq[0] = s.pq[last]
	s.pq = s.pq[:last]
	i, n := 0, len(s.pq)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s.less(s.pq[l], s.pq[m]) {
			m = l
		}
		if r < n && s.less(s.pq[r], s.pq[m]) {
			m = r
		}
		if m == i {
			break
		}
		s.pq[i], s.pq[m] = s.pq[m], s.pq[i]
		i = m
	}
	return top
}

func (s *kdStream) Next() (int, float64, bool) {
	for len(s.pq) > 0 {
		e := s.pop()
		if e.node == nil {
			sv := s.t.f(s.query, s.t.data[e.id])
			if sv <= 0 {
				// Distance order means every later point also has sim <= 0.
				s.pq = nil
				return 0, 0, false
			}
			return e.id, sv, true
		}
		n := e.node
		if n.points != nil {
			for _, id := range n.points {
				s.push(kdEntry{sqDist: sim.SquaredDistance(s.query, s.t.data[id]), id: id})
			}
			continue
		}
		s.push(kdEntry{sqDist: n.left.minSqDist(s.query), node: n.left})
		s.push(kdEntry{sqDist: n.right.minSqDist(s.query), node: n.right})
	}
	return 0, 0, false
}
