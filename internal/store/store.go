// Package store persists long-lived arrangement instances: an append-only
// JSONL operation log plus periodic snapshots, so a restarted geacc-server
// replays every named instance to its exact pre-crash state.
//
// On disk, a store is one directory per instance:
//
//	<data-dir>/<id>/meta.json      identity + similarity definition
//	<data-dir>/<id>/ops.jsonl      one Op per line, strictly increasing seq
//	<data-dir>/<id>/snapshot.json  session archive (internal/encoding) + the
//	                               op seq it covers; written atomically
//
// Durability model: every delta is appended to ops.jsonl before it is
// applied in memory (write-ahead), in a single Write call followed by an
// fsync, so neither a killed process nor an OS crash loses more than the op
// the client was told had not completed yet. Snapshot writes are fsynced
// before the atomic rename and the directory is synced after it. Snapshots
// bound recovery *time*, not correctness — replay is snapshot (if any) plus
// the ops with a larger seq. A torn final log line (the signature of a hard
// kill mid-append) is detected, truncated away, and replay proceeds;
// corruption anywhere else fails loudly. The log is never rewritten: it
// doubles as a complete audit trail of the instance's history (geacc-solve
// -replay walks it offline).
//
// Snapshots use encoding.EncodeSessionOrdered, which preserves the
// matching's insertion order — so a restored arranger reproduces the donor
// bit-for-bit, including the float accumulation order of MaxSum.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/ebsnlab/geacc/internal/encoding"
	"github.com/ebsnlab/geacc/internal/obs"
)

// File names inside one instance directory.
const (
	metaFile     = "meta.json"
	opsFile      = "ops.jsonl"
	snapshotFile = "snapshot.json"
)

// Store-layer observability; the catalog lives in docs/OBSERVABILITY.md.
var (
	replaySeconds   = obs.Default().Histogram("geacc_replay_seconds", obs.DefaultLatencyBuckets)
	replayOps       = obs.Default().Counter("geacc_replay_ops_total")
	snapshotsTotal  = obs.Default().Counter("geacc_snapshots_total")
	snapshotSeconds = obs.Default().Histogram("geacc_snapshot_seconds", obs.DefaultLatencyBuckets)
)

// Meta identifies one persistent instance: its name and the similarity
// definition every event/user attribute vector is scored under. Only
// function similarities are allowed — a matrix instance cannot grow online.
type Meta struct {
	ID        string           `json:"id"`
	Sim       encoding.SimKind `json:"sim"`
	Dim       int              `json:"dim,omitempty"`
	MaxT      float64          `json:"max_t,omitempty"`
	CreatedAt time.Time        `json:"created_at"`
}

// SimInfo returns the meta's similarity definition in the encoding form.
func (m Meta) SimInfo() encoding.SimInfo {
	return encoding.SimInfo{Kind: m.Sim, Dim: m.Dim, MaxT: m.MaxT}
}

// Validate checks that the meta describes a servable instance: a valid id
// and a function similarity with every parameter an online instance needs.
// Dim > 0 is required for all kinds — cosine included, even though the
// cosine function itself takes no dimensionality — because Dim is what lets
// the service reject a wrong-length arrival before it is logged; without it
// a mismatched vector would reach the similarity kernel, which panics on
// unequal lengths (and, once logged, would panic again on every replay).
func (m Meta) Validate() error {
	if !ValidID(m.ID) {
		return fmt.Errorf("store: invalid instance id %q", m.ID)
	}
	switch m.Sim {
	case encoding.SimEuclidean, encoding.SimManhattan:
		if m.MaxT <= 0 {
			return fmt.Errorf("store: %s similarity needs max_t > 0, got %v", m.Sim, m.MaxT)
		}
	case encoding.SimCosine:
	case encoding.SimMatrix:
		return fmt.Errorf("store: matrix instances cannot grow online")
	default:
		return fmt.Errorf("store: unknown similarity kind %q", m.Sim)
	}
	if m.Dim <= 0 {
		return fmt.Errorf("store: instance needs dim > 0 (got %d) to validate arrival vectors", m.Dim)
	}
	return nil
}

// ValidID reports whether id is usable as an instance name: 1–64 characters
// from [a-zA-Z0-9._-], starting with a letter or digit (so an id is never
// ".", "..", or a dotfile, and is safe as a directory name).
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		alnum := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		if i == 0 && !alnum {
			return false
		}
		if !alnum && c != '.' && c != '_' && c != '-' {
			return false
		}
	}
	return true
}

// Store is a directory of persistent instances.
type Store struct {
	dir string
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// InstanceDir returns the directory holding the named instance's files.
func (s *Store) InstanceDir(id string) string { return filepath.Join(s.dir, id) }

// List returns the ids of every instance in the store (directories with a
// meta.json), sorted.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.dir, e.Name(), metaFile)); err == nil {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Create allocates a new instance: its directory, meta.json, and an empty
// op log. It fails if the id is invalid or already exists.
func (s *Store) Create(meta Meta) (*Log, error) {
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	if _, err := meta.SimInfo().Func(); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	dir := s.InstanceDir(meta.ID)
	if _, err := os.Stat(filepath.Join(dir, metaFile)); err == nil {
		return nil, fmt.Errorf("store: instance %q already exists", meta.ID)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if meta.CreatedAt.IsZero() {
		meta.CreatedAt = time.Now().UTC()
	}
	b, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, metaFile), append(b, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, opsFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Log{dir: dir, meta: meta, f: f}, nil
}

// Probe verifies the store is still writable the same way an op append
// would be: it writes and fsyncs a small probe file in the store root
// (overwritten every call, never listed as an instance). The readiness
// endpoint runs it so a full or read-only disk flips /readyz before an
// acknowledged delta can fail to persist.
func (s *Store) Probe() error {
	path := filepath.Join(s.dir, ".readyz.probe")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: probe: %w", err)
	}
	_, err = fmt.Fprintf(f, "%d\n", time.Now().UnixNano())
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: probe: %w", err)
	}
	return nil
}

// Delete removes the named instance's directory and everything in it.
func (s *Store) Delete(id string) error {
	if !ValidID(id) {
		return fmt.Errorf("store: invalid instance id %q", id)
	}
	return os.RemoveAll(s.InstanceDir(id))
}

// readMeta loads an instance's meta.json.
func readMeta(dir string) (Meta, error) {
	var meta Meta
	b, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return meta, fmt.Errorf("store: %w", err)
	}
	if err := json.Unmarshal(b, &meta); err != nil {
		return meta, fmt.Errorf("store: bad meta.json: %w", err)
	}
	return meta, nil
}
