package store

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/encoding"
	"github.com/ebsnlab/geacc/internal/obs"
	"github.com/ebsnlab/geacc/internal/sim"
)

// Op kinds. One Op is one delta applied to an instance's arranger; replaying
// the ops in seq order reproduces the arranger exactly (every kind is
// deterministic — rebalances record the adopted pairs instead of re-running
// the solver). That outcome-not-invocation framing is also what makes the
// solve and warm-flow caches (internal/solvecache, core.WarmCache) safe:
// however a rebalance's components were produced — cold solve, memo hit, or
// warm-started flow — only the adopted pairs reach the log, so replay can
// neither consult a cache nor observe that one was used.
const (
	OpAddEvent    = "add_event"
	OpAddUser     = "add_user"
	OpCancelEvent = "cancel_event"
	OpRemoveUser  = "remove_user"
	OpRebalance   = "rebalance"
)

// Op is one logged delta. Fields are populated per kind: add_event uses
// Attrs/Cap/Conflicts, add_user uses Attrs/Cap, cancel_event and
// remove_user use Event/User, rebalance uses Adopted plus — when Adopted —
// Pairs, the full replacement matching in its insertion order.
type Op struct {
	Seq       int64               `json:"seq"`
	Kind      string              `json:"op"`
	Attrs     []float64           `json:"attrs,omitempty"`
	Cap       int                 `json:"cap,omitempty"`
	Conflicts []int               `json:"conflicts,omitempty"`
	Event     *int                `json:"event,omitempty"`
	User      *int                `json:"user,omitempty"`
	Adopted   bool                `json:"adopted,omitempty"`
	Pairs     []encoding.PairJSON `json:"pairs,omitempty"`
}

// Apply replays one op onto arr. Ops were validated before being logged, so
// failures indicate a log/arranger mismatch and are returned as errors.
func Apply(arr *core.Arranger, op Op) error {
	switch op.Kind {
	case OpAddEvent:
		_, err := arr.AddEvent(core.Event{Attrs: sim.Vector(op.Attrs), Cap: op.Cap}, op.Conflicts)
		return err
	case OpAddUser:
		_, err := arr.AddUser(core.User{Attrs: sim.Vector(op.Attrs), Cap: op.Cap})
		return err
	case OpCancelEvent:
		if op.Event == nil {
			return fmt.Errorf("store: cancel_event op %d has no event", op.Seq)
		}
		return arr.CancelEvent(*op.Event)
	case OpRemoveUser:
		if op.User == nil {
			return fmt.Errorf("store: remove_user op %d has no user", op.Seq)
		}
		return arr.RemoveUser(*op.User)
	case OpRebalance:
		if !op.Adopted {
			return nil
		}
		m := core.NewMatching()
		for _, p := range op.Pairs {
			m.Add(p.V, p.U, p.Sim)
		}
		return arr.SetMatching(m)
	}
	return fmt.Errorf("store: unknown op kind %q (seq %d)", op.Kind, op.Seq)
}

// Log is one instance's open persistence handle: the append end of
// ops.jsonl plus the snapshot bookkeeping. Methods are not safe for
// concurrent use — the service serializes them under its per-instance lock.
type Log struct {
	dir  string
	meta Meta
	f    *os.File

	seq        int64     // last appended (or replayed) op seq
	snapSeq    int64     // op seq the on-disk snapshot covers
	opsSince   int       // ops appended since that snapshot
	bytesSince int64     // ops.jsonl bytes past the snapshot's coverage
	snapAt     time.Time // when the on-disk snapshot was taken; zero when none
}

// Meta returns the instance's identity record.
func (l *Log) Meta() Meta { return l.meta }

// Seq returns the seq of the last op appended or replayed.
func (l *Log) Seq() int64 { return l.seq }

// OpsSinceSnapshot returns how many ops the on-disk snapshot is behind —
// the service's trigger for WriteSnapshot (-snapshot-every).
func (l *Log) OpsSinceSnapshot() int { return l.opsSince }

// SnapshotSeq returns the op seq the on-disk snapshot covers (0 when the
// instance has never been snapshotted).
func (l *Log) SnapshotSeq() int64 { return l.snapSeq }

// BytesSinceSnapshot returns how many ops.jsonl bytes lie past the
// snapshot's coverage — the data a restart would replay op by op.
func (l *Log) BytesSinceSnapshot() int64 { return l.bytesSince }

// SnapshotAt returns when the on-disk snapshot was taken; the zero time
// means the instance has never been snapshotted.
func (l *Log) SnapshotAt() time.Time { return l.snapAt }

// Append assigns the next seq to op and writes it as one JSONL line in a
// single Write call (so a hard kill can only tear the final line, which
// Load detects and drops), then fsyncs — an acknowledged op survives an OS
// crash, not just a killed process. Call it before applying the op in
// memory: write-ahead order means a crash never leaves an
// applied-but-unlogged op.
func (l *Log) Append(op Op) (int64, error) {
	op.Seq = l.seq + 1
	b, err := json.Marshal(op)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if _, err := l.f.Write(append(b, '\n')); err != nil {
		return 0, fmt.Errorf("store: append op %d: %w", op.Seq, err)
	}
	if err := l.f.Sync(); err != nil {
		return 0, fmt.Errorf("store: sync op %d: %w", op.Seq, err)
	}
	l.seq = op.Seq
	l.opsSince++
	l.bytesSince += int64(len(b)) + 1
	return op.Seq, nil
}

// WriteSnapshot archives arr's current state (which must reflect every op
// appended so far) as an insertion-ordered session covering Seq, carrying
// the caller's pending dirty marks (dirtyEvents/dirtyUsers, ascending) so a
// restart's next scope=dirty rebalance still sees deltas the snapshot
// folded away. The write is atomic (temp file, fsync, rename, directory
// sync): a crash mid-snapshot leaves the previous snapshot intact. A
// recorder on ctx receives one instance/snapshot span.
func (l *Log) WriteSnapshot(ctx context.Context, arr *core.Arranger, dirtyEvents, dirtyUsers []int) error {
	start := time.Now()
	sp := obs.StartSpan(ctx, "instance/snapshot").
		Annotate("id", l.meta.ID).Annotate("seq", l.seq)
	defer sp.End()
	in, m, err := arr.Snapshot()
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	tmp := filepath.Join(l.dir, snapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	meta := encoding.SessionMeta{
		Algorithm:   "arranger",
		CreatedAt:   time.Now().UTC(),
		Seq:         l.seq,
		DirtyEvents: dirtyEvents,
		DirtyUsers:  dirtyUsers,
	}
	err = encoding.EncodeSessionOrdered(f, in, m, meta, l.meta.Sim, l.meta.Dim, l.meta.MaxT)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	l.snapSeq = l.seq
	l.opsSince = 0
	l.bytesSince = 0
	l.snapAt = meta.CreatedAt
	snapshotsTotal.Inc()
	snapshotSeconds.Observe(time.Since(start).Seconds())
	return nil
}

// syncDir fsyncs a directory so a just-renamed file inside it survives an
// OS crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close releases the log's file handle.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
