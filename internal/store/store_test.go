package store

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/decomp"
	"github.com/ebsnlab/geacc/internal/encoding"
)

func TestValidID(t *testing.T) {
	good := []string{"a", "prod", "shard-1", "A.b_c-9", "0"}
	bad := []string{"", ".", "..", ".hidden", "-x", "_x", "a/b", "a b", "a\x00b",
		"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}
	for _, id := range good {
		if !ValidID(id) {
			t.Errorf("ValidID(%q) = false, want true", id)
		}
	}
	for _, id := range bad {
		if ValidID(id) {
			t.Errorf("ValidID(%q) = true, want false", id)
		}
	}
}

func TestCreateRejectsDuplicatesAndMatrix(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{ID: "a", Sim: encoding.SimEuclidean, Dim: 2, MaxT: 10}
	l, err := st.Create(meta)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := st.Create(meta); err == nil {
		t.Fatal("second Create of the same id should fail")
	}
	if _, err := st.Create(Meta{ID: "m", Sim: encoding.SimMatrix}); err == nil {
		t.Fatal("matrix instances cannot grow online; Create should reject them")
	}
	if _, err := st.Create(Meta{ID: "bad/id", Sim: encoding.SimEuclidean, Dim: 2, MaxT: 10}); err == nil {
		t.Fatal("invalid id should be rejected")
	}
	// Without a pinned dimension, mixed-length arrivals would reach the
	// similarity kernel — which panics — so dim is required for every kind,
	// cosine included, and max_t for the distance-normalized kinds.
	if _, err := st.Create(Meta{ID: "c0", Sim: encoding.SimCosine}); err == nil {
		t.Fatal("cosine without dim should be rejected")
	}
	if _, err := st.Create(Meta{ID: "e0", Sim: encoding.SimEuclidean, Dim: 2}); err == nil {
		t.Fatal("euclidean without max_t should be rejected")
	}
}

// driveRandomOps applies n random deltas through the write-ahead path
// (append, then apply), snapshotting roughly every snapEvery ops — exactly
// the server's discipline, so replay must land on the same state. It
// mirrors the service's dirty tracking into dirtyE/dirtyU (and hands the
// marks to WriteSnapshot), so callers can assert replay recovers them too.
func driveRandomOps(t *testing.T, arr *core.Arranger, l *Log, rng *rand.Rand, n, snapEvery int, dirtyE, dirtyU map[int]bool) {
	t.Helper()
	for i := 0; i < n; i++ {
		var op Op
		switch r := rng.Intn(10); {
		case r < 3: // add event
			op = Op{Kind: OpAddEvent,
				Attrs: []float64{rng.Float64() * 10, rng.Float64() * 10},
				Cap:   rng.Intn(4)}
			// Conflict with up to two random existing events.
			for k := 0; k < rng.Intn(3) && arr.NumEvents() > 0; k++ {
				op.Conflicts = append(op.Conflicts, rng.Intn(arr.NumEvents()))
			}
			dirtyE[arr.NumEvents()] = true
		case r < 7: // add user
			op = Op{Kind: OpAddUser,
				Attrs: []float64{rng.Float64() * 10, rng.Float64() * 10},
				Cap:   1 + rng.Intn(2)}
			dirtyU[arr.NumUsers()] = true
		case r < 8 && arr.NumEvents() > 0: // cancel event
			v := rng.Intn(arr.NumEvents())
			op = Op{Kind: OpCancelEvent, Event: &v}
			dirtyE[v] = true
		case r < 9 && arr.NumUsers() > 0: // remove user
			u := rng.Intn(arr.NumUsers())
			op = Op{Kind: OpRemoveUser, User: &u}
			dirtyU[u] = true
		default: // rebalance
			res, err := decomp.RebalanceScoped(context.Background(), arr, "greedy",
				nil, nil, true, decomp.Options{Seed: 7})
			if err != nil {
				t.Fatalf("op %d: rebalance: %v", i, err)
			}
			op = Op{Kind: OpRebalance, Adopted: res.Adopted}
			if res.Adopted {
				for _, p := range arr.Matching().Pairs() {
					op.Pairs = append(op.Pairs, encoding.PairJSON{V: p.V, U: p.U, Sim: p.Sim})
				}
			}
			if _, err := l.Append(op); err != nil {
				t.Fatalf("op %d: append: %v", i, err)
			}
			clear(dirtyE)
			clear(dirtyU)
			continue // rebalance already mutated arr
		}
		if _, err := l.Append(op); err != nil {
			t.Fatalf("op %d: append: %v", i, err)
		}
		if err := Apply(arr, op); err != nil {
			t.Fatalf("op %d: apply %s: %v", i, op.Kind, err)
		}
		if snapEvery > 0 && l.OpsSinceSnapshot() >= snapEvery {
			if err := l.WriteSnapshot(context.Background(), arr, sortedKeys(dirtyE), sortedKeys(dirtyU)); err != nil {
				t.Fatalf("op %d: snapshot: %v", i, err)
			}
		}
	}
}

// sameArrangement asserts two arrangers hold bit-identical state: same
// shape, same pairs in the same insertion order, same MaxSum float bits.
func sameArrangement(t *testing.T, want, got *core.Arranger) {
	t.Helper()
	if want.NumEvents() != got.NumEvents() || want.NumUsers() != got.NumUsers() {
		t.Fatalf("shape mismatch: want %dx%d, got %dx%d",
			want.NumEvents(), want.NumUsers(), got.NumEvents(), got.NumUsers())
	}
	wp, gp := want.Matching().Pairs(), got.Matching().Pairs()
	if len(wp) != len(gp) {
		t.Fatalf("pair count mismatch: want %d, got %d", len(wp), len(gp))
	}
	for i := range wp {
		if wp[i] != gp[i] {
			t.Fatalf("pair %d mismatch: want %+v, got %+v", i, wp[i], gp[i])
		}
	}
	if want.MaxSum() != got.MaxSum() {
		t.Fatalf("MaxSum mismatch: want %x, got %x", want.MaxSum(), got.MaxSum())
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameDirty asserts a replayed State recovered exactly the dirty marks the
// live instance held.
func sameDirty(t *testing.T, st *State, dirtyE, dirtyU map[int]bool) {
	t.Helper()
	if !equalInts(st.DirtyEvents, sortedKeys(dirtyE)) || !equalInts(st.DirtyUsers, sortedKeys(dirtyU)) {
		t.Fatalf("dirty marks not recovered: got events %v users %v, want events %v users %v",
			st.DirtyEvents, st.DirtyUsers, sortedKeys(dirtyE), sortedKeys(dirtyU))
	}
}

// TestReplayReproducesArrangement is the crash-recovery property test:
// whatever random interleaving of arrivals, cancellations, and rebalances
// an instance lived through — with snapshots landing at arbitrary points —
// a cold Load reproduces the in-memory arrangement bit-for-bit, including
// the float accumulation order of MaxSum.
func TestReplayReproducesArrangement(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + trial)))
			st, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			meta := Meta{ID: "p", Sim: encoding.SimEuclidean, Dim: 2, MaxT: 20}
			l, err := st.Create(meta)
			if err != nil {
				t.Fatal(err)
			}
			f, _ := meta.SimInfo().Func()
			arr, err := core.NewArranger(f)
			if err != nil {
				t.Fatal(err)
			}
			// snapEvery 0 on even trials exercises pure-log replay;
			// odd trials mix snapshots in.
			snapEvery := 0
			if trial%2 == 1 {
				snapEvery = 5 + trial
			}
			dirtyE, dirtyU := map[int]bool{}, map[int]bool{}
			driveRandomOps(t, arr, l, rng, 120, snapEvery, dirtyE, dirtyU)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			state, l2, err := st.Load(context.Background(), "p")
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			sameArrangement(t, arr, state.Arranger)
			sameDirty(t, state, dirtyE, dirtyU)
			if state.Seq == 0 {
				t.Fatal("replayed seq should not be zero after 120 ops")
			}

			// Keep going on the replayed instance and replay again: the log
			// must stay appendable after recovery.
			driveRandomOps(t, state.Arranger, l2, rng, 40, snapEvery, dirtyE, dirtyU)
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			state2, l3, err := st.Load(context.Background(), "p")
			if err != nil {
				t.Fatal(err)
			}
			defer l3.Close()
			sameArrangement(t, state.Arranger, state2.Arranger)
			sameDirty(t, state2, dirtyE, dirtyU)
		})
	}
}

// TestReplayTruncatesTornTail simulates a kill -9 mid-append: the final log
// line is half-written. Load must drop it, truncate the file, and replay
// the prefix.
func TestReplayTruncatesTornTail(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{ID: "torn", Sim: encoding.SimEuclidean, Dim: 2, MaxT: 20}
	l, err := st.Create(meta)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := meta.SimInfo().Func()
	arr, err := core.NewArranger(f)
	if err != nil {
		t.Fatal(err)
	}
	driveRandomOps(t, arr, l, rand.New(rand.NewSource(9)), 30, 0, map[int]bool{}, map[int]bool{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(st.InstanceDir("torn"), opsFile)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, whole...), []byte(`{"seq":9999,"op":"add_u`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	state, l2, err := st.Load(context.Background(), "torn")
	if err != nil {
		t.Fatalf("Load with torn tail: %v", err)
	}
	defer l2.Close()
	if state.ReplayedOps != 30 {
		t.Fatalf("replayed %d ops, want 30 (torn line dropped)", state.ReplayedOps)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(whole) {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", len(after), len(whole))
	}
	// And the log stays appendable on a clean boundary.
	if _, err := l2.Append(Op{Kind: OpAddUser, Attrs: []float64{1, 2}, Cap: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestReplayRejectsMidFileCorruption: garbage in the middle of the log is
// not a torn tail and must fail the load, not silently skip ops.
func TestReplayRejectsMidFileCorruption(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{ID: "corrupt", Sim: encoding.SimEuclidean, Dim: 2, MaxT: 20}
	l, err := st.Create(meta)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(Op{Kind: OpAddUser, Attrs: []float64{1, 2}, Cap: 1}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := filepath.Join(st.InstanceDir("corrupt"), opsFile)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Mangle the second line but keep the third intact.
	lines := []byte("{\"garbage\n")
	mangled := append(append([]byte{}, whole[:len(whole)/3]...), lines...)
	mangled = append(mangled, whole[2*len(whole)/3:]...)
	if err := os.WriteFile(path, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load(context.Background(), "corrupt"); err == nil {
		t.Fatal("mid-file corruption should fail the load")
	}
}

// TestReplayRejectsSeqGap: a missing op (seq jump) means the log cannot
// reproduce the arrangement; replay must refuse.
func TestReplayRejectsSeqGap(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{ID: "gap", Sim: encoding.SimEuclidean, Dim: 2, MaxT: 20}
	l, err := st.Create(meta)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Op{Kind: OpAddUser, Attrs: []float64{1, 2}, Cap: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	path := filepath.Join(st.InstanceDir("gap"), opsFile)
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := af.WriteString(`{"seq":5,"op":"add_user","attrs":[1,2],"cap":1}` + "\n"); err != nil {
		t.Fatal(err)
	}
	af.Close()
	if _, _, err := st.Load(context.Background(), "gap"); err == nil {
		t.Fatal("seq gap should fail the load")
	}
}

// TestLoadDirDoesNotRepair: the offline entry point must leave a torn file
// byte-identical (it is an audit tool, not a recovery tool).
func TestLoadDirDoesNotRepair(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{ID: "audit", Sim: encoding.SimEuclidean, Dim: 2, MaxT: 20}
	l, err := st.Create(meta)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Op{Kind: OpAddUser, Attrs: []float64{1, 2}, Cap: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	path := filepath.Join(st.InstanceDir("audit"), opsFile)
	af, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	af.WriteString(`{"seq":2,"op":"add`)
	af.Close()
	before, _ := os.ReadFile(path)

	state, err := LoadDir(context.Background(), st.InstanceDir("audit"))
	if err != nil {
		t.Fatal(err)
	}
	if state.ReplayedOps != 1 {
		t.Fatalf("replayed %d ops, want 1", state.ReplayedOps)
	}
	after, _ := os.ReadFile(path)
	if len(after) != len(before) {
		t.Fatal("LoadDir modified the log file")
	}
}

// TestSnapshotPreservesDirtyMarks is the regression test for marks lost to
// snapshot folding: a delta's op is absorbed into a snapshot before any
// rebalance, the process dies, and replay must still report the delta's
// dirty mark (from the snapshot meta — the op itself is skipped).
func TestSnapshotPreservesDirtyMarks(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{ID: "dirty", Sim: encoding.SimEuclidean, Dim: 2, MaxT: 10}
	l, err := st.Create(meta)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := meta.SimInfo().Func()
	arr, err := core.NewArranger(f)
	if err != nil {
		t.Fatal(err)
	}
	op := Op{Kind: OpAddEvent, Attrs: []float64{1, 1}, Cap: 1}
	if _, err := l.Append(op); err != nil {
		t.Fatal(err)
	}
	if err := Apply(arr, op); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(context.Background(), arr, []int{0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	state, l2, err := st.Load(context.Background(), "dirty")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if state.ReplayedOps != 0 {
		t.Fatalf("replayed %d ops, want 0 (the op was folded into the snapshot)", state.ReplayedOps)
	}
	if !equalInts(state.DirtyEvents, []int{0}) || len(state.DirtyUsers) != 0 {
		t.Fatalf("dirty marks lost across snapshot: events %v, users %v",
			state.DirtyEvents, state.DirtyUsers)
	}
}

// TestReplayRejectsWrongDimension: an op whose attribute vector disagrees
// with the instance's dim (only possible via a corrupted or hand-edited
// log) must fail the load with an error, not panic inside the similarity
// kernel and crash-loop the server on every boot.
func TestReplayRejectsWrongDimension(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{ID: "wrongdim", Sim: encoding.SimCosine, Dim: 2}
	l, err := st.Create(meta)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Op{Kind: OpAddUser, Attrs: []float64{1, 2}, Cap: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	path := filepath.Join(st.InstanceDir("wrongdim"), opsFile)
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := af.WriteString(`{"seq":2,"op":"add_user","attrs":[1],"cap":1}` + "\n"); err != nil {
		t.Fatal(err)
	}
	af.Close()
	if _, _, err := st.Load(context.Background(), "wrongdim"); err == nil {
		t.Fatal("mismatched attribute dimension should fail the load")
	}
}

// TestListAndDelete covers the directory lifecycle.
func TestListAndDelete(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"b", "a", "c"} {
		l, err := st.Create(Meta{ID: id, Sim: encoding.SimCosine, Dim: 2})
		if err != nil {
			t.Fatal(err)
		}
		l.Close()
	}
	ids, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "b" || ids[2] != "c" {
		t.Fatalf("List = %v, want [a b c]", ids)
	}
	if err := st.Delete("b"); err != nil {
		t.Fatal(err)
	}
	ids, _ = st.List()
	if len(ids) != 2 {
		t.Fatalf("after Delete, List = %v", ids)
	}
}
