package store

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/encoding"
	"github.com/ebsnlab/geacc/internal/obs"
)

// State is a replayed instance: the reconstructed arranger plus the replay
// bookkeeping the service needs to resume exactly where the dead process
// stopped — including the dirty marks accumulated since the last rebalance,
// so the next scoped rebalance still re-solves precisely the components the
// pre-crash deltas touched.
type State struct {
	Arranger *core.Arranger
	Meta     Meta

	// Seq is the last op seq on disk; SnapshotSeq is how far the snapshot
	// reached (0 when replay started from an empty arranger).
	Seq         int64
	SnapshotSeq int64
	// ReplayedOps counts the ops applied from the log (those past the
	// snapshot).
	ReplayedOps int

	// DirtyEvents / DirtyUsers are the parent node ids touched by deltas
	// since the last rebalance op, ascending.
	DirtyEvents []int
	DirtyUsers  []int

	// OpCounts tallies every op line in ops.jsonl by kind — the log is
	// never rewritten, so this is the instance's lifetime delta history,
	// including ops already folded into the snapshot.
	OpCounts map[string]int64
	// BytesSinceSnapshot is how much of ops.jsonl lies past the snapshot's
	// coverage; SnapshotAt is when that snapshot was taken (zero when the
	// instance has never been snapshotted).
	BytesSinceSnapshot int64
	SnapshotAt         time.Time
}

// LoadDir replays one instance directory read-only: snapshot (if present)
// plus every logged op past it. A torn final log line is skipped with a
// warning but the file is left untouched — this is the offline debugging
// entry (geacc-solve -replay). A recorder on ctx receives one
// instance/replay span.
func LoadDir(ctx context.Context, dir string) (*State, error) {
	return loadDir(ctx, dir, false)
}

// Load replays the named instance and opens its log for appending. A torn
// final log line is truncated away first, so subsequent appends start on a
// clean line boundary.
func (s *Store) Load(ctx context.Context, id string) (*State, *Log, error) {
	if !ValidID(id) {
		return nil, nil, fmt.Errorf("store: invalid instance id %q", id)
	}
	dir := s.InstanceDir(id)
	st, err := loadDir(ctx, dir, true)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, opsFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	l := &Log{
		dir:        dir,
		meta:       st.Meta,
		f:          f,
		seq:        st.Seq,
		snapSeq:    st.SnapshotSeq,
		opsSince:   st.ReplayedOps,
		bytesSince: st.BytesSinceSnapshot,
		snapAt:     st.SnapshotAt,
	}
	return st, l, nil
}

func loadDir(ctx context.Context, dir string, repair bool) (*State, error) {
	start := time.Now()
	sp := obs.StartSpan(ctx, "instance/replay").Annotate("dir", dir)
	defer sp.End()

	meta, err := readMeta(dir)
	if err != nil {
		return nil, err
	}
	if err := meta.Validate(); err != nil {
		return nil, fmt.Errorf("store: %s: %w", dir, err)
	}
	st := &State{Meta: meta}

	// Start point: the snapshot when one exists, an empty arranger otherwise.
	// The snapshot's dirty marks seed the replay's: they are the marks of
	// deltas the snapshot already folded away.
	if sf, err := os.Open(filepath.Join(dir, snapshotFile)); err == nil {
		in, m, smeta, derr := encoding.DecodeSession(sf)
		sf.Close()
		if derr != nil {
			return nil, fmt.Errorf("store: snapshot: %w", derr)
		}
		st.Arranger, derr = core.RestoreArranger(in, m)
		if derr != nil {
			return nil, fmt.Errorf("store: snapshot: %w", derr)
		}
		st.SnapshotSeq = smeta.Seq
		st.Seq = smeta.Seq
		st.DirtyEvents = smeta.DirtyEvents
		st.DirtyUsers = smeta.DirtyUsers
		st.SnapshotAt = smeta.CreatedAt
	} else {
		f, ferr := meta.SimInfo().Func()
		if ferr != nil {
			return nil, fmt.Errorf("store: %w", ferr)
		}
		st.Arranger, ferr = core.NewArranger(f)
		if ferr != nil {
			return nil, fmt.Errorf("store: %w", ferr)
		}
	}

	if err := replayOpsFile(ctx, dir, st, repair); err != nil {
		return nil, err
	}

	replayOps.Add(int64(st.ReplayedOps))
	replaySeconds.Observe(time.Since(start).Seconds())
	sp.Annotate("seq", st.Seq).
		Annotate("snapshot_seq", st.SnapshotSeq).
		Annotate("replayed_ops", st.ReplayedOps)
	return st, nil
}

// replayOpsFile scans ops.jsonl, applying every op with seq > the snapshot
// seq and rebuilding the dirty marks on top of the snapshot-seeded ones in
// st. A parse failure with nothing but whitespace after it is a torn tail
// (the hard-kill signature): it is dropped — and, with repair, truncated
// off the file. A parse failure with valid data after it is corruption and
// fails the load.
func replayOpsFile(ctx context.Context, dir string, st *State, repair bool) error {
	path := filepath.Join(dir, opsFile)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	dirtyE := toSet(st.DirtyEvents)
	dirtyU := toSet(st.DirtyUsers)
	st.OpCounts = make(map[string]int64)
	r := bufio.NewReaderSize(f, 1<<20)
	var offset, tornAt int64 = 0, -1
	for {
		line, rerr := r.ReadBytes('\n')
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			if tornAt >= 0 {
				f.Close()
				return fmt.Errorf("store: %s: corrupt op line at byte %d (valid data follows it)", path, tornAt)
			}
			var op Op
			if uerr := json.Unmarshal(trimmed, &op); uerr != nil {
				tornAt = offset
			} else {
				st.OpCounts[op.Kind]++
				if op.Seq <= st.SnapshotSeq {
					// Already folded into the snapshot.
				} else {
					st.BytesSinceSnapshot += int64(len(line))
					if op.Seq != st.Seq+1 {
						f.Close()
						return fmt.Errorf("store: %s: op seq %d after %d (log gap)", path, op.Seq, st.Seq)
					}
					// Arrival vectors were validated against Dim before being
					// logged; a mismatch here is log corruption and must fail
					// the load, not panic inside the similarity kernel.
					if (op.Kind == OpAddEvent || op.Kind == OpAddUser) && len(op.Attrs) != st.Meta.Dim {
						f.Close()
						return fmt.Errorf("store: %s: op %d has %d attributes, instance wants %d",
							path, op.Seq, len(op.Attrs), st.Meta.Dim)
					}
					markDirty(st.Arranger, op, dirtyE, dirtyU)
					if aerr := Apply(st.Arranger, op); aerr != nil {
						f.Close()
						return fmt.Errorf("store: replay op %d: %w", op.Seq, aerr)
					}
					st.Seq = op.Seq
					st.ReplayedOps++
				}
			}
		}
		offset += int64(len(line))
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			f.Close()
			return fmt.Errorf("store: %w", rerr)
		}
		if err := ctx.Err(); err != nil {
			f.Close()
			return err
		}
	}
	f.Close()
	if tornAt >= 0 {
		slog.Warn("store: dropping torn final op line (hard kill mid-append)",
			"path", path, "offset", tornAt)
		if repair {
			if err := os.Truncate(path, tornAt); err != nil {
				return fmt.Errorf("store: truncating torn tail: %w", err)
			}
		}
	}
	st.DirtyEvents = sortedKeys(dirtyE)
	st.DirtyUsers = sortedKeys(dirtyU)
	return nil
}

// markDirty mirrors the service's delta-time dirty tracking during replay:
// arrivals mark the id they are about to receive, removals mark their
// target, and a rebalance clears everything (it consumed the marks).
func markDirty(arr *core.Arranger, op Op, dirtyE, dirtyU map[int]bool) {
	switch op.Kind {
	case OpAddEvent:
		dirtyE[arr.NumEvents()] = true
	case OpAddUser:
		dirtyU[arr.NumUsers()] = true
	case OpCancelEvent:
		if op.Event != nil {
			dirtyE[*op.Event] = true
		}
	case OpRemoveUser:
		if op.User != nil {
			dirtyU[*op.User] = true
		}
	case OpRebalance:
		clear(dirtyE)
		clear(dirtyU)
	}
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func toSet(ids []int) map[int]bool {
	m := make(map[int]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}
