package server

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/ebsnlab/geacc/internal/dataset"
	"github.com/ebsnlab/geacc/internal/partition"
)

// bridgedJSON encodes a bridged clustered instance: one giant similarity
// component, the ?approx_shard=1 workload.
func bridgedJSON(t *testing.T) []byte {
	return clusteredJSON(t, dataset.ClusteredConfig{
		NumEvents: 24, NumUsers: 240, Communities: 6, BlockDim: 2,
		EventCapMax: 6, UserCapMax: 3, CFRatio: 0.25,
		BridgeFrac: 0.1, Seed: 5,
	})
}

func solveDoc(t *testing.T, url string, body []byte) SolveResponse {
	t.Helper()
	resp, out := postJSON(t, url, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d: %s", url, resp.StatusCode, out)
	}
	var doc SolveResponse
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestSolveApproxShard: ?approx_shard=1 routes the giant component through
// internal/partition and surfaces the run in Diagnostics.Partition; without
// the flag the same request reports no partition activity.
func TestSolveApproxShard(t *testing.T) {
	srv := newServer(t)
	body := bridgedJSON(t)
	doc := solveDoc(t, srv.URL+"/solve?algo=mincostflow&approx_shard=1&shard_max_area=500&shard_drift_budget=0.9&diag=1", body)
	if doc.Diagnostics == nil || doc.Diagnostics.Partition == nil {
		t.Fatal("diagnostics missing partition stats")
	}
	pst := doc.Diagnostics.Partition
	if pst.Runs != 1 || pst.Shards < 2 || pst.Fallbacks != 0 {
		t.Fatalf("unexpected partition stats %+v", pst)
	}
	if pst.MaxDriftEstimate <= 0 || pst.MaxDriftEstimate > 0.9 {
		t.Fatalf("drift estimate %v outside (0, 0.9]", pst.MaxDriftEstimate)
	}
	if pst.BoundLoss != doc.Diagnostics.Gap {
		t.Fatalf("bound loss %v != diagnostics gap %v", pst.BoundLoss, doc.Diagnostics.Gap)
	}
	// approx_shard implies the decomposed path even without ?decompose=1.
	if doc.Diagnostics.Decomposition == nil {
		t.Fatal("sharded solve did not report decomposition stats")
	}
	plain := solveDoc(t, srv.URL+"/solve?algo=mincostflow&decompose=1&diag=1", body)
	if plain.Diagnostics.Partition != nil {
		t.Fatal("partition stats reported without approx_shard")
	}
}

// TestSolveApproxShardServerDefault: Config.Shard turns sharding on for
// every solve; ?approx_shard=0 opts a single request back out.
func TestSolveApproxShardServerDefault(t *testing.T) {
	sh := partition.Options{MaxArea: 500, DriftBudget: 0.9}.Normalized()
	handler, err := NewWithConfig(Config{
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
		Shard:  &sh,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()
	body := bridgedJSON(t)
	doc := solveDoc(t, srv.URL+"/solve?algo=mincostflow&diag=1", body)
	if doc.Diagnostics == nil || doc.Diagnostics.Partition == nil {
		t.Fatal("service-wide shard default did not apply")
	}
	off := solveDoc(t, srv.URL+"/solve?algo=mincostflow&approx_shard=0&diag=1", body)
	if off.Diagnostics.Partition != nil {
		t.Fatal("?approx_shard=0 did not opt out of the service default")
	}
}

func TestSolveApproxShardBadParams(t *testing.T) {
	srv := newServer(t)
	body := bridgedJSON(t)
	for _, q := range []string{
		"approx_shard=1&shard_max_area=abc",
		"approx_shard=1&shard_max_area=-5",
		"approx_shard=1&shard_strategy=zigzag",
		"approx_shard=1&shard_drift_budget=nope",
		"approx_shard=1&shard_drift_budget=-0.1",
	} {
		resp, out := postJSON(t, srv.URL+"/solve?algo=mincostflow&"+q, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", q, resp.StatusCode, out)
		}
	}
}

// TestSolveApproxShardMatchesMonolithicResultShape: the sharded matching is
// a feasible arrangement of the same instance — the handler's Validate gate
// already enforces feasibility, so a 200 with pairs is the assertion.
func TestSolveApproxShardCacheKeyedSeparately(t *testing.T) {
	srv := newServer(t)
	body := bridgedJSON(t)
	sharded := solveDoc(t, srv.URL+"/solve?algo=mincostflow&approx_shard=1&shard_max_area=500&shard_drift_budget=0.9", body)
	plain := solveDoc(t, srv.URL+"/solve?algo=mincostflow&decompose=1", body)
	again := solveDoc(t, srv.URL+"/solve?algo=mincostflow&approx_shard=1&shard_max_area=500&shard_drift_budget=0.9", body)
	// The second sharded request must replay the sharded result, not the
	// plain one it would collide with if the shard knobs were left out of
	// the memo key (the two differ on this instance).
	if sharded.Matching.MaxSum == plain.Matching.MaxSum {
		t.Skip("sharded and plain solves coincide; key separation unobservable")
	}
	if again.Matching.MaxSum != sharded.Matching.MaxSum {
		t.Fatal("memo cache crossed between sharded and plain solve keys")
	}
}

// TestSolveExactGateDiagnostics: admitted exact solves surface the gate
// decision (measured area vs limit) in diagnostics; refused ones carry both
// numbers in the 422 message.
func TestSolveExactGateDiagnostics(t *testing.T) {
	srv := newServer(t)
	doc := solveDoc(t, srv.URL+"/solve?algo=exact&diag=1", instanceJSON(t))
	gate := doc.Diagnostics.ExactGate
	if gate == nil || gate.Gated || gate.ComponentArea != 6 || gate.Limit != exactHTTPAreaLimit {
		t.Fatalf("unexpected exact gate %+v", gate)
	}
	// Non-exact solves must not report a gate.
	greedy := solveDoc(t, srv.URL+"/solve?algo=greedy&diag=1", instanceJSON(t))
	if greedy.Diagnostics.ExactGate != nil {
		t.Fatal("greedy solve reported an exact gate")
	}
	// 16×64 single community: one 1024-area component, gated both ways.
	whole := clusteredJSON(t, dataset.ClusteredConfig{
		NumEvents: 16, NumUsers: 64, Communities: 1, BlockDim: 2,
		EventCapMax: 3, UserCapMax: 2, CFRatio: 0.25, Seed: 9,
	})
	resp, out := postJSON(t, srv.URL+"/solve?algo=exact&decompose=1", whole)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), "largest component area 1024") || !strings.Contains(string(out), "200") {
		t.Fatalf("422 message missing measured area or limit: %s", out)
	}
}

// TestRebalanceShardParams: the rebalance path accepts the shard query
// parameters (plumbed into decomp.Options.Shard) and rejects bad ones.
func TestRebalanceShardParams(t *testing.T) {
	srv := newServer(t)
	mustPost(t, srv.URL+"/instances", `{"id":"shardy","sim":"euclidean","dim":2,"max_t":10}`)
	for i := 0; i < 3; i++ {
		mustPost(t, srv.URL+"/instances/shardy/events", `{"attrs":[1,2],"cap":2}`)
		mustPost(t, srv.URL+"/instances/shardy/users", `{"attrs":[1,1],"cap":1}`)
	}
	resp, out := postJSON(t, srv.URL+"/instances/shardy/rebalance?approx_shard=1&shard_max_area=4&shard_drift_budget=0.9", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	resp, out = postJSON(t, srv.URL+"/instances/shardy/rebalance?approx_shard=1&shard_strategy=zigzag", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad strategy: status %d: %s", resp.StatusCode, out)
	}
}

func mustPost(t *testing.T, url, body string) {
	t.Helper()
	resp, out := postJSON(t, url, []byte(body))
	if resp.StatusCode/100 != 2 {
		t.Fatalf("%s: status %d: %s", url, resp.StatusCode, out)
	}
}
