package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/encoding"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// heavyInstanceJSON builds an instance whose min-cost-flow solve takes long
// enough (tens of milliseconds) that concurrent requests genuinely overlap
// — the overload test needs real contention, not an instant solver.
func heavyInstanceJSON(t *testing.T) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	const nv, nu = 30, 300
	events := make([]core.Event, nv)
	for v := range events {
		events[v] = core.Event{Cap: 1 + rng.Intn(8)}
	}
	users := make([]core.User, nu)
	for u := range users {
		users[u] = core.User{Cap: 1 + rng.Intn(3)}
	}
	matrix := make([][]float64, nv)
	for v := range matrix {
		matrix[v] = make([]float64, nu)
		for u := range matrix[v] {
			matrix[v][u] = rng.Float64()
		}
	}
	in, err := core.NewMatrixInstance(events, users, nil, matrix)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := encoding.EncodeInstance(&buf, in, encoding.SimMatrix, 0, 0); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newAdmissionServer builds the full handler with explicit admission
// limits and the admitHold hook, so tests can park admitted requests and
// observe shed behavior deterministically.
func newAdmissionServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	cfg.Logger = quietLogger()
	h, err := NewWithConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// fillSlot posts one solve that parks inside the admission window (on
// cfg.admitHold) and returns once the slot is provably occupied.
func fillSlot(t *testing.T, srv *httptest.Server, wg *sync.WaitGroup) {
	t.Helper()
	before := admissionInflight.Value()
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(srv.URL+"/solve", "application/json", bytes.NewReader(instanceJSON(t)))
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for admissionInflight.Value() <= before {
		if time.Now().After(deadline) {
			t.Fatal("parked solve never acquired its admission slot")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionShedQueueFull: with one slot held and queueing disabled, the
// next solve must come back 429 promptly — far inside the queue timeout —
// with Retry-After, the documented error envelope, and a shed-counter
// increment.
func TestAdmissionShedQueueFull(t *testing.T) {
	hold := make(chan struct{})
	srv := newAdmissionServer(t, Config{
		MaxInflight: 1, QueueDepth: -1, QueueTimeout: 5 * time.Second,
		admitHold: hold,
	})
	var wg sync.WaitGroup
	defer wg.Wait()
	defer close(hold)
	fillSlot(t, srv, &wg)

	shedBefore := admissionShed("queue_full").Value()
	start := time.Now()
	resp, err := http.Post(srv.URL+"/solve", "application/json", bytes.NewReader(instanceJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()

	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("queue-full shed took %v; must return promptly, not wait out the queue timeout", elapsed)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var e errorJSON
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("429 body is not the error envelope: %s", body)
	}
	if e.Error == "" || e.RequestID == "" {
		t.Fatalf("429 envelope incomplete: %+v", e)
	}
	if got := admissionShed("queue_full").Value(); got != shedBefore+1 {
		t.Fatalf("geacc_admission_shed_total{reason=queue_full} = %d, want %d", got, shedBefore+1)
	}
}

// TestAdmissionShedTimeout: a queued request whose wait exceeds the queue
// timeout sheds as 429 with the timeout reason.
func TestAdmissionShedTimeout(t *testing.T) {
	hold := make(chan struct{})
	srv := newAdmissionServer(t, Config{
		MaxInflight: 1, QueueDepth: 4, QueueTimeout: 100 * time.Millisecond,
		admitHold: hold,
	})
	var wg sync.WaitGroup
	defer wg.Wait()
	defer close(hold)
	fillSlot(t, srv, &wg)

	shedBefore := admissionShed("timeout").Value()
	start := time.Now()
	resp, err := http.Post(srv.URL+"/solve", "application/json", bytes.NewReader(instanceJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if elapsed < 100*time.Millisecond {
		t.Fatalf("timeout shed after %v, before the queue timeout", elapsed)
	}
	if got := admissionShed("timeout").Value(); got != shedBefore+1 {
		t.Fatalf("geacc_admission_shed_total{reason=timeout} = %d, want %d", got, shedBefore+1)
	}
}

// TestAdmissionGatesRebalance: the rebalance endpoint sits behind the same
// controller as /solve.
func TestAdmissionGatesRebalance(t *testing.T) {
	hold := make(chan struct{})
	srv := newAdmissionServer(t, Config{
		MaxInflight: 1, QueueDepth: -1,
		admitHold: hold,
	})
	var wg sync.WaitGroup
	defer wg.Wait()
	defer close(hold)
	fillSlot(t, srv, &wg)

	resp, err := http.Post(srv.URL+"/instances/nope/rebalance", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	// Shed beats 404: admission runs before the body or the id is looked
	// at, so overload stays cheap.
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
}

// TestReadyzReflectsAdmission: /readyz's load check reads the admission
// controller itself — saturated admission fails the probe, a freed slot
// passes it again.
func TestReadyzReflectsAdmission(t *testing.T) {
	hold := make(chan struct{})
	srv := newAdmissionServer(t, Config{
		MaxInflight: 1, QueueDepth: -1,
		admitHold: hold,
	})
	var wg sync.WaitGroup
	fillSlot(t, srv, &wg)

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated readyz: %d %s", resp.StatusCode, body)
	}
	var doc readyzResponse
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc.Checks["load"], "overloaded") ||
		!strings.Contains(doc.Checks["load"], "max_inflight=1") {
		t.Fatalf("load check does not name the admission limits: %q", doc.Checks["load"])
	}

	close(hold)
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never recovered after the slot freed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestOverloadShedsWhileAcceptedStayBounded hammers a 2-slot server with
// real solves and checks the overload contract end to end: some requests
// are shed as 429 + Retry-After, the rest succeed, and every accepted
// request finishes promptly (bounded by solve time, not by the pile-up).
func TestOverloadShedsWhileAcceptedStayBounded(t *testing.T) {
	srv := newAdmissionServer(t, Config{MaxInflight: 2, QueueDepth: -1})
	body := heavyInstanceJSON(t)

	const n = 32
	type result struct {
		status  int
		retry   string
		elapsed time.Duration
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			resp, err := http.Post(srv.URL+"/solve?algo=mincostflow", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			results[i] = result{resp.StatusCode, resp.Header.Get("Retry-After"), time.Since(start)}
		}(i)
	}
	wg.Wait()

	var accepted, shed int
	for i, r := range results {
		switch r.status {
		case http.StatusOK:
			accepted++
			if r.elapsed > 5*time.Second {
				t.Errorf("accepted request %d took %v; overload must not stretch accepted latency", i, r.elapsed)
			}
		case http.StatusTooManyRequests:
			shed++
			if r.retry == "" {
				t.Errorf("shed request %d has no Retry-After", i)
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, r.status)
		}
	}
	if accepted == 0 {
		t.Fatal("no request was accepted under overload")
	}
	if shed == 0 {
		t.Fatal("no request was shed: 32 concurrent solves against 2 slots with no queue must shed")
	}
	t.Logf("accepted=%d shed=%d", accepted, shed)
}
