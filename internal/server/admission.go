package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/ebsnlab/geacc/internal/obs"
)

// Admission control for the solver-heavy endpoints (/solve, /trace,
// /report, /instances/{id}/rebalance): a bounded concurrency gate plus a
// bounded waiting queue. Up to MaxInflight solves run at once; the next
// QueueDepth requests wait up to QueueTimeout for a slot; everything beyond
// that — and every queued request whose wait expires — is shed immediately
// as 429 + Retry-After. Saturation therefore degrades to fast, cheap
// rejections (no body parsed, no solver entered) instead of an unbounded
// goroutine pile-up, and the latency of *accepted* requests stays bounded
// by queue-timeout + solve time. Deltas and the read/probe endpoints are
// deliberately ungated: they are microseconds of work and must stay
// responsive exactly when the solve queue is full.
//
// /readyz reads the same controller (see handleReadyz): the process reports
// overloaded when the next solve would be shed, so the load-balancer signal
// and the per-request behavior cannot drift apart.

// Admission defaults; Config.MaxInflight/QueueDepth/QueueTimeout override.
const (
	DefaultMaxInflight  = 64
	DefaultQueueDepth   = 256
	DefaultQueueTimeout = 2 * time.Second
)

// Admission metrics; catalog in docs/OBSERVABILITY.md.
var (
	admissionInflight  = obs.Default().Gauge("geacc_admission_inflight")
	admissionQueued    = obs.Default().Gauge("geacc_admission_queued")
	admissionAccepted  = obs.Default().Counter("geacc_admission_accepted_total")
	admissionQueueWait = obs.Default().Histogram("geacc_admission_queue_wait_seconds", obs.DefaultLatencyBuckets)
)

func admissionShed(reason string) *obs.Counter {
	return obs.Default().Counter(obs.Label("geacc_admission_shed_total", "reason", reason))
}

// shedError is the 429 payload source: why this request was not admitted.
type shedError struct{ reason string }

func (e *shedError) Error() string {
	switch e.reason {
	case "queue_full":
		return "server: solve queue full; retry later"
	case "timeout":
		return "server: solve queue wait exceeded the queue timeout; retry later"
	}
	return "server: overloaded; retry later"
}

// admission is the gate itself. sem holds one token per running solve;
// queued counts waiters, bounded by depth.
type admission struct {
	max     int
	depth   int64
	timeout time.Duration
	sem     chan struct{}
	queued  atomic.Int64
}

func newAdmission(maxInflight, queueDepth int, queueTimeout time.Duration) *admission {
	if maxInflight <= 0 {
		maxInflight = DefaultMaxInflight
	}
	// QueueDepth: 0 means default, negative disables queueing entirely
	// (overload sheds the instant all slots are busy).
	depth := int64(queueDepth)
	if queueDepth == 0 {
		depth = DefaultQueueDepth
	} else if queueDepth < 0 {
		depth = 0
	}
	if queueTimeout <= 0 {
		queueTimeout = DefaultQueueTimeout
	}
	return &admission{
		max:     maxInflight,
		depth:   depth,
		timeout: queueTimeout,
		sem:     make(chan struct{}, maxInflight),
	}
}

// acquire admits the request (possibly after a bounded queue wait) or
// returns a *shedError (shed) / ctx.Err() (client gone while queued). On
// nil error the caller MUST release().
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.sem <- struct{}{}:
		admissionInflight.Add(1)
		admissionAccepted.Inc()
		admissionQueueWait.Observe(0)
		return nil
	default:
	}
	// All slots busy: try to queue. The atomic add is the reservation, so
	// the bound is exact even under a thundering herd.
	if a.queued.Add(1) > a.depth {
		a.queued.Add(-1)
		admissionShed("queue_full").Inc()
		return &shedError{reason: "queue_full"}
	}
	admissionQueued.Add(1)
	start := time.Now()
	timer := time.NewTimer(a.timeout)
	defer func() {
		timer.Stop()
		a.queued.Add(-1)
		admissionQueued.Add(-1)
	}()
	select {
	case a.sem <- struct{}{}:
		admissionInflight.Add(1)
		admissionAccepted.Inc()
		admissionQueueWait.Observe(time.Since(start).Seconds())
		return nil
	case <-timer.C:
		admissionShed("timeout").Inc()
		return &shedError{reason: "timeout"}
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release frees the slot acquired by a successful acquire.
func (a *admission) release() {
	<-a.sem
	admissionInflight.Add(-1)
}

// saturated reports whether the next solve would be shed: every slot busy
// and the queue at depth. /readyz's load check.
func (a *admission) saturated() bool {
	return len(a.sem) >= a.max && a.queued.Load() >= a.depth
}

// loadCheck renders the /readyz "load" line from the controller's live
// state, naming the same limits the admission decision uses.
func (a *admission) loadCheck() (string, bool) {
	inflight, queued := len(a.sem), a.queued.Load()
	if a.saturated() {
		return fmt.Sprintf("overloaded: solve queue full (%d solving, %d queued; limits max_inflight=%d queue_depth=%d)",
			inflight, queued, a.max, a.depth), false
	}
	return fmt.Sprintf("ok (%d solving, %d queued; limits max_inflight=%d queue_depth=%d)",
		inflight, queued, a.max, a.depth), true
}

// admit wraps acquire with the HTTP answer: a shed becomes 429 +
// Retry-After, a client that vanished while queued becomes 499. It returns
// the release func (nil when not admitted).
func (s *service) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if err := s.adm.acquire(r.Context()); err != nil {
		var shed *shedError
		if errors.As(err, &shed) {
			w.Header().Set("Retry-After", "1")
			writeError(w, r, http.StatusTooManyRequests, err)
			return nil, false
		}
		writeError(w, r, solveErrorStatus(err, http.StatusServiceUnavailable), err)
		return nil, false
	}
	if s.admitHold != nil {
		// Test hook: park admitted requests here so shed behavior can be
		// observed deterministically.
		<-s.admitHold
	}
	return s.adm.release, true
}
