package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/ebsnlab/geacc/internal/obs"
)

// newInstanceServer builds a test server with the given data directory
// ("" = ephemeral instances) and a quiet logger.
func newInstanceServer(t *testing.T, dataDir string, snapshotEvery int) *httptest.Server {
	t.Helper()
	h, err := NewWithConfig(Config{
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
		DataDir:       dataDir,
		SnapshotEvery: snapshotEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// postStr is postJSON for string literals.
func postStr(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	return postJSON(t, url, []byte(body))
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestInstanceLifecycle(t *testing.T) {
	srv := newInstanceServer(t, "", 0)

	resp, body := postStr(t, srv.URL+"/instances", `{"id":"prod","sim":"euclidean","dim":2,"max_t":10}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("create Content-Type = %q, want application/json", ct)
	}
	// Duplicate id → 409; bad id / unknown sim / matrix / missing sim
	// parameters → 400 (never a handler panic).
	if resp, body = postStr(t, srv.URL+"/instances", `{"id":"prod","sim":"euclidean","dim":2,"max_t":10}`); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: %d %s", resp.StatusCode, body)
	}
	if resp, _ = postStr(t, srv.URL+"/instances", `{"id":"../evil","sim":"euclidean","dim":2,"max_t":10}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id: %d", resp.StatusCode)
	}
	if resp, _ = postStr(t, srv.URL+"/instances", `{"id":"m","sim":"matrix"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("matrix sim: %d", resp.StatusCode)
	}
	if resp, _ = postStr(t, srv.URL+"/instances", `{"id":"e0","sim":"euclidean"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("euclidean without dim/max_t: %d", resp.StatusCode)
	}
	if resp, _ = postStr(t, srv.URL+"/instances", `{"id":"c0","sim":"cosine"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cosine without dim: %d", resp.StatusCode)
	}

	// Deltas: one event, two users; the greedy placement should match both.
	resp, body = postStr(t, srv.URL+"/instances/prod/events", `{"attrs":[0,0],"cap":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add event: %d %s", resp.StatusCode, body)
	}
	var delta DeltaResponse
	if err := json.Unmarshal(body, &delta); err != nil {
		t.Fatal(err)
	}
	if delta.ID == nil || *delta.ID != 0 {
		t.Fatalf("event id: %+v", delta)
	}
	for _, u := range []string{`{"attrs":[1,0],"cap":1}`, `{"attrs":[0,1],"cap":1}`} {
		if resp, body = postStr(t, srv.URL+"/instances/prod/users", u); resp.StatusCode != http.StatusOK {
			t.Fatalf("add user: %d %s", resp.StatusCode, body)
		}
	}

	// Status reflects the placements.
	code, body := getBody(t, srv.URL+"/instances/prod")
	if code != http.StatusOK {
		t.Fatalf("get: %d %s", code, body)
	}
	var status InstanceStatus
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatal(err)
	}
	if status.Events != 1 || status.Users != 2 || status.Pairs != 2 {
		t.Fatalf("status: %+v", status.InstanceSummary)
	}
	if len(status.DirtyEvents) != 1 || len(status.DirtyUsers) != 2 {
		t.Fatalf("dirty marks: %+v", status.InstanceSummary)
	}

	// Cancel the event: both users are released.
	if resp, body = postStr(t, srv.URL+"/instances/prod/cancel", `{"event":0}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d %s", resp.StatusCode, body)
	}
	if resp, _ = postStr(t, srv.URL+"/instances/prod/cancel", `{"event":7}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown event: %d", resp.StatusCode)
	}
	if resp, _ = postStr(t, srv.URL+"/instances/prod/cancel", `{"event":0,"user":0}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cancel with both: %d", resp.StatusCode)
	}
	_, body = getBody(t, srv.URL+"/instances/prod")
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatal(err)
	}
	if status.Pairs != 0 {
		t.Fatalf("after cancel: %+v", status.InstanceSummary)
	}

	// List, then delete, then 404.
	code, body = getBody(t, srv.URL+"/instances")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"prod"`)) {
		t.Fatalf("list: %d %s", code, body)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/instances/prod", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	if code, _ = getBody(t, srv.URL+"/instances/prod"); code != http.StatusNotFound {
		t.Fatalf("get after delete: %d", code)
	}
}

// TestCosineInstanceRejectsMismatchedVectors: cosine instances pin their
// dimension at create time, so a wrong-length arrival is a 400 — it must
// never reach the cosine kernel (which panics on unequal lengths) or be
// persisted to the log, where it would panic every boot-time replay.
func TestCosineInstanceRejectsMismatchedVectors(t *testing.T) {
	dir := t.TempDir()
	srv := newInstanceServer(t, dir, 0)
	if resp, body := postStr(t, srv.URL+"/instances", `{"id":"cos","sim":"cosine","dim":2}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	if resp, body := postStr(t, srv.URL+"/instances/cos/users", `{"attrs":[1,2],"cap":1}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("matching-length user: %d %s", resp.StatusCode, body)
	}
	for _, bad := range []string{`{"attrs":[1],"cap":1}`, `{"attrs":[1,2,3],"cap":1}`, `{"attrs":[],"cap":1}`} {
		if resp, _ := postStr(t, srv.URL+"/instances/cos/users", bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("mismatched user %s: %d, want 400", bad, resp.StatusCode)
		}
		if resp, _ := postStr(t, srv.URL+"/instances/cos/events", bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("mismatched event %s: %d, want 400", bad, resp.StatusCode)
		}
	}
	// Nothing invalid was logged: a restart over the same directory replays
	// cleanly and still holds exactly the one valid arrival.
	srv.Close()
	srv2 := newInstanceServer(t, dir, 0)
	code, body := getBody(t, srv2.URL+"/instances/cos")
	if code != http.StatusOK {
		t.Fatalf("get after restart: %d %s", code, body)
	}
	var status InstanceStatus
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatal(err)
	}
	if status.Users != 1 || status.Events != 0 {
		t.Fatalf("after restart: %+v", status.InstanceSummary)
	}
}

// TestConcurrentDeltas hammers one instance from many goroutines; every
// delta must be applied exactly once, with a distinct log seq.
func TestConcurrentDeltas(t *testing.T) {
	srv := newInstanceServer(t, t.TempDir(), 16)
	if resp, body := postStr(t, srv.URL+"/instances", `{"id":"c","sim":"euclidean","dim":2,"max_t":10}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	if resp, body := postStr(t, srv.URL+"/instances/c/events", `{"attrs":[0,0],"cap":64}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("add event: %d %s", resp.StatusCode, body)
	}

	const n = 40
	seqs := make([]int64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"attrs":[%d,1],"cap":1}`, i%7)
			resp, b := postStr(t, srv.URL+"/instances/c/users", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("add user %d: %d %s", i, resp.StatusCode, b)
				return
			}
			var d DeltaResponse
			if err := json.Unmarshal(b, &d); err != nil {
				t.Error(err)
				return
			}
			seqs[i] = d.Seq
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	seen := make(map[int64]bool, n)
	for _, s := range seqs {
		if s == 0 || seen[s] {
			t.Fatalf("duplicate or missing seq %d in %v", s, seqs)
		}
		seen[s] = true
	}
	_, body := getBody(t, srv.URL+"/instances/c")
	var status InstanceStatus
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatal(err)
	}
	if status.Users != n || status.Events != 1 {
		t.Fatalf("after concurrent deltas: %+v", status.InstanceSummary)
	}
}

// TestPersistenceAcrossRestart streams deltas (crossing several snapshot
// boundaries), tears the handler down, builds a fresh one over the same
// data directory, and requires byte-identical GET /instances/{id} bodies.
func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	srv := newInstanceServer(t, dir, 10)

	for _, id := range []string{"alpha", "beta"} {
		if resp, body := postStr(t, srv.URL+"/instances",
			fmt.Sprintf(`{"id":%q,"sim":"euclidean","dim":2,"max_t":10}`, id)); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d %s", id, resp.StatusCode, body)
		}
		for i := 0; i < 12; i++ {
			postStr(t, srv.URL+"/instances/"+id+"/events", fmt.Sprintf(`{"attrs":[%d,0],"cap":2}`, i%5))
			postStr(t, srv.URL+"/instances/"+id+"/users", fmt.Sprintf(`{"attrs":[%d,1],"cap":1}`, i%5))
			if i%5 == 4 {
				postStr(t, srv.URL+"/instances/"+id+"/cancel", fmt.Sprintf(`{"event":%d}`, i%3))
			}
		}
		if resp, body := postStr(t, srv.URL+"/instances/"+id+"/rebalance?scope=full", ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("rebalance %s: %d %s", id, resp.StatusCode, body)
		}
		postStr(t, srv.URL+"/instances/"+id+"/users", `{"attrs":[2,2],"cap":2}`)
	}
	before := map[string][]byte{}
	for _, id := range []string{"alpha", "beta"} {
		code, body := getBody(t, srv.URL+"/instances/"+id)
		if code != http.StatusOK {
			t.Fatalf("get %s: %d", id, code)
		}
		before[id] = body
	}
	srv.Close()

	srv2 := newInstanceServer(t, dir, 10)
	for _, id := range []string{"alpha", "beta"} {
		code, body := getBody(t, srv2.URL+"/instances/"+id)
		if code != http.StatusOK {
			t.Fatalf("get %s after restart: %d", id, code)
		}
		if !bytes.Equal(before[id], body) {
			t.Fatalf("instance %s diverged after restart:\nbefore: %s\nafter:  %s", id, before[id], body)
		}
	}
	// The replayed registry still owns the ids.
	if resp, _ := postStr(t, srv2.URL+"/instances", `{"id":"alpha","sim":"euclidean","dim":2,"max_t":10}`); resp.StatusCode != http.StatusConflict {
		t.Fatalf("create replayed id: %d", resp.StatusCode)
	}
}

// TestDirtyMarksSurviveSnapshotAndRestart: with snapshot-every=2, the
// second delta triggers a snapshot that folds both ops away — including the
// triggering op itself. Its dirty mark must be recorded before the snapshot
// is written, or a restart would silently drop it and the next scope=dirty
// rebalance would skip its component.
func TestDirtyMarksSurviveSnapshotAndRestart(t *testing.T) {
	dir := t.TempDir()
	srv := newInstanceServer(t, dir, 2)
	if resp, body := postStr(t, srv.URL+"/instances", `{"id":"s","sim":"euclidean","dim":2,"max_t":10}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	postStr(t, srv.URL+"/instances/s/events", `{"attrs":[1,1],"cap":2}`)
	postStr(t, srv.URL+"/instances/s/users", `{"attrs":[1,2],"cap":1}`) // triggers the snapshot
	_, body := getBody(t, srv.URL+"/instances/s")
	var before InstanceStatus
	if err := json.Unmarshal(body, &before); err != nil {
		t.Fatal(err)
	}
	if len(before.DirtyEvents) != 1 || len(before.DirtyUsers) != 1 {
		t.Fatalf("pre-restart dirty marks: %+v", before.InstanceSummary)
	}
	srv.Close()

	srv2 := newInstanceServer(t, dir, 2)
	_, body = getBody(t, srv2.URL+"/instances/s")
	var after InstanceStatus
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if len(after.DirtyEvents) != 1 || len(after.DirtyUsers) != 1 {
		t.Fatalf("dirty marks lost across snapshot+restart: %+v", after.InstanceSummary)
	}
}

// TestDirtyScopedRebalanceSolvesOneComponent builds two similarity
// communities so far apart they decompose into separate components, dirties
// only one of them, and asserts the scope=dirty rebalance dispatched
// exactly one component to the solver pool — measured by the
// geacc_decomp_components_total counter, which increments once per solved
// component.
func TestDirtyScopedRebalanceSolvesOneComponent(t *testing.T) {
	srv := newInstanceServer(t, "", 0)
	if resp, body := postStr(t, srv.URL+"/instances", `{"id":"d","sim":"euclidean","dim":2,"max_t":2}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	// Community A near the origin, community B near (100, 100): euclidean
	// similarity with max_t 2 is zero across the gap, so they are separate
	// decomposition components.
	for _, d := range []string{
		`{"attrs":[0,0],"cap":2}`, `{"attrs":[100,100],"cap":2}`,
	} {
		if resp, body := postStr(t, srv.URL+"/instances/d/events", d); resp.StatusCode != http.StatusOK {
			t.Fatalf("add event: %d %s", resp.StatusCode, body)
		}
	}
	for _, d := range []string{
		`{"attrs":[0.5,0],"cap":1}`, `{"attrs":[100,100.5],"cap":1}`,
	} {
		if resp, body := postStr(t, srv.URL+"/instances/d/users", d); resp.StatusCode != http.StatusOK {
			t.Fatalf("add user: %d %s", resp.StatusCode, body)
		}
	}
	// Full rebalance consumes the arrival dirty marks.
	if resp, body := postStr(t, srv.URL+"/instances/d/rebalance?scope=full", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("full rebalance: %d %s", resp.StatusCode, body)
	}

	// One delta inside community A only.
	if resp, body := postStr(t, srv.URL+"/instances/d/users", `{"attrs":[0,0.5],"cap":1}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("add user: %d %s", resp.StatusCode, body)
	}

	counter := obs.Default().Counter("geacc_decomp_components_total")
	beforeCount := counter.Value()
	resp, body := postStr(t, srv.URL+"/instances/d/rebalance?scope=dirty", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dirty rebalance: %d %s", resp.StatusCode, body)
	}
	var rb RebalanceResponse
	if err := json.Unmarshal(body, &rb); err != nil {
		t.Fatal(err)
	}
	if rb.ComponentsTotal != 2 {
		t.Fatalf("components_total = %d, want 2 (communities merged?): %s", rb.ComponentsTotal, body)
	}
	if rb.ComponentsSolved != 1 {
		t.Fatalf("components_solved = %d, want 1: %s", rb.ComponentsSolved, body)
	}
	if got := counter.Value() - beforeCount; got != 1 {
		t.Fatalf("geacc_decomp_components_total advanced by %d, want 1 (only the dirty component)", got)
	}

	// The dirty marks were consumed.
	_, body = getBody(t, srv.URL+"/instances/d")
	var status InstanceStatus
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatal(err)
	}
	if len(status.DirtyEvents)+len(status.DirtyUsers) != 0 {
		t.Fatalf("dirty marks survived the rebalance: %+v", status.InstanceSummary)
	}
}

// TestInstanceMetricPathFolding keeps the metric label space bounded: the
// id segment must fold into the route template.
func TestInstanceMetricPathFolding(t *testing.T) {
	cases := map[string]string{
		"/instances":                "/instances",
		"/instances/prod":           "/instances/{id}",
		"/instances/prod/users":     "/instances/{id}/users",
		"/instances/prod/events":    "/instances/{id}/events",
		"/instances/prod/cancel":    "/instances/{id}/cancel",
		"/instances/prod/rebalance": "/instances/{id}/rebalance",
		"/instances/prod/whatever":  "other",
		"/instances/a/b/c":          "other",
		"/instances/":               "other",
		"/solve":                    "/solve",
		"/nope":                     "other",
	}
	for path, want := range cases {
		if got := metricPath(path); got != want {
			t.Errorf("metricPath(%q) = %q, want %q", path, got, want)
		}
	}
}
