package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/ebsnlab/geacc/internal/dataset"
	"github.com/ebsnlab/geacc/internal/encoding"
)

// clusteredJSON encodes a multi-community instance: the workload shape
// ?decompose=1 shards.
func clusteredJSON(t *testing.T, cfg dataset.ClusteredConfig) []byte {
	t.Helper()
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := encoding.EncodeInstance(&buf, in, encoding.SimCosine, cfg.Dim(), 1); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func smallClustered(t *testing.T) []byte {
	return clusteredJSON(t, dataset.ClusteredConfig{
		NumEvents: 12, NumUsers: 48, Communities: 4, BlockDim: 2,
		EventCapMax: 5, UserCapMax: 2, CFRatio: 0.25, Seed: 5,
	})
}

func TestSolveDecomposed(t *testing.T) {
	srv := newServer(t)
	body := smallClustered(t)
	for _, algo := range []string{"greedy", "mincostflow", "random-v"} {
		resp, out := postJSON(t, srv.URL+"/solve?algo="+algo+"&decompose=1&diag=1&workers=2", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", algo, resp.StatusCode, out)
		}
		var doc SolveResponse
		if err := json.Unmarshal(out, &doc); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if doc.Matching.MaxSum <= 0 || len(doc.Matching.Pairs) == 0 {
			t.Fatalf("%s: empty solution %+v", algo, doc)
		}
		if doc.Diagnostics == nil || doc.Diagnostics.Decomposition == nil {
			t.Fatalf("%s: diagnostics missing decomposition stats", algo)
		}
		if got := doc.Diagnostics.Decomposition.Components; got != 4 {
			t.Fatalf("%s: %d components, want 4", algo, got)
		}
		if got := doc.Diagnostics.Decomposition.Workers; got != 2 {
			t.Fatalf("%s: %d workers, want 2", algo, got)
		}
	}
}

// TestSolveDecomposedMatchesMonolithic: same instance, same algorithm, with
// and without ?decompose=1 — identical pair sets over HTTP too.
func TestSolveDecomposedMatchesMonolithic(t *testing.T) {
	srv := newServer(t)
	body := smallClustered(t)
	var mono, dec SolveResponse
	for url, doc := range map[string]*SolveResponse{
		srv.URL + "/solve?algo=greedy":             &mono,
		srv.URL + "/solve?algo=greedy&decompose=1": &dec,
	} {
		resp, out := postJSON(t, url, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", url, resp.StatusCode, out)
		}
		if err := json.Unmarshal(out, doc); err != nil {
			t.Fatal(err)
		}
	}
	if len(mono.Matching.Pairs) != len(dec.Matching.Pairs) {
		t.Fatalf("pair counts differ: monolithic %d, decomposed %d",
			len(mono.Matching.Pairs), len(dec.Matching.Pairs))
	}
	for i := range mono.Matching.Pairs {
		if mono.Matching.Pairs[i] != dec.Matching.Pairs[i] {
			t.Fatalf("pair %d differs: monolithic %+v, decomposed %+v",
				i, mono.Matching.Pairs[i], dec.Matching.Pairs[i])
		}
	}
}

func TestSolveDecomposeRejectsPortfolio(t *testing.T) {
	srv := newServer(t)
	resp, out := postJSON(t, srv.URL+"/solve?algo=portfolio&decompose=1", smallClustered(t))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
}

func TestSolveDecomposeBadWorkers(t *testing.T) {
	srv := newServer(t)
	resp, out := postJSON(t, srv.URL+"/solve?algo=greedy&decompose=1&workers=abc", smallClustered(t))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
}

// TestSolveDecomposedExactGate: the |V|·|U| <= 200 exact budget applies per
// component under ?decompose=1 — an instance far too big for a monolithic
// exact solve passes when its largest shard fits, and still fails when one
// shard alone blows the budget.
func TestSolveDecomposedExactGate(t *testing.T) {
	srv := newServer(t)
	// 16×64 whole (area 1024 > 200), but 8 communities of 2×8 (area 16).
	sharded := clusteredJSON(t, dataset.ClusteredConfig{
		NumEvents: 16, NumUsers: 64, Communities: 8, BlockDim: 2,
		EventCapMax: 3, UserCapMax: 2, CFRatio: 0.25, Seed: 9,
	})
	if resp, out := postJSON(t, srv.URL+"/solve?algo=exact", sharded); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("monolithic exact: status %d: %s", resp.StatusCode, out)
	}
	resp, out := postJSON(t, srv.URL+"/solve?algo=exact&decompose=1", sharded)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decomposed exact: status %d: %s", resp.StatusCode, out)
	}
	// One community: decomposition finds a single 16×64 shard, so the gate
	// still refuses.
	whole := clusteredJSON(t, dataset.ClusteredConfig{
		NumEvents: 16, NumUsers: 64, Communities: 1, BlockDim: 2,
		EventCapMax: 3, UserCapMax: 2, CFRatio: 0.25, Seed: 9,
	})
	if resp, out := postJSON(t, srv.URL+"/solve?algo=exact&decompose=1", whole); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("oversized shard: status %d: %s", resp.StatusCode, out)
	}
}

// TestSolveDecomposeCancelMidShard: the client goes away while the worker
// pool is mid-shard; the handler must answer 499 (client closed request),
// not 200 or 500. The handler is driven directly with a recorder because a
// real client never sees the status its dead connection provoked. The
// instance is two 50×500 min-cost-flow shards — far more work than the 2ms
// cancellation delay, so the cancel lands inside the pool.
func TestSolveDecomposeCancelMidShard(t *testing.T) {
	cfg := dataset.DefaultClustered()
	cfg.Communities = 2
	body := clusteredJSON(t, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest(http.MethodPost,
		"/solve?algo=mincostflow&decompose=1&workers=1", bytes.NewReader(body)).WithContext(ctx)
	rr := httptest.NewRecorder()
	timer := time.AfterFunc(2*time.Millisecond, cancel)
	defer timer.Stop()
	svc, err := newService(slog.Default(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	svc.handleSolve(rr, req)
	if rr.Code != statusClientClosedRequest {
		t.Fatalf("status %d, want %d", rr.Code, statusClientClosedRequest)
	}
}
