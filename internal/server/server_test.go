package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/encoding"
)

func instanceJSON(t *testing.T) []byte {
	t.Helper()
	in, err := core.NewMatrixInstance(
		[]core.Event{{Cap: 2}, {Cap: 1}},
		[]core.User{{Cap: 1}, {Cap: 1}, {Cap: 2}},
		nil,
		[][]float64{{0.9, 0.1, 0.5}, {0.2, 0.8, 0.3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := encoding.EncodeInstance(&buf, in, encoding.SimMatrix, 0, 0); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	// Request logs are exercised by the dedicated logging tests; keep the
	// rest of the suite's output clean.
	srv := httptest.NewServer(NewWithLogger(slog.New(slog.NewTextHandler(io.Discard, nil))))
	t.Cleanup(srv.Close)
	return srv
}

func TestHealthz(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestAlgorithmsEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Algorithms []string `json:"algorithms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"greedy": true, "mincostflow": true, "portfolio": true}
	found := 0
	for _, a := range doc.Algorithms {
		if want[a] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("algorithms = %v", doc.Algorithms)
	}
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestSolveEndpoint(t *testing.T) {
	srv := newServer(t)
	for _, algo := range []string{"greedy", "mincostflow", "exact", "portfolio"} {
		resp, body := postJSON(t, srv.URL+"/solve?algo="+algo, instanceJSON(t))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", algo, resp.StatusCode, body)
		}
		var doc SolveResponse
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if doc.Matching.MaxSum <= 0 || len(doc.Matching.Pairs) == 0 {
			t.Fatalf("%s: empty solution %+v", algo, doc)
		}
		if doc.Events != 2 || doc.Users != 3 {
			t.Fatalf("%s: echo wrong: %+v", algo, doc)
		}
	}
}

func TestSolveDefaultsToGreedy(t *testing.T) {
	srv := newServer(t)
	resp, body := postJSON(t, srv.URL+"/solve", instanceJSON(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc SolveResponse
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Algo != "greedy" {
		t.Fatalf("default algo = %s", doc.Algo)
	}
}

func TestSolveErrors(t *testing.T) {
	srv := newServer(t)
	if resp, _ := postJSON(t, srv.URL+"/solve", []byte("{")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body: status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/solve?algo=quantum", instanceJSON(t)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad algo: status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/solve?seed=abc", instanceJSON(t)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad seed: status %d", resp.StatusCode)
	}
	// GET on a POST route is a 405 under Go 1.22 method patterns.
	resp, err := http.Get(srv.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /solve: status %d", resp.StatusCode)
	}
}

func TestSolveExactGuard(t *testing.T) {
	// A big instance must be refused for the exact solver.
	events := make([]core.Event, 30)
	users := make([]core.User, 30)
	matrix := make([][]float64, 30)
	for i := range events {
		events[i] = core.Event{Cap: 1}
		users[i] = core.User{Cap: 1}
		matrix[i] = make([]float64, 30)
		for j := range matrix[i] {
			matrix[i][j] = 0.5
		}
	}
	in, err := core.NewMatrixInstance(events, users, nil, matrix)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := encoding.EncodeInstance(&buf, in, encoding.SimMatrix, 0, 0); err != nil {
		t.Fatal(err)
	}
	srv := newServer(t)
	resp, body := postJSON(t, srv.URL+"/solve?algo=exact", buf.Bytes())
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}

func pairBody(t *testing.T, matching encoding.MatchingJSON) []byte {
	t.Helper()
	doc := map[string]any{
		"instance": json.RawMessage(instanceJSON(t)),
		"matching": matching,
	}
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestTraceEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, body := postJSON(t, srv.URL+"/trace", instanceJSON(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc TraceResponse
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Steps) == 0 {
		t.Fatal("no trace steps")
	}
	// Accepted steps reconstruct the matching size.
	accepted := 0
	for _, s := range doc.Steps {
		if s.Accepted {
			accepted++
		}
		if !s.Accepted && s.Reason == "" {
			t.Fatalf("rejected step without reason: %+v", s)
		}
	}
	if accepted != len(doc.Matching.Pairs) {
		t.Fatalf("%d accepted steps, %d pairs", accepted, len(doc.Matching.Pairs))
	}
	if resp, _ := postJSON(t, srv.URL+"/trace", []byte("{")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body: status %d", resp.StatusCode)
	}
}

func TestValidateEndpoint(t *testing.T) {
	srv := newServer(t)
	good := encoding.MatchingJSON{Pairs: []encoding.PairJSON{{V: 0, U: 0, Sim: 0.9}}}
	resp, body := postJSON(t, srv.URL+"/validate", pairBody(t, good))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var verdict ValidateResponse
	if err := json.Unmarshal(body, &verdict); err != nil {
		t.Fatal(err)
	}
	if !verdict.Feasible || verdict.Pairs != 1 {
		t.Fatalf("verdict %+v", verdict)
	}

	bad := encoding.MatchingJSON{Pairs: []encoding.PairJSON{{V: 0, U: 0, Sim: 0.123}}}
	resp, body = postJSON(t, srv.URL+"/validate", pairBody(t, bad))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &verdict); err != nil {
		t.Fatal(err)
	}
	if verdict.Feasible || verdict.Reason == "" {
		t.Fatalf("infeasible matching judged feasible: %+v", verdict)
	}
}

func TestReportEndpoint(t *testing.T) {
	srv := newServer(t)
	matching := encoding.MatchingJSON{Pairs: []encoding.PairJSON{{V: 0, U: 0, Sim: 0.9}}}
	resp, body := postJSON(t, srv.URL+"/report", pairBody(t, matching))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "MaxSum") {
		t.Fatalf("report payload: %s", body)
	}
	// An infeasible matching is a 422 from /report (it refuses to score it).
	bad := encoding.MatchingJSON{Pairs: []encoding.PairJSON{{V: 0, U: 0, Sim: 0.1}}}
	resp, _ = postJSON(t, srv.URL+"/report", pairBody(t, bad))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible report: status %d", resp.StatusCode)
	}
}

func TestSolveDeterministicSeed(t *testing.T) {
	srv := newServer(t)
	_, a := postJSON(t, srv.URL+"/solve?algo=random-v&seed=42", instanceJSON(t))
	_, b := postJSON(t, srv.URL+"/solve?algo=random-v&seed=42", instanceJSON(t))
	var da, db SolveResponse
	if err := json.Unmarshal(a, &da); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &db); err != nil {
		t.Fatal(err)
	}
	if da.Matching.MaxSum != db.Matching.MaxSum {
		t.Fatal("same seed, different result")
	}
}
