package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/decomp"
	"github.com/ebsnlab/geacc/internal/encoding"
	"github.com/ebsnlab/geacc/internal/obs"
	"github.com/ebsnlab/geacc/internal/partition"
	"github.com/ebsnlab/geacc/internal/solvecache"
	"github.com/ebsnlab/geacc/internal/store"
)

// DefaultSolveCacheEntries bounds the shared /solve memo cache when
// Config.SolveCacheEntries is zero.
const DefaultSolveCacheEntries = 512

// Per-instance reuse caches are smaller than the shared /solve cache: an
// instance's rebalance working set is its own components, not the whole
// request mix.
const (
	instanceSolveCacheEntries = 128
	instanceWarmCacheEntries  = 64
)

// DefaultSnapshotEvery is how many logged ops an instance accumulates before
// the service folds them into a fresh snapshot (geacc-server
// -snapshot-every overrides it).
const DefaultSnapshotEvery = 256

// rebalanceHistory bounds each instance's ring of recent rebalance
// outcomes (GET /instances/{id}/stats).
const rebalanceHistory = 16

// Instance-service observability; catalog in docs/OBSERVABILITY.md.
var (
	instancesActive = obs.Default().Gauge("geacc_instances_active")
	deltaSeconds    = obs.Default().Histogram("geacc_delta_seconds", obs.DefaultLatencyBuckets)
)

func deltaOps(op string) *obs.Counter {
	return obs.Default().Counter(obs.Label("geacc_delta_ops_total", "op", op))
}

// service is the long-lived arrangement registry behind /instances: named
// arrangers, each with its own lock and (when a data directory is
// configured) its own write-ahead log + snapshot pair.
type service struct {
	log           *slog.Logger
	st            *store.Store // nil: instances are ephemeral
	snapshotEvery int
	adm           *admission
	admitHold     chan struct{} // test hook; see Config.admitHold

	// solveCache memoizes stateless /solve responses by content hash; nil
	// when Config.SolveCacheEntries is negative. cacheEnabled additionally
	// gates the per-instance rebalance caches minted at instance creation.
	solveCache   *solvecache.Cache
	cacheEnabled bool

	// shardDefault, when non-nil, applies approximate sharding to every
	// /solve and rebalance unless the request opts out (?approx_shard=0);
	// see Config.Shard.
	shardDefault *partition.Options

	// ready flips true once startup replay has finished; the instance
	// endpoints and /readyz gate on it. replayErr holds the failure message
	// when a lazy replay died (the process stays up but never goes ready).
	ready     atomic.Bool
	replayErr atomic.Pointer[string]

	mu        sync.RWMutex
	instances map[string]*instance

	// Rolling SLO windows, lazily minted per bounded label value (metricPath
	// output for HTTP, registry solver names for solves). Per-service rather
	// than per-process so tests get isolated windows.
	winMu        sync.Mutex
	httpWindows  map[string]*obs.Window
	solveWindows map[string]*obs.Window
}

// instance is one named arranger plus its persistence handle and the dirty
// marks the next scope=dirty rebalance will consume. All access is
// serialized under mu, so deltas to one instance are atomic while other
// instances keep solving in parallel.
type instance struct {
	mu   sync.Mutex
	meta store.Meta
	arr  *core.Arranger
	wal  *store.Log // nil when the service has no data directory

	dirtyE map[int]bool
	dirtyU map[int]bool

	// opCounts tallies applied ops by kind over the instance's lifetime
	// (seeded from the full log scan on replay, so it survives restarts);
	// rebalances is a bounded ring of recent rebalance outcomes, newest
	// last. Both serve GET /instances/{id}/stats.
	opCounts   map[string]int64
	rebalances []RebalanceOutcome

	// Rebalance reuse caches, nil when the service disabled caching. scache
	// memoizes per-component matchings by content hash; warm keeps the last
	// min-cost-flow state per component for warm-started re-solves.
	scache *solvecache.Cache
	warm   *core.WarmCache
}

// simID is the canonical similarity identity used for solve-cache keying
// ("kind/dim/maxT"); instances always have a function similarity, so it is
// always defined.
func (inst *instance) simID() string {
	return fmt.Sprintf("%s/%d/%v", inst.meta.Sim, inst.meta.Dim, inst.meta.MaxT)
}

// recordRebalance appends one outcome to the bounded ring; callers hold
// inst.mu.
func (inst *instance) recordRebalance(o RebalanceOutcome) {
	inst.rebalances = append(inst.rebalances, o)
	if len(inst.rebalances) > rebalanceHistory {
		inst.rebalances = inst.rebalances[len(inst.rebalances)-rebalanceHistory:]
	}
}

// newService opens (or creates) the data directory and replays every
// instance found in it — synchronously by default, in the background with
// cfg.LazyReplay (the service starts unready and flips ready when replay
// finishes; a replay failure leaves it permanently unready with the error
// surfaced on /readyz). An empty DataDir disables persistence: instances
// live and die with the process.
func newService(log *slog.Logger, cfg Config) (*service, error) {
	snapshotEvery := cfg.SnapshotEvery
	if snapshotEvery <= 0 {
		snapshotEvery = DefaultSnapshotEvery
	}
	cacheEntries := cfg.SolveCacheEntries
	if cacheEntries == 0 {
		cacheEntries = DefaultSolveCacheEntries
	}
	s := &service{
		log:           log,
		snapshotEvery: snapshotEvery,
		adm:           newAdmission(cfg.MaxInflight, cfg.QueueDepth, cfg.QueueTimeout),
		admitHold:     cfg.admitHold,
		solveCache:    solvecache.New(cacheEntries), // nil when negative
		cacheEnabled:  cacheEntries > 0,
		shardDefault:  cfg.Shard,
		instances:     make(map[string]*instance),
		httpWindows:   make(map[string]*obs.Window),
		solveWindows:  make(map[string]*obs.Window),
	}
	if cfg.DataDir == "" {
		s.ready.Store(true)
		return s, nil
	}
	st, err := store.Open(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	s.st = st
	ids, err := st.List()
	if err != nil {
		return nil, err
	}
	if !cfg.LazyReplay {
		if err := s.replayAll(ids, nil); err != nil {
			return nil, err
		}
		s.ready.Store(true)
		return s, nil
	}
	go func() {
		if err := s.replayAll(ids, cfg.replayHold); err != nil {
			msg := err.Error()
			s.replayErr.Store(&msg)
			s.log.Error("startup replay failed; instance endpoints stay unavailable", "err", err)
			return
		}
		s.ready.Store(true)
	}()
	return s, nil
}

// replayAll loads every listed instance into the registry. hold, when
// non-nil, delays the start until it is closed (test hook).
func (s *service) replayAll(ids []string, hold chan struct{}) error {
	if hold != nil {
		<-hold
	}
	for _, id := range ids {
		start := time.Now()
		state, wal, err := s.st.Load(context.Background(), id)
		if err != nil {
			return fmt.Errorf("server: replaying instance %q: %w", id, err)
		}
		inst := &instance{
			meta:     state.Meta,
			arr:      state.Arranger,
			wal:      wal,
			dirtyE:   toSet(state.DirtyEvents),
			dirtyU:   toSet(state.DirtyUsers),
			opCounts: state.OpCounts,
		}
		if inst.opCounts == nil {
			inst.opCounts = make(map[string]int64)
		}
		s.mintInstanceCaches(inst)
		s.mu.Lock()
		s.instances[id] = inst
		s.mu.Unlock()
		instancesActive.Add(1)
		s.log.Info("instance replayed",
			"id", id, "seq", state.Seq, "snapshot_seq", state.SnapshotSeq,
			"replayed_ops", state.ReplayedOps,
			"events", state.Arranger.NumEvents(), "users", state.Arranger.NumUsers(),
			"seconds", time.Since(start).Seconds())
	}
	return nil
}

// mintInstanceCaches attaches the rebalance reuse caches to a fresh or
// replayed instance; a replayed instance's caches simply start cold (replay
// never runs a solver, so there is nothing to invalidate).
func (s *service) mintInstanceCaches(inst *instance) {
	if !s.cacheEnabled {
		return
	}
	inst.scache = solvecache.New(instanceSolveCacheEntries)
	inst.warm = core.NewWarmCache(instanceWarmCacheEntries)
}

func toSet(ids []int) map[int]bool {
	m := make(map[int]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func sortedSet(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// get returns the named instance or writes a 404.
func (s *service) get(w http.ResponseWriter, r *http.Request, id string) (*instance, bool) {
	s.mu.RLock()
	inst, ok := s.instances[id]
	s.mu.RUnlock()
	if !ok {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("server: no instance %q", id))
	}
	return inst, ok
}

// gateReady refuses instance traffic with 503 + Retry-After while startup
// replay is still running (the registry is incomplete: a delta accepted now
// could collide with, or shadow, an instance the replay is about to load)
// or after it failed.
func (s *service) gateReady(w http.ResponseWriter, r *http.Request) bool {
	if s.ready.Load() {
		return true
	}
	w.Header().Set("Retry-After", "1")
	if msg := s.replayErr.Load(); msg != nil {
		writeError(w, r, http.StatusServiceUnavailable,
			fmt.Errorf("server: startup replay failed: %s", *msg))
		return false
	}
	writeError(w, r, http.StatusServiceUnavailable,
		errors.New("server: replaying persisted instances; retry shortly"))
	return false
}

// CreateInstanceRequest is the POST /instances body: the instance's name and
// its similarity definition, fixed for the instance's lifetime.
type CreateInstanceRequest struct {
	ID   string           `json:"id"`
	Sim  encoding.SimKind `json:"sim"`
	Dim  int              `json:"dim,omitempty"`
	MaxT float64          `json:"max_t,omitempty"`
}

// InstanceSummary is the per-instance view in GET /instances and the header
// of GET /instances/{id}.
type InstanceSummary struct {
	ID          string           `json:"id"`
	Sim         encoding.SimKind `json:"sim"`
	Dim         int              `json:"dim,omitempty"`
	MaxT        float64          `json:"max_t,omitempty"`
	Events      int              `json:"events"`
	Users       int              `json:"users"`
	Pairs       int              `json:"pairs"`
	MaxSum      float64          `json:"max_sum"`
	Seq         int64            `json:"seq"`
	DirtyEvents []int            `json:"dirty_events"`
	DirtyUsers  []int            `json:"dirty_users"`
}

// InstanceStatus is the GET /instances/{id} payload: the summary plus the
// full current matching in arrival order.
type InstanceStatus struct {
	InstanceSummary
	Matching encoding.MatchingJSON `json:"matching"`
}

// summaryLocked builds the instance's summary; callers hold inst.mu.
func (inst *instance) summaryLocked() InstanceSummary {
	var seq int64
	if inst.wal != nil {
		seq = inst.wal.Seq()
	}
	return InstanceSummary{
		ID:          inst.meta.ID,
		Sim:         inst.meta.Sim,
		Dim:         inst.meta.Dim,
		MaxT:        inst.meta.MaxT,
		Events:      inst.arr.NumEvents(),
		Users:       inst.arr.NumUsers(),
		Pairs:       inst.arr.Matching().Size(),
		MaxSum:      inst.arr.MaxSum(),
		Seq:         seq,
		DirtyEvents: sortedSet(inst.dirtyE),
		DirtyUsers:  sortedSet(inst.dirtyU),
	}
}

// statusLocked builds the full status; callers hold inst.mu. Pairs are
// listed in the matching's insertion order (not sorted), so the response —
// float bits of max_sum included — is reproducible across a crash/replay.
func (inst *instance) statusLocked() InstanceStatus {
	m := inst.arr.Matching()
	mj := encoding.MatchingJSON{MaxSum: m.MaxSum(), Pairs: []encoding.PairJSON{}}
	for _, p := range m.Pairs() {
		mj.Pairs = append(mj.Pairs, encoding.PairJSON{V: p.V, U: p.U, Sim: p.Sim})
	}
	return InstanceStatus{InstanceSummary: inst.summaryLocked(), Matching: mj}
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("server: %w", err))
		return false
	}
	return true
}

// handleCreateInstance registers a new named instance: POST /instances.
func (s *service) handleCreateInstance(w http.ResponseWriter, r *http.Request) {
	if !s.gateReady(w, r) {
		return
	}
	var req CreateInstanceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	meta := store.Meta{ID: req.ID, Sim: req.Sim, Dim: req.Dim, MaxT: req.MaxT}
	if err := meta.Validate(); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	simFunc, err := meta.SimInfo().Func()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.instances[meta.ID]; ok {
		writeError(w, r, http.StatusConflict, fmt.Errorf("server: instance %q already exists", meta.ID))
		return
	}
	var wal *store.Log
	if s.st != nil {
		wal, err = s.st.Create(meta)
		if err != nil {
			writeError(w, r, http.StatusConflict, err)
			return
		}
		meta = wal.Meta()
	}
	arr, err := core.NewArranger(simFunc)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	inst := &instance{
		meta:     meta,
		arr:      arr,
		wal:      wal,
		dirtyE:   make(map[int]bool),
		dirtyU:   make(map[int]bool),
		opCounts: make(map[string]int64),
	}
	s.mintInstanceCaches(inst)
	s.instances[meta.ID] = inst
	instancesActive.Add(1)
	requestLogger(r).Info("instance created", "id", meta.ID, "sim", meta.Sim)
	inst.mu.Lock()
	defer inst.mu.Unlock()
	writeJSONStatus(w, http.StatusCreated, inst.summaryLocked())
}

// handleListInstances answers GET /instances with every instance's summary,
// sorted by id.
func (s *service) handleListInstances(w http.ResponseWriter, r *http.Request) {
	if !s.gateReady(w, r) {
		return
	}
	s.mu.RLock()
	insts := make([]*instance, 0, len(s.instances))
	for _, inst := range s.instances {
		insts = append(insts, inst)
	}
	s.mu.RUnlock()
	out := make([]InstanceSummary, 0, len(insts))
	for _, inst := range insts {
		inst.mu.Lock()
		out = append(out, inst.summaryLocked())
		inst.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, map[string]any{"instances": out})
}

// handleGetInstance answers GET /instances/{id} with the full status.
func (s *service) handleGetInstance(w http.ResponseWriter, r *http.Request) {
	if !s.gateReady(w, r) {
		return
	}
	inst, ok := s.get(w, r, r.PathValue("id"))
	if !ok {
		return
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	writeJSON(w, inst.statusLocked())
}

// handleDeleteInstance removes an instance and, when persistent, its files:
// DELETE /instances/{id}.
func (s *service) handleDeleteInstance(w http.ResponseWriter, r *http.Request) {
	if !s.gateReady(w, r) {
		return
	}
	id := r.PathValue("id")
	s.mu.Lock()
	inst, ok := s.instances[id]
	if ok {
		delete(s.instances, id)
		instancesActive.Add(-1)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("server: no instance %q", id))
		return
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.wal != nil {
		_ = inst.wal.Close()
	}
	if s.st != nil {
		if err := s.st.Delete(id); err != nil {
			writeError(w, r, http.StatusInternalServerError, err)
			return
		}
	}
	requestLogger(r).Info("instance deleted", "id", id)
	writeJSON(w, map[string]string{"deleted": id})
}

// AddEventRequest is the POST /instances/{id}/events body.
type AddEventRequest struct {
	Attrs     []float64 `json:"attrs"`
	Cap       int       `json:"cap"`
	Conflicts []int     `json:"conflicts,omitempty"`
}

// AddUserRequest is the POST /instances/{id}/users body.
type AddUserRequest struct {
	Attrs []float64 `json:"attrs"`
	Cap   int       `json:"cap"`
}

// CancelRequest is the POST /instances/{id}/cancel body: exactly one of
// event or user names the node to remove.
type CancelRequest struct {
	Event *int `json:"event,omitempty"`
	User  *int `json:"user,omitempty"`
}

// DeltaResponse acknowledges one applied delta. ID is the index assigned to
// an arrival (absent for cancellations); Matched lists the counterparties
// the greedy placement picked up immediately.
type DeltaResponse struct {
	Op      string `json:"op"`
	ID      *int   `json:"id,omitempty"`
	Matched []int  `json:"matched,omitempty"`
	Seq     int64  `json:"seq"`
	MaxSum  float64 `json:"max_sum"`
}

// checkAttrs validates an arrival's attribute vector against the instance's
// similarity definition before anything hits the log. Meta validation pins
// Dim > 0 at create time for every similarity kind — cosine included — so a
// mismatched vector is rejected here and can never reach a similarity
// kernel (which panics on unequal lengths) or be persisted to the log.
func (inst *instance) checkAttrs(attrs []float64) error {
	if len(attrs) != inst.meta.Dim {
		return fmt.Errorf("server: instance %q wants %d attributes, got %d",
			inst.meta.ID, inst.meta.Dim, len(attrs))
	}
	return nil
}

// logThenApply runs the write-ahead sequence for one validated delta:
// append the op, apply it to the arranger, record its dirty mark, then
// snapshot if the log has drifted far enough. mark must run before the
// snapshot — a snapshot triggered by this very op folds the op away, so
// only the mark carries its dirty contribution across a restart. The caller
// holds inst.mu and has already validated the op, so an apply failure is a
// log/arranger divergence — it is returned as a 500 and logged loudly,
// because the log now has one op the memory image does not.
func (s *service) logThenApply(ctx context.Context, inst *instance, op store.Op, mark func()) (int64, error) {
	var seq int64
	if inst.wal != nil {
		var err error
		seq, err = inst.wal.Append(op)
		if err != nil {
			return 0, err
		}
	}
	if err := store.Apply(inst.arr, op); err != nil {
		s.log.Error("delta applied to log but rejected by arranger; instance diverged from its log",
			"id", inst.meta.ID, "op", op.Kind, "seq", seq, "err", err)
		return 0, err
	}
	mark()
	inst.opCounts[op.Kind]++
	deltaOps(op.Kind).Inc()
	s.maybeSnapshot(ctx, inst)
	return seq, nil
}

// maybeSnapshot folds the log into a fresh snapshot once enough ops have
// accumulated. Snapshot failures are logged, not fatal: the log alone still
// recovers the instance, just more slowly.
func (s *service) maybeSnapshot(ctx context.Context, inst *instance) {
	if inst.wal == nil || inst.wal.OpsSinceSnapshot() < s.snapshotEvery {
		return
	}
	// The snapshot must finish even if the delta's client hangs up. It
	// carries the pending dirty marks so they survive the ops being folded
	// away.
	if err := inst.wal.WriteSnapshot(context.WithoutCancel(ctx), inst.arr,
		sortedSet(inst.dirtyE), sortedSet(inst.dirtyU)); err != nil {
		s.log.Error("snapshot failed", "id", inst.meta.ID, "err", err)
	}
}

// handleAddEvent appends an event arrival: POST /instances/{id}/events.
func (s *service) handleAddEvent(w http.ResponseWriter, r *http.Request) {
	if !s.gateReady(w, r) {
		return
	}
	inst, ok := s.get(w, r, r.PathValue("id"))
	if !ok {
		return
	}
	var req AddEventRequest
	if !decodeBody(w, r, &req) {
		return
	}
	start := time.Now()
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if err := inst.checkAttrs(req.Attrs); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if req.Cap < 0 {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("server: negative capacity %d", req.Cap))
		return
	}
	nv := inst.arr.NumEvents()
	for _, c := range req.Conflicts {
		if c < 0 || c >= nv {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("server: conflict id %d out of range [0, %d)", c, nv))
			return
		}
	}
	sp := obs.StartSpan(r.Context(), "instance/delta").
		Annotate("id", inst.meta.ID).Annotate("op", store.OpAddEvent)
	defer sp.End()
	seq, err := s.logThenApply(r.Context(), inst, store.Op{
		Kind: store.OpAddEvent, Attrs: req.Attrs, Cap: req.Cap, Conflicts: req.Conflicts,
	}, func() { inst.dirtyE[nv] = true })
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	deltaSeconds.Observe(time.Since(start).Seconds())
	writeJSON(w, DeltaResponse{
		Op: store.OpAddEvent, ID: &nv, Matched: inst.arr.EventUsers(nv),
		Seq: seq, MaxSum: inst.arr.MaxSum(),
	})
}

// handleAddUser appends a user arrival: POST /instances/{id}/users.
func (s *service) handleAddUser(w http.ResponseWriter, r *http.Request) {
	if !s.gateReady(w, r) {
		return
	}
	inst, ok := s.get(w, r, r.PathValue("id"))
	if !ok {
		return
	}
	var req AddUserRequest
	if !decodeBody(w, r, &req) {
		return
	}
	start := time.Now()
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if err := inst.checkAttrs(req.Attrs); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if req.Cap < 0 {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("server: negative capacity %d", req.Cap))
		return
	}
	nu := inst.arr.NumUsers()
	sp := obs.StartSpan(r.Context(), "instance/delta").
		Annotate("id", inst.meta.ID).Annotate("op", store.OpAddUser)
	defer sp.End()
	seq, err := s.logThenApply(r.Context(), inst, store.Op{
		Kind: store.OpAddUser, Attrs: req.Attrs, Cap: req.Cap,
	}, func() { inst.dirtyU[nu] = true })
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	deltaSeconds.Observe(time.Since(start).Seconds())
	writeJSON(w, DeltaResponse{
		Op: store.OpAddUser, ID: &nu, Matched: inst.arr.UserEvents(nu),
		Seq: seq, MaxSum: inst.arr.MaxSum(),
	})
}

// handleCancel removes an event or a user: POST /instances/{id}/cancel.
func (s *service) handleCancel(w http.ResponseWriter, r *http.Request) {
	if !s.gateReady(w, r) {
		return
	}
	inst, ok := s.get(w, r, r.PathValue("id"))
	if !ok {
		return
	}
	var req CancelRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if (req.Event == nil) == (req.User == nil) {
		writeError(w, r, http.StatusBadRequest, errors.New(`server: cancel wants exactly one of "event" or "user"`))
		return
	}
	start := time.Now()
	inst.mu.Lock()
	defer inst.mu.Unlock()
	var op store.Op
	var mark func()
	kind := store.OpCancelEvent
	if req.Event != nil {
		if *req.Event < 0 || *req.Event >= inst.arr.NumEvents() {
			writeError(w, r, http.StatusNotFound, fmt.Errorf("server: no event %d", *req.Event))
			return
		}
		op = store.Op{Kind: store.OpCancelEvent, Event: req.Event}
		mark = func() { inst.dirtyE[*req.Event] = true }
	} else {
		if *req.User < 0 || *req.User >= inst.arr.NumUsers() {
			writeError(w, r, http.StatusNotFound, fmt.Errorf("server: no user %d", *req.User))
			return
		}
		kind = store.OpRemoveUser
		op = store.Op{Kind: store.OpRemoveUser, User: req.User}
		mark = func() { inst.dirtyU[*req.User] = true }
	}
	sp := obs.StartSpan(r.Context(), "instance/delta").
		Annotate("id", inst.meta.ID).Annotate("op", kind)
	defer sp.End()
	seq, err := s.logThenApply(r.Context(), inst, op, mark)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	deltaSeconds.Observe(time.Since(start).Seconds())
	writeJSON(w, DeltaResponse{Op: kind, Seq: seq, MaxSum: inst.arr.MaxSum()})
}

// RebalanceResponse is the POST /instances/{id}/rebalance payload.
type RebalanceResponse struct {
	decomp.RebalanceResult
	Scope   string  `json:"scope"`
	Algo    string  `json:"algo"`
	Seq     int64   `json:"seq"`
	MaxSum  float64 `json:"max_sum"`
	Seconds float64 `json:"seconds"`
}

// handleRebalance re-solves the instance: POST /instances/{id}/rebalance.
// ?scope=dirty (default) re-solves only the decomposition components the
// deltas since the last rebalance touched; ?scope=full re-solves every
// component. ?algo= picks the registry solver (default greedy), ?workers=
// bounds the component pool, ?seed= fixes the random baselines. The solve
// runs under the request context, so a disconnected client cancels it
// (status 499) with the instance unchanged.
func (s *service) handleRebalance(w http.ResponseWriter, r *http.Request) {
	if !s.gateReady(w, r) {
		return
	}
	release, admitted := s.admit(w, r)
	if !admitted {
		return
	}
	defer release()
	inst, ok := s.get(w, r, r.PathValue("id"))
	if !ok {
		return
	}
	q := r.URL.Query()
	scope := q.Get("scope")
	if scope == "" {
		scope = "dirty"
	}
	if scope != "dirty" && scope != "full" {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("server: unknown scope %q (dirty or full)", scope))
		return
	}
	algo := q.Get("algo")
	if algo == "" {
		algo = "greedy"
	}
	if _, err := core.LookupSolver(algo); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	opt := decomp.Options{Seed: 1}
	shard, err := s.shardOptionsFromQuery(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	// With sharding on, a dirty giant component splits before solving; the
	// per-shard solves still go through the instance's reuse caches (content
	// hashing and warm flow compose inside shards).
	opt.Shard = shard
	if v := q.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("server: bad workers: %w", err))
			return
		}
		opt.Workers = n
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("server: bad seed: %w", err))
			return
		}
		opt.Seed = n
	}
	// The reuse caches ride along unless the request opts out; both are
	// pure accelerators (bit-exact vs a cold solve), so ?cache=0 exists for
	// benchmarking, not correctness.
	if inst.scache != nil && !cacheBypassed(r) {
		opt.SolveCache = inst.scache
		opt.SimID = inst.simID()
		opt.WarmCache = inst.warm
	}

	start := time.Now()
	inst.mu.Lock()
	defer inst.mu.Unlock()
	cacheBefore := inst.scache.Stats()
	prev := inst.arr.Matching()
	res, err := decomp.RebalanceScoped(r.Context(), inst.arr, algo,
		sortedSet(inst.dirtyE), sortedSet(inst.dirtyU), scope == "full", opt)
	if err != nil {
		s.solveWindow(algo).Observe(time.Since(start).Seconds(), true)
		writeError(w, r, solveErrorStatus(err, http.StatusInternalServerError), err)
		return
	}

	// The rebalance already mutated the arranger (RebalanceScoped adopts
	// internally), so the log entry records the outcome — the adopted pairs,
	// not the solver invocation — and replay never re-runs a solver. If the
	// append fails, the previous matching is restored so memory and log
	// still agree.
	op := store.Op{Kind: store.OpRebalance, Adopted: res.Adopted}
	if res.Adopted {
		for _, p := range inst.arr.Matching().Pairs() {
			op.Pairs = append(op.Pairs, encoding.PairJSON{V: p.V, U: p.U, Sim: p.Sim})
		}
	}
	var seq int64
	if inst.wal != nil {
		seq, err = inst.wal.Append(op)
		if err != nil {
			if rerr := inst.arr.SetMatching(prev); rerr != nil {
				s.log.Error("rebalance rollback failed", "id", inst.meta.ID, "err", rerr)
			}
			writeError(w, r, http.StatusInternalServerError, err)
			return
		}
	}
	deltaOps(store.OpRebalance).Inc()
	inst.opCounts[store.OpRebalance]++
	clear(inst.dirtyE)
	clear(inst.dirtyU)
	s.maybeSnapshot(r.Context(), inst)

	elapsed := time.Since(start).Seconds()
	s.solveWindow(algo).Observe(elapsed, false)
	cacheAfter := inst.scache.Stats()
	inst.recordRebalance(RebalanceOutcome{
		Time:             time.Now().UTC(),
		RequestID:        obs.RequestIDFrom(r.Context()),
		Scope:            scope,
		Algo:             algo,
		ComponentsSolved: res.ComponentsSolved,
		ComponentsTotal:  res.ComponentsTotal,
		Gain:             res.Gain,
		Adopted:          res.Adopted,
		Seconds:          elapsed,
		CacheHits:        cacheAfter.Hits - cacheBefore.Hits,
		CacheMisses:      cacheAfter.Misses - cacheBefore.Misses,
	})
	requestLogger(r).Info("rebalance",
		"id", inst.meta.ID, "scope", scope, "algo", algo,
		"components_solved", res.ComponentsSolved, "components_total", res.ComponentsTotal,
		"gain", res.Gain, "adopted", res.Adopted, "seconds", elapsed,
		"cache_hits", cacheAfter.Hits-cacheBefore.Hits,
		"cache_misses", cacheAfter.Misses-cacheBefore.Misses)
	writeJSON(w, RebalanceResponse{
		RebalanceResult: res,
		Scope:           scope,
		Algo:            algo,
		Seq:             seq,
		MaxSum:          inst.arr.MaxSum(),
		Seconds:         elapsed,
	})
}

// register mounts the instance endpoints on mux.
func (s *service) register(mux *http.ServeMux) {
	mux.HandleFunc("POST /instances", s.handleCreateInstance)
	mux.HandleFunc("GET /instances", s.handleListInstances)
	mux.HandleFunc("GET /instances/{id}", s.handleGetInstance)
	mux.HandleFunc("DELETE /instances/{id}", s.handleDeleteInstance)
	mux.HandleFunc("POST /instances/{id}/events", s.handleAddEvent)
	mux.HandleFunc("POST /instances/{id}/users", s.handleAddUser)
	mux.HandleFunc("POST /instances/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /instances/{id}/rebalance", s.handleRebalance)
	mux.HandleFunc("GET /instances/{id}/stats", s.handleInstanceStats)
}
