package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// doPost drives one POST through the full handler stack.
func doPost(t *testing.T, h http.Handler, path, body string, want int) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != want {
		t.Fatalf("%s: %d %s", path, rr.Code, rr.Body)
	}
	return rr
}

// seedStatsInstance creates instance "st" with one 2-cap event, three users,
// and a rebalance — the fixture both stats tests read back.
func seedStatsInstance(t *testing.T, h http.Handler) {
	t.Helper()
	doPost(t, h, "/instances", `{"id":"st","sim":"euclidean","dim":2,"max_t":10}`, http.StatusCreated)
	doPost(t, h, "/instances/st/events", `{"attrs":[0,0],"cap":2}`, http.StatusOK)
	doPost(t, h, "/instances/st/events", `{"attrs":[9,9],"cap":1}`, http.StatusOK)
	for i := 0; i < 3; i++ {
		doPost(t, h, "/instances/st/users", fmt.Sprintf(`{"attrs":[%d,0],"cap":1}`, i), http.StatusOK)
	}
	doPost(t, h, "/instances/st/rebalance?scope=full", "", http.StatusOK)
}

func getStats(t *testing.T, h http.Handler) InstanceStats {
	t.Helper()
	rr := doGet(t, h, "/instances/st/stats")
	if rr.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", rr.Code, rr.Body)
	}
	var st InstanceStats
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad stats body %s: %v", rr.Body, err)
	}
	return st
}

// TestInstanceStatsEphemeral: the stats payload for an in-memory instance —
// op counts, the rebalance-outcome ring (with its request ID), the quality
// gap against the relaxation bound, and zeroed persistence fields.
func TestInstanceStatsEphemeral(t *testing.T) {
	h, _, _ := newCorrelationHandler(t, Config{})
	seedStatsInstance(t, h)
	st := getStats(t, h)

	if st.ID != "st" || st.Events != 2 || st.Users != 3 {
		t.Fatalf("shape: %+v", st)
	}
	if st.Pairs == 0 || st.MaxSum <= 0 {
		t.Fatalf("rebalanced instance has empty matching: %+v", st)
	}
	wantOps := map[string]int64{"add_event": 2, "add_user": 3, "rebalance": 1}
	for k, want := range wantOps {
		if st.OpCounts[k] != want {
			t.Errorf("op_counts[%s] = %d, want %d (all: %v)", k, st.OpCounts[k], want, st.OpCounts)
		}
	}
	if len(st.RecentRebalances) != 1 {
		t.Fatalf("recent_rebalances: %+v", st.RecentRebalances)
	}
	// Adopted may be false: the online arrangement can already be optimal,
	// in which case the rebalance is recorded but not adopted.
	rb := st.RecentRebalances[0]
	if rb.RequestID == "" || rb.Scope != "full" || rb.Algo == "" || rb.Time.IsZero() || rb.Gain < 0 {
		t.Fatalf("rebalance outcome: %+v", rb)
	}
	if rb.ComponentsTotal < 1 || rb.ComponentsSolved < 1 {
		t.Fatalf("rebalance component counts: %+v", rb)
	}

	// Quality: the relaxation bound dominates the arrangement, the gap is a
	// clamped fraction of the bound.
	if st.RelaxedUpperBound < st.MaxSum {
		t.Fatalf("upper bound %v below max_sum %v", st.RelaxedUpperBound, st.MaxSum)
	}
	if st.Gap < 0 || st.Gap > 1 {
		t.Fatalf("gap %v outside [0,1]", st.Gap)
	}

	// A full rebalance consumed every dirty mark.
	if len(st.DirtyEvents) != 0 || len(st.DirtyUsers) != 0 || st.DirtyComponents != 0 {
		t.Fatalf("dirty state after full rebalance: %+v", st)
	}
	if st.ComponentsTotal < 1 {
		t.Fatalf("components_total = %d", st.ComponentsTotal)
	}

	// Ephemeral: no WAL drift to report.
	if st.Persistent || st.Seq != 0 || st.BytesSinceSnapshot != 0 {
		t.Fatalf("ephemeral instance reports persistence: %+v", st)
	}
}

// TestInstanceStatsPersistence: on a persistent instance the stats carry WAL
// drift, and lifetime op counts survive a restart because they are replayed
// from the full log, not reset by snapshots.
func TestInstanceStatsPersistence(t *testing.T) {
	dir := t.TempDir()

	h, _, _ := newCorrelationHandler(t, Config{DataDir: dir})
	seedStatsInstance(t, h)
	before := getStats(t, h)
	if !before.Persistent {
		t.Fatalf("instance not persistent: %+v", before)
	}
	// 6 ops logged (2 events + 3 users + 1 rebalance), no snapshot taken yet
	// at the default cadence.
	if before.Seq != 6 || before.OpsSinceSnapshot != 6 || before.BytesSinceSnapshot <= 0 {
		t.Fatalf("WAL drift: seq=%d ops_since=%d bytes_since=%d",
			before.Seq, before.OpsSinceSnapshot, before.BytesSinceSnapshot)
	}

	// Restart on the same directory: replay restores the lifetime tallies.
	h2, _, _ := newCorrelationHandler(t, Config{DataDir: dir})
	after := getStats(t, h2)
	if after.Events != 2 || after.Users != 3 || after.Seq != before.Seq {
		t.Fatalf("restart lost state: %+v", after)
	}
	for k, want := range map[string]int64{"add_event": 2, "add_user": 3, "rebalance": 1} {
		if after.OpCounts[k] != want {
			t.Errorf("post-restart op_counts[%s] = %d, want %d (all: %v)",
				k, after.OpCounts[k], want, after.OpCounts)
		}
	}
	// The in-memory rebalance ring is not persisted; a restart starts empty.
	if len(after.RecentRebalances) != 0 {
		t.Fatalf("rebalance ring survived restart: %+v", after.RecentRebalances)
	}

	// Unknown instance: 404, not 500.
	rr := doGet(t, h2, "/instances/nope/stats")
	if rr.Code != http.StatusNotFound {
		t.Fatalf("stats for unknown instance: %d %s", rr.Code, rr.Body)
	}
}
