package server

import (
	"context"
	"expvar"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/ebsnlab/geacc/internal/obs"
)

// knownPaths are the routes metrics may label. Anything else is folded
// into "other" (instance routes fold to their {id} template first, in
// metricPath) so an attacker probing random URLs cannot grow the metric
// namespace without bound.
var knownPaths = map[string]bool{
	"/healthz":    true,
	"/readyz":     true,
	"/statusz":    true,
	"/version":    true,
	"/algorithms": true,
	"/solve":      true,
	"/trace":      true,
	"/report":     true,
	"/validate":   true,
	"/metrics":    true,
	"/debug/vars": true,
	"/instances":  true,
}

// instanceOps are the sub-routes under /instances/{id}/.
var instanceOps = map[string]bool{
	"events":    true,
	"users":     true,
	"cancel":    true,
	"rebalance": true,
	"stats":     true,
}

// metricPath folds a request path into a bounded label value: known routes
// keep their path, instance routes collapse to their route template (the
// id segment is unbounded client input), everything else is "other".
func metricPath(p string) string {
	if knownPaths[p] {
		return p
	}
	if rest, ok := strings.CutPrefix(p, "/instances/"); ok {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			if op := rest[i+1:]; instanceOps[op] {
				return "/instances/{id}/" + op
			}
			return "other"
		}
		if rest != "" {
			return "/instances/{id}"
		}
	}
	return "other"
}

// telemetryPaths are scraped by dashboards and load balancers on a timer;
// their request logs go out at Debug so a healthy system's log stream is
// about solves, not about being watched.
var telemetryPaths = map[string]bool{
	"/healthz":    true,
	"/readyz":     true,
	"/statusz":    true,
	"/metrics":    true,
	"/debug/vars": true,
}

// statusWriter captures the status code a handler writes.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// httpInflight counts requests currently inside the handler stack. The
// readiness probe reads it to report overload before a load balancer piles
// more work onto a saturated process.
var httpInflight = obs.Default().Gauge("geacc_http_inflight")

// withMetrics wraps a handler with the HTTP telemetry layer: per-endpoint
// request counts labeled by status code (geacc_http_requests_total),
// per-endpoint latency histograms (geacc_http_request_seconds), the
// in-flight gauge (geacc_http_inflight), and the service's rolling SLO
// windows (p50/p90/p99 over 1m/5m/15m, served by /statusz and /metrics).
// See docs/OBSERVABILITY.md.
func withMetrics(next http.Handler, svc *service) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := metricPath(r.URL.Path)
		httpInflight.Add(1)
		defer httpInflight.Add(-1)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start).Seconds()
		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		reg := obs.Default()
		reg.Counter(obs.Label("geacc_http_requests_total",
			"path", path, "code", strconv.Itoa(code))).Inc()
		reg.Histogram(obs.Label("geacc_http_request_seconds", "path", path),
			obs.DefaultLatencyBuckets).Observe(elapsed)
		// Window error rates track server-side failures: a 4xx is the
		// client's problem, a 5xx burns the error budget.
		svc.httpWindow(path).Observe(elapsed, code >= 500)
	})
}

type loggerKey struct{}

// requestLogger returns the structured logger withLogging stored on the
// request context; handlers use it for domain events (solve summaries) so
// those lines carry the same handler/format configuration as request logs.
func requestLogger(r *http.Request) *slog.Logger {
	if log, ok := r.Context().Value(loggerKey{}).(*slog.Logger); ok {
		return log
	}
	return slog.Default()
}

// withLogging wraps a handler with request correlation and structured
// request logging. Every request gets a request ID — a well-formed inbound
// X-Request-ID is honored (so a gateway's ID survives the hop), anything
// else gets a fresh one — echoed on the X-Request-ID response header,
// attached to the request context (obs.RequestIDFrom), and stamped onto
// the per-request logger, so the request log line, every domain line a
// handler emits through requestLogger, every obs.StartSpan span, and every
// JSON error body carry the same ID. One log/slog record goes out per
// request (method, path, status, duration, body size). Telemetry endpoints
// (health checks, metric scrapes) log at Debug, everything else at Info;
// server-side failures escalate to Warn/Error so a text-level=info
// deployment still surfaces them — including the 499 line a mid-solve
// client disconnect leaves behind.
func withLogging(next http.Handler, log *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if !obs.ValidRequestID(id) {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		reqLog := log.With(slog.String("request_id", id))
		ctx := obs.ContextWithRequestID(r.Context(), id)
		ctx = context.WithValue(ctx, loggerKey{}, reqLog)
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		level := slog.LevelInfo
		switch {
		case code >= 500:
			level = slog.LevelError
		case code >= 400:
			level = slog.LevelWarn
		case telemetryPaths[r.URL.Path]:
			level = slog.LevelDebug
		}
		reqLog.LogAttrs(r.Context(), level, "http request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", code),
			slog.Float64("seconds", time.Since(start).Seconds()),
			slog.Int64("request_bytes", r.ContentLength),
		)
	})
}

// DebugHandler serves the full diagnostics surface: expvar (including the
// "geacc" metrics registry) at /debug/vars and the net/http/pprof profiles
// under /debug/pprof/. geacc-server binds it to a separate listener via
// the -debug-addr flag, keeping profiling endpoints off the traffic port;
// the main handler exposes only the read-cheap /debug/vars.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
