package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/encoding"
	"github.com/ebsnlab/geacc/internal/sim"
)

// newCacheServer builds a test server plus its in-package service handle,
// so tests can read the solve cache's counters directly.
func newCacheServer(t *testing.T, cfg Config) (*httptest.Server, *service) {
	t.Helper()
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	h, svc, err := newHandler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, svc
}

// euclideanInstanceJSON serializes a random vector instance (euclidean
// similarity, so the cache can key it by SimID).
func euclideanInstanceJSON(t *testing.T, seed int64, nv, nu int) []byte {
	t.Helper()
	const d, maxT = 3, 10.0
	rng := rand.New(rand.NewSource(seed))
	vec := func() sim.Vector {
		v := make(sim.Vector, d)
		for i := range v {
			v[i] = rng.Float64() * maxT
		}
		return v
	}
	events := make([]core.Event, nv)
	for i := range events {
		events[i] = core.Event{Attrs: vec(), Cap: 1 + rng.Intn(2)}
	}
	users := make([]core.User, nu)
	for i := range users {
		users[i] = core.User{Attrs: vec(), Cap: 1 + rng.Intn(2)}
	}
	cf := conflict.Random(rng, nv, 0.25)
	in, err := core.NewInstance(events, users, cf, sim.Euclidean(d, maxT))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := encoding.EncodeInstance(&buf, in, encoding.SimEuclidean, d, maxT); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSolveCacheByteIdenticalResponses is the tentpole contract over HTTP:
// for every algorithm, decomposed or not, a cache hit serves a response
// byte-for-byte identical to the fresh solve it memoized, and bit-identical
// in matching content to an uncached solve of the same instance.
func TestSolveCacheByteIdenticalResponses(t *testing.T) {
	srv, svc := newCacheServer(t, Config{})
	for _, algo := range core.SolverNames() {
		for _, decompose := range []bool{false, true} {
			name := fmt.Sprintf("%s/decompose=%v", algo, decompose)
			t.Run(name, func(t *testing.T) {
				// Small enough for the exact solver's HTTP area guard.
				doc := euclideanInstanceJSON(t, int64(len(algo)), 4, 12)
				url := srv.URL + "/solve?algo=" + algo + "&seed=7"
				if decompose {
					url += "&decompose=1"
				}
				before := svc.solveCache.Stats()
				resp1, body1 := postJSON(t, url, doc)
				if resp1.StatusCode != http.StatusOK {
					t.Fatalf("first solve: %d %s", resp1.StatusCode, body1)
				}
				resp2, body2 := postJSON(t, url, doc)
				if resp2.StatusCode != http.StatusOK {
					t.Fatalf("second solve: %d %s", resp2.StatusCode, body2)
				}
				if !bytes.Equal(body1, body2) {
					t.Fatalf("cached response differs from fresh:\n%s\nvs\n%s", body1, body2)
				}
				after := svc.solveCache.Stats()
				if after.Hits != before.Hits+1 {
					t.Fatalf("hits %d -> %d, want one new hit", before.Hits, after.Hits)
				}
				// The memoized matching must be bit-identical to an uncached
				// solve (timing fields legitimately differ).
				resp3, body3 := postJSON(t, url+"&cache=0", doc)
				if resp3.StatusCode != http.StatusOK {
					t.Fatalf("uncached solve: %d %s", resp3.StatusCode, body3)
				}
				var cached, fresh SolveResponse
				if err := json.Unmarshal(body2, &cached); err != nil {
					t.Fatal(err)
				}
				if err := json.Unmarshal(body3, &fresh); err != nil {
					t.Fatal(err)
				}
				if cached.Matching.MaxSum != fresh.Matching.MaxSum {
					t.Fatalf("max_sum: cached %v fresh %v", cached.Matching.MaxSum, fresh.Matching.MaxSum)
				}
				if len(cached.Matching.Pairs) != len(fresh.Matching.Pairs) {
					t.Fatalf("pairs: cached %d fresh %d", len(cached.Matching.Pairs), len(fresh.Matching.Pairs))
				}
				for i := range cached.Matching.Pairs {
					if cached.Matching.Pairs[i] != fresh.Matching.Pairs[i] {
						t.Fatalf("pair %d: cached %+v fresh %+v", i,
							cached.Matching.Pairs[i], fresh.Matching.Pairs[i])
					}
				}
			})
		}
	}
}

// TestSolveCacheOptOut: ?cache=0 must neither read nor write the cache.
func TestSolveCacheOptOut(t *testing.T) {
	srv, svc := newCacheServer(t, Config{})
	doc := euclideanInstanceJSON(t, 42, 3, 8)
	before := svc.solveCache.Stats()
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, srv.URL+"/solve?algo=greedy&cache=0", doc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: %d %s", i, resp.StatusCode, body)
		}
	}
	after := svc.solveCache.Stats()
	if after != before {
		t.Fatalf("cache touched despite ?cache=0: %+v -> %+v", before, after)
	}
}

// TestSolveCacheDisabled: negative SolveCacheEntries turns caching off
// service-wide; solves still work and statusz omits the cache block.
func TestSolveCacheDisabled(t *testing.T) {
	srv, svc := newCacheServer(t, Config{SolveCacheEntries: -1})
	if svc.solveCache != nil {
		t.Fatal("negative SolveCacheEntries must disable the cache")
	}
	doc := euclideanInstanceJSON(t, 1, 3, 8)
	resp, body := postJSON(t, srv.URL+"/solve?algo=greedy", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, body)
	}
	code, sb := getBody(t, srv.URL+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz: %d", code)
	}
	var st map[string]json.RawMessage
	if err := json.Unmarshal(sb, &st); err != nil {
		t.Fatal(err)
	}
	if _, ok := st["solve_cache"]; ok {
		t.Fatal("statusz must omit solve_cache when caching is disabled")
	}
}

// TestStatuszReportsSolveCache: the statusz page surfaces hit/miss counts.
func TestStatuszReportsSolveCache(t *testing.T) {
	srv, _ := newCacheServer(t, Config{})
	doc := euclideanInstanceJSON(t, 5, 3, 8)
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, srv.URL+"/solve?algo=greedy", doc); resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: %d %s", i, resp.StatusCode, body)
		}
	}
	code, body := getBody(t, srv.URL+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz: %d", code)
	}
	var st StatuszResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.SolveCache == nil {
		t.Fatal("statusz missing solve_cache block")
	}
	if st.SolveCache.Hits < 1 || st.SolveCache.Misses < 1 {
		t.Fatalf("solve_cache counters: %+v", *st.SolveCache)
	}
}

// TestSolveCachePortfolioExcluded: the portfolio's winner depends on a
// wall-clock race, so it must never be served from (or stored into) the
// cache.
func TestSolveCachePortfolioExcluded(t *testing.T) {
	srv, svc := newCacheServer(t, Config{})
	doc := euclideanInstanceJSON(t, 9, 3, 8)
	before := svc.solveCache.Stats()
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, srv.URL+"/solve?algo=portfolio", doc); resp.StatusCode != http.StatusOK {
			t.Fatalf("portfolio %d: %d %s", i, resp.StatusCode, body)
		}
	}
	if after := svc.solveCache.Stats(); after != before {
		t.Fatalf("portfolio touched the cache: %+v -> %+v", before, after)
	}
}

// TestRebalanceStatsReportCacheReuse drives an instance through deltas and
// repeated rebalances and asserts the per-instance stats endpoint reports
// the solve-cache traffic — including hits on the second, identical
// rebalance (satellite: instance stats surface cache hit/miss).
func TestRebalanceStatsReportCacheReuse(t *testing.T) {
	srv, _ := newCacheServer(t, Config{})
	if resp, body := postStr(t, srv.URL+"/instances", `{"id":"c1","sim":"euclidean","dim":2,"max_t":10}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 6; i++ {
		ev := fmt.Sprintf(`{"attrs":[%v,%v],"cap":2}`, rng.Float64()*10, rng.Float64()*10)
		if resp, body := postStr(t, srv.URL+"/instances/c1/events", ev); resp.StatusCode != http.StatusOK {
			t.Fatalf("add event: %d %s", resp.StatusCode, body)
		}
	}
	for i := 0; i < 15; i++ {
		us := fmt.Sprintf(`{"attrs":[%v,%v],"cap":1}`, rng.Float64()*10, rng.Float64()*10)
		if resp, body := postStr(t, srv.URL+"/instances/c1/users", us); resp.StatusCode != http.StatusOK {
			t.Fatalf("add user: %d %s", resp.StatusCode, body)
		}
	}
	for i := 0; i < 2; i++ {
		resp, body := postStr(t, srv.URL+"/instances/c1/rebalance?scope=full&algo=mincostflow", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rebalance %d: %d %s", i, resp.StatusCode, body)
		}
	}
	code, body := getBody(t, srv.URL+"/instances/c1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	var st InstanceStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.SolveCache == nil {
		t.Fatal("instance stats missing solve_cache block")
	}
	if st.SolveCache.Misses == 0 {
		t.Fatalf("first rebalance should have missed: %+v", *st.SolveCache)
	}
	if st.SolveCache.Hits == 0 {
		t.Fatalf("second identical rebalance should have hit: %+v", *st.SolveCache)
	}
	if st.WarmFlowEntries == 0 {
		t.Fatal("mincostflow rebalance should have populated the warm flow cache")
	}
	n := len(st.RecentRebalances)
	if n != 2 {
		t.Fatalf("recent rebalances: %d", n)
	}
	if st.RecentRebalances[0].CacheMisses == 0 {
		t.Fatalf("outcome 0: %+v", st.RecentRebalances[0])
	}
	if st.RecentRebalances[1].CacheHits == 0 {
		t.Fatalf("outcome 1: %+v", st.RecentRebalances[1])
	}
}

// TestReplayUnaffectedByCaches pins the replay non-interaction property:
// rebalances run with the solve cache and warm-started flow write only
// their adopted pairs to the WAL, so a restart replays to a byte-identical
// instance without consulting (or needing) any cache.
func TestReplayUnaffectedByCaches(t *testing.T) {
	dir := t.TempDir()
	srv := newInstanceServer(t, dir, 0)
	if resp, body := postStr(t, srv.URL+"/instances", `{"id":"p1","sim":"euclidean","dim":2,"max_t":10}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	rng := rand.New(rand.NewSource(77))
	addSome := func() {
		for i := 0; i < 4; i++ {
			ev := fmt.Sprintf(`{"attrs":[%v,%v],"cap":2}`, rng.Float64()*10, rng.Float64()*10)
			if resp, body := postStr(t, srv.URL+"/instances/p1/events", ev); resp.StatusCode != http.StatusOK {
				t.Fatalf("add event: %d %s", resp.StatusCode, body)
			}
			us := fmt.Sprintf(`{"attrs":[%v,%v],"cap":1}`, rng.Float64()*10, rng.Float64()*10)
			if resp, body := postStr(t, srv.URL+"/instances/p1/users", us); resp.StatusCode != http.StatusOK {
				t.Fatalf("add user: %d %s", resp.StatusCode, body)
			}
		}
	}
	// Interleave deltas with cached, warm-started mincostflow rebalances so
	// the WAL records rebalances that actually exercised both caches.
	for round := 0; round < 3; round++ {
		addSome()
		resp, body := postStr(t, srv.URL+"/instances/p1/rebalance?algo=mincostflow", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rebalance round %d: %d %s", round, resp.StatusCode, body)
		}
	}
	code, before := getBody(t, srv.URL+"/instances/p1")
	if code != http.StatusOK {
		t.Fatalf("status before restart: %d", code)
	}
	srv.Close()

	srv2 := newInstanceServer(t, dir, 0)
	code, after := getBody(t, srv2.URL+"/instances/p1")
	if code != http.StatusOK {
		t.Fatalf("status after restart: %d", code)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("replayed instance diverged:\n%s\nvs\n%s", before, after)
	}
}
