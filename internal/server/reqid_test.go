package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ebsnlab/geacc/internal/dataset"
	"github.com/ebsnlab/geacc/internal/obs"
)

// jsonLogger is a debug-level JSON slog writing into buf.
func jsonLogger(buf *bytes.Buffer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

// newCorrelationHandler builds the full handler stack with a JSON log
// buffer, so tests can grep request and domain log lines for request IDs.
func newCorrelationHandler(t *testing.T, cfg Config) (http.Handler, *service, *bytes.Buffer) {
	t.Helper()
	var logBuf bytes.Buffer
	cfg.Logger = jsonLogger(&logBuf)
	h, svc, err := newHandler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h, svc, &logBuf
}

// logLines decodes every JSON log record in buf.
func logLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// findLog returns the first log record whose msg matches.
func findLog(records []map[string]any, msg string) map[string]any {
	for _, rec := range records {
		if rec["msg"] == msg {
			return rec
		}
	}
	return nil
}

// TestRequestIDEndToEndCorrelation drives one rebalance through the full
// handler stack and asserts the same request ID appears on every surface:
// the X-Request-ID response header, the domain and request log lines, the
// instance/rebalance span, and the Chrome trace export of that span.
func TestRequestIDEndToEndCorrelation(t *testing.T) {
	h, _, logBuf := newCorrelationHandler(t, Config{})

	do := func(method, path, body string) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}
	if rr := do("POST", "/instances", `{"id":"corr","sim":"euclidean","dim":2,"max_t":10}`); rr.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rr.Code, rr.Body)
	}
	if rr := do("POST", "/instances/corr/events", `{"attrs":[0,0],"cap":2}`); rr.Code != http.StatusOK {
		t.Fatalf("add event: %d %s", rr.Code, rr.Body)
	}
	if rr := do("POST", "/instances/corr/users", `{"attrs":[1,0],"cap":1}`); rr.Code != http.StatusOK {
		t.Fatalf("add user: %d %s", rr.Code, rr.Body)
	}

	const wantID = "e2e-corr-42"
	rec := obs.NewRecorder()
	req := httptest.NewRequest("POST", "/instances/corr/rebalance?scope=dirty", nil).
		WithContext(obs.ContextWithRecorder(context.Background(), rec))
	req.Header.Set("X-Request-ID", wantID)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("rebalance: %d %s", rr.Code, rr.Body)
	}

	// Surface 1: the response header echoes the inbound ID.
	if got := rr.Header().Get("X-Request-ID"); got != wantID {
		t.Fatalf("X-Request-ID header = %q, want %q", got, wantID)
	}

	// Surfaces 2 and 3: the domain line and the rebalance's own request
	// line carry it (the earlier setup requests logged their own IDs).
	records := logLines(t, logBuf)
	domain := findLog(records, "rebalance")
	if domain == nil {
		t.Fatalf("no rebalance log line in %s", logBuf)
	}
	if domain["request_id"] != wantID {
		t.Fatalf("rebalance log line request_id = %v, want %q", domain["request_id"], wantID)
	}
	var reqLine map[string]any
	for _, rec := range records {
		if rec["msg"] == "http request" && rec["path"] == "/instances/corr/rebalance" {
			reqLine = rec
		}
	}
	if reqLine == nil {
		t.Fatalf("no request log line for the rebalance in %s", logBuf)
	}
	if reqLine["request_id"] != wantID {
		t.Fatalf("request log line request_id = %v, want %q", reqLine["request_id"], wantID)
	}

	// Surface 4: the instance/rebalance span is annotated with the ID.
	var span *obs.SpanData
	for i, sp := range rec.Spans() {
		if sp.Name == "instance/rebalance" {
			span = &rec.Spans()[i]
		}
	}
	if span == nil {
		t.Fatalf("no instance/rebalance span; spans: %+v", rec.Spans())
	}
	found := false
	for _, a := range span.Attrs {
		if a.Key == "request_id" && a.Value == wantID {
			found = true
		}
	}
	if !found {
		t.Fatalf("span lacks request_id=%q annotation: %+v", wantID, span.Attrs)
	}

	// Surface 5: the Chrome trace export of the same spans carries the ID
	// in the rebalance event's args.
	var trace bytes.Buffer
	if err := rec.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	found = false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "instance/rebalance" && ev.Args["request_id"] == wantID {
			found = true
		}
	}
	if !found {
		t.Fatalf("chrome trace export lacks an instance/rebalance event with request_id %q: %s",
			wantID, trace.String())
	}
}

// TestErrorBodyCarriesRequestID: every JSON error body names the request
// that produced it, agreeing with the response header — whether the ID was
// assigned fresh or honored from a well-formed inbound header, while a
// malformed inbound header is replaced rather than echoed.
func TestErrorBodyCarriesRequestID(t *testing.T) {
	h, _, _ := newCorrelationHandler(t, Config{})

	get := func(header string) (*httptest.ResponseRecorder, errorJSON) {
		t.Helper()
		req := httptest.NewRequest("GET", "/instances/nope", nil)
		if header != "" {
			req.Header.Set("X-Request-ID", header)
		}
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusNotFound {
			t.Fatalf("status %d, want 404", rr.Code)
		}
		var body errorJSON
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad error body %s: %v", rr.Body, err)
		}
		return rr, body
	}

	// Assigned fresh: header and body agree on a valid generated ID.
	rr, body := get("")
	id := rr.Header().Get("X-Request-ID")
	if !obs.ValidRequestID(id) {
		t.Fatalf("generated X-Request-ID %q is not valid", id)
	}
	if body.RequestID != id {
		t.Fatalf("error body request_id = %q, header %q", body.RequestID, id)
	}

	// Honored: a well-formed inbound ID round-trips into the body.
	rr, body = get("gateway-7f.x_1")
	if rr.Header().Get("X-Request-ID") != "gateway-7f.x_1" || body.RequestID != "gateway-7f.x_1" {
		t.Fatalf("inbound ID not honored: header %q body %q",
			rr.Header().Get("X-Request-ID"), body.RequestID)
	}

	// Malformed: replaced with a fresh valid ID, never echoed.
	rr, body = get("bad id\nwith newline")
	id = rr.Header().Get("X-Request-ID")
	if !obs.ValidRequestID(id) || strings.Contains(id, "\n") {
		t.Fatalf("malformed inbound ID echoed: %q", id)
	}
	if body.RequestID != id {
		t.Fatalf("error body request_id = %q, header %q", body.RequestID, id)
	}
}

// Test499LogLineCarriesRequestID: a client disconnect mid-solve answers 499
// with the request ID present in the log line and the error body, so an
// operator can tell which caller hung up.
func Test499LogLineCarriesRequestID(t *testing.T) {
	h, _, logBuf := newCorrelationHandler(t, Config{})

	cfg := dataset.DefaultClustered()
	cfg.Communities = 2
	body := clusteredJSON(t, cfg)

	const wantID = "cancel-corr-7"
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest(http.MethodPost,
		"/solve?algo=mincostflow&decompose=1&workers=1", bytes.NewReader(body)).WithContext(ctx)
	req.Header.Set("X-Request-ID", wantID)
	rr := httptest.NewRecorder()
	timer := time.AfterFunc(2*time.Millisecond, cancel)
	defer timer.Stop()
	h.ServeHTTP(rr, req)
	if rr.Code != statusClientClosedRequest {
		t.Fatalf("status %d, want %d", rr.Code, statusClientClosedRequest)
	}

	var errBody errorJSON
	if err := json.Unmarshal(rr.Body.Bytes(), &errBody); err != nil {
		t.Fatalf("bad error body %s: %v", rr.Body, err)
	}
	if errBody.RequestID != wantID {
		t.Fatalf("499 body request_id = %q, want %q", errBody.RequestID, wantID)
	}

	recLine := findLog(logLines(t, logBuf), "http request")
	if recLine == nil {
		t.Fatalf("no request log line in %s", logBuf)
	}
	if status, _ := recLine["status"].(float64); int(status) != statusClientClosedRequest {
		t.Fatalf("logged status %v, want %d", recLine["status"], statusClientClosedRequest)
	}
	if recLine["request_id"] != wantID {
		t.Fatalf("499 log line request_id = %v, want %q", recLine["request_id"], wantID)
	}
}
