package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/ebsnlab/geacc/internal/buildinfo"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/decomp"
	"github.com/ebsnlab/geacc/internal/encoding"
	"github.com/ebsnlab/geacc/internal/obs"
	"github.com/ebsnlab/geacc/internal/partition"
	"github.com/ebsnlab/geacc/internal/report"
	"github.com/ebsnlab/geacc/internal/solvecache"
)

// MaxRequestBytes bounds request bodies; larger instances should use the
// CLI tools.
const MaxRequestBytes = 64 << 20

// statusClientClosedRequest mirrors nginx's non-standard 499: the client
// disconnected (or timed out) before the solver finished, and the request
// context's cancellation aborted the run.
const statusClientClosedRequest = 499

// exactHTTPAreaLimit bounds exact (Prune-GEACC) searches over HTTP: the
// |V|·|U| area of the instance (or, decomposed, of its largest component)
// may not exceed it. The gating decision is surfaced in the diagnostics
// artifact as Diagnostics.ExactGate.
const exactHTTPAreaLimit = 200

// Config tunes the service handler. The zero value is valid: default
// logger, no persistence, default snapshot cadence.
type Config struct {
	// Logger receives request and domain logs; nil means slog.Default().
	Logger *slog.Logger
	// DataDir enables persistence: every named instance gets a write-ahead
	// op log and periodic snapshots under this directory, and NewWithConfig
	// replays whatever it finds there before serving. Empty means instances
	// are ephemeral (they die with the process).
	DataDir string
	// SnapshotEvery is how many logged ops an instance accumulates before
	// its log is folded into a fresh snapshot; <= 0 means
	// DefaultSnapshotEvery.
	SnapshotEvery int
	// LazyReplay moves startup replay off the constructor and into a
	// background goroutine: the handler is returned (and can listen)
	// immediately, /readyz answers 503 until every persisted instance has
	// been replayed, and the instance endpoints refuse with 503 +
	// Retry-After in the meantime. geacc-server enables it so a process
	// restart behind a load balancer starts failing its readiness probe
	// instead of its TCP connects. The default (false) replays
	// synchronously, which is what tests and embedders usually want.
	LazyReplay bool
	// MaxInflight bounds the solver-heavy requests (/solve, /trace,
	// /report, rebalances) running concurrently; <= 0 means
	// DefaultMaxInflight. The next QueueDepth requests wait up to
	// QueueTimeout for a slot; beyond that the service sheds with 429 +
	// Retry-After. /readyz reports overload from the same limits.
	MaxInflight int
	// QueueDepth bounds how many solver requests may wait for a slot.
	// 0 means DefaultQueueDepth; negative disables queueing (overload
	// sheds as soon as every slot is busy).
	QueueDepth int
	// QueueTimeout is the longest a queued solver request waits before it
	// is shed; <= 0 means DefaultQueueTimeout.
	QueueTimeout time.Duration
	// SolveCacheEntries bounds the content-addressed /solve memo cache
	// (see internal/solvecache): 0 means DefaultSolveCacheEntries, negative
	// disables solve caching service-wide (including the per-instance
	// rebalance caches). Requests can opt out individually with ?cache=0.
	SolveCacheEntries int
	// Shard, when non-nil, makes approximate sharding of giant components
	// (internal/partition) the service default for /solve and rebalances
	// (geacc-server -approx-shard). Requests can still opt out with
	// ?approx_shard=0 or override the tuning with the shard_* params. Nil
	// means sharding only runs when a request asks with ?approx_shard=1.
	Shard *partition.Options

	// replayHold, when non-nil with LazyReplay, blocks the background
	// replay until the channel is closed — a test hook for observing the
	// not-yet-ready window deterministically.
	replayHold chan struct{}
	// admitHold, when non-nil, parks every admitted solver request until
	// the channel is closed — a test hook for filling the admission window
	// and observing shed behavior deterministically.
	admitHold chan struct{}
}

// New returns the service's handler, wrapped in the metrics middleware.
// Request logs go to slog's process default; geacc-server passes its
// flag-configured logger through NewWithConfig. Besides the stateless
// solver endpoints and the stateful /instances surface it serves the
// Prometheus text exposition at GET /metrics and the expvar page (the
// "geacc" metrics registry plus Go runtime vars) at GET /debug/vars; the
// heavier pprof surface is only on DebugHandler.
func New() http.Handler {
	return NewWithLogger(slog.Default())
}

// NewWithLogger is New with an explicit request logger. A nil logger
// falls back to slog.Default(). Instances are ephemeral; use
// NewWithConfig for persistence.
func NewWithLogger(log *slog.Logger) http.Handler {
	h, err := NewWithConfig(Config{Logger: log})
	if err != nil {
		// Unreachable: only a configured DataDir can fail to open.
		panic(err)
	}
	return h
}

// NewWithConfig builds the full service handler: the stateless solver
// endpoints plus the long-lived /instances registry, replaying any
// persisted instances found under cfg.DataDir before it returns (or, with
// cfg.LazyReplay, in the background while /readyz reports not-ready).
func NewWithConfig(cfg Config) (http.Handler, error) {
	h, _, err := newHandler(cfg)
	return h, err
}

// newHandler is NewWithConfig plus the service it wired — the in-package
// entry tests use to reach the rolling windows and readiness state behind
// the handler.
func newHandler(cfg Config) (http.Handler, *service, error) {
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	svc, err := newService(log, cfg)
	if err != nil {
		return nil, nil, err
	}
	setBuildInfoMetric()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", handleHealthz)
	mux.HandleFunc("GET /readyz", svc.handleReadyz)
	mux.HandleFunc("GET /statusz", svc.handleStatusz)
	mux.HandleFunc("GET /version", handleVersion)
	mux.HandleFunc("GET /algorithms", handleAlgorithms)
	mux.HandleFunc("POST /solve", svc.handleSolve)
	mux.HandleFunc("POST /trace", svc.handleTrace)
	mux.HandleFunc("POST /report", svc.handleReport)
	mux.HandleFunc("POST /validate", handleValidate)
	mux.HandleFunc("GET /metrics", svc.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	svc.register(mux)
	return withMetrics(withLogging(mux, log), svc), svc, nil
}

// Process-identity metrics: a constant-1 gauge whose labels carry the build
// identity (join on it to know which version served a scrape) and the
// process uptime, refreshed at scrape time.
var (
	buildInfoOnce sync.Once
	processUptime = obs.Default().FloatGauge("geacc_process_uptime_seconds")
)

func setBuildInfoMetric() {
	buildInfoOnce.Do(func() {
		bi := buildinfo.Get()
		obs.Default().Gauge(obs.Label("geacc_build_info",
			"version", bi.Version, "revision", bi.Revision, "goversion", bi.GoVersion)).Set(1)
	})
}

// handleMetrics serves the obs registry in the Prometheus text exposition
// format — the scrape target for Prometheus-compatible collectors; the
// expvar page at /debug/vars serves the same instruments as JSON. The
// registry families are followed by the service's rolling SLO windows
// (geacc_http_window_seconds, geacc_solve_window_seconds).
func (s *service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	processUptime.Set(buildinfo.Uptime().Seconds())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default().WritePrometheus(w)
	_ = obs.WritePrometheusWindows(w, s.windowsSnapshot())
}

// errorJSON is the error envelope. RequestID echoes the X-Request-ID the
// middleware assigned, so a client-side error report names the exact
// request to grep the server logs for.
type errorJSON struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorJSON{
		Error:     err.Error(),
		RequestID: obs.RequestIDFrom(r.Context()),
	})
}

// solveErrorStatus maps a solver error to an HTTP status: context
// cancellation (the client went away) and deadline expiry report as 499,
// anything else as fallback.
func solveErrorStatus(err error, fallback int) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return statusClientClosedRequest
	}
	return fallback
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus writes v with an explicit status code. Content-Type must
// be set before WriteHeader flushes the header block, so non-200 JSON
// responses still carry it.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

func handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"algorithms": append(core.SolverNames(), "portfolio"),
	})
}

// SolveResponse is the /solve payload. Diagnostics is present only when
// the request asked for it with ?diag=1.
type SolveResponse struct {
	Matching    encoding.MatchingJSON `json:"matching"`
	Algo        string                `json:"algo"`
	Seconds     float64               `json:"seconds"`
	Events      int                   `json:"events"`
	Users       int                   `json:"users"`
	Diagnostics *core.Diagnostics     `json:"diagnostics,omitempty"`
}

// wantDiag reports whether the request opted into the per-solve
// diagnostics artifact (instance shape, optimality gap, phase timings).
func wantDiag(r *http.Request) bool {
	return boolParam(r, "diag")
}

// wantDecompose reports whether the request asked for the decomposed solve
// path (?decompose=1): shard along conflict/similarity components, solve in
// parallel (pool size via ?workers=n), merge.
func wantDecompose(r *http.Request) bool {
	return boolParam(r, "decompose")
}

func boolParam(r *http.Request, name string) bool {
	switch r.URL.Query().Get(name) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// shardOptionsFromQuery resolves the approximate-sharding parameters:
// ?approx_shard=1 turns the feature on (and implies the decomposed path),
// ?approx_shard=0 opts out of a service-wide default, and ?shard_max_area=,
// ?shard_strategy= (modularity or bfs) plus ?shard_drift_budget= tune it.
// Returns nil when sharding is off for this request.
func (s *service) shardOptionsFromQuery(r *http.Request) (*partition.Options, error) {
	on := s.shardDefault != nil
	switch r.URL.Query().Get("approx_shard") {
	case "1", "true", "yes":
		on = true
	case "":
		// keep the service default
	default:
		return nil, nil
	}
	if !on {
		return nil, nil
	}
	opt := partition.Options{}
	if s.shardDefault != nil {
		opt = *s.shardDefault
	}
	if qs := r.URL.Query().Get("shard_max_area"); qs != "" {
		v, err := strconv.ParseInt(qs, 10, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("server: bad shard_max_area %q (want a positive integer)", qs)
		}
		opt.MaxArea = v
	}
	strat, err := partition.ParseStrategy(r.URL.Query().Get("shard_strategy"))
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	opt.Strategy = strat
	if qs := r.URL.Query().Get("shard_drift_budget"); qs != "" {
		v, err := strconv.ParseFloat(qs, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("server: bad shard_drift_budget %q (want a positive float)", qs)
		}
		opt.DriftBudget = v
	}
	o := opt.Normalized()
	return &o, nil
}

// cacheBypassed reports whether the request opted out of the solve cache
// with ?cache=0 (also "false"/"no"). The cache is opt-out rather than
// opt-in because hits are bit-for-bit identical to fresh solves.
func cacheBypassed(r *http.Request) bool {
	switch r.URL.Query().Get("cache") {
	case "0", "false", "no":
		return true
	}
	return false
}

// solveSimID canonicalizes a decoded instance's similarity identity for
// cache keying. Matrix instances return "" — their values are hashed
// directly from the content, so the key needs no identity.
func solveSimID(info encoding.SimInfo) string {
	if info.Kind == encoding.SimMatrix {
		return ""
	}
	return fmt.Sprintf("%s/%d/%v", info.Kind, info.Dim, info.MaxT)
}

func (s *service) handleSolve(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	in, simInfo, err := encoding.DecodeInstanceMeta(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	algo := r.URL.Query().Get("algo")
	if algo == "" {
		algo = "greedy"
	}
	var seed int64 = 1
	if qs := r.URL.Query().Get("seed"); qs != "" {
		seed, err = strconv.ParseInt(qs, 10, 64)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("server: bad seed: %w", err))
			return
		}
	}
	diag := wantDiag(r)
	decompose := wantDecompose(r)
	shard, err := s.shardOptionsFromQuery(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if shard != nil {
		decompose = true // sharding rides on the decomposition worker pool
	}
	workers := 0
	if qs := r.URL.Query().Get("workers"); qs != "" {
		workers, err = strconv.Atoi(qs)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("server: bad workers: %w", err))
			return
		}
	}
	if decompose && algo == "portfolio" {
		writeError(w, r, http.StatusBadRequest,
			errors.New("server: decompose does not compose with the portfolio (it already parallelizes)"))
		return
	}
	// Validate the algorithm before the first window observation: window
	// series are labeled by algo, and only registry names may mint one (an
	// attacker probing ?algo=... must not grow the label space).
	if algo != "portfolio" {
		if _, lerr := core.LookupSolver(algo); lerr != nil {
			writeError(w, r, http.StatusBadRequest, lerr)
			return
		}
	}

	// Content-addressed memoization: a hit serves the stored response —
	// matching, diagnostics, even the original solve's timing — verbatim,
	// which is by construction bit-for-bit what a fresh solve of the same
	// content would produce. Hits happen before the solve window mints an
	// observation (nothing was solved). The portfolio is excluded: its
	// winner depends on a wall-clock race, not only on content.
	var cacheKey solvecache.Key
	cacheUsable := false
	if s.solveCache != nil && algo != "portfolio" && !cacheBypassed(r) {
		spec := solvecache.KeySpec{
			Algo:      algo,
			Seed:      seed,
			SimID:     solveSimID(simInfo),
			Decompose: decompose,
			Workers:   workers,
			Diag:      diag,
		}
		if shard != nil {
			spec.ApproxShard = true
			spec.ShardMaxArea = shard.MaxArea
			spec.ShardStrategy = string(shard.Strategy)
			spec.ShardDriftBudget = shard.DriftBudget
		}
		cacheKey, cacheUsable = solvecache.InstanceKey(in, spec)
		if cacheUsable {
			if v, ok := s.solveCache.Get(cacheKey); ok {
				requestLogger(r).Info("solve cache hit",
					"algo", algo, "events", in.NumEvents(), "users", in.NumUsers())
				writeJSON(w, v.(SolveResponse))
				return
			}
		}
	}

	// The request context travels into the solver: a client disconnect
	// cancels long MinCostFlow sweeps and exact searches instead of
	// burning the worker on an answer nobody will read. Diagnosed
	// requests additionally carry a span recorder so phase timings land
	// in the artifact.
	ctx := r.Context()
	var rec *obs.Recorder
	var countersBefore map[string]int64
	if diag {
		rec = obs.NewRecorder()
		ctx = obs.ContextWithRecorder(ctx, rec)
		countersBefore = obs.Default().Counters()
	}
	start := time.Now()
	// The solver window tracks wall-clock and failures per algorithm; a
	// request that dies after this point (solver error, infeasible result)
	// counts toward the algo's error rate.
	solveOK := false
	defer func() {
		s.solveWindow(algo).Observe(time.Since(start).Seconds(), !solveOK)
	}()
	var m *core.Matching
	var d *core.Diagnostics
	if algo == "portfolio" {
		m, _, err = core.PortfolioCtx(ctx, in,
			[]string{"greedy", "mincostflow", "random-v", "random-u"}, seed)
		if err != nil {
			writeError(w, r, solveErrorStatus(err, http.StatusInternalServerError), err)
			return
		}
		if diag {
			d = core.BuildDiagnostics(algo, in, m, time.Since(start), rec.Spans(),
				obs.DiffCounters(countersBefore, obs.Default().Counters()))
		}
	} else {
		if decompose {
			dd, derr := decomp.DecomposeContext(ctx, in)
			if derr != nil {
				writeError(w, r, solveErrorStatus(derr, http.StatusInternalServerError), derr)
				return
			}
			// The exact budget applies per component: decomposition is exactly
			// what makes larger instances exact-solvable over HTTP. The gating
			// decision — measured area against the limit — is surfaced in the
			// 422 message and, for admitted diagnosed requests, in
			// Diagnostics.ExactGate.
			var gate *core.ExactGateStats
			if algo == "exact" {
				area := dd.MaxComponentArea()
				gate = &core.ExactGateStats{ComponentArea: area, Limit: exactHTTPAreaLimit}
				if area > exactHTTPAreaLimit {
					gate.Gated = true
					writeError(w, r, http.StatusUnprocessableEntity,
						fmt.Errorf("server: exact search is limited to component |V|·|U| <= %d over HTTP (largest component area %d); use the CLI",
							exactHTTPAreaLimit, area))
					return
				}
			}
			dopt := decomp.Options{Workers: workers, Seed: seed, Shard: shard}
			m, err = dd.SolveContext(ctx, algo, dopt)
			if err != nil {
				writeError(w, r, solveErrorStatus(err, http.StatusInternalServerError), err)
				return
			}
			if diag {
				d = core.BuildDiagnostics(algo, in, m, time.Since(start), rec.Spans(),
					obs.DiffCounters(countersBefore, obs.Default().Counters()))
				d.Decomposition = dd.Stats(workers)
				d.ExactGate = gate
				if pst := dd.PartitionStats(); pst != nil {
					// BoundLoss: measured loss vs the unsharded Corollary 1
					// relaxation bound, i.e. this run's diagnostics gap.
					pst.BoundLoss = d.Gap
					d.Partition = pst
				}
			}
		} else {
			area := int64(in.NumEvents()) * int64(in.NumUsers())
			var gate *core.ExactGateStats
			if algo == "exact" {
				gate = &core.ExactGateStats{ComponentArea: area, Limit: exactHTTPAreaLimit}
				if area > exactHTTPAreaLimit {
					gate.Gated = true
					writeError(w, r, http.StatusUnprocessableEntity,
						fmt.Errorf("server: exact search is limited to |V|·|U| <= %d over HTTP (instance area %d); use decompose or the CLI",
							exactHTTPAreaLimit, area))
					return
				}
			}
			rng := rand.New(rand.NewSource(seed))
			if diag {
				m, d, err = core.SolveDiagnostics(ctx, algo, in, rng)
			} else {
				m, err = core.SolveContext(ctx, algo, in, rng)
			}
			if err != nil {
				writeError(w, r, solveErrorStatus(err, http.StatusInternalServerError), err)
				return
			}
			if d != nil {
				d.ExactGate = gate
			}
		}
	}
	elapsed := time.Since(start).Seconds()
	if err := core.Validate(in, m); err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	solveOK = true

	logAttrs := []any{
		"algo", algo, "events", in.NumEvents(), "users", in.NumUsers(),
		"pairs", m.Size(), "max_sum", m.MaxSum(), "seconds", elapsed,
	}
	if d != nil {
		logAttrs = append(logAttrs, "gap", d.Gap, "relaxed_upper_bound", d.RelaxedUpperBound)
	}
	requestLogger(r).Info("solve", logAttrs...)

	var buf bytes.Buffer
	if err := encoding.EncodeMatching(&buf, m); err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	var mj encoding.MatchingJSON
	if err := json.Unmarshal(buf.Bytes(), &mj); err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	resp := SolveResponse{
		Matching:    mj,
		Algo:        algo,
		Seconds:     elapsed,
		Events:      in.NumEvents(),
		Users:       in.NumUsers(),
		Diagnostics: d,
	}
	if cacheUsable {
		s.solveCache.Put(cacheKey, resp)
	}
	writeJSON(w, resp)
}

// TraceResponse is the /trace payload: the greedy arrangement plus every
// heap-pop decision in order (the paper's Example 3 narrative, as data).
type TraceResponse struct {
	Matching encoding.MatchingJSON `json:"matching"`
	Steps    []TraceStepJSON       `json:"steps"`
}

// TraceStepJSON is one serialized greedy decision.
type TraceStepJSON struct {
	V        int     `json:"v"`
	U        int     `json:"u"`
	Sim      float64 `json:"sim"`
	Accepted bool    `json:"accepted"`
	Reason   string  `json:"reason,omitempty"`
}

func (s *service) handleTrace(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	in, err := encoding.DecodeInstance(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "steps":
		// The classic decision log below.
	case "chrome":
		handleChromeTrace(w, r, in)
		return
	default:
		writeError(w, r, http.StatusBadRequest,
			fmt.Errorf("server: unknown trace format %q (steps or chrome)", format))
		return
	}
	var steps []TraceStepJSON
	m, err := core.GreedyCtx(r.Context(), in, core.GreedyOptions{Trace: func(s core.TraceStep) {
		steps = append(steps, TraceStepJSON{
			V: s.V, U: s.U, Sim: s.Sim, Accepted: s.Accepted, Reason: s.Reason,
		})
	}})
	if err != nil {
		writeError(w, r, solveErrorStatus(err, http.StatusInternalServerError), err)
		return
	}
	if err := core.Validate(in, m); err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	var buf bytes.Buffer
	if err := encoding.EncodeMatching(&buf, m); err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	var mj encoding.MatchingJSON
	if err := json.Unmarshal(buf.Bytes(), &mj); err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	if steps == nil {
		steps = []TraceStepJSON{}
	}
	writeJSON(w, TraceResponse{Matching: mj, Steps: steps})
}

// handleChromeTrace runs the requested solver (default greedy) with a span
// recorder attached and answers with the spans in Chrome trace-event JSON —
// loadable as-is in Perfetto (ui.perfetto.dev) or chrome://tracing.
func handleChromeTrace(w http.ResponseWriter, r *http.Request, in *core.Instance) {
	algo := r.URL.Query().Get("algo")
	if algo == "" {
		algo = "greedy"
	}
	if _, err := core.LookupSolver(algo); err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	rec := obs.NewRecorder()
	ctx := obs.ContextWithRecorder(r.Context(), rec)
	m, err := core.SolveContext(ctx, algo, in, rand.New(rand.NewSource(1)))
	if err != nil {
		writeError(w, r, solveErrorStatus(err, http.StatusInternalServerError), err)
		return
	}
	if err := core.Validate(in, m); err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// The export's otherData carries the request ID, so a saved trace file
	// still names the request (and its log lines) it came from.
	meta := map[string]string{}
	if id := obs.RequestIDFrom(ctx); id != "" {
		meta["request_id"] = id
	}
	_ = obs.WriteChromeTraceMeta(w, rec.Spans(), meta)
}

// handleVersion answers GET /version with the binary's build identity.
func handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, buildinfo.Get())
}

// pairDoc is the {"instance":..., "matching":...} request body shared by
// /report and /validate.
type pairDoc struct {
	Instance json.RawMessage       `json:"instance"`
	Matching encoding.MatchingJSON `json:"matching"`
}

func decodePair(w http.ResponseWriter, r *http.Request) (*core.Instance, *core.Matching, bool) {
	var doc pairDoc
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("server: %w", err))
		return nil, nil, false
	}
	in, err := encoding.DecodeInstance(bytes.NewReader(doc.Instance))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return nil, nil, false
	}
	m := core.NewMatching()
	for _, p := range doc.Matching.Pairs {
		if m.Contains(p.V, p.U) {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("server: duplicate pair (%d, %d)", p.V, p.U))
			return nil, nil, false
		}
		m.Add(p.V, p.U, p.Sim)
	}
	return in, m, true
}

func (s *service) handleReport(w http.ResponseWriter, r *http.Request) {
	release, admitted := s.admit(w, r)
	if !admitted {
		return
	}
	defer release()
	in, m, ok := decodePair(w, r)
	if !ok {
		return
	}
	skipBound := r.URL.Query().Get("bound") == "false"
	rep, err := report.Build(in, m, skipBound)
	if err != nil {
		writeError(w, r, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, rep)
}

// ValidateResponse is the /validate payload.
type ValidateResponse struct {
	Feasible bool    `json:"feasible"`
	Reason   string  `json:"reason,omitempty"`
	MaxSum   float64 `json:"max_sum"`
	Pairs    int     `json:"pairs"`
}

func handleValidate(w http.ResponseWriter, r *http.Request) {
	in, m, ok := decodePair(w, r)
	if !ok {
		return
	}
	resp := ValidateResponse{Feasible: true, MaxSum: m.MaxSum(), Pairs: m.Size()}
	if err := core.Validate(in, m); err != nil {
		resp.Feasible = false
		resp.Reason = err.Error()
	}
	writeJSON(w, resp)
}
