package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsEndpointServesPrometheusText(t *testing.T) {
	srv := newServer(t)
	// Run one diagnosed solve so the gap histogram exists before scraping.
	resp, body := postJSON(t, srv.URL+"/solve?algo=greedy&diag=1", instanceJSON(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, body)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE geacc_solve_total counter",
		`geacc_solve_total{algo="greedy"}`,
		"# TYPE geacc_solve_gap histogram",
		`geacc_solve_gap_bucket{algo="greedy",le="+Inf"}`,
		`geacc_solve_gap_count{algo="greedy"}`,
		"# TYPE geacc_http_requests_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Every sample line must be "name{labels} value" with a numeric value.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := parseFloatStrict(line[i+1:]); err != nil {
			t.Errorf("non-numeric value in %q: %v", line, err)
		}
	}
}

func parseFloatStrict(s string) (float64, error) {
	var v float64
	var err error
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	err = json.Unmarshal([]byte(s), &v)
	return v, err
}

func TestSolveDiagPayload(t *testing.T) {
	srv := newServer(t)
	resp, body := postJSON(t, srv.URL+"/solve?algo=mincostflow&diag=1", instanceJSON(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc SolveResponse
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	d := doc.Diagnostics
	if d == nil {
		t.Fatal("diagnostics missing from diag=1 response")
	}
	if d.Algo != "mincostflow" || d.Events != 2 || d.Users != 3 {
		t.Errorf("diagnostics header = %+v", d)
	}
	if d.RelaxedUpperBound <= 0 {
		t.Errorf("RelaxedUpperBound = %v", d.RelaxedUpperBound)
	}
	want := (d.RelaxedUpperBound - d.MaxSum) / d.RelaxedUpperBound
	if want < 0 {
		want = 0
	}
	if math.Abs(d.Gap-want) > 1e-12 {
		t.Errorf("gap = %v, want %v", d.Gap, want)
	}
	if len(d.Phases) == 0 {
		t.Error("no phase timings in diagnostics")
	}

	// Without diag the field stays absent from the wire format.
	_, body = postJSON(t, srv.URL+"/solve?algo=mincostflow", instanceJSON(t))
	if bytes.Contains(body, []byte("diagnostics")) {
		t.Errorf("undiagnosed response leaks diagnostics: %s", body)
	}
}

func TestSolveDiagPortfolio(t *testing.T) {
	srv := newServer(t)
	resp, body := postJSON(t, srv.URL+"/solve?algo=portfolio&diag=1", instanceJSON(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc SolveResponse
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Diagnostics == nil || doc.Diagnostics.Algo != "portfolio" {
		t.Fatalf("portfolio diagnostics = %+v", doc.Diagnostics)
	}
	if doc.Diagnostics.Gap < 0 || doc.Diagnostics.Gap > 1 {
		t.Errorf("gap = %v", doc.Diagnostics.Gap)
	}
}

func TestTraceChromeFormat(t *testing.T) {
	srv := newServer(t)
	resp, body := postJSON(t, srv.URL+"/trace?format=chrome&algo=mincostflow", instanceJSON(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, body)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q phase %q", ev.Name, ev.Ph)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"solve/mincostflow", "mincostflow/relax", "mincostflow/resolve"} {
		if !names[want] {
			t.Errorf("span %q missing from chrome trace (have %v)", want, names)
		}
	}

	if resp, _ := postJSON(t, srv.URL+"/trace?format=nope", instanceJSON(t)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad format: status %d, want 400", resp.StatusCode)
	}
}

func TestRequestLoggingMiddleware(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	srv := httptest.NewServer(NewWithLogger(log))
	t.Cleanup(srv.Close)

	resp, body := postJSON(t, srv.URL+"/solve?algo=greedy&diag=1", instanceJSON(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp, err := http.Get(srv.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	var sawSolve, sawRequest, sawDebugHealthz bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v (%q)", err, line)
		}
		switch rec["msg"] {
		case "solve":
			sawSolve = true
			if rec["algo"] != "greedy" {
				t.Errorf("solve log algo = %v", rec["algo"])
			}
			if _, ok := rec["gap"].(float64); !ok {
				t.Errorf("diagnosed solve log has no gap: %v", rec)
			}
		case "http request":
			sawRequest = true
			if rec["path"] == "/healthz" && rec["level"] == "DEBUG" {
				sawDebugHealthz = true
			}
			for _, k := range []string{"method", "path", "status", "seconds"} {
				if _, ok := rec[k]; !ok {
					t.Errorf("request log missing %s: %v", k, rec)
				}
			}
		}
	}
	if !sawSolve || !sawRequest || !sawDebugHealthz {
		t.Errorf("logs incomplete: solve=%v request=%v debugHealthz=%v\n%s",
			sawSolve, sawRequest, sawDebugHealthz, buf.String())
	}
}
