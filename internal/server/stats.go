package server

import (
	"net/http"
	"time"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/decomp"
	"github.com/ebsnlab/geacc/internal/solvecache"
)

// RebalanceOutcome is one completed rebalance as remembered by the
// instance's bounded history ring (GET /instances/{id}/stats). RequestID
// names the request that ran it, so an odd outcome in the ring leads
// straight to its log lines.
type RebalanceOutcome struct {
	Time             time.Time `json:"time"`
	RequestID        string    `json:"request_id,omitempty"`
	Scope            string    `json:"scope"`
	Algo             string    `json:"algo"`
	ComponentsSolved int       `json:"components_solved"`
	ComponentsTotal  int       `json:"components_total"`
	Gain             float64   `json:"gain"`
	Adopted          bool      `json:"adopted"`
	Seconds          float64   `json:"seconds"`
	// CacheHits/CacheMisses count this rebalance's per-component solve-cache
	// lookups (zero when the request opted out with ?cache=0 or the service
	// disabled caching).
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
}

// InstanceStats is the GET /instances/{id}/stats payload: the operational
// deep-dive the summary endpoints don't carry — solution quality against
// the Corollary 1 relaxation bound, write-ahead-log drift since the last
// snapshot, pending dirty work, lifetime op counts, and the recent
// rebalance history.
type InstanceStats struct {
	ID     string  `json:"id"`
	Events int     `json:"events"`
	Users  int     `json:"users"`
	Pairs  int     `json:"pairs"`
	MaxSum float64 `json:"max_sum"`
	// RelaxedUpperBound is the Corollary 1 conflict-relaxed optimum; Gap is
	// (bound - max_sum) / bound, 0 when the bound is 0. Computing the bound
	// costs one min-cost-flow solve on the relaxed instance per request.
	RelaxedUpperBound float64 `json:"relaxed_upper_bound"`
	Gap               float64 `json:"gap"`

	// Persistence drift: how far the write-ahead log has grown past the
	// snapshot a restart would start from. Zero-valued when the instance is
	// ephemeral (Persistent false).
	Persistent         bool    `json:"persistent"`
	Seq                int64   `json:"seq"`
	SnapshotSeq        int64   `json:"snapshot_seq"`
	OpsSinceSnapshot   int     `json:"ops_since_snapshot"`
	BytesSinceSnapshot int64   `json:"bytes_since_snapshot"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds,omitempty"`

	// Pending incremental work: the dirty marks the next scope=dirty
	// rebalance will consume, and how many decomposition components they
	// land in out of the current total.
	DirtyEvents     []int `json:"dirty_events"`
	DirtyUsers      []int `json:"dirty_users"`
	DirtyComponents int   `json:"dirty_components"`
	ComponentsTotal int   `json:"components_total"`

	OpCounts         map[string]int64   `json:"op_counts"`
	RecentRebalances []RebalanceOutcome `json:"recent_rebalances"`

	// SolveCache is the instance's rebalance solve-cache counters over its
	// lifetime (this process; caches start cold after a restart). Nil when
	// the service disabled caching.
	SolveCache *solvecache.Stats `json:"solve_cache,omitempty"`
	// WarmFlowEntries counts the min-cost-flow component states held for
	// warm-started re-solves.
	WarmFlowEntries int `json:"warm_flow_entries,omitempty"`
}

// handleInstanceStats answers GET /instances/{id}/stats. It holds the
// instance lock for a relaxation solve plus a decomposition — heavier than
// a status read, far lighter than a rebalance.
func (s *service) handleInstanceStats(w http.ResponseWriter, r *http.Request) {
	if !s.gateReady(w, r) {
		return
	}
	inst, ok := s.get(w, r, r.PathValue("id"))
	if !ok {
		return
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()

	st := InstanceStats{
		ID:          inst.meta.ID,
		Events:      inst.arr.NumEvents(),
		Users:       inst.arr.NumUsers(),
		Pairs:       inst.arr.Matching().Size(),
		MaxSum:      inst.arr.MaxSum(),
		DirtyEvents: sortedSet(inst.dirtyE),
		DirtyUsers:  sortedSet(inst.dirtyU),
		OpCounts:    make(map[string]int64, len(inst.opCounts)),
	}
	for k, v := range inst.opCounts {
		st.OpCounts[k] = v
	}
	st.RecentRebalances = append([]RebalanceOutcome{}, inst.rebalances...)
	if inst.scache != nil {
		cs := inst.scache.Stats()
		st.SolveCache = &cs
		st.WarmFlowEntries = inst.warm.Len()
	}

	if inst.wal != nil {
		st.Persistent = true
		st.Seq = inst.wal.Seq()
		st.SnapshotSeq = inst.wal.SnapshotSeq()
		st.OpsSinceSnapshot = inst.wal.OpsSinceSnapshot()
		st.BytesSinceSnapshot = inst.wal.BytesSinceSnapshot()
		if at := inst.wal.SnapshotAt(); !at.IsZero() {
			st.SnapshotAgeSeconds = time.Since(at).Seconds()
		}
	}

	// Quality and decomposition views need a snapshot of the arranger; an
	// empty instance has nothing to bound or decompose.
	if st.Events > 0 || st.Users > 0 {
		in, _, err := inst.arr.Snapshot()
		if err != nil {
			writeError(w, r, http.StatusInternalServerError, err)
			return
		}
		st.RelaxedUpperBound = core.RelaxedUpperBound(in)
		if st.RelaxedUpperBound > 0 {
			st.Gap = (st.RelaxedUpperBound - st.MaxSum) / st.RelaxedUpperBound
			if st.Gap < 0 {
				st.Gap = 0
			}
		}
		d, err := decomp.DecomposeContext(r.Context(), in)
		if err != nil {
			writeError(w, r, solveErrorStatus(err, http.StatusInternalServerError), err)
			return
		}
		st.ComponentsTotal = len(d.Components)
		st.DirtyComponents = len(d.DirtyComponents(st.DirtyEvents, st.DirtyUsers))
	}

	writeJSON(w, st)
}
