package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"
)

// doGet drives one GET through the full handler stack.
func doGet(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr
}

// TestStatuszSchema pins the /statusz JSON contract: the top-level keys,
// the build sub-document, and the per-endpoint window summaries dashboards
// parse.
func TestStatuszSchema(t *testing.T) {
	h, _, _ := newCorrelationHandler(t, Config{})

	// Mint at least one endpoint window before reading /statusz.
	if rr := doGet(t, h, "/healthz"); rr.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rr.Code)
	}
	rr := doGet(t, h, "/statusz")
	if rr.Code != http.StatusOK {
		t.Fatalf("statusz: %d %s", rr.Code, rr.Body)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"service", "build", "started_at", "uptime_seconds", "ready",
		"instances_active", "goroutines", "heap_alloc_bytes",
		"heap_sys_bytes", "num_gc", "endpoints", "solvers",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("statusz lacks %q: %s", key, rr.Body)
		}
	}
	var build map[string]any
	if err := json.Unmarshal(doc["build"], &build); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"version", "go_version"} {
		if v, _ := build[key].(string); v == "" {
			t.Errorf("statusz build lacks %q: %s", key, doc["build"])
		}
	}

	// The /healthz request above must have minted a window with all three
	// standard horizons, each carrying the full WindowStats shape.
	var endpoints map[string]map[string]map[string]any
	if err := json.Unmarshal(doc["endpoints"], &endpoints); err != nil {
		t.Fatal(err)
	}
	horizons, ok := endpoints["/healthz"]
	if !ok {
		t.Fatalf("statusz endpoints lack /healthz: %s", doc["endpoints"])
	}
	for _, name := range []string{"1m", "5m", "15m"} {
		win, ok := horizons[name]
		if !ok {
			t.Fatalf("/healthz window lacks horizon %q: %v", name, horizons)
		}
		for _, key := range []string{
			"window", "count", "errors", "rate_per_sec", "error_rate_per_sec",
			"mean_seconds", "p50_seconds", "p90_seconds", "p99_seconds", "samples",
		} {
			if _, ok := win[key]; !ok {
				t.Errorf("window %q lacks %q: %v", name, key, win)
			}
		}
	}
	if got, _ := horizons["15m"]["count"].(float64); got < 1 {
		t.Fatalf("/healthz 15m count = %v, want >= 1", horizons["15m"]["count"])
	}
}

// TestStatuszWindowP99MatchesExact injects a known latency population into
// an endpoint window and asserts /statusz reports the exact nearest-rank
// percentiles — the population is below the reservoir size, so no sampling
// error is allowed.
func TestStatuszWindowP99MatchesExact(t *testing.T) {
	h, svc, _ := newCorrelationHandler(t, Config{})

	// 400 distinct latencies in shuffled order, all inside one bucket
	// epoch (well under the 512-sample reservoir -> exact quantiles).
	const n = 400
	values := make([]float64, n)
	for i := range values {
		values[i] = float64((i*137)%n+1) / 1000.0
	}
	win := svc.httpWindow("/solve")
	for _, v := range values {
		win.Observe(v, false)
	}

	rr := doGet(t, h, "/statusz")
	if rr.Code != http.StatusOK {
		t.Fatalf("statusz: %d %s", rr.Code, rr.Body)
	}
	var doc StatuszResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	stats, ok := doc.Endpoints["/solve"]["15m"]
	if !ok {
		t.Fatalf("no /solve 15m window in %+v", doc.Endpoints)
	}
	if stats.Count != n || stats.Samples != n || stats.Sampled {
		t.Fatalf("window not exact: count=%d samples=%d sampled=%v", stats.Count, stats.Samples, stats.Sampled)
	}

	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	exact := func(p float64) float64 {
		rank := int(math.Ceil(p * n))
		return sorted[rank-1]
	}
	if stats.P50 != exact(0.50) || stats.P90 != exact(0.90) || stats.P99 != exact(0.99) {
		t.Fatalf("quantiles (%v, %v, %v) != exact (%v, %v, %v)",
			stats.P50, stats.P90, stats.P99, exact(0.50), exact(0.90), exact(0.99))
	}
	wantMean := 0.0
	for _, v := range values {
		wantMean += v
	}
	wantMean /= n
	if math.Abs(stats.MeanSeconds-wantMean) > 1e-12 {
		t.Fatalf("mean %v, want %v", stats.MeanSeconds, wantMean)
	}
}

// TestMetricsIncludesWindowsAndBuildInfo: /metrics renders the registry
// plus the rolling windows, the build-info gauge, and process uptime.
func TestMetricsIncludesWindowsAndBuildInfo(t *testing.T) {
	h, _, _ := newCorrelationHandler(t, Config{})
	if rr := doGet(t, h, "/healthz"); rr.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rr.Code)
	}
	rr := doGet(t, h, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{
		"geacc_build_info{",
		"geacc_process_uptime_seconds ",
		`geacc_http_window_seconds_rate{path="/healthz",window="1m"}`,
		`geacc_http_window_seconds{path="/healthz",window="15m",quantile="0.5"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output lacks %q", want)
		}
	}
}

// TestVersionEndpoint: GET /version serves the build identity as JSON.
func TestVersionEndpoint(t *testing.T) {
	h, _, _ := newCorrelationHandler(t, Config{})
	rr := doGet(t, h, "/version")
	if rr.Code != http.StatusOK {
		t.Fatalf("version: %d", rr.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"version", "go_version"} {
		if v, _ := doc[key].(string); v == "" {
			t.Fatalf("version lacks %q: %s", key, rr.Body)
		}
	}
}

// TestReadyzEphemeral: with no data directory the service is ready
// immediately and the store check reports the ephemeral mode.
func TestReadyzEphemeral(t *testing.T) {
	h, _, _ := newCorrelationHandler(t, Config{})
	rr := doGet(t, h, "/readyz")
	if rr.Code != http.StatusOK {
		t.Fatalf("readyz: %d %s", rr.Code, rr.Body)
	}
	var doc readyzResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Ready || doc.Checks["replay"] != "ok" || doc.Checks["store"] != "ok (ephemeral)" ||
		!strings.HasPrefix(doc.Checks["load"], "ok") {
		t.Fatalf("readyz: %+v", doc)
	}
}

// TestReadyzDuringLazyReplay holds the background replay open and asserts
// the not-ready window: /readyz 503 with Retry-After and a "replaying"
// check, instance endpoints 503, liveness still 200 — then releases the
// replay and watches readiness flip with the replayed instance intact.
func TestReadyzDuringLazyReplay(t *testing.T) {
	dir := t.TempDir()

	// Seed the directory with a persisted instance via a synchronous server.
	{
		h, _, _ := newCorrelationHandler(t, Config{DataDir: dir})
		post := func(path, body string, want int) {
			t.Helper()
			req := httptest.NewRequest("POST", path, strings.NewReader(body))
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, req)
			if rr.Code != want {
				t.Fatalf("%s: %d %s", path, rr.Code, rr.Body)
			}
		}
		post("/instances", `{"id":"prod","sim":"euclidean","dim":2,"max_t":10}`, http.StatusCreated)
		post("/instances/prod/events", `{"attrs":[0,0],"cap":2}`, http.StatusOK)
		for i := 0; i < 8; i++ {
			post("/instances/prod/users", fmt.Sprintf(`{"attrs":[%d,1],"cap":1}`, i), http.StatusOK)
		}
	}

	hold := make(chan struct{})
	h, _, _ := newCorrelationHandler(t, Config{DataDir: dir, LazyReplay: true, replayHold: hold})

	rr := doGet(t, h, "/readyz")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during replay: %d %s", rr.Code, rr.Body)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("readyz 503 lacks Retry-After")
	}
	var doc readyzResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Ready || doc.Checks["replay"] != "replaying" {
		t.Fatalf("readyz during replay: %+v", doc)
	}

	// Instance traffic refuses; liveness does not.
	if rr := doGet(t, h, "/instances/prod"); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("instance GET during replay: %d %s", rr.Code, rr.Body)
	}
	var errBody errorJSON
	rr = doGet(t, h, "/instances")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("instance list during replay: %d", rr.Code)
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &errBody); err != nil || errBody.RequestID == "" {
		t.Fatalf("503 body lacks request_id: %s (%v)", rr.Body, err)
	}
	if rr := doGet(t, h, "/healthz"); rr.Code != http.StatusOK {
		t.Fatalf("healthz during replay: %d", rr.Code)
	}

	close(hold)
	deadline := time.Now().Add(10 * time.Second)
	for {
		rr = doGet(t, h, "/readyz")
		if rr.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz never flipped ready: %d %s", rr.Code, rr.Body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	rr = doGet(t, h, "/instances/prod")
	if rr.Code != http.StatusOK {
		t.Fatalf("instance GET after replay: %d %s", rr.Code, rr.Body)
	}
	var status InstanceStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &status); err != nil {
		t.Fatal(err)
	}
	if status.Events != 1 || status.Users != 8 {
		t.Fatalf("replayed instance shape: %+v", status.InstanceSummary)
	}
}
