// Package server exposes the GEACC solvers as a small JSON-over-HTTP
// service — the shape in which an EBSN platform would actually consume
// this library. Endpoints:
//
//	GET  /healthz            liveness probe
//	GET  /algorithms         available solver names
//	POST /solve?algo=&seed=  instance JSON -> matching JSON (+ metrics)
//	POST /trace              instance JSON -> greedy matching + decision log
//	POST /report             {"instance":..., "matching":...} -> quality report
//	POST /validate           {"instance":..., "matching":...} -> feasibility verdict
//	GET  /debug/vars         expvar JSON: the "geacc" metrics registry + runtime vars
//
// Handlers are plain http.Handlers built on the standard library, with
// bounded request bodies and JSON error envelopes.
//
// # Observability
//
// New wraps the mux in a telemetry middleware that records, per endpoint,
// request counts labeled by status code, latency histograms, and an
// in-flight gauge — all into the process-global internal/obs registry,
// which GET /debug/vars serves as the expvar variable "geacc".
// DebugHandler additionally serves net/http/pprof under /debug/pprof/;
// geacc-server binds it to a separate, opt-in listener (-debug-addr) so
// profiling never shares a port with traffic. docs/OBSERVABILITY.md
// catalogs every exported metric and walks through a scrape session.
//
// # Cancellation
//
// /solve and /trace propagate the request context into the solver
// (core.SolveContext, core.PortfolioCtx, core.GreedyCtx): when the client
// disconnects mid-solve, long MinCostFlow sweeps and exact searches abort
// at their next cancellation poll instead of burning the worker, and the
// aborted request is recorded with the non-standard status 499.
package server
