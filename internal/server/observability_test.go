package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/ebsnlab/geacc/internal/obs"
)

func TestDebugVarsServesValidJSON(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v\n%s", err, buf.String())
	}
	raw, ok := doc["geacc"]
	if !ok {
		t.Fatal("/debug/vars has no \"geacc\" variable")
	}
	var reg struct {
		Counters   map[string]int64           `json:"counters"`
		Gauges     map[string]int64           `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(raw, &reg); err != nil {
		t.Fatalf("geacc var is not the registry snapshot: %v", err)
	}
}

func TestSolveIncrementsSolveMetrics(t *testing.T) {
	reg := obs.Default()
	total := reg.Counter(obs.Label("geacc_solve_total", "algo", "greedy"))
	hist := reg.Histogram(obs.Label("geacc_solve_seconds", "algo", "greedy"), obs.DefaultLatencyBuckets)
	beforeTotal, beforeHist := total.Value(), hist.Count()

	srv := newServer(t)
	resp, body := postJSON(t, srv.URL+"/solve?algo=greedy", instanceJSON(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	if got := total.Value(); got != beforeTotal+1 {
		t.Fatalf("geacc_solve_total{algo=greedy} = %d, want %d", got, beforeTotal+1)
	}
	if got := hist.Count(); got != beforeHist+1 {
		t.Fatalf("geacc_solve_seconds{algo=greedy} count = %d, want %d", got, beforeHist+1)
	}
}

func TestMiddlewareRecordsPerEndpointMetrics(t *testing.T) {
	reg := obs.Default()
	requests := reg.Counter(obs.Label("geacc_http_requests_total", "path", "/healthz", "code", "200"))
	latency := reg.Histogram(obs.Label("geacc_http_request_seconds", "path", "/healthz"), obs.DefaultLatencyBuckets)
	beforeReq, beforeLat := requests.Value(), latency.Count()

	srv := newServer(t)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	if got := requests.Value(); got != beforeReq+3 {
		t.Fatalf("requests_total = %d, want %d", got, beforeReq+3)
	}
	if got := latency.Count(); got != beforeLat+3 {
		t.Fatalf("request_seconds count = %d, want %d", got, beforeLat+3)
	}
}

func TestMiddlewareLabelsErrorCodes(t *testing.T) {
	reg := obs.Default()
	bad := reg.Counter(obs.Label("geacc_http_requests_total", "path", "/solve", "code", "400"))
	before := bad.Value()
	srv := newServer(t)
	if resp, _ := postJSON(t, srv.URL+"/solve", []byte("{")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := bad.Value(); got != before+1 {
		t.Fatalf("requests_total{code=400} = %d, want %d", got, before+1)
	}
}

func TestMiddlewareFoldsUnknownPaths(t *testing.T) {
	reg := obs.Default()
	other := reg.Counter(obs.Label("geacc_http_requests_total", "path", "other", "code", "404"))
	before := other.Value()
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/this/route/does/not/exist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := other.Value(); got != before+1 {
		t.Fatalf("requests_total{path=other} = %d, want %d", got, before+1)
	}
}

func TestSolveCanceledContextReturns499(t *testing.T) {
	errs := obs.Default().Counter(obs.Label("geacc_solve_errors_total", "algo", "mincostflow"))
	before := errs.Value()

	h := New()
	req := httptest.NewRequest(http.MethodPost, "/solve?algo=mincostflow", bytes.NewReader(instanceJSON(t)))
	ctx, cancel := context.WithCancel(req.Context())
	cancel() // the client is already gone
	req = req.WithContext(ctx)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)

	if rr.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d (body %s)", rr.Code, statusClientClosedRequest, rr.Body.String())
	}
	if got := errs.Value(); got != before+1 {
		t.Fatalf("solve_errors_total = %d, want %d", got, before+1)
	}
}

func TestTraceCanceledContextReturns499(t *testing.T) {
	h := New()
	req := httptest.NewRequest(http.MethodPost, "/trace", bytes.NewReader(instanceJSON(t)))
	ctx, cancel := context.WithCancel(req.Context())
	cancel()
	req = req.WithContext(ctx)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d", rr.Code, statusClientClosedRequest)
	}
}

func TestDebugHandlerServesPprof(t *testing.T) {
	srv := httptest.NewServer(DebugHandler())
	t.Cleanup(srv.Close)
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}
