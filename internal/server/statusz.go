package server

import (
	"net/http"
	"runtime"
	"time"

	"github.com/ebsnlab/geacc/internal/buildinfo"
	"github.com/ebsnlab/geacc/internal/obs"
	"github.com/ebsnlab/geacc/internal/solvecache"
)

// httpWindow returns the rolling SLO window for one bounded endpoint label
// (a metricPath output), minting it on first use.
func (s *service) httpWindow(path string) *obs.Window {
	s.winMu.Lock()
	defer s.winMu.Unlock()
	w, ok := s.httpWindows[path]
	if !ok {
		w = obs.NewWindow(0, 0, 0)
		s.httpWindows[path] = w
	}
	return w
}

// solveWindow returns the rolling SLO window for one solver algorithm
// (a registry name — callers validate before observing), minting it on
// first use.
func (s *service) solveWindow(algo string) *obs.Window {
	s.winMu.Lock()
	defer s.winMu.Unlock()
	w, ok := s.solveWindows[algo]
	if !ok {
		w = obs.NewWindow(0, 0, 0)
		s.solveWindows[algo] = w
	}
	return w
}

// windowsSnapshot returns every live window keyed by its full Prometheus
// series name, the shape obs.WritePrometheusWindows renders.
func (s *service) windowsSnapshot() map[string]*obs.Window {
	s.winMu.Lock()
	defer s.winMu.Unlock()
	out := make(map[string]*obs.Window, len(s.httpWindows)+len(s.solveWindows))
	for p, w := range s.httpWindows {
		out[obs.Label("geacc_http_window_seconds", "path", p)] = w
	}
	for a, w := range s.solveWindows {
		out[obs.Label("geacc_solve_window_seconds", "algo", a)] = w
	}
	return out
}

// windowStats expands one window map into per-key, per-horizon summaries
// over the standard 1m/5m/15m horizons.
func windowStats(m map[string]*obs.Window) map[string]map[string]obs.WindowStats {
	out := make(map[string]map[string]obs.WindowStats, len(m))
	for key, w := range m {
		horizons := make(map[string]obs.WindowStats, len(obs.StandardWindows))
		for _, sw := range obs.StandardWindows {
			st := w.Stats(sw.Dur)
			st.Window = sw.Name
			horizons[sw.Name] = st
		}
		out[key] = horizons
	}
	return out
}

// StatuszResponse is the GET /statusz payload: one JSON page answering
// "what is this process and how is it doing right now" — build identity,
// uptime, readiness, instance count, runtime memory, and the rolling
// latency/error windows per endpoint and per solver.
type StatuszResponse struct {
	Service         string         `json:"service"`
	Build           buildinfo.Info `json:"build"`
	StartedAt       time.Time      `json:"started_at"`
	UptimeSeconds   float64        `json:"uptime_seconds"`
	Ready           bool           `json:"ready"`
	InstancesActive int64          `json:"instances_active"`
	Goroutines      int            `json:"goroutines"`
	HeapAllocBytes  uint64         `json:"heap_alloc_bytes"`
	HeapSysBytes    uint64         `json:"heap_sys_bytes"`
	NumGC           uint32         `json:"num_gc"`

	// Endpoints maps bounded request paths (metricPath output), and Solvers
	// maps solver algorithm names, to their 1m/5m/15m window summaries.
	Endpoints map[string]map[string]obs.WindowStats `json:"endpoints"`
	Solvers   map[string]map[string]obs.WindowStats `json:"solvers"`

	// SolveCache is the shared /solve memo cache's hit/miss/eviction
	// counters; omitted when the service was configured with caching
	// disabled.
	SolveCache *solvecache.Stats `json:"solve_cache,omitempty"`
}

// handleStatusz answers GET /statusz.
func (s *service) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	s.winMu.Lock()
	httpW := make(map[string]*obs.Window, len(s.httpWindows))
	for k, v := range s.httpWindows {
		httpW[k] = v
	}
	solveW := make(map[string]*obs.Window, len(s.solveWindows))
	for k, v := range s.solveWindows {
		solveW[k] = v
	}
	s.winMu.Unlock()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.mu.RLock()
	active := int64(len(s.instances))
	s.mu.RUnlock()
	var cacheStats *solvecache.Stats
	if s.solveCache != nil {
		cs := s.solveCache.Stats()
		cacheStats = &cs
	}
	writeJSON(w, StatuszResponse{
		Service:         "geacc-server",
		Build:           buildinfo.Get(),
		StartedAt:       buildinfo.StartTime().UTC(),
		UptimeSeconds:   buildinfo.Uptime().Seconds(),
		Ready:           s.ready.Load(),
		InstancesActive: active,
		Goroutines:      runtime.NumGoroutine(),
		HeapAllocBytes:  ms.HeapAlloc,
		HeapSysBytes:    ms.HeapSys,
		NumGC:           ms.NumGC,
		Endpoints:       windowStats(httpW),
		Solvers:         windowStats(solveW),
		SolveCache:      cacheStats,
	})
}

// readyzResponse is the GET /readyz payload: the verdict plus one line per
// check, so a failing probe names what failed.
type readyzResponse struct {
	Ready  bool              `json:"ready"`
	Checks map[string]string `json:"checks"`
}

// handleReadyz answers GET /readyz: 200 when the process can usefully take
// traffic, 503 (with Retry-After) when it cannot yet — startup replay still
// running or failed, the store no longer writable, or the handler stack
// saturated. Liveness stays on /healthz: an unready process is not a dead
// process.
func (s *service) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	checks := make(map[string]string, 3)
	ready := true

	switch {
	case s.replayErr.Load() != nil:
		checks["replay"] = "failed: " + *s.replayErr.Load()
		ready = false
	case !s.ready.Load():
		checks["replay"] = "replaying"
		ready = false
	default:
		checks["replay"] = "ok"
	}

	if s.st == nil {
		checks["store"] = "ok (ephemeral)"
	} else if err := s.st.Probe(); err != nil {
		checks["store"] = "failed: " + err.Error()
		ready = false
	} else {
		checks["store"] = "ok"
	}

	// Load readiness comes from the admission controller itself — the same
	// limits that decide per-request 429s decide the probe, so the
	// load-balancer signal and the shed behavior cannot drift apart: the
	// probe fails exactly when the next solve would be shed.
	msg, ok := s.adm.loadCheck()
	checks["load"] = msg
	if !ok {
		ready = false
	}

	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSONStatus(w, status, readyzResponse{Ready: ready, Checks: checks})
}
