package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEuclideanKnownValues(t *testing.T) {
	f := Euclidean(2, 10)
	cases := []struct {
		a, b Vector
		want float64
	}{
		{Vector{0, 0}, Vector{0, 0}, 1},
		{Vector{0, 0}, Vector{10, 10}, 0},
		{Vector{3, 4}, Vector{3, 4}, 1},
		{Vector{0, 0}, Vector{10, 0}, 1 - 10/math.Sqrt(200)},
	}
	for _, c := range cases {
		got := f(c.a, c.b)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Euclidean(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEuclideanRange(t *testing.T) {
	const d, maxT = 5, 100.0
	f := Euclidean(d, maxT)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b := randVec(rng, d, maxT), randVec(rng, d, maxT)
		s := f(a, b)
		if s < 0 || s > 1 {
			t.Fatalf("similarity %v out of [0,1] for %v, %v", s, a, b)
		}
	}
}

func TestEuclideanSymmetry(t *testing.T) {
	const d, maxT = 4, 50.0
	f := Euclidean(d, maxT)
	rng := rand.New(rand.NewSource(2))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVec(r, d, maxT), randVec(r, d, maxT)
		return f(a, b) == f(b, a)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestEuclideanIdentity(t *testing.T) {
	f := Euclidean(3, 10)
	v := Vector{1, 2, 3}
	if got := f(v, v); got != 1 {
		t.Errorf("self-similarity = %v, want 1", got)
	}
}

func TestEuclideanMonotoneInDistance(t *testing.T) {
	f := Euclidean(1, 10)
	origin := Vector{0}
	prev := 2.0
	for x := 0.0; x <= 10; x++ {
		s := f(origin, Vector{x})
		if s >= prev {
			t.Fatalf("similarity not strictly decreasing at x=%v: %v >= %v", x, s, prev)
		}
		prev = s
	}
}

func TestEuclideanPanicsOnBadParams(t *testing.T) {
	assertPanics(t, func() { Euclidean(0, 10) })
	assertPanics(t, func() { Euclidean(3, 0) })
	assertPanics(t, func() { Manhattan(0, 10) })
	assertPanics(t, func() { Manhattan(3, -1) })
}

func TestDistanceDimensionMismatchPanics(t *testing.T) {
	assertPanics(t, func() { Distance(Vector{1}, Vector{1, 2}) })
	assertPanics(t, func() { Cosine()(Vector{1}, Vector{1, 2}) })
	assertPanics(t, func() { Manhattan(2, 1)(Vector{1}, Vector{1, 2}) })
}

func TestCosine(t *testing.T) {
	f := Cosine()
	cases := []struct {
		a, b Vector
		want float64
	}{
		{Vector{1, 0}, Vector{0, 1}, 0},
		{Vector{1, 0}, Vector{1, 0}, 1},
		{Vector{1, 1}, Vector{2, 2}, 1},
		{Vector{0, 0}, Vector{1, 1}, 0},
		{Vector{0, 0}, Vector{0, 0}, 0},
		{Vector{1, 0}, Vector{1, 1}, 1 / math.Sqrt2},
	}
	for _, c := range cases {
		got := f(c.a, c.b)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Cosine(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestManhattan(t *testing.T) {
	f := Manhattan(2, 10)
	if got := f(Vector{0, 0}, Vector{10, 10}); got != 0 {
		t.Errorf("max-distance similarity = %v, want 0", got)
	}
	if got := f(Vector{3, 7}, Vector{3, 7}); got != 1 {
		t.Errorf("self-similarity = %v, want 1", got)
	}
	if got, want := f(Vector{0, 0}, Vector{5, 5}), 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("half-distance similarity = %v, want %v", got, want)
	}
}

func TestAllFuncsInUnitRangeProperty(t *testing.T) {
	const d, maxT = 6, 1000.0
	funcs := map[string]Func{
		"euclidean": Euclidean(d, maxT),
		"cosine":    Cosine(),
		"manhattan": Manhattan(d, maxT),
	}
	rng := rand.New(rand.NewSource(3))
	for name, f := range funcs {
		for i := 0; i < 500; i++ {
			a, b := randVec(rng, d, maxT), randVec(rng, d, maxT)
			s := f(a, b)
			if s < 0 || s > 1 || math.IsNaN(s) {
				t.Fatalf("%s(%v, %v) = %v out of range", name, a, b, s)
			}
			if f(a, b) != f(b, a) {
				t.Fatalf("%s not symmetric on %v, %v", name, a, b)
			}
		}
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares backing array with original")
	}
	if Vector(nil).Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

func TestVectorValidate(t *testing.T) {
	if err := (Vector{0, 5, 10}).Validate(10); err != nil {
		t.Errorf("valid vector rejected: %v", err)
	}
	for _, bad := range []Vector{
		{-1, 0},
		{0, 11},
		{math.NaN()},
		{math.Inf(1)},
	} {
		if err := bad.Validate(10); err == nil {
			t.Errorf("Validate accepted invalid vector %v", bad)
		}
	}
}

func randVec(rng *rand.Rand, d int, maxT float64) Vector {
	v := make(Vector, d)
	for i := range v {
		v[i] = rng.Float64() * maxT
	}
	return v
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
