package sim

import (
	"math"
	"math/rand"
	"testing"
)

func randVecs(rng *rand.Rand, n, d int, maxT float64) []Vector {
	vs := make([]Vector, n)
	for i := range vs {
		v := make(Vector, d)
		for j := range v {
			v[j] = rng.Float64() * maxT
		}
		vs[i] = v
	}
	return vs
}

// TestKernelMatchesClosures is the core equivalence property: for random
// vectors over a sweep of dimensionalities and attribute bounds, SimBatch,
// Sim, and SimGather agree with the closure-based built-ins within 1e-9 —
// and in fact bit for bit, which is the stronger contract the kNN oracle
// tests rely on.
func TestKernelMatchesClosures(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range []int{1, 2, 3, 4, 5, 8, 20, 33} {
		for _, maxT := range []float64{1, 10, 10000} {
			funcs := map[string]Func{
				"euclidean": Euclidean(d, maxT),
				"cosine":    Cosine(),
				"manhattan": Manhattan(d, maxT),
			}
			data := randVecs(rng, 57, d, maxT)
			queries := randVecs(rng, 9, d, maxT)
			for name, f := range funcs {
				k := NewKernel(data, f)
				if !k.Batched() {
					t.Fatalf("d=%d maxT=%v %s: kernel did not recognize built-in", d, maxT, name)
				}
				out := make([]float64, len(data))
				ids := make([]int, 0, len(data))
				for i := range data {
					ids = append(ids, i)
				}
				gathered := make([]float64, len(data))
				for _, q := range queries {
					k.SimBatch(q, 0, len(data), out)
					k.SimGather(q, ids, gathered)
					for i, row := range data {
						want := f(q, row)
						if math.Abs(out[i]-want) > 1e-9 {
							t.Fatalf("d=%d maxT=%v %s row %d: batch %v, closure %v", d, maxT, name, i, out[i], want)
						}
						if out[i] != want {
							t.Errorf("d=%d maxT=%v %s row %d: batch %v not bit-identical to closure %v", d, maxT, name, i, out[i], want)
						}
						if got := k.Sim(q, i); got != want {
							t.Errorf("d=%d maxT=%v %s row %d: Sim %v != closure %v", d, maxT, name, i, got, want)
						}
						if gathered[i] != want {
							t.Errorf("d=%d maxT=%v %s row %d: gather %v != closure %v", d, maxT, name, i, gathered[i], want)
						}
					}
				}
			}
		}
	}
}

// TestKernelClampCorners drives the negative-clamp branch: opposite corners
// of [0, T]^d are at exactly the normalizing distance, where floating-point
// error can push 1 − dist/norm a hair negative. Closure and kernel must
// clamp identically.
func TestKernelClampCorners(t *testing.T) {
	for _, d := range []int{1, 2, 7, 20, 31} {
		for _, maxT := range []float64{1, 3, 10000} {
			zero := make(Vector, d)
			far := make(Vector, d)
			for j := range far {
				far[j] = maxT
			}
			almost := far.Clone()
			almost[0] = maxT * (1 - 1e-12)
			data := []Vector{zero, far, almost}
			for name, f := range map[string]Func{
				"euclidean": Euclidean(d, maxT),
				"manhattan": Manhattan(d, maxT),
			} {
				k := NewKernel(data, f)
				out := make([]float64, len(data))
				for _, q := range data {
					k.SimBatch(q, 0, len(data), out)
					for i, row := range data {
						want := f(q, row)
						if out[i] != want {
							t.Fatalf("d=%d maxT=%v %s corner (%v,%v): batch %v, closure %v", d, maxT, name, q, row, out[i], want)
						}
						if want < 0 || want > 1 {
							t.Fatalf("d=%d maxT=%v %s: closure out of range: %v", d, maxT, name, want)
						}
					}
				}
			}
		}
	}
}

// TestKernelGenericFallback: an arbitrary user Func is not recognized, and
// the kernel's batch/single/gather paths all reduce to calling it per pair.
func TestKernelGenericFallback(t *testing.T) {
	f := func(a, b Vector) float64 {
		var s float64
		for i := range a {
			s += a[i] * b[i] / (1 + a[i])
		}
		return s / float64(len(a)+1)
	}
	rng := rand.New(rand.NewSource(7))
	data := randVecs(rng, 23, 6, 5)
	k := NewKernel(data, f)
	if k.Batched() {
		t.Fatal("custom func unexpectedly recognized as built-in")
	}
	q := randVecs(rng, 1, 6, 5)[0]
	out := make([]float64, len(data))
	k.SimBatch(q, 0, len(data), out)
	for i, row := range data {
		if want := f(q, row); out[i] != want {
			t.Fatalf("fallback row %d: %v != %v", i, out[i], want)
		}
		if got := k.Sim(q, i); got != f(q, row) {
			t.Fatalf("fallback Sim row %d: %v != %v", i, got, f(q, row))
		}
	}
}

// TestKernelProbeRobustness: funcs that panic on the 1-dimensional probe
// (e.g. a closure hard-wired to d=5) must degrade to the generic fallback,
// not crash NewKernel.
func TestKernelProbeRobustness(t *testing.T) {
	f := func(a, b Vector) float64 {
		_ = a[4] // demands d >= 5; panics on the probe
		return SquaredDistance(a, b)
	}
	rng := rand.New(rand.NewSource(9))
	data := randVecs(rng, 4, 5, 1)
	k := NewKernel(data, f)
	if k.Batched() {
		t.Fatal("panicking func unexpectedly recognized")
	}
	out := make([]float64, len(data))
	k.SimBatch(data[0], 0, len(data), out)
	if out[0] != 0 {
		t.Fatalf("self-distance = %v, want 0", out[0])
	}
}

// TestSqDistBatchAccuracy bounds the dot-product identity's error against
// the exact difference form: |Δ| ≤ 1e-12·(‖q‖²+‖r‖²+1), comfortably above
// the d·ε·(‖q‖²+‖r‖²) analysis bound, and exact equality inside the
// cancellation guard (near-duplicate vectors).
func TestSqDistBatchAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for _, d := range []int{1, 3, 8, 20, 64} {
		data := randVecs(rng, 41, d, 10000)
		// Rows 0..4 are near-duplicates of query 0: the guard must kick in.
		q0 := randVecs(rng, 1, d, 10000)[0]
		for i := 0; i < 5; i++ {
			dup := q0.Clone()
			dup[rng.Intn(d)] += 1e-9
			data[i] = dup
		}
		k := NewKernel(data, Euclidean(d, 10000))
		out := make([]float64, len(data))
		queries := append(randVecs(rng, 5, d, 10000), q0)
		for _, q := range queries {
			k.SqDistBatch(q, 0, len(data), out)
			qn := sumSquares(q)
			for i, row := range data {
				exact := SquaredDistance(q, row)
				if out[i] < 0 {
					t.Fatalf("d=%d row %d: negative squared distance %v", d, i, out[i])
				}
				rn := sumSquares(row)
				if exact < sqDistGuard*(qn+rn) {
					if out[i] != exact {
						t.Fatalf("d=%d row %d: guard path %v != exact %v", d, i, out[i], exact)
					}
					continue
				}
				if math.Abs(out[i]-exact) > 1e-12*(qn+rn+1) {
					t.Fatalf("d=%d row %d: identity %v vs exact %v exceeds error bound", d, i, out[i], exact)
				}
			}
		}
	}
}

// TestFlatRowNorm: Row views alias the store faithfully and Norm matches a
// direct index-order accumulation.
func TestFlatRowNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randVecs(rng, 11, 7, 3)
	f := NewFlat(data)
	if f.Len() != 11 || f.Dim() != 7 {
		t.Fatalf("Len/Dim = %d/%d", f.Len(), f.Dim())
	}
	for i, v := range data {
		row := f.Row(i)
		for j := range v {
			if row[j] != v[j] {
				t.Fatalf("row %d component %d: %v != %v", i, j, row[j], v[j])
			}
		}
		if f.Norm(i) != sumSquares(v) {
			t.Fatalf("row %d norm mismatch", i)
		}
	}
	empty := NewFlat(nil)
	if empty.Len() != 0 || empty.Dim() != 0 {
		t.Fatal("empty flat store not empty")
	}
}
