package sim

import "fmt"

// Flat is an immutable row-major store of n d-dimensional vectors with the
// squared Euclidean norm of every row precomputed at build time. One
// contiguous allocation replaces n pointer-chased slices, so linear scans —
// the inner loop of every kNN refill and cost-matrix build — walk memory in
// stride order and the hardware prefetcher keeps up. The norms feed the
// cosine kernel (its per-row ‖b‖² term) and the dot-product identity used
// by SqDistBatch.
type Flat struct {
	data  []float64 // n*d coordinates, row i at [i*d, (i+1)*d)
	norms []float64 // norms[i] = Σ_j data[i*d+j]², accumulated in index order
	d, n  int
}

// NewFlat copies vs into a flat row-major store. All vectors must share one
// dimensionality; an empty input yields an empty store.
func NewFlat(vs []Vector) *Flat {
	f := &Flat{n: len(vs)}
	if f.n == 0 {
		return f
	}
	f.d = len(vs[0])
	f.data = make([]float64, f.n*f.d)
	f.norms = make([]float64, f.n)
	for i, v := range vs {
		if len(v) != f.d {
			panic(fmt.Sprintf("sim: flat row %d has dimension %d, want %d", i, len(v), f.d))
		}
		copy(f.data[i*f.d:], v)
		// Accumulate in index order: this must produce the same float64 as
		// the nb accumulator inside the Cosine closure, which sums b[i]*b[i]
		// left to right.
		var s float64
		for _, x := range v {
			s += x * x
		}
		f.norms[i] = s
	}
	return f
}

// Len returns the number of stored vectors.
func (f *Flat) Len() int { return f.n }

// Dim returns the shared dimensionality (0 for an empty store).
func (f *Flat) Dim() int { return f.d }

// Row returns a view of row i. The view aliases the store; callers must not
// modify it.
func (f *Flat) Row(i int) Vector {
	base := i * f.d
	return Vector(f.data[base : base+f.d : base+f.d])
}

// Norm returns the precomputed squared Euclidean norm of row i.
func (f *Flat) Norm(i int) float64 { return f.norms[i] }
