// Package sim provides attribute vectors and similarity functions for the
// GEACC problem.
//
// Events and users are described by d-dimensional attribute vectors whose
// components lie in [0, T]. A similarity function maps a pair of vectors to
// an interestingness value in [0, 1]. The paper (Definition 4 and Equation 1)
// uses a normalized Euclidean similarity; it also notes that other similarity
// functions are applicable, so this package ships several and lets callers
// plug in their own.
package sim

import (
	"fmt"
	"math"
)

// Vector is a d-dimensional attribute vector. Components are expected to lie
// in [0, T] for the T the enclosing instance was built with, but Vector
// itself does not enforce that; use Validate when reading untrusted data.
type Vector []float64

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	if v == nil {
		return nil
	}
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Validate reports an error if any component of v lies outside [0, maxT] or
// is not a finite number.
func (v Vector) Validate(maxT float64) error {
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("sim: component %d is not finite: %v", i, x)
		}
		if x < 0 || x > maxT {
			return fmt.Errorf("sim: component %d = %v outside [0, %v]", i, x, maxT)
		}
	}
	return nil
}

// SquaredDistance returns the squared Euclidean distance between a and b.
// It panics if the vectors have different dimensionality, which always
// indicates a programming error: all vectors of one instance share d.
func SquaredDistance(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("sim: dimension mismatch: %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Distance returns the Euclidean distance between a and b.
func Distance(a, b Vector) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// Func is a similarity function between two attribute vectors. Implementations
// must be symmetric, pure, and return values in [0, 1].
type Func func(a, b Vector) float64

// Euclidean returns the similarity function of Equation (1) in the paper:
//
//	sim(a, b) = 1 - ||a-b||₂ / sqrt(d·T²)
//
// where d is the dimensionality and T the maximum attribute value. The
// denominator is the largest possible distance between two vectors in
// [0, T]^d, so the result is always in [0, 1].
func Euclidean(d int, maxT float64) Func {
	if d <= 0 {
		panic(fmt.Sprintf("sim: non-positive dimensionality %d", d))
	}
	if maxT <= 0 {
		panic(fmt.Sprintf("sim: non-positive attribute bound %v", maxT))
	}
	norm := math.Sqrt(float64(d) * maxT * maxT)
	sp := &funcSpec{kind: kindEuclidean, norm: norm}
	return func(a, b Vector) float64 {
		if answerProbe(a, sp) {
			return 0
		}
		s := 1 - Distance(a, b)/norm
		// Guard against tiny negative values from floating-point error when
		// the two vectors are at opposite corners of the attribute space.
		if s < 0 {
			return 0
		}
		return s
	}
}

// Cosine returns cosine similarity clamped to [0, 1]. With non-negative
// attribute vectors (as in the tag-based Meetup data) the dot product is
// non-negative, so no information is lost by the clamp. Two zero vectors
// have similarity 0 by convention.
func Cosine() Func {
	sp := &funcSpec{kind: kindCosine}
	return func(a, b Vector) float64 {
		if answerProbe(a, sp) {
			return 0
		}
		if len(a) != len(b) {
			panic(fmt.Sprintf("sim: dimension mismatch: %d vs %d", len(a), len(b)))
		}
		var dot, na, nb float64
		for i := range a {
			dot += a[i] * b[i]
			na += a[i] * a[i]
			nb += b[i] * b[i]
		}
		if na == 0 || nb == 0 {
			return 0
		}
		s := dot / math.Sqrt(na*nb)
		switch {
		case s < 0:
			return 0
		case s > 1:
			return 1
		}
		return s
	}
}

// Manhattan returns a normalized L1 similarity, 1 - ||a-b||₁ / (d·T):
// a cheaper alternative with the same [0, 1] range as Euclidean.
func Manhattan(d int, maxT float64) Func {
	if d <= 0 {
		panic(fmt.Sprintf("sim: non-positive dimensionality %d", d))
	}
	if maxT <= 0 {
		panic(fmt.Sprintf("sim: non-positive attribute bound %v", maxT))
	}
	norm := float64(d) * maxT
	sp := &funcSpec{kind: kindManhattan, norm: norm}
	return func(a, b Vector) float64 {
		if answerProbe(a, sp) {
			return 0
		}
		if len(a) != len(b) {
			panic(fmt.Sprintf("sim: dimension mismatch: %d vs %d", len(a), len(b)))
		}
		var s float64
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		r := 1 - s/norm
		if r < 0 {
			return 0
		}
		return r
	}
}
