package sim

import (
	"fmt"
	"math"
	"sync"

	"github.com/ebsnlab/geacc/internal/obs"
)

// Batch-kernel observability: one batch is one SimBatch/SqDistBatch/gather
// call, pairs counts the (query, row) evaluations it covered. The ratio
// pairs/batches is the effective block size reaching the kernels.
var (
	kernelBatches = obs.Default().Counter("geacc_sim_kernel_batches_total")
	kernelPairs   = obs.Default().Counter("geacc_sim_kernel_pairs_total")
)

// kernelKind identifies which built-in similarity a Func was created by, so
// the kernel can run its batched form instead of calling the closure per pair.
type kernelKind uint8

const (
	kindGeneric kernelKind = iota // unrecognized Func: per-row fallback
	kindEuclidean
	kindCosine
	kindManhattan
)

// funcSpec is what a built-in constructor's closure reports when probed:
// enough to rebuild the exact arithmetic of the closure in batch form.
type funcSpec struct {
	kind kernelKind
	norm float64 // Euclidean: √(d·T²); Manhattan: d·T; Cosine: unused
}

// kernelProbe is the sentinel vector used to interrogate a Func. The built-in
// closures check the backing-array identity of their first argument before
// doing any arithmetic; on a match they record their spec instead of
// computing a similarity. The vector is allocated once and never mutated, so
// the identity check in hot closures is two comparisons against immutable
// memory — no synchronization needed on that path. specOf serializes actual
// probes (which write probeGot) behind the mutex.
var (
	probeMu  sync.Mutex
	probeVec = make(Vector, 1)
	probeGot *funcSpec
)

// answerProbe reports whether a is the probe sentinel; if so it records sp
// as the answer. Built-in closures call this first.
func answerProbe(a Vector, sp *funcSpec) bool {
	if len(a) != 1 || &a[0] != &probeVec[0] {
		return false
	}
	probeGot = sp
	return true
}

// specOf interrogates f with the probe sentinel. Unrecognized functions
// either return a value (ignored) or panic on the 1-dimensional probe
// (recovered); both yield the generic spec.
func specOf(f Func) funcSpec {
	if f == nil {
		return funcSpec{}
	}
	probeMu.Lock()
	defer probeMu.Unlock()
	probeGot = nil
	func() {
		defer func() { _ = recover() }()
		f(probeVec, probeVec)
	}()
	if probeGot == nil {
		return funcSpec{}
	}
	return *probeGot
}

// Kernel evaluates one similarity function against a fixed set of vectors in
// batches. For the built-in Euclidean/Cosine/Manhattan functions it runs
// unrolled scans over the flat store that reproduce the closures'
// floating-point arithmetic bit for bit — batched and per-pair paths are
// interchangeable anywhere in the repo, including tests that compare streams
// across index implementations. Any other Func runs through the generic
// fallback, so plugging in a custom similarity keeps working unchanged.
type Kernel struct {
	flat *Flat
	vecs []Vector
	f    Func
	spec funcSpec
}

// NewKernel builds a kernel over data for f. The vectors are copied into a
// flat row-major store; data itself is retained only for Vectors().
func NewKernel(data []Vector, f Func) *Kernel {
	return &Kernel{flat: NewFlat(data), vecs: data, f: f, spec: specOf(f)}
}

// Len returns the number of stored vectors.
func (k *Kernel) Len() int { return k.flat.Len() }

// Dim returns the stored vectors' dimensionality.
func (k *Kernel) Dim() int { return k.flat.Dim() }

// Func returns the similarity function the kernel evaluates.
func (k *Kernel) Func() Func { return k.f }

// Vectors returns the original vector slice the kernel was built from.
// Callers must not modify it or its rows.
func (k *Kernel) Vectors() []Vector { return k.vecs }

// Row returns a read-only view of stored vector i.
func (k *Kernel) Row(i int) Vector { return k.flat.Row(i) }

// Batched reports whether the kernel recognized its Func as a built-in and
// will use the specialized batch scans (false means generic fallback).
func (k *Kernel) Batched() bool { return k.spec.kind != kindGeneric }

// SimBatch fills out[0:hi-lo] with sim(query, row i) for every i in
// [lo, hi). For recognized built-ins the results are bit-identical to
// calling the closure per pair.
func (k *Kernel) SimBatch(query Vector, lo, hi int, out []float64) {
	if hi <= lo {
		return
	}
	kernelBatches.Inc()
	kernelPairs.Add(int64(hi - lo))
	switch k.spec.kind {
	case kindEuclidean:
		k.euclideanBatch(query, lo, hi, out)
	case kindCosine:
		k.cosineBatch(query, lo, hi, out)
	case kindManhattan:
		k.manhattanBatch(query, lo, hi, out)
	default:
		for i := lo; i < hi; i++ {
			out[i-lo] = k.f(query, k.flat.Row(i))
		}
	}
}

// Sim returns sim(query, row i): the per-pair entry point with the same
// bit-level guarantees as SimBatch.
func (k *Kernel) Sim(query Vector, i int) float64 {
	switch k.spec.kind {
	case kindEuclidean:
		return euclideanRow(query, k.flat.Row(i), k.spec.norm)
	case kindCosine:
		return cosineRow(query, sumSquares(query), k.flat.Row(i), k.flat.Norm(i))
	case kindManhattan:
		return manhattanRow(query, k.flat.Row(i), k.spec.norm)
	default:
		return k.f(query, k.flat.Row(i))
	}
}

// SimGather fills out[j] = sim(query, row ids[j]) for sparse id sets (LSH
// bucket unions, VA-file survivors).
func (k *Kernel) SimGather(query Vector, ids []int, out []float64) {
	if len(ids) == 0 {
		return
	}
	kernelBatches.Inc()
	kernelPairs.Add(int64(len(ids)))
	switch k.spec.kind {
	case kindEuclidean:
		for j, id := range ids {
			out[j] = euclideanRow(query, k.flat.Row(id), k.spec.norm)
		}
	case kindCosine:
		qn := sumSquares(query)
		for j, id := range ids {
			out[j] = cosineRow(query, qn, k.flat.Row(id), k.flat.Norm(id))
		}
	case kindManhattan:
		for j, id := range ids {
			out[j] = manhattanRow(query, k.flat.Row(id), k.spec.norm)
		}
	default:
		for j, id := range ids {
			out[j] = k.f(query, k.flat.Row(id))
		}
	}
}

// sqDistGuard is the relative threshold below which the dot-product identity
// result is discarded and the difference form recomputed. The identity
// ‖q−r‖² = ‖q‖² + ‖r‖² − 2·q·r carries an absolute error of roughly
// d·ε·(‖q‖²+‖r‖²); when the true squared distance is small relative to the
// norms, that error dominates (catastrophic cancellation for near-duplicate
// vectors). 1e-6 sits far above d·ε (~1e-14 at d=64) and far below any
// distance at which the identity's error could matter.
const sqDistGuard = 1e-6

// SqDistBatch fills out[0:hi-lo] with the squared Euclidean distance from
// query to each row in [lo, hi), using the dot-product identity with the
// precomputed row norms — one dot product per pair instead of a full
// difference pass. Results are clamped to be non-negative; pairs under the
// cancellation guard are recomputed with the exact difference form.
func (k *Kernel) SqDistBatch(query Vector, lo, hi int, out []float64) {
	if hi <= lo {
		return
	}
	kernelBatches.Inc()
	kernelPairs.Add(int64(hi - lo))
	qn := sumSquares(query)
	for i := lo; i < hi; i++ {
		out[i-lo] = k.sqDistRow(query, qn, i)
	}
}

// SqDistGather is SqDistBatch over a sparse id set.
func (k *Kernel) SqDistGather(query Vector, ids []int, out []float64) {
	if len(ids) == 0 {
		return
	}
	kernelBatches.Inc()
	kernelPairs.Add(int64(len(ids)))
	qn := sumSquares(query)
	for j, id := range ids {
		out[j] = k.sqDistRow(query, qn, id)
	}
}

func (k *Kernel) sqDistRow(q Vector, qn float64, i int) float64 {
	row := k.flat.Row(i)
	rn := k.flat.Norm(i)
	sq := qn + rn - 2*dotUnrolled(q, row)
	if sq < sqDistGuard*(qn+rn) {
		// Within cancellation range of the identity: recompute exactly.
		return SquaredDistance(q, row)
	}
	return sq
}

// euclideanBatch is the Euclidean(d, maxT) closure over a block: per row it
// runs the difference form with a single accumulator in index order — the
// same operation sequence as SquaredDistance — then 1 − √s/norm with the
// negative clamp. The 4-wide unroll issues independent subtract/multiply
// pairs but keeps one sequential accumulator, so the float64 result is
// bit-identical to the closure's.
func (k *Kernel) euclideanBatch(query Vector, lo, hi int, out []float64) {
	d := k.flat.d
	if len(query) != d {
		panic(fmt.Sprintf("sim: dimension mismatch: %d vs %d", len(query), d))
	}
	q := query[:d]
	norm := k.spec.norm
	data := k.flat.data
	for i := lo; i < hi; i++ {
		row := data[i*d : i*d+d]
		var s float64
		j := 0
		for ; j+4 <= d; j += 4 {
			d0 := q[j] - row[j]
			s += d0 * d0
			d1 := q[j+1] - row[j+1]
			s += d1 * d1
			d2 := q[j+2] - row[j+2]
			s += d2 * d2
			d3 := q[j+3] - row[j+3]
			s += d3 * d3
		}
		for ; j < d; j++ {
			dd := q[j] - row[j]
			s += dd * dd
		}
		sv := 1 - math.Sqrt(s)/norm
		if sv < 0 {
			sv = 0
		}
		out[i-lo] = sv
	}
}

// cosineBatch is the Cosine() closure over a block. The closure accumulates
// dot, na, nb in three independent variables over the same index loop;
// independence means precomputing na (the query norm) once and nb (the row
// norms) at build time yields the very same float64 values, and the final
// dot/√(na·nb) expression is reproduced verbatim.
func (k *Kernel) cosineBatch(query Vector, lo, hi int, out []float64) {
	d := k.flat.d
	if len(query) != d {
		panic(fmt.Sprintf("sim: dimension mismatch: %d vs %d", len(query), d))
	}
	q := query[:d]
	qn := sumSquares(q)
	data := k.flat.data
	norms := k.flat.norms
	for i := lo; i < hi; i++ {
		row := data[i*d : i*d+d]
		var dot float64
		j := 0
		for ; j+4 <= d; j += 4 {
			dot += q[j] * row[j]
			dot += q[j+1] * row[j+1]
			dot += q[j+2] * row[j+2]
			dot += q[j+3] * row[j+3]
		}
		for ; j < d; j++ {
			dot += q[j] * row[j]
		}
		rn := norms[i]
		if qn == 0 || rn == 0 {
			out[i-lo] = 0
			continue
		}
		s := dot / math.Sqrt(qn*rn)
		switch {
		case s < 0:
			s = 0
		case s > 1:
			s = 1
		}
		out[i-lo] = s
	}
}

// manhattanBatch is the Manhattan(d, maxT) closure over a block: sequential
// |q−r| accumulation, then 1 − s/norm with the negative clamp.
func (k *Kernel) manhattanBatch(query Vector, lo, hi int, out []float64) {
	d := k.flat.d
	if len(query) != d {
		panic(fmt.Sprintf("sim: dimension mismatch: %d vs %d", len(query), d))
	}
	q := query[:d]
	norm := k.spec.norm
	data := k.flat.data
	for i := lo; i < hi; i++ {
		row := data[i*d : i*d+d]
		var s float64
		j := 0
		for ; j+4 <= d; j += 4 {
			s += math.Abs(q[j] - row[j])
			s += math.Abs(q[j+1] - row[j+1])
			s += math.Abs(q[j+2] - row[j+2])
			s += math.Abs(q[j+3] - row[j+3])
		}
		for ; j < d; j++ {
			s += math.Abs(q[j] - row[j])
		}
		r := 1 - s/norm
		if r < 0 {
			r = 0
		}
		out[i-lo] = r
	}
}

// The per-row helpers below mirror the batch loops exactly (keep them in
// lockstep): Sim and the gathers reuse them so single-pair and batched
// evaluation cannot drift apart.

func euclideanRow(q, row Vector, norm float64) float64 {
	sv := 1 - math.Sqrt(SquaredDistance(q, row))/norm
	if sv < 0 {
		return 0
	}
	return sv
}

func cosineRow(q Vector, qn float64, row Vector, rn float64) float64 {
	if len(q) != len(row) {
		panic(fmt.Sprintf("sim: dimension mismatch: %d vs %d", len(q), len(row)))
	}
	if qn == 0 || rn == 0 {
		return 0
	}
	var dot float64
	for i := range q {
		dot += q[i] * row[i]
	}
	s := dot / math.Sqrt(qn*rn)
	switch {
	case s < 0:
		return 0
	case s > 1:
		return 1
	}
	return s
}

func manhattanRow(q, row Vector, norm float64) float64 {
	if len(q) != len(row) {
		panic(fmt.Sprintf("sim: dimension mismatch: %d vs %d", len(q), len(row)))
	}
	var s float64
	for i := range q {
		s += math.Abs(q[i] - row[i])
	}
	r := 1 - s/norm
	if r < 0 {
		return 0
	}
	return r
}

// sumSquares accumulates Σ v[i]² in index order — the same order as the
// Cosine closure's na/nb accumulators and NewFlat's norm precompute.
func sumSquares(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// dotUnrolled is the 4-wide single-accumulator dot product shared by the
// squared-distance identity.
func dotUnrolled(a, b Vector) float64 {
	d := len(a)
	if len(b) != d {
		panic(fmt.Sprintf("sim: dimension mismatch: %d vs %d", d, len(b)))
	}
	var s float64
	j := 0
	for ; j+4 <= d; j += 4 {
		s += a[j] * b[j]
		s += a[j+1] * b[j+1]
		s += a[j+2] * b[j+2]
		s += a[j+3] * b[j+3]
	}
	for ; j < d; j++ {
		s += a[j] * b[j]
	}
	return s
}
