// Package solvecache provides a content-addressed, bounded-LRU cache for
// solve results. Keys are SHA-256 digests of the canonical instance content
// — capacities, attribute bits, conflict pairs, explicit matrix entries —
// plus everything that changes the answer: algorithm, seed, similarity
// identity, decompose flags, diagnostics mode. Two requests with the same
// key are guaranteed the same bit-for-bit solver output (solvers are
// deterministic functions of exactly these inputs), so a hit can serve the
// memoized result without running anything.
//
// Instances whose similarity is an opaque callback (no matrix, no SimID)
// are uncacheable: the key cannot prove the callback unchanged.
package solvecache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/obs"
)

// Key addresses one cached solve result.
type Key [sha256.Size]byte

// KeySpec carries the non-content solve parameters that select the answer.
type KeySpec struct {
	Algo      string
	Seed      int64
	SimID     string // canonical similarity identity, e.g. "euclidean/4/100"; "" means uncacheable unless the instance has a matrix
	Decompose bool
	Workers   int
	Diag      bool
	NodeLimit int64
	// Approximate-sharding parameters (internal/partition). They change the
	// merged matching, so they must key separately from a plain decomposed
	// solve: ApproxShard false means the zero-valued trio hashes as "off".
	ApproxShard      bool
	ShardMaxArea     int64
	ShardStrategy    string
	ShardDriftBudget float64
}

// InstanceKey hashes the instance content under the spec. ok is false when
// the instance is uncacheable (callback similarity with no SimID).
func InstanceKey(in *core.Instance, spec KeySpec) (Key, bool) {
	if in == nil || (in.Matrix == nil && spec.SimID == "") {
		return Key{}, false
	}
	h := sha256.New()
	var buf [8]byte
	writeInt := func(x int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	writeFloat := func(f float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(int64(len(s)))
		h.Write([]byte(s))
	}
	writeStr("geacc-solve-v2")
	writeStr(spec.Algo)
	writeStr(spec.SimID)
	writeInt(spec.Seed)
	writeInt(spec.NodeLimit)
	writeInt(int64(spec.Workers))
	var flags int64
	if spec.Decompose {
		flags |= 1
	}
	if spec.Diag {
		flags |= 2
	}
	if spec.ApproxShard {
		flags |= 4
	}
	writeInt(flags)
	writeInt(spec.ShardMaxArea)
	writeStr(spec.ShardStrategy)
	writeFloat(spec.ShardDriftBudget)

	writeInt(int64(in.NumEvents()))
	writeInt(int64(in.NumUsers()))
	for _, e := range in.Events {
		writeInt(int64(e.Cap))
		writeInt(int64(len(e.Attrs)))
		for _, a := range e.Attrs {
			writeFloat(a)
		}
	}
	for _, u := range in.Users {
		writeInt(int64(u.Cap))
		writeInt(int64(len(u.Attrs)))
		for _, a := range u.Attrs {
			writeFloat(a)
		}
	}
	if in.Conflicts != nil {
		pairs := in.Conflicts.Pairs() // sorted, deterministic
		writeInt(int64(len(pairs)))
		for _, p := range pairs {
			writeInt(int64(p[0]))
			writeInt(int64(p[1]))
		}
	} else {
		writeInt(-1)
	}
	if in.Matrix != nil {
		writeInt(int64(len(in.Matrix)))
		for _, row := range in.Matrix {
			writeInt(int64(len(row)))
			for _, s := range row {
				writeFloat(s)
			}
		}
	} else {
		writeInt(-1)
	}
	var k Key
	h.Sum(k[:0])
	return k, true
}

// Global reuse counters, aggregated across every cache in the process; the
// full catalog lives in docs/OBSERVABILITY.md.
var (
	cacheHits      = obs.Default().Counter("geacc_solve_cache_hits_total")
	cacheMisses    = obs.Default().Counter("geacc_solve_cache_misses_total")
	cacheEvictions = obs.Default().Counter("geacc_solve_cache_evictions_total")
)

// Stats is a point-in-time snapshot of one cache's reuse counters.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	MaxSize   int   `json:"max_size"`
}

// Cache is a bounded LRU from Key to an opaque memoized result. All
// methods are safe for concurrent use and safe on a nil receiver (a nil
// *Cache behaves as permanently empty and disabled).
type Cache struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recent
	items     map[Key]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type entry struct {
	key Key
	val any
}

// New returns a Cache bounded to max entries; max <= 0 returns nil (the
// disabled cache).
func New(max int) *Cache {
	if max <= 0 {
		return nil
	}
	return &Cache{max: max, ll: list.New(), items: make(map[Key]*list.Element)}
}

// Get returns the memoized value for k, marking it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		cacheMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	cacheHits.Inc()
	return el.Value.(*entry).val, true
}

// Put stores v under k, evicting the least recently used entry when full.
func (c *Cache) Put(k Key, v any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*entry).val = v
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
		c.evictions++
		cacheEvictions.Inc()
	}
	c.items[k] = c.ll.PushFront(&entry{key: k, val: v})
}

// Stats snapshots the cache's counters. Zero-valued on a nil cache.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		MaxSize:   c.max,
	}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
