package solvecache

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/sim"
)

const testMaxT = 100.0

func randInstance(rng *rand.Rand, nv, nu, d int) *core.Instance {
	events := make([]core.Event, nv)
	for i := range events {
		events[i] = core.Event{Attrs: randVec(rng, d), Cap: 1 + rng.Intn(3)}
	}
	users := make([]core.User, nu)
	for i := range users {
		users[i] = core.User{Attrs: randVec(rng, d), Cap: 1 + rng.Intn(3)}
	}
	cf := conflict.Random(rng, nv, 0.25)
	in, err := core.NewInstance(events, users, cf, sim.Euclidean(d, testMaxT))
	if err != nil {
		panic(err)
	}
	return in
}

func randVec(rng *rand.Rand, d int) sim.Vector {
	v := make(sim.Vector, d)
	for i := range v {
		v[i] = rng.Float64() * testMaxT
	}
	return v
}

// TestInstanceKeyContentSensitivity: identical content hashes identically
// regardless of object identity; every content or spec perturbation moves
// the key.
func TestInstanceKeyContentSensitivity(t *testing.T) {
	spec := KeySpec{Algo: "greedy", Seed: 1, SimID: "euclidean/4/100"}
	a := randInstance(rand.New(rand.NewSource(5)), 6, 12, 4)
	b := randInstance(rand.New(rand.NewSource(5)), 6, 12, 4) // separately built, same bytes
	ka, ok := InstanceKey(a, spec)
	if !ok {
		t.Fatal("instance with SimID should be cacheable")
	}
	kb, _ := InstanceKey(b, spec)
	if ka != kb {
		t.Fatal("identical content must produce identical keys")
	}

	seen := map[Key]string{ka: "base"}
	check := func(name string, in *core.Instance, sp KeySpec) {
		k, ok := InstanceKey(in, sp)
		if !ok {
			t.Fatalf("%s: unexpectedly uncacheable", name)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("%s collides with %s", name, prev)
		}
		seen[k] = name
	}
	mutate := func(f func(rng *rand.Rand) *core.Instance) *core.Instance {
		return f(rand.New(rand.NewSource(5)))
	}
	check("event-cap", mutate(func(rng *rand.Rand) *core.Instance {
		in := randInstance(rng, 6, 12, 4)
		in.Events[3].Cap++
		return in
	}), spec)
	check("user-attr", mutate(func(rng *rand.Rand) *core.Instance {
		in := randInstance(rng, 6, 12, 4)
		in.Users[7].Attrs[0] += 0.5
		return in
	}), spec)
	check("algo", a, KeySpec{Algo: "mincostflow", Seed: 1, SimID: spec.SimID})
	check("seed", a, KeySpec{Algo: "greedy", Seed: 2, SimID: spec.SimID})
	check("simid", a, KeySpec{Algo: "greedy", Seed: 1, SimID: "cosine/4/0"})
	check("decompose", a, KeySpec{Algo: "greedy", Seed: 1, SimID: spec.SimID, Decompose: true})
	check("workers", a, KeySpec{Algo: "greedy", Seed: 1, SimID: spec.SimID, Decompose: true, Workers: 4})
	check("diag", a, KeySpec{Algo: "greedy", Seed: 1, SimID: spec.SimID, Diag: true})
	check("nodelimit", a, KeySpec{Algo: "exact", Seed: 1, SimID: spec.SimID, NodeLimit: 100})
	shard := KeySpec{Algo: "greedy", Seed: 1, SimID: spec.SimID, Decompose: true,
		ApproxShard: true, ShardMaxArea: 20000, ShardStrategy: "modularity", ShardDriftBudget: 0.01}
	check("approx-shard", a, shard)
	maxArea := shard
	maxArea.ShardMaxArea = 5000
	check("shard-max-area", a, maxArea)
	strategy := shard
	strategy.ShardStrategy = "bfs"
	check("shard-strategy", a, strategy)
	budget := shard
	budget.ShardDriftBudget = 0.05
	check("shard-drift-budget", a, budget)
}

func TestInstanceKeyUncacheable(t *testing.T) {
	in := randInstance(rand.New(rand.NewSource(1)), 3, 5, 4)
	if _, ok := InstanceKey(in, KeySpec{Algo: "greedy"}); ok {
		t.Fatal("callback similarity without SimID must be uncacheable")
	}
	if _, ok := InstanceKey(nil, KeySpec{Algo: "greedy", SimID: "x"}); ok {
		t.Fatal("nil instance must be uncacheable")
	}
	// A matrix instance is self-describing: cacheable with no SimID.
	events := []core.Event{{Cap: 1}, {Cap: 1}}
	users := []core.User{{Cap: 1}}
	m, err := core.NewMatrixInstance(events, users, conflict.New(2), [][]float64{{0.5}, {0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := InstanceKey(m, KeySpec{Algo: "greedy"}); !ok {
		t.Fatal("matrix instance must be cacheable without SimID")
	}
	// ... and matrix content must move the key.
	m2, _ := core.NewMatrixInstance(events, users, conflict.New(2), [][]float64{{0.5}, {0.26}})
	k1, _ := InstanceKey(m, KeySpec{Algo: "greedy"})
	k2, _ := InstanceKey(m2, KeySpec{Algo: "greedy"})
	if k1 == k2 {
		t.Fatal("matrix entry change must change the key")
	}
}

// TestCachedSolveBitForBit is the satellite property at the package level:
// for every registered algorithm, a memoized matching equals a fresh solve
// of independently rebuilt identical content, bit for bit.
func TestCachedSolveBitForBit(t *testing.T) {
	for _, algo := range core.SolverNames() {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			c := New(16)
			for trial := 0; trial < 8; trial++ {
				seed := int64(100 + trial)
				build := func() *core.Instance {
					return randInstance(rand.New(rand.NewSource(seed)), 5, 9, 4)
				}
				spec := KeySpec{Algo: algo, Seed: 1, SimID: "euclidean/4/100"}
				in1 := build()
				k1, ok := InstanceKey(in1, spec)
				if !ok {
					t.Fatal("cacheable expected")
				}
				m1, err := core.SolveContext(context.Background(), algo, in1, rand.New(rand.NewSource(1)))
				if err != nil {
					t.Fatal(err)
				}
				c.Put(k1, m1)

				in2 := build() // separately constructed, same content
				k2, _ := InstanceKey(in2, spec)
				cached, hit := c.Get(k2)
				if !hit {
					t.Fatal("rebuilt identical content must hit")
				}
				fresh, err := core.SolveContext(context.Background(), algo, in2, rand.New(rand.NewSource(1)))
				if err != nil {
					t.Fatal(err)
				}
				cm := cached.(*core.Matching)
				if cm.MaxSum() != fresh.MaxSum() {
					t.Fatalf("trial %d: cached MaxSum %v != fresh %v", trial, cm.MaxSum(), fresh.MaxSum())
				}
				cp, fp := cm.SortedPairs(), fresh.SortedPairs()
				if len(cp) != len(fp) {
					t.Fatalf("trial %d: cached %d pairs != fresh %d", trial, len(cp), len(fp))
				}
				for i := range cp {
					if cp[i] != fp[i] {
						t.Fatalf("trial %d: pair %d: cached %+v fresh %+v", trial, i, cp[i], fp[i])
					}
				}
			}
		})
	}
}

func TestCacheEvictionUnderPressure(t *testing.T) {
	c := New(4)
	keys := make([]Key, 12)
	for i := range keys {
		keys[i][0] = byte(i)
		c.Put(keys[i], i)
	}
	if c.Len() != 4 {
		t.Fatalf("resident %d, want 4", c.Len())
	}
	st := c.Stats()
	if st.Evictions != 8 {
		t.Fatalf("evictions %d, want 8", st.Evictions)
	}
	// Newest four survive; the rest are gone.
	for i := 0; i < 8; i++ {
		if _, ok := c.Get(keys[i]); ok {
			t.Fatalf("key %d should have been evicted", i)
		}
	}
	for i := 8; i < 12; i++ {
		if v, ok := c.Get(keys[i]); !ok || v.(int) != i {
			t.Fatalf("key %d missing after pressure", i)
		}
	}
	// LRU order respects Get recency.
	c.Get(keys[8])
	var extra Key
	extra[0] = 0xFF
	c.Put(extra, "x")
	if _, ok := c.Get(keys[8]); !ok {
		t.Fatal("recently used key 8 must survive the next eviction")
	}
	if _, ok := c.Get(keys[9]); ok {
		t.Fatal("key 9 was LRU and must be evicted")
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if c != New(0) {
		t.Fatal("New(0) must return the nil (disabled) cache")
	}
	var k Key
	c.Put(k, 1)
	if _, ok := c.Get(k); ok {
		t.Fatal("nil cache must never hit")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", st)
	}
}

// TestSolveCacheRace hammers one cache from many goroutines; run under
// -race via the Makefile RACE_PKGS matrix.
func TestSolveCacheRace(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				var k Key
				k[0] = byte(rng.Intn(16))
				if _, ok := c.Get(k); !ok {
					c.Put(k, w*1000+i)
				}
				if i%50 == 0 {
					_ = c.Stats()
					_ = c.Len()
				}
			}
		}(w)
	}
	wg.Wait()
}
