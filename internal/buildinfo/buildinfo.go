// Package buildinfo reports what binary is running: module version, Go
// toolchain, and VCS revision, all read from the build metadata the Go
// linker already embeds (runtime/debug.ReadBuildInfo) — no ldflags or
// external stamping required. Every geacc binary surfaces it: the CLIs via
// -version, geacc-server additionally via GET /version, /statusz, and the
// geacc_build_info metric.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Info is the build identity of the running binary.
type Info struct {
	// Version is the main module's version: a tag for released builds,
	// "(devel)" for source builds.
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision and Time are the VCS commit the binary was built from,
	// when the build ran inside a checkout; Modified marks a dirty tree.
	Revision string `json:"vcs_revision,omitempty"`
	Time     string `json:"vcs_time,omitempty"`
	Modified bool   `json:"vcs_modified,omitempty"`
}

var (
	once sync.Once
	info Info

	// start anchors process uptime; taken at init so every surface
	// (metrics, /statusz) agrees on when "up" began.
	start = time.Now()
)

// Get returns the binary's build identity, read once and cached.
func Get() Info {
	once.Do(func() {
		info = Info{Version: "(unknown)", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			info.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				info.Revision = s.Value
			case "vcs.time":
				info.Time = s.Value
			case "vcs.modified":
				info.Modified = s.Value == "true"
			}
		}
	})
	return info
}

// String renders the one-line form the -version flags print.
func (i Info) String() string {
	rev := i.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		rev = "no vcs"
	} else if i.Modified {
		rev += "+dirty"
	}
	return fmt.Sprintf("geacc %s (%s, %s)", i.Version, rev, i.GoVersion)
}

// StartTime is when the process started (package init time).
func StartTime() time.Time { return start }

// Uptime is how long the process has been running.
func Uptime() time.Duration { return time.Since(start) }
