package encoding

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/ebsnlab/geacc/internal/core"
)

// SessionJSON bundles an instance with a matching and solve metadata — the
// natural archive format for one arrangement run (geacc-solve can be piped
// into it, dashboards can re-validate it later).
type SessionJSON struct {
	// Instance is embedded in its serialized form.
	Instance json.RawMessage `json:"instance"`
	Matching MatchingJSON    `json:"matching"`
	Meta     SessionMeta     `json:"meta"`
}

// SessionMeta records how the matching was produced. Seq is used by the
// service snapshot store (internal/store): it records the op-log sequence
// number the archived state corresponds to, so a restart knows where log
// replay must resume.
type SessionMeta struct {
	Algorithm string    `json:"algorithm"`
	Seed      int64     `json:"seed,omitempty"`
	Seconds   float64   `json:"seconds,omitempty"`
	CreatedAt time.Time `json:"created_at,omitempty"`
	Seq       int64     `json:"seq,omitempty"`

	// DirtyEvents/DirtyUsers are the service's pending dirty marks — node
	// ids touched by deltas since the last rebalance — at the moment the
	// snapshot was taken. Snapshots fold logged ops away, so without these
	// the marks of pre-snapshot deltas would be lost across a restart and
	// the next scope=dirty rebalance would silently skip their components.
	DirtyEvents []int `json:"dirty_events,omitempty"`
	DirtyUsers  []int `json:"dirty_users,omitempty"`
}

// EncodeSession writes the bundle. The instance is re-serialized with the
// given similarity kind (see EncodeInstance). Pairs are written sorted by
// (v, u); see EncodeSessionOrdered when the matching's insertion order is
// part of the state being archived.
func EncodeSession(w io.Writer, in *core.Instance, m *core.Matching, meta SessionMeta,
	kind SimKind, dim int, maxT float64) error {
	return encodeSession(w, in, m, meta, kind, dim, maxT, false)
}

// EncodeSessionOrdered is EncodeSession preserving the matching's insertion
// order. DecodeSession rebuilds the matching by adding pairs in listed
// order, so an ordered archive round-trips the matching bit-for-bit —
// including the float accumulation order of MaxSum. The arrangement-service
// snapshot store depends on this for exact crash recovery.
func EncodeSessionOrdered(w io.Writer, in *core.Instance, m *core.Matching, meta SessionMeta,
	kind SimKind, dim int, maxT float64) error {
	return encodeSession(w, in, m, meta, kind, dim, maxT, true)
}

func encodeSession(w io.Writer, in *core.Instance, m *core.Matching, meta SessionMeta,
	kind SimKind, dim int, maxT float64, ordered bool) error {
	if err := core.Validate(in, m); err != nil {
		return fmt.Errorf("encoding: refusing to archive an infeasible session: %w", err)
	}
	var instBuf bytes.Buffer
	if err := EncodeInstance(&instBuf, in, kind, dim, maxT); err != nil {
		return err
	}
	pairs := m.SortedPairs()
	if ordered {
		pairs = m.Pairs()
	}
	matching := MatchingJSON{MaxSum: m.MaxSum(), Pairs: make([]PairJSON, 0, len(pairs))}
	for _, p := range pairs {
		matching.Pairs = append(matching.Pairs, PairJSON{V: p.V, U: p.U, Sim: p.Sim})
	}
	doc := SessionJSON{
		Instance: json.RawMessage(instBuf.Bytes()),
		Matching: matching,
		Meta:     meta,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DecodeSession reads the bundle back, re-validating the matching against
// the instance so a corrupted archive cannot masquerade as a result.
func DecodeSession(r io.Reader) (*core.Instance, *core.Matching, SessionMeta, error) {
	var doc SessionJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, nil, SessionMeta{}, fmt.Errorf("encoding: %w", err)
	}
	in, err := DecodeInstance(bytes.NewReader(doc.Instance))
	if err != nil {
		return nil, nil, SessionMeta{}, err
	}
	m := core.NewMatching()
	for _, p := range doc.Matching.Pairs {
		if m.Contains(p.V, p.U) {
			return nil, nil, SessionMeta{}, fmt.Errorf("encoding: duplicate pair (%d, %d)", p.V, p.U)
		}
		m.Add(p.V, p.U, p.Sim)
	}
	if err := core.Validate(in, m); err != nil {
		return nil, nil, SessionMeta{}, fmt.Errorf("encoding: archived session is infeasible: %w", err)
	}
	return in, m, doc.Meta, nil
}
