// Package encoding (de)serializes GEACC instances and matchings.
//
// The JSON instance format carries events (attributes + capacity), users,
// the conflicting pair list, and the similarity definition — either a named
// similarity function over the attribute space or an explicit matrix.
// Matchings round-trip as JSON or as a compact CSV (v,u,sim rows) for the
// command-line tools.
package encoding

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/sim"
)

// SimKind names a similarity function in the serialized form.
type SimKind string

// Supported serialized similarity functions.
const (
	SimEuclidean SimKind = "euclidean" // the paper's Equation 1
	SimCosine    SimKind = "cosine"
	SimManhattan SimKind = "manhattan"
	SimMatrix    SimKind = "matrix" // explicit values
)

// InstanceJSON is the serialized instance.
type InstanceJSON struct {
	Events    []EntityJSON `json:"events"`
	Users     []EntityJSON `json:"users"`
	Conflicts [][2]int     `json:"conflicts,omitempty"`

	Sim  SimKind `json:"sim"`
	Dim  int     `json:"dim,omitempty"`   // attribute dimensionality (function sims)
	MaxT float64 `json:"max_t,omitempty"` // attribute bound T (function sims)

	Matrix [][]float64 `json:"matrix,omitempty"` // explicit similarities
}

// EntityJSON is one serialized event or user.
type EntityJSON struct {
	Attrs []float64 `json:"attrs,omitempty"`
	Cap   int       `json:"cap"`
}

// EncodeInstance serializes an instance to JSON. Vector instances must have
// been built with one of this package's named similarity kinds; pass the
// kind that was used (sim.Func values cannot be introspected).
func EncodeInstance(w io.Writer, in *core.Instance, kind SimKind, dim int, maxT float64) error {
	doc := InstanceJSON{Sim: kind}
	for _, e := range in.Events {
		doc.Events = append(doc.Events, EntityJSON{Attrs: e.Attrs, Cap: e.Cap})
	}
	for _, u := range in.Users {
		doc.Users = append(doc.Users, EntityJSON{Attrs: u.Attrs, Cap: u.Cap})
	}
	if in.Conflicts != nil {
		doc.Conflicts = in.Conflicts.Pairs()
	}
	if kind == SimMatrix {
		if in.Matrix == nil {
			return fmt.Errorf("encoding: matrix kind on a vector instance")
		}
		doc.Matrix = in.Matrix
	} else {
		if in.Matrix != nil {
			return fmt.Errorf("encoding: matrix instance must use the matrix kind")
		}
		if dim <= 0 || maxT <= 0 {
			return fmt.Errorf("encoding: function similarity needs dim > 0 and maxT > 0")
		}
		doc.Dim = dim
		doc.MaxT = maxT
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// SimInfo carries the serialized similarity definition alongside a decoded
// instance, so callers can re-serialize faithfully.
type SimInfo struct {
	Kind SimKind
	Dim  int
	MaxT float64
}

// Func rebuilds the similarity function the info names. SimMatrix has no
// function form (matrix instances carry their values explicitly) and is an
// error, as is an unknown kind. The distance-normalized kinds need dim and
// maxT; missing parameters are an error here rather than a panic in the sim
// constructors, because this path is fed untrusted serialized input.
func (info SimInfo) Func() (sim.Func, error) {
	switch info.Kind {
	case SimEuclidean, SimManhattan:
		if info.Dim <= 0 || info.MaxT <= 0 {
			return nil, fmt.Errorf("encoding: %s similarity needs dim > 0 and max_t > 0 (got dim=%d, max_t=%v)",
				info.Kind, info.Dim, info.MaxT)
		}
	}
	switch info.Kind {
	case SimEuclidean:
		return sim.Euclidean(info.Dim, info.MaxT), nil
	case SimCosine:
		return sim.Cosine(), nil
	case SimManhattan:
		return sim.Manhattan(info.Dim, info.MaxT), nil
	case SimMatrix:
		return nil, fmt.Errorf("encoding: matrix similarity has no function form")
	}
	return nil, fmt.Errorf("encoding: unknown similarity kind %q", info.Kind)
}

// DecodeInstance parses an instance from JSON and rebuilds the similarity
// function or matrix.
func DecodeInstance(r io.Reader) (*core.Instance, error) {
	in, _, err := DecodeInstanceMeta(r)
	return in, err
}

// DecodeInstanceMeta is DecodeInstance plus the similarity metadata needed
// to re-serialize the instance without guessing.
func DecodeInstanceMeta(r io.Reader) (*core.Instance, SimInfo, error) {
	var doc InstanceJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	info := SimInfo{}
	if err := dec.Decode(&doc); err != nil {
		return nil, info, fmt.Errorf("encoding: %w", err)
	}
	info = SimInfo{Kind: doc.Sim, Dim: doc.Dim, MaxT: doc.MaxT}
	events := make([]core.Event, len(doc.Events))
	for i, e := range doc.Events {
		events[i] = core.Event{Attrs: e.Attrs, Cap: e.Cap}
	}
	users := make([]core.User, len(doc.Users))
	for i, u := range doc.Users {
		users[i] = core.User{Attrs: u.Attrs, Cap: u.Cap}
	}
	var cf *conflict.Graph
	if len(doc.Conflicts) > 0 {
		for _, p := range doc.Conflicts {
			if p[0] < 0 || p[0] >= len(events) || p[1] < 0 || p[1] >= len(events) {
				return nil, info, fmt.Errorf("encoding: conflict pair %v out of range", p)
			}
		}
		cf = conflict.FromPairs(len(events), doc.Conflicts)
	}
	var in *core.Instance
	var err error
	switch doc.Sim {
	case SimMatrix:
		in, err = core.NewMatrixInstance(events, users, cf, doc.Matrix)
	case SimEuclidean, SimCosine, SimManhattan:
		f, ferr := info.Func()
		if ferr != nil {
			return nil, info, ferr
		}
		in, err = core.NewInstance(events, users, cf, f)
	default:
		return nil, info, fmt.Errorf("encoding: unknown similarity kind %q", doc.Sim)
	}
	return in, info, err
}

// MatchingJSON is the serialized matching.
type MatchingJSON struct {
	Pairs  []PairJSON `json:"pairs"`
	MaxSum float64    `json:"max_sum"`
}

// PairJSON is one serialized assignment.
type PairJSON struct {
	V   int     `json:"v"`
	U   int     `json:"u"`
	Sim float64 `json:"sim"`
}

// EncodeMatching serializes a matching to JSON (pairs sorted by (v, u)).
func EncodeMatching(w io.Writer, m *core.Matching) error {
	doc := MatchingJSON{MaxSum: m.MaxSum(), Pairs: []PairJSON{}}
	for _, p := range m.SortedPairs() {
		doc.Pairs = append(doc.Pairs, PairJSON{V: p.V, U: p.U, Sim: p.Sim})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DecodeMatching parses a matching from JSON.
func DecodeMatching(r io.Reader) (*core.Matching, error) {
	var doc MatchingJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("encoding: %w", err)
	}
	m := core.NewMatching()
	for _, p := range doc.Pairs {
		if m.Contains(p.V, p.U) {
			return nil, fmt.Errorf("encoding: duplicate pair (%d, %d)", p.V, p.U)
		}
		m.Add(p.V, p.U, p.Sim)
	}
	return m, nil
}

// WriteMatchingCSV writes "v,u,sim" rows (with header) sorted by (v, u).
func WriteMatchingCSV(w io.Writer, m *core.Matching) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"v", "u", "sim"}); err != nil {
		return err
	}
	for _, p := range m.SortedPairs() {
		rec := []string{
			strconv.Itoa(p.V),
			strconv.Itoa(p.U),
			strconv.FormatFloat(p.Sim, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadMatchingCSV parses the WriteMatchingCSV format.
func ReadMatchingCSV(r io.Reader) (*core.Matching, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("encoding: %w", err)
	}
	m := core.NewMatching()
	for i, rec := range records {
		if i == 0 {
			continue // header
		}
		if len(rec) != 3 {
			return nil, fmt.Errorf("encoding: row %d has %d fields, want 3", i, len(rec))
		}
		v, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("encoding: row %d: %w", i, err)
		}
		u, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("encoding: row %d: %w", i, err)
		}
		s, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("encoding: row %d: %w", i, err)
		}
		if m.Contains(v, u) {
			return nil, fmt.Errorf("encoding: duplicate pair (%d, %d)", v, u)
		}
		m.Add(v, u, s)
	}
	return m, nil
}
