package encoding

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/ebsnlab/geacc/internal/core"
)

func sessionFixture(t *testing.T) (*core.Instance, *core.Matching) {
	t.Helper()
	in := matrixInstance(t)
	m := core.NewMatching()
	m.Add(0, 1, 0.9)
	m.Add(1, 0, 0.2)
	return in, m
}

func TestSessionRoundTrip(t *testing.T) {
	in, m := sessionFixture(t)
	meta := SessionMeta{
		Algorithm: "greedy",
		Seed:      7,
		Seconds:   0.25,
		CreatedAt: time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC),
	}
	meta.DirtyEvents = []int{1}
	meta.DirtyUsers = []int{0, 2}
	var buf bytes.Buffer
	if err := EncodeSession(&buf, in, m, meta, SimMatrix, 0, 0); err != nil {
		t.Fatal(err)
	}
	gotIn, gotM, gotMeta, err := DecodeSession(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotIn.NumEvents() != in.NumEvents() || gotIn.NumUsers() != in.NumUsers() {
		t.Fatal("instance lost")
	}
	if gotM.MaxSum() != m.MaxSum() || !gotM.Contains(0, 1) {
		t.Fatal("matching lost")
	}
	if !reflect.DeepEqual(gotMeta, meta) {
		t.Fatalf("meta = %+v, want %+v", gotMeta, meta)
	}
}

func TestSessionRefusesInfeasible(t *testing.T) {
	in, _ := sessionFixture(t)
	bad := core.NewMatching()
	bad.Add(0, 0, 0.99) // wrong similarity
	var buf bytes.Buffer
	if err := EncodeSession(&buf, in, bad, SessionMeta{}, SimMatrix, 0, 0); err == nil {
		t.Fatal("infeasible session archived")
	}
}

func TestDecodeSessionRejectsCorruption(t *testing.T) {
	in, m := sessionFixture(t)
	var buf bytes.Buffer
	if err := EncodeSession(&buf, in, m, SessionMeta{Algorithm: "greedy"}, SimMatrix, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Corrupt a similarity value inside the archived matching: decode must
	// notice the inconsistency with the instance.
	corrupted := strings.Replace(buf.String(), `"sim": 0.9`, `"sim": 0.8`, 1)
	if corrupted == buf.String() {
		t.Fatal("fixture assumption broken: pattern not found")
	}
	if _, _, _, err := DecodeSession(strings.NewReader(corrupted)); err == nil {
		t.Fatal("corrupted session accepted")
	}
	// Garbage input errors cleanly.
	if _, _, _, err := DecodeSession(strings.NewReader("{")); err == nil {
		t.Fatal("truncated session accepted")
	}
}
