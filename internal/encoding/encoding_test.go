package encoding

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/sim"
)

func vectorInstance(t *testing.T) *core.Instance {
	t.Helper()
	in, err := core.NewInstance(
		[]core.Event{
			{Attrs: sim.Vector{1, 2}, Cap: 3},
			{Attrs: sim.Vector{5, 6}, Cap: 1},
		},
		[]core.User{
			{Attrs: sim.Vector{1, 1}, Cap: 2},
			{Attrs: sim.Vector{9, 9}, Cap: 1},
			{Attrs: sim.Vector{4, 5}, Cap: 1},
		},
		conflict.FromPairs(2, [][2]int{{0, 1}}),
		sim.Euclidean(2, 10),
	)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func matrixInstance(t *testing.T) *core.Instance {
	t.Helper()
	in, err := core.NewMatrixInstance(
		[]core.Event{{Cap: 2}, {Cap: 1}},
		[]core.User{{Cap: 1}, {Cap: 2}},
		nil,
		[][]float64{{0.3, 0.9}, {0.2, 0.5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestInstanceJSONRoundTripVector(t *testing.T) {
	in := vectorInstance(t)
	var buf bytes.Buffer
	if err := EncodeInstance(&buf, in, SimEuclidean, 2, 10); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEvents() != 2 || got.NumUsers() != 3 {
		t.Fatal("sizes lost")
	}
	for v := 0; v < 2; v++ {
		for u := 0; u < 3; u++ {
			if got.Similarity(v, u) != in.Similarity(v, u) {
				t.Fatalf("similarity (%d,%d) changed", v, u)
			}
		}
	}
	if !got.Conflicting(0, 1) {
		t.Fatal("conflicts lost")
	}
	if got.Events[0].Cap != 3 || got.Users[2].Cap != 1 {
		t.Fatal("capacities lost")
	}
}

func TestInstanceJSONRoundTripMatrix(t *testing.T) {
	in := matrixInstance(t)
	var buf bytes.Buffer
	if err := EncodeInstance(&buf, in, SimMatrix, 0, 0); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Similarity(0, 1) != 0.9 || got.Similarity(1, 0) != 0.2 {
		t.Fatal("matrix lost")
	}
	if got.Conflicts != nil && got.Conflicts.Edges() != 0 {
		t.Fatal("phantom conflicts")
	}
}

func TestInstanceJSONCosineAndManhattan(t *testing.T) {
	for _, kind := range []SimKind{SimCosine, SimManhattan} {
		in, err := core.NewInstance(
			[]core.Event{{Attrs: sim.Vector{1, 0}, Cap: 1}},
			[]core.User{{Attrs: sim.Vector{1, 1}, Cap: 1}},
			nil,
			sim.Cosine(), // placeholder; encoding carries the kind
		)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeInstance(&buf, in, kind, 2, 10); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if _, err := DecodeInstance(&buf); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestEncodeInstanceErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeInstance(&buf, vectorInstance(t), SimMatrix, 0, 0); err == nil {
		t.Error("matrix kind on vector instance accepted")
	}
	if err := EncodeInstance(&buf, matrixInstance(t), SimEuclidean, 2, 10); err == nil {
		t.Error("function kind on matrix instance accepted")
	}
	if err := EncodeInstance(&buf, vectorInstance(t), SimEuclidean, 0, 10); err == nil {
		t.Error("missing dim accepted")
	}
}

func TestDecodeInstanceErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":       `{`,
		"unknown kind":   `{"events":[],"users":[],"sim":"hamming"}`,
		"unknown field":  `{"events":[],"users":[],"sim":"matrix","matrix":[],"bogus":1}`,
		"conflict range": `{"events":[{"cap":1}],"users":[{"cap":1}],"conflicts":[[0,5]],"sim":"matrix","matrix":[[0.5]]}`,
		"bad matrix":     `{"events":[{"cap":1}],"users":[{"cap":1}],"sim":"matrix","matrix":[[1.5]]}`,
	}
	for name, doc := range cases {
		if _, err := DecodeInstance(strings.NewReader(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestMatchingJSONRoundTrip(t *testing.T) {
	m := core.NewMatching()
	m.Add(1, 2, 0.75)
	m.Add(0, 0, 0.5)
	var buf bytes.Buffer
	if err := EncodeMatching(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMatching(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 2 || got.MaxSum() != 1.25 {
		t.Fatalf("round trip lost pairs: %+v", got.SortedPairs())
	}
	if !got.Contains(1, 2) || !got.Contains(0, 0) {
		t.Fatal("pairs lost")
	}
}

func TestMatchingJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeMatching(&buf, core.NewMatching()); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMatching(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 0 {
		t.Fatal("phantom pairs")
	}
}

func TestDecodeMatchingRejectsDuplicates(t *testing.T) {
	doc := `{"pairs":[{"v":0,"u":0,"sim":0.5},{"v":0,"u":0,"sim":0.5}],"max_sum":1}`
	if _, err := DecodeMatching(strings.NewReader(doc)); err == nil {
		t.Error("duplicate pairs accepted")
	}
}

func TestMatchingCSVRoundTrip(t *testing.T) {
	m := core.NewMatching()
	m.Add(3, 1, 0.123456789)
	m.Add(0, 2, 0.5)
	var buf bytes.Buffer
	if err := WriteMatchingCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasPrefix(text, "v,u,sim\n") {
		t.Fatalf("missing header: %q", text)
	}
	got, err := ReadMatchingCSV(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 2 || !got.Contains(3, 1) {
		t.Fatal("CSV round trip lost pairs")
	}
	if got.MaxSum() != m.MaxSum() {
		t.Fatalf("MaxSum %v != %v (float formatting must be lossless)", got.MaxSum(), m.MaxSum())
	}
}

func TestReadMatchingCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad v":       "v,u,sim\nx,1,0.5\n",
		"bad u":       "v,u,sim\n1,x,0.5\n",
		"bad sim":     "v,u,sim\n1,1,x\n",
		"wrong width": "v,u,sim\n1,1\n",
		"duplicate":   "v,u,sim\n1,1,0.5\n1,1,0.5\n",
	}
	for name, doc := range cases {
		if _, err := ReadMatchingCSV(strings.NewReader(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestRandomInstanceRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		nv, nu, d := 1+rng.Intn(5), 1+rng.Intn(8), 1+rng.Intn(4)
		events := make([]core.Event, nv)
		for i := range events {
			events[i] = core.Event{Attrs: randVec(rng, d), Cap: rng.Intn(5)}
		}
		users := make([]core.User, nu)
		for i := range users {
			users[i] = core.User{Attrs: randVec(rng, d), Cap: rng.Intn(4)}
		}
		cf := conflict.Random(rng, nv, rng.Float64())
		in, err := core.NewInstance(events, users, cf, sim.Euclidean(d, 10))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeInstance(&buf, in, SimEuclidean, d, 10); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeInstance(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < nv; v++ {
			for u := 0; u < nu; u++ {
				if got.Similarity(v, u) != in.Similarity(v, u) {
					t.Fatal("similarity drift through JSON")
				}
			}
			for j := 0; j < nv; j++ {
				if got.Conflicting(v, j) != in.Conflicting(v, j) {
					t.Fatal("conflict drift through JSON")
				}
			}
		}
	}
}

func randVec(rng *rand.Rand, d int) sim.Vector {
	v := make(sim.Vector, d)
	for i := range v {
		v[i] = rng.Float64() * 10
	}
	return v
}
