package encoding

import (
	"bytes"
	"strings"
	"testing"

	"github.com/ebsnlab/geacc/internal/core"
)

// FuzzDecodeInstance asserts the decoder never panics and that anything it
// accepts re-encodes and re-decodes to an instance of the same shape.
func FuzzDecodeInstance(f *testing.F) {
	f.Add(`{"events":[{"cap":1}],"users":[{"cap":1}],"sim":"matrix","matrix":[[0.5]]}`)
	f.Add(`{"events":[{"attrs":[1,2],"cap":3}],"users":[{"attrs":[0,1],"cap":2}],"sim":"euclidean","dim":2,"max_t":10}`)
	f.Add(`{"events":[],"users":[],"sim":"cosine"}`)
	f.Add(`{"events":[{"cap":1},{"cap":2}],"users":[{"cap":1}],"conflicts":[[0,1]],"sim":"matrix","matrix":[[0.1],[0.9]]}`)
	f.Add(`{"sim":"nope"}`)
	f.Add(`[]`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, doc string) {
		in, info, err := DecodeInstanceMeta(strings.NewReader(doc))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		dim, maxT := info.Dim, info.MaxT
		if info.Kind == SimCosine {
			dim, maxT = 1, 1 // cosine carries no dim/maxT; encode needs placeholders
		}
		if err := EncodeInstance(&buf, in, info.Kind, dim, maxT); err != nil {
			t.Fatalf("accepted instance failed to re-encode: %v", err)
		}
		again, err := DecodeInstance(&buf)
		if err != nil {
			t.Fatalf("re-encoded instance failed to decode: %v", err)
		}
		if again.NumEvents() != in.NumEvents() || again.NumUsers() != in.NumUsers() {
			t.Fatal("shape drift through round trip")
		}
	})
}

// FuzzDecodeMatching asserts the matching decoder never panics and anything
// accepted is well-formed.
func FuzzDecodeMatching(f *testing.F) {
	f.Add(`{"pairs":[{"v":0,"u":0,"sim":0.5}],"max_sum":0.5}`)
	f.Add(`{"pairs":[],"max_sum":0}`)
	f.Add(`{"pairs":[{"v":-1,"u":0,"sim":2}]}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, doc string) {
		m, err := DecodeMatching(strings.NewReader(doc))
		if err != nil {
			return
		}
		// Accepted matchings have consistent internal state.
		seen := map[[2]int]bool{}
		for _, p := range m.Pairs() {
			key := [2]int{p.V, p.U}
			if seen[key] {
				t.Fatal("decoder admitted duplicate pairs")
			}
			seen[key] = true
			if !m.Contains(p.V, p.U) {
				t.Fatal("pair list and index disagree")
			}
		}
	})
}

// FuzzReadMatchingCSV covers the CSV reader the same way.
func FuzzReadMatchingCSV(f *testing.F) {
	f.Add("v,u,sim\n0,1,0.5\n")
	f.Add("v,u,sim\n")
	f.Add("garbage")
	f.Add("v,u,sim\n0,0,0.5\n0,0,0.5\n")
	f.Fuzz(func(t *testing.T, doc string) {
		m, err := ReadMatchingCSV(strings.NewReader(doc))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMatchingCSV(&buf, m); err != nil {
			t.Fatalf("accepted CSV failed to re-write: %v", err)
		}
	})
}

// TestFuzzSeedsAsRegression runs the seed corpus deterministically even when
// fuzzing is not enabled, so `go test` exercises these paths.
func TestFuzzSeedsAsRegression(t *testing.T) {
	docs := []string{
		`{"events":[{"cap":1}],"users":[{"cap":1}],"sim":"matrix","matrix":[[0.5]]}`,
		`{"events":[],"users":[],"sim":"cosine"}`,
		`{"sim":"nope"}`,
	}
	for _, doc := range docs {
		_, _ = DecodeInstance(strings.NewReader(doc)) // must not panic
	}
	if _, err := DecodeInstance(strings.NewReader(docs[0])); err != nil {
		t.Fatal(err)
	}
	_ = core.NewMatching() // anchor the core import for future extensions
}
