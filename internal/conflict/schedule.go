package conflict

import (
	"fmt"
	"math"
)

// Schedule describes when and where one event takes place. It exists to
// derive conflict pairs the way the paper's introduction motivates them: a
// hiking trip from 8:00 to 12:00 conflicts with a badminton game from 9:00
// to 11:00 (overlap), and with a basketball game starting 11:30 at a court
// an hour away (not enough travel slack).
type Schedule struct {
	Start float64 // event start time (any consistent unit, e.g. minutes)
	End   float64 // event end time; must be >= Start
	X, Y  float64 // venue coordinates (any consistent distance unit)
}

// Validate reports an error if the schedule's interval is inverted or any
// field is not finite.
func (s Schedule) Validate() error {
	for _, f := range []float64{s.Start, s.End, s.X, s.Y} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("conflict: non-finite schedule field in %+v", s)
		}
	}
	if s.End < s.Start {
		return fmt.Errorf("conflict: inverted interval [%v, %v]", s.Start, s.End)
	}
	return nil
}

// Overlaps reports whether the two events' time intervals intersect in more
// than a single instant (back-to-back events do not overlap).
func (s Schedule) Overlaps(o Schedule) bool {
	return s.Start < o.End && o.Start < s.End
}

// TravelTime returns the time needed to move between the two venues at the
// given speed (distance units per time unit).
func (s Schedule) TravelTime(o Schedule, speed float64) float64 {
	dx, dy := s.X-o.X, s.Y-o.Y
	return math.Hypot(dx, dy) / speed
}

// ConflictsWith reports whether a single person cannot attend both events:
// either the intervals overlap, or the gap between one event's end and the
// other's start is shorter than the travel time between the venues.
func (s Schedule) ConflictsWith(o Schedule, speed float64) bool {
	if s.Overlaps(o) {
		return true
	}
	first, second := s, o
	if o.End <= s.Start {
		first, second = o, s
	}
	gap := second.Start - first.End
	return gap < first.TravelTime(second, speed)
}

// FromSchedules derives the conflict graph of a set of event schedules:
// events i and j conflict iff ConflictsWith holds at the given travel speed.
// speed must be positive.
func FromSchedules(schedules []Schedule, speed float64) (*Graph, error) {
	if speed <= 0 {
		return nil, fmt.Errorf("conflict: non-positive travel speed %v", speed)
	}
	for i, s := range schedules {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
	}
	g := New(len(schedules))
	for i := range schedules {
		for j := i + 1; j < len(schedules); j++ {
			if schedules[i].ConflictsWith(schedules[j], speed) {
				g.Add(i, j)
			}
		}
	}
	return g, nil
}
