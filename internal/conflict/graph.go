// Package conflict models the conflicting-event-pair set CF of the GEACC
// problem (Definition 3 of the paper): a pair of events conflicts when no
// user can attend both, e.g. because their timetables overlap or their venues
// are too far apart to travel between.
//
// The package provides an undirected conflict graph over event indices,
// random conflict sampling at a target density (how the paper's evaluation
// generates CF), and derivation of conflicts from event schedules
// (time intervals + locations + travel speed), which is the semantics the
// paper's introduction motivates.
package conflict

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/ebsnlab/geacc/internal/randx"
)

// Graph is an undirected conflict graph over the event indices [0, n).
// Lookups are O(1) via a bitset of size n²/2; neighbor enumeration is O(deg)
// via adjacency lists. The zero value is unusable; call New.
type Graph struct {
	n     int
	adj   [][]int
	bits  []uint64
	edges int
}

// New returns an empty conflict graph over n events.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("conflict: negative event count %d", n))
	}
	words := (n*n + 63) / 64
	return &Graph{
		n:    n,
		adj:  make([][]int, n),
		bits: make([]uint64, words),
	}
}

// N returns the number of events the graph ranges over.
func (g *Graph) N() int { return g.n }

// Edges returns the number of conflicting pairs |CF|.
func (g *Graph) Edges() int { return g.edges }

// Density returns |CF| / (n·(n−1)/2), the relative conflict-set size the
// paper's experiments sweep. A graph over fewer than two events has density 0.
func (g *Graph) Density() float64 {
	total := g.n * (g.n - 1) / 2
	if total == 0 {
		return 0
	}
	return float64(g.edges) / float64(total)
}

func (g *Graph) bit(i, j int) int { return i*g.n + j }

// Add marks events i and j as conflicting. Self-pairs and duplicates are
// ignored; out-of-range indices panic.
func (g *Graph) Add(i, j int) {
	if i < 0 || j < 0 || i >= g.n || j >= g.n {
		panic(fmt.Sprintf("conflict: pair (%d, %d) out of range [0, %d)", i, j, g.n))
	}
	if i == j || g.Conflicting(i, j) {
		return
	}
	g.bits[g.bit(i, j)/64] |= 1 << (g.bit(i, j) % 64)
	g.bits[g.bit(j, i)/64] |= 1 << (g.bit(j, i) % 64)
	g.adj[i] = append(g.adj[i], j)
	g.adj[j] = append(g.adj[j], i)
	g.edges++
}

// Conflicting reports whether events i and j conflict. An event never
// conflicts with itself.
func (g *Graph) Conflicting(i, j int) bool {
	b := g.bit(i, j)
	return g.bits[b/64]&(1<<(b%64)) != 0
}

// Neighbors returns the events conflicting with i. The returned slice is
// owned by the graph; callers must not modify it.
func (g *Graph) Neighbors(i int) []int { return g.adj[i] }

// ConflictsWithAny reports whether event v conflicts with any event in set.
func (g *Graph) ConflictsWithAny(v int, set []int) bool {
	for _, w := range set {
		if g.Conflicting(v, w) {
			return true
		}
	}
	return false
}

// Pairs returns all conflicting pairs with i < j, sorted lexicographically.
func (g *Graph) Pairs() [][2]int {
	out := make([][2]int, 0, g.edges)
	for i := 0; i < g.n; i++ {
		for _, j := range g.adj[i] {
			if i < j {
				out = append(out, [2]int{i, j})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// Clone returns an independent copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.edges = g.edges
	copy(c.bits, g.bits)
	for i, a := range g.adj {
		c.adj[i] = append([]int(nil), a...)
	}
	return c
}

// FromPairs builds a graph over n events from explicit conflicting pairs.
func FromPairs(n int, pairs [][2]int) *Graph {
	g := New(n)
	for _, p := range pairs {
		g.Add(p[0], p[1])
	}
	return g
}

// Random builds a graph over n events whose density is as close as possible
// to ratio ∈ [0, 1]: exactly round(ratio·n·(n−1)/2) uniformly-chosen pairs.
// This is how the paper's evaluation (TABLES II and III) generates CF.
func Random(rng *rand.Rand, n int, ratio float64) *Graph {
	if ratio < 0 || ratio > 1 {
		panic(fmt.Sprintf("conflict: ratio %v outside [0, 1]", ratio))
	}
	total := n * (n - 1) / 2
	k := int(ratio*float64(total) + 0.5)
	g := New(n)
	for _, p := range randx.SamplePairs(rng, n, k) {
		g.Add(p[0], p[1])
	}
	return g
}
