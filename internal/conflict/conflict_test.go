package conflict

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGraphAddAndLookup(t *testing.T) {
	g := New(4)
	g.Add(0, 2)
	g.Add(3, 1)
	cases := []struct {
		i, j int
		want bool
	}{
		{0, 2, true}, {2, 0, true},
		{1, 3, true}, {3, 1, true},
		{0, 1, false}, {0, 3, false}, {1, 2, false}, {2, 3, false},
		{0, 0, false}, {2, 2, false},
	}
	for _, c := range cases {
		if got := g.Conflicting(c.i, c.j); got != c.want {
			t.Errorf("Conflicting(%d, %d) = %v, want %v", c.i, c.j, got, c.want)
		}
	}
	if g.Edges() != 2 {
		t.Errorf("Edges = %d, want 2", g.Edges())
	}
}

func TestGraphIgnoresSelfAndDuplicate(t *testing.T) {
	g := New(3)
	g.Add(1, 1)
	if g.Edges() != 0 {
		t.Error("self-pair added")
	}
	g.Add(0, 1)
	g.Add(1, 0)
	g.Add(0, 1)
	if g.Edges() != 1 {
		t.Errorf("duplicate pairs counted: Edges = %d", g.Edges())
	}
	if len(g.Neighbors(0)) != 1 || len(g.Neighbors(1)) != 1 {
		t.Error("duplicate pairs appended to adjacency lists")
	}
}

func TestGraphAddOutOfRangePanics(t *testing.T) {
	g := New(2)
	for _, p := range [][2]int{{-1, 0}, {0, 2}, {5, 5}} {
		p := p
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d, %d) did not panic", p[0], p[1])
				}
			}()
			g.Add(p[0], p[1])
		}()
	}
}

func TestGraphDensity(t *testing.T) {
	g := New(5) // 10 possible pairs
	if g.Density() != 0 {
		t.Error("empty graph density != 0")
	}
	g.Add(0, 1)
	g.Add(2, 3)
	if got := g.Density(); got != 0.2 {
		t.Errorf("Density = %v, want 0.2", got)
	}
	if New(1).Density() != 0 || New(0).Density() != 0 {
		t.Error("degenerate graphs must have density 0")
	}
}

func TestGraphNeighborsAndConflictsWithAny(t *testing.T) {
	g := New(5)
	g.Add(0, 1)
	g.Add(0, 3)
	ns := g.Neighbors(0)
	if len(ns) != 2 {
		t.Fatalf("Neighbors(0) = %v", ns)
	}
	if !g.ConflictsWithAny(1, []int{2, 0}) {
		t.Error("ConflictsWithAny missed a conflict")
	}
	if g.ConflictsWithAny(1, []int{2, 4}) {
		t.Error("ConflictsWithAny false positive")
	}
	if g.ConflictsWithAny(0, nil) {
		t.Error("empty set cannot conflict")
	}
}

func TestGraphPairsSortedAndComplete(t *testing.T) {
	g := New(4)
	g.Add(3, 2)
	g.Add(1, 0)
	g.Add(0, 3)
	got := g.Pairs()
	want := [][2]int{{0, 1}, {0, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("Pairs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Pairs = %v, want %v", got, want)
		}
	}
}

func TestGraphClone(t *testing.T) {
	g := New(3)
	g.Add(0, 1)
	c := g.Clone()
	c.Add(1, 2)
	if g.Conflicting(1, 2) {
		t.Error("Clone shares state with original")
	}
	if !c.Conflicting(0, 1) || c.Edges() != 2 {
		t.Error("Clone lost edges")
	}
}

func TestFromPairsRoundTrip(t *testing.T) {
	pairs := [][2]int{{0, 2}, {1, 3}, {2, 4}}
	g := FromPairs(5, pairs)
	got := g.Pairs()
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range pairs {
		if got[i] != pairs[i] {
			t.Fatalf("round trip mismatch: %v vs %v", got, pairs)
		}
	}
}

func TestRandomDensityTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ratio := range []float64{0, 0.25, 0.5, 0.75, 1} {
		g := Random(rng, 20, ratio)
		wantEdges := int(ratio*190 + 0.5)
		if g.Edges() != wantEdges {
			t.Errorf("ratio %v: %d edges, want %d", ratio, g.Edges(), wantEdges)
		}
	}
}

func TestRandomFullGraphEveryPairConflicts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := Random(rng, 10, 1)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if i != j && !g.Conflicting(i, j) {
				t.Fatalf("pair (%d,%d) missing from complete conflict graph", i, j)
			}
		}
	}
}

func TestRandomBadRatioPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, r := range []float64{-0.1, 1.1} {
		r := r
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ratio %v did not panic", r)
				}
			}()
			Random(rng, 5, r)
		}()
	}
}

func TestGraphSymmetryProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := Random(rng, n, rng.Float64())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if g.Conflicting(i, j) != g.Conflicting(j, i) {
					return false
				}
			}
			if g.Conflicting(i, i) {
				return false
			}
		}
		// Adjacency lists must agree with the bitset.
		edges := 0
		for i := 0; i < n; i++ {
			for _, j := range g.Neighbors(i) {
				if !g.Conflicting(i, j) {
					return false
				}
				edges++
			}
		}
		return edges == 2*g.Edges()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestScheduleOverlaps(t *testing.T) {
	a := Schedule{Start: 8, End: 12}
	cases := []struct {
		b    Schedule
		want bool
	}{
		{Schedule{Start: 9, End: 11}, true},   // nested
		{Schedule{Start: 11, End: 13}, true},  // partial
		{Schedule{Start: 12, End: 14}, false}, // back-to-back
		{Schedule{Start: 13, End: 15}, false}, // disjoint
		{Schedule{Start: 6, End: 8}, false},   // back-to-back before
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%+v) = %v, want %v", c.b, got, c.want)
		}
		if a.Overlaps(c.b) != c.b.Overlaps(a) {
			t.Errorf("Overlaps not symmetric for %+v", c.b)
		}
	}
}

func TestScheduleConflictsWithTravel(t *testing.T) {
	// The paper's motivating scenario: badminton 9:00-11:00, basketball
	// 11:30-13:30 at a venue one hour away. Gap = 0.5h < 1h travel.
	badminton := Schedule{Start: 9, End: 11, X: 0, Y: 0}
	basketball := Schedule{Start: 11.5, End: 13.5, X: 60, Y: 0} // 60 km away
	speed := 60.0                                               // km/h -> 1h travel
	if !badminton.ConflictsWith(basketball, speed) {
		t.Error("tight travel window must conflict")
	}
	if !basketball.ConflictsWith(badminton, speed) {
		t.Error("travel conflict must be symmetric")
	}
	// With a faster car (gap 0.5h >= 0.4h travel) the conflict disappears.
	if badminton.ConflictsWith(basketball, 150) {
		t.Error("fast travel should not conflict")
	}
}

func TestScheduleValidate(t *testing.T) {
	if err := (Schedule{Start: 1, End: 2}).Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	if err := (Schedule{Start: 2, End: 1}).Validate(); err == nil {
		t.Error("inverted interval accepted")
	}
}

func TestFromSchedulesMotivatingExample(t *testing.T) {
	// Hiking 8-12, badminton 9-11 (same area), basketball 11.5-13.5 one
	// hour away from badminton. All three mutually conflict, matching the
	// introduction's story where Bob can attend at most one.
	schedules := []Schedule{
		{Start: 8, End: 12, X: 0, Y: 0},       // hiking
		{Start: 9, End: 11, X: 5, Y: 0},       // badminton
		{Start: 11.5, End: 13.5, X: 65, Y: 0}, // basketball
	}
	g, err := FromSchedules(schedules, 60)
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 3 {
		t.Fatalf("want a triangle of conflicts, got %v", g.Pairs())
	}
}

func TestFromSchedulesErrors(t *testing.T) {
	if _, err := FromSchedules([]Schedule{{Start: 0, End: 1}}, 0); err == nil {
		t.Error("zero speed accepted")
	}
	if _, err := FromSchedules([]Schedule{{Start: 2, End: 1}}, 1); err == nil {
		t.Error("invalid schedule accepted")
	}
}

func TestFromSchedulesDisjointNoConflicts(t *testing.T) {
	schedules := []Schedule{
		{Start: 0, End: 1, X: 0, Y: 0},
		{Start: 2, End: 3, X: 0, Y: 0},
		{Start: 4, End: 5, X: 0, Y: 0},
	}
	g, err := FromSchedules(schedules, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 0 {
		t.Fatalf("unexpected conflicts: %v", g.Pairs())
	}
}

func TestGraphN(t *testing.T) {
	if New(7).N() != 7 {
		t.Error("N wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative size accepted")
		}
	}()
	New(-1)
}
