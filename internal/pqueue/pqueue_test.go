package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIndexedMinHeapBasicOrder(t *testing.T) {
	h := NewIndexedMinHeap(5)
	h.Push(0, 3.0)
	h.Push(1, 1.0)
	h.Push(2, 2.0)
	wantKeys := []int{1, 2, 0}
	wantPrio := []float64{1, 2, 3}
	for i := range wantKeys {
		k, p := h.Pop()
		if k != wantKeys[i] || p != wantPrio[i] {
			t.Fatalf("pop %d = (%d, %v), want (%d, %v)", i, k, p, wantKeys[i], wantPrio[i])
		}
	}
	if h.Len() != 0 {
		t.Fatal("heap not empty after draining")
	}
}

func TestIndexedMinHeapDecreaseKey(t *testing.T) {
	h := NewIndexedMinHeap(4)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.DecreaseKey(2, 5)
	if k, p := h.Pop(); k != 2 || p != 5 {
		t.Fatalf("got (%d, %v), want (2, 5)", k, p)
	}
	// Raising a priority must be ignored.
	h.DecreaseKey(1, 99)
	if k, _ := h.Pop(); k != 0 {
		t.Fatalf("increase-key was not ignored: popped %d", k)
	}
}

func TestIndexedMinHeapPushExistingRelaxes(t *testing.T) {
	h := NewIndexedMinHeap(3)
	h.Push(0, 10)
	h.Push(0, 4) // should relax
	h.Push(0, 7) // should be ignored
	if k, p := h.Pop(); k != 0 || p != 4 {
		t.Fatalf("got (%d, %v), want (0, 4)", k, p)
	}
	if h.Len() != 0 {
		t.Fatal("duplicate push created extra entries")
	}
}

func TestIndexedMinHeapContainsAndReset(t *testing.T) {
	h := NewIndexedMinHeap(3)
	h.Push(1, 1)
	if !h.Contains(1) || h.Contains(0) {
		t.Fatal("Contains wrong")
	}
	h.Reset()
	if h.Len() != 0 || h.Contains(1) {
		t.Fatal("Reset did not clear heap")
	}
	// Heap must be reusable after Reset.
	h.Push(2, 9)
	if k, _ := h.Pop(); k != 2 {
		t.Fatal("heap unusable after Reset")
	}
}

func TestIndexedMinHeapPopEmptyPanics(t *testing.T) {
	h := NewIndexedMinHeap(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty Pop")
		}
	}()
	h.Pop()
}

func TestIndexedMinHeapSortsRandomInput(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		h := NewIndexedMinHeap(n)
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			want[i] = rng.Float64()
			h.Push(i, want[i])
		}
		sort.Float64s(want)
		for i := 0; i < n; i++ {
			_, p := h.Pop()
			if p != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIndexedMinHeapDijkstraPattern(t *testing.T) {
	// Simulate the relax-heavy access pattern of Dijkstra: repeated pushes
	// of the same keys with decreasing priorities, interleaved with pops.
	rng := rand.New(rand.NewSource(99))
	const n = 100
	h := NewIndexedMinHeap(n)
	best := make([]float64, n)
	inHeap := make([]bool, n)
	for i := range best {
		best[i] = 1e18
	}
	for step := 0; step < 5000; step++ {
		k := rng.Intn(n)
		p := rng.Float64()
		if p < best[k] {
			best[k] = p
		}
		h.Push(k, p)
		inHeap[k] = true
		if step%7 == 0 && h.Len() > 0 {
			key, prio := h.Pop()
			if prio != best[key] {
				t.Fatalf("popped priority %v != best known %v for key %d", prio, best[key], key)
			}
			best[key] = 1e18
			inHeap[key] = false
		}
	}
	prev := -1.0
	for h.Len() > 0 {
		_, p := h.Pop()
		if p < prev {
			t.Fatalf("pop order not sorted: %v after %v", p, prev)
		}
		prev = p
	}
}

func TestPairHeapOrderAndTieBreak(t *testing.T) {
	h := NewPairHeap(10)
	h.Push(Pair{V: 1, U: 2, Sim: 0.5})
	h.Push(Pair{V: 0, U: 3, Sim: 0.9})
	h.Push(Pair{V: 2, U: 1, Sim: 0.5})
	h.Push(Pair{V: 1, U: 0, Sim: 0.5})

	want := []Pair{
		{0, 3, 0.9},
		{1, 0, 0.5},
		{1, 2, 0.5},
		{2, 1, 0.5},
	}
	for i, w := range want {
		got := h.Pop()
		if got != w {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
}

func TestPairHeapDeduplicates(t *testing.T) {
	h := NewPairHeap(5)
	if !h.Push(Pair{V: 1, U: 1, Sim: 0.7}) {
		t.Fatal("first push rejected")
	}
	if h.Push(Pair{V: 1, U: 1, Sim: 0.7}) {
		t.Fatal("duplicate push accepted")
	}
	got := h.Pop()
	if got.V != 1 || got.U != 1 {
		t.Fatalf("unexpected pair %+v", got)
	}
	// A visited (popped) pair must not be pushable again.
	if h.Push(Pair{V: 1, U: 1, Sim: 0.7}) {
		t.Fatal("visited pair re-entered heap")
	}
	if h.Len() != 0 {
		t.Fatal("heap should be empty")
	}
}

func TestPairHeapContains(t *testing.T) {
	h := NewPairHeap(4)
	h.Push(Pair{V: 2, U: 3, Sim: 0.1})
	if !h.Contains(2, 3) {
		t.Error("Contains missed pushed pair")
	}
	if h.Contains(3, 2) {
		t.Error("Contains confused (v,u) with (u,v)")
	}
	h.Pop()
	if !h.Contains(2, 3) {
		t.Error("Contains must keep reporting visited pairs")
	}
}

func TestPairHeapPeek(t *testing.T) {
	h := NewPairHeap(4)
	h.Push(Pair{V: 0, U: 0, Sim: 0.2})
	h.Push(Pair{V: 0, U: 1, Sim: 0.8})
	if got := h.Peek(); got.Sim != 0.8 {
		t.Fatalf("Peek = %+v", got)
	}
	if h.Len() != 2 {
		t.Fatal("Peek must not remove")
	}
}

func TestPairHeapSortedDrainProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv, nu := 1+rng.Intn(20), 1+rng.Intn(20)
		h := NewPairHeap(nu)
		pushed := 0
		for i := 0; i < 100; i++ {
			ok := h.Push(Pair{V: rng.Intn(nv), U: rng.Intn(nu), Sim: rng.Float64()})
			if ok {
				pushed++
			}
		}
		prev := 2.0
		popped := 0
		for h.Len() > 0 {
			p := h.Pop()
			if p.Sim > prev {
				return false
			}
			prev = p.Sim
			popped++
		}
		return popped == pushed
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIndexedMinHeapPriority(t *testing.T) {
	h := NewIndexedMinHeap(3)
	h.Push(1, 4.5)
	if got := h.Priority(1); got != 4.5 {
		t.Fatalf("Priority = %v", got)
	}
	h.DecreaseKey(1, 2.5)
	if got := h.Priority(1); got != 2.5 {
		t.Fatalf("Priority after decrease = %v", got)
	}
}
