package pqueue

// Pair is a candidate (event, user) assignment with its similarity, the
// element type of Greedy-GEACC's heap H.
type Pair struct {
	V   int     // event index
	U   int     // user index
	Sim float64 // interestingness value of the pair
}

// PairHeap is a max-heap of candidate pairs ordered by similarity, with the
// guarantee that no pair is ever pushed twice (Algorithm 2 requires "push
// {v, u} into H if it is not yet in H", and pairs already popped — visited
// pairs — must not re-enter either). Ties on similarity break on (V, U)
// ascending so results are deterministic across runs.
type PairHeap struct {
	items []Pair
	// seen records every pair ever pushed, keyed by V*width+U. Popped pairs
	// stay in the set: a visited pair must never be pushed again.
	seen  map[int64]struct{}
	width int64
}

// NewPairHeap returns an empty heap for instances with the given number of
// users (needed to form unique pair keys).
func NewPairHeap(numUsers int) *PairHeap {
	return &PairHeap{
		seen:  make(map[int64]struct{}),
		width: int64(numUsers),
	}
}

// Len returns the number of pairs currently in the heap.
func (h *PairHeap) Len() int { return len(h.items) }

// Reset empties the heap — items and the visited set both — and re-targets
// it at a new user count, keeping the allocated storage so one heap serves
// many Greedy runs (core pools them per solve).
func (h *PairHeap) Reset(numUsers int) {
	if h.seen == nil {
		h.seen = make(map[int64]struct{})
	}
	clear(h.seen)
	h.items = h.items[:0]
	h.width = int64(numUsers)
}

// Contains reports whether the pair was ever pushed (it may have been popped
// since). This is the "∈ H or visited" test of Algorithm 2.
func (h *PairHeap) Contains(v, u int) bool {
	_, ok := h.seen[h.key(v, u)]
	return ok
}

// Push inserts the pair unless it was ever pushed before. It returns true if
// the pair was inserted.
func (h *PairHeap) Push(p Pair) bool {
	k := h.key(p.V, p.U)
	if _, dup := h.seen[k]; dup {
		return false
	}
	h.seen[k] = struct{}{}
	h.items = append(h.items, p)
	h.up(len(h.items) - 1)
	return true
}

// Pop removes and returns the most similar pair. It panics on an empty heap.
func (h *PairHeap) Pop() Pair {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

// Peek returns the most similar pair without removing it. It panics on an
// empty heap.
func (h *PairHeap) Peek() Pair { return h.items[0] }

func (h *PairHeap) key(v, u int) int64 { return int64(v)*h.width + int64(u) }

// less orders by similarity descending, then (V, U) ascending for
// deterministic tie-breaks.
func (h *PairHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.Sim != b.Sim {
		return a.Sim > b.Sim
	}
	if a.V != b.V {
		return a.V < b.V
	}
	return a.U < b.U
}

func (h *PairHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *PairHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
}
