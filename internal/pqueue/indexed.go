// Package pqueue provides the priority-queue substrates used by the GEACC
// algorithms: an indexed min-heap with decrease-key for Dijkstra's shortest
// path search inside the min-cost-flow solver, and a de-duplicating max-heap
// of candidate (event, user) pairs for Greedy-GEACC's heap H (Algorithm 2).
package pqueue

// IndexedMinHeap is a binary min-heap over the integer keys [0, n) with
// float64 priorities and O(log n) DecreaseKey. Keys not currently in the
// heap occupy no slot. The zero value is not usable; call NewIndexedMinHeap.
type IndexedMinHeap struct {
	keys []int     // heap order: keys[0] has the smallest priority
	pos  []int     // pos[key] = index in keys, or -1 if absent
	prio []float64 // prio[key] = current priority of key
}

// NewIndexedMinHeap returns an empty heap over the key space [0, n).
func NewIndexedMinHeap(n int) *IndexedMinHeap {
	h := &IndexedMinHeap{
		keys: make([]int, 0, n),
		pos:  make([]int, n),
		prio: make([]float64, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len returns the number of keys currently in the heap.
func (h *IndexedMinHeap) Len() int { return len(h.keys) }

// Contains reports whether key is currently in the heap.
func (h *IndexedMinHeap) Contains(key int) bool { return h.pos[key] >= 0 }

// Priority returns the current priority of key. Meaningful only if the key
// is in the heap or was previously popped.
func (h *IndexedMinHeap) Priority(key int) float64 { return h.prio[key] }

// Push inserts key with the given priority. If the key is already present,
// Push behaves as DecreaseKey when the new priority is smaller and is a
// no-op otherwise, which is exactly the relaxation step Dijkstra needs.
func (h *IndexedMinHeap) Push(key int, priority float64) {
	if h.pos[key] >= 0 {
		h.DecreaseKey(key, priority)
		return
	}
	h.prio[key] = priority
	h.pos[key] = len(h.keys)
	h.keys = append(h.keys, key)
	h.up(len(h.keys) - 1)
}

// DecreaseKey lowers the priority of an in-heap key. Attempts to raise the
// priority are ignored.
func (h *IndexedMinHeap) DecreaseKey(key int, priority float64) {
	i := h.pos[key]
	if i < 0 || priority >= h.prio[key] {
		return
	}
	h.prio[key] = priority
	h.up(i)
}

// Pop removes and returns the key with the smallest priority. It panics on
// an empty heap.
func (h *IndexedMinHeap) Pop() (key int, priority float64) {
	key = h.keys[0]
	priority = h.prio[key]
	last := len(h.keys) - 1
	h.swap(0, last)
	h.keys = h.keys[:last]
	h.pos[key] = -1
	if last > 0 {
		h.down(0)
	}
	return key, priority
}

// Reset empties the heap without releasing its storage, so one allocation
// serves many Dijkstra runs.
func (h *IndexedMinHeap) Reset() {
	for _, k := range h.keys {
		h.pos[k] = -1
	}
	h.keys = h.keys[:0]
}

// Resize empties the heap and re-targets it at the key space [0, n),
// growing storage only when the new space exceeds the old capacity. Slots
// carried over keep the "absent" invariant (every entry ever touched is
// restored to -1 by Reset/Pop), so no O(n) refill is needed on the reuse
// path — the property the pooled min-cost-flow solver relies on.
func (h *IndexedMinHeap) Resize(n int) {
	h.Reset()
	if cap(h.pos) < n {
		h.pos = make([]int, n)
		h.prio = make([]float64, n)
		for i := range h.pos {
			h.pos[i] = -1
		}
		return
	}
	h.pos = h.pos[:n]
	h.prio = h.prio[:n]
}

func (h *IndexedMinHeap) less(i, j int) bool {
	return h.prio[h.keys[i]] < h.prio[h.keys[j]]
}

func (h *IndexedMinHeap) swap(i, j int) {
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.pos[h.keys[i]] = i
	h.pos[h.keys[j]] = j
}

func (h *IndexedMinHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedMinHeap) down(i int) {
	n := len(h.keys)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
