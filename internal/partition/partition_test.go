package partition

import (
	"context"
	"testing"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/dataset"
)

// bridged generates a clustered instance whose communities are chained into
// one giant similarity component by bridge users — the workload this package
// exists for.
func bridged(t testing.TB, nv, nu, k int, cfRatio, bridgeFrac float64, seed int64) *core.Instance {
	t.Helper()
	cfg := dataset.ClusteredConfig{
		NumEvents: nv, NumUsers: nu, Communities: k, BlockDim: 2,
		EventCapMax: 6, UserCapMax: 3, CFRatio: cfRatio,
		BridgeFrac: bridgeFrac, Seed: seed,
	}
	in, err := cfg.Generate()
	if err != nil {
		t.Fatalf("bridged generate: %v", err)
	}
	return in
}

// mcfFuncs returns the shard and mono solve hooks every test uses: plain
// registry min-cost flow on the sub-instance and on the whole component.
func mcfFuncs(in *core.Instance) (ShardSolveFunc, MonoSolveFunc) {
	solve := func(ctx context.Context, sub *core.Instance, events, users []int, shard int) (*core.Matching, error) {
		return core.SolveContext(ctx, "mincostflow", sub, nil)
	}
	mono := func(ctx context.Context) (*core.Matching, error) {
		return core.SolveContext(ctx, "mincostflow", in, nil)
	}
	return solve, mono
}

func samePairs(a, b *core.Matching) bool {
	pa, pb := a.SortedPairs(), b.SortedPairs()
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if pa[i] != pb[i] {
			return false
		}
	}
	return true
}

func TestParseStrategy(t *testing.T) {
	for in, want := range map[string]Strategy{
		"": StrategyModularity, "modularity": StrategyModularity, "bfs": StrategyBFS,
	} {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Fatalf("ParseStrategy(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	if _, err := ParseStrategy("zigzag"); err == nil {
		t.Fatal("ParseStrategy accepted an unknown strategy")
	}
}

func TestNormalizedDefaults(t *testing.T) {
	o := Options{}.Normalized()
	if o.MaxArea != DefaultMaxArea || o.Strategy != StrategyModularity ||
		o.DriftBudget != DefaultDriftBudget || o.RepairRounds != DefaultRepairRounds {
		t.Fatalf("unexpected defaults %+v", o)
	}
	set := Options{MaxArea: 7, Strategy: StrategyBFS, DriftBudget: 0.2, Workers: 3, RepairRounds: 5}
	if got := set.Normalized(); got != set {
		t.Fatalf("Normalized clobbered explicit options: %+v", got)
	}
}

// TestBuildSplitDisjointCoverage: the split is a true partition — every user
// in exactly one shard, every event in at most one (events of a shard that
// attracted no users are dropped, their pairs counted as cut), and shard
// sub-instances carry the parent's similarities bit-identically.
func TestBuildSplitDisjointCoverage(t *testing.T) {
	in := bridged(t, 24, 240, 6, 0.3, 0.2, 11)
	for _, strat := range []Strategy{StrategyModularity, StrategyBFS} {
		opt := Options{MaxArea: 500, Strategy: strat}.Normalized()
		sl, err := buildSplit(in, opt)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if sl == nil || len(sl.shards) < 2 {
			t.Fatalf("%s: expected a multi-shard split", strat)
		}
		evSeen := make(map[int]int)
		usSeen := make(map[int]int)
		for si, sh := range sl.shards {
			if len(sh.Events) == 0 || len(sh.Users) == 0 {
				t.Fatalf("%s: shard %d degenerate (%d events, %d users)", strat, si, len(sh.Events), len(sh.Users))
			}
			for _, v := range sh.Events {
				if prev, dup := evSeen[v]; dup {
					t.Fatalf("%s: event %d in shards %d and %d", strat, v, prev, si)
				}
				evSeen[v] = si
			}
			for _, u := range sh.Users {
				if prev, dup := usSeen[u]; dup {
					t.Fatalf("%s: user %d in shards %d and %d", strat, u, prev, si)
				}
				usSeen[u] = si
			}
			for i, v := range sh.Events {
				for j, u := range sh.Users {
					if got, want := sh.Sub.Similarity(i, j), in.Similarity(v, u); got != want {
						t.Fatalf("%s: sub sim(%d,%d)=%v != parent sim(%d,%d)=%v", strat, i, j, got, v, u, want)
					}
				}
			}
		}
		if len(usSeen) != in.NumUsers() {
			t.Fatalf("%s: %d users covered, want %d", strat, len(usSeen), in.NumUsers())
		}
		if sl.lostCutBound < 0 || (len(sl.cuts) > 0 && sl.lostCutBound <= 0) {
			t.Fatalf("%s: implausible lost-cut bound %v for %d cuts", strat, sl.lostCutBound, len(sl.cuts))
		}
	}
}

func TestBuildSplitBelowThreshold(t *testing.T) {
	in := bridged(t, 8, 40, 4, 0.2, 0.25, 3)
	area := int64(in.NumEvents()) * int64(in.NumUsers())
	sl, err := buildSplit(in, Options{MaxArea: area}.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	if sl != nil {
		t.Fatal("buildSplit sharded a component at the area threshold")
	}
}

// TestSolveComponentFeasible: on the giant bridged component, both
// strategies produce a multi-shard split whose merged matching validates
// against the full instance (capacities + conflicts) with populated stats.
func TestSolveComponentFeasible(t *testing.T) {
	in := bridged(t, 32, 320, 8, 0.3, 0.1, 7)
	solve, mono := mcfFuncs(in)
	for _, strat := range []Strategy{StrategyModularity, StrategyBFS} {
		opt := Options{MaxArea: 600, Strategy: strat, DriftBudget: 0.9}
		m, st, err := SolveComponent(context.Background(), in, opt, solve, mono)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if st.Shards < 2 {
			t.Fatalf("%s: %d shards, want >= 2", strat, st.Shards)
		}
		if st.FellBack {
			t.Fatalf("%s: unexpected fallback (drift estimate %v)", strat, st.DriftEstimate)
		}
		if err := core.Validate(in, m); err != nil {
			t.Fatalf("%s: merged matching infeasible: %v", strat, err)
		}
		if st.CutPairs <= 0 || st.LostCutBound <= 0 {
			t.Fatalf("%s: bridged instance produced no cut (%+v)", strat, st)
		}
		if st.DriftEstimate <= 0 || st.DriftEstimate > opt.DriftBudget {
			t.Fatalf("%s: drift estimate %v outside (0, %v]", strat, st.DriftEstimate, opt.DriftBudget)
		}
		if st.Strategy != string(strat) || st.LargestEvents <= 0 || st.LargestUsers <= 0 {
			t.Fatalf("%s: unpopulated stats %+v", strat, st)
		}
	}
}

// TestSolveComponentDeterministicAcrossWorkers: the merged matching is a
// pure function of (instance, options) — identical pairs for any worker
// count and across repeated runs.
func TestSolveComponentDeterministicAcrossWorkers(t *testing.T) {
	in := bridged(t, 24, 240, 6, 0.25, 0.15, 19)
	solve, mono := mcfFuncs(in)
	var ref *core.Matching
	for _, workers := range []int{1, 2, 4, 7, 1} {
		opt := Options{MaxArea: 500, DriftBudget: 0.9, Workers: workers}
		m, _, err := SolveComponent(context.Background(), in, opt, solve, mono)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = m
			continue
		}
		if !samePairs(ref, m) {
			t.Fatalf("workers=%d: merged matching differs from workers=1", workers)
		}
	}
}

// TestSolveComponentTinyBudgetFallsBack: a drift budget below any positive
// estimate must trigger the hard monolithic fallback, bit-identical to the
// mono solve.
func TestSolveComponentTinyBudgetFallsBack(t *testing.T) {
	in := bridged(t, 24, 240, 6, 0.25, 0.15, 19)
	solve, mono := mcfFuncs(in)
	opt := Options{MaxArea: 500, DriftBudget: 1e-12}
	m, st, err := SolveComponent(context.Background(), in, opt, solve, mono)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FellBack {
		t.Fatalf("no fallback at budget 1e-12 (drift estimate %v)", st.DriftEstimate)
	}
	mm, err := mono(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !samePairs(m, mm) {
		t.Fatal("fallback matching differs from the monolithic solve")
	}
}

// TestSolveComponentSingleEventUsesMono: a component that cannot split
// (one event) answers through mono with Shards == 1 and zero drift.
func TestSolveComponentSingleEventUsesMono(t *testing.T) {
	events := []core.Event{{Cap: 2}}
	users := make([]core.User, 30)
	matrix := [][]float64{make([]float64, 30)}
	for u := range users {
		users[u] = core.User{Cap: 1}
		matrix[0][u] = 0.5
	}
	in, err := core.NewMatrixInstance(events, users, nil, matrix)
	if err != nil {
		t.Fatal(err)
	}
	solve, mono := mcfFuncs(in)
	m, st, err := SolveComponent(context.Background(), in, Options{MaxArea: 10}, solve, mono)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 1 || st.DriftEstimate != 0 || st.FellBack {
		t.Fatalf("unexpected stats %+v", st)
	}
	if m.Size() != 2 {
		t.Fatalf("mono path returned %d pairs, want 2", m.Size())
	}
}

// TestRepairBoundaryAddsCutPair: a cut pair with free capacity on both ends
// is added back with its full gain.
func TestRepairBoundaryAddsCutPair(t *testing.T) {
	events := []core.Event{{Cap: 2}, {Cap: 1}}
	users := []core.User{{Cap: 1}, {Cap: 1}}
	matrix := [][]float64{{0.9, 0.4}, {0.85, 0}}
	in, err := core.NewMatrixInstance(events, users, nil, matrix)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewMatching()
	m.Add(0, 0, 0.9)
	cuts := []cutPair{{v: 0, u: 1, sim: 0.4}, {v: 1, u: 0, sim: 0.85}}
	repaired, moves, gain := repairBoundary(in, m, cuts, DefaultRepairRounds)
	if moves != 1 || gain != 0.4 {
		t.Fatalf("moves=%d gain=%v, want 1 move of gain 0.4", moves, gain)
	}
	if !repaired.Contains(0, 1) || !repaired.Contains(0, 0) {
		t.Fatalf("unexpected repaired pairs %v", repaired.Pairs())
	}
	if err := core.Validate(in, repaired); err != nil {
		t.Fatal(err)
	}
}

// TestRepairBoundaryDisplacesConflictingPair: a strong cut pair displaces a
// strictly weaker assignment its event conflicts with.
func TestRepairBoundaryDisplacesConflictingPair(t *testing.T) {
	events := []core.Event{{Cap: 1}, {Cap: 1}}
	users := []core.User{{Cap: 1}}
	matrix := [][]float64{{0.9}, {0.3}}
	cf := conflict.FromPairs(2, [][2]int{{0, 1}})
	in, err := core.NewMatrixInstance(events, users, cf, matrix)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewMatching()
	m.Add(1, 0, 0.3)
	repaired, moves, gain := repairBoundary(in, m, []cutPair{{v: 0, u: 0, sim: 0.9}}, DefaultRepairRounds)
	if moves != 1 || gain < 0.59 || gain > 0.61 {
		t.Fatalf("moves=%d gain=%v, want the 0.3 -> 0.9 swap", moves, gain)
	}
	if !repaired.Contains(0, 0) || repaired.Contains(1, 0) {
		t.Fatalf("unexpected repaired pairs %v", repaired.Pairs())
	}
	if err := core.Validate(in, repaired); err != nil {
		t.Fatal(err)
	}
}

// TestRepairBoundaryNoFalseMoves: when no cut pair can strictly improve the
// matching, the input comes back untouched.
func TestRepairBoundaryNoFalseMoves(t *testing.T) {
	events := []core.Event{{Cap: 1}, {Cap: 1}}
	users := []core.User{{Cap: 1}, {Cap: 1}}
	matrix := [][]float64{{0.9, 0.8}, {0.7, 0.6}}
	in, err := core.NewMatrixInstance(events, users, nil, matrix)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewMatching()
	m.Add(0, 0, 0.9)
	m.Add(1, 1, 0.6)
	repaired, moves, gain := repairBoundary(in, m, []cutPair{{v: 0, u: 1, sim: 0.8}, {v: 1, u: 0, sim: 0.7}}, DefaultRepairRounds)
	if moves != 0 || gain != 0 || repaired != m {
		t.Fatalf("moves=%d gain=%v: repair moved on a local optimum", moves, gain)
	}
}

func TestTopSum(t *testing.T) {
	if got := topSum([]float64{0.2, 0.9, 0.5}, 2); got != 1.4 {
		t.Fatalf("topSum = %v, want 1.4", got)
	}
	if got := topSum([]float64{0.2, 0.9}, 5); got != 1.1 {
		t.Fatalf("topSum under capacity = %v, want 1.1", got)
	}
}

func TestRenumberGroups(t *testing.T) {
	got := renumberGroups([]int{7, 7, 3, 7, 3, 9})
	want := []int{0, 0, 1, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("renumberGroups = %v, want %v", got, want)
		}
	}
}
