// Package partition approximately shards one oversized connected component
// into balanced sub-shards so dense instances stay servable.
//
// The exact decomposition layer (internal/decomp) wins only when the
// similarity∪conflict union graph is disconnected: one giant component
// falls back to a monolithic solve. This package trades a measured, bounded
// amount of MaxSum for parallelism on exactly those instances:
//
//  1. Split. Events are grouped by a zero-dependency heuristic over the
//     event co-interest graph (edge weight = how strongly the same users
//     want both events; conflict edges get a weight boost so CF pairs stay
//     in one shard whenever the balance cap allows). Two strategies:
//     greedy modularity merging ("modularity") and BFS-grown balanced cuts
//     ("bfs"). Users are then assigned, each to exactly ONE shard — the
//     one holding most of their similarity mass — under a per-shard budget
//     that keeps every shard's |V|·|U| near Options.MaxArea.
//  2. Solve. Each shard is an ordinary GEACC sub-instance, solved through
//     the caller-supplied per-component machinery (solve cache, warm-started
//     min-cost flow, node-limited exact — whatever internal/decomp wires in).
//  3. Bounded-drift merge. Because every user lives in exactly one shard, a
//     user can only be matched to events of its own shard, so cross-shard
//     conflict edges can never bind: the merged matching is ALWAYS
//     conflict-feasible. The only loss is the similarity of cut pairs —
//     (event, user) edges crossing shards, which no shard solve can use. A
//     boundary repair pass re-adds the most valuable cut pairs with strict
//     local-search moves restricted to cut vertices, then the residual loss
//     is bounded: LostCutBound = min over sides of Σ per-node top-capacity
//     cut similarities is a sound upper bound on the MaxSum any unsharded
//     matching could additionally extract from cut pairs, so
//
//         OPT(component) ≤ OPT(sharded) + LostCutBound ≤ merged + LostCutBound.
//
//     DriftEstimate = LostCutBound / merged MaxSum therefore bounds the
//     relative loss vs the unsharded optimum. If it exceeds
//     Options.DriftBudget the component falls back to the monolithic solve
//     — the budget is hard, not advisory.
//
// Everything is deterministic: group numbering, user assignment, merge
// order, and repair order are all fixed by node ids and similarity values,
// so the merged matching is invariant to the worker count.
package partition
