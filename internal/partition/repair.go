package partition

import (
	"sort"

	"github.com/ebsnlab/geacc/internal/core"
)

// repairBoundary re-adds value lost to the cut: strict-improvement
// local-search moves over the component instance, restricted to cut pairs
// (the only pairs a shard solve could not see). Three move kinds, mirroring
// core's local search but scoped to the boundary:
//
//   - add: the cut pair fits both residual capacities and conflicts.
//   - replace-user-side: the user is full (or conflicted on exactly one
//     event); swap out their weakest strictly-worse pair.
//   - replace-event-side: the event is full; swap out its weakest
//     strictly-worse pair.
//
// Every applied move strictly increases MaxSum, so the pass terminates;
// sweeps run in deterministic order (similarity desc, then ids), at most
// rounds times, stopping early when a sweep changes nothing. Returns the
// repaired matching (the input matching if no move applied), the move
// count, and the total MaxSum gain.
func repairBoundary(in *core.Instance, m *core.Matching, cuts []cutPair, rounds int) (*core.Matching, int, float64) {
	if len(cuts) == 0 || rounds <= 0 {
		return m, 0, 0
	}
	ordered := append([]cutPair(nil), cuts...)
	sortCuts(ordered)
	ed := newEditState(in, m)
	moves := 0
	gain := 0.0
	for r := 0; r < rounds; r++ {
		changed := false
		for _, cp := range ordered {
			if g, ok := ed.tryImprove(cp.v, cp.u, cp.sim); ok {
				moves++
				gain += g
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if moves == 0 {
		return m, 0, 0
	}
	return ed.matching(), moves, gain
}

// sortCuts orders by similarity desc, then (v, u) asc — the deterministic
// sweep order of the repair pass.
func sortCuts(cuts []cutPair) {
	sort.Slice(cuts, func(i, j int) bool {
		a, b := cuts[i], cuts[j]
		if a.sim != b.sim {
			return a.sim > b.sim
		}
		if a.v != b.v {
			return a.v < b.v
		}
		return a.u < b.u
	})
}

// editState is a mutable matching under repair: residual loads plus
// per-node assignment lists kept in sync through adds and removals.
type editState struct {
	in      *core.Instance
	evLoad  []int
	usLoad  []int
	byUser  [][]core.Assignment
	byEvent [][]core.Assignment
}

func newEditState(in *core.Instance, m *core.Matching) *editState {
	ed := &editState{
		in:      in,
		evLoad:  make([]int, in.NumEvents()),
		usLoad:  make([]int, in.NumUsers()),
		byUser:  make([][]core.Assignment, in.NumUsers()),
		byEvent: make([][]core.Assignment, in.NumEvents()),
	}
	for _, p := range m.Pairs() {
		ed.add(p)
	}
	return ed
}

func (ed *editState) add(p core.Assignment) {
	ed.evLoad[p.V]++
	ed.usLoad[p.U]++
	ed.byUser[p.U] = append(ed.byUser[p.U], p)
	ed.byEvent[p.V] = append(ed.byEvent[p.V], p)
}

func (ed *editState) remove(p core.Assignment) {
	ed.evLoad[p.V]--
	ed.usLoad[p.U]--
	ed.byUser[p.U] = dropPair(ed.byUser[p.U], p)
	ed.byEvent[p.V] = dropPair(ed.byEvent[p.V], p)
}

func dropPair(list []core.Assignment, p core.Assignment) []core.Assignment {
	for i := range list {
		if list[i].V == p.V && list[i].U == p.U {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// tryImprove attempts to bring cut pair (v, u, s) into the matching with a
// strict MaxSum gain; returns the gain and whether a move applied.
func (ed *editState) tryImprove(v, u int, s float64) (float64, bool) {
	for _, p := range ed.byUser[u] {
		if p.V == v {
			return 0, false // already matched (by an earlier repair move)
		}
	}
	capV := ed.in.Events[v].Cap
	capU := ed.in.Users[u].Cap

	// Conflicts of v against u's current events.
	conflicted := -1
	for _, p := range ed.byUser[u] {
		if ed.in.Conflicting(v, p.V) {
			if conflicted >= 0 {
				return 0, false // two conflicting events: no single swap helps
			}
			conflicted = p.V
		}
	}
	if conflicted >= 0 {
		// Must displace exactly the conflicting pair; worth it only if
		// strictly weaker, and v needs residual capacity of its own.
		if ed.evLoad[v] >= capV {
			return 0, false
		}
		old, ok := ed.pairOf(u, conflicted)
		if !ok || old.Sim >= s {
			return 0, false
		}
		ed.remove(old)
		ed.add(core.Assignment{V: v, U: u, Sim: s})
		return s - old.Sim, true
	}

	switch {
	case ed.evLoad[v] < capV && ed.usLoad[u] < capU:
		ed.add(core.Assignment{V: v, U: u, Sim: s})
		return s, true
	case ed.evLoad[v] < capV:
		// User full: displace their weakest strictly-worse pair.
		old, ok := weakest(ed.byUser[u], s)
		if !ok {
			return 0, false
		}
		ed.remove(old)
		ed.add(core.Assignment{V: v, U: u, Sim: s})
		return s - old.Sim, true
	case ed.usLoad[u] < capU:
		// Event full: displace its weakest strictly-worse pair.
		old, ok := weakest(ed.byEvent[v], s)
		if !ok {
			return 0, false
		}
		ed.remove(old)
		ed.add(core.Assignment{V: v, U: u, Sim: s})
		return s - old.Sim, true
	}
	return 0, false
}

func (ed *editState) pairOf(u, v int) (core.Assignment, bool) {
	for _, p := range ed.byUser[u] {
		if p.V == v {
			return p, true
		}
	}
	return core.Assignment{}, false
}

// weakest returns the minimum-similarity assignment strictly below s, ties
// broken by (V, U) asc for determinism.
func weakest(list []core.Assignment, s float64) (core.Assignment, bool) {
	best := core.Assignment{}
	found := false
	for _, p := range list {
		if p.Sim >= s {
			continue
		}
		if !found || p.Sim < best.Sim ||
			(p.Sim == best.Sim && (p.V < best.V || (p.V == best.V && p.U < best.U))) {
			best = p
			found = true
		}
	}
	return best, found
}

// matching rebuilds a core.Matching from the edited state in canonical
// (V, U) order, so the repaired result is deterministic regardless of the
// move sequence's internal list orders.
func (ed *editState) matching() *core.Matching {
	var all []core.Assignment
	for _, list := range ed.byUser {
		all = append(all, list...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].V != all[j].V {
			return all[i].V < all[j].V
		}
		return all[i].U < all[j].U
	})
	out := core.NewMatching()
	for _, p := range all {
		out.Add(p.V, p.U, p.Sim)
	}
	return out
}
