package partition

import (
	"fmt"
	"sort"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/core"
)

// Defaults. DefaultMaxArea targets shards a min-cost-flow solve finishes in
// tens of milliseconds; DefaultDriftBudget caps the bounded relative MaxSum
// loss at 1%.
const (
	DefaultMaxArea      int64   = 20000
	DefaultDriftBudget  float64 = 0.01
	DefaultRepairRounds         = 2

	// coOccurTop bounds the per-user fan-out of the event co-interest
	// graph: only a user's strongest coOccurTop events attract pairwise.
	// Keeps graph construction O(|U|·top²) instead of O(|U|·|V|²).
	coOccurTop = 8
)

// Strategy names an event-grouping heuristic.
type Strategy string

const (
	// StrategyModularity greedily merges event groups by modularity gain
	// over the co-interest graph (CNM-style agglomeration).
	StrategyModularity Strategy = "modularity"
	// StrategyBFS grows balanced groups breadth-first, visiting conflict
	// neighbors before similarity neighbors.
	StrategyBFS Strategy = "bfs"
)

// ParseStrategy maps a flag/query value to a Strategy; "" means the default.
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(s) {
	case "", StrategyModularity:
		return StrategyModularity, nil
	case StrategyBFS:
		return StrategyBFS, nil
	}
	return "", fmt.Errorf("partition: unknown strategy %q (want %q or %q)", s, StrategyModularity, StrategyBFS)
}

// Options tunes the approximate sharding of one component.
type Options struct {
	// MaxArea is the per-shard |V|·|U| target (and the threshold above
	// which callers shard at all); <= 0 means DefaultMaxArea.
	MaxArea int64
	// Strategy picks the event-grouping heuristic; "" means modularity.
	Strategy Strategy
	// DriftBudget is the hard cap on DriftEstimate (the bounded relative
	// MaxSum loss); exceeding it falls back to the monolithic solve.
	// <= 0 means DefaultDriftBudget.
	DriftBudget float64
	// Workers bounds the shard solve pool; <= 0 means GOMAXPROCS(0). The
	// merged matching is invariant to this value.
	Workers int
	// RepairRounds caps the boundary repair sweeps; <= 0 means
	// DefaultRepairRounds.
	RepairRounds int
}

// Normalized returns o with defaults applied to every zero field.
func (o Options) Normalized() Options {
	if o.MaxArea <= 0 {
		o.MaxArea = DefaultMaxArea
	}
	if o.Strategy == "" {
		o.Strategy = StrategyModularity
	}
	if o.DriftBudget <= 0 {
		o.DriftBudget = DefaultDriftBudget
	}
	if o.RepairRounds <= 0 {
		o.RepairRounds = DefaultRepairRounds
	}
	return o
}

// Shard is one sub-shard of a component: index lists into the component's
// space plus the materialized sub-instance (similarities bit-identical to
// the component's, like decomp's materialization).
type Shard struct {
	Events []int
	Users  []int
	Sub    *core.Instance
}

// cutPair is a positive-similarity (event, user) pair whose endpoints landed
// in different shards — the only edges a sharded solve cannot use.
type cutPair struct {
	v, u int
	sim  float64
}

// split is the full sharding of one component.
type split struct {
	shards       []Shard
	cuts         []cutPair
	cutWeight    float64
	cutConflicts int
	// lostCutBound is min(user side, event side) of the per-node
	// top-capacity cut-similarity sums: a sound upper bound on the MaxSum
	// any matching could extract from cut pairs, since a node with
	// capacity c contributes at most its c best cut similarities.
	lostCutBound float64
}

type userEdge struct {
	v   int
	sim float64
}

// buildSplit computes the sharding. A nil, nil return means the component
// does not shard under opt (at or below the area threshold, or nothing to
// split) and the caller should solve it as-is.
//
// Group growth is driven by a projected-area estimate, not a fixed group
// count: a group of e events holding mass share M/T of the total
// user-similarity mass is expected to attract ≈ |U|·M/T users, so its
// projected area is e·|U|·M/T. Groups grow only while that stays ≤ MaxArea
// — natural communities are never split just to hit a target count, which
// is what keeps the cut (and therefore the drift) small.
func buildSplit(in *core.Instance, opt Options) (*split, error) {
	nv, nu := in.NumEvents(), in.NumUsers()
	area := int64(nv) * int64(nu)
	if area <= opt.MaxArea || nv < 2 || nu < 2 {
		return nil, nil
	}

	// Positive adjacency per user plus per-event similarity mass, from one
	// kernel-batched row scan.
	userEdges := make([][]userEdge, nu)
	eventMass := make([]float64, nv)
	totalMass := 0.0
	row := make([]float64, nu)
	for v := 0; v < nv; v++ {
		in.SimilarityRow(v, row)
		for u, s := range row {
			if s > 0 {
				userEdges[u] = append(userEdges[u], userEdge{v, s})
				eventMass[v] += s
			}
		}
		totalMass += eventMass[v]
	}

	w := coInterestGraph(nv, userEdges, in.Conflicts)
	// allowed reports whether a group of size events with the given mass
	// stays within the projected per-shard area budget.
	allowed := func(size int, mass float64) bool {
		return float64(size)*float64(nu)*mass <= float64(opt.MaxArea)*totalMass
	}
	var groupOf []int
	switch {
	case totalMass == 0:
		// No positive similarity at all (cannot happen for a decomp
		// component, but keep the function total): contiguous chunks.
		k := int((area + opt.MaxArea - 1) / opt.MaxArea)
		if k > nv {
			k = nv
		}
		evCap := (nv + k - 1) / k
		groupOf = make([]int, nv)
		for v := range groupOf {
			groupOf[v] = v / evCap
		}
	case opt.Strategy == StrategyBFS:
		groupOf = bfsGroups(nv, w, in.Conflicts, eventMass, allowed)
	default:
		groupOf = modularityGroups(nv, w, eventMass, allowed)
	}
	groupOf = renumberGroups(groupOf)

	shardEvents := groupMembers(groupOf)
	userShard := assignUsers(nu, userEdges, groupOf, shardEvents, opt.MaxArea)

	sl := &split{}
	collectCuts(in, userEdges, groupOf, userShard, sl)

	// Materialize non-degenerate shards (a group whose events interest no
	// assigned user solves to nothing; its pairs are all cut and already
	// counted in the bound).
	shardUsers := make([][]int, len(shardEvents))
	for u, s := range userShard {
		shardUsers[s] = append(shardUsers[s], u)
	}
	evSub := make([]int, nv)
	usSub := make([]int, nu)
	for s := range shardEvents {
		if len(shardEvents[s]) == 0 || len(shardUsers[s]) == 0 {
			continue
		}
		sub, err := materializeShard(in, shardEvents[s], shardUsers[s], groupOf, evSub, usSub)
		if err != nil {
			return nil, err
		}
		sl.shards = append(sl.shards, Shard{Events: shardEvents[s], Users: shardUsers[s], Sub: sub})
	}
	return sl, nil
}

// coInterestGraph builds the weighted event graph: for each user its top
// coOccurTop events attract pairwise with weight sim_i·sim_j, and conflict
// edges get a boost larger than any co-interest weight so both strategies
// keep CF pairs together whenever the balance cap allows.
func coInterestGraph(nv int, userEdges [][]userEdge, cf *conflict.Graph) map[int64]float64 {
	w := make(map[int64]float64)
	top := make([]userEdge, 0, coOccurTop)
	for _, edges := range userEdges {
		top = top[:0]
		for _, e := range edges {
			// Insertion into a small list sorted by sim desc (ties: lower
			// event id first, for determinism).
			pos := len(top)
			for pos > 0 && (top[pos-1].sim < e.sim || (top[pos-1].sim == e.sim && top[pos-1].v > e.v)) {
				pos--
			}
			if pos >= coOccurTop {
				continue
			}
			if len(top) < coOccurTop {
				top = append(top, userEdge{})
			}
			copy(top[pos+1:], top[pos:])
			top[pos] = e
		}
		for i := 0; i < len(top); i++ {
			for j := i + 1; j < len(top); j++ {
				a, b := top[i].v, top[j].v
				if a > b {
					a, b = b, a
				}
				w[int64(a)*int64(nv)+int64(b)] += top[i].sim * top[j].sim
			}
		}
	}
	if cf != nil && cf.Edges() > 0 {
		var maxW float64
		for _, x := range w {
			if x > maxW {
				maxW = x
			}
		}
		boost := maxW + 1
		for _, p := range cf.Pairs() {
			w[int64(p[0])*int64(nv)+int64(p[1])] += boost
		}
	}
	return w
}

// mgroup is one agglomeration group during modularity merging.
type mgroup struct {
	size  int
	min   int // smallest member event id: the deterministic tie-break key
	deg   float64
	mass  float64
	adj   map[int]float64
	alive bool
}

// modularityGroups greedily merges singleton event groups in two phases:
// first by modularity gain ΔQ = w_ij/m − deg_i·deg_j/(2m²) while positive
// gains exist, then by raw edge weight to pack fragments — both only
// through merges the projected-area allowance permits. Deterministic:
// candidate selection uses a strict total order (gain/weight, then smallest
// member ids), so map iteration order never shows through.
func modularityGroups(nv int, w map[int64]float64, eventMass []float64, allowed func(int, float64) bool) []int {
	groups := make([]*mgroup, nv)
	for v := range groups {
		groups[v] = &mgroup{size: 1, min: v, mass: eventMass[v], adj: make(map[int]float64), alive: true}
	}
	var total float64
	for key, x := range w {
		a, b := int(key/int64(nv)), int(key%int64(nv))
		groups[a].adj[b] += x
		groups[b].adj[a] += x
		groups[a].deg += x
		groups[b].deg += x
		total += x
	}
	if total == 0 {
		// No co-interest signal: every event its own group (packing
		// unrelated events would only manufacture cut pairs elsewhere).
		return resolveGroups(groups, nv)
	}

	for phase := 0; phase < 2; phase++ {
		for {
			bestI, bestJ := -1, -1
			bestKey := 0.0
			found := false
			for i, gi := range groups {
				if !gi.alive {
					continue
				}
				for j, wij := range gi.adj {
					gj := groups[j]
					if !gj.alive || gj.min <= gi.min || !allowed(gi.size+gj.size, gi.mass+gj.mass) {
						continue
					}
					key := wij // phase 1: densest connection first
					if phase == 0 {
						key = wij/total - gi.deg*gj.deg/(2*total*total)
						if key <= 0 {
							continue
						}
					}
					if !found || key > bestKey ||
						(key == bestKey && (gi.min < groups[bestI].min ||
							(gi.min == groups[bestI].min && gj.min < groups[bestJ].min))) {
						bestI, bestJ, bestKey, found = i, j, key, true
					}
				}
			}
			if !found {
				break
			}
			mergeGroups(groups, bestI, bestJ)
		}
	}
	return resolveGroups(groups, nv)
}

// resolveGroups maps each event to the live group that absorbed it, walking
// the merged-into links recorded on dead groups.
func resolveGroups(groups []*mgroup, nv int) []int {
	out := make([]int, nv)
	for v := 0; v < nv; v++ {
		g := v
		for !groups[g].alive {
			g = groups[g].min // dead groups store their absorber's index in min
		}
		out[v] = g
	}
	return out
}

// mergeGroups folds group j into group i (i keeps the smaller min id; the
// dead group's min field becomes a link to its absorber for resolveGroups).
func mergeGroups(groups []*mgroup, i, j int) {
	gi, gj := groups[i], groups[j]
	for n, x := range gj.adj {
		if n == i {
			continue
		}
		gi.adj[n] += x
		gn := groups[n]
		gn.adj[i] += gn.adj[j]
		delete(gn.adj, j)
	}
	delete(gi.adj, j)
	delete(gi.adj, i)
	gi.size += gj.size
	gi.deg += gj.deg
	gi.mass += gj.mass
	if gj.min < gi.min {
		gi.min = gj.min
	}
	gj.alive = false
	gj.adj = nil
	gj.min = i // link for resolveGroups
}

// bfsGroups grows groups breadth-first from the smallest unassigned event,
// visiting conflict neighbors before similarity neighbors (so CF pairs land
// together whenever the allowance permits), closing a group when the next
// event would push its projected area past the budget.
func bfsGroups(nv int, w map[int64]float64, cf *conflict.Graph, eventMass []float64, allowed func(int, float64) bool) []int {
	type adjEdge struct {
		to int
		w  float64
	}
	adj := make([][]adjEdge, nv)
	for key, x := range w {
		a, b := int(key/int64(nv)), int(key%int64(nv))
		adj[a] = append(adj[a], adjEdge{b, x})
		adj[b] = append(adj[b], adjEdge{a, x})
	}
	for v := range adj {
		sort.Slice(adj[v], func(i, j int) bool {
			if adj[v][i].w != adj[v][j].w {
				return adj[v][i].w > adj[v][j].w
			}
			return adj[v][i].to < adj[v][j].to
		})
	}

	groupOf := make([]int, nv)
	for v := range groupOf {
		groupOf[v] = -1
	}
	g := 0
	for seed := 0; seed < nv; seed++ {
		if groupOf[seed] != -1 {
			continue
		}
		count := 0
		mass := 0.0
		queue := []int{seed}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if groupOf[v] != -1 {
				continue
			}
			// The seed always joins (every event needs a home); later
			// events only while the projected area stays within budget.
			if count > 0 && !allowed(count+1, mass+eventMass[v]) {
				continue
			}
			groupOf[v] = g
			count++
			mass += eventMass[v]
			if cf != nil {
				for _, nb := range cf.Neighbors(v) {
					if groupOf[nb] == -1 {
						queue = append(queue, nb)
					}
				}
			}
			for _, e := range adj[v] {
				if groupOf[e.to] == -1 {
					queue = append(queue, e.to)
				}
			}
		}
		g++
	}
	return groupOf
}

// renumberGroups compacts group ids to 0..S-1 in order of first appearance
// over ascending event ids — deterministic and strategy-independent.
func renumberGroups(groupOf []int) []int {
	next := 0
	seen := make(map[int]int)
	out := make([]int, len(groupOf))
	for v, g := range groupOf {
		id, ok := seen[g]
		if !ok {
			id = next
			seen[g] = id
			next++
		}
		out[v] = id
	}
	return out
}

func groupMembers(groupOf []int) [][]int {
	max := -1
	for _, g := range groupOf {
		if g > max {
			max = g
		}
	}
	out := make([][]int, max+1)
	for v, g := range groupOf {
		out[g] = append(out[g], v)
	}
	return out
}

// assignUsers places each user in the shard holding most of its similarity
// mass, under a per-shard budget of MaxArea/|V_s| users that keeps shard
// areas near MaxArea. Budgets have ≥ k× aggregate slack over |U| (AM–HM),
// so the least-loaded fallback below fires only on floor-rounding edges.
func assignUsers(nu int, userEdges [][]userEdge, groupOf []int, shardEvents [][]int, maxArea int64) []int {
	s := len(shardEvents)
	budget := make([]int, s)
	for i := range budget {
		if len(shardEvents[i]) == 0 {
			continue
		}
		b := int(maxArea / int64(len(shardEvents[i])))
		if b < 1 {
			b = 1
		}
		budget[i] = b
	}
	mass := make([]float64, s)
	out := make([]int, nu)
	for u := 0; u < nu; u++ {
		for i := range mass {
			mass[i] = 0
		}
		for _, e := range userEdges[u] {
			mass[groupOf[e.v]] += e.sim
		}
		best := -1
		for i := 0; i < s; i++ {
			if budget[i] <= 0 {
				continue
			}
			if best == -1 || mass[i] > mass[best] {
				best = i
			}
		}
		if best == -1 {
			best = 0
			for i := 1; i < s; i++ {
				if budget[i] > budget[best] {
					best = i
				}
			}
		}
		out[u] = best
		budget[best]--
	}
	return out
}

// collectCuts records every positive pair crossing shards, the crossing
// conflict edges (structurally non-binding after the merge), and the
// capacity-aware lost-cut bound.
func collectCuts(in *core.Instance, userEdges [][]userEdge, groupOf, userShard []int, sl *split) {
	nv := in.NumEvents()
	userCut := make([][]float64, len(userEdges))
	eventCut := make([][]float64, nv)
	for u, edges := range userEdges {
		su := userShard[u]
		for _, e := range edges {
			if groupOf[e.v] == su {
				continue
			}
			sl.cuts = append(sl.cuts, cutPair{v: e.v, u: u, sim: e.sim})
			sl.cutWeight += e.sim
			userCut[u] = append(userCut[u], e.sim)
			eventCut[e.v] = append(eventCut[e.v], e.sim)
		}
	}
	userSide := 0.0
	for u, sims := range userCut {
		userSide += topSum(sims, in.Users[u].Cap)
	}
	eventSide := 0.0
	for v, sims := range eventCut {
		eventSide += topSum(sims, in.Events[v].Cap)
	}
	sl.lostCutBound = userSide
	if eventSide < userSide {
		sl.lostCutBound = eventSide
	}
	if in.Conflicts != nil {
		for _, p := range in.Conflicts.Pairs() {
			if groupOf[p[0]] != groupOf[p[1]] {
				sl.cutConflicts++
			}
		}
	}
}

// topSum returns the sum of the c largest values in sims.
func topSum(sims []float64, c int) float64 {
	if len(sims) > c {
		sort.Sort(sort.Reverse(sort.Float64Slice(sims)))
		sims = sims[:c]
	}
	total := 0.0
	for _, s := range sims {
		total += s
	}
	return total
}

// materializeShard builds the sub-instance for one shard, mirroring
// decomp's materialization (similarities bit-identical to the component's;
// only intra-shard conflict edges are kept — cross-shard conflicts cannot
// bind because users never span shards). evSub/usSub are scratch
// component→shard index maps; only the shard's entries are written.
func materializeShard(in *core.Instance, events, users []int, groupOf []int, evSub, usSub []int) (*core.Instance, error) {
	for i, v := range events {
		evSub[v] = i
	}
	for i, u := range users {
		usSub[u] = i
	}
	subEvents := make([]core.Event, len(events))
	for i, v := range events {
		subEvents[i] = in.Events[v]
	}
	subUsers := make([]core.User, len(users))
	for i, u := range users {
		subUsers[i] = in.Users[u]
	}
	var cf *conflict.Graph
	if in.Conflicts != nil {
		cf = conflict.New(len(events))
		for _, v := range events {
			for _, nb := range in.Conflicts.Neighbors(v) {
				if v < nb && groupOf[nb] == groupOf[v] {
					cf.Add(evSub[v], evSub[nb])
				}
			}
		}
	}
	var sub *core.Instance
	var err error
	if in.Matrix != nil {
		matrix := make([][]float64, len(events))
		for i, v := range events {
			mrow := make([]float64, len(users))
			for j, u := range users {
				mrow[j] = in.Matrix[v][u]
			}
			matrix[i] = mrow
		}
		sub, err = core.NewMatrixInstance(subEvents, subUsers, cf, matrix)
	} else {
		sub, err = core.NewInstance(subEvents, subUsers, cf, in.SimFunc)
	}
	if err != nil {
		return nil, fmt.Errorf("partition: materialize shard: %w", err)
	}
	return sub, nil
}
