package partition

import (
	"context"
	"testing"

	"github.com/ebsnlab/geacc/internal/core"
)

// TestPropertyDriftBoundedMinCostFlow is the package's soundness property on
// 200 seeded conflict-free instances, where min-cost flow is exact: the
// merged matching is always feasible, the measured MaxSum loss vs the
// monolithic solve never exceeds the reported DriftEstimate, and the
// returned matching (merged or fallback) never drifts past the budget.
//
// The bound argument the test pins down: the unsharded optimum splits into
// intra-shard value plus cut-pair value; the intra part restricted to shard
// s is feasible for s, so OPT <= sum(OPT(shard)) + LostCutBound <= merged +
// LostCutBound, hence (mono - merged)/mono <= LostCutBound/merged.
func TestPropertyDriftBoundedMinCostFlow(t *testing.T) {
	const seeds = 200
	budget := 0.2
	sharded := 0
	for seed := int64(0); seed < seeds; seed++ {
		frac := 0.05 + 0.05*float64(seed%5) // bridge fractions 0.05 .. 0.25
		in := bridged(t, 16, 120, 4, 0, frac, seed)
		solve, mono := mcfFuncs(in)
		opt := Options{MaxArea: 400, DriftBudget: budget}
		if seed%2 == 1 {
			opt.Strategy = StrategyBFS
		}
		m, st, err := SolveComponent(context.Background(), in, opt, solve, mono)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := core.Validate(in, m); err != nil {
			t.Fatalf("seed %d: merged matching infeasible: %v", seed, err)
		}
		mm, err := mono(context.Background())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		drift := 0.0
		if ms := mm.MaxSum(); ms > 0 {
			drift = (ms - m.MaxSum()) / ms
		}
		if drift > budget+1e-9 {
			t.Fatalf("seed %d: drift %v past budget %v (fellback=%v)", seed, drift, budget, st.FellBack)
		}
		if st.FellBack {
			if !samePairs(m, mm) {
				t.Fatalf("seed %d: fallback not bit-identical to mono", seed)
			}
			continue
		}
		if st.Shards > 1 {
			sharded++
			if drift > st.DriftEstimate+1e-9 {
				t.Fatalf("seed %d: measured drift %v exceeds estimate %v", seed, drift, st.DriftEstimate)
			}
		}
	}
	// The property must actually bite: most seeds shard without fallback.
	if sharded < seeds/2 {
		t.Fatalf("only %d/%d seeds exercised a sharded solve", sharded, seeds)
	}
}

// TestPropertyDriftBoundedExact re-runs the drift property with conflicts on
// tiny instances under the exact solver, where the Corollary-style bound
// argument holds with conflict edges present (cross-shard conflicts cannot
// bind because users never span shards).
func TestPropertyDriftBoundedExact(t *testing.T) {
	const seeds = 40
	budget := 0.25
	sharded := 0
	for seed := int64(0); seed < seeds; seed++ {
		in := bridged(t, 6, 24, 3, 0.3, 0.2, 1000+seed)
		solve := func(ctx context.Context, sub *core.Instance, events, users []int, shard int) (*core.Matching, error) {
			return core.SolveContext(ctx, "exact", sub, nil)
		}
		mono := func(ctx context.Context) (*core.Matching, error) {
			return core.SolveContext(ctx, "exact", in, nil)
		}
		m, st, err := SolveComponent(context.Background(), in, Options{MaxArea: 48, DriftBudget: budget}, solve, mono)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := core.Validate(in, m); err != nil {
			t.Fatalf("seed %d: merged matching infeasible: %v", seed, err)
		}
		mm, err := mono(context.Background())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		drift := 0.0
		if ms := mm.MaxSum(); ms > 0 {
			drift = (ms - m.MaxSum()) / ms
		}
		if drift > budget+1e-9 {
			t.Fatalf("seed %d: drift %v past budget %v", seed, drift, budget)
		}
		if !st.FellBack && st.Shards > 1 {
			sharded++
			if drift > st.DriftEstimate+1e-9 {
				t.Fatalf("seed %d: measured drift %v exceeds estimate %v (exact shards)", seed, drift, st.DriftEstimate)
			}
		}
	}
	if sharded == 0 {
		t.Fatal("no seed exercised a sharded exact solve")
	}
}
